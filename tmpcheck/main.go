package main

import (
	"fmt"
	"spd3"
)

func main() {
	eng, _ := spd3.New(spd3.Options{})
	m := make(map[string]int)
	eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(2, func(c *spd3.Ctx, i int) {
			_ = i
			m["a"] += m["b"]
		})
	})
	fmt.Println(len(m))
}
