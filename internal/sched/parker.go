package sched

import (
	"sync"
	"sync/atomic"
)

// EventCount is an "eventcount" used to park idle workers without lost
// wakeups. Usage follows the standard three-phase protocol:
//
//	ep := ec.PrepareWait() // register as a waiter, snapshot the epoch
//	if workAvailable() {   // re-check AFTER registering
//		ec.CancelWait()
//		... consume ...
//	} else {
//		ec.CommitWait(ep) // blocks unless a Signal intervened
//	}
//
// Registering before the re-check is what closes the race: a producer that
// pushes work and then Signals either (a) ran its Signal before the waiter
// registered, in which case Go's sequentially-consistent atomics guarantee
// the re-check observes the pushed work, or (b) saw the registration, in
// which case it bumps the epoch and CommitWait returns immediately.
//
// Signal is cheap on the fast path: when no worker is parked it is a
// single atomic load, so pushing a task does not take a lock.
type EventCount struct {
	waiters atomic.Int32
	mu      sync.Mutex
	cond    *sync.Cond
	epoch   uint64
}

// NewEventCount returns a ready-to-use eventcount.
func NewEventCount() *EventCount {
	e := &EventCount{}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// PrepareWait registers the caller as a waiter and snapshots the epoch.
// Every PrepareWait must be followed by exactly one CancelWait or
// CommitWait.
func (e *EventCount) PrepareWait() uint64 {
	e.waiters.Add(1)
	e.mu.Lock()
	ep := e.epoch
	e.mu.Unlock()
	return ep
}

// CancelWait deregisters the caller without blocking.
func (e *EventCount) CancelWait() {
	e.waiters.Add(-1)
}

// CommitWait blocks until the epoch advances past the snapshot, then
// deregisters the caller. It returns immediately if a Signal already
// intervened since PrepareWait.
func (e *EventCount) CommitWait(epoch uint64) {
	e.mu.Lock()
	for e.epoch == epoch {
		e.cond.Wait()
	}
	e.mu.Unlock()
	e.waiters.Add(-1)
}

// Signal wakes all current waiters. When nobody is parked it is a single
// atomic load.
func (e *EventCount) Signal() {
	if e.waiters.Load() == 0 {
		return
	}
	e.mu.Lock()
	e.epoch++
	e.cond.Broadcast()
	e.mu.Unlock()
}
