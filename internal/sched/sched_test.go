package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestDequeLIFOForOwner(t *testing.T) {
	d := NewDeque[int]()
	vals := []int{1, 2, 3, 4, 5}
	ptrs := make([]*int, len(vals))
	for i := range vals {
		ptrs[i] = &vals[i]
		d.Push(ptrs[i])
	}
	for i := len(vals) - 1; i >= 0; i-- {
		if got := d.Pop(); got != ptrs[i] {
			t.Fatalf("Pop = %v, want &vals[%d]", got, i)
		}
	}
	if d.Pop() != nil {
		t.Fatal("Pop on empty deque must return nil")
	}
}

func TestDequeFIFOForThieves(t *testing.T) {
	d := NewDeque[int]()
	vals := []int{1, 2, 3}
	for i := range vals {
		d.Push(&vals[i])
	}
	for i := range vals {
		got, retry := d.Steal()
		if retry || got != &vals[i] {
			t.Fatalf("Steal #%d = (%v, %v), want &vals[%d]", i, got, retry, i)
		}
	}
	if got, retry := d.Steal(); got != nil || retry {
		t.Fatal("Steal on empty deque must report empty")
	}
}

func TestDequeGrowth(t *testing.T) {
	d := NewDeque[int]()
	const n = 10 * initialRingSize
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
		d.Push(&vals[i])
	}
	if d.Size() != n {
		t.Fatalf("Size = %d, want %d", d.Size(), n)
	}
	for i := n - 1; i >= 0; i-- {
		got := d.Pop()
		if got == nil || *got != i {
			t.Fatalf("Pop #%d = %v", i, got)
		}
	}
}

// TestDequeStress hammers one owner (push/pop) against several thieves
// and checks that every pushed item is consumed exactly once.
func TestDequeStress(t *testing.T) {
	const (
		items   = 20000
		thieves = 4
	)
	d := NewDeque[int]()
	var consumed atomic.Int64
	var seen [items]atomic.Int32
	take := func(p *int) {
		if p == nil {
			return
		}
		if seen[*p].Add(1) != 1 {
			t.Errorf("item %d consumed twice", *p)
		}
		consumed.Add(1)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				x, _ := d.Steal()
				take(x)
				select {
				case <-stop:
					// Drain what is left.
					for {
						x, retry := d.Steal()
						if x == nil && !retry {
							return
						}
						take(x)
					}
				default:
				}
			}
		}()
	}
	vals := make([]int, items)
	for i := 0; i < items; i++ {
		vals[i] = i
		d.Push(&vals[i])
		if i%3 == 0 {
			take(d.Pop())
		}
	}
	for {
		x := d.Pop()
		if x == nil {
			break
		}
		take(x)
	}
	close(stop)
	wg.Wait()
	// The final owner drain can race with thieves' last steals; scoop
	// up anything left.
	for {
		x := d.Pop()
		if x == nil {
			break
		}
		take(x)
	}
	if got := consumed.Load(); got != items {
		t.Fatalf("consumed %d items, want %d", got, items)
	}
}

// TestDequeQuickSequential: property test (testing/quick) — for any
// sequence of push/pop/steal operations, the deque behaves like the
// obvious reference: pops take the newest live item, steals the oldest,
// and nothing is lost or duplicated.
func TestDequeQuickSequential(t *testing.T) {
	type op = byte // 0,1 push; 2 pop; 3 steal
	check := func(ops []op) bool {
		d := NewDeque[int]()
		var ref []int // reference: live items, oldest first
		next := 0
		vals := make([]int, len(ops)+1)
		for _, o := range ops {
			switch o % 4 {
			case 0, 1:
				vals[next] = next
				d.Push(&vals[next])
				ref = append(ref, next)
				next++
			case 2:
				got := d.Pop()
				if len(ref) == 0 {
					if got != nil {
						return false
					}
					continue
				}
				want := ref[len(ref)-1]
				ref = ref[:len(ref)-1]
				if got == nil || *got != want {
					return false
				}
			case 3:
				got, retry := d.Steal()
				if retry {
					return false // no contention possible here
				}
				if len(ref) == 0 {
					if got != nil {
						return false
					}
					continue
				}
				want := ref[0]
				ref = ref[1:]
				if got == nil || *got != want {
					return false
				}
			}
		}
		return int64(len(ref)) == d.Size()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestEventCountNoLostWakeup stresses the prepare/cancel/commit protocol:
// a consumer must never sleep through a produced item.
func TestEventCountNoLostWakeup(t *testing.T) {
	ec := NewEventCount()
	var queue atomic.Int64
	const items = 50000
	done := make(chan struct{})

	go func() { // consumer
		consumed := 0
		for consumed < items {
			if queue.Load() > 0 {
				queue.Add(-1)
				consumed++
				continue
			}
			ep := ec.PrepareWait()
			if queue.Load() > 0 {
				ec.CancelWait()
				continue
			}
			ec.CommitWait(ep)
		}
		close(done)
	}()

	for i := 0; i < items; i++ {
		queue.Add(1)
		ec.Signal()
	}
	<-done // hangs forever on a lost wakeup; go test's timeout catches it
}

func TestEventCountSignalWithoutWaiters(t *testing.T) {
	ec := NewEventCount()
	ec.Signal() // must not panic or deadlock
	ep := ec.PrepareWait()
	ec.CancelWait()
	_ = ep
}
