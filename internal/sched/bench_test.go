package sched

import "testing"

func BenchmarkPushPop(b *testing.B) {
	d := NewDeque[int]()
	x := 42
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Push(&x)
		d.Pop()
	}
}

func BenchmarkSteal(b *testing.B) {
	d := NewDeque[int]()
	x := 42
	for i := 0; i < b.N; i++ {
		d.Push(&x)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Steal()
	}
}

func BenchmarkSignalNoWaiters(b *testing.B) {
	ec := NewEventCount()
	for i := 0; i < b.N; i++ {
		ec.Signal()
	}
}
