// Package sched provides the work-stealing building blocks used by the
// parallel executor of the structured task runtime: a Chase–Lev
// work-stealing deque and a parker for idle workers.
//
// The paper's HJ runtime schedules tasks on a fixed set of worker threads
// with work-stealing (§6, the SLAW scheduler). Go has no structured
// fork-join runtime, so this package rebuilds the substrate: each worker
// owns a deque; it pushes and pops at the bottom while thieves steal from
// the top. The implementation follows Chase & Lev, "Dynamic Circular
// Work-Stealing Deque" (SPAA 2005); Go's sync/atomic operations are
// sequentially consistent, which subsumes the fences required by the
// weak-memory formulation of Lê et al.
package sched

import "sync/atomic"

const initialRingSize = 64 // must be a power of two

// ring is a circular array of items. Entries are atomic because a thief
// may read a slot while the owner rewrites it after wrap-around.
type ring[T any] struct {
	mask int64
	buf  []atomic.Pointer[T]
}

func newRing[T any](size int64) *ring[T] {
	return &ring[T]{mask: size - 1, buf: make([]atomic.Pointer[T], size)}
}

func (r *ring[T]) get(i int64) *T    { return r.buf[i&r.mask].Load() }
func (r *ring[T]) put(i int64, x *T) { r.buf[i&r.mask].Store(x) }
func (r *ring[T]) size() int64       { return r.mask + 1 }

// grow returns a ring of twice the size holding the elements in [top, bottom).
func (r *ring[T]) grow(top, bottom int64) *ring[T] {
	n := newRing[T](2 * r.size())
	for i := top; i < bottom; i++ {
		n.put(i, r.get(i))
	}
	return n
}

// Deque is a Chase–Lev work-stealing deque of *T. The owner calls Push
// and Pop; any goroutine may call Steal. The zero value is not usable;
// call NewDeque.
type Deque[T any] struct {
	top    atomic.Int64
	bottom atomic.Int64
	array  atomic.Pointer[ring[T]]
}

// NewDeque returns an empty deque.
func NewDeque[T any]() *Deque[T] {
	d := &Deque[T]{}
	d.array.Store(newRing[T](initialRingSize))
	return d
}

// Push adds x at the bottom. Owner only.
func (d *Deque[T]) Push(x *T) {
	b := d.bottom.Load()
	t := d.top.Load()
	a := d.array.Load()
	if b-t >= a.size() {
		a = a.grow(t, b)
		d.array.Store(a)
	}
	a.put(b, x)
	d.bottom.Store(b + 1)
}

// Pop removes and returns the bottom item, or nil when the deque is
// empty. Owner only.
func (d *Deque[T]) Pop() *T {
	b := d.bottom.Load() - 1
	a := d.array.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore the invariant bottom >= top.
		d.bottom.Store(t)
		return nil
	}
	x := a.get(b)
	if t != b {
		return x // more than one item; no race with thieves
	}
	// Single item left: race against thieves for it.
	if !d.top.CompareAndSwap(t, t+1) {
		x = nil // a thief won
	}
	d.bottom.Store(t + 1)
	return x
}

// Steal removes and returns the top item. It returns (nil, false) when
// the deque is empty and (nil, true) when it lost a race and the caller
// may retry. Safe for any goroutine.
func (d *Deque[T]) Steal() (x *T, retry bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil, false
	}
	a := d.array.Load()
	x = a.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil, true
	}
	return x, false
}

// Size returns a point-in-time estimate of the number of items.
func (d *Deque[T]) Size() int64 {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return n
}
