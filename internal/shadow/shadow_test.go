package shadow

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSparseRandomIndexes is the paging property test: hammer random
// sparse indexes (deliberately including page-boundary neighbours) and
// check that every written cell reads back through both the direct and
// the cached path, that untouched cells stay zero, and that only the
// touched pages were allocated.
func TestSparseRandomIndexes(t *testing.T) {
	for _, bound := range []int{-1, 1, PageSize - 1, PageSize, PageSize + 1, 100_000, 1 << 22} {
		bound := bound
		rng := rand.New(rand.NewSource(int64(bound) + 42))
		p := New[int64](bound)
		var pc PageCache

		limit := bound
		if limit < 0 {
			limit = 1 << 30 // growable: exercise far-out indexes
		}
		mirror := map[int]int64{}
		touched := map[int]bool{}
		for k := 0; k < 4000; k++ {
			i := rng.Intn(limit)
			if k%5 == 0 && i >= PageSize {
				// Snap to a page boundary or its neighbour.
				i = (i &^ PageMask) - rng.Intn(2)
			}
			v := rng.Int63()
			if k%2 == 0 {
				*p.Cell(i) = v
			} else {
				*p.CellOf(&pc, i) = v
			}
			mirror[i] = v
			touched[i>>PageShift] = true
		}
		for i, want := range mirror {
			if got := *p.Cell(i); got != want {
				t.Fatalf("bound %d: cell %d = %d, want %d", bound, i, got, want)
			}
			if got := *p.CellOf(&pc, i); got != want {
				t.Fatalf("bound %d: cached cell %d = %d, want %d", bound, i, got, want)
			}
			if j := i + 1; j < limit && mirror[j] == 0 {
				if got := *p.Cell(j); got != 0 {
					t.Fatalf("bound %d: untouched neighbour %d = %d", bound, j, got)
				}
			}
		}
		if pages, _ := p.Allocated(); int(pages) < len(touched) {
			t.Fatalf("bound %d: %d pages allocated, but %d distinct pages touched", bound, pages, len(touched))
		}
	}
}

// TestLazyAllocation pins the tentpole claim: touching k pages of a huge
// region allocates exactly k pages, and cell accounting matches.
func TestLazyAllocation(t *testing.T) {
	const bound = 10 << 20
	p := New[int64](bound)
	var allocated int64
	p.SetOnAlloc(func(cells int) { allocated += int64(cells) })

	for g := 0; g < 25; g++ {
		*p.Cell(g * 100 * PageSize) = 1 // one cell per distinct page
	}
	pages, cells := p.Allocated()
	if pages != 25 {
		t.Fatalf("allocated %d pages, want 25", pages)
	}
	if cells != 25*PageSize {
		t.Fatalf("allocated %d cells, want %d", cells, 25*PageSize)
	}
	if allocated != cells {
		t.Fatalf("onAlloc saw %d cells, accounting says %d", allocated, cells)
	}
}

// TestShortLastPage: a bounded region's last page is clipped to the
// bound, and indexes past the bound panic like a flat slice would.
func TestShortLastPage(t *testing.T) {
	const bound = PageSize + 10
	p := New[int8](bound)
	*p.Cell(bound - 1) = 7
	if _, cells := p.Allocated(); cells != 10 {
		t.Fatalf("clipped page has %d cells, want 10", cells)
	}
	for _, i := range []int{bound, bound + 5000, 3 * PageSize, -1} {
		i := i
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Cell(%d) on bound-%d region did not panic", i, bound)
				}
			}()
			p.Cell(i)
		}()
	}
}

// TestConcurrentPublication hammers random cells from all cores with
// atomic increments: every increment must land exactly once no matter
// which goroutine's page allocation wins the CAS. Run under -race in CI.
func TestConcurrentPublication(t *testing.T) {
	const (
		goroutines = 8
		perG       = 20_000
		span       = 64 * PageSize
	)
	p := New[atomic.Int64](-1)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var pc PageCache
			for k := 0; k < perG; k++ {
				// Bias toward boundaries so racing first-touches of the
				// same fresh page are common.
				i := rng.Intn(span) &^ PageMask
				i += rng.Intn(4)
				p.CellOf(&pc, i).Add(1)
			}
		}(int64(g))
	}
	wg.Wait()
	var total int64
	p.Range(func(_ int, cells []atomic.Int64) {
		for i := range cells {
			total += cells[i].Load()
		}
	})
	if want := int64(goroutines * perG); total != want {
		t.Fatalf("lost updates: counted %d, want %d", total, want)
	}
}

// TestPageCacheCounts pins the hit/miss accounting of the dense sweep:
// one miss per page, hits for everything else, and TakeCounts drains.
func TestPageCacheCounts(t *testing.T) {
	const n = 3 * PageSize
	p := New[int64](n)
	var pc PageCache
	for i := 0; i < n; i++ {
		*p.CellOf(&pc, i) = int64(i)
	}
	hits, misses := pc.TakeCounts()
	if misses != 3 {
		t.Fatalf("dense sweep took %d misses, want 3 (one per page)", misses)
	}
	if hits != n-3 {
		t.Fatalf("dense sweep took %d hits, want %d", hits, n-3)
	}
	if h, m := pc.TakeCounts(); h != 0 || m != 0 {
		t.Fatalf("TakeCounts did not drain: %d/%d", h, m)
	}
}

// TestRange: iteration visits exactly the allocated pages, in ascending
// order, with correct start indexes.
func TestRange(t *testing.T) {
	p := New[int32](-1)
	want := []int{0, 5, 6, 300} // page indexes spread across superblocks
	for _, g := range want {
		*p.Cell(g*PageSize + 3) = int32(g + 1)
	}
	var got []int
	p.Range(func(start int, cells []int32) {
		if start&PageMask != 0 {
			t.Fatalf("page start %d not page-aligned", start)
		}
		if cells[3] != int32(start>>PageShift+1) {
			t.Fatalf("page %d carries %d", start>>PageShift, cells[3])
		}
		got = append(got, start>>PageShift)
	})
	for i, g := range got {
		if g != want[i] {
			t.Fatalf("Range visited %v, want %v", got, want)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("Range visited %d pages, want %d", len(got), len(want))
	}
}

// TestDistinctRegionsShareCache: two regions used through one cache must
// not corrupt each other's lookups even when they collide on a slot.
func TestDistinctRegionsShareCache(t *testing.T) {
	var pc PageCache
	a := New[int64](PageSize)
	b := New[int64](PageSize)
	for i := 0; i < PageSize; i++ {
		*a.CellOf(&pc, i) = int64(i)
		*b.CellOf(&pc, i) = int64(-i)
	}
	for i := 0; i < PageSize; i++ {
		if *a.CellOf(&pc, i) != int64(i) || *b.CellOf(&pc, i) != int64(-i) {
			t.Fatalf("cross-region corruption at %d", i)
		}
	}
}
