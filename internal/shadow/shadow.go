// Package shadow provides the paged shadow-memory substrate shared by
// every detector: a two-level, lazily allocated page table of generic
// shadow cells, plus the per-task page cache that keeps the dense-access
// hot path at one compare and one pointer chase.
//
// The paper sizes shadow memory eagerly — one word per monitored element
// at allocation time — which is fine for its dense PLDI kernels but fatal
// for huge, sparse, or growing regions: a 100M-element array that touches
// 1% of its elements would still pay 100% of the shadow RAM. Pages fixes
// the cost model: shadow cells live in fixed-size pages (PageSize cells)
// allocated on first access, so a region pays for exactly the pages it
// touches. The same mechanism makes regions growable — an unbounded page
// index space needs no reallocation, which is what backs mem.List.
//
// # Page table layout
//
// A naive growable page table (a slice of page pointers, copied on grow)
// cannot be published without locks: a concurrent CAS into the old copy
// would be lost. Instead Pages uses a geometric superblock directory, the
// standard lock-free growable-array scheme: a fixed root of dirBlocks
// slots where block s, allocated lazily as one CAS-published slice,
// holds 2^s page slots. Page p lives in block s = floor(log2(p+1)) at
// offset p+1-2^s; both are a couple of bit operations. The root is fixed
// size, so nothing is ever copied or retired, and both block and page
// publication are a single CompareAndSwap: losers drop their allocation
// and adopt the winner's, and a published page is immutable in place, so
// readers can cache raw pointers to it forever.
//
// Page contents are zeroed Go allocations published via atomic pointers,
// so a reader that observes the pointer also observes the zeroed cells;
// every detector's cell type is designed so the zero value means "no
// access recorded".
package shadow

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"unsafe"
)

const (
	// PageShift is log2 of the page size. 4096 cells per page keeps the
	// lazy-allocation granularity fine enough that a 1-element Var pays
	// one short page, while a page of 40-byte SPD3 CAS cells (160 KiB)
	// amortizes its table slot and allocation over thousands of
	// accesses; it also makes the in-page offset a single AND.
	PageShift = 12
	// PageSize is the number of shadow cells per page.
	PageSize = 1 << PageShift
	// PageMask extracts the in-page offset from a cell index.
	PageMask = PageSize - 1
)

// dirBlocks is the size of the fixed directory root. Block s holds 2^s
// page slots, so 52 blocks address 2^52 pages = 2^64 cells — every
// non-negative int index on a 64-bit platform. A negative index shifts
// to a page beyond the last block and panics on the directory bound,
// matching the slice-bounds panic a flat shadow would raise.
const dirBlocks = 52

// Pages is one region's shadow storage: a lock-free two-level table of
// lazily allocated pages of C cells. All methods are safe for concurrent
// use. The zero value is not usable; call New.
type Pages[C any] struct {
	bound   int64 // cells in the region; -1 = growable (unbounded)
	npages  atomic.Int64
	ncells  atomic.Int64
	onAlloc func(cells int)

	// dir[s] is superblock s: nil until some page in [2^s-1, 2^(s+1)-1)
	// is first touched, then a CAS-published slice of 2^s page slots.
	dir [dirBlocks]atomic.Pointer[[]atomic.Pointer[[]C]]
}

// New returns empty paged storage for a region of bound cells; bound < 0
// means growable (any non-negative index is valid and pages are
// allocated as the region extends).
func New[C any](bound int) *Pages[C] {
	p := &Pages[C]{bound: int64(bound)}
	if bound < 0 {
		p.bound = -1
	}
	return p
}

// Bound returns the region's cell count, or -1 for a growable region.
func (p *Pages[C]) Bound() int { return int(p.bound) }

// SetOnAlloc installs a hook called once per page allocation with the
// page's cell count (pages clipped by the bound are short). Install it
// before the region is accessed; it may be called from any accessing
// goroutine, at most once per page.
func (p *Pages[C]) SetOnAlloc(f func(cells int)) { p.onAlloc = f }

// Allocated returns the number of pages and cells allocated so far.
func (p *Pages[C]) Allocated() (pages, cells int64) {
	return p.npages.Load(), p.ncells.Load()
}

// slot returns the directory slot of page g, allocating (and
// CAS-publishing) its superblock if needed.
func (p *Pages[C]) slot(g uint64) *atomic.Pointer[[]C] {
	s := bits.Len64(g+1) - 1
	blk := p.dir[s].Load()
	if blk == nil {
		fresh := make([]atomic.Pointer[[]C], 1<<uint(s))
		if p.dir[s].CompareAndSwap(nil, &fresh) {
			blk = &fresh
		} else {
			blk = p.dir[s].Load()
		}
	}
	return &(*blk)[g-(1<<uint(s)-1)]
}

// pageRef returns page g's cell slice, allocating and publishing it on
// first touch. The returned pointer is stable for the region's lifetime.
func (p *Pages[C]) pageRef(g uint64) *[]C {
	sl := p.slot(g)
	if ref := sl.Load(); ref != nil {
		return ref
	}
	return p.allocPage(g, sl)
}

func (p *Pages[C]) allocPage(g uint64, sl *atomic.Pointer[[]C]) *[]C {
	n := int64(PageSize)
	if p.bound >= 0 {
		rem := p.bound - int64(g)<<PageShift
		if rem <= 0 {
			panic(fmt.Sprintf("shadow: index out of range for region of %d cells", p.bound))
		}
		if rem < n {
			n = rem // last page of a bounded region is clipped
		}
	}
	pg := make([]C, n)
	if !sl.CompareAndSwap(nil, &pg) {
		return sl.Load() // lost the publication race; adopt the winner
	}
	p.npages.Add(1)
	p.ncells.Add(n)
	if p.onAlloc != nil {
		p.onAlloc(int(n))
	}
	return &pg
}

// Cell returns a pointer to cell i, allocating its page on first touch.
// Out-of-bound or negative indexes panic, mirroring a flat slice.
func (p *Pages[C]) Cell(i int) *C {
	return &(*p.pageRef(uint64(i) >> PageShift))[i&PageMask]
}

// CellOf is Cell through a task-owned page cache: a hit costs one
// owner+page compare and one bounds-checked index — the dense sequential
// hot path. pc must be owned by the calling goroutine (it is mutated
// without synchronization); the cached page pointers stay valid forever
// because published pages are never moved or freed.
func (p *Pages[C]) CellOf(pc *PageCache, i int) *C {
	g := int64(uint64(i) >> PageShift)
	sl := &pc.slots[cacheSlot(unsafe.Pointer(p))]
	if sl.owner == unsafe.Pointer(p) && sl.page == g {
		pc.hits++
		return &(*(*[]C)(sl.data))[i&PageMask]
	}
	pc.misses++
	ref := p.pageRef(uint64(g))
	*sl = pageSlot{owner: unsafe.Pointer(p), page: g, data: unsafe.Pointer(ref)}
	return &(*ref)[i&PageMask]
}

// Range calls f with every allocated page — the region index of its
// first cell and its cell slice — in ascending page order. Pages
// published concurrently with the iteration may or may not be visited.
func (p *Pages[C]) Range(f func(start int, cells []C)) {
	for s := 0; s < dirBlocks; s++ {
		blk := p.dir[s].Load()
		if blk == nil {
			continue
		}
		first := uint64(1)<<uint(s) - 1
		for off := range *blk {
			if ref := (*blk)[off].Load(); ref != nil {
				f(int((first+uint64(off))<<PageShift), *ref)
			}
		}
	}
}

// cacheSlots is the page-cache associativity. Direct-mapping by region
// identity (not page number) keeps a region's slot stable under dense
// sweeps; four slots let the common kernels that alternate between a few
// regions (read plain, write crypt) keep one page each.
const cacheSlots = 4

// cacheSlot picks a PageCache slot from a region's identity. Heap
// objects are at least 16-byte aligned, so the low bits above the
// alignment carry the entropy.
func cacheSlot(region unsafe.Pointer) uintptr {
	return (uintptr(region) >> 4) & (cacheSlots - 1)
}

// PageCache is a small direct-mapped cache of (region, page) → page
// pointer, embedded in each runtime task (detect.Task.PC) and threaded
// through the shadow hot path — the paging analogue of the detector's
// per-task DMHP memo. It is owned by the task's goroutine: the detect
// event contract delivers every access from the accessing task's
// goroutine, so no synchronization is needed. Hits and misses are
// batched in plain integers; the runtime flushes them into the stats
// shards at task end via TakeCounts.
type PageCache struct {
	slots  [cacheSlots]pageSlot
	hits   int64
	misses int64
}

// pageSlot caches one region's last-touched page. owner discriminates
// regions (and cell types: distinct Pages[C] instantiations are distinct
// owners, so a type-mismatched reinterpretation is impossible — data is
// only ever read back through the owner's own C).
type pageSlot struct {
	owner unsafe.Pointer // the *Pages[C] this entry belongs to
	page  int64
	data  unsafe.Pointer // the stable *[]C published in the page table
}

// TakeCounts returns the batched hit/miss tallies and zeroes them.
func (pc *PageCache) TakeCounts() (hits, misses int64) {
	hits, misses = pc.hits, pc.misses
	pc.hits, pc.misses = 0, 0
	return hits, misses
}
