// Package graph is a precise race oracle used to validate the detectors.
//
// It records the step-level computation DAG of an async/finish execution
// — program-order edges within a task, spawn edges from the spawning step
// to the child's first step, and join edges from each task's final step to
// the continuation of its immediately enclosing finish — and then decides
// "may happen in parallel" by graph reachability: two steps are parallel
// iff neither reaches the other. Because the async/finish happens-before
// relation is schedule-independent, the DAG from a single (sequential)
// execution determines the ground truth for every schedule: a program has
// a race iff two conflicting accesses sit on parallel steps.
//
// This is the brute-force O(V·E) characterization the paper's Theorems 1–3
// are proved against; the property-based tests in package progen use it to
// cross-check SPD3, ESP-bags, and FastTrack on randomly generated
// programs.
package graph

import (
	"fmt"

	"spd3/internal/detect"
)

// gstep is one node of the computation DAG.
type gstep struct {
	id    int
	succs []int
}

// access is one recorded memory access.
type access struct {
	step    int
	isWrite bool
}

// Oracle is a detect.Detector that records instead of detecting. Run the
// program under it (sequential executor only), then query Races or MHP.
//
// For pure async/finish programs the recorded DAG is schedule-independent
// and the verdict covers every schedule (the paper's setting). When the
// program uses locks, the oracle additionally records release→acquire
// edges in the observed order — the happens-before relation of the
// observed trace — which is the ground truth a per-trace-precise detector
// like FastTrack must match. Steps are split at lock operations so these
// edges order only the accesses actually inside/outside the critical
// sections.
type Oracle struct {
	steps   []*gstep
	regions map[string]*regionLog
	lastRel map[int64]*gstep // lock id -> most recent releasing step

	reach []bitset // computed lazily by finalize
}

// regionLog collects per-element access logs for one shadow region.
type regionLog struct {
	name  string
	elems [][]access
}

// New returns an empty oracle.
func New() *Oracle {
	return &Oracle{
		regions: make(map[string]*regionLog),
		lastRel: make(map[int64]*gstep),
	}
}

// Name implements detect.Detector.
func (o *Oracle) Name() string { return "oracle" }

// RequiresSequential implements detect.Detector. The oracle mutates its
// DAG without synchronization, so it runs depth-first only; the recorded
// DAG is schedule-independent anyway.
func (o *Oracle) RequiresSequential() bool { return true }

type taskState struct{ cur *gstep }

type finishState struct {
	lastSteps []*gstep
}

func (o *Oracle) newStep() *gstep {
	s := &gstep{id: len(o.steps)}
	o.steps = append(o.steps, s)
	return s
}

func (o *Oracle) edge(from, to *gstep) {
	from.succs = append(from.succs, to.id)
}

// MainTask implements detect.Detector.
func (o *Oracle) MainTask(t *detect.Task, implicit *detect.Finish) {
	t.State = &taskState{cur: o.newStep()}
	implicit.State = &finishState{}
}

// BeforeSpawn implements detect.Detector.
func (o *Oracle) BeforeSpawn(parent, child *detect.Task) {
	ps := parent.State.(*taskState)
	pre := ps.cur
	first := o.newStep()
	o.edge(pre, first)
	child.State = &taskState{cur: first}
	cont := o.newStep()
	o.edge(pre, cont)
	ps.cur = cont
}

// TaskEnd implements detect.Detector: remember the task's final step for
// the join edge at its IEF.
func (o *Oracle) TaskEnd(t *detect.Task) {
	ts := t.State.(*taskState)
	fs := t.IEF.State.(*finishState)
	fs.lastSteps = append(fs.lastSteps, ts.cur)
}

// FinishStart implements detect.Detector.
func (o *Oracle) FinishStart(t *detect.Task, f *detect.Finish) {
	ts := t.State.(*taskState)
	inside := o.newStep()
	o.edge(ts.cur, inside)
	ts.cur = inside
	f.State = &finishState{}
}

// FinishEnd implements detect.Detector: join edges from every task of the
// scope to the continuation.
func (o *Oracle) FinishEnd(t *detect.Task, f *detect.Finish) {
	ts := t.State.(*taskState)
	fs := f.State.(*finishState)
	cont := o.newStep()
	o.edge(ts.cur, cont)
	for _, last := range fs.lastSteps {
		o.edge(last, cont)
	}
	ts.cur = cont
}

// Acquire starts a fresh step ordered after the lock's previous release
// (observed-trace lock edge).
func (o *Oracle) Acquire(t *detect.Task, l *detect.Lock) {
	ts := t.State.(*taskState)
	in := o.newStep()
	o.edge(ts.cur, in)
	if rel := o.lastRel[l.ID]; rel != nil {
		o.edge(rel, in)
	}
	ts.cur = in
}

// Release remembers the current (critical-section) step as the lock's
// latest release point and starts a fresh step, so accesses after the
// release are not dragged into the lock edge.
func (o *Oracle) Release(t *detect.Task, l *detect.Lock) {
	ts := t.State.(*taskState)
	o.lastRel[l.ID] = ts.cur
	out := o.newStep()
	o.edge(ts.cur, out)
	ts.cur = out
}

// NewShadow implements detect.Detector. Growable regions start empty and
// extend on first access — the oracle is sequential-only, so plain slice
// growth is safe.
func (o *Oracle) NewShadow(spec detect.ShadowSpec) detect.Shadow {
	r := &regionLog{name: spec.Name, elems: make([][]access, spec.Len)}
	o.regions[spec.Name] = r
	return &recorder{o: o, r: r}
}

// Footprint implements detect.Detector; the oracle is test-only.
func (o *Oracle) Footprint() detect.Footprint { return detect.Footprint{} }

type recorder struct {
	o *Oracle
	r *regionLog
}

func (rec *recorder) log(t *detect.Task, i int, isWrite bool) {
	for i >= len(rec.r.elems) {
		rec.r.elems = append(rec.r.elems, nil)
	}
	cur := t.State.(*taskState).cur
	rec.r.elems[i] = append(rec.r.elems[i], access{step: cur.id, isWrite: isWrite})
}

func (rec *recorder) Read(t *detect.Task, i int)  { rec.log(t, i, false) }
func (rec *recorder) Write(t *detect.Task, i int) { rec.log(t, i, true) }

// bitset is a fixed-size bit vector.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }
func (b bitset) or(o bitset) {
	for i := range o {
		b[i] |= o[i]
	}
}

// finalize computes the transitive reachability of every step. Step IDs
// are assigned in creation order during a sequential execution, which is
// a topological order of the DAG, so a single reverse sweep suffices.
func (o *Oracle) finalize() {
	if o.reach != nil {
		return
	}
	n := len(o.steps)
	o.reach = make([]bitset, n)
	for i := n - 1; i >= 0; i-- {
		b := newBitset(n)
		b.set(i)
		for _, s := range o.steps[i].succs {
			b.or(o.reach[s])
		}
		o.reach[i] = b
	}
}

// MHP reports whether steps a and b (by id) may happen in parallel:
// neither reaches the other.
func (o *Oracle) MHP(a, b int) bool {
	o.finalize()
	if a == b {
		return false
	}
	return !o.reach[a].get(b) && !o.reach[b].get(a)
}

// Steps returns the number of recorded steps.
func (o *Oracle) Steps() int { return len(o.steps) }

// Races returns the ground-truth set of racy locations: every (region,
// index) with two conflicting accesses on parallel steps.
func (o *Oracle) Races() []detect.Race {
	o.finalize()
	var out []detect.Race
	for name, r := range o.regions {
		for i, log := range r.elems {
			if race, a, b := raceIn(o, log); race {
				out = append(out, detect.Race{
					Region:   name,
					Index:    i,
					PrevStep: fmt.Sprintf("step#%d", a),
					CurStep:  fmt.Sprintf("step#%d", b),
				})
			}
		}
	}
	return out
}

// HasRace reports whether any location races.
func (o *Oracle) HasRace() bool {
	o.finalize()
	for _, r := range o.regions {
		for _, log := range r.elems {
			if race, _, _ := raceIn(o, log); race {
				return true
			}
		}
	}
	return false
}

// raceIn scans one element's access log for a conflicting parallel pair.
func raceIn(o *Oracle, log []access) (bool, int, int) {
	for i := 0; i < len(log); i++ {
		for j := i + 1; j < len(log); j++ {
			if !log[i].isWrite && !log[j].isWrite {
				continue
			}
			if log[i].step == log[j].step {
				continue
			}
			if o.MHP(log[i].step, log[j].step) {
				return true, log[i].step, log[j].step
			}
		}
	}
	return false, 0, 0
}

var _ detect.Detector = (*Oracle)(nil)
