package graph

import (
	"testing"

	"spd3/internal/detect"
	"spd3/internal/task"
)

func record(t *testing.T, body func(c *task.Ctx, sh detect.Shadow)) *Oracle {
	t.Helper()
	o := New()
	rt, err := task.New(task.Config{Executor: task.Sequential, Detector: o})
	if err != nil {
		t.Fatal(err)
	}
	sh := o.NewShadow(detect.Spec("v", 8, 8))
	if err := rt.Run(func(c *task.Ctx) { body(c, sh) }); err != nil {
		t.Fatal(err)
	}
	return o
}

func TestNoRaceSequential(t *testing.T) {
	o := record(t, func(c *task.Ctx, sh detect.Shadow) {
		sh.Write(c.Task(), 0)
		sh.Read(c.Task(), 0)
		sh.Write(c.Task(), 0)
	})
	if o.HasRace() {
		t.Fatal("sequential accesses flagged")
	}
}

func TestParallelWritesRace(t *testing.T) {
	o := record(t, func(c *task.Ctx, sh detect.Shadow) {
		c.FinishAsync(2, func(c *task.Ctx, i int) { sh.Write(c.Task(), 0) })
	})
	if !o.HasRace() {
		t.Fatal("parallel writes not flagged")
	}
	if races := o.Races(); len(races) != 1 || races[0].Index != 0 {
		t.Fatalf("races = %v", races)
	}
}

func TestFinishOrders(t *testing.T) {
	o := record(t, func(c *task.Ctx, sh detect.Shadow) {
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
		})
		sh.Write(c.Task(), 0)
	})
	if o.HasRace() {
		t.Fatal("finish-ordered writes flagged")
	}
}

func TestSpawnOrdersPrefixOnly(t *testing.T) {
	o := record(t, func(c *task.Ctx, sh detect.Shadow) {
		sh.Write(c.Task(), 0) // before spawn: ordered
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
			sh.Write(c.Task(), 1) // parallel with the async, different var
		})
	})
	if o.HasRace() {
		t.Fatal("no conflicting parallel accesses, but race reported")
	}

	o = record(t, func(c *task.Ctx, sh detect.Shadow) {
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
			sh.Write(c.Task(), 0) // continuation conflicts with async
		})
	})
	if !o.HasRace() {
		t.Fatal("continuation/async conflict not flagged")
	}
}

func TestTransitiveJoin(t *testing.T) {
	o := record(t, func(c *task.Ctx, sh detect.Shadow) {
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) {
				c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
			})
		})
		sh.Write(c.Task(), 0)
	})
	if o.HasRace() {
		t.Fatal("transitively joined write flagged")
	}
}

func TestInnerFinishDoesNotJoinOuterTasks(t *testing.T) {
	o := record(t, func(c *task.Ctx, sh detect.Shadow) {
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
			c.Finish(func(c *task.Ctx) {
				c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 1) })
			})
			sh.Write(c.Task(), 0) // still parallel with the first async
		})
	})
	if !o.HasRace() {
		t.Fatal("async outside inner finish wrongly serialized")
	}
}

func TestMHPSymmetricIrreflexive(t *testing.T) {
	o := record(t, func(c *task.Ctx, sh detect.Shadow) {
		c.FinishAsync(3, func(c *task.Ctx, i int) { sh.Read(c.Task(), i) })
	})
	n := o.Steps()
	for a := 0; a < n; a++ {
		if o.MHP(a, a) {
			t.Fatalf("MHP(%d,%d) true", a, a)
		}
		for b := 0; b < n; b++ {
			if o.MHP(a, b) != o.MHP(b, a) {
				t.Fatalf("MHP not symmetric at (%d,%d)", a, b)
			}
		}
	}
}

func TestLockEdgesOrderCriticalSections(t *testing.T) {
	o := New()
	rt, err := task.New(task.Config{Executor: task.Sequential, Detector: o})
	if err != nil {
		t.Fatal(err)
	}
	sh := o.NewShadow(detect.Spec("v", 2, 8))
	l := rt.NewLock()
	err = rt.Run(func(c *task.Ctx) {
		c.FinishAsync(3, func(c *task.Ctx, i int) {
			c.Acquire(l)
			sh.Read(c.Task(), 0)
			sh.Write(c.Task(), 0)
			c.Release(l)
			sh.Write(c.Task(), 1) // outside the lock: still parallel
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	races := o.Races()
	if len(races) != 1 || races[0].Index != 1 {
		t.Fatalf("races = %v, want exactly the unlocked index 1", races)
	}
}

func TestLockEdgeDoesNotOrderPostRelease(t *testing.T) {
	// Accesses after a release must not inherit the release's ordering
	// to the next acquirer (the over-ordering bug class).
	o := New()
	rt, err := task.New(task.Config{Executor: task.Sequential, Detector: o})
	if err != nil {
		t.Fatal(err)
	}
	sh := o.NewShadow(detect.Spec("v", 1, 8))
	l := rt.NewLock()
	err = rt.Run(func(c *task.Ctx) {
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) {
				c.Acquire(l)
				c.Release(l)
				sh.Write(c.Task(), 0) // after release
			})
			c.Async(func(c *task.Ctx) {
				c.Acquire(l)
				sh.Write(c.Task(), 0) // inside second critical section
				c.Release(l)
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !o.HasRace() {
		t.Fatal("post-release write wrongly ordered before the next critical section")
	}
}

func TestReadReadNeverRaces(t *testing.T) {
	o := record(t, func(c *task.Ctx, sh detect.Shadow) {
		c.FinishAsync(4, func(c *task.Ctx, i int) { sh.Read(c.Task(), 0) })
	})
	if o.HasRace() {
		t.Fatal("parallel reads flagged")
	}
}
