package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"text/tabwriter"
)

// Table is one experiment's result in structured form, renderable as
// aligned text or CSV.
type Table struct {
	// Title is the paper artifact name plus configuration notes.
	Title string
	// Notes are free-form caption lines printed under the title.
	Notes []string
	// Header names the columns.
	Header []string
	// Rows hold the cells, already formatted.
	Rows [][]string
}

// AddRow appends one row; cells are formatted with %v (floats as %.2f,
// durations as seconds).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Format selects a Table renderer.
type Format uint8

// Formats.
const (
	// Text renders an aligned human-readable table (default).
	Text Format = iota
	// CSV renders RFC-4180 CSV with the title as a comment-like first
	// record.
	CSV
)

// Render writes the table to w in the given format.
func (t *Table) Render(w io.Writer, f Format) error {
	switch f {
	case CSV:
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"# " + t.Title}); err != nil {
			return err
		}
		if err := cw.Write(t.Header); err != nil {
			return err
		}
		for _, r := range t.Rows {
			if err := cw.Write(r); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	default:
		if _, err := fmt.Fprintln(w, t.Title); err != nil {
			return err
		}
		for _, n := range t.Notes {
			if _, err := fmt.Fprintln(w, n); err != nil {
				return err
			}
		}
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for i, h := range t.Header {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, h)
		}
		fmt.Fprintln(tw)
		for _, r := range t.Rows {
			for i, c := range r {
				if i > 0 {
					fmt.Fprint(tw, "\t")
				}
				fmt.Fprint(tw, c)
			}
			fmt.Fprintln(tw)
		}
		return tw.Flush()
	}
}
