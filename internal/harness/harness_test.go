package harness

import (
	"strings"
	"testing"

	"spd3/internal/bench"
)

// tinyCfg keeps the full experiment matrix fast in tests.
func tinyCfg() Config {
	return Config{Scale: 0.08, Repeats: 1, Threads: []int{1, 2}}
}

// TestEveryExperimentRuns executes all nine experiments end to end at a
// tiny scale and sanity-checks their tables.
func TestEveryExperimentRuns(t *testing.T) {
	wantTitle := map[string]string{
		"table1":             "Table 1",
		"fig3":               "Figure 3",
		"fig4":               "Figure 4",
		"table2":             "Table 2",
		"table3":             "Table 3",
		"fig5":               "Figure 5",
		"fig6":               "Figure 6",
		"ablation-sync":      "Ablation §5.4",
		"ablation-stepcache": "Ablation §5.5",
		"ablation-dmhp":      "Ablation: DMHP fast path",
		"stats":              "Observability counters",
		"sparse":             "Sparse shadow",
		"ablation-sample":    "Sampling ablation",
	}
	exps := Experiments()
	if len(exps) != len(wantTitle) {
		t.Fatalf("%d experiments, want %d", len(exps), len(wantTitle))
	}
	for _, e := range exps {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(tinyCfg())
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(tbl.Title, wantTitle[e.ID]) {
				t.Errorf("title = %q, want prefix %q", tbl.Title, wantTitle[e.ID])
			}
			if len(tbl.Header) < 2 || len(tbl.Rows) < 2 {
				t.Errorf("suspiciously small table: %dx%d", len(tbl.Rows), len(tbl.Header))
			}
			for i, r := range tbl.Rows {
				if len(r) != len(tbl.Header) {
					t.Errorf("row %d has %d cells, header has %d", i, len(r), len(tbl.Header))
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig3"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id must fail")
	}
}

// TestFig3RowsCoverSuite: fig3 must emit one row per benchmark plus the
// geomean.
func TestFig3RowsCoverSuite(t *testing.T) {
	tbl, err := fig3(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(bench.All()) + 1; len(tbl.Rows) != want {
		t.Fatalf("fig3 has %d rows, want %d", len(tbl.Rows), want)
	}
	names := map[string]bool{}
	for _, r := range tbl.Rows {
		names[r[0]] = true
	}
	for _, b := range bench.All() {
		if !names[b.Name] {
			t.Errorf("fig3 missing %s", b.Name)
		}
	}
	if !names["GeoMean"] {
		t.Error("fig3 missing GeoMean row")
	}
}

// TestFig6MemoryShape pins the headline memory shape at test scale:
// FastTrack's footprint must grow markedly with workers while SPD3's
// stays near-constant.
func TestFig6MemoryShape(t *testing.T) {
	// Scale must be large enough that per-location shadow state (O(n²)
	// for LUFact) dominates the DPST (O(n·workers) when chunked, and
	// now carrying a per-node path fingerprint); at real scales the gap
	// is orders of magnitude (see EXPERIMENTS.md fig6).
	cfg := Config{Scale: 0.4, Repeats: 1}
	b, err := bench.ByName("LUFact")
	if err != nil {
		t.Fatal(err)
	}
	in := bench.Input{Scale: cfg.Scale, Chunked: true}
	cfg = cfg.withDefaults()
	ft1, err := cfg.measure(b, FastTrack, 1, in)
	if err != nil {
		t.Fatal(err)
	}
	ft16, err := cfg.measure(b, FastTrack, 16, in)
	if err != nil {
		t.Fatal(err)
	}
	sp1, err := cfg.measure(b, SPD3, 1, in)
	if err != nil {
		t.Fatal(err)
	}
	sp16, err := cfg.measure(b, SPD3, 16, in)
	if err != nil {
		t.Fatal(err)
	}
	ftGrowth := float64(ft16.Footprint.Total()) / float64(ft1.Footprint.Total())
	spGrowth := float64(sp16.Footprint.Total()) / float64(sp1.Footprint.Total())
	if ftGrowth < 2 {
		t.Errorf("FastTrack memory growth 1->16 workers = %.2fx, want >= 2x", ftGrowth)
	}
	// SPD3's per-location state is constant; only the DPST grows (with
	// task count, which chunking ties to the worker count), so its
	// growth must stay well below FastTrack's.
	if spGrowth > ftGrowth/2 {
		t.Errorf("SPD3 memory growth %.2fx not clearly below FastTrack's %.2fx", spGrowth, ftGrowth)
	}
	if ft16.Footprint.Total() < 2*sp16.Footprint.Total() {
		t.Errorf("FastTrack (%d B) not clearly above SPD3 (%d B) at 16 workers",
			ft16.Footprint.Total(), sp16.Footprint.Total())
	}
}

func TestGeoMean(t *testing.T) {
	if g := geoMean([]float64{2, 8}); g != 4 {
		t.Errorf("geoMean(2,8) = %v, want 4", g)
	}
	if g := geoMean(nil); g != 0 {
		t.Errorf("geoMean(nil) = %v, want 0", g)
	}
}

func TestTableRenderText(t *testing.T) {
	tbl := &Table{
		Title:  "T",
		Notes:  []string{"note"},
		Header: []string{"A", "B"},
	}
	tbl.AddRow("x", 1.5)
	var sb strings.Builder
	if err := tbl.Render(&sb, Text); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"T\n", "note", "A", "B", "x", "1.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"A", "B"}}
	tbl.AddRow("x", 2.0)
	tbl.AddRow("y", 3)
	var sb strings.Builder
	if err := tbl.Render(&sb, CSV); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 || lines[1] != "A,B" || lines[2] != "x,2.00" || lines[3] != "y,3" {
		t.Fatalf("csv output = %q", sb.String())
	}
}
