// The sampling ablation: how much detection probability each sampling
// mode buys per unit of overhead. For each (mode, rate) point the table
// reports the dense-kernel overhead relative to the uninstrumented
// baseline, the fraction of shadow accesses actually checked, and the
// detection probability over a corpus of randomly generated programs
// whose races full SPD3 finds — the measured form of the soundness
// argument in DESIGN: sampling never invents a race, it only trades
// detection probability for overhead. A final row runs the governor at
// a 5% budget and reports the rate it settled on.
package harness

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"spd3/internal/bench"
	"spd3/internal/detect"
	"spd3/internal/progen"
	"spd3/internal/sample"
	"spd3/internal/stats"
	"spd3/internal/task"
)

// samplePoints is the rate sweep per mode. 1.0 is the check-everything
// control: its overhead should match plain SPD3 and its detection
// probability must be exactly 1.
var samplePoints = []float64{0.01, 0.05, 0.25, 1.0}

// sampleSeeds bounds the progen corpus for the detection-probability
// column. Seeds whose full-SPD3 verdict is race-free are skipped, so
// the effective denominator is the racy subset.
const sampleSeeds = 60

// ablationSample produces the overhead-vs-detection table.
func ablationSample(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := cfg.maxThreads()
	b, err := bench.ByName("SOR")
	if err != nil {
		return nil, err
	}
	in := bench.Input{Scale: cfg.Scale}
	base, err := cfg.measure(b, Base, n, in)
	if err != nil {
		return nil, err
	}
	// The reference row is SPD3 without the stats recorder: the sampled
	// rows time a stats-off run too (see measureSampledWith), so every
	// Overhead entry isolates detector cost from counter-tally cost.
	full, err := cfg.measure(b, SPD3NoStats, n, in)
	if err != nil {
		return nil, err
	}
	racySeeds := racyProgenSeeds()

	t := &Table{
		Title: fmt.Sprintf("Sampling ablation: SPD3 on SOR at %d workers, detection over %d racy generated programs", n, len(racySeeds)),
		Notes: []string{
			"Overhead: sampled-SPD3 time / uninstrumented time (full SPD3 shown first; stats recorder off in all timed runs)",
			"CheckedFrac: sample.checked / (sample.checked + sample.skipped)",
			"DetectProb: fraction of racy generated programs still reported racy",
		},
		Header: []string{"Config", "Overhead", "CheckedFrac", "DetectProb"},
	}
	t.AddRow("spd3 (no sampling)", ratio(full.Time, base.Time), 1.0, detectProb(racySeeds, nil))

	for _, mode := range []sample.Mode{sample.Bernoulli, sample.Page, sample.Burst} {
		for _, rate := range samplePoints {
			scfg := sample.Config{Mode: mode, Rate: rate}
			m, err := cfg.measureSampled(b, scfg, 0, n, in)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%s:%g", mode, rate),
				ratio(m.Time, base.Time),
				checkedFrac(m.Stats),
				detectProb(racySeeds, func(seed int64) *sample.Sampler {
					return sample.NewSeeded(scfg, uint64(seed))
				}))
		}
	}

	// The floor row: Bernoulli at the governor's MinRate admits almost
	// nothing, so its overhead is the cost of the gate itself — the
	// bound no sampling rate can go below on this substrate (per-access
	// instrumentation calls survive even when every check is skipped).
	floor, err := cfg.measureSampled(b, sample.Config{Mode: sample.Bernoulli, Rate: sample.MinRate}, 0, n, in)
	if err != nil {
		return nil, err
	}
	t.AddRow("gate floor (bernoulli:min)", ratio(floor.Time, base.Time), checkedFrac(floor.Stats), 0.0)

	// The governor row: one persistent governor observes repeated runs
	// until its rate stops moving (a deployment's replay segments give it
	// the same stream), then the settled configuration is measured like
	// any fixed point. On a kernel this dense a 5% budget drives the rate
	// to the floor — the overhead left is the gate itself.
	gcfg := sample.Config{Mode: sample.Bernoulli, Rate: 1}
	gov := sample.NewGovernor(gcfg, 0.05)
	warm := cfg
	warm.Repeats = 1
	for i := 0; i < 16; i++ {
		before := gov.Rate()
		if _, err := warm.measureSampledWith(b, func() *sample.Sampler { return gov.Sampler() }, gov, n, in); err != nil {
			return nil, err
		}
		if after := gov.Rate(); after == before {
			break
		}
	}
	m, err := cfg.measureSampled(b, sample.Config{Mode: sample.Bernoulli, Rate: gov.Rate()}, 0, n, in)
	if err != nil {
		return nil, err
	}
	settled := sample.Config{Mode: sample.Bernoulli, Rate: gov.Rate()}
	t.AddRow(fmt.Sprintf("governor 5%% on SOR (settled rate %.4f)", gov.Rate()),
		ratio(m.Time, base.Time),
		checkedFrac(m.Stats),
		detectProb(racySeeds, func(seed int64) *sample.Sampler {
			return sample.NewSeeded(settled, uint64(seed))
		}))

	// The governor's other regime: settled on the light progen corpus
	// itself, where a 5% budget affords a high rate. This is the
	// deployment-matched detection number — the rate the governor holds
	// on the workload whose races it is asked to catch, not a rate
	// imported from a hotter kernel.
	pgov := sample.NewGovernor(gcfg, 0.05)
	for i := 0; i < 8; i++ {
		before := pgov.Rate()
		progenCorpus(racySeeds, "spd3", func(int64) *sample.Sampler { return pgov.Sampler() }, pgov)
		if pgov.Rate() == before {
			break
		}
	}
	psettled := sample.Config{Mode: sample.Bernoulli, Rate: pgov.Rate()}
	pbase, _ := progenCorpus(racySeeds, "none", nil, nil)
	ptime, psnap := progenCorpus(racySeeds, "spd3", func(seed int64) *sample.Sampler {
		return sample.NewSeeded(psettled, uint64(seed))
	}, nil)
	t.AddRow(fmt.Sprintf("governor 5%% on progen (settled rate %.4f)", pgov.Rate()),
		ratio(ptime, pbase), checkedFrac(psnap),
		detectProb(racySeeds, func(seed int64) *sample.Sampler {
			return sample.NewSeeded(psettled, uint64(seed))
		}))
	return t, nil
}

// progenCorpus runs every racy seed under one detector configuration,
// returning the summed wall clock and the corpus' merged stats (gate
// tallies included). mk gets the program seed (the corpus shares a
// handful of shadow locations, so a fixed coin seed would collapse the
// whole corpus onto one assignment — same reasoning as detectProb).
// When gov is non-nil each program's snapshot and wall feed its loop —
// the settle phase of the progen governor row.
func progenCorpus(racySeeds []int64, name string, mk func(seed int64) *sample.Sampler, gov *sample.Governor) (time.Duration, stats.Snapshot) {
	var total time.Duration
	var agg stats.Snapshot
	for _, seed := range racySeeds {
		sink := detect.NewSink(false, 0)
		rec := stats.New(0)
		sink.SetStats(rec.Shard(0))
		var smp *sample.Sampler
		if mk != nil {
			smp = mk(seed)
		}
		det, err := detect.New(name, detect.FactoryOpts{Sink: sink, Stats: rec, Sampler: smp})
		if err != nil {
			panic(err)
		}
		rt, err := task.New(task.Config{Executor: task.Pool, Workers: 2, Detector: det, Stats: rec})
		if err != nil {
			panic(err)
		}
		start := time.Now()
		if err := progen.Run(rt, progen.Generate(seed, progen.Config{}), nil); err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		total += elapsed
		snap := rec.Snapshot()
		if gov != nil {
			gov.ObserveSnapshot(snap, elapsed)
		}
		agg.Merge(snap)
	}
	return total, agg
}

// measureSampled measures SPD3 gated behind a fresh fixed-rate sampler
// per repeat; budget > 0 attaches a governor instead.
func (c Config) measureSampled(b *bench.Benchmark, scfg sample.Config, budget float64, workers int, in bench.Input) (Measurement, error) {
	if budget > 0 {
		gov := sample.NewGovernor(scfg, budget)
		return c.measureSampledWith(b, func() *sample.Sampler { return gov.Sampler() }, gov, workers, in)
	}
	return c.measureSampledWith(b, func() *sample.Sampler { return sample.New(scfg) }, nil, workers, in)
}

// measureSampledWith is cfg.measure for sampled SPD3. Each repeat is a
// pair of runs: a stats-off run whose wall time is the Overhead signal
// (a live recorder adds per-access tallies the uninstrumented baseline
// never pays, which would smear recorder cost into the sampling
// column), and a stats-on run whose snapshot supplies the gate counts.
// When gov is non-nil it observes the counting run's tallies against
// the timed run's wall clock — the deployment-shaped input: real counts,
// real duration.
func (c Config) measureSampledWith(b *bench.Benchmark, mk func() *sample.Sampler, gov *sample.Governor, workers int, in bench.Input) (Measurement, error) {
	var best Measurement
	best.Time = math.MaxInt64
	for rep := 0; rep < c.Repeats; rep++ {
		det, err := detect.New("spd3", detect.FactoryOpts{Sink: detect.NewSink(false, 0), Sampler: mk()})
		if err != nil {
			return Measurement{}, err
		}
		rt, err := task.New(task.Config{Executor: task.Auto, Workers: workers, Detector: det})
		if err != nil {
			return Measurement{}, err
		}
		runtime.GC()
		start := time.Now()
		if _, err := b.Run(rt, in); err != nil {
			return Measurement{}, fmt.Errorf("%s sampled: %w", b.Name, err)
		}
		elapsed := time.Since(start)

		sink := detect.NewSink(false, 0)
		rec := stats.New(0)
		sink.SetStats(rec.Shard(0))
		cdet, err := detect.New("spd3", detect.FactoryOpts{Sink: sink, Stats: rec, Sampler: mk()})
		if err != nil {
			return Measurement{}, err
		}
		crt, err := task.New(task.Config{Executor: task.Auto, Workers: workers, Detector: cdet, Stats: rec})
		if err != nil {
			return Measurement{}, err
		}
		if _, err := b.Run(crt, in); err != nil {
			return Measurement{}, fmt.Errorf("%s sampled (counting): %w", b.Name, err)
		}
		snap := rec.Snapshot()
		snap.Footprint = cdet.Footprint()
		if gov != nil {
			gov.ObserveSnapshot(snap, elapsed)
		}
		if elapsed < best.Time {
			best = Measurement{Time: elapsed, Footprint: snap.Footprint, Stats: snap}
		}
	}
	return best, nil
}

// checkedFrac is the fraction of gate decisions that admitted a check.
func checkedFrac(s stats.Snapshot) float64 {
	checked := s.Get(stats.SampleChecked)
	skipped := s.Get(stats.SampleSkipped)
	if checked+skipped == 0 {
		return 1
	}
	return float64(checked) / float64(checked+skipped)
}

// racyProgenSeeds runs the progen corpus under full SPD3 and returns
// the seeds whose programs are racy — the detection-probability
// denominator.
func racyProgenSeeds() []int64 {
	var racy []int64
	for seed := int64(0); seed < sampleSeeds; seed++ {
		if progenRacy(seed, nil) {
			racy = append(racy, seed)
		}
	}
	return racy
}

// detectProb runs each racy seed under a sampler built by mk (nil means
// no sampling) and returns the fraction still reported racy. mk gets
// the program seed so each program plays a different coin assignment —
// the generated programs all touch the same few shadow locations, and
// with one fixed coin seed the whole corpus would collapse onto the
// same handful of decisions, measuring one deployment's luck instead of
// the ensemble probability. Still reproducible: the coins are a
// deterministic function of the seed and SPD3 on a fixed program is
// schedule-independent.
func detectProb(racySeeds []int64, mk func(seed int64) *sample.Sampler) float64 {
	if len(racySeeds) == 0 {
		return 0
	}
	hits := 0
	for _, seed := range racySeeds {
		var smp *sample.Sampler
		if mk != nil {
			smp = mk(seed)
		}
		if progenRacy(seed, smp) {
			hits++
		}
	}
	return float64(hits) / float64(len(racySeeds))
}

// progenRacy executes generated program seed under SPD3 (sampled when
// smp is non-nil) and reports whether any race was detected.
func progenRacy(seed int64, smp *sample.Sampler) bool {
	sink := detect.NewSink(false, 0)
	rec := stats.New(0)
	sink.SetStats(rec.Shard(0))
	det, err := detect.New("spd3", detect.FactoryOpts{Sink: sink, Stats: rec, Sampler: smp})
	if err != nil {
		panic(err)
	}
	rt, err := task.New(task.Config{Executor: task.Pool, Workers: 2, Detector: det})
	if err != nil {
		panic(err)
	}
	p := progen.Generate(seed, progen.Config{})
	if err := progen.Run(rt, p, nil); err != nil {
		panic(err)
	}
	return len(sink.Races()) > 0
}
