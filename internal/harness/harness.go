// Package harness regenerates every table and figure of the paper's
// evaluation (§6) on the Go reproduction: Figure 3 (SPD3 scalability),
// Figure 4 (ESP-bags vs SPD3), Table 2 (Eraser/FastTrack/SPD3 slowdown),
// Table 3 (memory), Figure 5 (Crypt scaling), Figure 6 (LUFact memory),
// plus Table 1 (the suite) and two ablations (§5.4 shadow-word
// synchronization, §5.5-style dynamic check caching).
//
// Methodology follows the paper where the substrate allows: the reported
// time for each configuration is the smallest of cfg.Repeats runs (§6:
// "the smallest time measured in 3 runs"), slowdowns are relative to the
// uninstrumented baseline at the same worker count unless the experiment
// says otherwise, and averages are geometric means. Memory is the
// detector's deterministic analytic footprint (see detect.Footprint),
// with the process allocation delta reported alongside.
//
// Experiments produce structured Tables renderable as aligned text or
// CSV; cmd/experiments is the command-line front end.
package harness

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"spd3/internal/bench"
	"spd3/internal/detect"
	_ "spd3/internal/detectors" // populate the detector registry
	"spd3/internal/stats"
	"spd3/internal/task"
)

// Config controls an experiment run.
type Config struct {
	// Scale multiplies benchmark problem sizes (default 1).
	Scale float64
	// Repeats is the number of runs per data point; the smallest time
	// wins (default 3).
	Repeats int
	// Threads is the worker-count sweep (default 1,2,4,8,16).
	Threads []int
	// OnStats, when non-nil, receives the observability snapshot of the
	// best run of every measurement (cmd/experiments -stats collects
	// these into a JSON document).
	OnStats func(benchmark string, tool Tool, workers int, s stats.Snapshot)
	// OnMeasure, when non-nil, receives every best-of-repeats
	// measurement (cmd/experiments -json collects these into the
	// BENCH_<n>.json benchmark artifact).
	OnMeasure func(benchmark string, tool Tool, workers int, m Measurement)
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	if len(c.Threads) == 0 {
		c.Threads = []int{1, 2, 4, 8, 16}
	}
	return c
}

// maxThreads returns the largest entry of the sweep (the paper's "16").
func (c Config) maxThreads() int {
	m := 1
	for _, t := range c.Threads {
		if t > m {
			m = t
		}
	}
	return m
}

// Tool names a detector configuration in the experiment tables.
type Tool string

// Tools. Each name (except the two below) is a detect registry name —
// visible detectors or hidden ablation variants alike.
const (
	Base        Tool = "base"
	SPD3        Tool = "spd3" // fingerprint fast path + per-task DMHP memo (the default)
	SPD3Lock    Tool = "spd3-mutex"
	SPD3Cache   Tool = "spd3-stepcache"
	SPD3Walk    Tool = "spd3-walk"    // DMHP via the §5.2 pointer walk only (ablation)
	SPD3FP      Tool = "spd3-fp"      // fingerprints on, per-task memo off (ablation)
	SPD3NoStats Tool = "spd3-nostats" // default SPD3 with the stats recorder disabled (ablation)
	SPD3Flat    Tool = "spd3-flat"    // eager flat shadow instead of lazy pages (ablation)
	ESPBags     Tool = "espbags"
	FastTrack   Tool = "fasttrack"
	Eraser      Tool = "eraser"
)

// NewDetector builds a fresh detector of the given kind through the
// detect registry, reporting to a fresh log-mode sink, together with the
// stats recorder wired into it (nil for Base and SPD3NoStats).
func NewDetector(tool Tool) (detect.Detector, *stats.Recorder) {
	sink := detect.NewSink(false, 0)
	name := string(tool)
	var rec *stats.Recorder
	switch tool {
	case Base:
		name = "none"
	case SPD3NoStats:
		name = "spd3"
	default:
		rec = stats.New(0)
		sink.SetStats(rec.Shard(0))
	}
	det, err := detect.New(name, detect.FactoryOpts{Sink: sink, Stats: rec})
	if err != nil {
		// Every Tool constant is registered; an unknown tool is a
		// harness bug, matching the old switch's detect.Nop fallback
		// would hide it.
		panic(err)
	}
	return det, rec
}

// Measurement is one experimental data point.
type Measurement struct {
	Time      time.Duration
	Footprint detect.Footprint
	// Stats is the observability snapshot of the fastest run.
	Stats stats.Snapshot
	// AllocDelta is the Go heap allocation delta of the fastest run,
	// a secondary, GC-sensitive memory signal.
	AllocDelta int64
}

// measure runs benchmark b under tool with the given workers and input,
// returning the best-of-Repeats measurement. ESP-bags forces the
// sequential executor (it cannot run in parallel — that is Figure 4's
// point).
func (c Config) measure(b *bench.Benchmark, tool Tool, workers int, in bench.Input) (Measurement, error) {
	var best Measurement
	best.Time = math.MaxInt64
	for rep := 0; rep < c.Repeats; rep++ {
		det, rec := NewDetector(tool)
		if det.RequiresSequential() {
			workers = 1
		}
		rt, err := task.New(task.Config{Executor: task.Auto, Workers: workers, Detector: det, Stats: rec})
		if err != nil {
			return Measurement{}, err
		}
		runtime.GC()
		var m0 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		if _, err := b.Run(rt, in); err != nil {
			return Measurement{}, fmt.Errorf("%s under %s: %w", b.Name, tool, err)
		}
		elapsed := time.Since(start)
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		if elapsed < best.Time {
			snap := rec.Snapshot()
			snap.Footprint = det.Footprint()
			best = Measurement{
				Time:       elapsed,
				Footprint:  snap.Footprint,
				Stats:      snap,
				AllocDelta: int64(m1.TotalAlloc - m0.TotalAlloc),
			}
		}
	}
	if c.OnStats != nil {
		c.OnStats(b.Name, tool, workers, best.Stats)
	}
	if c.OnMeasure != nil {
		c.OnMeasure(b.Name, tool, workers, best)
	}
	return best, nil
}

// geoMean returns the geometric mean of xs.
func geoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Experiment regenerates one table or figure.
type Experiment struct {
	// ID is the command-line selector ("fig3", "table2", ...).
	ID string
	// Title names the paper artifact.
	Title string
	// Run produces the result table.
	Run func(cfg Config) (*Table, error)
}

// Experiments returns every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table 1: list of benchmarks evaluated", Run: table1},
		{ID: "fig3", Title: "Figure 3: relative slowdown of SPD3, 1-16 workers", Run: fig3},
		{ID: "fig4", Title: "Figure 4: ESP-bags vs SPD3 slowdown (vs max-thread base)", Run: fig4},
		{ID: "table2", Title: "Table 2: Eraser/FastTrack/SPD3 slowdown on JGF (chunked)", Run: table2},
		{ID: "table3", Title: "Table 3: peak memory on JGF (chunked)", Run: table3},
		{ID: "fig5", Title: "Figure 5: Crypt slowdown vs workers, all tools", Run: fig5},
		{ID: "fig6", Title: "Figure 6: LUFact memory vs workers, all tools", Run: fig6},
		{ID: "ablation-sync", Title: "§5.4 ablation: versioned-CAS vs per-word mutex", Run: ablationSync},
		{ID: "ablation-stepcache", Title: "§5.5 ablation: per-step redundant-check cache", Run: ablationStepCache},
		{ID: "ablation-dmhp", Title: "DMHP fast-path ablation: pointer walk vs fingerprints vs fingerprints+memo", Run: ablationDMHP},
		{ID: "stats", Title: "Observability counters: per-benchmark SPD3 event profile", Run: statsTable},
		{ID: "sparse", Title: "Sparse shadow: paged vs flat footprint on clustered touches", Run: sparseShadow},
		{ID: "ablation-sample", Title: "Sampling ablation: overhead vs detection probability across modes and rates", Run: ablationSample},
	}
}

// ByID selects an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}

func table1(cfg Config) (*Table, error) {
	t := &Table{
		Title:  "Table 1: List of Benchmarks Evaluated",
		Header: []string{"Source", "Benchmark", "Description"},
	}
	for _, b := range bench.All() {
		t.AddRow(b.Source, b.Name+" "+b.Args, b.Desc)
	}
	return t, nil
}

// fig3 reproduces Figure 3: for every benchmark (fine-grained, unchunked)
// and worker count, the slowdown of SPD3 relative to the uninstrumented
// baseline at the same worker count. The paper reports a 2.78× geometric
// mean at 16 threads and near-constant slowdown across worker counts.
func fig3(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{Title: "Figure 3: relative slowdown of SPD3 (vs same-worker base), unchunked"}
	t.Header = []string{"Benchmark"}
	for _, n := range cfg.Threads {
		t.Header = append(t.Header, fmt.Sprintf("%d-worker", n))
	}
	perThread := make([][]float64, len(cfg.Threads))
	in := bench.Input{Scale: cfg.Scale}
	for _, b := range bench.All() {
		row := []any{b.Name}
		for ti, n := range cfg.Threads {
			base, err := cfg.measure(b, Base, n, in)
			if err != nil {
				return nil, err
			}
			spd, err := cfg.measure(b, SPD3, n, in)
			if err != nil {
				return nil, err
			}
			s := ratio(spd.Time, base.Time)
			perThread[ti] = append(perThread[ti], s)
			row = append(row, s)
		}
		t.AddRow(row...)
	}
	row := []any{"GeoMean"}
	for ti := range cfg.Threads {
		row = append(row, geoMean(perThread[ti]))
	}
	t.AddRow(row...)
	return t, nil
}

// fig4 reproduces Figure 4: slowdown of ESP-bags (which must run
// sequentially) and SPD3 (on max workers) relative to the max-worker
// uninstrumented baseline. The paper's point: a sequential detector's
// slowdown on a parallel machine dwarfs a parallel detector's.
//
// On a host with fewer physical cores than the sweep, the measured
// columns cannot show the sequentialization penalty (the parallel base
// runs no faster than the sequential one), so the table adds a clearly
// labeled projection for a machine with maxThreads cores: the base and
// SPD3 are assumed to scale linearly with cores — justified by the flat
// relative slowdowns Figure 3 measures — while ESP-bags, sequential by
// construction, does not scale at all. Projected slowdown vs the
// parallel base is then s_spd3 for SPD3 and s_esp × cores for ESP-bags.
func fig4(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := cfg.maxThreads()
	t := &Table{
		Title: fmt.Sprintf("Figure 4: slowdown vs %d-worker base (ESP-bags sequential, SPD3 on %d workers)", n, n),
		Notes: []string{fmt.Sprintf("Projected columns model a true %d-core host (see harness docs).", n)},
		Header: []string{"Benchmark", "ESP-bags", "SPD3",
			fmt.Sprintf("ESP-bags(proj %dc)", n), fmt.Sprintf("SPD3(proj %dc)", n)},
	}
	in := bench.Input{Scale: cfg.Scale}
	var esp, spd, espP []float64
	for _, b := range bench.All() {
		base, err := cfg.measure(b, Base, n, in)
		if err != nil {
			return nil, err
		}
		e, err := cfg.measure(b, ESPBags, 1, in)
		if err != nil {
			return nil, err
		}
		s, err := cfg.measure(b, SPD3, n, in)
		if err != nil {
			return nil, err
		}
		re, rs := ratio(e.Time, base.Time), ratio(s.Time, base.Time)
		esp = append(esp, re)
		spd = append(spd, rs)
		espP = append(espP, re*float64(n))
		t.AddRow(b.Name, re, rs, re*float64(n), rs)
	}
	t.AddRow("GeoMean", geoMean(esp), geoMean(spd), geoMean(espP), geoMean(spd))
	return t, nil
}

// table2 reproduces Table 2: Eraser, FastTrack, and SPD3 slowdowns on the
// eight JGF benchmarks in their coarse-grained chunked form at the
// maximum worker count.
func table2(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := cfg.maxThreads()
	t := &Table{
		Title:  fmt.Sprintf("Table 2: slowdown on JGF (chunked) at %d workers", n),
		Header: []string{"Benchmark", "Base(s)", "Eraser", "FastTrack", "SPD3"},
	}
	in := bench.Input{Scale: cfg.Scale, Chunked: true}
	sums := map[Tool][]float64{}
	for _, b := range bench.JGF() {
		base, err := cfg.measure(b, Base, n, in)
		if err != nil {
			return nil, err
		}
		row := []any{b.Name, fmt.Sprintf("%.3f", base.Time.Seconds())}
		for _, tool := range []Tool{Eraser, FastTrack, SPD3} {
			m, err := cfg.measure(b, tool, n, in)
			if err != nil {
				return nil, err
			}
			r := ratio(m.Time, base.Time)
			sums[tool] = append(sums[tool], r)
			row = append(row, r)
		}
		t.AddRow(row...)
	}
	t.AddRow("GeoMean", "", geoMean(sums[Eraser]), geoMean(sums[FastTrack]), geoMean(sums[SPD3]))
	return t, nil
}

// table3 reproduces Table 3: detector memory on the chunked JGF
// benchmarks. The primary signal is the analytic footprint (deterministic
// bytes of shadow words, clocks, locksets, and tree nodes); the process
// allocation delta is shown for reference.
func table3(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := cfg.maxThreads()
	t := &Table{
		Title:  fmt.Sprintf("Table 3: detector memory (analytic MB) on JGF (chunked) at %d workers", n),
		Header: []string{"Benchmark", "Eraser", "FastTrack", "SPD3", "SPD3-alloc"},
	}
	in := bench.Input{Scale: cfg.Scale, Chunked: true}
	for _, b := range bench.JGF() {
		row := []any{b.Name}
		var spdAlloc int64
		for _, tool := range []Tool{Eraser, FastTrack, SPD3} {
			m, err := cfg.measure(b, tool, n, in)
			if err != nil {
				return nil, err
			}
			row = append(row, mb(m.Footprint.Total()))
			if tool == SPD3 {
				spdAlloc = m.AllocDelta
			}
		}
		row = append(row, mb(spdAlloc))
		t.AddRow(row...)
	}
	return t, nil
}

// fig5 reproduces Figure 5: Crypt (chunked) slowdown relative to the
// max-worker uninstrumented baseline, for every tool across the worker
// sweep. The paper's shape: Eraser and FastTrack blow up with worker
// count; SPD3 stays flat and close to base.
func fig5(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	b, err := bench.ByName("Crypt")
	if err != nil {
		return nil, err
	}
	nmax := cfg.maxThreads()
	in := bench.Input{Scale: cfg.Scale, Chunked: true}
	ref, err := cfg.measure(b, Base, nmax, in)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 5: Crypt (chunked) slowdown vs %d-worker base", nmax),
		Header: []string{"Workers", "Base", "Eraser", "FastTrack", "SPD3"},
	}
	for _, n := range cfg.Threads {
		row := []any{n}
		for _, tool := range []Tool{Base, Eraser, FastTrack, SPD3} {
			m, err := cfg.measure(b, tool, n, in)
			if err != nil {
				return nil, err
			}
			row = append(row, ratio(m.Time, ref.Time))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// fig6 reproduces Figure 6: LUFact (chunked) detector memory across the
// worker sweep. The paper's shape: Eraser and FastTrack memory grows with
// workers, SPD3 stays near-constant.
func fig6(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	b, err := bench.ByName("LUFact")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 6: LUFact (chunked) detector memory (analytic MB) vs workers",
		Header: []string{"Workers", "Eraser", "FastTrack", "SPD3"},
	}
	in := bench.Input{Scale: cfg.Scale, Chunked: true}
	for _, n := range cfg.Threads {
		row := []any{n}
		for _, tool := range []Tool{Eraser, FastTrack, SPD3} {
			m, err := cfg.measure(b, tool, n, in)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", mb(m.Footprint.Total())))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ablationSync reproduces the §5.4 discussion: the versioned-CAS shadow
// words against the per-word-mutex variant at 1 worker (where the paper
// says the lock wins) and at the maximum (where CAS wins, by 1.8× on
// average in the paper — a contention effect that needs real cores).
func ablationSync(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	nmax := cfg.maxThreads()
	t := &Table{
		Title:  "Ablation §5.4: SPD3 shadow-word protocol, mutex time / CAS time (>1 means CAS wins)",
		Header: []string{"Benchmark", "1-worker", fmt.Sprintf("%d-worker", nmax)},
	}
	in := bench.Input{Scale: cfg.Scale}
	var r1s, rns []float64
	for _, b := range bench.All() {
		c1, err := cfg.measure(b, SPD3, 1, in)
		if err != nil {
			return nil, err
		}
		m1, err := cfg.measure(b, SPD3Lock, 1, in)
		if err != nil {
			return nil, err
		}
		cn, err := cfg.measure(b, SPD3, nmax, in)
		if err != nil {
			return nil, err
		}
		mn, err := cfg.measure(b, SPD3Lock, nmax, in)
		if err != nil {
			return nil, err
		}
		r1, rn := ratio(m1.Time, c1.Time), ratio(mn.Time, cn.Time)
		r1s = append(r1s, r1)
		rns = append(rns, rn)
		t.AddRow(b.Name, r1, rn)
	}
	t.AddRow("GeoMean", geoMean(r1s), geoMean(rns))
	return t, nil
}

// ablationStepCache measures the opt-in per-step check cache (the
// dynamic variant of the §5.5 optimizations): time with cache divided by
// time without, per benchmark (<1 means the cache wins; expected on
// kernels that re-read locations within a step, e.g. RayTracer's scene).
func ablationStepCache(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := cfg.maxThreads()
	t := &Table{
		Title:  fmt.Sprintf("Ablation §5.5: per-step check cache, cached time / uncached time at %d workers (<1 means cache wins)", n),
		Header: []string{"Benchmark", "Ratio"},
	}
	in := bench.Input{Scale: cfg.Scale}
	var rs []float64
	for _, b := range bench.All() {
		plain, err := cfg.measure(b, SPD3, n, in)
		if err != nil {
			return nil, err
		}
		cached, err := cfg.measure(b, SPD3Cache, n, in)
		if err != nil {
			return nil, err
		}
		r := ratio(cached.Time, plain.Time)
		rs = append(rs, r)
		t.AddRow(b.Name, r)
	}
	t.AddRow("GeoMean", geoMean(rs))
	return t, nil
}

// ablationDMHP isolates the two layers of the constant-time DMHP fast
// path: SPD3 with the §5.2 pointer walk only, with the packed path
// fingerprints, and with fingerprints plus the per-task relation memo
// (the default). Unchunked variants at the maximum worker count — the
// fine-grained regime where DMHP dominates the per-access cost.
// Ratios below 1 mean the layer wins over the plain walk.
func ablationDMHP(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := cfg.maxThreads()
	t := &Table{
		Title: fmt.Sprintf("Ablation: DMHP fast path at %d workers, time relative to pointer-walk SPD3 (<1 means the fast path wins)", n),
		Notes: []string{
			"fingerprint: packed root-path digits answer DMHP/LCA-depth without a tree walk",
			"+memo: per-task direct-mapped cache of relations against recorded steps",
		},
		Header: []string{"Benchmark", "Walk(s)", "Fingerprint", "Fingerprint+Memo", "NoStats"},
	}
	t.Notes = append(t.Notes, "nostats: Fingerprint+Memo with the observability counters disabled (Options.NoStats)")
	in := bench.Input{Scale: cfg.Scale}
	var fps, memos, nostats []float64
	for _, b := range bench.All() {
		walk, err := cfg.measure(b, SPD3Walk, n, in)
		if err != nil {
			return nil, err
		}
		fp, err := cfg.measure(b, SPD3FP, n, in)
		if err != nil {
			return nil, err
		}
		full, err := cfg.measure(b, SPD3, n, in)
		if err != nil {
			return nil, err
		}
		bare, err := cfg.measure(b, SPD3NoStats, n, in)
		if err != nil {
			return nil, err
		}
		rf, rm, rn := ratio(fp.Time, walk.Time), ratio(full.Time, walk.Time), ratio(bare.Time, walk.Time)
		fps = append(fps, rf)
		memos = append(memos, rm)
		nostats = append(nostats, rn)
		t.AddRow(b.Name, fmt.Sprintf("%.3f", walk.Time.Seconds()), rf, rm, rn)
	}
	t.AddRow("GeoMean", "", geoMean(fps), geoMean(memos), geoMean(nostats))
	return t, nil
}

// statsTable profiles every benchmark under the default SPD3 detector at
// the maximum worker count through the observability subsystem: shadow
// protocol outcomes, DMHP resolution mix, scheduler behaviour, and memory
// traffic. Counts come from the fastest repeat, so ratios — not absolute
// totals — are the stable signal.
func statsTable(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := cfg.maxThreads()
	t := &Table{
		Title: fmt.Sprintf("Observability counters: SPD3 at %d workers, unchunked", n),
		Notes: []string{
			"cas: versioned-CAS outcomes per shadow access (clean = no metadata change)",
			"dmhp: fast = O(1) fingerprint compare, walk = §5.2 pointer walk, memo = per-task cache hit",
			"sched: tasks acquired by spawn/inline-pop/steal; mem: instrumented reads+writes",
		},
		Header: []string{"Benchmark", "CASClean", "CASPublish", "CASRetry",
			"DMHPFast", "DMHPWalk", "DMHPMemo", "Spawn", "Steal", "Reads", "Writes"},
	}
	in := bench.Input{Scale: cfg.Scale}
	for _, b := range bench.All() {
		m, err := cfg.measure(b, SPD3, n, in)
		if err != nil {
			return nil, err
		}
		s := m.Stats
		t.AddRow(b.Name,
			fmt.Sprint(s.Get(stats.CASClean)), fmt.Sprint(s.Get(stats.CASPublish)),
			fmt.Sprint(s.Get(stats.CASRetry)),
			fmt.Sprint(s.Get(stats.DMHPFast)), fmt.Sprint(s.Get(stats.DMHPWalk)),
			fmt.Sprint(s.Get(stats.DMHPMemoHit)),
			fmt.Sprint(s.Get(stats.TaskSpawn)), fmt.Sprint(s.Get(stats.TaskSteal)),
			fmt.Sprint(s.Reads), fmt.Sprint(s.Writes))
	}
	return t, nil
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return math.Inf(1)
	}
	return float64(a) / float64(b)
}

func mb(bytes int64) float64 { return float64(bytes) / (1 << 20) }

// sparseShadow measures the tentpole claim of the paged shadow memory:
// on a workload that touches ~1% of a large region in page-sized
// clusters, the paged shadow's footprint tracks the touched pages while
// the flat ablation (spd3-flat) pays for every declared element. Dense
// benchmarks cost the same either way; this table shows the sparse gap
// plus the page-allocation and page-cache counters.
func sparseShadow(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := cfg.maxThreads()
	t := &Table{
		Title:  fmt.Sprintf("Sparse shadow: paged vs flat on clustered 1%% touches at %d workers", n),
		Header: []string{"Tool", "Time(s)", "Shadow MB", "Pages", "CacheHit", "CacheMiss"},
	}
	b := bench.SparseTouchBench()
	in := bench.Input{Scale: cfg.Scale}
	for _, tool := range []Tool{Base, SPD3, SPD3Flat} {
		m, err := cfg.measure(b, tool, n, in)
		if err != nil {
			return nil, err
		}
		s := m.Stats
		t.AddRow(string(tool),
			fmt.Sprintf("%.3f", m.Time.Seconds()),
			fmt.Sprintf("%.3f", mb(m.Footprint.ShadowBytes)),
			fmt.Sprint(s.Get(stats.ShadowPagesAllocated)),
			fmt.Sprint(s.Get(stats.PageCacheHit)),
			fmt.Sprint(s.Get(stats.PageCacheMiss)))
	}
	return t, nil
}
