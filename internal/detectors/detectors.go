// Package detectors links every detector implementation into the binary
// so their init-time detect.Register calls populate the registry. Import
// it for side effects wherever detectors are constructed by name:
//
//	import _ "spd3/internal/detectors"
//
// The root spd3 package imports it, so library users get the full set;
// a build that wants a subset can import the algorithm packages
// directly instead.
package detectors

import (
	_ "spd3/internal/core"
	_ "spd3/internal/eraser"
	_ "spd3/internal/espbags"
	_ "spd3/internal/fasttrack"
	_ "spd3/internal/oslabel"
)
