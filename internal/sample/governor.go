package sample

import (
	"sync"
	"time"

	"spd3/internal/stats"
)

// defaultCheckNS is the modeled cost of one admitted race check when no
// better estimate exists: a DMHP fingerprint comparison plus the
// shadow-word protocol, measured at roughly this order on the dense
// kernels (EXPERIMENTS.md). The governor only needs it to be the right
// order of magnitude — the feedback loop corrects the rest.
const defaultCheckNS = 120.0

// walkPenalty scales the modeled check cost for DMHP queries that fell
// off the fingerprint fast path onto the §5.2 pointer walk.
const walkPenalty = 4.0

// Observation is one feedback sample for the governor: the gate
// outcomes, the DMHP fast/walk split (a proxy for how expensive the
// admitted checks were), and the wall clock of the replayed (or
// executed) span that produced them.
type Observation struct {
	Checked, Skipped   int64
	DMHPFast, DMHPWalk int64
	Wall               time.Duration
}

// Governor holds a sampling rate on target to a user-set overhead
// budget. It owns the shared Rate cell its Samplers load on the hot
// path and retunes it after every observation with a damped
// multiplicative step:
//
//	estimated overhead = modeled check time / (wall − modeled check time)
//	rate ← rate × clamp(budget/overhead, ½, 2)
//
// The check-time model is checked × cost-per-check, with the per-check
// cost scaled up when the DMHP walk fraction is high. A zero budget
// turns the feedback loop off and the Governor degrades to a fixed-rate
// sampler factory.
type Governor struct {
	cfg    Config
	budget float64
	rate   Rate

	mu      sync.Mutex
	costNS  float64
	observe int64 // observations applied (for tests and gauges)
}

// NewGovernor returns a governor for the given strategy and overhead
// budget (a fraction; 0 disables adaptation). The initial rate is
// cfg.Rate.
func NewGovernor(cfg Config, budget float64) *Governor {
	g := &Governor{cfg: cfg, budget: budget, costNS: defaultCheckNS}
	g.rate.Store(cfg.Rate)
	return g
}

// Sampler returns a sampler bound to the governor's shared rate cell.
// Each replay should take a fresh one (TaskState is per-task anyway;
// the handle itself is stateless), but sharing one is also safe.
func (g *Governor) Sampler() *Sampler {
	return &Sampler{mode: g.cfg.Mode, rate: &g.rate, seed: defaultSeed}
}

// Mode returns the governed strategy.
func (g *Governor) Mode() Mode { return g.cfg.Mode }

// Rate returns the current (possibly adapted) sampling rate.
func (g *Governor) Rate() float64 { return g.rate.Load() }

// Budget returns the overhead budget fraction (0 when fixed-rate).
func (g *Governor) Budget() float64 { return g.budget }

// Observations returns how many feedback samples have been applied.
func (g *Governor) Observations() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.observe
}

// Observe applies one feedback sample and retunes the shared rate.
// No-op when the budget is zero or the observation is empty.
func (g *Governor) Observe(o Observation) {
	if g.budget <= 0 || o.Wall <= 0 || o.Checked+o.Skipped <= 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	cost := g.costNS
	if q := o.DMHPFast + o.DMHPWalk; q > 0 {
		cost *= (float64(o.DMHPFast) + walkPenalty*float64(o.DMHPWalk)) / float64(q)
	}
	checkNS := cost * float64(o.Checked)
	wallNS := float64(o.Wall.Nanoseconds())
	base := wallNS - checkNS
	// The model can overshoot the measured wall clock (cheap checks,
	// warm caches); never let the estimated base drop below a tenth of
	// the wall so one bad sample cannot crater the rate.
	if base < wallNS/10 {
		base = wallNS / 10
	}
	overhead := checkNS / base
	adj := 2.0
	if overhead > 0 {
		adj = g.budget / overhead
		if adj > 2 {
			adj = 2
		} else if adj < 0.5 {
			adj = 0.5
		}
	}
	g.rate.Store(g.rate.Load() * adj)
	g.observe++
}

// ObserveSnapshot applies the sampling-relevant counters of a merged
// stats snapshot as one observation over the given wall clock.
func (g *Governor) ObserveSnapshot(s stats.Snapshot, wall time.Duration) {
	g.Observe(Observation{
		Checked:  s.Get(stats.SampleChecked),
		Skipped:  s.Get(stats.SampleSkipped),
		DMHPFast: s.Get(stats.DMHPFast),
		DMHPWalk: s.Get(stats.DMHPWalk),
		Wall:     wall,
	})
}
