// Package sample is the dynamic half of the check-reduction pairing the
// paper defers to §5.5: where checkelim removes checks that are
// *provably* redundant at compile time, this package gates the residual
// checks behind a cheap probabilistic coin so detection can run inside
// live serving at a chosen cost ("Dynamic Race Detection with O(1)
// Samples" shows a vanishing sampling rate retains most detection
// power).
//
// Three strategies are provided:
//
//   - Bernoulli: one deterministic coin per (region, element). Both
//     sides of a racing pair flip the same coin, so the probability of
//     catching a racy location is the rate r itself, not r².
//   - Page: one coin per aligned 64-element shadow page span. Cheaper
//     decision reuse and the same both-sides property at page
//     granularity; dense kernels that sweep rows sample whole stripes.
//   - Burst: check everything for one task step out of N. Epoch 0 —
//     every task's first step — is always inside the burst window, so a
//     fresh detector (each replayed trace segment gets one) samples
//     every task's prologue deterministically regardless of rate; both
//     sides of a race between two tasks' first steps are then always
//     recorded, which is the guarantee CI's sampled smoke relies on.
//     The flip side, visible in the EXPERIMENTS ablation, is that on
//     fine-grained kernels whose tasks never advance past their first
//     step the burst window covers everything and the rate stops
//     biting; burst is the strategy for long-lived tasks.
//
// Decisions are deterministic functions of (seed, location) or
// (task, step index): a replayed trace samples identically every time,
// which is what makes verdicts reproducible and lets CI assert that a
// seeded race is still caught at a 1% rate.
//
// The sampling rate lives in a shared fixed-point cell (Rate) so a
// Governor can retune it online while replays are running; see
// governor.go.
//
// Soundness: a skipped check only *omits* recording an access in the
// shadow word. Every recorded step still really performed its access,
// so any race reported from the surviving recordings is a true race —
// sampling introduces false negatives, never false positives.
package sample

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"spd3/internal/stats"
)

// Mode selects the sampling strategy.
type Mode uint8

const (
	// Off disables sampling: every check runs.
	Off Mode = iota
	// Bernoulli flips one deterministic coin per (region, element).
	Bernoulli
	// Page flips one coin per pageSpan-aligned element span.
	Page
	// Burst checks everything for one task step out of N.
	Burst
)

func (m Mode) String() string {
	switch m {
	case Bernoulli:
		return "bernoulli"
	case Page:
		return "page"
	case Burst:
		return "burst"
	default:
		return "off"
	}
}

// Config is one parsed sampling spec.
type Config struct {
	Mode Mode
	// Rate is the target fraction of checks to run, in (0, 1].
	Rate float64
}

// Parse parses a sampling spec of the form "mode:rate" — e.g.
// "bernoulli:0.05", "page:0.01", "burst:0.1" — or "off"/"" for
// disabled. The rate must be in (0, 1].
func Parse(spec string) (Config, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return Config{Mode: Off}, nil
	}
	mode, rateStr, ok := strings.Cut(spec, ":")
	if !ok {
		return Config{}, fmt.Errorf("sample: spec %q: want mode:rate (e.g. bernoulli:0.05) or off", spec)
	}
	var m Mode
	switch mode {
	case "bernoulli":
		m = Bernoulli
	case "page":
		m = Page
	case "burst":
		m = Burst
	default:
		return Config{}, fmt.Errorf("sample: unknown mode %q (have bernoulli, page, burst, off)", mode)
	}
	rate, err := strconv.ParseFloat(rateStr, 64)
	if err != nil {
		return Config{}, fmt.Errorf("sample: spec %q: bad rate: %v", spec, err)
	}
	if rate <= 0 || rate > 1 {
		return Config{}, fmt.Errorf("sample: spec %q: rate must be in (0, 1]", spec)
	}
	return Config{Mode: m, Rate: rate}, nil
}

// ParseBudget parses an overhead budget: "5%" or "0.05" both mean a 5%
// target; "" means no budget (governor disabled). The result must be in
// (0, 1] when nonzero.
func ParseBudget(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("sample: bad overhead budget %q: %v", s, err)
	}
	if pct {
		v /= 100
	}
	if v <= 0 || v > 1 {
		return 0, fmt.Errorf("sample: overhead budget %q out of (0%%, 100%%]", s)
	}
	return v, nil
}

// rateBits is the fixed-point precision of the shared rate cell.
const rateBits = 16

// MinRate is the floor the governor never adapts below, so a sampler
// under budget pressure still observes a sliver of the run.
const MinRate = 1.0 / (1 << (rateBits - 4))

// Rate is a shared fixed-point sampling rate. Samplers load it on the
// hot path; the governor stores into it from its feedback loop.
type Rate struct{ v atomic.Int64 }

// Store sets the rate, clamped to [MinRate, 1].
func (r *Rate) Store(f float64) {
	if f < MinRate {
		f = MinRate
	}
	if f > 1 {
		f = 1
	}
	r.v.Store(int64(f * (1 << rateBits)))
}

// Load returns the rate as a float in [MinRate, 1].
func (r *Rate) Load() float64 { return float64(r.v.Load()) / (1 << rateBits) }

// load16 returns the fixed-point threshold compared against a 16-bit
// hash slice on the hot path.
func (r *Rate) load16() int64 { return r.v.Load() }

// pageShift groups elements into 64-element spans for Page mode —
// matching the shadow substrate's page-cache granularity closely enough
// that one decision covers one hot span.
const pageShift = 6

// TaskState is per-task sampling state, embedded in the per-task record
// of whichever layer gates checks (core's taskState natively; the
// registry's generic wrapper uses detect.Task.Sample). It caches the
// current burst-window decision and a one-entry location-coin memo so
// the sampled-out path is a predictable compare-and-branch, and batches
// the admit/skip tallies in plain task-owned integers.
type TaskState struct {
	epoch   uint64
	ready   bool
	burst   bool
	memoKey uint64
	memoOK  bool

	// Checked and Skipped batch the gate outcomes; the owning layer
	// flushes them into a stats shard once per task (Flush).
	Checked, Skipped int64
}

// Flush moves the batched tallies into sh and zeroes them; safe to call
// repeatedly and with a nil shard.
func (st *TaskState) Flush(sh *stats.Shard) {
	sh.Add(stats.SampleChecked, st.Checked)
	sh.Add(stats.SampleSkipped, st.Skipped)
	st.Checked, st.Skipped = 0, 0
}

// Sampler decides, per access, whether the race check runs. A nil
// Sampler admits everything. Samplers are cheap handles onto a shared
// Rate cell; Governor.Sampler hands out one per replay.
type Sampler struct {
	mode Mode
	rate *Rate
	seed uint64
}

// New returns a sampler with its own (fixed) rate cell. Use
// Governor.Sampler for a governed one.
func New(cfg Config) *Sampler {
	s := &Sampler{mode: cfg.Mode, rate: &Rate{}, seed: defaultSeed}
	s.rate.Store(cfg.Rate)
	return s
}

// NewSeeded is New with an explicit coin seed. Production paths use New
// (the fixed seed is what makes replay verdicts reproducible); the
// harness varies the seed across runs to measure ensemble detection
// probability rather than one fixed coin assignment.
func NewSeeded(cfg Config, seed uint64) *Sampler {
	s := New(cfg)
	s.seed = defaultSeed ^ mix(seed)
	return s
}

// defaultSeed makes location coins deterministic across runs and
// processes, so a replayed trace samples — and detects — identically.
const defaultSeed = 0x5bd1e995a4f0c3b7

// Enabled reports whether the sampler gates anything; nil-safe.
func (s *Sampler) Enabled() bool { return s != nil && s.mode != Off }

// Mode returns the strategy; nil-safe.
func (s *Sampler) Mode() Mode {
	if s == nil {
		return Off
	}
	return s.mode
}

// RateValue returns the current rate; nil-safe.
func (s *Sampler) RateValue() float64 {
	if s == nil {
		return 0
	}
	return s.rate.Load()
}

// Step announces a task-step advance: Burst mode recomputes the cached
// window decision for the new epoch. Epoch 0 — every task's first step
// — is always sampled, so fresh detectors deterministically check each
// task's prologue. Nil-safe; a no-op for location-coin modes.
func (s *Sampler) Step(st *TaskState) {
	if s == nil || s.mode != Burst {
		return
	}
	e := st.epoch
	st.epoch++
	st.ready = true
	st.burst = e%uint64(s.burstPeriod()) == 0
}

// burstPeriod derives the burst window period from the current rate:
// one sampled step out of period.
func (s *Sampler) burstPeriod() int64 {
	r := s.rate.load16()
	if r <= 0 {
		r = 1
	}
	p := int64(1<<rateBits) / r
	if p < 1 {
		p = 1
	}
	return p
}

// Admit reports whether the check for element idx of the given shadow
// region should run. The decision is deterministic per (seed, location)
// for Bernoulli/Page and per task-step epoch for Burst. Callers tally
// the outcome into st.Checked/st.Skipped themselves (so layers that
// batch counters differently can). Nil receivers admit everything.
func (s *Sampler) Admit(st *TaskState, region uint64, idx int) bool {
	if s == nil {
		return true
	}
	switch s.mode {
	case Burst:
		if !st.ready {
			s.Step(st)
		}
		return st.burst
	case Page:
		idx >>= pageShift
	case Off:
		return true
	}
	key := region<<32 ^ uint64(uint32(idx))
	if key == st.memoKey {
		return st.memoOK
	}
	ok := int64(mix(key^s.seed)&((1<<rateBits)-1)) < s.rate.load16()
	st.memoKey, st.memoOK = key, ok
	return ok
}

// mix is a 64-bit finalizer (splitmix64-style) turning a location key
// into a uniform coin.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
