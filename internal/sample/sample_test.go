package sample_test

import (
	"testing"

	"spd3/internal/sample"
	"spd3/internal/stats"
)

func TestParse(t *testing.T) {
	cases := []struct {
		spec string
		want sample.Config
		ok   bool
	}{
		{"", sample.Config{Mode: sample.Off}, true},
		{"off", sample.Config{Mode: sample.Off}, true},
		{"  off  ", sample.Config{Mode: sample.Off}, true},
		{"bernoulli:0.05", sample.Config{Mode: sample.Bernoulli, Rate: 0.05}, true},
		{"page:0.01", sample.Config{Mode: sample.Page, Rate: 0.01}, true},
		{"burst:1", sample.Config{Mode: sample.Burst, Rate: 1}, true},
		{"bernoulli", sample.Config{}, false},
		{"coin:0.5", sample.Config{}, false},
		{"bernoulli:0", sample.Config{}, false},
		{"bernoulli:-0.1", sample.Config{}, false},
		{"bernoulli:1.5", sample.Config{}, false},
		{"bernoulli:x", sample.Config{}, false},
	}
	for _, c := range cases {
		got, err := sample.Parse(c.spec)
		if c.ok != (err == nil) {
			t.Errorf("Parse(%q): err = %v, want ok=%v", c.spec, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestParseBudget(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"", 0, true},
		{"5%", 0.05, true},
		{"0.05", 0.05, true},
		{"100%", 1, true},
		{"1", 1, true},
		{"0", 0, false},
		{"0%", 0, false},
		{"-5%", 0, false},
		{"150%", 0, false},
		{"1.5", 0, false},
		{"x", 0, false},
	}
	for _, c := range cases {
		got, err := sample.ParseBudget(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseBudget(%q): err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseBudget(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRateClamp(t *testing.T) {
	var r sample.Rate
	r.Store(0)
	if got := r.Load(); got != sample.MinRate {
		t.Errorf("Store(0): Load = %v, want MinRate %v", got, sample.MinRate)
	}
	r.Store(2)
	if got := r.Load(); got != 1 {
		t.Errorf("Store(2): Load = %v, want 1", got)
	}
	r.Store(0.5)
	if got := r.Load(); got != 0.5 {
		t.Errorf("Store(0.5): Load = %v, want 0.5", got)
	}
}

// TestNilSampler pins the nil-receiver contract the hot paths rely on:
// a nil sampler admits everything and never panics.
func TestNilSampler(t *testing.T) {
	var s *sample.Sampler
	var st sample.TaskState
	if s.Enabled() {
		t.Error("nil sampler reports Enabled")
	}
	if s.Mode() != sample.Off {
		t.Errorf("nil sampler Mode = %v, want Off", s.Mode())
	}
	if s.RateValue() != 0 {
		t.Errorf("nil sampler RateValue = %v, want 0", s.RateValue())
	}
	s.Step(&st)
	if !s.Admit(&st, 1, 2) {
		t.Error("nil sampler rejected a check")
	}
}

// TestBernoulliDeterminism: the default seed makes decisions identical
// across sampler instances (reproducible replay verdicts); distinct
// NewSeeded seeds give distinct coin assignments.
func TestBernoulliDeterminism(t *testing.T) {
	cfg := sample.Config{Mode: sample.Bernoulli, Rate: 0.25}
	a, b := sample.New(cfg), sample.New(cfg)
	var sa, sb sample.TaskState
	for i := 0; i < 4096; i++ {
		if a.Admit(&sa, 7, i) != b.Admit(&sb, 7, i) {
			t.Fatalf("two New samplers disagree at idx %d", i)
		}
	}
	c := sample.NewSeeded(cfg, 1)
	d := sample.NewSeeded(cfg, 2)
	var sc, sd sample.TaskState
	differ := false
	for i := 0; i < 4096 && !differ; i++ {
		differ = c.Admit(&sc, 7, i) != d.Admit(&sd, 7, i)
	}
	if !differ {
		t.Error("seeds 1 and 2 produced identical coins over 4096 locations")
	}
}

// TestBernoulliRate: the admitted fraction over many locations tracks
// the configured rate.
func TestBernoulliRate(t *testing.T) {
	for _, rate := range []float64{0.05, 0.25, 0.75} {
		s := sample.New(sample.Config{Mode: sample.Bernoulli, Rate: rate})
		var st sample.TaskState
		admitted := 0
		const n = 1 << 14
		for i := 0; i < n; i++ {
			if s.Admit(&st, 3, i) {
				admitted++
			}
		}
		got := float64(admitted) / n
		if got < rate-0.03 || got > rate+0.03 {
			t.Errorf("rate %v: admitted fraction %v", rate, got)
		}
	}
}

func TestRateOneAdmitsEverything(t *testing.T) {
	for _, mode := range []sample.Mode{sample.Bernoulli, sample.Page, sample.Burst} {
		s := sample.New(sample.Config{Mode: mode, Rate: 1})
		var st sample.TaskState
		for i := 0; i < 1024; i++ {
			if !s.Admit(&st, 5, i) {
				t.Errorf("%v at rate 1 rejected idx %d", mode, i)
			}
		}
	}
}

// TestPageGrouping: Page mode makes one decision per aligned 64-element
// span, and the per-span decisions track the rate.
func TestPageGrouping(t *testing.T) {
	s := sample.New(sample.Config{Mode: sample.Page, Rate: 0.5})
	var st sample.TaskState
	pages := 512
	admittedPages := 0
	for p := 0; p < pages; p++ {
		first := s.Admit(&st, 9, p*64)
		if first {
			admittedPages++
		}
		for off := 1; off < 64; off++ {
			if s.Admit(&st, 9, p*64+off) != first {
				t.Fatalf("page %d: idx %d decided differently from idx %d", p, p*64+off, p*64)
			}
		}
	}
	got := float64(admittedPages) / float64(pages)
	if got < 0.4 || got > 0.6 {
		t.Errorf("admitted page fraction %v at rate 0.5", got)
	}
}

// TestBurstPattern: at rate 0.25 the window period is 4 — epoch 0 is
// sampled, then every fourth epoch.
func TestBurstPattern(t *testing.T) {
	s := sample.New(sample.Config{Mode: sample.Burst, Rate: 0.25})
	var st sample.TaskState
	for e := 0; e < 16; e++ {
		s.Step(&st)
		want := e%4 == 0
		if got := s.Admit(&st, 1, e); got != want {
			t.Errorf("epoch %d: Admit = %v, want %v", e, got, want)
		}
	}
}

// TestBurstLazyStep: Admit on a state that never saw a Step counts as
// epoch 0 — always sampled, so a detector that missed an announcement
// still deterministically checks the prologue.
func TestBurstLazyStep(t *testing.T) {
	s := sample.New(sample.Config{Mode: sample.Burst, Rate: 0.01})
	var st sample.TaskState
	if !s.Admit(&st, 1, 0) {
		t.Error("first epoch not sampled")
	}
}

// TestBurstEveryTaskPrologue: epoch 0 of every fresh task state is
// sampled at any rate — the per-task prologue guarantee that lets CI
// assert a seeded first-step race is caught deterministically.
func TestBurstEveryTaskPrologue(t *testing.T) {
	s := sample.New(sample.Config{Mode: sample.Burst, Rate: 0.01})
	for task := 0; task < 32; task++ {
		var st sample.TaskState
		s.Step(&st)
		if !s.Admit(&st, 1, 0) {
			t.Fatalf("task %d: first epoch not sampled at rate 0.01", task)
		}
	}
}

func TestFlush(t *testing.T) {
	rec := stats.New(1)
	st := sample.TaskState{Checked: 3, Skipped: 5}
	st.Flush(rec.Shard(0))
	st.Checked, st.Skipped = 7, 11
	st.Flush(rec.Shard(0))
	snap := rec.Snapshot()
	if got := snap.Get(stats.SampleChecked); got != 10 {
		t.Errorf("sample.checked = %d, want 10", got)
	}
	if got := snap.Get(stats.SampleSkipped); got != 16 {
		t.Errorf("sample.skipped = %d, want 16", got)
	}
	if st.Checked != 0 || st.Skipped != 0 {
		t.Errorf("Flush left tallies %d/%d, want 0/0", st.Checked, st.Skipped)
	}
	st.Checked = 1
	st.Flush(nil) // must not panic; tallies still zeroed
	if st.Checked != 0 {
		t.Error("Flush(nil) did not zero the tally")
	}
}
