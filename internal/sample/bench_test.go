package sample_test

import (
	"testing"

	"spd3/internal/sample"
)

// The Admit benchmarks price the sampled-out path: this is the cost a
// skipped check still pays, and therefore the floor under the overhead
// any sampling rate can reach (see the EXPERIMENTS ablation).

func BenchmarkAdmitBernoulliMiss(b *testing.B) {
	s := sample.New(sample.Config{Mode: sample.Bernoulli, Rate: 0.01})
	var st sample.TaskState
	n := 0
	for i := 0; i < b.N; i++ {
		// A fresh location every time defeats the one-entry memo — the
		// stencil-sweep access pattern.
		if s.Admit(&st, 1, i) {
			n++
		}
	}
	_ = n
}

func BenchmarkAdmitBernoulliHit(b *testing.B) {
	s := sample.New(sample.Config{Mode: sample.Bernoulli, Rate: 0.01})
	var st sample.TaskState
	n := 0
	for i := 0; i < b.N; i++ {
		if s.Admit(&st, 1, 42) {
			n++
		}
	}
	_ = n
}

func BenchmarkAdmitBurst(b *testing.B) {
	s := sample.New(sample.Config{Mode: sample.Burst, Rate: 0.01})
	var st sample.TaskState
	s.Step(&st)
	n := 0
	for i := 0; i < b.N; i++ {
		if s.Admit(&st, 1, i) {
			n++
		}
	}
	_ = n
}
