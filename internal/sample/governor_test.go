package sample_test

import (
	"testing"
	"time"

	"spd3/internal/sample"
	"spd3/internal/stats"
)

// heavy is an observation whose modeled check cost dwarfs the wall
// clock: overhead far above any budget, so the governor should back the
// rate off at the maximum damped step (halving).
var heavy = sample.Observation{Checked: 1_000_000, Wall: 10 * time.Millisecond}

// light is an observation with almost no admitted checks over a long
// wall: overhead far below budget, so the rate should double.
var light = sample.Observation{Checked: 10, Skipped: 1_000_000, Wall: time.Second}

func TestGovernorBacksOffOverBudget(t *testing.T) {
	g := sample.NewGovernor(sample.Config{Mode: sample.Bernoulli, Rate: 1}, 0.05)
	g.Observe(heavy)
	if got := g.Rate(); got != 0.5 {
		t.Errorf("after one over-budget observation: rate = %v, want 0.5 (max damped step)", got)
	}
	g.Observe(heavy)
	if got := g.Rate(); got != 0.25 {
		t.Errorf("after two: rate = %v, want 0.25", got)
	}
	if got := g.Observations(); got != 2 {
		t.Errorf("Observations = %d, want 2", got)
	}
}

func TestGovernorRampsUpUnderBudget(t *testing.T) {
	g := sample.NewGovernor(sample.Config{Mode: sample.Bernoulli, Rate: 0.1}, 0.05)
	g.Observe(light)
	if got := g.Rate(); got < 0.19 || got > 0.21 {
		t.Errorf("after one under-budget observation: rate = %v, want ~0.2 (doubling cap)", got)
	}
	// The ramp is capped at 1 by the rate cell.
	for i := 0; i < 8; i++ {
		g.Observe(light)
	}
	if got := g.Rate(); got != 1 {
		t.Errorf("rate ramped to %v, want clamp at 1", got)
	}
}

func TestGovernorRateFloor(t *testing.T) {
	g := sample.NewGovernor(sample.Config{Mode: sample.Bernoulli, Rate: 1}, 0.01)
	for i := 0; i < 64; i++ {
		g.Observe(heavy)
	}
	if got := g.Rate(); got != sample.MinRate {
		t.Errorf("rate adapted to %v, want floor at MinRate %v", got, sample.MinRate)
	}
}

// TestGovernorZeroBudget: budget 0 turns the feedback loop off; the
// governor is a fixed-rate sampler factory.
func TestGovernorZeroBudget(t *testing.T) {
	g := sample.NewGovernor(sample.Config{Mode: sample.Page, Rate: 0.25}, 0)
	g.Observe(heavy)
	if got := g.Rate(); got != 0.25 {
		t.Errorf("zero-budget governor moved the rate to %v", got)
	}
	if got := g.Observations(); got != 0 {
		t.Errorf("zero-budget governor counted %d observations", got)
	}
}

func TestGovernorIgnoresEmptyObservations(t *testing.T) {
	g := sample.NewGovernor(sample.Config{Mode: sample.Bernoulli, Rate: 0.5}, 0.05)
	g.Observe(sample.Observation{Wall: time.Second})                // no gate outcomes
	g.Observe(sample.Observation{Checked: 100, Skipped: 100})       // no wall clock
	g.Observe(sample.Observation{Checked: 100, Wall: -time.Second}) // negative wall
	if got := g.Rate(); got != 0.5 {
		t.Errorf("empty observations moved the rate to %v", got)
	}
	if got := g.Observations(); got != 0 {
		t.Errorf("empty observations counted: %d", got)
	}
}

// TestGovernorSamplerSharesRate: samplers handed out before an
// adaptation see the new rate — the cell is shared, not copied.
func TestGovernorSamplerSharesRate(t *testing.T) {
	g := sample.NewGovernor(sample.Config{Mode: sample.Bernoulli, Rate: 1}, 0.05)
	s := g.Sampler()
	if got := s.RateValue(); got != 1 {
		t.Fatalf("initial sampler rate = %v, want 1", got)
	}
	g.Observe(heavy)
	if got := s.RateValue(); got != 0.5 {
		t.Errorf("sampler rate after adaptation = %v, want 0.5", got)
	}
	if s.Mode() != sample.Bernoulli {
		t.Errorf("sampler mode = %v, want bernoulli", s.Mode())
	}
}

// TestObserveSnapshot: the stats-snapshot adapter feeds the same loop.
func TestObserveSnapshot(t *testing.T) {
	rec := stats.New(1)
	sh := rec.Shard(0)
	sh.Add(stats.SampleChecked, 1_000_000)
	g := sample.NewGovernor(sample.Config{Mode: sample.Bernoulli, Rate: 1}, 0.05)
	g.ObserveSnapshot(rec.Snapshot(), 10*time.Millisecond)
	if got := g.Rate(); got != 0.5 {
		t.Errorf("rate after snapshot observation = %v, want 0.5", got)
	}
	if got := g.Observations(); got != 1 {
		t.Errorf("Observations = %d, want 1", got)
	}
}

// TestGovernorWalkPenalty: a walk-heavy observation models costlier
// checks, so it backs off where the same fast-path counts would not.
func TestGovernorWalkPenalty(t *testing.T) {
	base := sample.Observation{Checked: 40_000, Skipped: 0, Wall: 10 * time.Millisecond}

	fast := base
	fast.DMHPFast = 40_000
	gf := sample.NewGovernor(sample.Config{Mode: sample.Bernoulli, Rate: 1}, 0.5)
	gf.Observe(fast)

	walk := base
	walk.DMHPWalk = 40_000
	gw := sample.NewGovernor(sample.Config{Mode: sample.Bernoulli, Rate: 1}, 0.5)
	gw.Observe(walk)

	if gw.Rate() >= gf.Rate() {
		t.Errorf("walk-heavy rate %v not below fast-path rate %v", gw.Rate(), gf.Rate())
	}
}
