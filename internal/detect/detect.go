// Package detect defines the event interface between the structured task
// runtime and a dynamic data-race detector.
//
// The runtime (package task) emits one event per structural operation of the
// program — task spawn, task end, finish start/end, lock acquire/release —
// and asks the detector to allocate one Shadow per instrumented memory
// region. Detectors implement the Detector interface; the engine wires
// exactly one detector into a run. Implementations in this repository:
//
//   - internal/core:      SPD3, the paper's contribution (parallel, O(1) space)
//   - internal/espbags:   ESP-bags (sequential depth-first baseline)
//   - internal/fasttrack: FastTrack (vector-clock baseline)
//   - internal/eraser:    Eraser (lockset baseline, imprecise)
//   - internal/graph:     precise computation-DAG oracle (testing)
//   - detect.Nop:         the uninstrumented baseline
//
// Event contract. All events are delivered from the goroutine currently
// running the task named in the event. The runtime guarantees:
//
//   - BeforeSpawn(parent, child) is called in the parent before the child
//     can start, so detector state installed on child is visible to it.
//   - TaskEnd(t) is the last event of a task, delivered before the task's
//     completion is counted against its finish scope.
//   - FinishEnd(t, f) is delivered after every task registered in f (and,
//     transitively, their descendants registered in f) has completed, and
//     after all of their TaskEnd events.
//
// The runtime establishes the corresponding happens-before edges with
// atomic operations, so a detector may hand state from TaskEnd to the
// matching FinishEnd without additional synchronization of its own.
package detect

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"

	"spd3/internal/sample"
	"spd3/internal/shadow"
	"spd3/internal/stats"
)

// TaskID identifies a dynamic task instance. The main task has ID 0; IDs
// are assigned densely in spawn order.
type TaskID int64

// Task is the runtime's record of one dynamic task instance. The detector
// owns the State field and may store arbitrary per-task state there.
type Task struct {
	ID     TaskID
	Parent *Task   // nil for the main task
	IEF    *Finish // immediately enclosing finish at spawn time
	Depth  int32   // spawn-tree depth; main task is 0

	// State is detector-private per-task state. It is written by the
	// detector during MainTask/BeforeSpawn (in the parent's goroutine)
	// and thereafter read and written only by the task itself.
	State any

	// PC is the task's shadow page cache, threaded through the paged
	// shadow hot path (shadow.Pages.CellOf). Shadow events are
	// delivered from the task's own goroutine (see the event contract
	// above), so the cache needs no synchronization; the runtime
	// flushes its batched hit/miss tallies into the stats shards at
	// task end.
	PC shadow.PageCache

	// Sample is the task's check-sampling state, used by the registry's
	// generic sampling wrapper for detectors that do not gate their own
	// check path (SPD3 keeps equivalent state inside its taskState).
	// Like PC it is only touched from the task's own goroutine.
	Sample sample.TaskState
}

// Finish is the runtime's record of one dynamic finish instance, including
// the implicit finish that encloses the whole program. The detector owns
// State.
type Finish struct {
	ID    int64
	Owner *Task // task that executes the finish statement

	// State is detector-private. Detectors that accumulate join state
	// (e.g. FastTrack's joined vector clock) must synchronize their own
	// access: TaskEnd events of sibling tasks can be concurrent.
	State any
}

// Lock is the runtime's record of one instrumented lock.
type Lock struct {
	ID    int64
	State any
}

// BarrierInfo is the runtime's record of one instrumented barrier. The
// detector owns State.
type BarrierInfo struct {
	ID    int64
	State any
}

// BarrierObserver is optionally implemented by detectors that understand
// barrier synchronization — the analogue of RoadRunner's special Barrier
// Enter/Exit events the paper discusses in §6.3: with them, FastTrack
// accepts the JGF programs' barrier-phased sharing; without them (SPD3,
// whose model is pure async/finish), cross-phase conflicts are reported.
//
// The runtime calls BarrierArrive(t, b, gen) under the barrier's mutex
// as each task reaches generation gen, and BarrierDepart(t, b, gen) from
// each task after that generation completed (these may be concurrent
// across tasks). The happens-before meaning: everything before any
// arrival of gen precedes everything after any departure of gen.
type BarrierObserver interface {
	BarrierArrive(t *Task, b *BarrierInfo, gen int)
	BarrierDepart(t *Task, b *BarrierInfo, gen int)
}

// AccessKind labels one side of a race.
type AccessKind uint8

const (
	Read AccessKind = iota
	Write
)

func (k AccessKind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// ShadowSpec describes one shadow region to allocate. The region is a
// dense index space: [0, Len) when fixed, unbounded (any non-negative
// index) when Growable. Construct fixed specs with Spec and growable
// ones with GrowableSpec, or fill the struct directly.
type ShadowSpec struct {
	// Name labels the region in race reports.
	Name string
	// Len is the element count of a fixed region; advisory for a
	// growable one (the initial extent, which may be 0).
	Len int
	// ElemBytes is the size of one shadowed program datum, for
	// footprint accounting.
	ElemBytes int
	// Growable marks a region whose index space extends on demand
	// (mem.List): the detector's shadow must accept any non-negative
	// index, extending page by page rather than reallocating.
	Growable bool
}

// Spec returns the ShadowSpec of a fixed region of n elements.
func Spec(name string, n, elemBytes int) ShadowSpec {
	return ShadowSpec{Name: name, Len: n, ElemBytes: elemBytes}
}

// GrowableSpec returns the ShadowSpec of a growable region.
func GrowableSpec(name string, elemBytes int) ShadowSpec {
	return ShadowSpec{Name: name, ElemBytes: elemBytes, Growable: true}
}

// Bound returns the region's paging bound: Len for a fixed region, -1
// (unbounded) for a growable one — the value shadow.New expects.
func (s ShadowSpec) Bound() int {
	if s.Growable {
		return -1
	}
	return s.Len
}

// Shadow is the detector's per-region shadow memory; element i shadows
// the program datum at index i of the region described by its
// ShadowSpec. Read and Write are called by the accessing task's
// goroutine and must be safe for concurrent use when the detector
// supports parallel execution.
type Shadow interface {
	Read(t *Task, i int)
	Write(t *Task, i int)
}

// SiteShadow is optionally implemented by shadows that can attribute the
// current access to a source site (a program counter captured by the
// instrumentation layer); race reports then carry file:line for the
// access that completed the race. site 0 means unknown.
type SiteShadow interface {
	Shadow
	ReadAt(t *Task, i int, site uintptr)
	WriteAt(t *Task, i int, site uintptr)
}

// SiteString resolves a captured program counter to "file:line", or ""
// for the zero site.
func SiteString(site uintptr) string {
	if site == 0 {
		return ""
	}
	fn := runtime.FuncForPC(site)
	if fn == nil {
		return ""
	}
	file, line := fn.FileLine(site)
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		file = file[i+1:]
	}
	return fmt.Sprintf("%s:%d", file, line)
}

// Detector is implemented by every race-detection algorithm.
type Detector interface {
	// Name returns a short stable identifier ("spd3", "fasttrack", ...).
	Name() string

	// RequiresSequential reports whether the algorithm is only correct
	// under depth-first sequential execution (true for ESP-bags). The
	// engine refuses to pair such a detector with a parallel executor.
	RequiresSequential() bool

	// MainTask announces the root task and its implicit enclosing finish.
	// It is the first event of a run.
	MainTask(t *Task, implicit *Finish)

	// BeforeSpawn announces a new child task. It runs in the parent's
	// goroutine before the child is made runnable.
	BeforeSpawn(parent, child *Task)

	// TaskEnd announces that t's body has finished. It runs in t's
	// goroutine and is t's final event.
	TaskEnd(t *Task)

	// FinishStart announces that t began executing a finish statement.
	FinishStart(t *Task, f *Finish)

	// FinishEnd announces that the finish f has joined all of its tasks.
	FinishEnd(t *Task, f *Finish)

	// Acquire and Release bracket instrumented critical sections.
	// Structured async/finish detectors (SPD3, ESP-bags) may ignore them.
	Acquire(t *Task, l *Lock)
	Release(t *Task, l *Lock)

	// NewShadow allocates shadow state for the instrumented region
	// spec describes. Paged implementations (every detector in this
	// repository) allocate no per-element state here: shadow pages
	// materialize lazily on first access, so a huge region that is
	// touched sparsely pays only for the pages it touches. Detectors
	// that cannot serve a growable region should document it and may
	// panic when handed one.
	NewShadow(spec ShadowSpec) Shadow

	// Footprint returns the detector's current analytic memory usage.
	Footprint() Footprint
}

// Footprint is a detector's analytic accounting of the bytes it allocated,
// mirroring the paper's Table 3 / Figure 6 memory comparison in a
// deterministic, GC-independent way. It is an alias of stats.Footprint so
// the engine can carry the same value inside a stats.Snapshot; see that
// package for the field documentation.
type Footprint = stats.Footprint

// Nop is the uninstrumented baseline: every event and access is a no-op.
// Engine uses it when no detector is configured; benchmark slowdowns are
// measured against it.
type Nop struct{}

func (Nop) Name() string                { return "base" }
func (Nop) RequiresSequential() bool    { return false }
func (Nop) MainTask(*Task, *Finish)     {}
func (Nop) BeforeSpawn(*Task, *Task)    {}
func (Nop) TaskEnd(*Task)               {}
func (Nop) FinishStart(*Task, *Finish)  {}
func (Nop) FinishEnd(*Task, *Finish)    {}
func (Nop) Acquire(*Task, *Lock)        {}
func (Nop) Release(*Task, *Lock)        {}
func (Nop) NewShadow(ShadowSpec) Shadow { return nopShadow{} }
func (Nop) Footprint() Footprint        { return Footprint{} }

type nopShadow struct{}

func (nopShadow) Read(*Task, int)  {}
func (nopShadow) Write(*Task, int) {}

// Counter is a small atomic helper used by detectors for ID assignment and
// byte accounting.
type Counter struct{ v atomic.Int64 }

// Add adds delta and returns the new value.
func (c *Counter) Add(delta int64) int64 { return c.v.Add(delta) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }
