package detect

import (
	"spd3/internal/sample"
	"spd3/internal/stats"
)

// NativeSampler is implemented by detectors that gate their own check
// path with the FactoryOpts.Sampler handed to their factory (SPD3 does,
// folding the gate into its batched taskState hot path). The registry
// wraps every other detector with the generic shadow-gating wrapper
// below, so sampling composes with all five algorithms without each
// re-implementing it — and never double-gates the natives.
type NativeSampler interface {
	NativeSampling() bool
}

// wrapSampled gates d's shadows behind smp. The wrapper preserves the
// inner detector's optional interfaces: SiteShadow on a per-shadow
// basis, BarrierObserver on the detector itself (losing it would change
// FastTrack's verdict on barrier-phased programs, which sampling must
// never do).
func wrapSampled(d Detector, smp *sample.Sampler, rec *stats.Recorder) Detector {
	sd := &sampledDetector{inner: d, smp: smp, rec: rec}
	if bo, ok := d.(BarrierObserver); ok {
		return &sampledBarrierDetector{sampledDetector: sd, bo: bo}
	}
	return sd
}

// sampledDetector is the generic sampling wrapper: structural events
// pass straight through (sampling must never distort the task tree or
// lock state, only which accesses are checked), shadows are gated, and
// the per-task admit/skip tallies batched in Task.Sample are flushed
// into the stats shards at task end.
type sampledDetector struct {
	inner Detector
	smp   *sample.Sampler
	rec   *stats.Recorder
	ids   Counter
}

func (d *sampledDetector) Name() string             { return d.inner.Name() }
func (d *sampledDetector) RequiresSequential() bool { return d.inner.RequiresSequential() }

func (d *sampledDetector) MainTask(t *Task, implicit *Finish) {
	d.smp.Step(&t.Sample)
	d.inner.MainTask(t, implicit)
}

func (d *sampledDetector) BeforeSpawn(parent, child *Task) {
	d.smp.Step(&child.Sample)
	d.inner.BeforeSpawn(parent, child)
}

func (d *sampledDetector) TaskEnd(t *Task) {
	t.Sample.Flush(d.rec.Shard(int(t.ID)))
	d.inner.TaskEnd(t)
}

// FinishStart and FinishEnd advance the burst epoch: detectors without
// a step notion still get "one span out of N" sampling at finish-scope
// granularity, the closest structural analogue.
func (d *sampledDetector) FinishStart(t *Task, f *Finish) {
	d.smp.Step(&t.Sample)
	d.inner.FinishStart(t, f)
}

func (d *sampledDetector) FinishEnd(t *Task, f *Finish) {
	d.smp.Step(&t.Sample)
	d.inner.FinishEnd(t, f)
	// The main task gets no TaskEnd (executors call its body directly);
	// flushing after every finish end keeps its tallies from being lost.
	t.Sample.Flush(d.rec.Shard(int(t.ID)))
}

func (d *sampledDetector) Acquire(t *Task, l *Lock) { d.inner.Acquire(t, l) }
func (d *sampledDetector) Release(t *Task, l *Lock) { d.inner.Release(t, l) }
func (d *sampledDetector) Footprint() Footprint     { return d.inner.Footprint() }

func (d *sampledDetector) NewShadow(spec ShadowSpec) Shadow {
	inner := d.inner.NewShadow(spec)
	id := uint64(d.ids.Add(1))
	if ss, ok := inner.(SiteShadow); ok {
		return &sampledSiteShadow{sampledShadow{d: d, id: id, inner: inner}, ss}
	}
	return &sampledShadow{d: d, id: id, inner: inner}
}

// sampledBarrierDetector additionally forwards barrier events.
type sampledBarrierDetector struct {
	*sampledDetector
	bo BarrierObserver
}

func (d *sampledBarrierDetector) BarrierArrive(t *Task, b *BarrierInfo, gen int) {
	d.bo.BarrierArrive(t, b, gen)
}

func (d *sampledBarrierDetector) BarrierDepart(t *Task, b *BarrierInfo, gen int) {
	d.bo.BarrierDepart(t, b, gen)
}

// sampledShadow gates one region's checks.
type sampledShadow struct {
	d     *sampledDetector
	id    uint64
	inner Shadow
}

func (s *sampledShadow) admit(t *Task, i int) bool {
	if !s.d.smp.Admit(&t.Sample, s.id, i) {
		t.Sample.Skipped++
		return false
	}
	t.Sample.Checked++
	return true
}

func (s *sampledShadow) Read(t *Task, i int) {
	if s.admit(t, i) {
		s.inner.Read(t, i)
	}
}

func (s *sampledShadow) Write(t *Task, i int) {
	if s.admit(t, i) {
		s.inner.Write(t, i)
	}
}

// sampledSiteShadow preserves site attribution through the gate.
type sampledSiteShadow struct {
	sampledShadow
	site SiteShadow
}

func (s *sampledSiteShadow) ReadAt(t *Task, i int, site uintptr) {
	if s.admit(t, i) {
		s.site.ReadAt(t, i, site)
	}
}

func (s *sampledSiteShadow) WriteAt(t *Task, i int, site uintptr) {
	if s.admit(t, i) {
		s.site.WriteAt(t, i, site)
	}
}

var (
	_ Detector        = (*sampledDetector)(nil)
	_ BarrierObserver = (*sampledBarrierDetector)(nil)
	_ SiteShadow      = (*sampledSiteShadow)(nil)
)
