package detect

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestRaceString(t *testing.T) {
	r := Race{Kind: WriteWrite, Region: "buf", Index: 7, PrevStep: "step#1", CurStep: "step#2"}
	s := r.String()
	for _, want := range []string{"write-write", "buf[7]", "step#1", "step#2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestRaceKindStrings(t *testing.T) {
	cases := map[RaceKind]string{
		ReadWrite:    "read-write",
		WriteWrite:   "write-write",
		WriteRead:    "write-read",
		RaceKind(99): "RaceKind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestAccessKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("AccessKind strings wrong")
	}
}

func TestSinkDedup(t *testing.T) {
	s := NewSink(false, 0)
	for i := 0; i < 5; i++ {
		s.Report(Race{Kind: WriteWrite, Region: "a", Index: 1})
	}
	s.Report(Race{Kind: ReadWrite, Region: "a", Index: 1})
	s.Report(Race{Kind: WriteWrite, Region: "a", Index: 2})
	if got := len(s.Races()); got != 3 {
		t.Fatalf("recorded %d races, want 3 distinct", got)
	}
}

func TestSinkSorted(t *testing.T) {
	s := NewSink(false, 0)
	s.Report(Race{Kind: WriteWrite, Region: "b", Index: 0})
	s.Report(Race{Kind: WriteWrite, Region: "a", Index: 2})
	s.Report(Race{Kind: WriteWrite, Region: "a", Index: 1})
	races := s.Races()
	if races[0].Region != "a" || races[0].Index != 1 || races[2].Region != "b" {
		t.Fatalf("order = %v", races)
	}
}

func TestSinkHaltMode(t *testing.T) {
	s := NewSink(true, 0)
	if s.Stopped() {
		t.Fatal("fresh sink stopped")
	}
	if halt := s.Report(Race{Region: "a"}); !halt {
		t.Fatal("halt-mode Report must request halt")
	}
	if !s.Stopped() {
		t.Fatal("sink not stopped after report")
	}
}

func TestSinkLimit(t *testing.T) {
	s := NewSink(false, 2)
	for i := 0; i < 5; i++ {
		s.Report(Race{Region: "a", Index: i})
	}
	if len(s.Races()) != 2 || !s.Capped() {
		t.Fatalf("races = %d capped = %v", len(s.Races()), s.Capped())
	}
}

func TestSinkMarkAndSince(t *testing.T) {
	s := NewSink(false, 0)
	s.Report(Race{Region: "a", Index: 0})
	mark := s.Mark()
	s.Report(Race{Region: "a", Index: 1})
	s.Report(Race{Region: "a", Index: 2})
	since := s.RacesSince(mark)
	if len(since) != 2 || since[0].Index != 1 {
		t.Fatalf("RacesSince = %v", since)
	}
	if got := s.RacesSince(-5); len(got) != 3 {
		t.Fatalf("RacesSince(-5) = %v", got)
	}
	if got := s.RacesSince(999); len(got) != 0 {
		t.Fatalf("RacesSince(999) = %v", got)
	}
}

func TestSinkConcurrent(t *testing.T) {
	s := NewSink(false, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Report(Race{Region: "r", Index: i})
			}
		}(g)
	}
	wg.Wait()
	if got := len(s.Races()); got != 100 {
		t.Fatalf("recorded %d, want 100 distinct", got)
	}
}

// TestSinkQuickDedupInvariant: property test (testing/quick) — for any
// report sequence, the sink holds exactly the distinct (kind, region,
// index) triples, in sorted order.
func TestSinkQuickDedupInvariant(t *testing.T) {
	check := func(kinds []uint8, idxs []uint8) bool {
		s := NewSink(false, 0)
		distinct := map[[2]int]bool{}
		for i := range kinds {
			idx := 0
			if i < len(idxs) {
				idx = int(idxs[i]) % 8
			}
			k := RaceKind(kinds[i] % 3)
			s.Report(Race{Kind: k, Region: "r", Index: idx})
			distinct[[2]int{int(k), idx}] = true
		}
		races := s.Races()
		if len(races) != len(distinct) {
			return false
		}
		for i := 1; i < len(races); i++ {
			a, b := races[i-1], races[i]
			if a.Index > b.Index || (a.Index == b.Index && a.Kind >= b.Kind) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFootprintTotal(t *testing.T) {
	f := Footprint{ShadowBytes: 1, TreeBytes: 2, ClockBytes: 4, SetBytes: 8}
	if f.Total() != 15 {
		t.Fatalf("Total = %d", f.Total())
	}
}

func TestNopDetector(t *testing.T) {
	var d Detector = Nop{}
	if d.Name() != "base" || d.RequiresSequential() {
		t.Fatal("Nop misconfigured")
	}
	sh := d.NewShadow(Spec("x", 4, 8))
	sh.Read(nil, 0) // must not touch the task
	sh.Write(nil, 3)
	if d.Footprint().Total() != 0 {
		t.Fatal("Nop has a footprint")
	}
}

func TestStatsCounting(t *testing.T) {
	s := NewStats()
	main := &Task{}
	fin := &Finish{}
	s.MainTask(main, fin)
	child := &Task{ID: 1}
	s.BeforeSpawn(main, child)
	s.BeforeSpawn(main, &Task{ID: 2})
	s.FinishStart(main, &Finish{ID: 1})
	l := &Lock{}
	s.Acquire(main, l)
	s.Release(main, l)

	a := s.NewShadow(Spec("a", 10, 8))
	b := s.NewShadow(Spec("b", 5, 8))
	for i := 0; i < 7; i++ {
		a.Read(main, 0)
	}
	a.Write(main, 1)
	b.Write(main, 2)
	b.Write(main, 3)

	if s.Tasks.Load() != 3 || s.Finishes.Load() != 1 || s.LockOps.Load() != 2 {
		t.Fatalf("counts: %s", s)
	}
	reads, writes := s.Accesses()
	if reads != 7 || writes != 3 {
		t.Fatalf("accesses = %d/%d", reads, writes)
	}
	regs := s.Regions()
	if len(regs) != 2 || regs[0].Name != "a" || regs[1].Name != "b" {
		t.Fatalf("region order = %v, %v", regs[0].Name, regs[1].Name)
	}
	if !strings.Contains(s.String(), "tasks 3") {
		t.Fatalf("String() = %q", s.String())
	}
	if s.Name() != "stats" || s.RequiresSequential() || s.Footprint().Total() != 0 {
		t.Fatal("stats detector misconfigured")
	}
}

func TestSiteString(t *testing.T) {
	if SiteString(0) != "" {
		t.Fatal("zero site must render empty")
	}
	if SiteString(1) != "" {
		t.Fatal("bogus pc must render empty, not panic")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Add(5) != 5 || c.Add(-2) != 3 || c.Load() != 3 {
		t.Fatal("Counter arithmetic wrong")
	}
}
