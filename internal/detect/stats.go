package detect

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Stats is a detector that counts instead of detecting: dynamic tasks,
// finish instances, lock operations, and per-region reads and writes. It
// characterizes a workload — how many locations are monitored and how hot
// they are — which is what explains the per-benchmark slowdown spread in
// the paper's Figure 3 ("these benchmarks contain larger numbers of
// shared locations that need to be monitored").
type Stats struct {
	Tasks    Counter
	Finishes Counter
	LockOps  Counter

	mu      sync.Mutex
	regions []*RegionStats
}

// RegionStats counts one instrumented region's traffic.
type RegionStats struct {
	Name   string
	Elems  int
	Reads  atomic.Int64
	Writes atomic.Int64
}

// NewStats returns an empty Stats collector.
func NewStats() *Stats { return &Stats{} }

// Name implements Detector.
func (s *Stats) Name() string { return "stats" }

// RequiresSequential implements Detector.
func (s *Stats) RequiresSequential() bool { return false }

// MainTask implements Detector.
func (s *Stats) MainTask(*Task, *Finish) { s.Tasks.Add(1) }

// BeforeSpawn implements Detector.
func (s *Stats) BeforeSpawn(*Task, *Task) { s.Tasks.Add(1) }

// TaskEnd implements Detector.
func (s *Stats) TaskEnd(*Task) {}

// FinishStart implements Detector.
func (s *Stats) FinishStart(*Task, *Finish) { s.Finishes.Add(1) }

// FinishEnd implements Detector.
func (s *Stats) FinishEnd(*Task, *Finish) {}

// Acquire implements Detector.
func (s *Stats) Acquire(*Task, *Lock) { s.LockOps.Add(1) }

// Release implements Detector.
func (s *Stats) Release(*Task, *Lock) { s.LockOps.Add(1) }

// NewShadow implements Detector.
func (s *Stats) NewShadow(spec ShadowSpec) Shadow {
	r := &RegionStats{Name: spec.Name, Elems: spec.Len}
	s.mu.Lock()
	s.regions = append(s.regions, r)
	s.mu.Unlock()
	return r
}

// Footprint implements Detector.
func (s *Stats) Footprint() Footprint { return Footprint{} }

// Regions returns per-region counts sorted by total traffic, descending.
func (s *Stats) Regions() []*RegionStats {
	s.mu.Lock()
	out := make([]*RegionStats, len(s.regions))
	copy(out, s.regions)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		ti := out[i].Reads.Load() + out[i].Writes.Load()
		tj := out[j].Reads.Load() + out[j].Writes.Load()
		if ti != tj {
			return ti > tj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Accesses returns the total monitored reads and writes.
func (s *Stats) Accesses() (reads, writes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.regions {
		reads += r.Reads.Load()
		writes += r.Writes.Load()
	}
	return reads, writes
}

// String renders a compact summary.
func (s *Stats) String() string {
	reads, writes := s.Accesses()
	var b strings.Builder
	fmt.Fprintf(&b, "tasks %d, finishes %d, lock ops %d, reads %d, writes %d",
		s.Tasks.Load(), s.Finishes.Load(), s.LockOps.Load(), reads, writes)
	return b.String()
}

// Read implements Shadow.
func (r *RegionStats) Read(*Task, int) { r.Reads.Add(1) }

// Write implements Shadow.
func (r *RegionStats) Write(*Task, int) { r.Writes.Add(1) }

var (
	_ Detector = (*Stats)(nil)
	_ Shadow   = (*RegionStats)(nil)
)
