package detect

import (
	"fmt"
	"sort"
	"sync"

	"spd3/internal/sample"
	"spd3/internal/stats"
)

// FactoryOpts carries the shared dependencies a detector factory may wire
// into the detector it builds: the race sink every detector reports to,
// and the engine's stats recorder (nil when stats are disabled — factories
// must pass it through as-is, never substitute their own).
type FactoryOpts struct {
	Sink  *Sink
	Stats *stats.Recorder

	// Sampler, when enabled, gates the detector's per-access check path
	// (internal/sample). Detectors that implement NativeSampler consume
	// it in their factory; every other detector is wrapped by New with
	// the generic shadow-gating wrapper, so sampling works uniformly
	// across the registry.
	Sampler *sample.Sampler
}

// Factory builds one detector instance for one engine.
type Factory func(FactoryOpts) Detector

type registryEntry struct {
	factory Factory
	hidden  bool
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]registryEntry)
)

// Register makes a detector constructible by name through New and listed
// by Names. It is intended to be called from a detector package's init
// (in the style of database/sql drivers), so adding a detector to the
// repository is one self-registering file. It panics if name is empty,
// already registered, or f is nil.
func Register(name string, f Factory) {
	register(name, f, false)
}

// RegisterVariant registers an ablation or debugging variant: it is
// constructible by name through New but omitted from Names, keeping the
// user-facing detector list stable while cmd tools and the harness can
// still reach the variant.
func RegisterVariant(name string, f Factory) {
	register(name, f, true)
}

func register(name string, f Factory, hidden bool) {
	if name == "" {
		panic("detect: Register with empty detector name")
	}
	if f == nil {
		panic("detect: Register with nil factory for " + name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("detect: Register called twice for " + name)
	}
	registry[name] = registryEntry{factory: f, hidden: hidden}
}

// New builds the named detector. The error lists the registered names so
// a typo on a command line is self-explaining.
func New(name string, opts FactoryOpts) (Detector, error) {
	registryMu.RLock()
	e, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("spd3: unknown detector %q (have %v)", name, Names())
	}
	d := e.factory(opts)
	if opts.Sampler.Enabled() {
		if ns, ok := d.(NativeSampler); !ok || !ns.NativeSampling() {
			d = wrapSampled(d, opts.Sampler, opts.Stats)
		}
	}
	return d, nil
}

// Names returns the registered, non-hidden detector names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name, e := range registry {
		if !e.hidden {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Registered reports whether name is constructible (hidden or not).
func Registered(name string) bool {
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// Description describes one registered detector for listing surfaces
// (cmd tools, the spd3d daemon's /v1/detectors endpoint).
type Description struct {
	// Name is the registry name the detector is constructible under.
	Name string `json:"name"`
	// Sequential reports RequiresSequential: the detector is only
	// correct under depth-first execution, so it can consume only
	// traces recorded sequentially and cannot run under the pool.
	Sequential bool `json:"sequential"`
}

// Describe returns a Description of every non-hidden detector, sorted by
// name. It constructs each detector once with empty FactoryOpts to query
// its capabilities; factories must therefore tolerate a nil Sink and
// Stats at construction time (all in-repo factories do — the sink is
// only dereferenced when a race is reported).
func Describe() []Description {
	names := Names()
	out := make([]Description, 0, len(names))
	for _, name := range names {
		d, err := New(name, FactoryOpts{})
		if err != nil {
			continue // unregistered between Names and New; cannot happen in practice
		}
		out = append(out, Description{Name: name, Sequential: d.RequiresSequential()})
	}
	return out
}

func init() {
	// The uninstrumented baseline lives in this package, so it
	// registers here; algorithm packages register themselves.
	Register("none", func(FactoryOpts) Detector { return Nop{} })
}
