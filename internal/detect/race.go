package detect

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// RaceKind classifies a detected race by the order and kinds of the two
// conflicting accesses, matching the paper's read-write / write-read /
// write-write terminology in Algorithms 1 and 2.
type RaceKind uint8

const (
	ReadWrite  RaceKind = iota // earlier read, current write (Algorithm 1)
	WriteWrite                 // earlier write, current write (Algorithm 1)
	WriteRead                  // earlier write, current read  (Algorithm 2)
)

func (k RaceKind) String() string {
	switch k {
	case ReadWrite:
		return "read-write"
	case WriteWrite:
		return "write-write"
	case WriteRead:
		return "write-read"
	default:
		return fmt.Sprintf("RaceKind(%d)", uint8(k))
	}
}

// Race describes one detected data race: two conflicting accesses to the
// same element of an instrumented region that may happen in parallel.
type Race struct {
	Kind   RaceKind
	Region string // label passed to NewShadow
	Index  int    // element index within the region

	// PrevStep and CurStep identify the two conflicting steps using
	// detector-specific step identifiers (DPST node IDs for SPD3, task
	// IDs for the baselines). They are informational.
	PrevStep string
	CurStep  string
}

func (r Race) String() string {
	return fmt.Sprintf("%s race on %s[%d] between %s and %s",
		r.Kind, r.Region, r.Index, r.PrevStep, r.CurStep)
}

// key is the deduplication key: one report per (kind, region, element).
type key struct {
	kind   RaceKind
	region string
	index  int
}

// Sink collects race reports from a detector. It is safe for concurrent
// use. Depending on configuration it either records the first race and
// requests a halt (the paper's semantics) or deduplicates and keeps going
// (needed to benchmark Eraser, whose false positives would otherwise stop
// every run).
type Sink struct {
	stopped atomic.Bool // set on first report in halt mode; hot-path readable

	mu     sync.Mutex
	halt   bool // halt on first race
	seen   map[key]struct{}
	races  []Race
	capped bool
	limit  int
}

// NewSink returns a race sink. If haltFirst is true the first report
// triggers Halted; otherwise reports are deduplicated up to limit
// (0 means a default of 1024).
func NewSink(haltFirst bool, limit int) *Sink {
	if limit <= 0 {
		limit = 1024
	}
	return &Sink{halt: haltFirst, seen: make(map[key]struct{}), limit: limit}
}

// Report records a race. It returns true when execution should halt.
func (s *Sink) Report(r Race) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := key{r.Kind, r.Region, r.Index}
	if _, dup := s.seen[k]; !dup {
		s.seen[k] = struct{}{}
		if len(s.races) < s.limit {
			s.races = append(s.races, r)
		} else {
			s.capped = true
		}
	}
	if s.halt {
		s.stopped.Store(true)
	}
	return s.halt
}

// Stopped reports whether a halt-mode sink has already recorded a race.
// Detectors consult it on their hot paths to stop checking, emulating the
// paper's "report a race and halt" semantics without cancelling the
// program's execution.
func (s *Sink) Stopped() bool { return s.stopped.Load() }

// Mark returns a cursor for RacesSince: races recorded so far.
func (s *Sink) Mark() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.races)
}

// RacesSince returns the races recorded after the given Mark cursor,
// sorted like Races. It lets an engine report per-run races while the
// sink (and its deduplication) lives as long as the detector.
func (s *Sink) RacesSince(mark int) []Race {
	s.mu.Lock()
	defer s.mu.Unlock()
	if mark < 0 {
		mark = 0
	}
	if mark > len(s.races) {
		mark = len(s.races)
	}
	out := make([]Race, len(s.races)-mark)
	copy(out, s.races[mark:])
	sortRaces(out)
	return out
}

// Races returns the recorded races sorted by region, index, and kind.
func (s *Sink) Races() []Race {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Race, len(s.races))
	copy(out, s.races)
	sortRaces(out)
	return out
}

func sortRaces(out []Race) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Region != b.Region {
			return a.Region < b.Region
		}
		if a.Index != b.Index {
			return a.Index < b.Index
		}
		return a.Kind < b.Kind
	})
}

// Empty reports whether no race has been recorded.
func (s *Sink) Empty() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.races) == 0
}

// Capped reports whether reports were dropped because the limit was hit.
func (s *Sink) Capped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.capped
}
