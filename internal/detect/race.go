package detect

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"spd3/internal/stats"
)

// RaceKind classifies a detected race by the order and kinds of the two
// conflicting accesses, matching the paper's read-write / write-read /
// write-write terminology in Algorithms 1 and 2.
type RaceKind uint8

const (
	ReadWrite  RaceKind = iota // earlier read, current write (Algorithm 1)
	WriteWrite                 // earlier write, current write (Algorithm 1)
	WriteRead                  // earlier write, current read  (Algorithm 2)
)

func (k RaceKind) String() string {
	switch k {
	case ReadWrite:
		return "read-write"
	case WriteWrite:
		return "write-write"
	case WriteRead:
		return "write-read"
	default:
		return fmt.Sprintf("RaceKind(%d)", uint8(k))
	}
}

// Race describes one detected data race: two conflicting accesses to the
// same element of an instrumented region that may happen in parallel.
type Race struct {
	Kind   RaceKind
	Region string // label passed to NewShadow
	Index  int    // element index within the region

	// PrevStep and CurStep identify the two conflicting steps using
	// detector-specific step identifiers (DPST node IDs for SPD3, task
	// IDs for the baselines). They are informational.
	PrevStep string
	CurStep  string
}

func (r Race) String() string {
	return fmt.Sprintf("%s race on %s[%d] between %s and %s",
		r.Kind, r.Region, r.Index, r.PrevStep, r.CurStep)
}

// key is the deduplication key: one report per (kind, region, element).
type key struct {
	kind   RaceKind
	region string
	index  int
}

// Sink collects race reports from a detector. It is safe for concurrent
// use. Depending on configuration it either records the first race and
// requests a halt (the paper's semantics) or deduplicates and keeps going
// (needed to benchmark Eraser, whose false positives would otherwise stop
// every run). An OnRace callback switches the sink from buffering to
// streaming: distinct races are delivered to the callback instead of the
// races slice, so arbitrarily long runs never accumulate reports.
type Sink struct {
	stopped atomic.Bool // set on first report in halt mode; hot-path readable

	mu     sync.Mutex
	halt   bool // halt on first race
	seen   map[key]struct{}
	races  []Race
	capped bool
	limit  int

	onRace func(Race) bool
	st     *stats.Shard
}

// NewSink returns a race sink. If haltFirst is true the first report
// triggers Halted; otherwise reports are deduplicated up to limit
// (0 means a default of 1024).
func NewSink(haltFirst bool, limit int) *Sink {
	if limit <= 0 {
		limit = 1024
	}
	return &Sink{halt: haltFirst, seen: make(map[key]struct{}), limit: limit}
}

// SetOnRace switches the sink to streaming mode: each distinct race is
// delivered to fn instead of being buffered (Races and RacesSince stay
// empty). fn returning true halts detection like a halt-mode first report.
// fn runs outside the sink's lock and may be invoked concurrently when
// distinct races are detected on different workers at once. Call before
// the run starts; nil restores buffering.
func (s *Sink) SetOnRace(fn func(Race) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onRace = fn
}

// SetStats points the sink at a stats shard for its reported / deduped /
// dropped counters. A nil shard (the default) is a no-op sink for them.
func (s *Sink) SetStats(sh *stats.Shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st = sh
}

// Report records a race. It returns true when execution should halt.
func (s *Sink) Report(r Race) bool {
	s.mu.Lock()
	k := key{r.Kind, r.Region, r.Index}
	if _, dup := s.seen[k]; dup {
		st := s.st
		s.mu.Unlock()
		st.Inc(stats.RaceDeduped)
		return s.stopped.Load()
	}
	s.seen[k] = struct{}{}
	onRace, st := s.onRace, s.st
	if onRace == nil {
		if len(s.races) < s.limit {
			s.races = append(s.races, r)
			st.Inc(stats.RaceReported)
		} else {
			s.capped = true
			st.Inc(stats.RaceDropped)
		}
	} else {
		st.Inc(stats.RaceReported)
	}
	halt := s.halt
	s.mu.Unlock()
	if onRace != nil && onRace(r) {
		halt = true
	}
	if halt {
		s.stopped.Store(true)
	}
	return halt
}

// Stopped reports whether a halt-mode sink has already recorded a race.
// Detectors consult it on their hot paths to stop checking, emulating the
// paper's "report a race and halt" semantics without cancelling the
// program's execution.
func (s *Sink) Stopped() bool { return s.stopped.Load() }

// Mark returns a cursor for RacesSince: races recorded so far.
func (s *Sink) Mark() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.races)
}

// RacesSince returns the races recorded after the given Mark cursor,
// sorted like Races. It lets an engine report per-run races while the
// sink (and its deduplication) lives as long as the detector.
func (s *Sink) RacesSince(mark int) []Race {
	s.mu.Lock()
	defer s.mu.Unlock()
	if mark < 0 {
		mark = 0
	}
	if mark > len(s.races) {
		mark = len(s.races)
	}
	out := make([]Race, len(s.races)-mark)
	copy(out, s.races[mark:])
	sortRaces(out)
	return out
}

// Races returns the recorded races sorted by region, index, and kind.
func (s *Sink) Races() []Race {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Race, len(s.races))
	copy(out, s.races)
	sortRaces(out)
	return out
}

func sortRaces(out []Race) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Region != b.Region {
			return a.Region < b.Region
		}
		if a.Index != b.Index {
			return a.Index < b.Index
		}
		return a.Kind < b.Kind
	})
}

// Empty reports whether no distinct race has been observed (buffered or
// streamed).
func (s *Sink) Empty() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.seen) == 0
}

// Capped reports whether reports were dropped because the limit was hit.
func (s *Sink) Capped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.capped
}
