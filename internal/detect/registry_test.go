package detect

import "testing"

// seqStub is a registrable detector stub with a configurable
// RequiresSequential answer.
type seqStub struct {
	Nop
	seq bool
}

func (s seqStub) RequiresSequential() bool { return s.seq }

func TestDescribe(t *testing.T) {
	Register("registry-test-seq", func(FactoryOpts) Detector { return seqStub{seq: true} })
	Register("registry-test-par", func(FactoryOpts) Detector { return seqStub{} })
	RegisterVariant("registry-test-hidden", func(FactoryOpts) Detector { return seqStub{} })

	got := map[string]Description{}
	prev := ""
	for _, d := range Describe() {
		if d.Name <= prev {
			t.Fatalf("Describe not sorted: %q after %q", d.Name, prev)
		}
		prev = d.Name
		got[d.Name] = d
	}
	if d, ok := got["registry-test-seq"]; !ok || !d.Sequential {
		t.Errorf("registry-test-seq: got %+v, want listed with Sequential=true", d)
	}
	if d, ok := got["registry-test-par"]; !ok || d.Sequential {
		t.Errorf("registry-test-par: got %+v, want listed with Sequential=false", d)
	}
	if _, ok := got["registry-test-hidden"]; ok {
		t.Error("hidden variant leaked into Describe")
	}
	if d, ok := got["none"]; !ok || d.Sequential {
		t.Errorf("none: got %+v, want listed with Sequential=false", d)
	}
}
