package trace

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"
)

// LimitedReader caps how many bytes may be read from an underlying
// stream, failing with an ErrLimit-wrapped error — not a silent EOF —
// when the cap is crossed. It replaces the http.MaxBytesReader +
// io.ReadAll pair in spd3d: the decoder pulls bytes through it
// incrementally, so an oversized body fails with the same typed
// sentinel the resource limits use (HTTP 413) without ever being
// buffered in full.
//
// Count is safe to call concurrently with Read; Read itself is not
// concurrency-safe, matching every other io.Reader.
type LimitedReader struct {
	r     io.Reader
	max   int64
	count atomic.Int64
	over  bool
}

// NewLimitedReader wraps r with an n-byte budget. A negative n means no
// limit (the reader only counts).
func NewLimitedReader(r io.Reader, n int64) *LimitedReader {
	return &LimitedReader{r: r, max: n}
}

// Count reports how many bytes have been read so far.
func (l *LimitedReader) Count() int64 { return l.count.Load() }

// errOverLimit builds the ErrLimit-wrapped overflow error.
func (l *LimitedReader) errOverLimit() error {
	return fmt.Errorf("%w: input exceeds %d bytes", ErrLimit, l.max)
}

func (l *LimitedReader) Read(p []byte) (int, error) {
	if l.over {
		return 0, l.errOverLimit()
	}
	if l.max >= 0 {
		if left := l.max - l.count.Load(); int64(len(p)) > left {
			// Allow one probe byte past the budget: a stream that ends
			// exactly at the cap must read its clean io.EOF, while one
			// more real byte proves overflow.
			p = p[:left+1]
		}
	}
	n, err := l.r.Read(p)
	total := l.count.Add(int64(n))
	if l.max >= 0 && total > l.max {
		l.over = true
		return int(l.max - (total - int64(n))), l.errOverLimit()
	}
	return n, err
}

// cancelPollSlice bounds how long a CancelReader read can sit blocked
// before re-checking the cancel channel. Without it a stalled upload
// would keep a canceled analysis pinned until TCP gives up.
const cancelPollSlice = 100 * time.Millisecond

// CancelReader makes a blocking reader cancelable. Every Read first
// polls the cancel channel; if a deadline setter is available (HTTP
// request bodies via http.ResponseController), the read itself is
// sliced into cancelPollSlice chunks so even a read that never returns
// observes cancellation within one slice. Errors are wrapped with
// ErrCanceled, which readErr passes through to replay's callers.
type CancelReader struct {
	r           io.Reader
	cancel      <-chan struct{}
	setDeadline func(time.Time) error
	deadlines   bool
}

// NewCancelReader wraps r. cancel is typically ctx.Done().
//
// setDeadline must allow re-arming after an expired deadline (net.Conn
// and net.Pipe do). Pass nil for streams without that property — an
// net/http request body, whose read deadline is sticky once exceeded —
// and arm one absolute deadline on the stream yourself so a read can
// never outlive the request; the per-Read poll still catches
// cancellation whenever bytes are flowing.
func NewCancelReader(r io.Reader, cancel <-chan struct{}, setDeadline func(time.Time) error) *CancelReader {
	c := &CancelReader{r: r, cancel: cancel, setDeadline: setDeadline}
	if setDeadline != nil {
		// Probe once: servers that don't support deadlines report it on
		// the first call and we fall back to poll-per-Read.
		if err := setDeadline(time.Now().Add(time.Hour)); err == nil {
			c.deadlines = true
		}
	}
	return c
}

func (c *CancelReader) errCanceled() error {
	return fmt.Errorf("%w: request canceled while reading", ErrCanceled)
}

func (c *CancelReader) Read(p []byte) (int, error) {
	select {
	case <-c.cancel:
		return 0, c.errCanceled()
	default:
	}
	if !c.deadlines {
		return c.r.Read(p)
	}
	for {
		if err := c.setDeadline(time.Now().Add(cancelPollSlice)); err != nil {
			// Deadline support vanished (e.g. hijacked connection):
			// degrade to plain blocking reads.
			c.deadlines = false
			return c.r.Read(p)
		}
		n, err := c.r.Read(p)
		if n > 0 || err == nil {
			return n, err
		}
		if os.IsTimeout(err) {
			select {
			case <-c.cancel:
				return 0, c.errCanceled()
			default:
				continue // slice expired with no data: re-arm and retry
			}
		}
		return n, err
	}
}
