package trace

import (
	"bytes"
	"errors"
	"io"
)

// ErrSegmentOversize reports that the current finish scope outgrew
// SplitConfig.MaxSegmentBytes before reaching a shard boundary. The
// Splitter's state is intact: call Unsplit to fall back to analyzing
// the rest of the trace as one streamed unit.
var ErrSegmentOversize = errors.New("trace segment exceeds size cap before a finish boundary")

// SplitConfig tunes the segment splitter.
type SplitConfig struct {
	// MinSegmentBytes coalesces tiny finish scopes: the splitter keeps
	// buffering past a boundary until at least this many event bytes
	// have accumulated. Zero means the 64 KiB default.
	MinSegmentBytes int
	// MaxSegmentBytes bounds how much one segment may buffer. When a
	// single finish scope exceeds it, Next returns ErrSegmentOversize
	// instead of buffering without bound. Zero means no cap.
	MaxSegmentBytes int
}

const defaultMinSegmentBytes = 64 << 10

// regionDecl remembers a shadow-region declaration so later segments
// can re-declare it: accesses to a region may appear arbitrarily far
// from its declaration, and every segment must be a self-contained
// trace.
type regionDecl struct {
	growable  bool
	elems     int64
	elemBytes int64
	name      string
}

// Splitter cuts a trace into independently replayable segments at
// top-level finish boundaries.
//
// Soundness: the splitter cuts only after a FinishEnd that closes a
// top-level finish scope — no explicit finish open, at most the main
// task live, and every task spawned so far joined through a finish
// that has closed. The join requirement is the load-bearing one:
// TaskEnd only says a task's events stopped, but in the DPST the task
// stays concurrent with the rest of the trace until its spawning
// finish ends, so a task spawned directly into the implicit main
// finish (which closes only at the very end) correctly disables every
// later cut. At a point satisfying all the conditions, the DPST places
// every pre-cut access in a subtree that happens before everything
// after the cut. No race can pair an access before the boundary with
// one after it, which is exactly why per-segment detectors can run
// independently and their race reports can be merged by union. (This
// mirrors the paper's observation that a finish's end orders its whole
// subtree before the continuation.)
//
// Each segment is a complete trace: magic, executor byte, a synthetic
// main-task event carrying the original IDs, and re-declarations of
// every shadow region seen so far, followed by the buffered events.
type Splitter struct {
	dec *decoder
	cfg SplitConfig

	regions  []regionDecl
	declared int // regions declared before the current buffer's events

	haveMain  bool
	mainTask  int64
	mainFin   int64
	live      int // tasks spawned and not yet ended (main counts)
	open      int // explicit finish scopes open (implicit main finish excluded)
	mainLocks int // locks the main task holds (acquires minus releases)

	// openSpawns counts, per still-open finish, the tasks spawned into
	// it; unjoined is their sum. A task stays DPST-concurrent with the
	// rest of the trace until its spawning finish closes — TaskEnd only
	// says its events stopped — so a cut is sound only at unjoined == 0.
	// Tasks spawned directly into the implicit main finish pin unjoined
	// until the very end, correctly disabling all later cuts.
	openSpawns map[int64]int
	unjoined   int

	buf        []byte
	bufHasMain bool // buffer already contains a real evMainTask
	pending    *event
	segments   int
	done       bool
}

// NewSplitter consumes the trace header off rd and returns a splitter
// positioned at the first event. Header errors are the same sentinel
// classes Replay returns.
func NewSplitter(rd io.Reader, cfg SplitConfig) (*Splitter, error) {
	dec, err := newDecoder(rd)
	if err != nil {
		return nil, err
	}
	if cfg.MinSegmentBytes <= 0 {
		cfg.MinSegmentBytes = defaultMinSegmentBytes
	}
	return &Splitter{dec: dec, cfg: cfg}, nil
}

// Sequential reports the trace's executor byte: segments inherit it, so
// sequential-only detectors stay legal on segments of a depth-first
// trace.
func (s *Splitter) Sequential() bool { return s.dec.sequential }

// Segments reports how many segments have been produced so far.
func (s *Splitter) Segments() int { return s.segments }

// Next returns the next self-contained segment, io.EOF after the last
// one, ErrSegmentOversize when the current scope outgrew the cap (state
// remains valid; see Unsplit), or a sentinel-wrapped decode error.
func (s *Splitter) Next() ([]byte, error) {
	if s.done {
		return nil, io.EOF
	}
	if s.pending != nil {
		ev := s.pending
		s.pending = nil
		s.track(ev)
		s.appendEv(ev)
	}
	var ev event
	for {
		if s.cfg.MaxSegmentBytes > 0 && len(s.buf) > s.cfg.MaxSegmentBytes {
			return nil, ErrSegmentOversize
		}
		err := s.dec.next(&ev)
		if errors.Is(err, io.EOF) {
			s.done = true
			if len(s.buf) == 0 {
				return nil, io.EOF
			}
			return s.cut(), nil
		}
		if err != nil {
			s.done = true
			return nil, err
		}
		if ev.kind == evMainTask && s.haveMain && len(s.buf) > 0 {
			// A second main task means a trace of several back-to-back
			// runs; the gap between runs is itself a top-level boundary.
			p := ev
			s.pending = &p
			return s.cut(), nil
		}
		s.track(&ev)
		s.appendEv(&ev)
		if s.boundary(&ev) && len(s.buf) >= s.cfg.MinSegmentBytes {
			return s.cut(), nil
		}
	}
}

// boundary reports whether, after ev, the stream sits at a top-level
// finish boundary: no explicit finish open, at most the main task live,
// every spawned task joined through a finish that has closed, and no
// lock held by main. A lock the main task still holds pins the cut (the
// matching Release lies past the boundary, and a segment opening with a
// Release it never Acquired would not be a self-contained trace);
// an unjoined spawn pins it because that task is still concurrent with
// everything after the would-be cut.
func (s *Splitter) boundary(ev *event) bool {
	return ev.kind == evFinishEnd && s.open == 0 && s.live <= 1 &&
		s.unjoined == 0 && s.mainLocks == 0
}

// track maintains the live-task / open-finish counts and the region
// catalogue.
func (s *Splitter) track(ev *event) {
	switch ev.kind {
	case evMainTask:
		// A new run: everything from the previous run happens before it,
		// so all join/lock tracking resets.
		s.haveMain = true
		s.mainTask = ev.args[0]
		s.mainFin = ev.args[1]
		s.live = 1
		s.open = 0
		s.mainLocks = 0
		s.openSpawns = nil
		s.unjoined = 0
	case evSpawn:
		s.live++
		if s.openSpawns == nil {
			s.openSpawns = map[int64]int{}
		}
		s.openSpawns[ev.args[2]]++
		s.unjoined++
	case evTaskEnd:
		if s.live > 0 {
			s.live--
		}
	case evFinishStart:
		s.open++
	case evFinishEnd:
		// The main task's implicit finish wraps the whole run and is
		// never counted as an open scope, mirroring how it is opened by
		// evMainTask rather than evFinishStart.
		if !(s.haveMain && ev.args[1] == s.mainFin) && s.open > 0 {
			s.open--
		}
		// Every task spawned into this finish is now joined: its whole
		// subtree happens before everything after this event.
		if n := s.openSpawns[ev.args[1]]; n > 0 {
			s.unjoined -= n
			delete(s.openSpawns, ev.args[1])
		}
	case evAcquire:
		if s.haveMain && ev.args[0] == s.mainTask {
			s.mainLocks++
		}
	case evRelease:
		if s.haveMain && ev.args[0] == s.mainTask && s.mainLocks > 0 {
			s.mainLocks--
		}
	case evNewShadow:
		s.regions = append(s.regions, regionDecl{elems: ev.args[1], elemBytes: ev.args[2], name: ev.name})
	case evNewShadowGrow:
		s.regions = append(s.regions, regionDecl{growable: true, elemBytes: ev.args[1], name: ev.name})
	}
}

// appendEv re-encodes ev onto the segment buffer.
func (s *Splitter) appendEv(ev *event) {
	if ev.kind == evMainTask {
		s.bufHasMain = true
	}
	n := eventArgs[ev.kind]
	s.buf = appendEvent(s.buf, ev.kind, ev.args[:n]...)
	if ev.kind == evNewShadow || ev.kind == evNewShadowGrow {
		s.buf = appendName(s.buf, ev.name)
	}
}

// cut seals the buffered events into a self-contained segment.
func (s *Splitter) cut() []byte {
	seg := s.assemble()
	s.segments++
	s.buf = nil // the returned segment escapes; start fresh
	s.bufHasMain = false
	s.declared = len(s.regions)
	return seg
}

// assemble prefixes the buffered events with a header that makes them a
// complete trace: magic + executor byte, a synthetic main-task event
// (unless the buffer opens with the real one), and re-declarations of
// every region announced in earlier segments.
func (s *Splitter) assemble() []byte {
	seg := make([]byte, 0, len(magic)+1+16+32*s.declared+len(s.buf))
	seg = append(seg, magic...)
	if s.dec.sequential {
		seg = append(seg, 1)
	} else {
		seg = append(seg, 0)
	}
	if s.haveMain && !s.bufHasMain {
		seg = appendEvent(seg, evMainTask, s.mainTask, s.mainFin)
	}
	for i := 0; i < s.declared; i++ {
		r := s.regions[i]
		if r.growable {
			seg = appendEvent(seg, evNewShadowGrow, int64(i), r.elemBytes)
		} else {
			seg = appendEvent(seg, evNewShadow, int64(i), r.elems, r.elemBytes)
		}
		seg = appendName(seg, r.name)
	}
	return append(seg, s.buf...)
}

// Unsplit abandons sharding and returns a reader for the whole
// remaining trace: the buffered prefix re-wrapped as a self-contained
// trace, followed by the still-undecoded tail of the stream. Call it
// after ErrSegmentOversize to fall back to single-stream analysis
// without losing the bytes already consumed.
func (s *Splitter) Unsplit() io.Reader {
	if s.done {
		return bytes.NewReader(nil)
	}
	seg := s.assemble()
	s.buf = nil
	s.done = true
	if s.pending != nil {
		n := eventArgs[s.pending.kind]
		seg = appendEvent(seg, s.pending.kind, s.pending.args[:n]...)
		s.pending = nil
	}
	return io.MultiReader(bytes.NewReader(seg), s.dec.br)
}
