package trace

import (
	"bytes"
	"fmt"
	"io"
)

// Amplifier synthesizes an N×-larger trace from a single-run base
// trace, streaming it out through io.Reader so a multi-gigabyte load
// body never exists in memory at once.
//
// Naive concatenation of trace bodies is unsound: repeating the
// main-task event makes vector-clock detectors treat each copy's tasks
// as concurrent with every other copy's, conjuring races that the base
// program cannot exhibit. The amplifier instead keeps one main task M
// and wraps each copy k in its own finish scope:
//
//	FinishStart(M, W_k)          // wrap finish for copy k
//	Spawn(M, M_k, W_k)           // copy's stand-in main task
//	FinishStart(M_k, F0_k)       // stand-in for the base's implicit finish
//	...base body, IDs remapped...
//	FinishEnd(M, W_k)
//
// Task, finish, and lock IDs shift by a per-copy stride past the base's
// maxima; region IDs shift by the base's region count, keeping the
// sequential-declaration invariant. Because W_k closes before W_{k+1}
// opens, the DPST orders the copies totally: the amplified trace is
// race-free iff the base is, every race in a copy is the base's race
// relocated, and the layout stays depth-first, so sequential-only
// detectors remain legal. Each FinishEnd(M, W_k) is also a top-level
// finish boundary, which is what lets the Splitter shard amplified
// load back into base-sized segments.
type Amplifier struct {
	base   []byte
	copies int
	seq    bool

	mainTask, mainFin int64
	taskStride        int64
	finStride         int64
	lockStride        int64
	regionsPer        int64
	hasMainEnd        bool
	hasFinEnd         bool

	stage int // 0 prologue, 1 copies, 2 epilogue, 3 done
	k     int
	out   bytes.Buffer
	err   error
}

// NewAmplifier validates and pre-scans base (a complete recorded trace
// of a single run) and returns a reader producing the amplified trace
// with copies repetitions of the base body.
func NewAmplifier(base []byte, copies int) (*Amplifier, error) {
	if copies < 1 {
		return nil, fmt.Errorf("trace: amplify: copies must be >= 1, got %d", copies)
	}
	dec, err := newDecoder(bytes.NewReader(base))
	if err != nil {
		return nil, err
	}
	a := &Amplifier{base: base, copies: copies, seq: dec.sequential}
	var (
		ev    event
		first = true
	)
	maxTask, maxFin, maxLock := int64(-1), int64(-1), int64(-1)
	bump := func(m *int64, v int64) {
		if v > *m {
			*m = v
		}
	}
	for {
		err := dec.next(&ev)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if first {
			// Real recordings declare shadow regions created before the
			// runtime starts ahead of the main-task event; emitCopy
			// remaps declarations wherever they appear, so the pre-scan
			// only needs to count them.
			if ev.kind == evNewShadow || ev.kind == evNewShadowGrow {
				a.regionsPer++
				continue
			}
			if ev.kind != evMainTask {
				return nil, fmt.Errorf("trace: %w: amplify base must open with its main task", ErrMalformed)
			}
			a.mainTask, a.mainFin = ev.args[0], ev.args[1]
			first = false
			bump(&maxTask, ev.args[0])
			bump(&maxFin, ev.args[1])
			continue
		}
		switch ev.kind {
		case evMainTask:
			return nil, fmt.Errorf("trace: %w: amplify base contains more than one run", ErrMalformed)
		case evSpawn:
			bump(&maxTask, ev.args[0])
			bump(&maxTask, ev.args[1])
			bump(&maxFin, ev.args[2])
		case evTaskEnd:
			bump(&maxTask, ev.args[0])
			if ev.args[0] == a.mainTask {
				a.hasMainEnd = true
			}
		case evFinishStart:
			bump(&maxTask, ev.args[0])
			bump(&maxFin, ev.args[1])
		case evFinishEnd:
			bump(&maxTask, ev.args[0])
			bump(&maxFin, ev.args[1])
			if ev.args[1] == a.mainFin {
				a.hasFinEnd = true
			}
		case evAcquire, evRelease:
			bump(&maxTask, ev.args[0])
			bump(&maxLock, ev.args[1])
		case evNewShadow, evNewShadowGrow:
			a.regionsPer++
		case evRead, evWrite:
			bump(&maxTask, ev.args[1])
		}
	}
	if first {
		return nil, fmt.Errorf("trace: %w: amplify base has no events", ErrMalformed)
	}
	a.taskStride = maxTask + 1
	a.finStride = maxFin + 1
	a.lockStride = maxLock + 1
	return a, nil
}

// SizeHint estimates the amplified trace's byte length. Copy overhead
// (wrap events, widened varints) makes the true size slightly larger.
func (a *Amplifier) SizeHint() int64 {
	body := int64(len(a.base)) - int64(len(magic)) - 1
	if body < 0 {
		body = 0
	}
	return int64(len(magic)) + 1 + int64(a.copies)*(body+32) + 16
}

func (a *Amplifier) Read(p []byte) (int, error) {
	for a.out.Len() == 0 {
		if a.err != nil {
			return 0, a.err
		}
		switch a.stage {
		case 0:
			a.out.Reset()
			a.out.WriteString(magic)
			if a.seq {
				a.out.WriteByte(1)
			} else {
				a.out.WriteByte(0)
			}
			a.out.Write(appendEvent(nil, evMainTask, a.mainTask, a.mainFin))
			a.stage = 1
		case 1:
			if a.k == a.copies {
				a.stage = 2
				continue
			}
			a.emitCopy(a.k)
			a.k++
		case 2:
			var tail []byte
			if a.hasFinEnd {
				tail = appendEvent(tail, evFinishEnd, a.mainTask, a.mainFin)
			}
			if a.hasMainEnd {
				tail = appendEvent(tail, evTaskEnd, a.mainTask)
			}
			a.out.Write(tail)
			a.stage = 3
		case 3:
			return 0, io.EOF
		}
	}
	return a.out.Read(p)
}

// emitCopy writes copy k (wrap finish + remapped base body) into the
// output buffer.
func (a *Amplifier) emitCopy(k int) {
	dec, err := newDecoder(bytes.NewReader(a.base))
	if err != nil {
		a.err = err // unreachable: the prescan decoded the same bytes
		return
	}
	ts := a.taskStride * int64(k+1)
	fs := a.finStride * int64(k+1)
	ls := a.lockStride * int64(k+1)
	rs := a.regionsPer * int64(k)
	// Wrap-finish IDs live past every per-copy shifted range.
	wrapF := a.finStride*int64(a.copies+1) + int64(k)
	mt, f0 := a.mainTask, a.mainFin
	cm, cf := mt+ts, f0+fs

	buf := a.out.AvailableBuffer()
	buf = appendEvent(buf, evFinishStart, mt, wrapF)
	buf = appendEvent(buf, evSpawn, mt, cm, wrapF)
	buf = appendEvent(buf, evFinishStart, cm, cf)

	sawFinEnd, sawMainEnd := false, false
	var ev event
	for {
		err := dec.next(&ev)
		if err == io.EOF {
			break
		}
		if err != nil {
			a.err = err // unreachable, as above
			return
		}
		switch ev.kind {
		case evMainTask:
			// Replaced by the wrap prologue above.
		case evSpawn:
			buf = appendEvent(buf, evSpawn, ev.args[0]+ts, ev.args[1]+ts, ev.args[2]+fs)
		case evTaskEnd:
			if ev.args[0] == mt {
				sawMainEnd = true
			}
			buf = appendEvent(buf, evTaskEnd, ev.args[0]+ts)
		case evFinishStart:
			buf = appendEvent(buf, evFinishStart, ev.args[0]+ts, ev.args[1]+fs)
		case evFinishEnd:
			if ev.args[1] == f0 {
				sawFinEnd = true
			}
			buf = appendEvent(buf, evFinishEnd, ev.args[0]+ts, ev.args[1]+fs)
		case evAcquire, evRelease:
			buf = appendEvent(buf, ev.kind, ev.args[0]+ts, ev.args[1]+ls)
		case evNewShadow:
			buf = appendEvent(buf, evNewShadow, ev.args[0]+rs, ev.args[1], ev.args[2])
			buf = appendName(buf, ev.name)
		case evNewShadowGrow:
			buf = appendEvent(buf, evNewShadowGrow, ev.args[0]+rs, ev.args[1])
			buf = appendName(buf, ev.name)
		case evRead, evWrite:
			buf = appendEvent(buf, ev.kind, ev.args[0]+rs, ev.args[1]+ts, ev.args[2])
		}
	}
	// Close what the base left open, in contract order: a copy whose
	// stand-in main already ended cannot legally close F0_k afterwards,
	// so it stays dangling exactly like the base's implicit finish.
	if !sawFinEnd && !sawMainEnd {
		buf = appendEvent(buf, evFinishEnd, cm, cf)
	}
	if !sawMainEnd {
		buf = appendEvent(buf, evTaskEnd, cm)
	}
	buf = appendEvent(buf, evFinishEnd, mt, wrapF)
	a.out.Write(buf)
}

// AmplifyBytes materializes an amplified trace in memory — test and
// small-scale convenience; production paths stream the Amplifier.
func AmplifyBytes(base []byte, copies int) ([]byte, error) {
	a, err := NewAmplifier(base, copies)
	if err != nil {
		return nil, err
	}
	return io.ReadAll(a)
}
