package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"spd3/internal/core"
	"spd3/internal/detect"
	"spd3/internal/progen"
	"spd3/internal/task"
)

// benchTrace records one generated program and amplifies it to a size
// where per-event costs dominate setup.
func benchTrace(b *testing.B, copies int) []byte {
	b.Helper()
	p := progen.Generate(7, progen.Config{MaxStmts: 200, Locks: 1})
	var buf bytes.Buffer
	rec := NewRecorder(&buf, true)
	rt, err := task.New(task.Config{Executor: task.Sequential, Detector: rec})
	if err != nil {
		b.Fatal(err)
	}
	if err := progen.Run(rt, p, nil); err != nil {
		b.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		b.Fatal(err)
	}
	data, err := AmplifyBytes(buf.Bytes(), copies)
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// BenchmarkReplayStreaming is the new analyze path: events decode
// straight off the reader into the detector with no intermediate copy
// of the trace.
func BenchmarkReplayStreaming(b *testing.B) {
	data := benchTrace(b, 16)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := detect.NewSink(false, 0)
		if err := Replay(bytes.NewReader(data), core.New(sink, core.SyncCAS)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayBuffered is the pre-streaming server shape: materialize
// the whole body first (the io.ReadAll the old handler paid), then
// replay from the copy.
func BenchmarkReplayBuffered(b *testing.B) {
	data := benchTrace(b, 16)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		all, err := io.ReadAll(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		sink := detect.NewSink(false, 0)
		if err := Replay(bytes.NewReader(all), core.New(sink, core.SyncCAS)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSplitter measures the cost of cutting a trace into segments
// — pure decode + re-encode, no detector work.
func BenchmarkSplitter(b *testing.B) {
	data := benchTrace(b, 16)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp, err := NewSplitter(bytes.NewReader(data), SplitConfig{MinSegmentBytes: 1})
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := sp.Next(); err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				b.Fatal(err)
			}
		}
	}
}
