package trace

import (
	"bufio"
	"bytes"
	"errors"
	"testing"

	"spd3/internal/core"
	"spd3/internal/detect"
	"spd3/internal/espbags"
	"spd3/internal/progen"
	"spd3/internal/task"
)

// synthTrace hand-drives the Recorder (it is just a detect.Detector) to
// produce a sequential trace with exactly accesses read events, without
// needing a runtime. Deterministic event counts let the cancellation
// tests reason about the poll interval.
func synthTrace(t *testing.T, accesses int) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec := NewRecorder(&buf, true)
	mt := &detect.Task{ID: 0}
	fin := &detect.Finish{ID: 0, Owner: mt}
	mt.IEF = fin
	rec.MainTask(mt, fin)
	sh := rec.NewShadow(detect.Spec("synth", 8, 8))
	for i := 0; i < accesses; i++ {
		sh.Read(mt, i%8)
	}
	rec.TaskEnd(mt)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTypedErrors pins the sentinel classification of every decode
// failure mode: the spd3d daemon maps these to HTTP status codes with
// errors.Is, so each class must be reachable and distinguishable.
func TestTypedErrors(t *testing.T) {
	mk := func() detect.Detector { return core.New(detect.NewSink(false, 0), core.SyncCAS) }
	seq := record(t, progen.Generate(1, progen.Config{}), task.Sequential, 1)
	par := record(t, progen.Generate(1, progen.Config{}), task.Pool, 4)

	cases := []struct {
		name string
		err  error
		want error
	}{
		{"empty input", Replay(bytes.NewReader(nil), mk()), ErrBadMagic},
		{"wrong magic", Replay(bytes.NewReader([]byte("NOTATRACE")), mk()), ErrBadMagic},
		{"short header", Replay(bytes.NewReader([]byte("SPD3")), mk()), ErrBadMagic},
		{"missing executor byte", Replay(bytes.NewReader([]byte(magic)), mk()), ErrTruncated},
		{"truncated mid-event", Replay(bytes.NewReader(seq[:len(seq)-1]), mk()), ErrTruncated},
		{"garbage event kind", Replay(bytes.NewReader(append([]byte(magic), 1, 0xEE)), mk()), ErrMalformed},
		{"sequential-only on parallel trace", Replay(bytes.NewReader(par), espbags.New(detect.NewSink(false, 0))), ErrSequentialOnly},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.want) {
			t.Errorf("%s: err = %v, want errors.Is(err, %v)", c.name, c.err, c.want)
		}
	}

	// A trace whose declared region exceeds the limits is ErrLimit, not a
	// generic decode failure.
	lim := Limits{MaxRegionElems: 2, MaxTotalElems: 2}
	if err := ReplayWithLimits(bytes.NewReader(seq), mk(), lim); !errors.Is(err, ErrLimit) {
		t.Errorf("tiny limits: err = %v, want ErrLimit", err)
	}
}

// TestPeekHeader pins the non-consuming header probe the job store uses
// before spilling an unsplittable trace to disk: classification must
// match newDecoder exactly, and the reader must be left untouched so the
// subsequent full replay still sees the magic.
func TestPeekHeader(t *testing.T) {
	seq := record(t, progen.Generate(1, progen.Config{}), task.Sequential, 1)
	par := record(t, progen.Generate(1, progen.Config{}), task.Pool, 4)

	cases := []struct {
		name    string
		data    []byte
		wantSeq bool
		wantErr error
	}{
		{"sequential trace", seq, true, nil},
		{"parallel trace", par, false, nil},
		{"empty input", nil, false, ErrBadMagic},
		{"wrong magic", []byte("NOTATRACE"), false, ErrBadMagic},
		{"short header", []byte("SPD3"), false, ErrBadMagic},
		{"missing executor byte", []byte(magic), false, ErrTruncated},
	}
	for _, c := range cases {
		br := bufio.NewReader(bytes.NewReader(c.data))
		gotSeq, err := PeekHeader(br)
		if c.wantErr != nil {
			if !errors.Is(err, c.wantErr) {
				t.Errorf("%s: err = %v, want errors.Is(err, %v)", c.name, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: err = %v", c.name, err)
			continue
		}
		if gotSeq != c.wantSeq {
			t.Errorf("%s: sequential = %v, want %v", c.name, gotSeq, c.wantSeq)
		}
		// The peek must not consume: a full replay still works.
		mk := core.New(detect.NewSink(false, 0), core.SyncCAS)
		if rerr := Replay(br, mk); rerr != nil {
			t.Errorf("%s: replay after peek: %v", c.name, rerr)
		}
	}
}

// countingDetector forwards nothing and counts delivered access events,
// closing cancel after the trigger count.
type countingDetector struct {
	detect.Nop
	events  int
	trigger int
	cancel  chan struct{}
}

func (d *countingDetector) NewShadow(detect.ShadowSpec) detect.Shadow { return (*countingShadow)(d) }

type countingShadow countingDetector

func (s *countingShadow) bump() {
	s.events++
	if s.events == s.trigger {
		close(s.cancel)
	}
}
func (s *countingShadow) Read(*detect.Task, int)  { s.bump() }
func (s *countingShadow) Write(*detect.Task, int) { s.bump() }

// TestReplayCancelMidStream proves cancellation actually stops a running
// replay: the detector closes Limits.Cancel after 10 events, and replay
// must return ErrCanceled within one poll interval instead of consuming
// the remaining tens of thousands of events.
func TestReplayCancelMidStream(t *testing.T) {
	total := 10 * cancelCheckEvery
	data := synthTrace(t, total)
	det := &countingDetector{trigger: 10, cancel: make(chan struct{})}
	lim := DefaultLimits()
	lim.Cancel = det.cancel
	err := ReplayWithLimits(bytes.NewReader(data), det, lim)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if det.events >= total {
		t.Fatalf("replay consumed all %d events despite cancellation", total)
	}
	if det.events > det.trigger+cancelCheckEvery {
		t.Fatalf("replay ran %d events past the cancellation trigger (poll interval %d)",
			det.events-det.trigger, cancelCheckEvery)
	}
}

// TestReplayCancelBeforeStart: an already-closed Cancel aborts before the
// first event reaches the detector.
func TestReplayCancelBeforeStart(t *testing.T) {
	data := synthTrace(t, 100)
	det := &countingDetector{trigger: -1, cancel: make(chan struct{})}
	close(det.cancel)
	lim := DefaultLimits()
	lim.Cancel = det.cancel
	if err := ReplayWithLimits(bytes.NewReader(data), det, lim); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if det.events != 0 {
		t.Fatalf("detector saw %d events before the pre-canceled replay aborted", det.events)
	}
}

// TestReplayNilCancel: the zero Limits (and DefaultLimits) replay to
// completion with no cancellation channel allocated.
func TestReplayNilCancel(t *testing.T) {
	data := synthTrace(t, 2*cancelCheckEvery)
	det := &countingDetector{trigger: -1, cancel: nil}
	if err := Replay(bytes.NewReader(data), det); err != nil {
		t.Fatal(err)
	}
	if det.events != 2*cancelCheckEvery {
		t.Fatalf("events = %d, want %d", det.events, 2*cancelCheckEvery)
	}
}
