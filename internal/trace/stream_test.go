package trace

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"spd3/internal/core"
	"spd3/internal/detect"
)

func TestLimitedReaderExactBudget(t *testing.T) {
	l := NewLimitedReader(strings.NewReader("0123456789"), 10)
	data, err := io.ReadAll(l)
	if err != nil {
		t.Fatalf("stream ending exactly at the cap must read cleanly, got %v", err)
	}
	if string(data) != "0123456789" || l.Count() != 10 {
		t.Fatalf("data = %q, count = %d", data, l.Count())
	}
}

func TestLimitedReaderOverflow(t *testing.T) {
	l := NewLimitedReader(strings.NewReader("0123456789X"), 10)
	data, err := io.ReadAll(l)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
	if len(data) > 10 {
		t.Fatalf("read %d bytes past a 10-byte budget", len(data))
	}
	// The error is sticky: later reads keep failing the same way.
	if _, err := l.Read(make([]byte, 1)); !errors.Is(err, ErrLimit) {
		t.Fatalf("second read err = %v, want ErrLimit", err)
	}
}

func TestLimitedReaderUnlimited(t *testing.T) {
	l := NewLimitedReader(strings.NewReader("hello"), -1)
	if _, err := io.ReadAll(l); err != nil {
		t.Fatal(err)
	}
	if l.Count() != 5 {
		t.Fatalf("count = %d, want 5", l.Count())
	}
}

// TestReplayThroughLimiter pins the satellite requirement: an oversized
// body read through the limiter fails the replay with ErrLimit — the
// 413 class — not ErrTruncated, even though from the decoder's view the
// stream just stopped.
func TestReplayThroughLimiter(t *testing.T) {
	data := synthTrace(t, 2000)
	mk := func() detect.Detector { return core.New(detect.NewSink(false, 0), core.SyncCAS) }

	err := Replay(NewLimitedReader(bytes.NewReader(data), int64(len(data)/2)), mk())
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("half budget: err = %v, want ErrLimit", err)
	}
	if errors.Is(err, ErrTruncated) {
		t.Fatalf("overflow misclassified as truncation: %v", err)
	}

	l := NewLimitedReader(bytes.NewReader(data), int64(len(data)))
	if err := Replay(l, mk()); err != nil {
		t.Fatalf("exact budget: %v", err)
	}
	if l.Count() != int64(len(data)) {
		t.Fatalf("count = %d, want %d", l.Count(), len(data))
	}
}

// TestCancelReaderBlockedRead proves the 100ms-slice mechanism: a read
// blocked on a stream that never produces bytes observes cancellation
// instead of hanging until the peer gives up.
func TestCancelReaderBlockedRead(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	cancel := make(chan struct{})
	cr := NewCancelReader(server, cancel, server.SetReadDeadline)

	time.AfterFunc(50*time.Millisecond, func() { close(cancel) })
	done := make(chan error, 1)
	go func() {
		_, err := cr.Read(make([]byte, 16))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked read did not observe cancellation")
	}
}

// TestCancelReaderMidReplay wires the full chain the server uses: a
// trace arrives partially over a pipe, the upload stalls, the request is
// canceled, and the replay returns ErrCanceled (not ErrTruncated).
func TestCancelReaderMidReplay(t *testing.T) {
	data := synthTrace(t, 8*cancelCheckEvery)
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	go func() {
		client.Write(data[:len(data)/2]) //nolint:errcheck
		// ...and then the upload stalls forever.
	}()

	cancel := make(chan struct{})
	time.AfterFunc(100*time.Millisecond, func() { close(cancel) })
	lim := DefaultLimits()
	lim.Cancel = cancel
	cr := NewCancelReader(server, cancel, server.SetReadDeadline)
	err := ReplayWithLimits(cr, core.New(detect.NewSink(false, 0), core.SyncCAS), lim)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestCancelReaderPassThrough: with no cancellation in sight the reader
// is transparent.
func TestCancelReaderPassThrough(t *testing.T) {
	data := synthTrace(t, 500)
	cr := NewCancelReader(bytes.NewReader(data), make(chan struct{}), nil)
	if err := Replay(cr, core.New(detect.NewSink(false, 0), core.SyncCAS)); err != nil {
		t.Fatal(err)
	}
}

// TestCancelReaderPreCanceled: a closed channel fails the very first
// read, before any bytes flow.
func TestCancelReaderPreCanceled(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	cr := NewCancelReader(strings.NewReader("data"), cancel, nil)
	if _, err := cr.Read(make([]byte, 4)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}
