// Package trace records the event stream of a monitored execution to a
// compact binary format and replays it offline into any detector.
//
// Recording decouples the expensive part (running the parallel program)
// from analysis: record once with the near-zero-overhead Recorder, then
// replay the trace under SPD3, FastTrack, Eraser, or the oracle — each in
// milliseconds, no re-execution.
//
// The recorded order is a legal serialization of the execution: the
// Recorder timestamps every event under one mutex at the moment it
// happens, so per-task program order and the runtime's cross-task
// ordering guarantees (spawn before child events, task ends before their
// finish's end) are preserved. Replay feeds that order single-threaded
// into the target detector, which therefore reaches the same verdict it
// would have reached live. ESP-bags additionally needs the recorded
// execution itself to have been depth-first (record under the sequential
// executor); Replay enforces this by refusing sequential-only detectors
// unless the trace is marked sequential.
//
// Format: "SPD3TRC1", then events as varints — kind, then arguments.
// Shadow regions are announced with their name and size before use.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"sync"

	"spd3/internal/detect"
)

const magic = "SPD3TRC1"

// Typed decode errors. Replay and ReplayWithLimits wrap one of these
// sentinels into every error they return, so callers (notably the spd3d
// daemon, which maps decode failures to HTTP status codes) can classify
// failures with errors.Is instead of string matching.
var (
	// ErrBadMagic marks input that is not an SPD3 trace at all.
	ErrBadMagic = errors.New("not an SPD3 trace (bad magic)")
	// ErrTruncated marks a trace that starts well but ends mid-event —
	// typically an interrupted recording or a partial upload.
	ErrTruncated = errors.New("truncated trace")
	// ErrMalformed marks a structurally invalid event stream (unknown
	// event kinds, references to undeclared tasks or regions,
	// out-of-bounds indices): the bytes decode but the trace lies.
	ErrMalformed = errors.New("malformed trace")
	// ErrLimit marks a trace whose declared resources exceed the
	// configured Limits.
	ErrLimit = errors.New("trace exceeds resource limits")
	// ErrSequentialOnly marks an illegal pairing: a detector that is
	// only correct under depth-first execution asked to consume a trace
	// recorded in parallel.
	ErrSequentialOnly = errors.New("sequential-only detector on a parallel trace")
	// ErrCanceled reports that replay stopped because Limits.Cancel was
	// closed before the trace was fully consumed.
	ErrCanceled = errors.New("replay canceled")
)

// event kinds
const (
	evMainTask byte = iota + 1
	evSpawn
	evTaskEnd
	evFinishStart
	evFinishEnd
	evAcquire
	evRelease
	evNewShadow
	evRead
	evWrite
	// evNewShadowGrow announces a growable region (no declared length):
	// id, elemBytes, then the name. Appended after the original kinds so
	// traces without growable regions stay byte-identical to format 1.
	evNewShadowGrow
)

// Recorder is a detect.Detector that writes the event stream to w. It
// performs no detection itself.
type Recorder struct {
	sequential bool

	mu      sync.Mutex
	w       *bufio.Writer
	buf     [2 * binary.MaxVarintLen64]byte
	regions int64
	err     error
}

// NewRecorder returns a recorder writing to w. Set sequential when the
// runtime uses the depth-first executor; it widens the set of detectors
// the trace can legally replay into.
func NewRecorder(w io.Writer, sequential bool) *Recorder {
	r := &Recorder{sequential: sequential, w: bufio.NewWriter(w)}
	_, err := r.w.WriteString(magic)
	if err == nil {
		if sequential {
			err = r.w.WriteByte(1)
		} else {
			err = r.w.WriteByte(0)
		}
	}
	r.err = err
	return r
}

// Close flushes the trace. Call after Run returns.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

func (r *Recorder) emit(kind byte, args ...int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	if err := r.w.WriteByte(kind); err != nil {
		r.err = err
		return
	}
	for _, a := range args {
		n := binary.PutVarint(r.buf[:], a)
		if _, err := r.w.Write(r.buf[:n]); err != nil {
			r.err = err
			return
		}
	}
}

func (r *Recorder) emitString(s string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	n := binary.PutUvarint(r.buf[:], uint64(len(s)))
	if _, err := r.w.Write(r.buf[:n]); err != nil {
		r.err = err
		return
	}
	if _, err := r.w.WriteString(s); err != nil {
		r.err = err
	}
}

// Name implements detect.Detector.
func (r *Recorder) Name() string { return "trace-recorder" }

// RequiresSequential implements detect.Detector.
func (r *Recorder) RequiresSequential() bool { return r.sequential }

// MainTask implements detect.Detector.
func (r *Recorder) MainTask(t *detect.Task, implicit *detect.Finish) {
	r.emit(evMainTask, int64(t.ID), implicit.ID)
}

// BeforeSpawn implements detect.Detector.
func (r *Recorder) BeforeSpawn(parent, child *detect.Task) {
	r.emit(evSpawn, int64(parent.ID), int64(child.ID), child.IEF.ID)
}

// TaskEnd implements detect.Detector.
func (r *Recorder) TaskEnd(t *detect.Task) { r.emit(evTaskEnd, int64(t.ID)) }

// FinishStart implements detect.Detector.
func (r *Recorder) FinishStart(t *detect.Task, f *detect.Finish) {
	r.emit(evFinishStart, int64(t.ID), f.ID)
}

// FinishEnd implements detect.Detector.
func (r *Recorder) FinishEnd(t *detect.Task, f *detect.Finish) {
	r.emit(evFinishEnd, int64(t.ID), f.ID)
}

// Acquire implements detect.Detector.
func (r *Recorder) Acquire(t *detect.Task, l *detect.Lock) {
	r.emit(evAcquire, int64(t.ID), l.ID)
}

// Release implements detect.Detector.
func (r *Recorder) Release(t *detect.Task, l *detect.Lock) {
	r.emit(evRelease, int64(t.ID), l.ID)
}

// NewShadow implements detect.Detector. Growable regions get their own
// event kind; bounded ones keep the original wire encoding.
func (r *Recorder) NewShadow(spec detect.ShadowSpec) detect.Shadow {
	r.mu.Lock()
	id := r.regions
	r.regions++
	r.mu.Unlock()
	if spec.Growable {
		r.emit(evNewShadowGrow, id, int64(spec.ElemBytes))
	} else {
		r.emit(evNewShadow, id, int64(spec.Len), int64(spec.ElemBytes))
	}
	r.emitString(spec.Name)
	return &recShadow{r: r, id: id}
}

// Footprint implements detect.Detector.
func (r *Recorder) Footprint() detect.Footprint { return detect.Footprint{} }

type recShadow struct {
	r  *Recorder
	id int64
}

func (s *recShadow) Read(t *detect.Task, i int) {
	s.r.emit(evRead, s.id, int64(t.ID), int64(i))
}

func (s *recShadow) Write(t *detect.Task, i int) {
	s.r.emit(evWrite, s.id, int64(t.ID), int64(i))
}

var _ detect.Detector = (*Recorder)(nil)

// Replay, the decoder, the finish-scope splitter, and the trace
// amplifier live in replay.go, split.go, and amplify.go; the streaming
// reader adapters (LimitedReader, CancelReader) live in stream.go.
