// Package trace records the event stream of a monitored execution to a
// compact binary format and replays it offline into any detector.
//
// Recording decouples the expensive part (running the parallel program)
// from analysis: record once with the near-zero-overhead Recorder, then
// replay the trace under SPD3, FastTrack, Eraser, or the oracle — each in
// milliseconds, no re-execution.
//
// The recorded order is a legal serialization of the execution: the
// Recorder timestamps every event under one mutex at the moment it
// happens, so per-task program order and the runtime's cross-task
// ordering guarantees (spawn before child events, task ends before their
// finish's end) are preserved. Replay feeds that order single-threaded
// into the target detector, which therefore reaches the same verdict it
// would have reached live. ESP-bags additionally needs the recorded
// execution itself to have been depth-first (record under the sequential
// executor); Replay enforces this by refusing sequential-only detectors
// unless the trace is marked sequential.
//
// Format: "SPD3TRC1", then events as varints — kind, then arguments.
// Shadow regions are announced with their name and size before use.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"spd3/internal/detect"
)

const magic = "SPD3TRC1"

// Typed decode errors. Replay and ReplayWithLimits wrap one of these
// sentinels into every error they return, so callers (notably the spd3d
// daemon, which maps decode failures to HTTP status codes) can classify
// failures with errors.Is instead of string matching.
var (
	// ErrBadMagic marks input that is not an SPD3 trace at all.
	ErrBadMagic = errors.New("not an SPD3 trace (bad magic)")
	// ErrTruncated marks a trace that starts well but ends mid-event —
	// typically an interrupted recording or a partial upload.
	ErrTruncated = errors.New("truncated trace")
	// ErrMalformed marks a structurally invalid event stream (unknown
	// event kinds, references to undeclared tasks or regions,
	// out-of-bounds indices): the bytes decode but the trace lies.
	ErrMalformed = errors.New("malformed trace")
	// ErrLimit marks a trace whose declared resources exceed the
	// configured Limits.
	ErrLimit = errors.New("trace exceeds resource limits")
	// ErrSequentialOnly marks an illegal pairing: a detector that is
	// only correct under depth-first execution asked to consume a trace
	// recorded in parallel.
	ErrSequentialOnly = errors.New("sequential-only detector on a parallel trace")
	// ErrCanceled reports that replay stopped because Limits.Cancel was
	// closed before the trace was fully consumed.
	ErrCanceled = errors.New("replay canceled")
)

// event kinds
const (
	evMainTask byte = iota + 1
	evSpawn
	evTaskEnd
	evFinishStart
	evFinishEnd
	evAcquire
	evRelease
	evNewShadow
	evRead
	evWrite
	// evNewShadowGrow announces a growable region (no declared length):
	// id, elemBytes, then the name. Appended after the original kinds so
	// traces without growable regions stay byte-identical to format 1.
	evNewShadowGrow
)

// Recorder is a detect.Detector that writes the event stream to w. It
// performs no detection itself.
type Recorder struct {
	sequential bool

	mu      sync.Mutex
	w       *bufio.Writer
	buf     [2 * binary.MaxVarintLen64]byte
	regions int64
	err     error
}

// NewRecorder returns a recorder writing to w. Set sequential when the
// runtime uses the depth-first executor; it widens the set of detectors
// the trace can legally replay into.
func NewRecorder(w io.Writer, sequential bool) *Recorder {
	r := &Recorder{sequential: sequential, w: bufio.NewWriter(w)}
	_, err := r.w.WriteString(magic)
	if err == nil {
		if sequential {
			err = r.w.WriteByte(1)
		} else {
			err = r.w.WriteByte(0)
		}
	}
	r.err = err
	return r
}

// Close flushes the trace. Call after Run returns.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

func (r *Recorder) emit(kind byte, args ...int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	if err := r.w.WriteByte(kind); err != nil {
		r.err = err
		return
	}
	for _, a := range args {
		n := binary.PutVarint(r.buf[:], a)
		if _, err := r.w.Write(r.buf[:n]); err != nil {
			r.err = err
			return
		}
	}
}

func (r *Recorder) emitString(s string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	n := binary.PutUvarint(r.buf[:], uint64(len(s)))
	if _, err := r.w.Write(r.buf[:n]); err != nil {
		r.err = err
		return
	}
	if _, err := r.w.WriteString(s); err != nil {
		r.err = err
	}
}

// Name implements detect.Detector.
func (r *Recorder) Name() string { return "trace-recorder" }

// RequiresSequential implements detect.Detector.
func (r *Recorder) RequiresSequential() bool { return r.sequential }

// MainTask implements detect.Detector.
func (r *Recorder) MainTask(t *detect.Task, implicit *detect.Finish) {
	r.emit(evMainTask, int64(t.ID), implicit.ID)
}

// BeforeSpawn implements detect.Detector.
func (r *Recorder) BeforeSpawn(parent, child *detect.Task) {
	r.emit(evSpawn, int64(parent.ID), int64(child.ID), child.IEF.ID)
}

// TaskEnd implements detect.Detector.
func (r *Recorder) TaskEnd(t *detect.Task) { r.emit(evTaskEnd, int64(t.ID)) }

// FinishStart implements detect.Detector.
func (r *Recorder) FinishStart(t *detect.Task, f *detect.Finish) {
	r.emit(evFinishStart, int64(t.ID), f.ID)
}

// FinishEnd implements detect.Detector.
func (r *Recorder) FinishEnd(t *detect.Task, f *detect.Finish) {
	r.emit(evFinishEnd, int64(t.ID), f.ID)
}

// Acquire implements detect.Detector.
func (r *Recorder) Acquire(t *detect.Task, l *detect.Lock) {
	r.emit(evAcquire, int64(t.ID), l.ID)
}

// Release implements detect.Detector.
func (r *Recorder) Release(t *detect.Task, l *detect.Lock) {
	r.emit(evRelease, int64(t.ID), l.ID)
}

// NewShadow implements detect.Detector. Growable regions get their own
// event kind; bounded ones keep the original wire encoding.
func (r *Recorder) NewShadow(spec detect.ShadowSpec) detect.Shadow {
	r.mu.Lock()
	id := r.regions
	r.regions++
	r.mu.Unlock()
	if spec.Growable {
		r.emit(evNewShadowGrow, id, int64(spec.ElemBytes))
	} else {
		r.emit(evNewShadow, id, int64(spec.Len), int64(spec.ElemBytes))
	}
	r.emitString(spec.Name)
	return &recShadow{r: r, id: id}
}

// Footprint implements detect.Detector.
func (r *Recorder) Footprint() detect.Footprint { return detect.Footprint{} }

type recShadow struct {
	r  *Recorder
	id int64
}

func (s *recShadow) Read(t *detect.Task, i int) {
	s.r.emit(evRead, s.id, int64(t.ID), int64(i))
}

func (s *recShadow) Write(t *detect.Task, i int) {
	s.r.emit(evWrite, s.id, int64(t.ID), int64(i))
}

var _ detect.Detector = (*Recorder)(nil)

// Limits bounds the resources a replayed trace may make the target
// detector allocate. A trace declares its shadow regions up front, so a
// hostile 30-byte file could otherwise demand gigabytes of shadow words.
type Limits struct {
	// MaxRegionElems caps one region's element count.
	MaxRegionElems int64
	// MaxTotalElems caps the sum over all regions.
	MaxTotalElems int64
	// Cancel, when non-nil, aborts the replay with ErrCanceled once the
	// channel is closed. The check runs every cancelCheckEvery events,
	// so a long replay stops within microseconds of cancellation while
	// the common case pays one counter decrement per event. Wire a
	// request context in with ctx.Done().
	Cancel <-chan struct{}
}

// DefaultLimits allows regions up to 64M elements and 128M elements in
// total — comfortably above the full-scale benchmark suite.
func DefaultLimits() Limits {
	return Limits{MaxRegionElems: 1 << 26, MaxTotalElems: 1 << 27}
}

// Replay feeds a recorded trace into det with DefaultLimits and returns
// an error on a malformed trace or an illegal pairing (sequential-only
// detector on a parallel trace).
func Replay(rd io.Reader, det detect.Detector) error {
	return ReplayWithLimits(rd, det, DefaultLimits())
}

// cancelCheckEvery is how many events replay processes between polls of
// Limits.Cancel. The first event always polls, so an already-expired
// deadline aborts before any detector work happens.
const cancelCheckEvery = 4096

// ReplayWithLimits is Replay with explicit resource bounds.
func ReplayWithLimits(rd io.Reader, det detect.Detector, lim Limits) error {
	br := bufio.NewReader(rd)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("trace: %w: %d-byte input", ErrBadMagic, len(head))
		}
		return fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head) != magic {
		return fmt.Errorf("trace: %w: header %q", ErrBadMagic, head)
	}
	seqByte, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("trace: %w: missing executor byte", ErrTruncated)
	}
	if det.RequiresSequential() && seqByte != 1 {
		return fmt.Errorf("trace: %w: detector %q needs a depth-first trace; this one was recorded in parallel", ErrSequentialOnly, det.Name())
	}

	st := &replayState{
		det:      det,
		lim:      lim,
		tasks:    map[int64]*detect.Task{},
		finishes: map[int64]*detect.Finish{},
		locks:    map[int64]*detect.Lock{},
	}
	countdown := 1 // poll Cancel on the very first event
	for {
		if lim.Cancel != nil {
			if countdown--; countdown <= 0 {
				countdown = cancelCheckEvery
				select {
				case <-lim.Cancel:
					return fmt.Errorf("trace: %w", ErrCanceled)
				default:
				}
			}
		}
		kind, err := br.ReadByte()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("trace: %w: %v", ErrTruncated, err)
		}
		if err := st.apply(br, kind); err != nil {
			return err
		}
	}
}

type replayState struct {
	det      detect.Detector
	lim      Limits
	tasks    map[int64]*detect.Task
	finishes map[int64]*detect.Finish
	locks    map[int64]*detect.Lock
	shadows  []detect.Shadow
	sizes    []int64
	total    int64
}

// Fixed sanity limits independent of Limits.
const (
	maxElemBytes = 1 << 20
	maxNameLen   = 1 << 16
)

// regionName reads a length-prefixed region name off the stream.
func (st *replayState) regionName(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", fmt.Errorf("trace: %w: region name length: %v", ErrTruncated, err)
	}
	if n > maxNameLen {
		return "", fmt.Errorf("trace: %w: region name of %d bytes", ErrMalformed, n)
	}
	name := make([]byte, n)
	if _, err := io.ReadFull(br, name); err != nil {
		return "", fmt.Errorf("trace: %w: region name: %v", ErrTruncated, err)
	}
	return string(name), nil
}

func (st *replayState) apply(br *bufio.Reader, kind byte) error {
	args := func(n int) ([]int64, error) {
		out := make([]int64, n)
		for i := range out {
			v, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: %w: event %d: %v", ErrTruncated, kind, err)
			}
			out[i] = v
		}
		return out, nil
	}
	switch kind {
	case evMainTask:
		a, err := args(2)
		if err != nil {
			return err
		}
		t := &detect.Task{ID: detect.TaskID(a[0])}
		f := &detect.Finish{ID: a[1], Owner: t}
		t.IEF = f
		st.tasks[a[0]] = t
		st.finishes[a[1]] = f
		st.det.MainTask(t, f)
	case evSpawn:
		a, err := args(3)
		if err != nil {
			return err
		}
		parent, ok := st.tasks[a[0]]
		if !ok {
			return fmt.Errorf("trace: %w: spawn from unknown task %d", ErrMalformed, a[0])
		}
		ief, ok := st.finishes[a[2]]
		if !ok {
			return fmt.Errorf("trace: %w: spawn into unknown finish %d", ErrMalformed, a[2])
		}
		child := &detect.Task{ID: detect.TaskID(a[1]), Parent: parent, IEF: ief, Depth: parent.Depth + 1}
		st.tasks[a[1]] = child
		st.det.BeforeSpawn(parent, child)
	case evTaskEnd:
		a, err := args(1)
		if err != nil {
			return err
		}
		t, ok := st.tasks[a[0]]
		if !ok {
			return fmt.Errorf("trace: %w: end of unknown task %d", ErrMalformed, a[0])
		}
		st.det.TaskEnd(t)
	case evFinishStart:
		a, err := args(2)
		if err != nil {
			return err
		}
		t, ok := st.tasks[a[0]]
		if !ok {
			return fmt.Errorf("trace: %w: finish in unknown task %d", ErrMalformed, a[0])
		}
		f := &detect.Finish{ID: a[1], Owner: t}
		st.finishes[a[1]] = f
		st.det.FinishStart(t, f)
	case evFinishEnd:
		a, err := args(2)
		if err != nil {
			return err
		}
		t, f := st.tasks[a[0]], st.finishes[a[1]]
		if t == nil || f == nil {
			return fmt.Errorf("trace: %w: finish-end with unknown task %d or finish %d", ErrMalformed, a[0], a[1])
		}
		st.det.FinishEnd(t, f)
	case evAcquire, evRelease:
		a, err := args(2)
		if err != nil {
			return err
		}
		t := st.tasks[a[0]]
		if t == nil {
			return fmt.Errorf("trace: %w: lock op in unknown task %d", ErrMalformed, a[0])
		}
		l := st.locks[a[1]]
		if l == nil {
			l = &detect.Lock{ID: a[1]}
			st.locks[a[1]] = l
		}
		if kind == evAcquire {
			st.det.Acquire(t, l)
		} else {
			st.det.Release(t, l)
		}
	case evNewShadow:
		a, err := args(3)
		if err != nil {
			return err
		}
		if a[1] < 0 || a[1] > st.lim.MaxRegionElems {
			return fmt.Errorf("trace: %w: region size %d out of range", ErrLimit, a[1])
		}
		if st.total += a[1]; st.total > st.lim.MaxTotalElems {
			return fmt.Errorf("trace: %w: total region size exceeds limit of %d elements", ErrLimit, st.lim.MaxTotalElems)
		}
		if a[2] < 0 || a[2] > maxElemBytes {
			return fmt.Errorf("trace: %w: element size %d out of range", ErrMalformed, a[2])
		}
		name, err := st.regionName(br)
		if err != nil {
			return err
		}
		if int(a[0]) != len(st.shadows) {
			return fmt.Errorf("trace: %w: region %d out of order", ErrMalformed, a[0])
		}
		st.shadows = append(st.shadows, st.det.NewShadow(detect.Spec(name, int(a[1]), int(a[2]))))
		st.sizes = append(st.sizes, a[1])
	case evNewShadowGrow:
		a, err := args(2)
		if err != nil {
			return err
		}
		if a[1] < 0 || a[1] > maxElemBytes {
			return fmt.Errorf("trace: %w: element size %d out of range", ErrMalformed, a[1])
		}
		name, err := st.regionName(br)
		if err != nil {
			return err
		}
		if int(a[0]) != len(st.shadows) {
			return fmt.Errorf("trace: %w: region %d out of order", ErrMalformed, a[0])
		}
		st.shadows = append(st.shadows, st.det.NewShadow(detect.GrowableSpec(name, int(a[1]))))
		// Growable: no declared size. Indices are still bounded by
		// MaxRegionElems so a hostile trace cannot force huge pages.
		st.sizes = append(st.sizes, -1)
	case evRead, evWrite:
		a, err := args(3)
		if err != nil {
			return err
		}
		if a[0] < 0 || int(a[0]) >= len(st.shadows) {
			return fmt.Errorf("trace: %w: access to unknown region %d", ErrMalformed, a[0])
		}
		bound := st.sizes[a[0]]
		if bound < 0 {
			bound = st.lim.MaxRegionElems
		}
		if a[2] < 0 || a[2] >= bound {
			return fmt.Errorf("trace: %w: access index %d outside region of %d elements", ErrMalformed, a[2], bound)
		}
		t := st.tasks[a[1]]
		if t == nil {
			return fmt.Errorf("trace: %w: access by unknown task %d", ErrMalformed, a[1])
		}
		if kind == evRead {
			st.shadows[a[0]].Read(t, int(a[2]))
		} else {
			st.shadows[a[0]].Write(t, int(a[2]))
		}
	default:
		return fmt.Errorf("trace: %w: unknown event kind %d", ErrMalformed, kind)
	}
	return nil
}
