package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"spd3/internal/core"
	"spd3/internal/detect"
	"spd3/internal/progen"
	"spd3/internal/task"
)

// fuzzSeeds populates f with real traces and near-misses.
func fuzzSeeds(f *testing.F) {
	for _, seed := range []int64{1, 2, 3} {
		p := progen.Generate(seed, progen.Config{Locks: 1})
		var buf bytes.Buffer
		rec := NewRecorder(&buf, true)
		rt, err := task.New(task.Config{Executor: task.Sequential, Detector: rec})
		if err != nil {
			f.Fatal(err)
		}
		if err := progen.Run(rt, p, nil); err != nil {
			f.Fatal(err)
		}
		if err := rec.Close(); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2])
	}
	f.Add([]byte(magic))
	f.Add([]byte("SPD3TRC1\x01\x01"))
	f.Add([]byte{})
}

// isDecodeSentinel reports whether err belongs to the typed error
// contract the daemon's status mapping relies on: a replay of untrusted
// bytes may fail only with these classes.
func isDecodeSentinel(err error) bool {
	return errors.Is(err, ErrBadMagic) ||
		errors.Is(err, ErrTruncated) ||
		errors.Is(err, ErrMalformed) ||
		errors.Is(err, ErrLimit)
}

// FuzzReplay feeds arbitrary bytes to the trace parser through a
// chunked reader (exercising the incremental refill paths): it must
// never panic, and any failure must carry exactly one of the typed
// sentinels — an untyped error would reach clients as a 500.
func FuzzReplay(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		sink := detect.NewSink(false, 0)
		// Tight limits keep hostile region declarations from turning
		// into large allocations.
		lim := Limits{MaxRegionElems: 1 << 16, MaxTotalElems: 1 << 18}
		rd := &chunkReader{r: bytes.NewReader(data), n: 5}
		err := ReplayWithLimits(rd, core.New(sink, core.SyncCAS), lim)
		if err != nil && !isDecodeSentinel(err) {
			t.Fatalf("untyped error escaped the replay: %v", err)
		}
	})
}

// FuzzSplitter drives the segment splitter over arbitrary bytes: no
// panics, only sentinel errors (plus ErrSegmentOversize, which Unsplit
// must then absorb), and every produced segment must itself replay
// without tripping an untyped error.
func FuzzSplitter(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := NewSplitter(&chunkReader{r: bytes.NewReader(data), n: 5}, SplitConfig{
			MinSegmentBytes: 1,
			MaxSegmentBytes: 1 << 16,
		})
		if err != nil {
			if !isDecodeSentinel(err) {
				t.Fatalf("untyped splitter header error: %v", err)
			}
			return
		}
		lim := Limits{MaxRegionElems: 1 << 16, MaxTotalElems: 1 << 18}
		for i := 0; i < 64; i++ {
			seg, err := sp.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if errors.Is(err, ErrSegmentOversize) {
				if rerr := ReplayWithLimits(sp.Unsplit(), core.New(detect.NewSink(false, 0), core.SyncCAS), lim); rerr != nil && !isDecodeSentinel(rerr) {
					t.Fatalf("untyped error from unsplit replay: %v", rerr)
				}
				return
			}
			if err != nil {
				if !isDecodeSentinel(err) {
					t.Fatalf("untyped splitter error: %v", err)
				}
				return
			}
			if rerr := ReplayWithLimits(bytes.NewReader(seg), core.New(detect.NewSink(false, 0), core.SyncCAS), lim); rerr != nil && !isDecodeSentinel(rerr) {
				t.Fatalf("untyped error from segment replay: %v", rerr)
			}
		}
	})
}
