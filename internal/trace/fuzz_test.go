package trace

import (
	"bytes"
	"testing"

	"spd3/internal/core"
	"spd3/internal/detect"
	"spd3/internal/progen"
	"spd3/internal/task"
)

// FuzzReplay feeds arbitrary bytes to the trace parser: it must reject or
// accept them gracefully, never panic — Replay parses untrusted input.
func FuzzReplay(f *testing.F) {
	// Seed with real traces and near-misses.
	for _, seed := range []int64{1, 2, 3} {
		p := progen.Generate(seed, progen.Config{Locks: 1})
		var buf bytes.Buffer
		rec := NewRecorder(&buf, true)
		rt, err := task.New(task.Config{Executor: task.Sequential, Detector: rec})
		if err != nil {
			f.Fatal(err)
		}
		if err := progen.Run(rt, p, nil); err != nil {
			f.Fatal(err)
		}
		if err := rec.Close(); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2])
	}
	f.Add([]byte(magic))
	f.Add([]byte("SPD3TRC1\x01\x01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		sink := detect.NewSink(false, 0)
		// Must not panic; errors are fine. Tight limits keep hostile
		// region declarations from turning into large allocations.
		lim := Limits{MaxRegionElems: 1 << 16, MaxTotalElems: 1 << 18}
		_ = ReplayWithLimits(bytes.NewReader(data), core.New(sink, core.SyncCAS), lim)
	})
}
