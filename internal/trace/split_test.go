package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"spd3/internal/core"
	"spd3/internal/detect"
	"spd3/internal/fasttrack"
	"spd3/internal/progen"
	"spd3/internal/stats"
	"spd3/internal/task"
)

// chunkReader delivers at most n bytes per Read, forcing the decoder to
// exercise its incremental refill paths the way a network body does.
type chunkReader struct {
	r io.Reader
	n int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(p) > c.n {
		p = p[:c.n]
	}
	return c.r.Read(p)
}

// analysis is one replay's complete observable outcome: verdict, race
// list, and the stats snapshot the server would report.
type analysis struct {
	racy  bool
	races []detect.Race
	snap  stats.Snapshot
	err   error
}

// analyzeReader replays rd into a fresh spd3 detector with stats wired
// the way the daemon wires them.
func analyzeReader(rd io.Reader) analysis {
	sink := detect.NewSink(false, 0)
	rec := stats.New(1)
	sink.SetStats(rec.Shard(0))
	det := core.New(sink, core.SyncCAS)
	err := Replay(rd, det)
	snap := rec.Snapshot()
	snap.Footprint = det.Footprint()
	return analysis{racy: !sink.Empty(), races: sink.Races(), snap: snap, err: err}
}

// TestStreamingMatchesBuffered is the differential property test: for
// 150 generated programs, replaying the trace incrementally off a
// 7-byte-chunk reader must produce the identical verdict, race list,
// and stats snapshot as replaying it from a fully buffered slice.
func TestStreamingMatchesBuffered(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		p := progen.Generate(seed, progen.Config{Locks: 1})
		data := record(t, p, task.Sequential, 1)

		buffered := analyzeReader(bytes.NewReader(data))
		streaming := analyzeReader(&chunkReader{r: bytes.NewReader(data), n: 7})
		if buffered.err != nil || streaming.err != nil {
			t.Fatalf("seed %d: buffered err %v, streaming err %v", seed, buffered.err, streaming.err)
		}
		if buffered.racy != streaming.racy {
			t.Fatalf("seed %d: buffered racy=%v, streaming racy=%v\n%s", seed, buffered.racy, streaming.racy, p)
		}
		if !reflect.DeepEqual(buffered.races, streaming.races) {
			t.Fatalf("seed %d: race lists diverge\nbuffered:  %v\nstreaming: %v", seed, buffered.races, streaming.races)
		}
		if !reflect.DeepEqual(buffered.snap, streaming.snap) {
			t.Fatalf("seed %d: stats snapshots diverge\nbuffered:  %v\nstreaming: %v", seed, buffered.snap, streaming.snap)
		}
	}
}

// segKey identifies a race the way the server's shard merge does; step
// labels are segment-relative and excluded.
type segKey struct {
	kind   string
	region string
	index  int
}

func keySet(races []detect.Race) map[segKey]struct{} {
	m := make(map[segKey]struct{}, len(races))
	for _, r := range races {
		m[segKey{r.Kind.String(), r.Region, r.Index}] = struct{}{}
	}
	return m
}

// TestSplitterUnionMatchesWhole: splitting at every available finish
// boundary and unioning per-segment results must reproduce the
// whole-trace verdict and race set — the soundness property the sharded
// server path rests on.
func TestSplitterUnionMatchesWhole(t *testing.T) {
	multi := 0
	for seed := int64(0); seed < 150; seed++ {
		p := progen.Generate(seed, progen.Config{Locks: 1})
		data := record(t, p, task.Sequential, 1)
		whole := analyzeReader(bytes.NewReader(data))
		if whole.err != nil {
			t.Fatal(whole.err)
		}

		sp, err := NewSplitter(bytes.NewReader(data), SplitConfig{MinSegmentBytes: 1})
		if err != nil {
			t.Fatal(err)
		}
		racy := false
		union := map[segKey]struct{}{}
		segs := 0
		for {
			seg, err := sp.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatalf("seed %d: segment %d: %v", seed, segs, err)
			}
			segs++
			a := analyzeReader(bytes.NewReader(seg))
			if a.err != nil {
				t.Fatalf("seed %d: segment %d replay: %v", seed, segs, a.err)
			}
			racy = racy || a.racy
			for k := range keySet(a.races) {
				union[k] = struct{}{}
			}
		}
		if segs != sp.Segments() {
			t.Fatalf("seed %d: counted %d segments, splitter says %d", seed, segs, sp.Segments())
		}
		if segs > 1 {
			multi++
		}
		if racy != whole.racy {
			t.Fatalf("seed %d: union racy=%v, whole racy=%v (%d segments)\n%s", seed, racy, whole.racy, segs, p)
		}
		if !reflect.DeepEqual(union, keySet(whole.races)) {
			t.Fatalf("seed %d: race sets diverge\nunion: %v\nwhole: %v", seed, union, keySet(whole.races))
		}
	}
	if multi == 0 {
		t.Fatal("no seed produced a multi-segment split; the test is vacuous")
	}
}

// TestSplitterHoldsCutWhileMainHoldsLock pins the lock-boundary rule: a
// top-level FinishEnd reached while the main task holds a lock is not a
// cut point, because the segment after it would open with a Release it
// never Acquired.
func TestSplitterHoldsCutWhileMainHoldsLock(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf, true)
	mt := &detect.Task{ID: 0}
	f0 := &detect.Finish{ID: 0, Owner: mt}
	mt.IEF = f0
	rec.MainTask(mt, f0)
	sh := rec.NewShadow(detect.Spec("r", 8, 8))
	lk := &detect.Lock{ID: 1}

	rec.Acquire(mt, lk)
	f1 := &detect.Finish{ID: 1, Owner: mt}
	rec.FinishStart(mt, f1)
	sh.Write(mt, 0)
	rec.FinishEnd(mt, f1) // top-level boundary shape, but the lock is held
	rec.Release(mt, lk)

	f2 := &detect.Finish{ID: 2, Owner: mt}
	rec.FinishStart(mt, f2)
	sh.Write(mt, 1)
	rec.FinishEnd(mt, f2) // legal boundary

	sh.Read(mt, 2)
	rec.TaskEnd(mt)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	sp, err := NewSplitter(bytes.NewReader(buf.Bytes()), SplitConfig{MinSegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	var segs [][]byte
	for {
		seg, err := sp.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		segs = append(segs, seg)
	}
	// A cut after f1's end would yield three segments (and an unmatched
	// Release); suppression yields exactly two.
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2 (cut only after the lock released)", len(segs))
	}
	for i, seg := range segs {
		sink := detect.NewSink(false, 0)
		if err := Replay(bytes.NewReader(seg), fasttrack.New(sink)); err != nil {
			t.Fatalf("segment %d not self-contained under fasttrack: %v", i, err)
		}
		if err := Replay(bytes.NewReader(seg), core.New(detect.NewSink(false, 0), core.SyncCAS)); err != nil {
			t.Fatalf("segment %d not self-contained under spd3: %v", i, err)
		}
	}
}

// TestSplitterMultiRunTrace: a trace holding two back-to-back runs from
// one recorder (two main-task events, region IDs continuing across the
// gap) splits at the run boundary and each piece replays cleanly.
func TestSplitterMultiRunTrace(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf, true)
	mt1 := &detect.Task{ID: 0}
	f0 := &detect.Finish{ID: 0, Owner: mt1}
	mt1.IEF = f0
	rec.MainTask(mt1, f0)
	shA := rec.NewShadow(detect.Spec("a", 8, 8))
	for i := 0; i < 50; i++ {
		shA.Write(mt1, i%8)
	}
	rec.TaskEnd(mt1)

	mt2 := &detect.Task{ID: 1}
	f1 := &detect.Finish{ID: 1, Owner: mt2}
	mt2.IEF = f1
	rec.MainTask(mt2, f1)
	shB := rec.NewShadow(detect.Spec("b", 8, 8)) // region 1: IDs continue across runs
	for i := 0; i < 50; i++ {
		shA.Read(mt2, i%8) // the new run touches the old run's region too
		shB.Write(mt2, i%8)
	}
	rec.TaskEnd(mt2)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	whole := &countingDetector{trigger: -1}
	if err := Replay(bytes.NewReader(data), whole); err != nil {
		t.Fatal(err)
	}

	sp, err := NewSplitter(bytes.NewReader(data), SplitConfig{MinSegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	segs, total := 0, 0
	for {
		seg, err := sp.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		segs++
		det := &countingDetector{trigger: -1}
		if err := Replay(bytes.NewReader(seg), det); err != nil {
			t.Fatalf("segment %d: %v", segs, err)
		}
		total += det.events
	}
	// MinSegmentBytes is far above the trace size, so only the run gap
	// (which ignores coalescing) can cut: exactly two segments.
	if segs != 2 {
		t.Fatalf("got %d segments, want 2 (one per run)", segs)
	}
	if total != whole.events {
		t.Fatalf("segments saw %d accesses, whole trace saw %d", total, whole.events)
	}
}

// TestSplitterOversizeUnsplit: a trace with no interior boundary trips
// the segment cap, and Unsplit recovers the entire remaining trace for
// single-stream analysis — nothing already consumed is lost.
func TestSplitterOversizeUnsplit(t *testing.T) {
	const accesses = 50_000
	data := synthTrace(t, accesses)

	sp, err := NewSplitter(bytes.NewReader(data), SplitConfig{MinSegmentBytes: 1, MaxSegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Next(); !errors.Is(err, ErrSegmentOversize) {
		t.Fatalf("err = %v, want ErrSegmentOversize", err)
	}
	det := &countingDetector{trigger: -1}
	if err := Replay(sp.Unsplit(), det); err != nil {
		t.Fatalf("unsplit replay: %v", err)
	}
	if det.events != accesses {
		t.Fatalf("unsplit replay saw %d accesses, want %d", det.events, accesses)
	}
	if _, err := sp.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("Next after Unsplit = %v, want io.EOF", err)
	}
}

// TestSplitterSingleSegment: without a cap, a boundary-free trace comes
// back as exactly one segment equal in effect to the original.
func TestSplitterSingleSegment(t *testing.T) {
	data := synthTrace(t, 1000)
	sp, err := NewSplitter(bytes.NewReader(data), SplitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Sequential() {
		t.Fatal("sequential flag lost")
	}
	seg, err := sp.Next()
	if err != nil {
		t.Fatal(err)
	}
	det := &countingDetector{trigger: -1}
	if err := Replay(bytes.NewReader(seg), det); err != nil {
		t.Fatal(err)
	}
	if det.events != 1000 {
		t.Fatalf("segment replay saw %d accesses, want 1000", det.events)
	}
	if _, err := sp.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("second Next = %v, want io.EOF", err)
	}
}
