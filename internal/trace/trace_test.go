package trace

import (
	"bytes"
	"strings"
	"testing"

	"spd3/internal/core"
	"spd3/internal/detect"
	"spd3/internal/espbags"
	"spd3/internal/fasttrack"
	"spd3/internal/progen"
	"spd3/internal/task"
)

// record runs p under the recorder and returns the trace bytes.
func record(t *testing.T, p *progen.Program, exec task.ExecKind, workers int) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec := NewRecorder(&buf, exec == task.Sequential)
	rt, err := task.New(task.Config{Executor: exec, Workers: workers, Detector: rec})
	if err != nil {
		t.Fatal(err)
	}
	if err := progen.Run(rt, p, nil); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// liveVerdict runs p directly under a fresh detector.
func liveVerdict(t *testing.T, p *progen.Program, mk func(*detect.Sink) detect.Detector,
	exec task.ExecKind) bool {
	t.Helper()
	sink := detect.NewSink(false, 0)
	rt, err := task.New(task.Config{Executor: exec, Detector: mk(sink)})
	if err != nil {
		t.Fatal(err)
	}
	if err := progen.Run(rt, p, nil); err != nil {
		t.Fatal(err)
	}
	return !sink.Empty()
}

// replayVerdict replays the trace into a fresh detector.
func replayVerdict(t *testing.T, data []byte, mk func(*detect.Sink) detect.Detector) bool {
	t.Helper()
	sink := detect.NewSink(false, 0)
	if err := Replay(bytes.NewReader(data), mk(sink)); err != nil {
		t.Fatal(err)
	}
	return !sink.Empty()
}

func mkSPD3(s *detect.Sink) detect.Detector      { return core.New(s, core.SyncCAS) }
func mkFastTrack(s *detect.Sink) detect.Detector { return fasttrack.New(s) }
func mkESPBags(s *detect.Sink) detect.Detector   { return espbags.New(s) }

// TestReplayMatchesLiveVerdicts: recording a sequential execution and
// replaying it into each detector yields the same verdict as running the
// detector live.
func TestReplayMatchesLiveVerdicts(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		p := progen.Generate(seed, progen.Config{})
		data := record(t, p, task.Sequential, 1)
		for name, mk := range map[string]func(*detect.Sink) detect.Detector{
			"spd3":      mkSPD3,
			"fasttrack": mkFastTrack,
			"espbags":   mkESPBags,
		} {
			live := liveVerdict(t, p, mk, task.Sequential)
			rep := replayVerdict(t, data, mk)
			if live != rep {
				t.Fatalf("seed %d %s: live %v, replay %v\n%s", seed, name, live, rep, p)
			}
		}
	}
}

// TestReplayParallelTrace: traces recorded under the pool replay into
// parallel-capable detectors with the same verdict.
func TestReplayParallelTrace(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		p := progen.Generate(seed, progen.Config{})
		data := record(t, p, task.Pool, 4)
		live := liveVerdict(t, p, mkSPD3, task.Sequential)
		rep := replayVerdict(t, data, mkSPD3)
		if live != rep {
			t.Fatalf("seed %d: live %v, replay %v\n%s", seed, live, rep, p)
		}
	}
}

// TestReplayRejectsSequentialDetectorOnParallelTrace pins the legality
// check: ESP-bags needs a depth-first trace.
func TestReplayRejectsSequentialDetectorOnParallelTrace(t *testing.T) {
	p := progen.Generate(1, progen.Config{})
	data := record(t, p, task.Pool, 4)
	sink := detect.NewSink(false, 0)
	err := Replay(bytes.NewReader(data), espbags.New(sink))
	if err == nil || !strings.Contains(err.Error(), "depth-first") {
		t.Fatalf("err = %v, want depth-first rejection", err)
	}
}

// TestReplayWithLocks: lock events round-trip.
func TestReplayWithLocks(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		p := progen.Generate(seed, progen.Config{Locks: 2})
		data := record(t, p, task.Sequential, 1)
		live := liveVerdict(t, p, mkFastTrack, task.Sequential)
		rep := replayVerdict(t, data, mkFastTrack)
		if live != rep {
			t.Fatalf("seed %d: live %v, replay %v\n%s", seed, live, rep, p)
		}
	}
}

func TestReplayMalformed(t *testing.T) {
	sink := detect.NewSink(false, 0)
	if err := Replay(bytes.NewReader(nil), core.New(sink, core.SyncCAS)); err == nil {
		t.Fatal("empty input accepted")
	}
	if err := Replay(strings.NewReader("NOTATRACE"), core.New(sink, core.SyncCAS)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Valid header, then garbage event kind.
	bad := append([]byte(magic), 1, 0xEE)
	if err := Replay(bytes.NewReader(bad), core.New(sink, core.SyncCAS)); err == nil {
		t.Fatal("garbage event accepted")
	}
	// Truncated mid-event.
	p := progen.Generate(3, progen.Config{})
	data := record(t, p, task.Sequential, 1)
	if err := Replay(bytes.NewReader(data[:len(data)-1]), core.New(sink, core.SyncCAS)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

// TestTraceCompact sanity-checks the encoding density: a trace event
// should cost a handful of bytes, not a struct dump.
func TestTraceCompact(t *testing.T) {
	p := progen.Generate(7, progen.Config{MaxStmts: 200})
	data := record(t, p, task.Sequential, 1)
	_, _, accesses := p.Stats()
	if accesses == 0 {
		t.Skip("seed produced no accesses")
	}
	perEvent := float64(len(data)) / float64(accesses)
	if perEvent > 32 {
		t.Fatalf("trace too fat: %.1f bytes per access event", perEvent)
	}
}
