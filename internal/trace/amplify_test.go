package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"spd3/internal/detect"
	"spd3/internal/progen"
	"spd3/internal/task"
)

// TestAmplifyPreservesVerdict: an N×-amplified trace must reach the same
// racy/race-free verdict as its base under every detector class —
// including the sequential-only one, since amplification keeps the
// depth-first layout.
func TestAmplifyPreservesVerdict(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := progen.Generate(seed, progen.Config{Locks: 1})
		data := record(t, p, task.Sequential, 1)
		amp, err := AmplifyBytes(data, 5)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for name, mk := range map[string]func(*detect.Sink) detect.Detector{
			"spd3":      mkSPD3,
			"fasttrack": mkFastTrack,
			"espbags":   mkESPBags,
		} {
			base := replayVerdict(t, data, mk)
			got := replayVerdict(t, amp, mk)
			if base != got {
				t.Fatalf("seed %d %s: base racy=%v, amplified racy=%v\n%s", seed, name, base, got, p)
			}
		}
	}
}

// TestAmplifySplits: every copy's wrap finish closes at top level, so an
// ×8 amplification must shard into at least 8 segments whose union
// reproduces the base verdict — the property that lets the daemon chew
// amplified load back down to base-sized units.
func TestAmplifySplits(t *testing.T) {
	const copies = 8
	sharded := 0
	for seed := int64(0); seed < 10; seed++ {
		p := progen.Generate(seed, progen.Config{Locks: 1})
		data := record(t, p, task.Sequential, 1)
		base := analyzeReader(bytes.NewReader(data))
		if base.err != nil {
			t.Fatal(base.err)
		}
		amp, err := AmplifyBytes(data, copies)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := NewSplitter(bytes.NewReader(amp), SplitConfig{MinSegmentBytes: 1})
		if err != nil {
			t.Fatal(err)
		}
		racy, segs := false, 0
		for {
			seg, err := sp.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatalf("seed %d: segment %d: %v", seed, segs, err)
			}
			segs++
			a := analyzeReader(bytes.NewReader(seg))
			if a.err != nil {
				t.Fatalf("seed %d: segment %d replay: %v", seed, segs, a.err)
			}
			racy = racy || a.racy
		}
		if segs >= copies {
			sharded++
		}
		if racy != base.racy {
			t.Fatalf("seed %d: sharded amplified racy=%v, base racy=%v (%d segments)", seed, racy, base.racy, segs)
		}
	}
	if sharded == 0 {
		t.Fatalf("no amplified trace split into >= %d segments", copies)
	}
}

// TestAmplifyStreams: the Amplifier's Read output matches AmplifyBytes,
// and SizeHint is within 2× of the truth either way.
func TestAmplifyStreams(t *testing.T) {
	data := record(t, progen.Generate(3, progen.Config{}), task.Sequential, 1)
	want, err := AmplifyBytes(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAmplifier(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(&chunkReader{r: a, n: 13})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("streamed amplification (%d bytes) differs from materialized (%d bytes)", len(got), len(want))
	}
	hint, actual := NewAmplifierMust(t, data, 6).SizeHint(), int64(len(want))
	if actual > 2*hint || hint > 2*actual {
		t.Fatalf("SizeHint %d vs actual %d: off by more than 2x", hint, actual)
	}
}

func NewAmplifierMust(t *testing.T, base []byte, copies int) *Amplifier {
	t.Helper()
	a, err := NewAmplifier(base, copies)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestAmplifyLeadingRegionDecls: real recordings declare shadow regions
// created before the runtime starts ahead of the main-task event; the
// amplifier must accept that shape.
func TestAmplifyLeadingRegionDecls(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf, true)
	sh := rec.NewShadow(detect.Spec("early", 8, 8)) // declared before MainTask
	mt := &detect.Task{ID: 0}
	f0 := &detect.Finish{ID: 0, Owner: mt}
	mt.IEF = f0
	rec.MainTask(mt, f0)
	const accesses = 100
	for i := 0; i < accesses; i++ {
		sh.Read(mt, i%8)
	}
	rec.TaskEnd(mt)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	amp, err := AmplifyBytes(buf.Bytes(), 3)
	if err != nil {
		t.Fatal(err)
	}
	det := &countingDetector{trigger: -1}
	if err := Replay(bytes.NewReader(amp), det); err != nil {
		t.Fatal(err)
	}
	if det.events != 3*accesses {
		t.Fatalf("amplified replay saw %d accesses, want %d", det.events, 3*accesses)
	}
}

func TestAmplifyErrors(t *testing.T) {
	data := record(t, progen.Generate(1, progen.Config{}), task.Sequential, 1)

	if _, err := NewAmplifier(data, 0); err == nil {
		t.Error("copies=0 accepted")
	}
	if _, err := NewAmplifier([]byte("NOTATRACE"), 2); !errors.Is(err, ErrBadMagic) {
		t.Errorf("garbage base: err = %v, want ErrBadMagic", err)
	}
	if _, err := NewAmplifier(append([]byte(magic), 1), 2); !errors.Is(err, ErrMalformed) {
		t.Errorf("empty base: err = %v, want ErrMalformed", err)
	}
	tworuns := append(append([]byte{}, data...), data[len(magic)+1:]...)
	if _, err := NewAmplifier(tworuns, 2); !errors.Is(err, ErrMalformed) {
		t.Errorf("two-run base: err = %v, want ErrMalformed", err)
	}
}
