package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"spd3/internal/detect"
)

// Limits bounds the resources a replayed trace may make the target
// detector allocate. A trace declares its shadow regions up front, so a
// hostile 30-byte file could otherwise demand gigabytes of shadow words.
type Limits struct {
	// MaxRegionElems caps one region's element count.
	MaxRegionElems int64
	// MaxTotalElems caps the sum over all regions.
	MaxTotalElems int64
	// Cancel, when non-nil, aborts the replay with ErrCanceled once the
	// channel is closed. The check runs every cancelCheckEvery events,
	// so a long replay stops within microseconds of cancellation while
	// the common case pays one counter decrement per event. Wire a
	// request context in with ctx.Done().
	Cancel <-chan struct{}
}

// DefaultLimits allows regions up to 64M elements and 128M elements in
// total — comfortably above the full-scale benchmark suite.
func DefaultLimits() Limits {
	return Limits{MaxRegionElems: 1 << 26, MaxTotalElems: 1 << 27}
}

// Replay feeds a recorded trace into det with DefaultLimits and returns
// an error on a malformed trace or an illegal pairing (sequential-only
// detector on a parallel trace).
func Replay(rd io.Reader, det detect.Detector) error {
	return ReplayWithLimits(rd, det, DefaultLimits())
}

// cancelCheckEvery is how many events replay processes between polls of
// Limits.Cancel. The first event always polls, so an already-expired
// deadline aborts before any detector work happens. Reads that block
// between polls are the CancelReader's problem: wrap the input in one
// and slow uploads cancel mid-read too.
const cancelCheckEvery = 4096

// ReplayWithLimits is Replay with explicit resource bounds.
//
// The input is consumed strictly forward through a fixed-size bufio
// buffer and the replay table drops tasks and finishes as they end, so
// memory stays proportional to the live task set and declared regions —
// not to trace length. A multi-gigabyte trace streams straight off a
// network body.
func ReplayWithLimits(rd io.Reader, det detect.Detector, lim Limits) error {
	dec, err := newDecoder(rd)
	if err != nil {
		return err
	}
	if det.RequiresSequential() && !dec.sequential {
		return fmt.Errorf("trace: %w: detector %q needs a depth-first trace; this one was recorded in parallel", ErrSequentialOnly, det.Name())
	}

	st := newReplayState(det, lim)
	countdown := 1 // poll Cancel on the very first event
	var ev event
	for {
		if lim.Cancel != nil {
			if countdown--; countdown <= 0 {
				countdown = cancelCheckEvery
				select {
				case <-lim.Cancel:
					return fmt.Errorf("trace: %w", ErrCanceled)
				default:
				}
			}
		}
		err := dec.next(&ev)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := st.apply(&ev); err != nil {
			return err
		}
	}
}

// eventArgs maps an event kind to its varint argument count; zero marks
// an unknown kind. evNewShadow and evNewShadowGrow additionally carry a
// length-prefixed name after their arguments.
var eventArgs = [256]int8{
	evMainTask:      2,
	evSpawn:         3,
	evTaskEnd:       1,
	evFinishStart:   2,
	evFinishEnd:     2,
	evAcquire:       2,
	evRelease:       2,
	evNewShadow:     3,
	evRead:          3,
	evWrite:         3,
	evNewShadowGrow: 2,
}

// event is one decoded trace event. The decoder reuses one of these per
// loop, so replay allocates nothing per event.
type event struct {
	kind byte
	args [3]int64
	name string // only evNewShadow / evNewShadowGrow
}

// decoder pulls events off a trace stream one at a time. It validates
// framing (known kinds, complete varints, bounded names) but not
// semantics — apply does the task/region bookkeeping.
type decoder struct {
	br         *bufio.Reader
	sequential bool
}

// newDecoder consumes the magic and executor byte and returns a decoder
// positioned at the first event. Errors are the same sentinel classes
// Replay has always returned for bad headers.
func newDecoder(rd io.Reader) (*decoder, error) {
	br, ok := rd.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(rd, 64<<10)
	}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("trace: %w: %d-byte input", ErrBadMagic, len(head))
		}
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("trace: %w: header %q", ErrBadMagic, head)
	}
	seqByte, err := br.ReadByte()
	if err != nil {
		return nil, readErr("missing executor byte", err)
	}
	return &decoder{br: br, sequential: seqByte == 1}, nil
}

// HeaderLen is the byte length of a trace header: the magic followed by
// the executor byte.
const HeaderLen = len(magic) + 1

// PeekHeader validates the trace header at the front of br without
// consuming it and reports the executor byte: true means the trace was
// recorded depth-first, so sequential-only detectors may consume it.
// Errors are the same sentinel classes newDecoder returns, so callers
// (the spd3d job store spilling an unsplit trace to disk) classify bad
// uploads identically whether or not the splitter is in the path.
func PeekHeader(br *bufio.Reader) (sequential bool, err error) {
	head, err := br.Peek(HeaderLen)
	if err != nil {
		if len(head) < len(magic) {
			return false, fmt.Errorf("trace: %w: %d-byte input", ErrBadMagic, len(head))
		}
		if string(head[:len(magic)]) != magic {
			return false, fmt.Errorf("trace: %w: header %q", ErrBadMagic, head[:len(magic)])
		}
		return false, readErr("missing executor byte", err)
	}
	if string(head[:len(magic)]) != magic {
		return false, fmt.Errorf("trace: %w: header %q", ErrBadMagic, head[:len(magic)])
	}
	return head[len(magic)] == 1, nil
}

// readErr classifies a mid-stream read failure. Errors that already
// carry a trace sentinel — ErrLimit from a LimitedReader, ErrCanceled
// from a CancelReader wrapped around the input — pass through so the
// caller's errors.Is mapping sees the real cause; anything else (EOF,
// connection reset) means the trace stopped mid-event: ErrTruncated.
func readErr(context string, err error) error {
	if errors.Is(err, ErrLimit) || errors.Is(err, ErrCanceled) {
		return fmt.Errorf("trace: %s: %w", context, err)
	}
	return fmt.Errorf("trace: %w: %s: %v", ErrTruncated, context, err)
}

// next decodes one event into ev. It returns io.EOF at a clean end of
// stream (between events) and a sentinel-wrapped error otherwise.
func (d *decoder) next(ev *event) error {
	kind, err := d.br.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return readErr("event kind", err)
	}
	n := eventArgs[kind]
	if n == 0 {
		return fmt.Errorf("trace: %w: unknown event kind %d", ErrMalformed, kind)
	}
	ev.kind = kind
	ev.name = ""
	for i := int8(0); i < n; i++ {
		v, err := binary.ReadVarint(d.br)
		if err != nil {
			return readErr(fmt.Sprintf("event %d", kind), err)
		}
		ev.args[i] = v
	}
	if kind == evNewShadow || kind == evNewShadowGrow {
		name, err := d.readName()
		if err != nil {
			return err
		}
		ev.name = name
	}
	return nil
}

// readName reads a length-prefixed region name off the stream.
func (d *decoder) readName() (string, error) {
	n, err := binary.ReadUvarint(d.br)
	if err != nil {
		return "", readErr("region name length", err)
	}
	if n > maxNameLen {
		return "", fmt.Errorf("trace: %w: region name of %d bytes", ErrMalformed, n)
	}
	name := make([]byte, n)
	if _, err := io.ReadFull(d.br, name); err != nil {
		return "", readErr("region name", err)
	}
	return string(name), nil
}

type replayState struct {
	det      detect.Detector
	lim      Limits
	tasks    map[int64]*detect.Task
	finishes map[int64]*detect.Finish
	locks    map[int64]*detect.Lock
	shadows  []detect.Shadow
	sizes    []int64
	total    int64
}

func newReplayState(det detect.Detector, lim Limits) *replayState {
	return &replayState{
		det:      det,
		lim:      lim,
		tasks:    map[int64]*detect.Task{},
		finishes: map[int64]*detect.Finish{},
		locks:    map[int64]*detect.Lock{},
	}
}

// Fixed sanity limits independent of Limits.
const (
	maxElemBytes = 1 << 20
	maxNameLen   = 1 << 16
)

func (st *replayState) apply(ev *event) error {
	a := &ev.args
	switch ev.kind {
	case evMainTask:
		t := &detect.Task{ID: detect.TaskID(a[0])}
		f := &detect.Finish{ID: a[1], Owner: t}
		t.IEF = f
		st.tasks[a[0]] = t
		st.finishes[a[1]] = f
		st.det.MainTask(t, f)
	case evSpawn:
		parent, ok := st.tasks[a[0]]
		if !ok {
			return fmt.Errorf("trace: %w: spawn from unknown task %d", ErrMalformed, a[0])
		}
		ief, ok := st.finishes[a[2]]
		if !ok {
			return fmt.Errorf("trace: %w: spawn into unknown finish %d", ErrMalformed, a[2])
		}
		child := &detect.Task{ID: detect.TaskID(a[1]), Parent: parent, IEF: ief, Depth: parent.Depth + 1}
		st.tasks[a[1]] = child
		st.det.BeforeSpawn(parent, child)
	case evTaskEnd:
		t, ok := st.tasks[a[0]]
		if !ok {
			return fmt.Errorf("trace: %w: end of unknown task %d", ErrMalformed, a[0])
		}
		st.det.TaskEnd(t)
		// The event contract makes TaskEnd a task's final event, so the
		// table entry is dead weight from here on. Dropping it is what
		// bounds replay memory by the live task set instead of the total
		// task count — the property the streaming server relies on.
		delete(st.tasks, a[0])
	case evFinishStart:
		t, ok := st.tasks[a[0]]
		if !ok {
			return fmt.Errorf("trace: %w: finish in unknown task %d", ErrMalformed, a[0])
		}
		f := &detect.Finish{ID: a[1], Owner: t}
		st.finishes[a[1]] = f
		st.det.FinishStart(t, f)
	case evFinishEnd:
		t, f := st.tasks[a[0]], st.finishes[a[1]]
		if t == nil || f == nil {
			return fmt.Errorf("trace: %w: finish-end with unknown task %d or finish %d", ErrMalformed, a[0], a[1])
		}
		st.det.FinishEnd(t, f)
		// FinishEnd is a finish's final event (all spawns into it happen
		// before it, by the event contract); drop it like ended tasks.
		delete(st.finishes, a[1])
	case evAcquire, evRelease:
		t := st.tasks[a[0]]
		if t == nil {
			return fmt.Errorf("trace: %w: lock op in unknown task %d", ErrMalformed, a[0])
		}
		l := st.locks[a[1]]
		if l == nil {
			l = &detect.Lock{ID: a[1]}
			st.locks[a[1]] = l
		}
		if ev.kind == evAcquire {
			st.det.Acquire(t, l)
		} else {
			st.det.Release(t, l)
		}
	case evNewShadow:
		if a[1] < 0 || a[1] > st.lim.MaxRegionElems {
			return fmt.Errorf("trace: %w: region size %d out of range", ErrLimit, a[1])
		}
		if st.total += a[1]; st.total > st.lim.MaxTotalElems {
			return fmt.Errorf("trace: %w: total region size exceeds limit of %d elements", ErrLimit, st.lim.MaxTotalElems)
		}
		if a[2] < 0 || a[2] > maxElemBytes {
			return fmt.Errorf("trace: %w: element size %d out of range", ErrMalformed, a[2])
		}
		if int(a[0]) != len(st.shadows) {
			return fmt.Errorf("trace: %w: region %d out of order", ErrMalformed, a[0])
		}
		st.shadows = append(st.shadows, st.det.NewShadow(detect.Spec(ev.name, int(a[1]), int(a[2]))))
		st.sizes = append(st.sizes, a[1])
	case evNewShadowGrow:
		if a[1] < 0 || a[1] > maxElemBytes {
			return fmt.Errorf("trace: %w: element size %d out of range", ErrMalformed, a[1])
		}
		if int(a[0]) != len(st.shadows) {
			return fmt.Errorf("trace: %w: region %d out of order", ErrMalformed, a[0])
		}
		st.shadows = append(st.shadows, st.det.NewShadow(detect.GrowableSpec(ev.name, int(a[1]))))
		// Growable: no declared size. Indices are still bounded by
		// MaxRegionElems so a hostile trace cannot force huge pages.
		st.sizes = append(st.sizes, -1)
	case evRead, evWrite:
		if a[0] < 0 || int(a[0]) >= len(st.shadows) {
			return fmt.Errorf("trace: %w: access to unknown region %d", ErrMalformed, a[0])
		}
		bound := st.sizes[a[0]]
		if bound < 0 {
			bound = st.lim.MaxRegionElems
		}
		if a[2] < 0 || a[2] >= bound {
			return fmt.Errorf("trace: %w: access index %d outside region of %d elements", ErrMalformed, a[2], bound)
		}
		t := st.tasks[a[1]]
		if t == nil {
			return fmt.Errorf("trace: %w: access by unknown task %d", ErrMalformed, a[1])
		}
		if ev.kind == evRead {
			st.shadows[a[0]].Read(t, int(a[2]))
		} else {
			st.shadows[a[0]].Write(t, int(a[2]))
		}
	default:
		return fmt.Errorf("trace: %w: unknown event kind %d", ErrMalformed, ev.kind)
	}
	return nil
}

// appendEvent encodes one event (kind + varint args) onto dst — the
// write-side twin of decoder.next, used by the splitter and amplifier
// to re-emit events they have decoded.
func appendEvent(dst []byte, kind byte, args ...int64) []byte {
	dst = append(dst, kind)
	for _, a := range args {
		dst = binary.AppendVarint(dst, a)
	}
	return dst
}

// appendName encodes a length-prefixed region name onto dst.
func appendName(dst []byte, name string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(name)))
	return append(dst, name...)
}
