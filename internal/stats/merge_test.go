package stats

import "testing"

func TestSnapshotMerge(t *testing.T) {
	var a, b Snapshot
	a.Counters[CASClean] = 3
	a.Counters[SrvRequests] = 1
	a.CASRetryHist[0] = 2
	a.Reads, a.Writes = 10, 5
	a.Footprint = Footprint{ShadowBytes: 100, TreeBytes: 1}
	a.Regions = []RegionSnapshot{
		{Name: "hot", Elems: 8, Reads: 9, Writes: 1},
		{Name: "cold", Elems: 4, Reads: 1},
	}
	b.Counters[CASClean] = 4
	b.Counters[SrvCanceled] = 2
	b.CASRetryHist[0] = 1
	b.Reads, b.Writes = 1, 2
	b.Footprint = Footprint{ShadowBytes: 50, ClockBytes: 7}
	b.Regions = []RegionSnapshot{
		{Name: "cold", Elems: 16, Reads: 100, Writes: 100},
		{Name: "new", Elems: 2, Writes: 2},
	}

	a.Merge(b)

	if got := a.Get(CASClean); got != 7 {
		t.Errorf("CASClean = %d, want 7", got)
	}
	if a.Get(SrvRequests) != 1 || a.Get(SrvCanceled) != 2 {
		t.Errorf("srv counters = %d/%d, want 1/2", a.Get(SrvRequests), a.Get(SrvCanceled))
	}
	if a.CASRetryHist[0] != 3 {
		t.Errorf("hist bucket 0 = %d, want 3", a.CASRetryHist[0])
	}
	if a.Reads != 11 || a.Writes != 7 {
		t.Errorf("totals = %d/%d, want 11/7", a.Reads, a.Writes)
	}
	if ft := a.Footprint; ft.ShadowBytes != 150 || ft.TreeBytes != 1 || ft.ClockBytes != 7 {
		t.Errorf("footprint = %+v", ft)
	}
	if len(a.Regions) != 3 {
		t.Fatalf("regions = %d, want 3 (merged by name)", len(a.Regions))
	}
	// cold absorbed b's traffic (201 total) and is now the hottest.
	if a.Regions[0].Name != "cold" || a.Regions[0].Reads != 101 || a.Regions[0].Writes != 100 || a.Regions[0].Elems != 16 {
		t.Errorf("merged hottest region = %+v", a.Regions[0])
	}
	if a.Regions[1].Name != "hot" || a.Regions[2].Name != "new" {
		t.Errorf("region order = %q, %q; want hot, new", a.Regions[1].Name, a.Regions[2].Name)
	}
}

// TestSnapshotMergeSampleCounters: the per-segment snapshots a sharded
// replay merges must accumulate the sampling gate's tallies, or the
// governor (which observes the merged snapshot) and the /statsz gauges
// would under-report the effective rate.
func TestSnapshotMergeSampleCounters(t *testing.T) {
	var agg Snapshot
	segments := []struct{ checked, skipped int64 }{
		{100, 900}, {0, 0}, {50, 50}, {7, 0},
	}
	for _, seg := range segments {
		var s Snapshot
		s.Counters[SampleChecked] = seg.checked
		s.Counters[SampleSkipped] = seg.skipped
		agg.Merge(s)
	}
	if got := agg.Get(SampleChecked); got != 157 {
		t.Errorf("sample.checked = %d, want 157", got)
	}
	if got := agg.Get(SampleSkipped); got != 950 {
		t.Errorf("sample.skipped = %d, want 950", got)
	}
}

// TestSampleCounterNames pins the sampling gate's wire names; the
// spd3load summary and the governor gauges parse them out of /statsz.
func TestSampleCounterNames(t *testing.T) {
	if got := SampleChecked.String(); got != "sample.checked" {
		t.Errorf("SampleChecked = %q, want sample.checked", got)
	}
	if got := SampleSkipped.String(); got != "sample.skipped" {
		t.Errorf("SampleSkipped = %q, want sample.skipped", got)
	}
}

// TestSrvCounterNames pins the wire names of the daemon counter group so
// /statsz consumers can rely on them.
func TestSrvCounterNames(t *testing.T) {
	want := map[Counter]string{
		SrvRequests:  "srv.requests",
		SrvBytesRead: "srv.bytes_read",
		SrvAnalyses:  "srv.analyses",
		SrvRejected:  "srv.rejected",
		SrvCanceled:  "srv.canceled",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), name)
		}
	}
}
