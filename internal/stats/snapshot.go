package stats

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Footprint is a detector's analytic accounting of the bytes it
// allocated, mirroring the paper's Table 3 / Figure 6 memory comparison
// in a deterministic, GC-independent way. It lives here (and is aliased
// by package detect) so a Snapshot can carry the detector's memory next
// to its counters.
type Footprint struct {
	ShadowBytes int64 `json:"shadow_bytes"` // per-location shadow words (O(1) vs O(n) is visible here)
	TreeBytes   int64 `json:"tree_bytes"`   // DPST nodes (SPD3) or bag nodes (ESP-bags)
	ClockBytes  int64 `json:"clock_bytes"`  // vector clocks (FastTrack)
	SetBytes    int64 `json:"set_bytes"`    // locksets (Eraser)
}

// Total returns the sum of all accounted bytes.
func (f Footprint) Total() int64 {
	return f.ShadowBytes + f.TreeBytes + f.ClockBytes + f.SetBytes
}

// RegionSnapshot is one region's merged traffic.
type RegionSnapshot struct {
	Name   string `json:"name"`
	Elems  int    `json:"elems"`
	Reads  int64  `json:"reads"`
	Writes int64  `json:"writes"`
}

// Snapshot is the merged, immutable result of one Run: every counter,
// the histograms, per-region traffic sorted by total accesses
// descending, the access totals, and the detector's analytic footprint.
type Snapshot struct {
	// Counters holds the merged global counters, indexed by Counter.
	Counters [NumCounters]int64
	// CASRetryHist is the HistCASRetry distribution: bucket i counts
	// contended shadow-word actions that took about 2^i retries.
	CASRetryHist [HistBuckets]int64
	// Regions holds per-region traffic, hottest first.
	Regions []RegionSnapshot
	// Reads and Writes are the access totals across all regions.
	Reads, Writes int64
	// Footprint is the detector's analytic memory accounting at
	// snapshot time (filled in by the engine, not the recorder).
	Footprint Footprint
}

// Merge adds every scalar of o into s: counters, histograms, access
// totals, footprint components, and per-region traffic (regions are
// matched by name; unmatched ones are appended). The spd3d daemon uses
// it to fold per-request snapshots into one long-running aggregate, so
// it preserves the hottest-first region order Snapshot establishes.
func (s *Snapshot) Merge(o Snapshot) {
	for c := range s.Counters {
		s.Counters[c] += o.Counters[c]
	}
	for b := range s.CASRetryHist {
		s.CASRetryHist[b] += o.CASRetryHist[b]
	}
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.Footprint.ShadowBytes += o.Footprint.ShadowBytes
	s.Footprint.TreeBytes += o.Footprint.TreeBytes
	s.Footprint.ClockBytes += o.Footprint.ClockBytes
	s.Footprint.SetBytes += o.Footprint.SetBytes
	byName := make(map[string]int, len(s.Regions))
	for i, g := range s.Regions {
		byName[g.Name] = i
	}
	for _, g := range o.Regions {
		if i, ok := byName[g.Name]; ok {
			s.Regions[i].Reads += g.Reads
			s.Regions[i].Writes += g.Writes
			if g.Elems > s.Regions[i].Elems {
				s.Regions[i].Elems = g.Elems
			}
		} else {
			byName[g.Name] = len(s.Regions)
			s.Regions = append(s.Regions, g)
		}
	}
	sort.Slice(s.Regions, func(i, j int) bool {
		a, b := s.Regions[i], s.Regions[j]
		ta, tb := a.Reads+a.Writes, b.Reads+b.Writes
		if ta != tb {
			return ta > tb
		}
		return a.Name < b.Name
	})
}

// Get returns one merged counter value.
func (s Snapshot) Get(c Counter) int64 {
	if c >= NumCounters {
		return 0
	}
	return s.Counters[c]
}

// Map returns the snapshot's scalar values keyed by their stable wire
// names: every counter (by Counter.String), the access totals
// ("mem.reads", "mem.writes"), and the footprint components
// ("footprint.shadow", "footprint.tree", "footprint.clock",
// "footprint.set", "footprint.total"). Per-region detail and histograms
// are available on the struct itself.
func (s Snapshot) Map() map[string]int64 {
	m := make(map[string]int64, int(NumCounters)+7)
	for c := Counter(0); c < NumCounters; c++ {
		m[c.String()] = s.Counters[c]
	}
	m["mem.reads"] = s.Reads
	m["mem.writes"] = s.Writes
	m["footprint.shadow"] = s.Footprint.ShadowBytes
	m["footprint.tree"] = s.Footprint.TreeBytes
	m["footprint.clock"] = s.Footprint.ClockBytes
	m["footprint.set"] = s.Footprint.SetBytes
	m["footprint.total"] = s.Footprint.Total()
	return m
}

// String renders a stable single-line summary grouped by subsystem.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mem: %d reads, %d writes", s.Reads, s.Writes)
	fmt.Fprintf(&b, " | cas: %d clean, %d publish, %d retry",
		s.Get(CASClean), s.Get(CASPublish), s.Get(CASRetry))
	if v := s.Get(MutexOps); v != 0 {
		fmt.Fprintf(&b, " | mutex: %d ops", v)
	}
	fmt.Fprintf(&b, " | dmhp: %d fast, %d walk, %d memo-hit",
		s.Get(DMHPFast), s.Get(DMHPWalk), s.Get(DMHPMemoHit))
	if v := s.Get(StepCacheHit); v != 0 {
		fmt.Fprintf(&b, " | stepcache: %d hit", v)
	}
	if c, k := s.Get(SampleChecked), s.Get(SampleSkipped); c != 0 || k != 0 {
		fmt.Fprintf(&b, " | sample: %d checked, %d skipped", c, k)
	}
	if p := s.Get(ShadowPagesAllocated); p != 0 || s.Get(PageCacheHit) != 0 {
		fmt.Fprintf(&b, " | shadow: %d pages, %d cache-hit, %d cache-miss",
			p, s.Get(PageCacheHit), s.Get(PageCacheMiss))
	}
	fmt.Fprintf(&b, " | task: %d spawn, %d steal, %d inline",
		s.Get(TaskSpawn), s.Get(TaskSteal), s.Get(TaskInline))
	fmt.Fprintf(&b, " | race: %d reported, %d deduped, %d dropped",
		s.Get(RaceReported), s.Get(RaceDeduped), s.Get(RaceDropped))
	if v := s.Get(SrvRequests); v != 0 {
		fmt.Fprintf(&b, " | srv: %d requests, %d analyses, %d rejected, %d canceled",
			v, s.Get(SrvAnalyses), s.Get(SrvRejected), s.Get(SrvCanceled))
		if sb, segs := s.Get(SrvStreamedBytes), s.Get(TraceSegments); sb != 0 || segs != 0 {
			fmt.Fprintf(&b, ", %d B streamed, %d segments", sb, segs)
		}
	}
	if v := s.Get(JobSubmitted); v != 0 {
		fmt.Fprintf(&b, " | job: %d submitted, %d done, %d failed, %d canceled",
			v, s.Get(JobDone), s.Get(JobFailed), s.Get(JobCanceled))
	}
	if v := s.Get(StorePutBytes); v != 0 || s.Get(StoreDedupHits) != 0 {
		fmt.Fprintf(&b, " | store: %d B put, %d dedup-hits", v, s.Get(StoreDedupHits))
	}
	fmt.Fprintf(&b, " | footprint: %d B", s.Footprint.Total())
	return b.String()
}

// jsonSnapshot is the stable JSON shape of a Snapshot: an expvar-style
// counters map plus the structured extras.
type jsonSnapshot struct {
	Counters   map[string]int64   `json:"counters"`
	Histograms map[string][]int64 `json:"histograms"`
	Regions    []RegionSnapshot   `json:"regions"`
	Footprint  Footprint          `json:"footprint"`
}

// MarshalJSON renders the stable JSON form consumed by the cmd tools'
// -stats flags and the CI smoke test.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonSnapshot{
		Counters:   s.Map(),
		Histograms: map[string][]int64{HistCASRetry.String(): append([]int64(nil), s.CASRetryHist[:]...)},
		Regions:    s.Regions,
		Footprint:  s.Footprint,
	})
}

// UnmarshalJSON restores a snapshot from its JSON form; lossy for the
// derived Map-only keys, faithful for counters, histograms, regions,
// and footprint.
func (s *Snapshot) UnmarshalJSON(data []byte) error {
	var j jsonSnapshot
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*s = Snapshot{Regions: j.Regions, Footprint: j.Footprint}
	for c := Counter(0); c < NumCounters; c++ {
		s.Counters[c] = j.Counters[c.String()]
	}
	s.Reads = j.Counters["mem.reads"]
	s.Writes = j.Counters["mem.writes"]
	for b, v := range j.Histograms[HistCASRetry.String()] {
		if b < HistBuckets {
			s.CASRetryHist[b] = v
		}
	}
	return nil
}
