// Package stats is the runtime observability layer: a low-overhead,
// shard-per-core set of counters, histograms, and per-region access
// tallies threaded through the whole stack — the detector's shadow
// protocol (internal/core), the DMHP fast path (internal/dpst via
// internal/core), the task runtime's executors (internal/task), the
// instrumented containers (internal/mem), and the race sink
// (internal/detect).
//
// The paper's evaluation (§6) is entirely about measured behavior —
// slowdowns, memory per location, scalability — and the per-benchmark
// spread is explained by a handful of hot-path events: how often the
// versioned-CAS shadow protocol retries, how often a DMHP query can be
// answered from packed fingerprints versus the §5.2 pointer walk, how
// well the per-task relation memo hits, and how work moves between
// workers. This package makes those events visible without ad-hoc
// printf, cheaply enough to stay on by default.
//
// # Design
//
// A Recorder owns a power-of-two number of Shards (default: enough for
// GOMAXPROCS). Each shard is a padded block of atomic cells, so two
// workers bumping the same Counter on different shards never share a
// cache line. Writers pick a shard by any cheap stable small integer —
// the pool worker index or the task ID — and increment with a single
// uncontended atomic add. Nothing is aggregated on the hot path: a
// Snapshot merges all shards only when asked (the engine asks once, at
// the end of Run).
//
// Hot producers batch even the atomic away: the SPD3 detector counts in
// plain task-owned integers and flushes them into a shard once per task
// (see internal/core), so the steady-state cost of a counter is one
// non-atomic increment.
//
// A nil *Recorder, *Shard, or *Region is valid and makes every method a
// no-op; Options.NoStats hands nil recorders down the stack and the
// instrumentation vanishes behind a predictable branch.
package stats

import (
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter identifies one global event counter. Counters are merged
// across shards by Snapshot.
type Counter uint8

// Counters. The groups mirror the layers that produce them.
const (
	// CASClean counts memory actions under the versioned-CAS shadow
	// protocol that completed without needing to update the word — the
	// read-shared common case that makes SPD3 scale (§5.4).
	CASClean Counter = iota
	// CASPublish counts successful shadow-word updates (CAS won).
	CASPublish
	// CASRetry counts restarts of a memory action after a lost CAS.
	CASRetry
	// MutexOps counts shadow-word accesses under the per-word mutex
	// protocol (the §5.4 ablation detector).
	MutexOps
	// DMHPFast counts DMHP/LCA queries answered from packed
	// fingerprints without touching the tree.
	DMHPFast
	// DMHPWalk counts DMHP/LCA queries that fell back to (or were
	// pinned to, under the walk-only ablation) the §5.2 pointer walk.
	DMHPWalk
	// DMHPMemoHit counts DMHP queries answered from the per-task
	// relation memo without recomputing.
	DMHPMemoHit
	// StepCacheHit counts accesses short-circuited by the per-step
	// redundant-check cache (the opt-in §5.5-style optimization).
	StepCacheHit
	// TaskSpawn counts spawned tasks (every Async).
	TaskSpawn
	// TaskSteal counts tasks obtained by stealing from another pool
	// worker's deque.
	TaskSteal
	// TaskInline counts tasks executed by the worker that spawned them
	// (own-deque pops on the pool executor, inline runs on the
	// sequential executor).
	TaskInline
	// RaceReported counts distinct races delivered by the sink.
	RaceReported
	// RaceDeduped counts race reports suppressed as duplicates of an
	// already-reported (kind, region, element).
	RaceDeduped
	// RaceDropped counts distinct races dropped because the sink's
	// buffer limit was hit.
	RaceDropped
	// ShadowPagesAllocated counts shadow pages materialized lazily on
	// first access by the paged substrate (internal/shadow); together
	// with footprint.shadow it shows how sparse a workload's monitored
	// address space really is.
	ShadowPagesAllocated
	// PageCacheHit counts shadow-cell lookups served from the task's
	// page cache (detect.Task.PC) without touching the page table.
	PageCacheHit
	// PageCacheMiss counts shadow-cell lookups that walked the page
	// table (and, on a region's first touch of a page, allocated it).
	PageCacheMiss
	// SrvRequests counts HTTP requests accepted by the spd3d analysis
	// daemon (all endpoints).
	SrvRequests
	// SrvBytesRead counts trace bytes read off the wire by the daemon's
	// analyze endpoint.
	SrvBytesRead
	// SrvAnalyses counts replays the daemon ran to completion (each
	// detector of a differential request counts once).
	SrvAnalyses
	// SrvRejected counts analyze requests turned away with 429 because
	// the in-flight semaphore was saturated, or 503 while draining.
	SrvRejected
	// SrvCanceled counts replays aborted by a request deadline or a
	// client disconnect (the trace.ErrCanceled path).
	SrvCanceled
	// SrvStreamedBytes counts trace bytes the daemon consumed
	// incrementally — pulled through the body limiter straight into the
	// streaming decode, never buffered in full. SrvBytesRead counts all
	// body bytes; the gap between the two is whatever a buffered
	// fallback (shard=off differential mode, oversize unsplit) had to
	// materialize.
	SrvStreamedBytes
	// TraceSegments counts finish-scope segments cut by the trace
	// splitter on the daemon's sharded analyze path.
	TraceSegments
	// SrvShardBusy is a gauge of shard-pool workers currently replaying
	// a segment: incremented when a worker picks a segment up,
	// decremented when it finishes, so a snapshot reads the live
	// occupancy (and an idle daemon reads zero).
	SrvShardBusy
	// SrvUnsplit counts analyses that abandoned sharding because one
	// finish scope outgrew the segment cap and fell back to a single
	// streamed replay of the remainder.
	SrvUnsplit

	// JobSubmitted counts jobs accepted by the async /v2/jobs API
	// (including the v1 shim's ephemeral jobs).
	JobSubmitted
	// JobDone counts jobs that reached the done state.
	JobDone
	// JobFailed counts jobs that reached the failed state.
	JobFailed
	// JobCanceled counts jobs that reached the canceled state (DELETE,
	// request deadline on the v1 shim, or client disconnect).
	JobCanceled
	// JobResumed counts jobs re-enqueued from the persistent store at
	// daemon startup (they were queued or running when it last stopped).
	JobResumed
	// JobQueued is a gauge of jobs waiting to start: incremented on
	// submit, decremented when the executor picks the job up.
	JobQueued
	// JobRunning is a gauge of jobs currently executing.
	JobRunning
	// JobSegmentReplays counts (segment, detector) replay units the job
	// executor completed.
	JobSegmentReplays
	// StorePutBytes counts bytes physically written to the trace
	// store's content-addressed blob area (dedup hits write nothing).
	StorePutBytes
	// StoreDedupHits counts segment spills that found their content
	// hash already stored — an amplified trace's repeated bodies, or a
	// load test re-submitting the same trace, collapse to one blob.
	StoreDedupHits
	// StoreSweptJobs counts job manifests removed by TTL garbage
	// collection.
	StoreSweptJobs
	// StoreSweptBlobs counts unreferenced blobs removed by garbage
	// collection.
	StoreSweptBlobs
	// QuotaDenied counts submissions refused with 429 by a per-tenant
	// quota (queue depth, stored bytes, or the submission token bucket).
	QuotaDenied

	// ChecksElidedStatic counts container access sites whose dynamic
	// race check was removed at compile time by the §5.5 static
	// eliminator (cmd/spd3inst's checkelim post-pass). It is a property
	// of the compiled program, not of one run: rewritten packages
	// register their site count once via AddStaticElided (from a
	// generated init), and Snapshot folds the process-wide total into
	// every snapshot so reports show how much checking the optimizer
	// proved away.
	ChecksElidedStatic

	// SampleChecked counts shadow accesses admitted by the dynamic
	// check-sampling gate (internal/sample). Zero when sampling is off
	// — the gate itself is compiled out of the hot path behind a nil
	// check.
	SampleChecked
	// SampleSkipped counts shadow accesses elided by the sampling gate.
	// checked/(checked+skipped) is the effective sampling rate a run
	// actually experienced, which the governor holds to its budget.
	SampleSkipped

	// NumCounters is the number of Counter values; not itself a
	// counter.
	NumCounters
)

// counterNames are the stable wire names used by Map and the JSON form.
var counterNames = [NumCounters]string{
	CASClean:             "cas.clean",
	CASPublish:           "cas.publish",
	CASRetry:             "cas.retry",
	MutexOps:             "mutex.ops",
	DMHPFast:             "dmhp.fast",
	DMHPWalk:             "dmhp.walk",
	DMHPMemoHit:          "dmhp.memo_hit",
	StepCacheHit:         "stepcache.hit",
	TaskSpawn:            "task.spawn",
	TaskSteal:            "task.steal",
	TaskInline:           "task.inline",
	RaceReported:         "race.reported",
	RaceDeduped:          "race.deduped",
	RaceDropped:          "race.dropped",
	ShadowPagesAllocated: "shadow.pages_allocated",
	PageCacheHit:         "shadow.page_cache_hit",
	PageCacheMiss:        "shadow.page_cache_miss",
	SrvRequests:          "srv.requests",
	SrvBytesRead:         "srv.bytes_read",
	SrvAnalyses:          "srv.analyses",
	SrvRejected:          "srv.rejected",
	SrvCanceled:          "srv.canceled",
	SrvStreamedBytes:     "srv.streamed_bytes",
	TraceSegments:        "trace.segments",
	SrvShardBusy:         "srv.shard_workers_busy",
	SrvUnsplit:           "srv.unsplit",
	JobSubmitted:         "job.submitted",
	JobDone:              "job.done",
	JobFailed:            "job.failed",
	JobCanceled:          "job.canceled",
	JobResumed:           "job.resumed",
	JobQueued:            "job.queued",
	JobRunning:           "job.running",
	JobSegmentReplays:    "job.segment_replays",
	StorePutBytes:        "store.put_bytes",
	StoreDedupHits:       "store.dedup_hits",
	StoreSweptJobs:       "store.swept_jobs",
	StoreSweptBlobs:      "store.swept_blobs",
	QuotaDenied:          "quota.denied",
	ChecksElidedStatic:   "mem.checks_elided_static",
	SampleChecked:        "sample.checked",
	SampleSkipped:        "sample.skipped",
}

// staticElided is the process-wide tally of statically elided check
// sites; see ChecksElidedStatic. It lives outside any Recorder because
// the sites are removed before any Engine exists, and it survives
// Recorder.Reset for the same reason.
var staticElided atomic.Int64

// AddStaticElided records n container access sites whose checks were
// removed at compile time. Generated code (cmd/spd3inst's stamped
// zz_spd3opt.go) calls this from an init via spd3.RegisterStaticElided.
func AddStaticElided(n int64) { staticElided.Add(n) }

// StaticElided returns the process-wide statically-elided site count.
func StaticElided() int64 { return staticElided.Load() }

// ResetStaticElided zeroes the process-wide statically-elided tally and
// returns the previous value. It exists for tests that run back-to-back
// engines in one process: the tally is process-global by design (the
// sites are gone from the compiled program, not from one run), so
// without a reset a second engine's snapshots would inherit the first's
// mem.checks_elided_static.
func ResetStaticElided() int64 { return staticElided.Swap(0) }

// String returns the counter's stable wire name.
func (c Counter) String() string {
	if c < NumCounters {
		return counterNames[c]
	}
	return "counter.unknown"
}

// HistID identifies one histogram.
type HistID uint8

// Histograms.
const (
	// HistCASRetry is the distribution of retries per contended shadow
	//-word memory action (actions that completed without a retry are
	// counted by CASClean/CASPublish, not observed here).
	HistCASRetry HistID = iota

	// NumHists is the number of HistID values; not itself a histogram.
	NumHists
)

// histNames are the stable wire names of the histograms.
var histNames = [NumHists]string{
	HistCASRetry: "cas.retry",
}

// String returns the histogram's stable wire name.
func (h HistID) String() string {
	if h < NumHists {
		return histNames[h]
	}
	return "hist.unknown"
}

// HistBuckets is the number of power-of-two buckets per histogram:
// bucket i counts observations v with 2^i <= v < 2^(i+1) (bucket 0
// holds v == 1; the last bucket absorbs everything larger).
const HistBuckets = 8

// HistBucket returns the bucket index for an observed value; values
// below 1 land in bucket 0.
func HistBucket(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v)) - 1
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// cacheLine is the assumed cache-line size for padding.
const cacheLine = 64

// Shard is one padded block of atomic cells. Writers that share a shard
// remain correct (the cells are atomic) but may contend; the point of
// sharding is that writers with distinct shard keys never do.
type Shard struct {
	counters [NumCounters]atomic.Int64
	hists    [NumHists][HistBuckets]atomic.Int64
	_        [cacheLine]byte // keep the next shard's hot head off our tail line
}

// Inc adds 1 to counter c. Safe on a nil shard (no-op).
func (s *Shard) Inc(c Counter) {
	if s == nil {
		return
	}
	s.counters[c].Add(1)
}

// Add adds n to counter c. Safe on a nil shard; n == 0 is free.
func (s *Shard) Add(c Counter, n int64) {
	if s == nil || n == 0 {
		return
	}
	s.counters[c].Add(n)
}

// Observe records one value into histogram h. Safe on a nil shard.
func (s *Shard) Observe(h HistID, v int64) {
	if s == nil {
		return
	}
	s.hists[h][HistBucket(v)].Add(1)
}

// AddBucket adds n pre-bucketed observations to histogram h; used by
// producers that batch in task-local space first. Safe on a nil shard.
func (s *Shard) AddBucket(h HistID, bucket int, n int64) {
	if s == nil || n == 0 {
		return
	}
	s.hists[h][bucket].Add(n)
}

// Region tallies one instrumented memory region's traffic. Cells are
// sharded like counters; Inc picks one by the caller's shard key.
type Region struct {
	// Name is the label passed to the instrumented container.
	Name string
	// Elems is the region's element count.
	Elems int

	mask  uint32
	cells []regionCell
}

// regionCell is a read/write pair padded to a cache line.
type regionCell struct {
	reads, writes atomic.Int64
	_             [cacheLine - 16]byte
}

// Inc records one access from shard key i. Safe on a nil region.
func (g *Region) Inc(i int, write bool) {
	if g == nil {
		return
	}
	c := &g.cells[uint32(i)&g.mask]
	if write {
		c.writes.Add(1)
	} else {
		c.reads.Add(1)
	}
}

// Add records a batch of accesses from shard key i. Safe on a nil
// region; used by producers that accumulate in task-local space first.
func (g *Region) Add(i int, reads, writes int64) {
	if g == nil {
		return
	}
	c := &g.cells[uint32(i)&g.mask]
	if reads != 0 {
		c.reads.Add(reads)
	}
	if writes != 0 {
		c.writes.Add(writes)
	}
}

// Counts returns the region's merged read and write totals.
func (g *Region) Counts() (reads, writes int64) {
	if g == nil {
		return 0, 0
	}
	for i := range g.cells {
		reads += g.cells[i].reads.Load()
		writes += g.cells[i].writes.Load()
	}
	return reads, writes
}

// Recorder owns the shards and registered regions of one engine (or one
// measurement). The zero value is not usable; call New. A nil *Recorder
// is a valid no-op sink for every method.
type Recorder struct {
	shards []Shard
	mask   uint32

	mu      sync.Mutex
	regions []*Region
}

// New returns a recorder with the given shard count rounded up to a
// power of two; shards <= 0 sizes it for the current GOMAXPROCS.
func New(shards int) *Recorder {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	return &Recorder{shards: make([]Shard, n), mask: uint32(n - 1)}
}

// Shards returns the shard count (a power of two).
func (r *Recorder) Shards() int {
	if r == nil {
		return 0
	}
	return len(r.shards)
}

// Shard returns the shard for key i (any cheap stable small integer: a
// worker index, a task ID). Returns nil on a nil recorder.
func (r *Recorder) Shard(i int) *Shard {
	if r == nil {
		return nil
	}
	return &r.shards[uint32(i)&r.mask]
}

// Region registers a new instrumented region with the recorder and
// returns its tally. Returns nil (a valid no-op region) on a nil
// recorder.
func (r *Recorder) Region(name string, elems int) *Region {
	if r == nil {
		return nil
	}
	g := &Region{Name: name, Elems: elems, mask: r.mask, cells: make([]regionCell, len(r.shards))}
	r.mu.Lock()
	r.regions = append(r.regions, g)
	r.mu.Unlock()
	return g
}

// Reset zeroes every counter, histogram, and region tally while keeping
// registered regions. It must only be called while no writer is active
// (the engine calls it at the start of each Run); concurrent increments
// may be lost, not corrupted.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for i := range r.shards {
		s := &r.shards[i]
		for c := range s.counters {
			s.counters[c].Store(0)
		}
		for h := range s.hists {
			for b := range s.hists[h] {
				s.hists[h][b].Store(0)
			}
		}
	}
	r.mu.Lock()
	regions := append([]*Region(nil), r.regions...)
	r.mu.Unlock()
	for _, g := range regions {
		for i := range g.cells {
			g.cells[i].reads.Store(0)
			g.cells[i].writes.Store(0)
		}
	}
}

// Snapshot merges every shard and region into one immutable snapshot.
// This is the only aggregation point; it is intended to run once per
// Run, not on the hot path. A nil recorder yields the zero snapshot.
func (r *Recorder) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for i := range r.shards {
		sh := &r.shards[i]
		for c := range sh.counters {
			s.Counters[c] += sh.counters[c].Load()
		}
		for b := range sh.hists[HistCASRetry] {
			s.CASRetryHist[b] += sh.hists[HistCASRetry][b].Load()
		}
	}
	s.Counters[ChecksElidedStatic] += staticElided.Load()
	r.mu.Lock()
	regions := append([]*Region(nil), r.regions...)
	r.mu.Unlock()
	s.Regions = make([]RegionSnapshot, 0, len(regions))
	for _, g := range regions {
		reads, writes := g.Counts()
		s.Regions = append(s.Regions, RegionSnapshot{Name: g.Name, Elems: g.Elems, Reads: reads, Writes: writes})
		s.Reads += reads
		s.Writes += writes
	}
	sort.Slice(s.Regions, func(i, j int) bool {
		a, b := s.Regions[i], s.Regions[j]
		ta, tb := a.Reads+a.Writes, b.Reads+b.Writes
		if ta != tb {
			return ta > tb
		}
		return a.Name < b.Name
	})
	return s
}
