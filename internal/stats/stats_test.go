package stats

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestCountersMergeAcrossShards(t *testing.T) {
	r := New(4)
	if r.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", r.Shards())
	}
	for i := 0; i < 16; i++ {
		r.Shard(i).Inc(TaskSpawn) // keys wrap around the mask
	}
	r.Shard(1).Add(CASRetry, 5)
	r.Shard(2).Add(CASRetry, 7)
	s := r.Snapshot()
	if got := s.Get(TaskSpawn); got != 16 {
		t.Errorf("TaskSpawn = %d, want 16", got)
	}
	if got := s.Get(CASRetry); got != 12 {
		t.Errorf("CASRetry = %d, want 12", got)
	}
}

func TestShardCountRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}} {
		if got := New(tc.in).Shards(); got != tc.want {
			t.Errorf("New(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
	if New(0).Shards() < 1 {
		t.Error("default shard count not positive")
	}
}

func TestConcurrentIncrements(t *testing.T) {
	r := New(8)
	const goroutines, each = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sh := r.Shard(g)
			for i := 0; i < each; i++ {
				sh.Inc(DMHPFast)
			}
		}(g)
	}
	wg.Wait()
	if got := r.Snapshot().Get(DMHPFast); got != goroutines*each {
		t.Fatalf("DMHPFast = %d, want %d", got, goroutines*each)
	}
}

func TestHistogramBuckets(t *testing.T) {
	for _, tc := range []struct {
		v      int64
		bucket int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {1 << 20, HistBuckets - 1}} {
		if got := HistBucket(tc.v); got != tc.bucket {
			t.Errorf("HistBucket(%d) = %d, want %d", tc.v, got, tc.bucket)
		}
	}
	r := New(1)
	r.Shard(0).Observe(HistCASRetry, 1)
	r.Shard(0).Observe(HistCASRetry, 3)
	r.Shard(0).AddBucket(HistCASRetry, 1, 2)
	s := r.Snapshot()
	if s.CASRetryHist[0] != 1 || s.CASRetryHist[1] != 3 {
		t.Fatalf("hist = %v", s.CASRetryHist)
	}
}

func TestRegionsSortedByTraffic(t *testing.T) {
	r := New(2)
	cold := r.Region("cold", 10)
	hot := r.Region("hot", 10)
	for i := 0; i < 5; i++ {
		hot.Inc(i, i%2 == 0)
	}
	cold.Inc(0, false)
	s := r.Snapshot()
	if len(s.Regions) != 2 || s.Regions[0].Name != "hot" {
		t.Fatalf("regions = %+v", s.Regions)
	}
	if s.Regions[0].Reads+s.Regions[0].Writes != 5 {
		t.Fatalf("hot traffic = %+v", s.Regions[0])
	}
	if s.Reads+s.Writes != 6 {
		t.Fatalf("totals = %d reads %d writes", s.Reads, s.Writes)
	}
}

func TestResetKeepsRegions(t *testing.T) {
	r := New(2)
	g := r.Region("g", 4)
	g.Inc(0, true)
	r.Shard(0).Inc(TaskSteal)
	r.Shard(0).Observe(HistCASRetry, 2)
	r.Reset()
	s := r.Snapshot()
	if s.Get(TaskSteal) != 0 || s.Writes != 0 || s.CASRetryHist[1] != 0 {
		t.Fatalf("reset left residue: %s", s.String())
	}
	if len(s.Regions) != 1 || s.Regions[0].Name != "g" {
		t.Fatalf("reset dropped regions: %+v", s.Regions)
	}
	g.Inc(1, false) // region handle stays live after reset
	if got := r.Snapshot().Reads; got != 1 {
		t.Fatalf("post-reset reads = %d, want 1", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	r.Reset()
	r.Shard(3).Inc(CASClean)
	r.Shard(3).Add(CASClean, 9)
	r.Shard(3).Observe(HistCASRetry, 2)
	r.Region("x", 1).Inc(0, true)
	if r.Shards() != 0 {
		t.Error("nil recorder has shards")
	}
	s := r.Snapshot()
	if s.Get(CASClean) != 0 || len(s.Regions) != 0 {
		t.Fatalf("nil snapshot not zero: %s", s.String())
	}
}

func TestSnapshotForms(t *testing.T) {
	r := New(1)
	g := r.Region("a", 8)
	g.Inc(0, false)
	g.Inc(0, true)
	sh := r.Shard(0)
	sh.Add(CASPublish, 3)
	sh.Add(DMHPFast, 10)
	sh.Inc(RaceReported)
	s := r.Snapshot()
	s.Footprint = Footprint{ShadowBytes: 100, TreeBytes: 28}

	m := s.Map()
	if m["cas.publish"] != 3 || m["dmhp.fast"] != 10 || m["mem.reads"] != 1 || m["footprint.total"] != 128 {
		t.Fatalf("map = %v", m)
	}
	str := s.String()
	for _, want := range []string{"1 reads", "3 publish", "10 fast", "1 reported", "128 B"} {
		if !containsStr(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}

	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Get(CASPublish) != 3 || back.Reads != 1 || back.Footprint.Total() != 128 ||
		len(back.Regions) != 1 || back.Regions[0].Name != "a" {
		t.Fatalf("round trip lost data: %s", back.String())
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
