package fasttrack

import (
	"testing"

	"spd3/internal/core"
	"spd3/internal/detect"
	"spd3/internal/task"
)

func run(t *testing.T, exec task.ExecKind, workers int,
	body func(c *task.Ctx, d *Detector, sh detect.Shadow)) []detect.Race {
	t.Helper()
	sink := detect.NewSink(false, 0)
	d := New(sink)
	rt, err := task.New(task.Config{Executor: exec, Workers: workers, Detector: d})
	if err != nil {
		t.Fatal(err)
	}
	sh := d.NewShadow(detect.Spec("x", 8, 8))
	if err := rt.Run(func(c *task.Ctx) { body(c, d, sh) }); err != nil {
		t.Fatal(err)
	}
	return sink.Races()
}

func TestForkOrdersParentPrefix(t *testing.T) {
	races := run(t, task.Sequential, 1, func(c *task.Ctx, d *Detector, sh detect.Shadow) {
		sh.Write(c.Task(), 0) // before spawn: ordered with the child
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) {
				sh.Read(c.Task(), 0)
				sh.Write(c.Task(), 0)
			})
		})
		sh.Read(c.Task(), 0) // after join: ordered
		sh.Write(c.Task(), 0)
	})
	if len(races) != 0 {
		t.Fatalf("races = %v, want none", races)
	}
}

func TestWriteWriteRace(t *testing.T) {
	races := run(t, task.Sequential, 1, func(c *task.Ctx, d *Detector, sh detect.Shadow) {
		c.FinishAsync(2, func(c *task.Ctx, i int) { sh.Write(c.Task(), 0) })
	})
	if len(races) == 0 || races[0].Kind != detect.WriteWrite {
		t.Fatalf("races = %v, want write-write", races)
	}
}

func TestReadSharedThenOrderedWriteIsQuiet(t *testing.T) {
	races := run(t, task.Sequential, 1, func(c *task.Ctx, d *Detector, sh detect.Shadow) {
		sh.Write(c.Task(), 0)
		c.FinishAsync(6, func(c *task.Ctx, i int) { sh.Read(c.Task(), 0) })
		sh.Write(c.Task(), 0) // join orders it after all readers
	})
	if len(races) != 0 {
		t.Fatalf("races = %v, want none", races)
	}
}

func TestReadSharedThenParallelWriteRace(t *testing.T) {
	races := run(t, task.Sequential, 1, func(c *task.Ctx, d *Detector, sh detect.Shadow) {
		c.Finish(func(c *task.Ctx) {
			for i := 0; i < 6; i++ {
				c.Async(func(c *task.Ctx) { sh.Read(c.Task(), 0) })
			}
			c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
		})
	})
	if len(races) == 0 || races[0].Kind != detect.ReadWrite {
		t.Fatalf("races = %v, want read-write", races)
	}
}

func TestWriteReadRace(t *testing.T) {
	races := run(t, task.Sequential, 1, func(c *task.Ctx, d *Detector, sh detect.Shadow) {
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 2) })
			sh.Read(c.Task(), 2)
		})
	})
	if len(races) == 0 || races[0].Kind != detect.WriteRead {
		t.Fatalf("races = %v, want write-read", races)
	}
}

func TestLockOrdersCriticalSections(t *testing.T) {
	// Two tasks write under the same lock: the release/acquire edge
	// orders them, so no race — this exercises the lock clocks that
	// SPD3 does not need.
	sink := detect.NewSink(false, 0)
	d := New(sink)
	rt, err := task.New(task.Config{Executor: task.Sequential, Detector: d})
	if err != nil {
		t.Fatal(err)
	}
	sh := d.NewShadow(detect.Spec("x", 1, 8))
	l := rt.NewLock()
	err = rt.Run(func(c *task.Ctx) {
		c.FinishAsync(4, func(c *task.Ctx, i int) {
			c.Acquire(l)
			sh.Read(c.Task(), 0)
			sh.Write(c.Task(), 0)
			c.Release(l)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if races := sink.Races(); len(races) != 0 {
		t.Fatalf("locked accesses raced: %v", races)
	}
}

func TestUnlockedConflictStillRaces(t *testing.T) {
	sink := detect.NewSink(false, 0)
	d := New(sink)
	rt, err := task.New(task.Config{Executor: task.Sequential, Detector: d})
	if err != nil {
		t.Fatal(err)
	}
	sh := d.NewShadow(detect.Spec("x", 1, 8))
	l := rt.NewLock()
	err = rt.Run(func(c *task.Ctx) {
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) {
				c.Acquire(l)
				sh.Write(c.Task(), 0)
				c.Release(l)
			})
			c.Async(func(c *task.Ctx) {
				sh.Write(c.Task(), 0) // no lock held
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if races := sink.Races(); len(races) == 0 {
		t.Fatal("half-locked conflict not reported")
	}
}

func TestParallelExecutorAgrees(t *testing.T) {
	for _, workers := range []int{1, 4} {
		races := run(t, task.Pool, workers, func(c *task.Ctx, d *Detector, sh detect.Shadow) {
			// Race-free: disjoint indices then shared reads.
			c.FinishAsync(8, func(c *task.Ctx, i int) { sh.Write(c.Task(), i) })
			c.FinishAsync(8, func(c *task.Ctx, i int) {
				for j := 0; j < 8; j++ {
					sh.Read(c.Task(), j)
				}
			})
		})
		if len(races) != 0 {
			t.Errorf("%d workers: false positives %v", workers, races)
		}
		races = run(t, task.Pool, workers, func(c *task.Ctx, d *Detector, sh detect.Shadow) {
			c.FinishAsync(8, func(c *task.Ctx, i int) { sh.Write(c.Task(), 0) })
		})
		if len(races) == 0 {
			t.Errorf("%d workers: missed write-write race", workers)
		}
	}
}

// barrierPhased is the §6.3 sharing pattern of the original JGF codes:
// persistent tasks alternate between writing their own slot and reading
// everyone's slots, separated only by barriers.
func barrierPhased(rt *task.Runtime, sh detect.Shadow, parts, phases int) error {
	bar := rt.NewBarrier(parts)
	return rt.Run(func(c *task.Ctx) {
		c.FinishAsync(parts, func(c *task.Ctx, id int) {
			for p := 0; p < phases; p++ {
				sh.Write(c.Task(), id)
				bar.Await(c)
				for other := 0; other < parts; other++ {
					sh.Read(c.Task(), other)
				}
				bar.Await(c)
			}
		})
	})
}

// TestBarrierEventsOrderPhases reproduces the §6.3 mechanism: with the
// RoadRunner-style barrier events, FastTrack accepts barrier-phased
// sharing as race-free.
func TestBarrierEventsOrderPhases(t *testing.T) {
	sink := detect.NewSink(false, 0)
	d := New(sink)
	rt, err := task.New(task.Config{Executor: task.Goroutines, Detector: d})
	if err != nil {
		t.Fatal(err)
	}
	sh := d.NewShadow(detect.Spec("slots", 4, 8))
	if err := barrierPhased(rt, sh, 4, 5); err != nil {
		t.Fatal(err)
	}
	if races := sink.Races(); len(races) != 0 {
		t.Fatalf("barrier-phased sharing reported under FastTrack+barriers: %v", races)
	}
}

// TestSPD3SeesThroughNoBarriers is the counterpart: SPD3's async/finish
// model derives no ordering from barriers, so the same program is
// reported — which is why the paper rewrote the JGF barrier loops into
// finish form before running SPD3 (§6.3).
func TestSPD3SeesThroughNoBarriers(t *testing.T) {
	sink := detect.NewSink(false, 0)
	d := core.New(sink, core.SyncCAS)
	rt, err := task.New(task.Config{Executor: task.Goroutines, Detector: d})
	if err != nil {
		t.Fatal(err)
	}
	sh := d.NewShadow(detect.Spec("slots", 4, 8))
	if err := barrierPhased(rt, sh, 4, 5); err != nil {
		t.Fatal(err)
	}
	if sink.Empty() {
		t.Fatal("SPD3 credited barrier ordering it cannot model")
	}
}

// TestClockBytesGrowWithTasks pins down the O(n) behaviour the paper
// contrasts with SPD3: read-shared locations inflate to vector clocks
// whose width tracks the number of tasks.
func TestClockBytesGrowWithTasks(t *testing.T) {
	grow := func(tasks int) int64 {
		sink := detect.NewSink(false, 0)
		d := New(sink)
		rt, err := task.New(task.Config{Executor: task.Sequential, Detector: d})
		if err != nil {
			t.Fatal(err)
		}
		sh := d.NewShadow(detect.Spec("x", 1, 8))
		if err := rt.Run(func(c *task.Ctx) {
			c.FinishAsync(tasks, func(c *task.Ctx, i int) { sh.Read(c.Task(), 0) })
		}); err != nil {
			t.Fatal(err)
		}
		return d.Footprint().Total()
	}
	small, big := grow(4), grow(400)
	if big < 10*small {
		t.Errorf("footprint did not grow with task count: %d tasks -> %d bytes, %d tasks -> %d bytes",
			4, small, 400, big)
	}
}
