package fasttrack

import "spd3/internal/detect"

func init() {
	detect.Register("fasttrack", func(o detect.FactoryOpts) detect.Detector {
		return New(o.Sink)
	})
}
