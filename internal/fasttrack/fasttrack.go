// Package fasttrack reimplements the FastTrack race detector (Flanagan &
// Freund, PLDI 2009) as the paper's unstructured-parallelism baseline
// (§6.3, §6.4).
//
// FastTrack tracks happens-before with vector clocks, using lightweight
// epochs (clock@tid) for the common same-thread cases and inflating the
// per-location read metadata to a full vector clock only when reads are
// concurrent. Here one clock slot is assigned per *task*: the
// happens-before edges are async spawn (parent → child) and finish join
// (every task of the scope → the owner's continuation), plus lock
// release/acquire edges for instrumented mutexes.
//
// This reproduces FastTrack's characteristic costs that SPD3 avoids:
// spawn/join operations cost O(n) clock work, and read-shared locations
// hold O(n) metadata, where n is the number of concurrent tasks. The
// paper's Table 2/3 and Figures 5/6 compare these costs against SPD3's
// constants; the chunked (one task per worker) benchmark variants match
// the thread-per-core configuration FastTrack was measured with.
package fasttrack

import (
	"fmt"
	"sync"

	"spd3/internal/detect"
	"spd3/internal/shadow"
	"spd3/internal/stats"
	"spd3/internal/vc"
)

// Detector is the FastTrack baseline detector.
type Detector struct {
	sink *detect.Sink
	st   *stats.Recorder

	mu      sync.Mutex
	tids    vc.TID
	shadows []*regionShadow
	tasks   []*taskState
	locks   []*lockState
}

// New returns a FastTrack detector reporting to sink.
func New(sink *detect.Sink) *Detector {
	return &Detector{sink: sink}
}

// SetStats wires the engine's observability recorder (nil is fine);
// call before the first NewShadow.
func (d *Detector) SetStats(st *stats.Recorder) { d.st = st }

// Name implements detect.Detector.
func (d *Detector) Name() string { return "fasttrack" }

// RequiresSequential implements detect.Detector: FastTrack runs in
// parallel.
func (d *Detector) RequiresSequential() bool { return false }

// taskState is the per-task analysis state. The clock is owned by the
// task's goroutine between events; the runtime's spawn/join edges hand it
// over safely.
type taskState struct {
	tid vc.TID
	c   *vc.VC
}

// epoch returns the task's current epoch E(t).
func (ts *taskState) epoch() vc.Epoch { return ts.c.Epoch(ts.tid) }

// finishState accumulates the joined clock of every task that ended in
// the scope. TaskEnds of sibling tasks may be concurrent, hence the lock.
type finishState struct {
	mu  sync.Mutex
	acc *vc.VC
}

// lockState is the vector clock of an instrumented lock.
type lockState struct {
	c *vc.VC
}

func (d *Detector) newTID() vc.TID {
	d.mu.Lock()
	defer d.mu.Unlock()
	t := d.tids
	d.tids++
	return t
}

// MainTask implements detect.Detector.
func (d *Detector) MainTask(t *detect.Task, implicit *detect.Finish) {
	ts := &taskState{tid: d.newTID(), c: vc.New()}
	ts.c.Set(ts.tid, 1)
	t.State = ts
	implicit.State = &finishState{acc: vc.New()}
	d.mu.Lock()
	d.tasks = append(d.tasks, ts)
	d.mu.Unlock()
}

// BeforeSpawn implements the fork edge: the child starts with a copy of
// the parent's clock plus its own fresh component; the parent then ticks
// so its later accesses are not ordered before the child.
func (d *Detector) BeforeSpawn(parent, child *detect.Task) {
	ps := parent.State.(*taskState)
	cs := &taskState{tid: d.newTID(), c: ps.c.Copy()}
	cs.c.Set(cs.tid, 1)
	child.State = cs
	ps.c.Tick(ps.tid)
	d.mu.Lock()
	d.tasks = append(d.tasks, cs)
	d.mu.Unlock()
}

// TaskEnd implements half of the join edge: the ending task's clock flows
// into its IEF's accumulator.
func (d *Detector) TaskEnd(t *detect.Task) {
	ts := t.State.(*taskState)
	fs := t.IEF.State.(*finishState)
	fs.mu.Lock()
	fs.acc.Join(ts.c)
	fs.mu.Unlock()
}

// FinishStart implements detect.Detector.
func (d *Detector) FinishStart(t *detect.Task, f *detect.Finish) {
	f.State = &finishState{acc: vc.New()}
}

// FinishEnd implements the other half of the join edge: the owner's clock
// absorbs the accumulated clocks of every joined task.
func (d *Detector) FinishEnd(t *detect.Task, f *detect.Finish) {
	ts := t.State.(*taskState)
	fs := f.State.(*finishState)
	// No lock needed: the runtime guarantees all TaskEnds of the scope
	// happened before this event.
	ts.c.Join(fs.acc)
	ts.c.Tick(ts.tid)
}

// Acquire implements the lock acquire edge.
func (d *Detector) Acquire(t *detect.Task, l *detect.Lock) {
	ts := t.State.(*taskState)
	ls := d.lockState(l)
	ts.c.Join(ls.c)
}

// Release implements the lock release edge.
func (d *Detector) Release(t *detect.Task, l *detect.Lock) {
	ts := t.State.(*taskState)
	ls := d.lockState(l)
	ls.c.Assign(ts.c)
	ts.c.Tick(ts.tid)
}

// barrierState holds per-generation joined clocks. Generations complete
// strictly in order, but departures of generation g can race with
// arrivals of generation g+1, hence the lock.
type barrierState struct {
	mu   sync.Mutex
	gens map[int]*vc.VC
}

// BarrierArrive implements detect.BarrierObserver: the arriving task's
// clock joins the generation's clock. This mirrors RoadRunner's special
// barrier events (§6.3), which is what let FastTrack accept the JGF
// programs' barrier-phased sharing.
func (d *Detector) BarrierArrive(t *detect.Task, b *detect.BarrierInfo, gen int) {
	ts := t.State.(*taskState)
	bs := d.barrierState(b)
	bs.mu.Lock()
	acc := bs.gens[gen]
	if acc == nil {
		acc = vc.New()
		bs.gens[gen] = acc
	}
	acc.Join(ts.c)
	bs.mu.Unlock()
}

// BarrierDepart implements detect.BarrierObserver: the departing task's
// clock absorbs the generation's joined clock, ordering it after every
// participant's pre-barrier work.
func (d *Detector) BarrierDepart(t *detect.Task, b *detect.BarrierInfo, gen int) {
	ts := t.State.(*taskState)
	bs := d.barrierState(b)
	bs.mu.Lock()
	acc := bs.gens[gen]
	bs.mu.Unlock()
	if acc != nil {
		ts.c.Join(acc)
	}
	ts.c.Tick(ts.tid)
}

func (d *Detector) barrierState(b *detect.BarrierInfo) *barrierState {
	d.mu.Lock()
	defer d.mu.Unlock()
	if b.State == nil {
		b.State = &barrierState{gens: make(map[int]*vc.VC)}
	}
	return b.State.(*barrierState)
}

func (d *Detector) lockState(l *detect.Lock) *lockState {
	d.mu.Lock()
	defer d.mu.Unlock()
	if l.State == nil {
		ls := &lockState{c: vc.New()}
		l.State = ls
		d.locks = append(d.locks, ls)
	}
	return l.State.(*lockState)
}

// Footprint sums epochs, read vector clocks, task clocks, and lock clocks
// — the quantities whose growth with parallelism the paper's Table 3 and
// Figure 6 chart.
func (d *Detector) Footprint() detect.Footprint {
	d.mu.Lock()
	defer d.mu.Unlock()
	var f detect.Footprint
	for _, s := range d.shadows {
		f.ShadowBytes += s.bytes()
	}
	for _, ts := range d.tasks {
		f.ClockBytes += ts.c.Bytes()
	}
	for _, ls := range d.locks {
		f.ClockBytes += ls.c.Bytes()
	}
	return f
}

// NewShadow implements detect.Detector: ftVar state is paged in lazily,
// so untouched locations cost nothing.
func (d *Detector) NewShadow(spec detect.ShadowSpec) detect.Shadow {
	s := &regionShadow{d: d, name: spec.Name, vars: shadow.New[ftVar](spec.Bound())}
	sh := d.st.Shard(0)
	s.vars.SetOnAlloc(func(int) { sh.Inc(stats.ShadowPagesAllocated) })
	d.mu.Lock()
	d.shadows = append(d.shadows, s)
	d.mu.Unlock()
	return s
}

// ftVar is the per-location FastTrack state: a write epoch and either a
// read epoch (exclusive) or a read vector clock (shared).
type ftVar struct {
	mu sync.Mutex
	w  vc.Epoch
	r  vc.Epoch
	rv *vc.VC // non-nil iff read-shared
}

// ftVarBytes is the fixed part of a location's shadow state.
const ftVarBytes = 8 + 8 + 8 + 8 // mutex + two epochs + pointer

type regionShadow struct {
	d    *Detector
	name string
	vars *shadow.Pages[ftVar]
}

func (s *regionShadow) bytes() int64 {
	_, cells := s.vars.Allocated()
	total := cells * ftVarBytes
	s.vars.Range(func(_ int, vars []ftVar) {
		for i := range vars {
			vars[i].mu.Lock()
			if vars[i].rv != nil {
				total += vars[i].rv.Bytes()
			}
			vars[i].mu.Unlock()
		}
	})
	return total
}

func (s *regionShadow) report(kind detect.RaceKind, i int, prev string, cur vc.TID) {
	s.d.sink.Report(detect.Race{
		Kind:     kind,
		Region:   s.name,
		Index:    i,
		PrevStep: prev,
		CurStep:  fmt.Sprintf("task@tid%d", cur),
	})
}

// Read implements the [FT READ] rules.
func (s *regionShadow) Read(t *detect.Task, i int) {
	if s.d.sink.Stopped() {
		return
	}
	ts := t.State.(*taskState)
	v := s.vars.CellOf(&t.PC, i)
	v.mu.Lock()
	defer v.mu.Unlock()

	// Same-epoch fast paths.
	if v.r == ts.epoch() {
		return
	}
	if v.rv != nil && v.rv.Get(ts.tid) == ts.c.Get(ts.tid) {
		return
	}
	// Write-read check.
	if !v.w.LEQ(ts.c) {
		s.report(detect.WriteRead, i, v.w.String(), ts.tid)
	}
	if v.rv != nil {
		// Read shared.
		v.rv.Set(ts.tid, ts.c.Get(ts.tid))
		return
	}
	if v.r == vc.Zero || v.r.LEQ(ts.c) {
		// Read exclusive.
		v.r = ts.epoch()
		return
	}
	// Inflate to a read vector clock (share).
	v.rv = vc.New()
	v.rv.Set(v.r.TID(), v.r.Clock())
	v.rv.Set(ts.tid, ts.c.Get(ts.tid))
	v.r = vc.Zero
}

// Write implements the [FT WRITE] rules.
func (s *regionShadow) Write(t *detect.Task, i int) {
	if s.d.sink.Stopped() {
		return
	}
	ts := t.State.(*taskState)
	v := s.vars.CellOf(&t.PC, i)
	v.mu.Lock()
	defer v.mu.Unlock()

	// Same-epoch fast path.
	if v.w == ts.epoch() {
		return
	}
	// Write-write check.
	if !v.w.LEQ(ts.c) {
		s.report(detect.WriteWrite, i, v.w.String(), ts.tid)
	}
	// Read-write checks.
	if v.rv != nil {
		if bad := v.rv.AnyGT(ts.c); bad >= 0 {
			s.report(detect.ReadWrite, i, fmt.Sprintf("task@tid%d", bad), ts.tid)
		}
		// Write shared: clear the read clock.
		v.rv = nil
		v.r = vc.Zero
	} else if v.r != vc.Zero && !v.r.LEQ(ts.c) {
		s.report(detect.ReadWrite, i, v.r.String(), ts.tid)
	}
	v.w = ts.epoch()
}

var _ detect.Detector = (*Detector)(nil)
