package server

import (
	"context"
	"sync"

	"spd3/internal/stats"
)

// shardPool bounds how many segment replays may run at once across the
// whole daemon. It is a semaphore, not a set of resident goroutines:
// each admitted segment runs on its own goroutine and releases the slot
// when the replay finishes, so an idle daemon carries no pool threads.
//
// The blocking acquire is the backpressure path. When every slot is
// busy, the request handler stops pulling segments off the splitter,
// the splitter stops reading the request body, and the stall propagates
// down to TCP flow control — a flood of giant traces slows uploads
// instead of ballooning daemon memory.
type shardPool struct {
	sem chan struct{}
}

func newShardPool(workers int) *shardPool {
	return &shardPool{sem: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound.
func (p *shardPool) Workers() int { return cap(p.sem) }

// Busy returns how many segment replays are running right now.
func (p *shardPool) Busy() int { return len(p.sem) }

// run executes fn on a pool slot, tracking occupancy in the
// srv.shard_workers_busy gauge and wg. It blocks until a slot frees up;
// a done ctx while waiting returns false without running fn.
func (p *shardPool) run(ctx context.Context, busy *stats.Shard, wg *sync.WaitGroup, fn func()) bool {
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return false
	}
	busy.Inc(stats.SrvShardBusy)
	wg.Add(1)
	go func() {
		defer func() {
			busy.Add(stats.SrvShardBusy, -1)
			<-p.sem
			wg.Done()
		}()
		fn()
	}()
	return true
}

// raceKey identifies a race across segments the way the sink
// deduplicates within one replay: by kind, region, and element.
type raceKey struct {
	kind   string
	region string
	index  int
}

// mergedVerdict accumulates one detector's per-segment results across
// a job's fan-out (see Job.addRace). The segment boundary invariant
// (everything before a cut happens before everything after it) makes
// the merge a plain union: a trace is racy iff some segment is, and
// every race pairs two accesses inside a single segment, so nothing is
// lost to the cuts. Races recurring across segments (the same program
// point relocated, e.g. by an amplified trace) deduplicate by raceKey.
type mergedVerdict struct {
	detector string
	racy     bool
	seen     map[raceKey]struct{}
	races    []Race
	count    int
	capped   bool
	stats    stats.Snapshot
}
