package server

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"time"

	"spd3/internal/stats"
	"spd3/internal/trace"
)

// shardPool bounds how many segment replays may run at once across the
// whole daemon. It is a semaphore, not a set of resident goroutines:
// each admitted segment runs on its own goroutine and releases the slot
// when the replay finishes, so an idle daemon carries no pool threads.
//
// The blocking acquire is the backpressure path. When every slot is
// busy, the request handler stops pulling segments off the splitter,
// the splitter stops reading the request body, and the stall propagates
// down to TCP flow control — a flood of giant traces slows uploads
// instead of ballooning daemon memory.
type shardPool struct {
	sem chan struct{}
}

func newShardPool(workers int) *shardPool {
	return &shardPool{sem: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound.
func (p *shardPool) Workers() int { return cap(p.sem) }

// Busy returns how many segment replays are running right now.
func (p *shardPool) Busy() int { return len(p.sem) }

// run executes fn on a pool slot, tracking occupancy in the
// srv.shard_workers_busy gauge and wg. It blocks until a slot frees up;
// a done ctx while waiting returns false without running fn.
func (p *shardPool) run(ctx context.Context, busy *stats.Shard, wg *sync.WaitGroup, fn func()) bool {
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return false
	}
	busy.Inc(stats.SrvShardBusy)
	wg.Add(1)
	go func() {
		defer func() {
			busy.Add(stats.SrvShardBusy, -1)
			<-p.sem
			wg.Done()
		}()
		fn()
	}()
	return true
}

// raceKey identifies a race across segments the way the sink
// deduplicates within one replay: by kind, region, and element.
type raceKey struct {
	kind   string
	region string
	index  int
}

// mergedVerdict accumulates one detector's per-segment results. The
// segment boundary invariant (everything before a cut happens before
// everything after it) makes the merge a plain union: a trace is racy
// iff some segment is, and every race pairs two accesses inside a
// single segment, so nothing is lost to the cuts.
type mergedVerdict struct {
	detector string
	racy     bool
	seen     map[raceKey]struct{}
	races    []Race
	count    int
	capped   bool
	stats    stats.Snapshot
}

// merge folds one segment's verdict and stats in, deduplicating races
// that recur across segments (the same program point relocated, e.g.
// by an amplified trace) and capping the carried list at maxRaces.
func (m *mergedVerdict) merge(v Verdict, snap stats.Snapshot, maxRaces int) {
	m.racy = m.racy || v.Racy
	m.capped = m.capped || v.Capped
	m.stats.Merge(snap)
	for _, r := range v.Races {
		k := raceKey{r.Kind, r.Region, r.Index}
		if _, dup := m.seen[k]; dup {
			continue
		}
		m.seen[k] = struct{}{}
		m.count++
		if len(m.races) < maxRaces {
			m.races = append(m.races, r)
		} else {
			m.capped = true
		}
	}
}

// analyzeSharded drives the sharded analyze path: it pulls finish-scope
// segments off the splitter and fans each one out to a fresh instance
// of every requested detector through the bounded shard pool, merging
// per-segment verdicts, race lists, and stats snapshots as workers
// finish. Differential mode shards per detector simply by carrying
// several names. When one finish scope outgrows the segment cap the
// trace cannot be cut soundly, so the remainder unsplits into a single
// streamed replay (per detector) instead of buffering without bound.
//
// The ctx doubles as the cancellation signal: it is polled on every
// segment boundary here, inside each replay via lim.Cancel, and by the
// CancelReader feeding the splitter.
func (s *Server) analyzeSharded(ctx context.Context, names []string, sp *trace.Splitter, lim trace.Limits, withStats bool) ([]Verdict, int, error) {
	start := time.Now()
	acc := make([]*mergedVerdict, len(names))
	for i, n := range names {
		acc[i] = &mergedVerdict{detector: n, seen: map[raceKey]struct{}{}, races: []Race{}}
	}

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	segJob := func(m *mergedVerdict, rd io.Reader) {
		v, snap, err := s.analyzeOnce(m.detector, rd, lim)
		if err != nil {
			setErr(err)
			return
		}
		mu.Lock()
		m.merge(v, snap, s.cfg.MaxRacesPerReport)
		mu.Unlock()
	}
	busy := s.shard()
	segments := 0

loop:
	for {
		select {
		case <-ctx.Done():
			setErr(trace.ErrCanceled)
			break loop
		default:
		}
		seg, err := sp.Next()
		switch {
		case errors.Is(err, io.EOF):
			break loop
		case errors.Is(err, trace.ErrSegmentOversize):
			// The current finish scope refuses to fit a segment:
			// abandon sharding and stream the rest as one unit. The
			// splitter's buffered prefix is replayed too, so nothing
			// already consumed is lost.
			s.shard().Inc(stats.SrvUnsplit)
			s.shard().Inc(stats.TraceSegments)
			segments++
			rest := sp.Unsplit()
			if len(names) == 1 {
				segJob(acc[0], rest)
			} else {
				// Several detectors must each consume the remaining
				// stream, so it has to be materialized once — bounded
				// by the request's byte limiter, exactly the ceiling
				// the pre-streaming server paid for every request.
				data, rerr := io.ReadAll(rest)
				if rerr != nil {
					setErr(rerr)
					break loop
				}
				for i := range acc {
					m := acc[i]
					if !s.pool.run(ctx, busy, &wg, func() { segJob(m, bytes.NewReader(data)) }) {
						setErr(trace.ErrCanceled)
						break loop
					}
				}
			}
			break loop
		case err != nil:
			setErr(err)
			break loop
		}
		s.shard().Inc(stats.TraceSegments)
		segments++
		for i := range acc {
			m := acc[i]
			if !s.pool.run(ctx, busy, &wg, func() { segJob(m, bytes.NewReader(seg)) }) {
				setErr(trace.ErrCanceled)
				break loop
			}
		}
		if failed() {
			break
		}
	}
	wg.Wait()

	if firstErr != nil {
		return nil, segments, firstErr
	}
	wall := float64(time.Since(start)) / float64(time.Millisecond)
	verdicts := make([]Verdict, len(acc))
	for i, m := range acc {
		verdicts[i] = Verdict{
			Detector:   m.detector,
			Racy:       m.racy,
			RaceCount:  m.count,
			Races:      m.races,
			Capped:     m.capped,
			DurationMS: wall,
		}
		if withStats {
			snap := m.stats
			verdicts[i].Stats = &snap
		}
	}
	return verdicts, segments, nil
}
