package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"spd3/internal/detect"
)

// Client is a typed client for a running spd3d daemon. The zero value is
// not usable; construct with NewClient.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7331".
	BaseURL string
	// HTTPClient is the underlying transport; NewClient installs a
	// default with a generous overall timeout.
	HTTPClient *http.Client
}

// NewClient returns a client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:    strings.TrimRight(baseURL, "/"),
		HTTPClient: &http.Client{Timeout: 5 * time.Minute},
	}
}

// APIError is a non-200 daemon response, decoded from its JSON
// ErrorReport body.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the daemon's error text.
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("spd3d: %s (HTTP %d)", e.Message, e.Status)
}

// Saturated reports whether the request was shed by admission control
// (429 saturated or 503 draining) — the retryable class a load generator
// counts separately from hard failures.
func (e *APIError) Saturated() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// do issues the request and decodes the response into out, converting
// non-200 statuses into *APIError.
func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("spd3d: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		var er ErrorReport
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			return &APIError{Status: resp.StatusCode, Message: er.Error}
		}
		return &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("spd3d: decoding response: %w", err)
	}
	return nil
}

// Analyze POSTs a recorded trace and returns the daemon's race report.
// detector is a registry name, or "all" for differential mode; ""
// selects the daemon default (spd3).
func (c *Client) Analyze(ctx context.Context, detector string, tr io.Reader) (*Report, error) {
	url := c.BaseURL + "/v1/analyze"
	if detector != "" {
		url += "?detector=" + detector
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, tr)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	var rep Report
	if err := c.do(req, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Detectors returns the daemon's registry listing.
func (c *Client) Detectors(ctx context.Context) ([]detect.Description, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/detectors", nil)
	if err != nil {
		return nil, err
	}
	var list DetectorList
	if err := c.do(req, &list); err != nil {
		return nil, err
	}
	return list.Detectors, nil
}

// Health checks /healthz; nil means the daemon is up and not draining.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	return c.do(req, nil)
}

// Stats returns the daemon's /statsz snapshot.
func (c *Client) Stats(ctx context.Context) (*Statsz, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/statsz", nil)
	if err != nil {
		return nil, err
	}
	var st Statsz
	if err := c.do(req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}
