package server

import (
	"spd3/client"
)

// Client is the typed spd3d client.
//
// Deprecated: the client moved out of internal/ so external tooling can
// import it; use package spd3/client. This alias keeps old call sites
// compiling (the public Client is method-compatible and adds the /v2
// async job API: SubmitJob, WaitJob, Result, StreamEvents).
type Client = client.Client

// APIError is a non-2xx daemon response.
//
// Deprecated: use client.APIError.
type APIError = client.APIError

// NewClient returns a client for the daemon at baseURL.
//
// Deprecated: use client.New.
func NewClient(baseURL string) *Client {
	return client.New(baseURL)
}
