package server

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"testing"

	"spd3/internal/stats"
)

// TestClientRoundTrip drives every typed client method against a live
// handler.
func TestClientRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 4})
	c := NewClient(ts.URL + "/") // trailing slash must not produce //v1 paths
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("Health: %v", err)
	}

	dets, err := c.Detectors(ctx)
	if err != nil {
		t.Fatalf("Detectors: %v", err)
	}
	seq := map[string]bool{}
	for _, d := range dets {
		seq[d.Name] = d.Sequential
	}
	if v, ok := seq["spd3"]; !ok || v {
		t.Errorf("spd3 listing = %v/%v, want parallel-safe", v, ok)
	}
	if v, ok := seq["espbags"]; !ok || !v {
		t.Errorf("espbags listing = %v/%v, want sequential-only", v, ok)
	}

	tr := recordRacyMonteCarlo(t)
	rep, err := c.Analyze(ctx, "all", bytes.NewReader(tr))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if rep.Tool != Tool || rep.Agree == nil || !*rep.Agree {
		t.Fatalf("Analyze report: %+v", rep)
	}

	// Default detector when none is named.
	rep, err = c.Analyze(ctx, "", bytes.NewReader(tr))
	if err != nil {
		t.Fatalf("Analyze default: %v", err)
	}
	if len(rep.Verdicts) != 1 || rep.Verdicts[0].Detector != "spd3" {
		t.Fatalf("default detector verdicts: %+v", rep.Verdicts)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Stats.Get(stats.SrvRequests) == 0 || st.Stats.Get(stats.SrvAnalyses) == 0 {
		t.Fatalf("statsz counters empty: %+v", st)
	}
	if st.MaxInFlight != 4 || st.Draining {
		t.Fatalf("statsz gauges: %+v", st)
	}
}

// TestClientAPIError pins the typed error mapping: a 404 surfaces as
// *APIError carrying the daemon's message, and Saturated classifies the
// load-sheddable statuses.
func TestClientAPIError(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	c := NewClient(ts.URL)

	_, err := c.Analyze(context.Background(), "nosuch", bytes.NewReader(recordProgen(t, 1, true)))
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %T %v, want *APIError", err, err)
	}
	if apiErr.Status != http.StatusNotFound || apiErr.Message == "" {
		t.Fatalf("APIError = %+v, want 404 with message", apiErr)
	}
	if apiErr.Saturated() {
		t.Error("404 classified as saturated")
	}
	if !(&APIError{Status: 429}).Saturated() || !(&APIError{Status: 503}).Saturated() {
		t.Error("429/503 not classified as saturated")
	}
}
