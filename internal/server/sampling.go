// Per-tenant check sampling for the daemon. Each tenant replays under
// a sampling spec resolved from (per-job override, tenant config,
// daemon default), and every distinct (tenant, spec) pair gets ONE
// persistent governor for the daemon's lifetime: successive jobs keep
// feeding the same feedback loop, so the adapted rate carries across
// jobs instead of restarting cold on every segment. The live rates are
// exported as /statsz gauges next to the sample.* counters.
package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"spd3/internal/sample"
)

// SamplingConfig tunes the daemon's check sampling. The zero value
// means sampling off for every tenant.
type SamplingConfig struct {
	// Default is the sampling spec applied to every tenant without an
	// explicit entry in Tenants — "bernoulli:0.01", "page:0.05",
	// "burst:0.02", or "off". Empty means off.
	Default string
	// Budget is the overhead budget handed to each governor (0.05 =
	// hold modeled check overhead at 5% of uninstrumented time). 0
	// freezes rates at their configured values.
	Budget float64
	// Tenants maps tenant name → sampling spec, overriding Default.
	Tenants map[string]string
}

// validate parses every configured spec so a typo fails at Open, not
// at the first job that lands on the misconfigured tenant.
func (c SamplingConfig) validate() error {
	if _, err := sample.Parse(c.Default); err != nil {
		return fmt.Errorf("sampling default %q: %w", c.Default, err)
	}
	if c.Budget < 0 || c.Budget > 1 {
		return fmt.Errorf("sampling budget %v out of [0, 1]", c.Budget)
	}
	for t, spec := range c.Tenants {
		if _, err := sample.Parse(spec); err != nil {
			return fmt.Errorf("sampling for tenant %q: %q: %w", t, spec, err)
		}
	}
	return nil
}

// TenantSampling is one live sampling gauge in /statsz: the mode and
// current (governor-adapted) rate in effect for one tenant.
type TenantSampling struct {
	Tenant string  `json:"tenant"`
	Mode   string  `json:"mode"`
	Rate   float64 `json:"rate"`
}

// samplerTable owns the daemon's governors, created lazily per
// (tenant, spec) actually seen and kept forever after.
type samplerTable struct {
	cfg  SamplingConfig
	mu   sync.Mutex
	govs map[string]*sample.Governor
}

func newSamplerTable(cfg SamplingConfig) *samplerTable {
	return &samplerTable{cfg: cfg, govs: map[string]*sample.Governor{}}
}

// specFor resolves the spec in effect for a tenant: the per-job
// override when present, else the tenant's configured spec, else the
// daemon default.
func (st *samplerTable) specFor(tenant, override string) string {
	if override != "" {
		return override
	}
	if spec, ok := st.cfg.Tenants[tenant]; ok {
		return spec
	}
	return st.cfg.Default
}

// governor returns the persistent governor for (tenant, override), or
// nil when sampling is off for that pair. Specs were validated at Open
// (config) and submit (override), so a parse failure here degrades to
// sampling off rather than panicking mid-replay.
func (st *samplerTable) governor(tenant, override string) *sample.Governor {
	spec := st.specFor(tenant, override)
	cfg, err := sample.Parse(spec)
	if err != nil || cfg.Mode == sample.Off {
		return nil
	}
	key := tenant + "\x00" + spec
	st.mu.Lock()
	defer st.mu.Unlock()
	g := st.govs[key]
	if g == nil {
		g = sample.NewGovernor(cfg, st.cfg.Budget)
		st.govs[key] = g
	}
	return g
}

// gauges snapshots every live governor for /statsz, ordered by tenant
// then mode so the listing is deterministic.
func (st *samplerTable) gauges() []TenantSampling {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.govs) == 0 {
		return nil
	}
	out := make([]TenantSampling, 0, len(st.govs))
	for key, g := range st.govs {
		tenant, _, _ := strings.Cut(key, "\x00")
		out = append(out, TenantSampling{Tenant: tenant, Mode: g.Mode().String(), Rate: g.Rate()})
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].Tenant != out[k].Tenant {
			return out[i].Tenant < out[k].Tenant
		}
		return out[i].Mode < out[k].Mode
	})
	return out
}
