package server

import (
	"fmt"
	"sync"
	"time"
)

// QuotaConfig bounds what one tenant (keyed by the X-SPD3-Tenant header;
// missing header = the "default" tenant) may consume. Every limit is
// per-tenant, so one tenant exhausting its quota never touches another
// tenant's admission — the isolation the /v2 redesign promises.
type QuotaConfig struct {
	// MaxQueuedJobs bounds a tenant's non-terminal jobs (queued +
	// running). Defaults to 64; negative disables the bound.
	MaxQueuedJobs int
	// MaxStoredBytes bounds a tenant's total stored segment bytes,
	// summed over its live jobs (pre-dedup, so self-similar traces
	// cannot launder quota through the CAS). Defaults to 4 GiB;
	// negative disables.
	MaxStoredBytes int64
	// TenantShards bounds how many shard-pool slots one tenant's
	// segment replays may hold at once, so a tenant with a giant queued
	// backlog cannot monopolize the pool. 0 means the pool size
	// (no per-tenant narrowing); negative disables.
	TenantShards int
	// RateBytesPerSec refills a per-tenant token bucket charged by
	// submitted trace bytes; an empty bucket rejects the submit with
	// 429 + Retry-After. 0 disables rate limiting.
	RateBytesPerSec int64
	// BurstBytes is the bucket capacity. Defaults to 4×RateBytesPerSec
	// (min one default segment) when rate limiting is on.
	BurstBytes int64
}

// withDefaults returns cfg with zero fields defaulted.
func (c QuotaConfig) withDefaults() QuotaConfig {
	if c.MaxQueuedJobs == 0 {
		c.MaxQueuedJobs = 64
	}
	if c.MaxStoredBytes == 0 {
		c.MaxStoredBytes = 4 << 30
	}
	if c.RateBytesPerSec > 0 && c.BurstBytes <= 0 {
		c.BurstBytes = 4 * c.RateBytesPerSec
	}
	return c
}

// quotaErr is a typed admission rejection: what ran out, and how long
// the client should wait before retrying. It maps to 429 with a
// Retry-After header.
type quotaErr struct {
	kind       string // "queued jobs", "stored bytes", "byte rate"
	tenant     string
	retryAfter time.Duration
}

func (e *quotaErr) Error() string {
	return fmt.Sprintf("tenant %q over quota: %s exhausted (retry after %s)",
		e.tenant, e.kind, e.retryAfter.Round(time.Second))
}

// tenantState is one tenant's live accounting: gauges for its queued
// jobs and stored bytes, its token bucket, and its shard-slot
// semaphore. Gauges move on job admission, deletion, and GC; the
// semaphore is held around each segment replay.
type tenantState struct {
	jobs        int
	storedBytes int64

	// Token bucket, refilled lazily on each admit.
	tokens   int64
	lastFill time.Time

	// shardSem narrows the global shard pool for this tenant; nil when
	// TenantShards is disabled.
	shardSem chan struct{}
}

// quotaTable tracks every tenant the daemon has seen. Tenants are
// created on first use and never expire (their state is a few words).
type quotaTable struct {
	cfg QuotaConfig

	mu      sync.Mutex
	tenants map[string]*tenantState
}

func newQuotaTable(cfg QuotaConfig, poolWorkers int) *quotaTable {
	cfg = cfg.withDefaults()
	if cfg.TenantShards == 0 {
		cfg.TenantShards = poolWorkers
	}
	return &quotaTable{cfg: cfg, tenants: make(map[string]*tenantState)}
}

// tenant returns (creating if needed) one tenant's state. Callers hold
// q.mu only through the table's own methods.
func (q *quotaTable) tenant(name string) *tenantState {
	t, ok := q.tenants[name]
	if !ok {
		t = &tenantState{tokens: q.cfg.BurstBytes, lastFill: time.Now()}
		if q.cfg.TenantShards > 0 {
			t.shardSem = make(chan struct{}, q.cfg.TenantShards)
		}
		q.tenants[name] = t
	}
	return t
}

// admit charges one job submission of byteEstimate against tenant's
// quotas: the queued-jobs gauge, the stored-bytes gauge, and the token
// bucket. On success the job gauge is already incremented (settle with
// charge, then releaseSlot/releaseBytes); on failure a *quotaErr
// describes the exhausted resource.
func (q *quotaTable) admit(tenant string, byteEstimate int64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.tenant(tenant)

	if q.cfg.MaxQueuedJobs > 0 && t.jobs >= q.cfg.MaxQueuedJobs {
		return &quotaErr{kind: "queued jobs", tenant: tenant, retryAfter: 5 * time.Second}
	}
	if q.cfg.MaxStoredBytes > 0 && t.storedBytes+byteEstimate > q.cfg.MaxStoredBytes {
		return &quotaErr{kind: "stored bytes", tenant: tenant, retryAfter: 30 * time.Second}
	}
	if q.cfg.RateBytesPerSec > 0 {
		now := time.Now()
		refill := int64(now.Sub(t.lastFill).Seconds() * float64(q.cfg.RateBytesPerSec))
		if refill > 0 {
			t.tokens = min(t.tokens+refill, q.cfg.BurstBytes)
			t.lastFill = now
		}
		if t.tokens < byteEstimate {
			wait := time.Duration(float64(byteEstimate-t.tokens)/float64(q.cfg.RateBytesPerSec)*float64(time.Second)) + time.Second
			return &quotaErr{kind: "byte rate", tenant: tenant, retryAfter: wait}
		}
		t.tokens -= byteEstimate
	}
	t.jobs++
	return nil
}

// charge settles a submitted job's actual stored bytes (known only
// after the splitter has run) against the tenant's gauge, and debits
// the token bucket for any bytes beyond the admission estimate (the
// bucket may go negative; the tenant pays it back through refill).
//
// The stored-bytes ceiling is re-checked here because admission only
// saw the client-supplied Content-Length — 0 for a chunked upload — so
// concurrent submits could each pass admit and only reveal their real
// size after the spill. A charge that would push the gauge over the
// ceiling is refused: the caller fails the job and its blobs become
// garbage for the next sweep, so the gauge itself never overshoots.
func (q *quotaTable) charge(tenant string, storedBytes, estimate int64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.tenant(tenant)
	if q.cfg.MaxStoredBytes > 0 && t.storedBytes+storedBytes > q.cfg.MaxStoredBytes {
		return &quotaErr{kind: "stored bytes", tenant: tenant, retryAfter: 30 * time.Second}
	}
	t.storedBytes += storedBytes
	if q.cfg.RateBytesPerSec > 0 && storedBytes > estimate {
		t.tokens -= storedBytes - estimate
	}
	return nil
}

// releaseSlot returns a job's queue slot: called when the job reaches a
// terminal state. Its stored bytes stay charged until releaseBytes, so
// a tenant cannot park unlimited finished results in the store.
func (q *quotaTable) releaseSlot(tenant string) {
	q.mu.Lock()
	t := q.tenant(tenant)
	if t.jobs > 0 {
		t.jobs--
	}
	q.mu.Unlock()
}

// releaseBytes returns a deleted or GC-expired job's stored bytes.
func (q *quotaTable) releaseBytes(tenant string, storedBytes int64) {
	q.mu.Lock()
	t := q.tenant(tenant)
	t.storedBytes -= storedBytes
	if t.storedBytes < 0 {
		t.storedBytes = 0
	}
	q.mu.Unlock()
}

// restore rebuilds a tenant's gauges from a manifest at daemon restart:
// the stored bytes always, plus a queue slot when the job is live
// (queued or running).
func (q *quotaTable) restore(tenant string, storedBytes int64, live bool) {
	q.mu.Lock()
	t := q.tenant(tenant)
	t.storedBytes += storedBytes
	if live {
		t.jobs++
	}
	q.mu.Unlock()
}

// shardSem returns the tenant's shard-slot semaphore (nil = unlimited).
func (q *quotaTable) shardSem(tenant string) chan struct{} {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.tenant(tenant).shardSem
}
