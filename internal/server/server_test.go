package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"spd3/internal/bench"
	"spd3/internal/detect"
	_ "spd3/internal/detectors" // populate the registry, as cmd/spd3d does
	"spd3/internal/progen"
	"spd3/internal/stats"
	"spd3/internal/task"
	"spd3/internal/trace"
)

// The gate detector lets tests hold an analysis in flight for as long as
// they need: its MainTask blocks until the test releases the gate. It is
// registered as a hidden variant, so it is reachable by name but absent
// from listings and differential mode.
var gate struct {
	mu sync.Mutex
	ch chan struct{}
}

// setGate installs a fresh gate and returns its release function.
func setGate() func() {
	ch := make(chan struct{})
	gate.mu.Lock()
	gate.ch = ch
	gate.mu.Unlock()
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

type gateDetector struct{ detect.Nop }

func (gateDetector) MainTask(*detect.Task, *detect.Finish) {
	gate.mu.Lock()
	ch := gate.ch
	gate.mu.Unlock()
	if ch != nil {
		<-ch
	}
}

func init() {
	detect.RegisterVariant("test-gate", func(detect.FactoryOpts) detect.Detector { return gateDetector{} })
}

// recordProgen records one generated program, sequentially or in
// parallel, and returns the trace bytes.
func recordProgen(t *testing.T, seed int64, seq bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf, seq)
	exec, workers := task.Sequential, 1
	if !seq {
		exec, workers = task.Pool, 4
	}
	rt, err := task.New(task.Config{Executor: exec, Workers: workers, Detector: rec})
	if err != nil {
		t.Fatal(err)
	}
	if err := progen.Run(rt, progen.Generate(seed, progen.Config{}), nil); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// recordRacyMonteCarlo records the paper's benign-race benchmark under
// the depth-first executor, so every detector (including ESP-bags) can
// legally consume the trace.
func recordRacyMonteCarlo(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf, true)
	rt, err := task.New(task.Config{Executor: task.Sequential, Detector: rec})
	if err != nil {
		t.Fatal(err)
	}
	for _, rb := range bench.Racy() {
		if rb.Name == "RacyMonteCarlo" {
			if _, err := rb.Run(rt, bench.Input{Scale: 0.2}); err != nil {
				t.Fatal(err)
			}
			if err := rec.Close(); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
	}
	t.Fatal("RacyMonteCarlo not in bench.Racy()")
	return nil
}

// liveVerdict runs the program live under the named detector.
func liveVerdict(t *testing.T, seed int64, name string) bool {
	t.Helper()
	sink := detect.NewSink(false, 0)
	det, err := detect.New(name, detect.FactoryOpts{Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := task.New(task.Config{Executor: task.Sequential, Detector: det})
	if err != nil {
		t.Fatal(err)
	}
	if err := progen.Run(rt, progen.Generate(seed, progen.Config{}), nil); err != nil {
		t.Fatal(err)
	}
	return !sink.Empty()
}

// synthTrace hand-drives the recorder to build a sequential trace with a
// known event count (one MainTask, one region, accesses reads, one
// TaskEnd).
func synthTrace(t *testing.T, accesses int) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf, true)
	mt := &detect.Task{ID: 0}
	fin := &detect.Finish{ID: 0, Owner: mt}
	mt.IEF = fin
	rec.MainTask(mt, fin)
	sh := rec.NewShadow(detect.Spec("synth", 8, 8))
	for i := 0; i < accesses; i++ {
		sh.Read(mt, i%8)
	}
	rec.TaskEnd(mt)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeReport(t *testing.T, data []byte) *Report {
	t.Helper()
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("decoding report: %v\n%s", err, data)
	}
	return &rep
}

func getStatsz(t *testing.T, base string) *Statsz {
	t.Helper()
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Statsz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return &st
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for " + msg)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStatusCodes pins the exact HTTP status of every analyze outcome.
func TestStatusCodes(t *testing.T) {
	seqTrace := recordProgen(t, 1, true)
	parTrace := recordProgen(t, 1, false)

	_, ts := newTestServer(t, Config{MaxInFlight: 4})
	analyze := ts.URL + "/v1/analyze"

	t.Run("200 valid trace", func(t *testing.T) {
		resp, body := post(t, analyze+"?detector=spd3", seqTrace)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200\n%s", resp.StatusCode, body)
		}
		rep := decodeReport(t, body)
		if rep.Tool != Tool || rep.Version != Version || len(rep.Verdicts) != 1 || rep.Verdicts[0].Detector != "spd3" {
			t.Fatalf("bad report envelope: %+v", rep)
		}
		if !rep.Sequential {
			t.Fatal("sequential trace not flagged as such")
		}
	})
	t.Run("400 not a trace", func(t *testing.T) {
		resp, _ := post(t, analyze, []byte("NOTATRACE-NOTATRACE"))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("400 truncated trace", func(t *testing.T) {
		resp, _ := post(t, analyze, seqTrace[:len(seqTrace)-1])
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("404 unknown detector", func(t *testing.T) {
		resp, body := post(t, analyze+"?detector=nosuch", seqTrace)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status = %d, want 404", resp.StatusCode)
		}
		var er ErrorReport
		if err := json.Unmarshal(body, &er); err != nil || er.Tool != Tool || er.Status != 404 {
			t.Fatalf("bad error envelope: %s", body)
		}
	})
	t.Run("422 sequential-only detector on parallel trace", func(t *testing.T) {
		resp, _ := post(t, analyze+"?detector=espbags", parTrace)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("status = %d, want 422", resp.StatusCode)
		}
	})
	t.Run("405 wrong method", func(t *testing.T) {
		resp, err := http.Get(analyze)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want 405", resp.StatusCode)
		}
	})
}

// TestBodyCap413: uploads over MaxBodyBytes are refused with 413.
func TestBodyCap413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	resp, _ := post(t, ts.URL+"/v1/analyze", synthTrace(t, 1000))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

// TestResourceLimit413: a small trace declaring a huge region is refused
// with 413 via trace.ErrLimit, not misfiled as 400.
func TestResourceLimit413(t *testing.T) {
	_, ts := newTestServer(t, Config{Limits: trace.Limits{MaxRegionElems: 2, MaxTotalElems: 2}})
	resp, _ := post(t, ts.URL+"/v1/analyze", synthTrace(t, 4))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

// TestSaturation429: with MaxInFlight=1 and one analysis parked on the
// gate, the next request is shed with 429 and counted as rejected;
// releasing the gate lets the parked analysis finish with 200.
func TestSaturation429(t *testing.T) {
	release := setGate()
	defer release()
	s, ts := newTestServer(t, Config{MaxInFlight: 1})

	tr := synthTrace(t, 16)
	type result struct {
		status int
		body   []byte
	}
	done := make(chan result, 1)
	go func() {
		resp, body := post(t, ts.URL+"/v1/analyze?detector=test-gate", tr)
		done <- result{resp.StatusCode, body}
	}()
	waitFor(t, func() bool { return s.InFlight() == 1 }, "gated analysis in flight")

	resp, _ := post(t, ts.URL+"/v1/analyze?detector=spd3", tr)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429", resp.StatusCode)
	}

	release()
	r := <-done
	if r.status != http.StatusOK {
		t.Fatalf("gated analysis status = %d, want 200\n%s", r.status, r.body)
	}
	st := getStatsz(t, ts.URL)
	if got := st.Stats.Get(stats.SrvRejected); got != 1 {
		t.Fatalf("srv.rejected = %d, want 1", got)
	}
}

// TestDeadlineCancelsReplay is the acceptance-criteria proof: a request
// whose deadline expires mid-analysis stops the underlying replay (the
// canceled counter increments and the response is 504), instead of the
// replay running to completion in the background.
func TestDeadlineCancelsReplay(t *testing.T) {
	release := setGate()
	defer release()
	s, ts := newTestServer(t, Config{MaxInFlight: 2, RequestTimeout: 50 * time.Millisecond})

	// Enough events after MainTask that the post-gate replay must cross
	// a cancellation poll before reaching EOF.
	tr := synthTrace(t, 3*4096)
	done := make(chan int, 1)
	go func() {
		resp, _ := post(t, ts.URL+"/v1/analyze?detector=test-gate", tr)
		done <- resp.StatusCode
	}()
	waitFor(t, func() bool { return s.InFlight() == 1 }, "gated analysis in flight")
	// Hold the gate until the 50ms deadline has long expired, then let
	// the replay continue into its next cancellation poll.
	time.Sleep(300 * time.Millisecond)
	release()

	if status := <-done; status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", status)
	}
	st := getStatsz(t, ts.URL)
	if got := st.Stats.Get(stats.SrvCanceled); got != 1 {
		t.Fatalf("srv.canceled = %d, want 1", got)
	}
}

// TestGracefulShutdown: Drain lets the in-flight analysis finish (200)
// while new requests get 503 and /healthz flips to draining.
func TestGracefulShutdown(t *testing.T) {
	release := setGate()
	defer release()
	s, ts := newTestServer(t, Config{MaxInFlight: 4})

	tr := synthTrace(t, 16)
	done := make(chan int, 1)
	go func() {
		resp, _ := post(t, ts.URL+"/v1/analyze?detector=test-gate", tr)
		done <- resp.StatusCode
	}()
	waitFor(t, func() bool { return s.InFlight() == 1 }, "gated analysis in flight")

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	waitFor(t, s.Draining, "server draining")

	resp, _ := post(t, ts.URL+"/v1/analyze?detector=spd3", tr)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status while draining = %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", hresp.StatusCode)
	}

	select {
	case err := <-drained:
		t.Fatalf("Drain returned (%v) while an analysis was still in flight", err)
	default:
	}

	release()
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if status := <-done; status != http.StatusOK {
		t.Fatalf("in-flight analysis status = %d, want 200 (drain must not kill it)", status)
	}
}

// TestEndToEndRacyMonteCarlo is the acceptance-criteria round trip: a
// trace recorded by trace.Recorder is POSTed to a running daemon,
// analyzed by spd3 and fasttrack, and both verdicts agree with the live
// run.
func TestEndToEndRacyMonteCarlo(t *testing.T) {
	tr := recordRacyMonteCarlo(t)
	_, ts := newTestServer(t, Config{})

	// Live verdict: RacyMonteCarlo contains the paper's benign WW race.
	sink := detect.NewSink(false, 0)
	det, err := detect.New("spd3", detect.FactoryOpts{Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := task.New(task.Config{Executor: task.Sequential, Detector: det})
	if err != nil {
		t.Fatal(err)
	}
	for _, rb := range bench.Racy() {
		if rb.Name == "RacyMonteCarlo" {
			if _, err := rb.Run(rt, bench.Input{Scale: 0.2}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if sink.Empty() {
		t.Fatal("live spd3 run found no race in RacyMonteCarlo")
	}

	for _, detName := range []string{"spd3", "fasttrack"} {
		resp, body := post(t, ts.URL+"/v1/analyze?detector="+detName, tr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d\n%s", detName, resp.StatusCode, body)
		}
		rep := decodeReport(t, body)
		if len(rep.Verdicts) != 1 || !rep.Verdicts[0].Racy {
			t.Fatalf("%s: verdict disagrees with the live run (racy): %+v", detName, rep.Verdicts)
		}
		if rep.Verdicts[0].RaceCount == 0 || len(rep.Verdicts[0].Races) == 0 {
			t.Fatalf("%s: racy verdict with no races: %+v", detName, rep.Verdicts[0])
		}
	}
}

// TestDifferentialAll: detector=all fans a sequential trace out to every
// legal detector (including ESP-bags) and reports agreement.
func TestDifferentialAll(t *testing.T) {
	tr := recordRacyMonteCarlo(t)
	_, ts := newTestServer(t, Config{})

	resp, body := post(t, ts.URL+"/v1/analyze?detector=all&stats=1", tr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	rep := decodeReport(t, body)
	if rep.Agree == nil {
		t.Fatal("differential mode did not report agreement")
	}
	got := map[string]bool{}
	for _, v := range rep.Verdicts {
		got[v.Detector] = v.Racy
		if v.Stats == nil {
			t.Errorf("%s: stats=1 verdict missing snapshot", v.Detector)
		}
	}
	for _, want := range []string{"spd3", "fasttrack", "espbags", "eraser"} {
		if _, ok := got[want]; !ok {
			t.Errorf("differential verdicts missing %s (got %v)", want, got)
		}
	}
	if _, ok := got["none"]; ok {
		t.Error("uninstrumented baseline leaked into differential mode")
	}
	// RacyMonteCarlo's benign WW race is visible to every detector here;
	// the daemon must report unanimous agreement.
	if !*rep.Agree {
		t.Fatalf("verdicts disagree: %v", got)
	}
	for name, racy := range got {
		if !racy {
			t.Errorf("%s: verdict race-free, want racy", name)
		}
	}

	// A parallel trace must exclude the sequential-only detectors.
	parTrace := recordProgen(t, 1, false)
	resp, body = post(t, ts.URL+"/v1/analyze?detector=all", parTrace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("parallel all: status = %d\n%s", resp.StatusCode, body)
	}
	rep = decodeReport(t, body)
	for _, v := range rep.Verdicts {
		if v.Detector == "espbags" {
			t.Fatal("sequential-only espbags ran on a parallel trace in differential mode")
		}
	}
}

// TestConcurrentClients hammers the daemon from many goroutines (runs
// under the CI -race job): verdicts must stay consistent with the live
// run and the stats aggregate must account for every analysis.
func TestConcurrentClients(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	traces := make(map[int64][]byte, len(seeds))
	want := make(map[int64]bool, len(seeds))
	for _, seed := range seeds {
		traces[seed] = recordProgen(t, seed, true)
		want[seed] = liveVerdict(t, seed, "spd3")
	}

	_, ts := newTestServer(t, Config{MaxInFlight: 64})
	const clients, perClient = 8, 6
	var wg sync.WaitGroup
	errc := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				seed := seeds[(c+i)%len(seeds)]
				detName := []string{"spd3", "fasttrack"}[i%2]
				resp, body := post(t, ts.URL+"/v1/analyze?detector="+detName, traces[seed])
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("seed %d %s: status %d: %s", seed, detName, resp.StatusCode, body)
					return
				}
				rep := decodeReport(t, body)
				if rep.Verdicts[0].Racy != want[seed] {
					errc <- fmt.Errorf("seed %d %s: verdict %v, live %v", seed, detName, rep.Verdicts[0].Racy, want[seed])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	st := getStatsz(t, ts.URL)
	if got := st.Stats.Get(stats.SrvAnalyses); got != clients*perClient {
		t.Fatalf("srv.analyses = %d, want %d", got, clients*perClient)
	}
	// Region totals stay zero on replay (only live mem containers feed
	// them); the detector-side counters must have accumulated instead.
	if st.Stats.Get(stats.SrvBytesRead) == 0 || st.Stats.Get(stats.CASClean)+st.Stats.Get(stats.CASPublish) == 0 {
		t.Fatalf("stats aggregate empty: bytes=%d cas=%d/%d",
			st.Stats.Get(stats.SrvBytesRead), st.Stats.Get(stats.CASClean), st.Stats.Get(stats.CASPublish))
	}
}
