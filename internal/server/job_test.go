package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"spd3/internal/detect"
	"spd3/internal/stats"
	"spd3/internal/trace"
)

// gatedReal wraps a real detector behind the test gate: MainTask blocks
// until the gate opens, then the wrapped detector runs normally. Unlike
// the pure gate detector it produces real verdicts, which is what the
// restart test needs — a job interrupted mid-replay must come back with
// the *correct* result, not just any terminal state.
type gatedReal struct{ detect.Detector }

func (g gatedReal) MainTask(t *detect.Task, f *detect.Finish) {
	gate.mu.Lock()
	ch := gate.ch
	gate.mu.Unlock()
	if ch != nil {
		<-ch
	}
	g.Detector.MainTask(t, f)
}

func init() {
	detect.RegisterVariant("test-gate-spd3", func(o detect.FactoryOpts) detect.Detector {
		d, err := detect.New("spd3", o)
		if err != nil {
			panic(err)
		}
		return gatedReal{d}
	})
}

// submitV2 POSTs a trace to /v2/jobs with an optional tenant header.
func submitV2(t *testing.T, base, query, tenant string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v2/jobs"+query, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if tenant != "" {
		req.Header.Set("X-SPD3-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeJobStatus(t *testing.T, data []byte) *JobStatus {
	t.Helper()
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decoding job status: %v\n%s", err, data)
	}
	return &st
}

// jobState polls one job's state straight off the server's table.
func jobState(s *Server, id string) string {
	j := s.lookupJob(id)
	if j == nil {
		return ""
	}
	return j.manifest().State
}

// TestJobLifecycleV2 drives the native async path over HTTP: submit is
// 202 with a Location header, status moves queued→running→done, /result
// returns the envelope, and a second DELETE removes the finished job.
func TestJobLifecycleV2(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 2})
	defer s.Close()
	tr := recordRacyMonteCarlo(t)

	resp, body := submitV2(t, ts.URL, "?detector=spd3", "", tr)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d\n%s", resp.StatusCode, body)
	}
	st := decodeJobStatus(t, body)
	if st.ID == "" || st.Tenant != "default" {
		t.Fatalf("submit body: %+v", st)
	}
	if loc := resp.Header.Get("Location"); loc != "/v2/jobs/"+st.ID {
		t.Fatalf("Location = %q", loc)
	}

	waitFor(t, func() bool { return jobState(s, st.ID) == StateDone }, "job done")

	res, err := http.Get(ts.URL + "/v2/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(res.Body)
	res.Body.Close()
	rep := decodeReport(t, data)
	if len(rep.Verdicts) != 1 || !rep.Verdicts[0].Racy || rep.Verdicts[0].RaceCount == 0 {
		t.Fatalf("job result: %+v", rep)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v2/jobs/"+st.ID, nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d", del.StatusCode)
	}
	if s.lookupJob(st.ID) != nil {
		t.Fatal("job still in table after delete")
	}
}

// TestJobRestartResume is the daemon-restart oracle: a job killed
// mid-replay (manifest frozen in state running, as SIGKILL would leave
// it) must resume when a new daemon opens the same store, finish with
// the correct racy verdict, and leave no orphaned files in tmp/.
func TestJobRestartResume(t *testing.T) {
	dir := t.TempDir()
	tr := recordRacyMonteCarlo(t)

	s1, err := Open(Config{StoreDir: dir, MaxInFlight: 2, ShardWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	release := setGate()
	defer release()

	resp, body := submitV2(t, ts1.URL, "?detector=test-gate-spd3", "crash", tr)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d\n%s", resp.StatusCode, body)
	}
	id := decodeJobStatus(t, body).ID
	waitFor(t, func() bool { return jobState(s1, id) == StateRunning }, "job running")

	// Die. Kill freezes all manifest persistence first, then releasing
	// the gate lets the stuck replay goroutine drain away — whatever it
	// computes is never written, so the disk looks exactly as a SIGKILL
	// mid-replay would have left it.
	s1.Kill()
	release()
	ts1.Close()

	// A leftover staging file from the "crash" must not survive reopen.
	orphan := filepath.Join(dir, "tmp", "put-12345")
	if err := os.WriteFile(orphan, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{StoreDir: dir, MaxInFlight: 2, ShardWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	waitFor(t, func() bool { return terminalState(jobState(s2, id)) }, "resumed job terminal")
	j := s2.lookupJob(id)
	m := j.manifest()
	if m.State != StateDone {
		t.Fatalf("resumed job state = %s (%s), want done", m.State, m.Error)
	}
	if len(m.Result.Verdicts) != 1 || !m.Result.Verdicts[0].Racy || m.Result.Verdicts[0].RaceCount == 0 {
		t.Fatalf("resumed job result: %+v", m.Result)
	}

	st := getStatsz(t, ts2.URL)
	if st.Stats.Get(stats.JobResumed) != 1 {
		t.Errorf("job.resumed = %d, want 1", st.Stats.Get(stats.JobResumed))
	}
	tmps, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Errorf("tmp/ not empty after restart: %v", tmps)
	}
}

// TestTenantIsolation is the acceptance criterion for quotas: tenant
// B exhausting its per-tenant job quota is rejected with 429 +
// Retry-After, while tenant A's jobs submit and complete untouched —
// B's exhaustion never delays A.
func TestTenantIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxInFlight:  4,
		ShardWorkers: 2,
		Quota:        QuotaConfig{MaxQueuedJobs: 1},
	})
	defer s.Close()
	tr := recordRacyMonteCarlo(t)
	release := setGate()
	defer release()

	// B's one allowed job parks on the gate.
	resp, body := submitV2(t, ts.URL, "?detector=test-gate", "tenant-b", tr)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tenant-b submit = %d\n%s", resp.StatusCode, body)
	}
	bID := decodeJobStatus(t, body).ID
	waitFor(t, func() bool { return jobState(s, bID) == StateRunning }, "tenant-b job running")

	// B's second job overflows B's quota.
	resp, body = submitV2(t, ts.URL, "?detector=spd3", "tenant-b", tr)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("tenant-b overflow = %d, want 429\n%s", resp.StatusCode, body)
	}
	// The queued-jobs rejection advertises its fixed 5s backoff; clients
	// schedule retries off this value, so pin it, not just its presence.
	if ra := resp.Header.Get("Retry-After"); ra != "5" {
		t.Errorf("queued-jobs 429 Retry-After = %q, want \"5\"", ra)
	}

	// A is a different tenant: same daemon, fresh quota. Its job must
	// run to completion while B is both gated and over quota.
	resp, body = submitV2(t, ts.URL, "?detector=spd3", "tenant-a", tr)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tenant-a submit = %d, want 202 (B's quota leaked across tenants)\n%s", resp.StatusCode, body)
	}
	aID := decodeJobStatus(t, body).ID
	waitFor(t, func() bool { return jobState(s, aID) == StateDone }, "tenant-a job done while B is parked")
	if j := s.lookupJob(aID); !j.manifest().Result.Verdicts[0].Racy {
		t.Error("tenant-a verdict lost its races")
	}

	release()
	waitFor(t, func() bool { return terminalState(jobState(s, bID)) }, "tenant-b job finished after release")
	if st := getStatsz(t, ts.URL); st.Stats.Get(stats.QuotaDenied) != 1 {
		t.Errorf("quota.denied = %d, want 1", st.Stats.Get(stats.QuotaDenied))
	}
}

// TestDifferentialV1V2Amplified runs the same amplified trace through
// the synchronous /v1 path and a native /v2 job and requires identical
// results: same verdicts, same race sets, same segment count. This is
// the acceptance differential — the job machinery may not change what
// the daemon finds.
func TestDifferentialV1V2Amplified(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxInFlight:     2,
		ShardWorkers:    2,
		MinSegmentBytes: 1 << 10,
	})
	defer s.Close()
	base := recordRacyMonteCarlo(t)

	const scale = 64
	amp1, err := trace.NewAmplifier(base, scale)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postReader(t, ts.URL+"/v1/analyze?detector=all", amp1)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 status = %d\n%s", resp.StatusCode, body)
	}
	v1 := decodeReport(t, body)

	amp2, err := trace.NewAmplifier(base, scale)
	if err != nil {
		t.Fatal(err)
	}
	resp, body = postReader(t, ts.URL+"/v2/jobs?detector=all", amp2)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("v2 submit = %d\n%s", resp.StatusCode, body)
	}
	id := decodeJobStatus(t, body).ID
	waitFor(t, func() bool { return terminalState(jobState(s, id)) }, "v2 job terminal")
	m := s.lookupJob(id).manifest()
	if m.State != StateDone {
		t.Fatalf("v2 job state = %s (%s)", m.State, m.Error)
	}
	v2 := m.Result

	if v1.Sequential != v2.Sequential || v1.TraceBytes != v2.TraceBytes {
		t.Errorf("envelope drift: v1 seq=%v bytes=%d, v2 seq=%v bytes=%d",
			v1.Sequential, v1.TraceBytes, v2.Sequential, v2.TraceBytes)
	}
	if v1.Segments != v2.Segments || !v1.Sharded || !v2.Sharded || v1.Segments < 2 {
		t.Errorf("segments: v1 %d (sharded=%v) v2 %d (sharded=%v), want equal and >1",
			v1.Segments, v1.Sharded, v2.Segments, v2.Sharded)
	}
	if len(v1.Verdicts) != len(v2.Verdicts) {
		t.Fatalf("verdict count: v1 %d v2 %d", len(v1.Verdicts), len(v2.Verdicts))
	}
	for i := range v1.Verdicts {
		a, b := v1.Verdicts[i], v2.Verdicts[i]
		if a.Detector != b.Detector || a.Racy != b.Racy || a.RaceCount != b.RaceCount {
			t.Errorf("verdict %s: v1 racy=%v count=%d, v2 %s racy=%v count=%d",
				a.Detector, a.Racy, a.RaceCount, b.Detector, b.Racy, b.RaceCount)
			continue
		}
		if len(a.Races) != len(b.Races) {
			t.Errorf("%s: race list length %d vs %d", a.Detector, len(a.Races), len(b.Races))
			continue
		}
		// Compare by the dedup identity (kind, region, index): the
		// Prev/Cur witnesses depend on which shard saw the access
		// first, which varies with scheduling.
		for k := range a.Races {
			ra, rb := a.Races[k], b.Races[k]
			if ra.Kind != rb.Kind || ra.Region != rb.Region || ra.Index != rb.Index {
				t.Errorf("%s race %d: v1 %+v v2 %+v", a.Detector, k, ra, rb)
			}
		}
	}
}

// TestStoreDedupAndSweep pins the CAS economics: submitting the same
// trace twice stores its segments once (the second job is pure dedup
// hits, but its quota charge stays pre-dedup), and deleting both jobs
// makes the next GC pass reclaim every blob.
func TestStoreDedupAndSweep(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxInFlight:     2,
		ShardWorkers:    2,
		MinSegmentBytes: 1 << 10,
	})
	defer s.Close()
	base := recordRacyMonteCarlo(t)
	amplified := func() io.Reader {
		amp, err := trace.NewAmplifier(base, 64)
		if err != nil {
			t.Fatal(err)
		}
		return amp
	}

	resp, body := postReader(t, ts.URL+"/v2/jobs?detector=spd3", amplified())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d\n%s", resp.StatusCode, body)
	}
	st1 := decodeJobStatus(t, body)
	if st1.Segments < 2 {
		t.Fatalf("segments = %d, want the splitter to cut", st1.Segments)
	}
	blobs1, bytes1 := s.Store().Blobs()
	if blobs1 == 0 || bytes1 == 0 {
		t.Fatal("no blobs stored")
	}

	// Same bytes again: a fully deduplicated second job.
	resp, body = postReader(t, ts.URL+"/v2/jobs?detector=spd3", amplified())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d\n%s", resp.StatusCode, body)
	}
	st2 := decodeJobStatus(t, body)
	blobs2, bytes2 := s.Store().Blobs()
	if blobs2 != blobs1 || bytes2 != bytes1 {
		t.Errorf("cas grew on duplicate submit: %d/%d → %d/%d blobs/bytes", blobs1, bytes1, blobs2, bytes2)
	}
	if st2.StoredBytes != st1.StoredBytes || st2.StoredBytes == 0 {
		t.Errorf("quota charge %d (first %d): dedup must not launder quota", st2.StoredBytes, st1.StoredBytes)
	}
	if hits := getStatsz(t, ts.URL).Stats.Get(stats.StoreDedupHits); hits < int64(st2.Segments) {
		t.Errorf("store.dedup_hits = %d, want >= %d (every second-job segment)", hits, st2.Segments)
	}

	waitFor(t, func() bool { return jobState(s, st1.ID) == StateDone && jobState(s, st2.ID) == StateDone }, "both jobs done")

	for _, id := range []string{st1.ID, st2.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v2/jobs/"+id, nil)
		del, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		del.Body.Close()
		if del.StatusCode != http.StatusNoContent {
			t.Fatalf("delete %s = %d", id, del.StatusCode)
		}
	}
	if _, swept := s.GC(); swept != blobs1 {
		t.Errorf("swept %d blobs, want %d", swept, blobs1)
	}
	if n, b := s.Store().Blobs(); n != 0 || b != 0 {
		t.Errorf("cas not empty after sweep: %d blobs / %d bytes", n, b)
	}
}

// TestSweepVsSubmitRace hammers the GC/submit interleaving the sweep
// must survive: a garbage blob sits in the CAS, a sweep runs, and a
// concurrent submit dedups onto that same blob and publishes a manifest
// naming it. Whatever order the two land in, the manifest's segment
// must remain openable — the sweep may never delete a blob a live
// manifest references (the resubmit-after-expiry case).
func TestSweepVsSubmitRace(t *testing.T) {
	st, err := openStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		data := []byte(fmt.Sprintf("segment-%d-payload", i))
		// Orphan the blob first: stored, referenced by no manifest.
		if _, _, err := st.Put(data); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, serr := st.Sweep(0); serr != nil {
				t.Errorf("sweep: %v", serr)
			}
		}()
		st.BeginWrite()
		ref, _, err := st.Put(data)
		if err != nil {
			st.EndWrite()
			t.Fatal(err)
		}
		m := &Manifest{ID: fmt.Sprintf("race-%d", i), Tenant: "default",
			State: StateQueued, Segments: []SegmentRef{ref}}
		if err := st.WriteManifest(m); err != nil {
			st.EndWrite()
			t.Fatal(err)
		}
		st.EndWrite()
		wg.Wait()
		rc, err := st.Open(ref)
		if err != nil {
			t.Fatalf("iteration %d: live blob swept out from under its manifest: %v", i, err)
		}
		got, _ := io.ReadAll(rc)
		rc.Close()
		if !bytes.Equal(got, data) {
			t.Fatalf("iteration %d: blob content corrupted", i)
		}
		if err := st.DeleteManifest(m.ID); err != nil {
			t.Fatal(err)
		}
	}
}

// listJobs fetches GET /v2/jobs with an optional tenant header.
func listJobs(t *testing.T, base, tenant string) *JobList {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v2/jobs", nil)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-SPD3-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d", resp.StatusCode)
	}
	var list JobList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	return &list
}

// TestJobListTenantScope pins the listing's tenant mapping to the
// submit side's: no header means the "default" tenant, never a
// cross-tenant view — job ids grant status/result/cancel access, so a
// headerless GET /v2/jobs must not enumerate other tenants' jobs.
func TestJobListTenantScope(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 2, ShardWorkers: 2})
	defer s.Close()
	tr := recordRacyMonteCarlo(t)

	resp, body := submitV2(t, ts.URL, "?detector=spd3", "", tr)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("default submit = %d\n%s", resp.StatusCode, body)
	}
	defID := decodeJobStatus(t, body).ID
	resp, body = submitV2(t, ts.URL, "?detector=spd3", "tenant-x", tr)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tenant-x submit = %d\n%s", resp.StatusCode, body)
	}
	xID := decodeJobStatus(t, body).ID

	noHeader := listJobs(t, ts.URL, "")
	if len(noHeader.Jobs) != 1 || noHeader.Jobs[0].ID != defID || noHeader.Jobs[0].Tenant != "default" {
		t.Errorf("headerless list leaked across tenants: %+v", noHeader.Jobs)
	}
	asX := listJobs(t, ts.URL, "tenant-x")
	if len(asX.Jobs) != 1 || asX.Jobs[0].ID != xID {
		t.Errorf("tenant-x list = %+v, want exactly its own job", asX.Jobs)
	}
}

// TestChunkedSubmitStoredBytesQuota closes the chunked-upload quota
// hole: with no Content-Length the admission estimate is 0, so the
// stored-bytes ceiling must be re-checked when the spill's real size is
// settled. The oversized chunked submit is refused with 429, the
// tenant's gauge stays uncharged (a small follow-up submit succeeds),
// and the refused upload's blobs are sweepable garbage.
func TestChunkedSubmitStoredBytesQuota(t *testing.T) {
	base := recordRacyMonteCarlo(t)
	s, ts := newTestServer(t, Config{
		MaxInFlight:     2,
		ShardWorkers:    2,
		MinSegmentBytes: 1 << 10,
		Quota:           QuotaConfig{MaxStoredBytes: int64(2 * len(base))},
	})
	defer s.Close()

	amp, err := trace.NewAmplifier(base, 64)
	if err != nil {
		t.Fatal(err)
	}
	// postReader ships the amplifier chunked (unknown length), so the
	// admit-time estimate is 0 and only the settle can refuse it.
	resp, body := postReader(t, ts.URL+"/v2/jobs?detector=spd3", amp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized chunked submit = %d, want 429\n%s", resp.StatusCode, body)
	}
	// Stored-bytes exhaustion clears slowly (a job must be deleted or
	// swept), hence the longer fixed 30s backoff; pin the value.
	if ra := resp.Header.Get("Retry-After"); ra != "30" {
		t.Errorf("stored-bytes 429 Retry-After = %q, want \"30\"", ra)
	}
	if len(listJobs(t, ts.URL, "").Jobs) != 0 {
		t.Error("refused submit left a job behind")
	}

	// The failed settle must not have charged the gauge: a submit that
	// fits the ceiling goes through.
	resp, body = postReader(t, ts.URL+"/v2/jobs?detector=spd3", struct{ io.Reader }{bytes.NewReader(base)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("in-quota submit after refusal = %d (gauge leaked?)\n%s", resp.StatusCode, body)
	}
	id := decodeJobStatus(t, body).ID
	waitFor(t, func() bool { return jobState(s, id) == StateDone }, "in-quota job done")

	// The refused upload's spilled blobs have no manifest: one GC pass
	// after deleting the good job empties the CAS.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v2/jobs/"+id, nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	s.GC()
	if n, b := s.Store().Blobs(); n != 0 || b != 0 {
		t.Errorf("refused submit's blobs not reclaimed: %d blobs / %d bytes", n, b)
	}
}

// TestDrainOrphanedQueuedJobDelete covers the drain-refused executor:
// a job submitted while the server drains stays queued with nothing to
// observe a cancellation, so DELETE must remove it outright (manifest
// gone, quota released) rather than answering 202 forever.
func TestDrainOrphanedQueuedJobDelete(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 2, ShardWorkers: 2})
	defer s.Close()
	tr := recordRacyMonteCarlo(t)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The HTTP handler refuses submits while draining, so inject the
	// job underneath it — the executor then refuses it at beginJob.
	j, err := s.submitJob(context.Background(), bytes.NewReader(tr), submitOpts{
		detector: "spd3", tenant: "default",
		shard: s.pool != nil, estimate: int64(len(tr)),
	})
	if err != nil {
		t.Fatal(err)
	}
	id := j.manifest().ID
	waitFor(t, func() bool {
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.noExec
	}, "executor to refuse the job")
	if st := jobState(s, id); st != StateQueued {
		t.Fatalf("job state = %s, want queued", st)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v2/jobs/"+id, nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusNoContent {
		t.Fatalf("delete of orphaned queued job = %d, want 204", del.StatusCode)
	}
	if s.lookupJob(id) != nil {
		t.Error("orphaned job still in table after delete")
	}
	manifests, err := s.Store().LoadManifests()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range manifests {
		if m.ID == id {
			t.Error("orphaned job's manifest survived delete")
		}
	}
}

// TestDeleteAfterDoneLeavesNoManifest hammers the done→DELETE window:
// the moment a poller can observe state done, the terminal manifest
// must already be on disk, so the DELETE that follows removes it for
// good. (Before the write-then-publish ordering in finalizeJob, the
// terminal WriteManifest could land after the DELETE's removal,
// resurrecting a manifest no table entry owned — its blobs were then
// pinned against every future sweep.)
func TestDeleteAfterDoneLeavesNoManifest(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 4, ShardWorkers: 2})
	defer s.Close()
	tr := recordRacyMonteCarlo(t)

	for i := 0; i < 25; i++ {
		resp, body := submitV2(t, ts.URL, "?detector=spd3", "", tr)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit = %d\n%s", resp.StatusCode, body)
		}
		id := decodeJobStatus(t, body).ID
		// Poll the in-memory state as tightly as possible and DELETE the
		// instant it turns terminal — the adversarial client schedule.
		waitFor(t, func() bool { return terminalState(jobState(s, id)) }, "job terminal")
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v2/jobs/"+id, nil)
		del, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		del.Body.Close()
		if del.StatusCode != http.StatusNoContent {
			t.Fatalf("delete = %d, want 204", del.StatusCode)
		}
		manifests, err := s.Store().LoadManifests()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range manifests {
			if m.ID == id {
				t.Fatalf("iteration %d: deleted job's manifest resurrected on disk", i)
			}
		}
	}
	if _, sweptBlobs, err := s.Store().Sweep(0); err != nil {
		t.Fatal(err)
	} else if n, b := s.Store().Blobs(); n != 0 || b != 0 {
		t.Errorf("blobs pinned after all jobs deleted: %d blobs / %d bytes (swept %d)", n, b, sweptBlobs)
	}
}

// postReader is post for streaming bodies (amplifiers are single-use).
func postReader(t *testing.T, url string, body io.Reader) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestPerTenantSampling is the service half of the sampling acceptance
// criterion: a tenant configured with a sampling spec replays gated
// (sample.* counters move, a governor gauge appears in /statsz), an
// unconfigured tenant replays fully checked, a per-request sample=
// override takes precedence over tenant config, and a bad spec is
// refused at submit.
func TestPerTenantSampling(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxInFlight: 2,
		Sampling: SamplingConfig{
			Tenants: map[string]string{"sampled": "bernoulli:0.5"},
		},
	})
	defer s.Close()
	tr := recordRacyMonteCarlo(t)

	runJob := func(query, tenant string) *Report {
		t.Helper()
		resp, body := submitV2(t, ts.URL, query, tenant, tr)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %q tenant %q = %d\n%s", query, tenant, resp.StatusCode, body)
		}
		id := decodeJobStatus(t, body).ID
		waitFor(t, func() bool { return jobState(s, id) == StateDone }, "job done")
		res, err := http.Get(ts.URL + "/v2/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(res.Body)
		res.Body.Close()
		return decodeReport(t, data)
	}

	// An unconfigured tenant replays unsampled: every check runs, no
	// tallies, no gauges.
	rep := runJob("?detector=spd3", "")
	if !rep.Verdicts[0].Racy {
		t.Fatal("unsampled replay lost the seeded race")
	}
	st := getStatsz(t, ts.URL)
	if n := st.Stats.Get(stats.SampleChecked) + st.Stats.Get(stats.SampleSkipped); n != 0 {
		t.Errorf("unsampled tenant produced %d sample.* tallies", n)
	}
	if len(st.Sampling) != 0 {
		t.Errorf("unsampled tenant produced sampling gauges: %+v", st.Sampling)
	}

	// The configured tenant's replay runs behind its bernoulli gate.
	runJob("?detector=spd3", "sampled")
	st = getStatsz(t, ts.URL)
	checked := st.Stats.Get(stats.SampleChecked)
	skipped := st.Stats.Get(stats.SampleSkipped)
	if checked == 0 || skipped == 0 {
		t.Errorf("bernoulli:0.5 tallies checked=%d skipped=%d; want both nonzero", checked, skipped)
	}
	if len(st.Sampling) != 1 || st.Sampling[0] != (TenantSampling{Tenant: "sampled", Mode: "bernoulli", Rate: 0.5}) {
		t.Errorf("sampling gauges = %+v, want one bernoulli:0.5 row for tenant sampled", st.Sampling)
	}

	// A per-request override beats tenant config: the sampled tenant at
	// burst:1 checks everything, so the verdict must keep its race.
	rep = runJob("?detector=spd3&sample=burst:1", "sampled")
	if !rep.Verdicts[0].Racy {
		t.Fatal("burst:1 override lost the seeded race")
	}
	st = getStatsz(t, ts.URL)
	if len(st.Sampling) != 2 {
		t.Fatalf("sampling gauges = %+v, want the override to add a burst row", st.Sampling)
	}
	if g := st.Sampling[0]; g != (TenantSampling{Tenant: "sampled", Mode: "bernoulli", Rate: 0.5}) {
		t.Errorf("gauge[0] = %+v", g)
	}
	if g := st.Sampling[1]; g.Tenant != "sampled" || g.Mode != "burst" || g.Rate != 1 {
		t.Errorf("gauge[1] = %+v, want tenant sampled burst rate 1", g)
	}

	// Bad specs are refused before any bytes are stored, on both APIs.
	resp, body := submitV2(t, ts.URL, "?detector=spd3&sample=coin:0.5", "", tr)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("v2 bad sample spec = %d, want 400\n%s", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/v1/analyze?detector=spd3&sample=bernoulli:7", tr)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("v1 bad sample spec = %d, want 400\n%s", resp.StatusCode, body)
	}
}
