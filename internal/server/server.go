// Package server implements spd3d, the networked trace-analysis service:
// a stdlib-only HTTP daemon that accepts traces recorded by
// internal/trace and replays them into any detector from the detect
// registry.
//
// SPD3's certification guarantee (PAPER §5, Theorem 1) makes traces the
// natural unit of work for a detection service: one recorded execution
// certifies all schedules of that input, so a program records once at
// near-zero overhead and the daemon analyzes the trace many times — under
// different detectors, on different machines, long after the run.
//
// API:
//
//	POST /v1/analyze?detector=<name>   trace body → JSON race report
//	POST /v1/analyze?detector=all      differential: every legal detector, verdict agreement
//	GET  /v1/detectors                 registry listing
//	GET  /healthz                      liveness (503 while draining)
//	GET  /statsz                       merged stats snapshot + server counters
//
// Robustness is the point, not an afterthought: in-flight analyses are
// semaphore-bounded (429 when saturated), bodies are size-capped (413),
// per-request deadlines propagate into the replay loop through
// trace.Limits.Cancel (a deadline-exceeded request stops the replay, it
// does not run to completion in the background), and Drain lets the
// daemon finish in-flight analyses while refusing new ones with 503.
// Decode failures map to precise status codes via the trace package's
// typed errors: 400 malformed, 413 over resource limits, 422
// sequential-only detector on a parallel trace, 404 unknown detector.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spd3/internal/detect"
	"spd3/internal/stats"
	"spd3/internal/trace"
)

// Tool and Version identify the daemon in every JSON envelope, in the
// same style as spd3 -stats and spd3vet -json.
const (
	Tool    = "spd3d"
	Version = "1.0.0"
)

// Config tunes one Server. The zero value gets sensible defaults from
// New.
type Config struct {
	// MaxInFlight bounds concurrent analyses; further analyze requests
	// are rejected with 429. Defaults to GOMAXPROCS.
	MaxInFlight int
	// MaxBodyBytes caps the trace body size; larger uploads get 413.
	// Defaults to 64 MiB.
	MaxBodyBytes int64
	// RequestTimeout is the per-request analysis deadline; when it
	// expires the replay is canceled and the request answered with 504.
	// Defaults to 60s; negative disables.
	RequestTimeout time.Duration
	// Limits bounds the resources one replay may demand. The zero
	// value means trace.DefaultLimits. Cancel is overwritten per
	// request.
	Limits trace.Limits
	// MaxRacesPerReport caps the races carried in one JSON verdict
	// (the verdict stays exact; Capped marks truncation). Defaults to
	// 256.
	MaxRacesPerReport int
	// Log receives one line per analysis; nil disables.
	Log *log.Logger
}

// Server is the spd3d request handler plus its admission control and
// counters. Create with New; serve via Handler.
type Server struct {
	cfg    Config
	rec    *stats.Recorder // srv.* counters, sharded by request sequence
	reqSeq atomic.Int64
	sem    chan struct{}
	start  time.Time
	mux    *http.ServeMux

	mu       sync.Mutex
	draining bool
	active   int
	idle     chan struct{}  // non-nil while a Drain waits for active==0
	agg      stats.Snapshot // analysis counters merged across requests
}

// New returns a Server with cfg's zero fields defaulted.
func New(cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 60 * time.Second
	}
	if cfg.Limits == (trace.Limits{}) {
		cfg.Limits = trace.DefaultLimits()
	}
	if cfg.MaxRacesPerReport <= 0 {
		cfg.MaxRacesPerReport = 256
	}
	s := &Server{
		cfg:   cfg,
		rec:   stats.New(0),
		sem:   make(chan struct{}, cfg.MaxInFlight),
		start: time.Now(),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("GET /v1/detectors", s.handleDetectors)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	return s
}

// Handler returns the daemon's HTTP handler; it counts every request
// into the srv.requests counter before routing.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.shard().Inc(stats.SrvRequests)
		s.mux.ServeHTTP(w, r)
	})
}

// shard picks a stats shard by request arrival order, so concurrent
// requests bump srv.* counters without sharing a cache line.
func (s *Server) shard() *stats.Shard {
	return s.rec.Shard(int(s.reqSeq.Add(1)))
}

// begin admits one analysis into the drain set; false while draining.
func (s *Server) begin() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.active++
	return true
}

// end retires one analysis and wakes a pending Drain when the last one
// leaves.
func (s *Server) end() {
	s.mu.Lock()
	s.active--
	if s.active == 0 && s.draining && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
	s.mu.Unlock()
}

// Drain switches the server into draining mode — new analyze requests
// are refused with 503, /healthz flips to 503 — and blocks until every
// in-flight analysis has finished or ctx expires. It is the first half
// of a graceful shutdown; pair it with http.Server.Shutdown.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.active == 0 {
		s.mu.Unlock()
		return nil
	}
	if s.idle == nil {
		s.idle = make(chan struct{})
	}
	idle := s.idle
	s.mu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// InFlight returns the number of analyses currently running.
func (s *Server) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Race is one reported race in wire form.
type Race struct {
	Kind   string `json:"kind"`
	Region string `json:"region"`
	Index  int    `json:"index"`
	Prev   string `json:"prev"`
	Cur    string `json:"cur"`
}

// Verdict is one detector's result on one trace.
type Verdict struct {
	Detector   string          `json:"detector"`
	Racy       bool            `json:"racy"`
	RaceCount  int             `json:"race_count"`
	Races      []Race          `json:"races"`
	Capped     bool            `json:"capped,omitempty"`
	DurationMS float64         `json:"duration_ms"`
	Stats      *stats.Snapshot `json:"stats,omitempty"` // with ?stats=1
}

// Report is the analyze endpoint's response envelope.
type Report struct {
	Tool       string    `json:"tool"`
	Version    string    `json:"version"`
	Detector   string    `json:"detector"` // as requested; "all" for differential mode
	Sequential bool      `json:"sequential"`
	TraceBytes int64     `json:"trace_bytes"`
	Verdicts   []Verdict `json:"verdicts"`
	// Agree is set in differential mode: whether every detector
	// reached the same racy/race-free verdict.
	Agree *bool `json:"agree,omitempty"`
}

// ErrorReport is the JSON body of every non-200 response.
type ErrorReport struct {
	Tool    string `json:"tool"`
	Version string `json:"version"`
	Status  int    `json:"status"`
	Error   string `json:"error"`
}

// Statsz is the /statsz response: server gauges plus the merged
// observability snapshot (srv.* counters and the analysis counters
// accumulated across every completed replay).
type Statsz struct {
	Tool          string         `json:"tool"`
	Version       string         `json:"version"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	InFlight      int            `json:"in_flight"`
	MaxInFlight   int            `json:"max_in_flight"`
	Draining      bool           `json:"draining"`
	Stats         stats.Snapshot `json:"stats"`
}

// DetectorList is the /v1/detectors response.
type DetectorList struct {
	Tool      string               `json:"tool"`
	Version   string               `json:"version"`
	Detectors []detect.Description `json:"detectors"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, ErrorReport{Tool: Tool, Version: Version, Status: status, Error: fmt.Sprintf(format, args...)})
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

// statusFor maps a replay decode failure to its HTTP status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, trace.ErrSequentialOnly):
		return http.StatusUnprocessableEntity // 422
	case errors.Is(err, trace.ErrLimit):
		return http.StatusRequestEntityTooLarge // 413
	case errors.Is(err, trace.ErrBadMagic), errors.Is(err, trace.ErrTruncated), errors.Is(err, trace.ErrMalformed):
		return http.StatusBadRequest // 400
	default:
		return http.StatusInternalServerError
	}
}

// analyze replays data into a fresh instance of the named detector and
// folds the run's stats into the server aggregate.
func (s *Server) analyze(name string, data []byte, lim trace.Limits, withStats bool) (Verdict, error) {
	sink := detect.NewSink(false, s.cfg.MaxRacesPerReport)
	rec := stats.New(1)
	sink.SetStats(rec.Shard(0))
	det, err := detect.New(name, detect.FactoryOpts{Sink: sink, Stats: rec})
	if err != nil {
		return Verdict{}, err
	}
	start := time.Now()
	replayErr := trace.ReplayWithLimits(bytes.NewReader(data), det, lim)
	dur := time.Since(start)

	snap := rec.Snapshot()
	snap.Footprint = det.Footprint()
	s.mu.Lock()
	s.agg.Merge(snap)
	s.mu.Unlock()
	if replayErr != nil {
		return Verdict{}, replayErr
	}

	races := sink.Races()
	v := Verdict{
		Detector:   name,
		Racy:       !sink.Empty(),
		RaceCount:  len(races),
		Races:      make([]Race, 0, len(races)),
		Capped:     sink.Capped(),
		DurationMS: float64(dur) / float64(time.Millisecond),
	}
	for _, r := range races {
		v.Races = append(v.Races, Race{Kind: r.Kind.String(), Region: r.Region, Index: r.Index, Prev: r.PrevStep, Cur: r.CurStep})
	}
	if withStats {
		v.Stats = &snap
	}
	return v, nil
}

// isSequentialTrace peeks at the recorded executor flag without decoding
// the stream; a malformed header is caught later by the replay itself.
func isSequentialTrace(data []byte) bool {
	const headerLen = 9 // magic + executor byte
	return len(data) >= headerLen && data[headerLen-1] == 1
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("detector")
	if name == "" {
		name = "spd3"
	}
	if name != "all" && !detect.Registered(name) {
		s.writeError(w, http.StatusNotFound, "unknown detector %q (have %s, or \"all\")",
			name, strings.Join(detect.Names(), ", "))
		return
	}

	// Admission control before touching the body: a saturated or
	// draining server sheds load without reading uploads.
	if !s.begin() {
		s.shard().Inc(stats.SrvRejected)
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.end()
	select {
	case s.sem <- struct{}{}:
	default:
		s.shard().Inc(stats.SrvRejected)
		s.writeError(w, http.StatusTooManyRequests, "server saturated: %d analyses in flight", s.cfg.MaxInFlight)
		return
	}
	defer func() { <-s.sem }()

	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	s.shard().Add(stats.SrvBytesRead, int64(len(data)))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeError(w, http.StatusRequestEntityTooLarge, "trace exceeds the %d-byte body cap", mbe.Limit)
			return
		}
		s.shard().Inc(stats.SrvCanceled)
		s.writeError(w, http.StatusBadRequest, "reading trace body: %v", err)
		return
	}

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	lim := s.cfg.Limits
	lim.Cancel = ctx.Done()
	withStats := r.URL.Query().Get("stats") != ""

	rep := &Report{
		Tool:       Tool,
		Version:    Version,
		Detector:   name,
		Sequential: isSequentialTrace(data),
		TraceBytes: int64(len(data)),
	}

	var firstErr error
	if name == "all" {
		rep.Verdicts, firstErr = s.analyzeAll(rep.Sequential, data, lim, withStats)
		if firstErr == nil {
			agree := true
			for _, v := range rep.Verdicts {
				agree = agree && v.Racy == rep.Verdicts[0].Racy
			}
			rep.Agree = &agree
		}
	} else {
		var v Verdict
		v, firstErr = s.analyze(name, data, lim, withStats)
		rep.Verdicts = []Verdict{v}
	}

	if firstErr != nil {
		if errors.Is(firstErr, trace.ErrCanceled) {
			s.shard().Inc(stats.SrvCanceled)
			s.logf("analyze detector=%s bytes=%d: canceled (%v)", name, len(data), ctx.Err())
			s.writeError(w, http.StatusGatewayTimeout, "analysis canceled: %v", ctx.Err())
			return
		}
		s.logf("analyze detector=%s bytes=%d: %v", name, len(data), firstErr)
		s.writeError(w, statusFor(firstErr), "%v", firstErr)
		return
	}
	s.shard().Add(stats.SrvAnalyses, int64(len(rep.Verdicts)))
	s.logf("analyze detector=%s bytes=%d verdicts=%d racy=%v", name, len(data), len(rep.Verdicts), rep.Verdicts[0].Racy)
	s.writeJSON(w, http.StatusOK, rep)
}

// analyzeAll is differential mode: one trace fanned out concurrently to
// every registered detector that can legally consume it (sequential-only
// detectors join only for depth-first traces; the uninstrumented "none"
// baseline has no verdict and is skipped).
func (s *Server) analyzeAll(sequential bool, data []byte, lim trace.Limits, withStats bool) ([]Verdict, error) {
	var names []string
	for _, d := range detect.Describe() {
		if d.Name == "none" || (d.Sequential && !sequential) {
			continue
		}
		names = append(names, d.Name)
	}
	verdicts := make([]Verdict, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func() {
			defer wg.Done()
			verdicts[i], errs[i] = s.analyze(name, data, lim, withStats)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return verdicts, nil
}

func (s *Server) handleDetectors(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, DetectorList{Tool: Tool, Version: Version, Detectors: detect.Describe()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Tool    string `json:"tool"`
		Version string `json:"version"`
		Status  string `json:"status"`
	}
	if s.Draining() {
		s.writeJSON(w, http.StatusServiceUnavailable, health{Tool, Version, "draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, health{Tool, Version, "ok"})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	snap := s.rec.Snapshot()
	s.mu.Lock()
	snap.Merge(s.agg)
	inFlight, draining := s.active, s.draining
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, Statsz{
		Tool:          Tool,
		Version:       Version,
		UptimeSeconds: time.Since(s.start).Seconds(),
		InFlight:      inFlight,
		MaxInFlight:   s.cfg.MaxInFlight,
		Draining:      draining,
		Stats:         snap,
	})
}
