// Package server implements spd3d, the networked trace-analysis service:
// a stdlib-only HTTP daemon that accepts traces recorded by
// internal/trace and replays them into any detector from the detect
// registry.
//
// SPD3's certification guarantee (PAPER §5, Theorem 1) makes traces the
// natural unit of work for a detection service: one recorded execution
// certifies all schedules of that input, so a program records once at
// near-zero overhead and the daemon analyzes the trace many times — under
// different detectors, on different machines, long after the run.
//
// API:
//
//	POST /v1/analyze?detector=<name>   trace body → JSON race report
//	POST /v1/analyze?detector=all      differential: every legal detector, verdict agreement
//	GET  /v1/detectors                 registry listing
//	GET  /healthz                      liveness (503 while draining)
//	GET  /statsz                       merged stats snapshot + server counters
//
// Robustness is the point, not an afterthought: in-flight analyses are
// semaphore-bounded (429 when saturated), bodies are size-capped (413),
// per-request deadlines propagate into the replay loop through
// trace.Limits.Cancel (a deadline-exceeded request stops the replay, it
// does not run to completion in the background), and Drain lets the
// daemon finish in-flight analyses while refusing new ones with 503.
// Decode failures map to precise status codes via the trace package's
// typed errors: 400 malformed, 413 over resource limits, 422
// sequential-only detector on a parallel trace, 404 unknown detector.
//
// The analyze path streams and shards. The request body is never
// buffered in full: bytes flow through a counting limiter (overflow →
// the same trace.ErrLimit → 413 path as declared-resource limits) and a
// cancel-aware reader straight into the trace decoder, so daemon memory
// stays proportional to the live task set of the replay — SPD3's O(1)
// per-location space guarantee end-to-end — and a trace far larger than
// the daemon's memory ceiling analyzes to the exact verdict a buffered
// replay would reach. On top of that, a finish-scope splitter cuts the
// stream into independently replayable segments fanned across a bounded
// worker pool (see shard.go), so one giant trace parallelizes instead
// of pinning a slot for its full serial replay time.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spd3/internal/detect"
	"spd3/internal/stats"
	"spd3/internal/trace"
)

// Tool and Version identify the daemon in every JSON envelope, in the
// same style as spd3 -stats and spd3vet -json.
const (
	Tool    = "spd3d"
	Version = "1.0.0"
)

// Config tunes one Server. The zero value gets sensible defaults from
// New.
type Config struct {
	// MaxInFlight bounds concurrent analyses; further analyze requests
	// are rejected with 429. Defaults to GOMAXPROCS.
	MaxInFlight int
	// MaxBodyBytes caps the trace body size; larger uploads get 413.
	// Defaults to 64 MiB.
	MaxBodyBytes int64
	// RequestTimeout is the per-request analysis deadline; when it
	// expires the replay is canceled and the request answered with 504.
	// Defaults to 60s; negative disables.
	RequestTimeout time.Duration
	// Limits bounds the resources one replay may demand. The zero
	// value means trace.DefaultLimits. Cancel is overwritten per
	// request.
	Limits trace.Limits
	// MaxRacesPerReport caps the races carried in one JSON verdict
	// (the verdict stays exact; Capped marks truncation). Defaults to
	// 256.
	MaxRacesPerReport int
	// ShardWorkers bounds concurrent segment replays across the whole
	// daemon (the shard pool). 0 means GOMAXPROCS; negative disables
	// sharding entirely, so every analysis streams through a single
	// replay.
	ShardWorkers int
	// MinSegmentBytes coalesces tiny finish scopes before a cut.
	// Defaults to 256 KiB.
	MinSegmentBytes int
	// MaxSegmentBytes bounds how much one segment may buffer before the
	// analysis falls back to a single streamed replay. Defaults to
	// 32 MiB.
	MaxSegmentBytes int
	// Log receives one line per analysis; nil disables.
	Log *log.Logger
}

// Server is the spd3d request handler plus its admission control and
// counters. Create with New; serve via Handler.
type Server struct {
	cfg      Config
	rec      *stats.Recorder // srv.* counters, sharded by request sequence
	reqSeq   atomic.Int64
	sem      chan struct{}
	pool     *shardPool // nil when sharding is disabled
	peakHeap atomic.Uint64
	start    time.Time
	mux      *http.ServeMux

	mu       sync.Mutex
	draining bool
	active   int
	idle     chan struct{}  // non-nil while a Drain waits for active==0
	agg      stats.Snapshot // analysis counters merged across requests
}

// New returns a Server with cfg's zero fields defaulted.
func New(cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 60 * time.Second
	}
	if cfg.Limits == (trace.Limits{}) {
		cfg.Limits = trace.DefaultLimits()
	}
	if cfg.MaxRacesPerReport <= 0 {
		cfg.MaxRacesPerReport = 256
	}
	if cfg.ShardWorkers == 0 {
		cfg.ShardWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.MinSegmentBytes <= 0 {
		cfg.MinSegmentBytes = 256 << 10
	}
	if cfg.MaxSegmentBytes <= 0 {
		cfg.MaxSegmentBytes = 32 << 20
	}
	s := &Server{
		cfg:   cfg,
		rec:   stats.New(0),
		sem:   make(chan struct{}, cfg.MaxInFlight),
		start: time.Now(),
		mux:   http.NewServeMux(),
	}
	if cfg.ShardWorkers > 0 {
		s.pool = newShardPool(cfg.ShardWorkers)
	}
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("GET /v1/detectors", s.handleDetectors)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	return s
}

// Handler returns the daemon's HTTP handler; it counts every request
// into the srv.requests counter before routing.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.shard().Inc(stats.SrvRequests)
		s.mux.ServeHTTP(w, r)
	})
}

// shard picks a stats shard by request arrival order, so concurrent
// requests bump srv.* counters without sharing a cache line.
func (s *Server) shard() *stats.Shard {
	return s.rec.Shard(int(s.reqSeq.Add(1)))
}

// begin admits one analysis into the drain set; false while draining.
func (s *Server) begin() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.active++
	return true
}

// end retires one analysis and wakes a pending Drain when the last one
// leaves.
func (s *Server) end() {
	s.mu.Lock()
	s.active--
	if s.active == 0 && s.draining && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
	s.mu.Unlock()
}

// Drain switches the server into draining mode — new analyze requests
// are refused with 503, /healthz flips to 503 — and blocks until every
// in-flight analysis has finished or ctx expires. It is the first half
// of a graceful shutdown; pair it with http.Server.Shutdown.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.active == 0 {
		s.mu.Unlock()
		return nil
	}
	if s.idle == nil {
		s.idle = make(chan struct{})
	}
	idle := s.idle
	s.mu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// InFlight returns the number of analyses currently running.
func (s *Server) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Race is one reported race in wire form.
type Race struct {
	Kind   string `json:"kind"`
	Region string `json:"region"`
	Index  int    `json:"index"`
	Prev   string `json:"prev"`
	Cur    string `json:"cur"`
}

// Verdict is one detector's result on one trace.
type Verdict struct {
	Detector   string          `json:"detector"`
	Racy       bool            `json:"racy"`
	RaceCount  int             `json:"race_count"`
	Races      []Race          `json:"races"`
	Capped     bool            `json:"capped,omitempty"`
	DurationMS float64         `json:"duration_ms"`
	Stats      *stats.Snapshot `json:"stats,omitempty"` // with ?stats=1
}

// Report is the analyze endpoint's response envelope.
type Report struct {
	Tool       string    `json:"tool"`
	Version    string    `json:"version"`
	Detector   string    `json:"detector"` // as requested; "all" for differential mode
	Sequential bool      `json:"sequential"`
	TraceBytes int64     `json:"trace_bytes"`
	Verdicts   []Verdict `json:"verdicts"`
	// Sharded reports whether the analysis ran through the finish-scope
	// splitter and worker pool; Segments is how many independently
	// replayed units the trace was cut into (1 when it had no interior
	// top-level finish boundary).
	Sharded  bool `json:"sharded,omitempty"`
	Segments int  `json:"segments,omitempty"`
	// Agree is set in differential mode: whether every detector
	// reached the same racy/race-free verdict.
	Agree *bool `json:"agree,omitempty"`
}

// ErrorReport is the JSON body of every non-200 response.
type ErrorReport struct {
	Tool    string `json:"tool"`
	Version string `json:"version"`
	Status  int    `json:"status"`
	Error   string `json:"error"`
}

// Statsz is the /statsz response: server gauges plus the merged
// observability snapshot (srv.* counters and the analysis counters
// accumulated across every completed replay). The memory gauges exist
// so the flat-ceiling claim is measurable from outside: spd3load polls
// them while streaming traces far larger than the daemon's budget.
type Statsz struct {
	Tool          string  `json:"tool"`
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	InFlight      int     `json:"in_flight"`
	MaxInFlight   int     `json:"max_in_flight"`
	Draining      bool    `json:"draining"`
	// ShardWorkers is the shard pool's concurrency bound (0 when
	// sharding is disabled); ShardBusy its live occupancy.
	ShardWorkers int `json:"shard_workers"`
	ShardBusy    int `json:"shard_busy"`
	// HeapAllocBytes and SysBytes are the Go runtime's live heap and
	// total OS-claimed memory; PeakHeapBytes is the largest HeapAlloc
	// the daemon has observed (sampled after every analysis and on
	// every /statsz); PeakRSSBytes is the process's high-water resident
	// set from the OS (0 where unavailable).
	HeapAllocBytes uint64         `json:"heap_alloc_bytes"`
	SysBytes       uint64         `json:"sys_bytes"`
	PeakHeapBytes  uint64         `json:"peak_heap_bytes"`
	PeakRSSBytes   int64          `json:"peak_rss_bytes"`
	Stats          stats.Snapshot `json:"stats"`
}

// DetectorList is the /v1/detectors response.
type DetectorList struct {
	Tool      string               `json:"tool"`
	Version   string               `json:"version"`
	Detectors []detect.Description `json:"detectors"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, ErrorReport{Tool: Tool, Version: Version, Status: status, Error: fmt.Sprintf(format, args...)})
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

// statusFor maps a replay decode failure to its HTTP status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, trace.ErrSequentialOnly):
		return http.StatusUnprocessableEntity // 422
	case errors.Is(err, trace.ErrLimit):
		return http.StatusRequestEntityTooLarge // 413
	case errors.Is(err, trace.ErrBadMagic), errors.Is(err, trace.ErrTruncated), errors.Is(err, trace.ErrMalformed):
		return http.StatusBadRequest // 400
	default:
		return http.StatusInternalServerError
	}
}

// analyzeOnce replays one trace stream into a fresh instance of the
// named detector and folds the run's stats into the server aggregate.
// It is the unit of work for both whole-trace replays and segment jobs.
func (s *Server) analyzeOnce(name string, rd io.Reader, lim trace.Limits) (Verdict, stats.Snapshot, error) {
	sink := detect.NewSink(false, s.cfg.MaxRacesPerReport)
	rec := stats.New(1)
	sink.SetStats(rec.Shard(0))
	det, err := detect.New(name, detect.FactoryOpts{Sink: sink, Stats: rec})
	if err != nil {
		return Verdict{}, stats.Snapshot{}, err
	}
	start := time.Now()
	replayErr := trace.ReplayWithLimits(rd, det, lim)
	dur := time.Since(start)

	snap := rec.Snapshot()
	snap.Footprint = det.Footprint()
	s.mu.Lock()
	s.agg.Merge(snap)
	s.mu.Unlock()
	if replayErr != nil {
		return Verdict{}, snap, replayErr
	}

	races := sink.Races()
	v := Verdict{
		Detector:   name,
		Racy:       !sink.Empty(),
		RaceCount:  len(races),
		Races:      make([]Race, 0, len(races)),
		Capped:     sink.Capped(),
		DurationMS: float64(dur) / float64(time.Millisecond),
	}
	for _, r := range races {
		v.Races = append(v.Races, Race{Kind: r.Kind.String(), Region: r.Region, Index: r.Index, Prev: r.PrevStep, Cur: r.CurStep})
	}
	return v, snap, nil
}

// traceHeaderLen is magic plus the executor byte.
const traceHeaderLen = len("SPD3TRC1") + 1

// eligibleDetectors is differential mode's fan-out set: every
// registered detector that can legally consume the trace
// (sequential-only detectors join only for depth-first traces; the
// uninstrumented "none" baseline has no verdict and is skipped).
func eligibleDetectors(sequential bool) []string {
	var names []string
	for _, d := range detect.Describe() {
		if d.Name == "none" || (d.Sequential && !sequential) {
			continue
		}
		names = append(names, d.Name)
	}
	return names
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("detector")
	if name == "" {
		name = "spd3"
	}
	if name != "all" && !detect.Registered(name) {
		s.writeError(w, http.StatusNotFound, "unknown detector %q (have %s, or \"all\")",
			name, strings.Join(detect.Names(), ", "))
		return
	}

	// Admission control before touching the body: a saturated or
	// draining server sheds load without reading uploads.
	if !s.begin() {
		s.shard().Inc(stats.SrvRejected)
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.end()
	select {
	case s.sem <- struct{}{}:
	default:
		s.shard().Inc(stats.SrvRejected)
		s.writeError(w, http.StatusTooManyRequests, "server saturated: %d analyses in flight", s.cfg.MaxInFlight)
		return
	}
	defer func() { <-s.sem }()

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
		// The HTTP body's read deadline is sticky once exceeded, so one
		// absolute deadline (rather than CancelReader's re-arming
		// slices) guarantees no body read outlives the request even if
		// the client stalls mid-upload; the CancelReader's per-read
		// poll catches cancellation whenever bytes are flowing.
		http.NewResponseController(w).SetReadDeadline(time.Now().Add(s.cfg.RequestTimeout)) //nolint:errcheck // best-effort; ResponseWriters without deadlines still get the per-read poll
	}

	// The single counting limiter that replaced MaxBytesReader +
	// io.ReadAll: the decoder pulls bytes through it incrementally, and
	// overflow surfaces as trace.ErrLimit from inside the replay — the
	// same errors.Is class, and so the same 413, as declared-resource
	// limits. Nothing below this point holds the body in full.
	limiter := trace.NewLimitedReader(r.Body, s.cfg.MaxBodyBytes)
	body := bufio.NewReaderSize(trace.NewCancelReader(limiter, ctx.Done(), nil), 64<<10)

	// Peek at the executor byte for the report and detector
	// eligibility; header errors surface through the decode below.
	head, _ := body.Peek(traceHeaderLen)
	sequential := len(head) == traceHeaderLen && head[traceHeaderLen-1] == 1

	lim := s.cfg.Limits
	lim.Cancel = ctx.Done()
	withStats := r.URL.Query().Get("stats") != ""
	names := []string{name}
	if name == "all" {
		names = eligibleDetectors(sequential)
	}

	var (
		verdicts []Verdict
		segments int
		firstErr error
	)
	sharded := s.pool != nil && r.URL.Query().Get("shard") != "off"
	switch {
	case sharded:
		var sp *trace.Splitter
		sp, firstErr = trace.NewSplitter(body, trace.SplitConfig{
			MinSegmentBytes: s.cfg.MinSegmentBytes,
			MaxSegmentBytes: s.cfg.MaxSegmentBytes,
		})
		if firstErr == nil {
			verdicts, segments, firstErr = s.analyzeSharded(ctx, names, sp, lim, withStats)
		}
	case len(names) == 1:
		// Sharding off, one detector: the body streams through a
		// single replay; memory stays flat, with no segment buffering
		// at all.
		var (
			v    Verdict
			snap stats.Snapshot
		)
		v, snap, firstErr = s.analyzeOnce(names[0], body, lim)
		if firstErr == nil {
			if withStats {
				v.Stats = &snap
			}
			verdicts = []Verdict{v}
		}
	default:
		// Sharding off, differential mode: several detectors must each
		// consume the same bytes, so this is the one path that still
		// buffers the body (bounded by the limiter) before fanning out
		// concurrently.
		var data []byte
		data, firstErr = io.ReadAll(body)
		if firstErr == nil {
			verdicts, firstErr = s.analyzeAllBuffered(names, data, lim, withStats)
		}
	}

	streamed := limiter.Count()
	sh := s.shard()
	sh.Add(stats.SrvBytesRead, streamed)
	if sharded || len(names) == 1 {
		sh.Add(stats.SrvStreamedBytes, streamed)
	}
	defer s.sampleMem()

	if firstErr != nil {
		// A failure on a canceled request reports as canceled even
		// when the proximate error was a read deadline or a decode
		// hiccup mid-abort: the deadline is the cause.
		if errors.Is(firstErr, trace.ErrCanceled) || ctx.Err() != nil {
			s.shard().Inc(stats.SrvCanceled)
			s.logf("analyze detector=%s bytes=%d: canceled (%v)", name, streamed, ctx.Err())
			s.writeError(w, http.StatusGatewayTimeout, "analysis canceled: %v", ctx.Err())
			return
		}
		s.logf("analyze detector=%s bytes=%d: %v", name, streamed, firstErr)
		s.writeError(w, statusFor(firstErr), "%v", firstErr)
		return
	}

	rep := &Report{
		Tool:       Tool,
		Version:    Version,
		Detector:   name,
		Sequential: sequential,
		TraceBytes: streamed,
		Verdicts:   verdicts,
		Sharded:    sharded,
		Segments:   segments,
	}
	if name == "all" {
		agree := true
		for _, v := range rep.Verdicts {
			agree = agree && v.Racy == rep.Verdicts[0].Racy
		}
		rep.Agree = &agree
	}
	s.shard().Add(stats.SrvAnalyses, int64(len(rep.Verdicts)))
	s.logf("analyze detector=%s bytes=%d segments=%d verdicts=%d racy=%v",
		name, streamed, segments, len(rep.Verdicts), rep.Verdicts[0].Racy)
	s.writeJSON(w, http.StatusOK, rep)
}

// analyzeAllBuffered fans one fully buffered trace out concurrently to
// every named detector — the pre-streaming differential path, kept for
// shard=off requests.
func (s *Server) analyzeAllBuffered(names []string, data []byte, lim trace.Limits, withStats bool) ([]Verdict, error) {
	verdicts := make([]Verdict, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, snap, err := s.analyzeOnce(name, bytes.NewReader(data), lim)
			if err == nil && withStats {
				v.Stats = &snap
			}
			verdicts[i], errs[i] = v, err
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return verdicts, nil
}

func (s *Server) handleDetectors(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, DetectorList{Tool: Tool, Version: Version, Detectors: detect.Describe()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Tool    string `json:"tool"`
		Version string `json:"version"`
		Status  string `json:"status"`
	}
	if s.Draining() {
		s.writeJSON(w, http.StatusServiceUnavailable, health{Tool, Version, "draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, health{Tool, Version, "ok"})
}

// sampleMem reads the runtime's heap gauges and folds HeapAlloc into
// the monotonic peak. Because the peak only grows, spd3load needs no
// sampler goroutine racing the analysis: one /statsz read after the run
// sees the high-water mark.
func (s *Server) sampleMem() (heapAlloc, sys uint64) {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	for {
		old := s.peakHeap.Load()
		if m.HeapAlloc <= old || s.peakHeap.CompareAndSwap(old, m.HeapAlloc) {
			break
		}
	}
	return m.HeapAlloc, m.Sys
}

// vmHWM returns the process's peak resident set (VmHWM from
// /proc/self/status) in bytes, or 0 where the proc filesystem is
// unavailable.
func vmHWM() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	snap := s.rec.Snapshot()
	s.mu.Lock()
	snap.Merge(s.agg)
	inFlight, draining := s.active, s.draining
	s.mu.Unlock()
	heapAlloc, sys := s.sampleMem()
	shardWorkers, shardBusy := 0, 0
	if s.pool != nil {
		shardWorkers, shardBusy = s.pool.Workers(), s.pool.Busy()
	}
	s.writeJSON(w, http.StatusOK, Statsz{
		Tool:           Tool,
		Version:        Version,
		UptimeSeconds:  time.Since(s.start).Seconds(),
		InFlight:       inFlight,
		MaxInFlight:    s.cfg.MaxInFlight,
		Draining:       draining,
		ShardWorkers:   shardWorkers,
		ShardBusy:      shardBusy,
		HeapAllocBytes: heapAlloc,
		SysBytes:       sys,
		PeakHeapBytes:  s.peakHeap.Load(),
		PeakRSSBytes:   vmHWM(),
		Stats:          snap,
	})
}
