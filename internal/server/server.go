// Package server implements spd3d, the networked trace-analysis service:
// a stdlib-only HTTP daemon that accepts traces recorded by
// internal/trace and replays them into any detector from the detect
// registry.
//
// SPD3's certification guarantee (PAPER §5, Theorem 1) makes traces the
// natural unit of work for a detection service: one recorded execution
// certifies all schedules of that input, so a program records once at
// near-zero overhead and the daemon analyzes the trace many times — under
// different detectors, on different machines, long after the run.
//
// API:
//
//	POST /v1/analyze?detector=<name>   trace body → JSON race report
//	POST /v1/analyze?detector=all      differential: every legal detector, verdict agreement
//	GET  /v1/detectors                 registry listing
//	GET  /healthz                      liveness (503 while draining)
//	GET  /statsz                       merged stats snapshot + server counters
//
// Robustness is the point, not an afterthought: in-flight analyses are
// semaphore-bounded (429 when saturated), bodies are size-capped (413),
// per-request deadlines propagate into the replay loop through
// trace.Limits.Cancel (a deadline-exceeded request stops the replay, it
// does not run to completion in the background), and Drain lets the
// daemon finish in-flight analyses while refusing new ones with 503.
// Decode failures map to precise status codes via the trace package's
// typed errors: 400 malformed, 413 over resource limits, 422
// sequential-only detector on a parallel trace, 404 unknown detector.
//
// The analyze path streams and shards. The request body is never
// buffered in full: bytes flow through a counting limiter (overflow →
// the same trace.ErrLimit → 413 path as declared-resource limits) and a
// cancel-aware reader straight into the trace decoder, so daemon memory
// stays proportional to the live task set of the replay — SPD3's O(1)
// per-location space guarantee end-to-end — and a trace far larger than
// the daemon's memory ceiling analyzes to the exact verdict a buffered
// replay would reach. On top of that, a finish-scope splitter cuts the
// stream into independently replayable segments fanned across a bounded
// worker pool (see shard.go), so one giant trace parallelizes instead
// of pinning a slot for its full serial replay time.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spd3/internal/detect"
	"spd3/internal/sample"
	"spd3/internal/stats"
	"spd3/internal/trace"
)

// Tool and Version identify the daemon in every JSON envelope, in the
// same style as spd3 -stats and spd3vet -json.
const (
	Tool    = "spd3d"
	Version = "1.0.0"
)

// Config tunes one Server. The zero value gets sensible defaults from
// New.
type Config struct {
	// MaxInFlight bounds concurrent analyses; further analyze requests
	// are rejected with 429. Defaults to GOMAXPROCS.
	MaxInFlight int
	// MaxBodyBytes caps the trace body size; larger uploads get 413.
	// Defaults to 64 MiB.
	MaxBodyBytes int64
	// RequestTimeout is the per-request analysis deadline; when it
	// expires the replay is canceled and the request answered with 504.
	// Defaults to 60s; negative disables.
	RequestTimeout time.Duration
	// Limits bounds the resources one replay may demand. The zero
	// value means trace.DefaultLimits. Cancel is overwritten per
	// request.
	Limits trace.Limits
	// MaxRacesPerReport caps the races carried in one JSON verdict
	// (the verdict stays exact; Capped marks truncation). Defaults to
	// 256.
	MaxRacesPerReport int
	// ShardWorkers bounds concurrent segment replays across the whole
	// daemon (the shard pool). 0 means GOMAXPROCS; negative disables
	// sharding entirely, so every analysis streams through a single
	// replay.
	ShardWorkers int
	// MinSegmentBytes coalesces tiny finish scopes before a cut.
	// Defaults to 256 KiB.
	MinSegmentBytes int
	// MaxSegmentBytes bounds how much one segment may buffer before the
	// analysis falls back to a single streamed replay. Defaults to
	// 32 MiB.
	MaxSegmentBytes int
	// StoreDir roots the persistent trace store (segments + job
	// manifests). Empty means an ephemeral store in a fresh temp
	// directory, removed by Close — jobs then do not survive restarts.
	StoreDir string
	// StoreTTL bounds how long a finished job (done, failed, or
	// canceled) stays in the store before GC reclaims its manifest and
	// unshared segments. Defaults to 1h; negative keeps jobs forever.
	StoreTTL time.Duration
	// GCInterval is the store garbage-collection period. 0 disables the
	// background sweeper (GC then only happens via explicit Sweep calls
	// and job deletion).
	GCInterval time.Duration
	// Quota bounds each tenant's queued jobs, stored bytes, submit byte
	// rate, and concurrent shard slots. See QuotaConfig for defaults.
	Quota QuotaConfig
	// Sampling configures per-tenant check sampling: a default spec, an
	// overhead budget for the governors, and per-tenant overrides. The
	// zero value means every check runs (sampling off).
	Sampling SamplingConfig
	// Log receives one line per analysis; nil disables.
	Log *log.Logger
}

// Server is the spd3d request handler plus its admission control,
// job table, trace store, and counters. Create with Open (or New,
// which panics on store failure); serve via Handler; pair Drain with
// http.Server.Shutdown; Close when done.
type Server struct {
	cfg      Config
	rec      *stats.Recorder // srv.* counters, sharded by request sequence
	reqSeq   atomic.Int64
	sem      chan struct{}
	pool     *shardPool // nil when sharding is disabled
	store    *Store
	quotas   *quotaTable
	samplers *samplerTable
	peakHeap atomic.Uint64
	start    time.Time
	mux      *http.ServeMux

	// storeEphemeral marks a store New created in a temp directory;
	// Close removes it.
	storeEphemeral bool
	// killed simulates an abrupt daemon death for restart testing: set
	// by Kill, it stops all manifest persistence so the on-disk state
	// freezes exactly as a SIGKILL would leave it.
	killed atomic.Bool
	gcStop chan struct{}
	gcDone chan struct{}

	jobsMu sync.Mutex
	jobs   map[string]*Job

	mu          sync.Mutex
	draining    bool
	active      int            // in-flight HTTP analyses (the /v1 shim and admission gate)
	runningJobs int            // jobs currently executing; Drain waits for these too
	idle        chan struct{}  // non-nil while a Drain waits for idleness
	agg         stats.Snapshot // analysis counters merged across requests
}

// Open returns a Server with cfg's zero fields defaulted, its store
// opened (resuming any jobs a previous daemon left queued or running),
// and its GC sweeper started when configured.
func Open(cfg Config) (*Server, error) {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 60 * time.Second
	}
	if cfg.Limits == (trace.Limits{}) {
		cfg.Limits = trace.DefaultLimits()
	}
	if cfg.MaxRacesPerReport <= 0 {
		cfg.MaxRacesPerReport = 256
	}
	if cfg.ShardWorkers == 0 {
		cfg.ShardWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.MinSegmentBytes <= 0 {
		cfg.MinSegmentBytes = 256 << 10
	}
	if cfg.MaxSegmentBytes <= 0 {
		cfg.MaxSegmentBytes = 32 << 20
	}
	if cfg.StoreTTL == 0 {
		cfg.StoreTTL = time.Hour
	}
	if err := cfg.Sampling.validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		rec:   stats.New(0),
		sem:   make(chan struct{}, cfg.MaxInFlight),
		start: time.Now(),
		mux:   http.NewServeMux(),
		jobs:  map[string]*Job{},
	}
	if cfg.ShardWorkers > 0 {
		s.pool = newShardPool(cfg.ShardWorkers)
	}
	s.quotas = newQuotaTable(cfg.Quota, cfg.ShardWorkers)
	s.samplers = newSamplerTable(cfg.Sampling)
	dir := cfg.StoreDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "spd3d-store-*")
		if err != nil {
			return nil, err
		}
		dir = tmp
		s.storeEphemeral = true
	}
	store, err := openStore(dir)
	if err != nil {
		if s.storeEphemeral {
			os.RemoveAll(dir)
		}
		return nil, err
	}
	s.store = store

	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("GET /v1/detectors", s.handleDetectors)
	s.mux.HandleFunc("POST /v2/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v2/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v2/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v2/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("DELETE /v2/jobs/{id}", s.handleJobDelete)
	s.mux.HandleFunc("GET /v2/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)

	if err := s.resumeJobs(); err != nil {
		return nil, err
	}
	if cfg.GCInterval > 0 {
		s.gcStop = make(chan struct{})
		s.gcDone = make(chan struct{})
		go s.gcLoop()
	}
	return s, nil
}

// New returns a Server with cfg's zero fields defaulted. It panics if
// the trace store cannot be opened; use Open to handle that error.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic("server: " + err.Error())
	}
	return s
}

// resumeJobs rebuilds the job table from the manifests a previous
// daemon left behind. Terminal jobs come back as poll-able results;
// queued or running jobs are re-queued and re-executed — the replay is
// a pure function of the stored segments, so re-running a job that
// died mid-replay is always sound.
func (s *Server) resumeJobs() error {
	manifests, err := s.store.LoadManifests()
	if err != nil {
		return err
	}
	sh := s.shard()
	for _, m := range manifests {
		j := &Job{
			m:        m,
			cancelCh: make(chan struct{}),
			done:     make(chan struct{}),
			subs:     map[chan jobEvent]struct{}{},
		}
		live := !terminalState(m.State)
		s.quotas.restore(m.Tenant, m.StoredBytes(), live)
		if !live {
			j.slotFreed = true
			close(j.done)
			s.jobsMu.Lock()
			s.jobs[m.ID] = j
			s.jobsMu.Unlock()
			continue
		}
		m.State = StateQueued
		m.UpdatedAt = time.Now()
		if err := s.store.WriteManifest(m); err != nil {
			return err
		}
		s.jobsMu.Lock()
		s.jobs[m.ID] = j
		s.jobsMu.Unlock()
		sh.Inc(stats.JobResumed)
		sh.Inc(stats.JobQueued)
		s.logf("job %s resumed tenant=%s detector=%s segments=%d",
			m.ID, m.Tenant, m.Detector, len(m.Segments))
		go s.runJob(j)
	}
	return nil
}

// gcLoop is the background store sweeper: every GCInterval it expires
// finished jobs older than StoreTTL and collects unreferenced blobs.
func (s *Server) gcLoop() {
	defer close(s.gcDone)
	t := time.NewTicker(s.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.GC()
		case <-s.gcStop:
			return
		}
	}
}

// GC runs one garbage-collection pass: jobs in a terminal state whose
// manifests are older than StoreTTL are deleted (releasing their quota
// bytes), then unreferenced blobs are swept from the CAS.
func (s *Server) GC() (sweptJobs, sweptBlobs int) {
	if ttl := s.cfg.StoreTTL; ttl > 0 {
		now := time.Now()
		s.jobsMu.Lock()
		var expired []*Job
		for _, j := range s.jobs {
			if m := j.manifest(); terminalState(m.State) && now.Sub(m.UpdatedAt) > ttl {
				expired = append(expired, j)
			}
		}
		s.jobsMu.Unlock()
		for _, j := range expired {
			s.removeJob(j)
			sweptJobs++
		}
	}
	_, sweptBlobs, err := s.store.Sweep(0)
	if err != nil {
		s.logf("gc: %v", err)
	}
	sh := s.shard()
	sh.Add(stats.StoreSweptJobs, int64(sweptJobs))
	sh.Add(stats.StoreSweptBlobs, int64(sweptBlobs))
	return sweptJobs, sweptBlobs
}

// Store exposes the server's trace store (for tests and tooling).
func (s *Server) Store() *Store { return s.store }

// Kill simulates an abrupt daemon death for restart testing: every job
// is canceled and all further manifest persistence stops, so the
// on-disk store freezes in whatever state a SIGKILL would have left it
// — running manifests stay "running" and resume on the next Open.
func (s *Server) Kill() {
	s.killed.Store(true)
	s.jobsMu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.jobsMu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
}

// Close stops the GC sweeper and removes an ephemeral store. It does
// not wait for running jobs; call Drain first for a graceful stop.
func (s *Server) Close() error {
	if s.gcStop != nil {
		close(s.gcStop)
		<-s.gcDone
		s.gcStop = nil
	}
	if s.storeEphemeral {
		return os.RemoveAll(s.store.root)
	}
	return nil
}

// Handler returns the daemon's HTTP handler; it counts every request
// into the srv.requests counter before routing.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.shard().Inc(stats.SrvRequests)
		s.mux.ServeHTTP(w, r)
	})
}

// shard picks a stats shard by request arrival order, so concurrent
// requests bump srv.* counters without sharing a cache line.
func (s *Server) shard() *stats.Shard {
	return s.rec.Shard(int(s.reqSeq.Add(1)))
}

// begin admits one analysis into the drain set; false while draining.
func (s *Server) begin() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.active++
	return true
}

// end retires one analysis and wakes a pending Drain when the last one
// leaves.
func (s *Server) end() {
	s.mu.Lock()
	s.active--
	s.wakeDrainLocked()
	s.mu.Unlock()
}

// beginJob admits one job execution into the drain set; false while
// draining (the job then stays queued on disk and resumes at the next
// Open). force overrides the draining refusal: a /v1 shim job's
// surrounding request was already admitted by begin, so drain is
// obliged to let its replay finish. Jobs are tracked separately from
// active so InFlight keeps its /v1 meaning: HTTP analyses, not
// background replays.
func (s *Server) beginJob(force bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining && !force {
		return false
	}
	s.runningJobs++
	return true
}

// endJob retires one job execution.
func (s *Server) endJob() {
	s.mu.Lock()
	s.runningJobs--
	s.wakeDrainLocked()
	s.mu.Unlock()
}

func (s *Server) wakeDrainLocked() {
	if s.active == 0 && s.runningJobs == 0 && s.draining && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
}

// Drain switches the server into draining mode — new analyze requests
// and job submits are refused with 503, /healthz flips to 503 — and
// blocks until every in-flight analysis and running job has finished
// or ctx expires. Queued jobs that have not started stay queued on
// disk and resume at the next Open. It is the first half of a graceful
// shutdown; pair it with http.Server.Shutdown and Close.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.active == 0 && s.runningJobs == 0 {
		s.mu.Unlock()
		return nil
	}
	if s.idle == nil {
		s.idle = make(chan struct{})
	}
	idle := s.idle
	s.mu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// InFlight returns the number of analyses currently running.
func (s *Server) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Race is one reported race in wire form.
type Race struct {
	Kind   string `json:"kind"`
	Region string `json:"region"`
	Index  int    `json:"index"`
	Prev   string `json:"prev"`
	Cur    string `json:"cur"`
}

// Verdict is one detector's result on one trace.
type Verdict struct {
	Detector   string          `json:"detector"`
	Racy       bool            `json:"racy"`
	RaceCount  int             `json:"race_count"`
	Races      []Race          `json:"races"`
	Capped     bool            `json:"capped,omitempty"`
	DurationMS float64         `json:"duration_ms"`
	Stats      *stats.Snapshot `json:"stats,omitempty"` // with ?stats=1
}

// Report is the analyze endpoint's response envelope.
type Report struct {
	Tool       string    `json:"tool"`
	Version    string    `json:"version"`
	Detector   string    `json:"detector"` // as requested; "all" for differential mode
	Sequential bool      `json:"sequential"`
	TraceBytes int64     `json:"trace_bytes"`
	Verdicts   []Verdict `json:"verdicts"`
	// Sharded reports whether the analysis ran through the finish-scope
	// splitter and worker pool; Segments is how many independently
	// replayed units the trace was cut into (1 when it had no interior
	// top-level finish boundary).
	Sharded  bool `json:"sharded,omitempty"`
	Segments int  `json:"segments,omitempty"`
	// Agree is set in differential mode: whether every detector
	// reached the same racy/race-free verdict.
	Agree *bool `json:"agree,omitempty"`
}

// ErrorReport is the JSON body of every non-200 response.
type ErrorReport struct {
	Tool    string `json:"tool"`
	Version string `json:"version"`
	Status  int    `json:"status"`
	Error   string `json:"error"`
}

// Statsz is the /statsz response: server gauges plus the merged
// observability snapshot (srv.* counters and the analysis counters
// accumulated across every completed replay). The memory gauges exist
// so the flat-ceiling claim is measurable from outside: spd3load polls
// them while streaming traces far larger than the daemon's budget.
type Statsz struct {
	Tool          string  `json:"tool"`
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	InFlight      int     `json:"in_flight"`
	MaxInFlight   int     `json:"max_in_flight"`
	Draining      bool    `json:"draining"`
	// ShardWorkers is the shard pool's concurrency bound (0 when
	// sharding is disabled); ShardBusy its live occupancy.
	ShardWorkers int `json:"shard_workers"`
	ShardBusy    int `json:"shard_busy"`
	// JobsQueued and JobsRunning are the job table's live states;
	// JobsTotal counts every job the table knows, including finished
	// ones awaiting TTL expiry.
	JobsQueued  int `json:"jobs_queued"`
	JobsRunning int `json:"jobs_running"`
	JobsTotal   int `json:"jobs_total"`
	// StoreBlobs and StoreBytes gauge the content-addressed trace
	// store: distinct segments on disk and their total size (after
	// dedup, so amplified traces show up far smaller than streamed).
	StoreBlobs int   `json:"store_blobs"`
	StoreBytes int64 `json:"store_bytes"`
	// HeapAllocBytes and SysBytes are the Go runtime's live heap and
	// total OS-claimed memory; PeakHeapBytes is the largest HeapAlloc
	// the daemon has observed (sampled after every analysis and on
	// every /statsz); PeakRSSBytes is the process's high-water resident
	// set from the OS (0 where unavailable).
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	SysBytes       uint64 `json:"sys_bytes"`
	PeakHeapBytes  uint64 `json:"peak_heap_bytes"`
	PeakRSSBytes   int64  `json:"peak_rss_bytes"`
	// Sampling lists the live per-tenant sampling gauges: one row per
	// (tenant, spec) pair the daemon has replayed under, carrying the
	// governor's current (budget-adapted) rate. Absent when no sampled
	// replay has run.
	Sampling []TenantSampling `json:"sampling,omitempty"`
	Stats    stats.Snapshot   `json:"stats"`
}

// DetectorList is the /v1/detectors response.
type DetectorList struct {
	Tool      string               `json:"tool"`
	Version   string               `json:"version"`
	Detectors []detect.Description `json:"detectors"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, ErrorReport{Tool: Tool, Version: Version, Status: status, Error: fmt.Sprintf(format, args...)})
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

// statusFor maps a replay decode failure to its HTTP status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, trace.ErrSequentialOnly):
		return http.StatusUnprocessableEntity // 422
	case errors.Is(err, trace.ErrLimit):
		return http.StatusRequestEntityTooLarge // 413
	case errors.Is(err, trace.ErrBadMagic), errors.Is(err, trace.ErrTruncated), errors.Is(err, trace.ErrMalformed):
		return http.StatusBadRequest // 400
	default:
		return http.StatusInternalServerError
	}
}

// eligibleDetectors is differential mode's fan-out set: every
// registered detector that can legally consume the trace
// (sequential-only detectors join only for depth-first traces; the
// uninstrumented "none" baseline has no verdict and is skipped).
func eligibleDetectors(sequential bool) []string {
	var names []string
	for _, d := range detect.Describe() {
		if d.Name == "none" || (d.Sequential && !sequential) {
			continue
		}
		names = append(names, d.Name)
	}
	return names
}

// handleAnalyze is the /v1 compatibility shim: it submits an ephemeral
// job through exactly the /v2 pipeline (stream → spill → shard-pool
// replay), waits for it inline, relays the result with /v1's status
// mapping, and deletes the job. Every /v1 behavior — status codes,
// counters, deadline cancellation, drain semantics — rides on the job
// machinery, which is what makes the pre-redesign test suite a
// compatibility oracle for it.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("detector")
	if name == "" {
		name = "spd3"
	}
	if name != "all" && !detect.Registered(name) {
		s.writeError(w, http.StatusNotFound, "unknown detector %q (have %s, or \"all\")",
			name, strings.Join(detect.Names(), ", "))
		return
	}
	sampling := r.URL.Query().Get("sample")
	if _, err := sample.Parse(sampling); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad sample spec %q: %v", sampling, err)
		return
	}

	// Admission control before touching the body: a saturated or
	// draining server sheds load without reading uploads.
	if !s.begin() {
		s.shard().Inc(stats.SrvRejected)
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.end()
	select {
	case s.sem <- struct{}{}:
	default:
		s.shard().Inc(stats.SrvRejected)
		s.writeError(w, http.StatusTooManyRequests, "server saturated: %d analyses in flight", s.cfg.MaxInFlight)
		return
	}
	defer func() { <-s.sem }()

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
		// The HTTP body's read deadline is sticky once exceeded, so one
		// absolute deadline (rather than CancelReader's re-arming
		// slices) guarantees no body read outlives the request even if
		// the client stalls mid-upload; the CancelReader's per-read
		// poll catches cancellation whenever bytes are flowing.
		http.NewResponseController(w).SetReadDeadline(time.Now().Add(s.cfg.RequestTimeout)) //nolint:errcheck // best-effort; ResponseWriters without deadlines still get the per-read poll
	}
	defer s.sampleMem()

	j, err := s.submitJob(ctx, r.Body, submitOpts{
		detector:  name,
		tenant:    tenantOf(r),
		withStats: r.URL.Query().Get("stats") != "",
		shard:     s.pool != nil && r.URL.Query().Get("shard") != "off",
		ephemeral: true,
		estimate:  max(r.ContentLength, 0),
		sampling:  sampling,
	})
	if err != nil {
		// A failure on a canceled request reports as canceled even
		// when the proximate error was a read deadline or a decode
		// hiccup mid-abort: the deadline is the cause.
		if errors.Is(err, trace.ErrCanceled) || ctx.Err() != nil {
			s.shard().Inc(stats.SrvCanceled)
			s.logf("analyze detector=%s: canceled (%v)", name, ctx.Err())
			s.writeError(w, http.StatusGatewayTimeout, "analysis canceled: %v", ctx.Err())
			return
		}
		s.logf("analyze detector=%s: %v", name, err)
		s.writeSubmitError(w, err)
		return
	}
	// The job never outlives the request: whatever state it ends in,
	// its manifest and quota charge are released on the way out.
	defer func() {
		go func() {
			<-j.done
			s.removeJob(j)
		}()
	}()

	select {
	case <-j.done:
	case <-ctx.Done():
		// Deadline or client gone: cancel the replay through the same
		// Limits.Cancel plumbing a /v2 DELETE uses and answer 504 now —
		// the replay stops at its next cancellation poll.
		j.cancel()
		s.shard().Inc(stats.SrvCanceled)
		s.logf("analyze detector=%s: canceled (%v)", name, ctx.Err())
		s.writeError(w, http.StatusGatewayTimeout, "analysis canceled: %v", ctx.Err())
		return
	}

	m := j.manifest()
	switch m.State {
	case StateDone:
		s.logf("analyze detector=%s bytes=%d segments=%d verdicts=%d racy=%v",
			name, m.TraceBytes, len(m.Segments), len(m.Result.Verdicts), m.Result.Verdicts[0].Racy)
		s.writeJSON(w, http.StatusOK, m.Result)
	case StateCanceled:
		s.shard().Inc(stats.SrvCanceled)
		s.logf("analyze detector=%s bytes=%d: canceled", name, m.TraceBytes)
		s.writeError(w, http.StatusGatewayTimeout, "analysis canceled: %v", ctx.Err())
	default:
		status := m.ErrorStatus
		if status == 0 {
			status = http.StatusInternalServerError
		}
		s.logf("analyze detector=%s bytes=%d: %s", name, m.TraceBytes, m.Error)
		s.writeError(w, status, "%s", m.Error)
	}
}

func (s *Server) handleDetectors(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, DetectorList{Tool: Tool, Version: Version, Detectors: detect.Describe()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Tool    string `json:"tool"`
		Version string `json:"version"`
		Status  string `json:"status"`
	}
	if s.Draining() {
		s.writeJSON(w, http.StatusServiceUnavailable, health{Tool, Version, "draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, health{Tool, Version, "ok"})
}

// sampleMem reads the runtime's heap gauges and folds HeapAlloc into
// the monotonic peak. Because the peak only grows, spd3load needs no
// sampler goroutine racing the analysis: one /statsz read after the run
// sees the high-water mark.
func (s *Server) sampleMem() (heapAlloc, sys uint64) {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	for {
		old := s.peakHeap.Load()
		if m.HeapAlloc <= old || s.peakHeap.CompareAndSwap(old, m.HeapAlloc) {
			break
		}
	}
	return m.HeapAlloc, m.Sys
}

// vmHWM returns the process's peak resident set (VmHWM from
// /proc/self/status) in bytes, or 0 where the proc filesystem is
// unavailable.
func vmHWM() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	snap := s.rec.Snapshot()
	s.mu.Lock()
	snap.Merge(s.agg)
	inFlight, draining := s.active, s.draining
	s.mu.Unlock()
	heapAlloc, sys := s.sampleMem()
	shardWorkers, shardBusy := 0, 0
	if s.pool != nil {
		shardWorkers, shardBusy = s.pool.Workers(), s.pool.Busy()
	}
	var queued, running, total int
	s.jobsMu.Lock()
	for _, j := range s.jobs {
		total++
		switch j.manifest().State {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
	}
	s.jobsMu.Unlock()
	blobs, blobBytes := s.store.Blobs()
	s.writeJSON(w, http.StatusOK, Statsz{
		Tool:           Tool,
		Version:        Version,
		UptimeSeconds:  time.Since(s.start).Seconds(),
		InFlight:       inFlight,
		MaxInFlight:    s.cfg.MaxInFlight,
		Draining:       draining,
		ShardWorkers:   shardWorkers,
		ShardBusy:      shardBusy,
		JobsQueued:     queued,
		JobsRunning:    running,
		JobsTotal:      total,
		StoreBlobs:     blobs,
		StoreBytes:     blobBytes,
		HeapAllocBytes: heapAlloc,
		SysBytes:       sys,
		PeakHeapBytes:  s.peakHeap.Load(),
		PeakRSSBytes:   vmHWM(),
		Sampling:       s.samplers.gauges(),
		Stats:          snap,
	})
}
