package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Job lifecycle states, as carried in manifests and the /v2 wire forms.
// The machine is strictly forward: queued → running → one terminal state
// (done, failed, or canceled). A daemon restart may move a job back from
// running to queued — the replay is a pure function of the stored
// segments, so re-running it is always sound.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// terminalState reports whether a job in this state will never change
// again, which is what makes its manifest eligible for TTL expiry.
func terminalState(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// SegmentRef names one stored trace segment by content hash. Jobs hold
// ordered lists of these; the bytes live once in the CAS regardless of
// how many segments (or jobs) share them — an amplified trace's repeated
// finish scopes collapse to a single blob.
type SegmentRef struct {
	Hash  string `json:"hash"`
	Bytes int64  `json:"bytes"`
}

// Manifest is the durable record of one job: identity, input (segment
// refs into the CAS), lifecycle state, and — once terminal — the error
// or the full result envelope. It is the unit of crash recovery: a
// manifest whose state is queued or running at daemon startup is
// re-queued (the segments are still in the CAS), and a terminal manifest
// serves /v2/jobs/{id}/result forever until the TTL sweep retires it.
type Manifest struct {
	ID         string `json:"id"`
	Tenant     string `json:"tenant"`
	Detector   string `json:"detector"`
	Sequential bool   `json:"sequential"`
	WithStats  bool   `json:"with_stats,omitempty"`
	// Sampling is the job's per-request sampling override spec; empty
	// means the tenant's configured (or daemon default) sampling. It is
	// persisted so a resumed job replays under the spec it was submitted
	// with.
	Sampling   string       `json:"sampling,omitempty"`
	Sharded    bool         `json:"sharded"`
	Unsplit    bool         `json:"unsplit,omitempty"`
	Segments   []SegmentRef `json:"segments"`
	TraceBytes int64        `json:"trace_bytes"`
	State      string       `json:"state"`
	// Error and ErrorStatus record a failed job's cause and the HTTP
	// status /result replays for it.
	Error       string    `json:"error,omitempty"`
	ErrorStatus int       `json:"error_status,omitempty"`
	Result      *Report   `json:"result,omitempty"`
	CreatedAt   time.Time `json:"created_at"`
	UpdatedAt   time.Time `json:"updated_at"`
}

// StoredBytes returns the job's total stored segment bytes — the number
// its tenant's stored-bytes quota is charged (before CAS dedup, so a
// tenant cannot launder quota through self-similar traces).
func (m *Manifest) StoredBytes() int64 {
	var n int64
	for _, ref := range m.Segments {
		n += ref.Bytes
	}
	return n
}

// Store is the daemon's persistent trace store: a content-addressed
// blob area for segments plus a manifest directory for jobs.
//
// Layout under root:
//
//	cas/<hh>/<hash>   segment blobs, named by their SHA-256, sharded
//	                  by the first hash byte to keep directories small
//	jobs/<id>.json    one manifest per job, written atomically
//	tmp/              staging for both, same filesystem so rename is atomic
//
// Durability: blobs and manifests are fsync'd before the rename that
// publishes them, so a crash leaves either the old state or the new one,
// never a torn file. Leftover tmp entries from a crash are swept at
// open. Blob space is reclaimed by mark-and-sweep (Sweep): a blob is
// garbage when no manifest references it, and manifest TTL expiry is
// what creates garbage.
type Store struct {
	root string

	mu      sync.Mutex
	blobs   map[string]int64 // hash → size, mirrors cas/ contents
	bytes   int64            // sum of blobs
	writers int              // in-flight submits; blocks blob sweeps
}

// openStore opens (creating if needed) a store rooted at dir and scans
// the CAS to rebuild the in-memory blob index. Orphaned tmp files from
// a crashed daemon are removed.
func openStore(dir string) (*Store, error) {
	s := &Store{root: dir, blobs: make(map[string]int64)}
	for _, sub := range []string{"cas", "jobs", "tmp"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	tmps, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range tmps {
		os.Remove(filepath.Join(dir, "tmp", e.Name()))
	}
	err = filepath.WalkDir(filepath.Join(dir, "cas"), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		s.blobs[d.Name()] = info.Size()
		s.bytes += info.Size()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: scanning cas: %w", err)
	}
	return s, nil
}

// Blobs returns the CAS occupancy gauges: blob count and total bytes.
func (s *Store) Blobs() (count int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blobs), s.bytes
}

// BeginWrite/EndWrite bracket a job submit. While any submit is in
// flight, Sweep will not delete blobs: a segment is unreferenced between
// its Put and the manifest write that names it, and this coarse guard is
// what keeps a concurrent GC from collecting it in that window.
func (s *Store) BeginWrite() {
	s.mu.Lock()
	s.writers++
	s.mu.Unlock()
}

// EndWrite releases a BeginWrite.
func (s *Store) EndWrite() {
	s.mu.Lock()
	s.writers--
	s.mu.Unlock()
}

func (s *Store) blobPath(hash string) string {
	return filepath.Join(s.root, "cas", hash[:2], hash)
}

// PutStream stores r's full contents as one blob, hashing while
// spilling so nothing is held in memory, and returns its ref. dup
// reports a CAS hit: the bytes were already stored (by this job's
// earlier segments, another job, or a previous daemon run) and nothing
// new was written.
func (s *Store) PutStream(r io.Reader) (ref SegmentRef, dup bool, err error) {
	f, err := os.CreateTemp(filepath.Join(s.root, "tmp"), "put-*")
	if err != nil {
		return SegmentRef{}, false, fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	h := sha256.New()
	n, err := io.Copy(io.MultiWriter(f, h), r)
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return SegmentRef{}, false, err
	}
	hash := hex.EncodeToString(h.Sum(nil))
	ref = SegmentRef{Hash: hash, Bytes: n}

	s.mu.Lock()
	_, have := s.blobs[hash]
	s.mu.Unlock()
	if have {
		f.Close()
		os.Remove(tmp)
		return ref, true, nil
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return SegmentRef{}, false, fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return SegmentRef{}, false, fmt.Errorf("store: %w", err)
	}
	dst := s.blobPath(hash)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		os.Remove(tmp)
		return SegmentRef{}, false, fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return SegmentRef{}, false, fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	if _, have := s.blobs[hash]; !have { // a racing Put of the same bytes is idempotent
		s.blobs[hash] = n
		s.bytes += n
	}
	s.mu.Unlock()
	return ref, false, nil
}

// Put stores one in-memory segment. The hash is computed first, so a
// CAS hit costs no I/O at all — the common case for amplified traces,
// whose repeated finish scopes are byte-identical segments.
func (s *Store) Put(data []byte) (ref SegmentRef, dup bool, err error) {
	sum := sha256.Sum256(data)
	hash := hex.EncodeToString(sum[:])
	ref = SegmentRef{Hash: hash, Bytes: int64(len(data))}

	s.mu.Lock()
	_, have := s.blobs[hash]
	s.mu.Unlock()
	if have {
		return ref, true, nil
	}
	if err := s.putBytes(hash, data); err != nil {
		return SegmentRef{}, false, err
	}
	return ref, false, nil
}

// putBytes writes data to tmp and publishes it under hash.
func (s *Store) putBytes(hash string, data []byte) error {
	f, err := os.CreateTemp(filepath.Join(s.root, "tmp"), "put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	dst := s.blobPath(hash)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	n := int64(len(data))
	s.mu.Lock()
	if _, have := s.blobs[hash]; !have {
		s.blobs[hash] = n
		s.bytes += n
	}
	s.mu.Unlock()
	return nil
}

// Open returns a reader over one stored segment.
func (s *Store) Open(ref SegmentRef) (io.ReadCloser, error) {
	return os.Open(s.blobPath(ref.Hash))
}

// WriteManifest persists m atomically: marshal to tmp, fsync, rename
// over jobs/<id>.json. Every state transition goes through here, so the
// on-disk manifest is always internally consistent.
func (s *Store) WriteManifest(m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f, err := os.CreateTemp(filepath.Join(s.root, "tmp"), "man-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, s.manifestPath(m.ID)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

func (s *Store) manifestPath(id string) string {
	return filepath.Join(s.root, "jobs", id+".json")
}

// LoadManifests reads every job manifest on disk — the daemon's restart
// path. Unparseable manifests are skipped, not fatal: one torn file
// (impossible under the atomic write, but disks lie) must not brick the
// store.
func (s *Store) LoadManifests() ([]*Manifest, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []*Manifest
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.root, "jobs", e.Name()))
		if err != nil {
			continue
		}
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil || m.ID == "" {
			continue
		}
		out = append(out, &m)
	}
	return out, nil
}

// DeleteManifest removes one job's manifest. Its blobs become garbage
// only if no other manifest references them; the next Sweep reclaims
// those.
func (s *Store) DeleteManifest(id string) error {
	err := os.Remove(s.manifestPath(id))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Sweep is the store's garbage collector. It expires terminal manifests
// older than ttl (by UpdatedAt; ttl <= 0 keeps all manifests), then
// deletes every blob no remaining manifest references. The blob phase
// is skipped while any submit is in flight (BeginWrite), because a
// just-put segment is unreferenced until its manifest lands.
func (s *Store) Sweep(ttl time.Duration) (sweptJobs, sweptBlobs int, err error) {
	manifests, err := s.LoadManifests()
	if err != nil {
		return 0, 0, err
	}
	now := time.Now()
	for _, m := range manifests {
		if ttl > 0 && terminalState(m.State) && now.Sub(m.UpdatedAt) > ttl {
			if derr := s.DeleteManifest(m.ID); derr == nil {
				sweptJobs++
			}
		}
	}

	// The blob phase runs entirely under the mutex: with the lock held
	// no submit can BeginWrite, and writers == 0 means none is mid-spill,
	// so segment references cannot appear between the live-set scan below
	// and the file removals. Loading the manifests fresh here (rather
	// than reusing the TTL scan above) closes the window where a submit
	// completes after that scan and dedups onto a blob this sweep is
	// about to delete — the job's manifest would then reference a file
	// that no longer exists. Manifest directories are small, so the I/O
	// held under the lock is a handful of reads and unlinks.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.writers > 0 {
		return sweptJobs, 0, nil
	}
	fresh, err := s.LoadManifests()
	if err != nil {
		return sweptJobs, 0, err
	}
	live := make(map[string]struct{})
	for _, m := range fresh {
		for _, ref := range m.Segments {
			live[ref.Hash] = struct{}{}
		}
	}
	for hash, n := range s.blobs {
		if _, ok := live[hash]; ok {
			continue
		}
		if rerr := os.Remove(s.blobPath(hash)); rerr != nil && !os.IsNotExist(rerr) {
			continue
		}
		delete(s.blobs, hash)
		s.bytes -= n
		sweptBlobs++
	}
	return sweptJobs, sweptBlobs, nil
}
