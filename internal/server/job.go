// The /v2 job API: asynchronous trace analysis over the persistent
// store. POST /v2/jobs streams the upload through the same
// limiter/cancel/splitter pipeline as /v1/analyze, but instead of
// replaying inline it spills segments into the content-addressed store,
// persists a manifest, and answers 202 with a job id; the replay runs
// on the shard pool behind per-tenant quotas, and the client polls
// GET /v2/jobs/{id}, streams findings from /events, and collects the
// merged envelope from /result. The old /v1/analyze endpoint is a thin
// shim over exactly this path (submit an ephemeral job, wait, relay the
// result), which is what lets every pre-redesign test double as a
// compatibility oracle for the job machinery.
package server

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"spd3/internal/detect"
	"spd3/internal/sample"
	"spd3/internal/stats"
	"spd3/internal/trace"
)

// DetectorProgress is one detector's live progress inside a job status.
type DetectorProgress struct {
	Detector     string `json:"detector"`
	SegmentsDone int    `json:"segments_done"`
	RaceCount    int    `json:"race_count"`
}

// JobStatus is the machine-readable job state served by GET
// /v2/jobs/{id} (and, with state "queued", the 202 body of POST
// /v2/jobs). RaceCount and Progress move while the job runs, so a
// poller watches partial results without touching /events.
type JobStatus struct {
	Tool        string             `json:"tool"`
	Version     string             `json:"version"`
	ID          string             `json:"job_id"`
	Tenant      string             `json:"tenant"`
	Detector    string             `json:"detector"`
	Sequential  bool               `json:"sequential"`
	State       string             `json:"state"`
	TraceBytes  int64              `json:"trace_bytes"`
	StoredBytes int64              `json:"stored_bytes"`
	Segments    int                `json:"segments"`
	Sharded     bool               `json:"sharded"`
	Unsplit     bool               `json:"unsplit,omitempty"`
	Progress    []DetectorProgress `json:"progress,omitempty"`
	RaceCount   int                `json:"race_count"`
	Error       string             `json:"error,omitempty"`
	CreatedAt   time.Time          `json:"created_at"`
	UpdatedAt   time.Time          `json:"updated_at"`
}

// JobList is the GET /v2/jobs response.
type JobList struct {
	Tool    string      `json:"tool"`
	Version string      `json:"version"`
	Jobs    []JobStatus `json:"jobs"`
}

// jobEvent is one SSE frame: an event name and its JSON payload.
type jobEvent struct {
	name string
	data []byte
}

// Job is one analysis job's live state: the durable manifest plus the
// in-memory accumulator, cancellation plumbing, and SSE subscribers.
// All mutable fields are guarded by mu; done closes exactly once, when
// the job reaches a terminal state.
type Job struct {
	mu sync.Mutex
	m  *Manifest

	// names and acc exist while the job runs: the detector fan-out set
	// and one merged verdict per detector, deduplicated job-wide.
	names    []string
	acc      []*mergedVerdict
	segsDone []int

	cancelCh   chan struct{}
	cancelOnce sync.Once
	done       chan struct{}
	subs       map[chan jobEvent]struct{}

	// ephemeral marks a /v1 shim job: deleted as soon as the waiting
	// request has relayed its result, so it never occupies quota or
	// store space beyond the request lifetime.
	ephemeral bool
	// slotFreed guards the one-time release of the tenant's queue slot.
	slotFreed bool
	// noExec marks a queued job whose executor was refused because the
	// server was draining: nothing in this process will ever run it (it
	// resumes at the next Open), so DELETE removes it outright instead
	// of issuing a cancellation no replay will observe.
	noExec bool
}

// cancel requests cancellation; the replay observes it at its next
// Limits.Cancel poll. Idempotent.
func (j *Job) cancel() {
	j.cancelOnce.Do(func() { close(j.cancelCh) })
}

// manifest returns a shallow copy of the job's manifest under the lock.
func (j *Job) manifest() Manifest {
	j.mu.Lock()
	defer j.mu.Unlock()
	return *j.m
}

// status builds the wire status under the lock.
func (j *Job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		Tool:        Tool,
		Version:     Version,
		ID:          j.m.ID,
		Tenant:      j.m.Tenant,
		Detector:    j.m.Detector,
		Sequential:  j.m.Sequential,
		State:       j.m.State,
		TraceBytes:  j.m.TraceBytes,
		StoredBytes: j.m.StoredBytes(),
		Segments:    len(j.m.Segments),
		Sharded:     j.m.Sharded,
		Unsplit:     j.m.Unsplit,
		Error:       j.m.Error,
		CreatedAt:   j.m.CreatedAt,
		UpdatedAt:   j.m.UpdatedAt,
	}
	if !j.m.Sharded {
		st.Segments = 0
	}
	for i, name := range j.names {
		p := DetectorProgress{Detector: name, SegmentsDone: j.segsDone[i]}
		if j.acc != nil {
			p.RaceCount = j.acc[i].count
			st.RaceCount += j.acc[i].count
		}
		st.Progress = append(st.Progress, p)
	}
	if j.m.Result != nil {
		st.RaceCount = 0
		for _, v := range j.m.Result.Verdicts {
			st.RaceCount += v.RaceCount
		}
	}
	return st
}

// subscribe registers an SSE subscriber and returns the channel plus a
// replay of everything the subscriber missed: the races found so far
// and, for a terminal job, the final event. The channel is closed when
// the job finishes (or immediately, after the replay, if it already
// has).
func (j *Job) subscribe() (ch chan jobEvent, replay []jobEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, m := range j.acc {
		for _, r := range m.races {
			replay = append(replay, raceEvent(j.names[i], r))
		}
	}
	if j.m.Result != nil && j.acc == nil {
		// Terminal job loaded from disk: replay from the result.
		for _, v := range j.m.Result.Verdicts {
			for _, r := range v.Races {
				replay = append(replay, raceEvent(v.Detector, r))
			}
		}
	}
	ch = make(chan jobEvent, 256)
	if terminalState(j.m.State) {
		replay = append(replay, j.finalEventLocked())
		close(ch)
		return ch, replay
	}
	j.subs[ch] = struct{}{}
	return ch, replay
}

func (j *Job) unsubscribe(ch chan jobEvent) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// broadcast fans one event to every subscriber. Sends never block: a
// subscriber that has fallen 256 events behind loses this one (SSE is a
// tail, not a journal — /result is the complete record).
func (j *Job) broadcast(ev jobEvent) {
	j.mu.Lock()
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	j.mu.Unlock()
}

// finish closes out the subscriber set with the final event.
func (j *Job) finish() {
	j.mu.Lock()
	ev := j.finalEventLocked()
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
		close(ch)
	}
	j.subs = map[chan jobEvent]struct{}{}
	j.mu.Unlock()
	close(j.done)
}

func (j *Job) finalEventLocked() jobEvent {
	data, _ := json.Marshal(struct {
		State     string `json:"state"`
		RaceCount int    `json:"race_count"`
		Error     string `json:"error,omitempty"`
	}{State: j.m.State, RaceCount: j.raceCountLocked(), Error: j.m.Error})
	return jobEvent{name: "done", data: data}
}

func (j *Job) raceCountLocked() int {
	n := 0
	for _, m := range j.acc {
		n += m.count
	}
	if j.m.Result != nil && j.acc == nil {
		for _, v := range j.m.Result.Verdicts {
			n += v.RaceCount
		}
	}
	return n
}

func raceEvent(detector string, r Race) jobEvent {
	data, _ := json.Marshal(struct {
		Detector string `json:"detector"`
		Race     Race   `json:"race"`
	}{detector, r})
	return jobEvent{name: "race", data: data}
}

func stateEvent(state string) jobEvent {
	data, _ := json.Marshal(struct {
		State string `json:"state"`
	}{state})
	return jobEvent{name: "state", data: data}
}

// newJobID returns a fresh, unguessable job id.
func newJobID() string {
	var b [8]byte
	rand.Read(b[:]) //nolint:errcheck // crypto/rand never fails on supported platforms
	return "j" + hex.EncodeToString(b[:])
}

// tenantOf extracts the request's tenant: the X-SPD3-Tenant header, or
// "default" when absent — single-tenant deployments never see quota
// interference because every request lands in the same bucket.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-SPD3-Tenant"); t != "" {
		return t
	}
	return "default"
}

// submitOpts parameterizes submitJob across its two callers (the /v2
// handler and the /v1 shim).
type submitOpts struct {
	detector  string // validated registry name or "all"
	tenant    string
	withStats bool
	shard     bool // run the splitter (pool exists and shard != "off")
	ephemeral bool // /v1 shim job: delete after the response
	estimate  int64
	sampling  string // validated per-request sampling spec override, or ""
}

// submitJob runs the submit half of a job: admission against the
// tenant's quotas, the streaming spill of the request body into the
// store, and the durable manifest write. On success the job is
// registered, counted, and already handed to the executor. The returned
// error is classified by the caller (quotaErr → 429, trace sentinels →
// their /v1 statuses).
func (s *Server) submitJob(ctx context.Context, body io.Reader, opts submitOpts) (*Job, error) {
	if err := s.quotas.admit(opts.tenant, opts.estimate); err != nil {
		s.shard().Inc(stats.QuotaDenied)
		return nil, err
	}
	admitted := false
	defer func() {
		if !admitted {
			s.quotas.releaseSlot(opts.tenant)
		}
	}()

	s.store.BeginWrite()
	defer s.store.EndWrite()

	limiter := trace.NewLimitedReader(body, s.cfg.MaxBodyBytes)
	br := bufio.NewReaderSize(trace.NewCancelReader(limiter, ctx.Done(), nil), 64<<10)

	sequential, err := trace.PeekHeader(br)
	if err != nil {
		return nil, err
	}
	if opts.detector != "all" {
		for _, d := range detect.Describe() {
			if d.Name == opts.detector && d.Sequential && !sequential {
				return nil, fmt.Errorf("detector %q requires a depth-first trace: %w", opts.detector, trace.ErrSequentialOnly)
			}
		}
	}

	var (
		refs    []SegmentRef
		unsplit bool
	)
	sh := s.shard()
	putRef := func(ref SegmentRef, dup bool) {
		refs = append(refs, ref)
		if dup {
			sh.Inc(stats.StoreDedupHits)
		} else {
			sh.Add(stats.StorePutBytes, ref.Bytes)
		}
	}
	if opts.shard {
		sp, err := trace.NewSplitter(br, trace.SplitConfig{
			MinSegmentBytes: s.cfg.MinSegmentBytes,
			MaxSegmentBytes: s.cfg.MaxSegmentBytes,
		})
		if err != nil {
			return nil, err
		}
	split:
		for {
			seg, err := sp.Next()
			switch {
			case errors.Is(err, io.EOF):
				break split
			case errors.Is(err, trace.ErrSegmentOversize):
				// One finish scope refuses to fit a segment: the rest of
				// the stream (including the splitter's buffered prefix)
				// spills to the store as a single blob, hashed while
				// streaming so nothing is materialized in memory.
				ref, dup, perr := s.store.PutStream(sp.Unsplit())
				if perr != nil {
					return nil, perr
				}
				putRef(ref, dup)
				unsplit = true
				sh.Inc(stats.SrvUnsplit)
				break split
			case err != nil:
				return nil, err
			}
			ref, dup, perr := s.store.Put(seg)
			if perr != nil {
				return nil, perr
			}
			putRef(ref, dup)
		}
		sh.Add(stats.TraceSegments, int64(len(refs)))
	} else {
		ref, dup, perr := s.store.PutStream(br)
		if perr != nil {
			return nil, perr
		}
		putRef(ref, dup)
	}

	streamed := limiter.Count()
	sh.Add(stats.SrvBytesRead, streamed)
	if opts.shard || opts.detector != "all" {
		sh.Add(stats.SrvStreamedBytes, streamed)
	}

	now := time.Now()
	m := &Manifest{
		ID:         newJobID(),
		Tenant:     opts.tenant,
		Detector:   opts.detector,
		Sequential: sequential,
		WithStats:  opts.withStats,
		Sampling:   opts.sampling,
		Sharded:    opts.shard,
		Unsplit:    unsplit,
		Segments:   refs,
		TraceBytes: streamed,
		State:      StateQueued,
		CreatedAt:  now,
		UpdatedAt:  now,
	}
	// Settle the real stored bytes before the manifest lands: a refusal
	// here (the upload's true size only became known during the spill)
	// leaves no manifest behind, so the spilled blobs are garbage for
	// the next sweep and the tenant's gauge never overshoots.
	if err := s.quotas.charge(opts.tenant, m.StoredBytes(), opts.estimate); err != nil {
		sh.Inc(stats.QuotaDenied)
		return nil, err
	}
	if err := s.store.WriteManifest(m); err != nil {
		s.quotas.releaseBytes(opts.tenant, m.StoredBytes())
		return nil, err
	}
	admitted = true

	j := &Job{
		m:         m,
		cancelCh:  make(chan struct{}),
		done:      make(chan struct{}),
		subs:      map[chan jobEvent]struct{}{},
		ephemeral: opts.ephemeral,
	}
	s.jobsMu.Lock()
	s.jobs[m.ID] = j
	s.jobsMu.Unlock()
	sh.Inc(stats.JobSubmitted)
	sh.Inc(stats.JobQueued)
	s.logf("job %s submitted tenant=%s detector=%s bytes=%d segments=%d",
		m.ID, opts.tenant, opts.detector, streamed, len(refs))
	go s.runJob(j)
	return j, nil
}

// replaySegment replays one stored segment into a fresh instance of the
// named detector, streaming each distinct race through onRace (the
// job-level accumulator) and folding the run's stats into the server
// aggregate. When sampling is in effect for (tenant, sampling) the
// detector is gated behind the tenant's persistent governor's shared
// rate cell, and the timed replay feeds the governor's feedback loop —
// rates adapt across segments and across jobs.
func (s *Server) replaySegment(name, tenant, sampling string, rd io.Reader, lim trace.Limits, onRace func(detect.Race)) (stats.Snapshot, error) {
	sink := detect.NewSink(false, s.cfg.MaxRacesPerReport)
	rec := stats.New(1)
	sink.SetStats(rec.Shard(0))
	sink.SetOnRace(func(r detect.Race) bool {
		onRace(r)
		return false
	})
	gov := s.samplers.governor(tenant, sampling)
	var smp *sample.Sampler
	if gov != nil {
		smp = gov.Sampler()
	}
	det, err := detect.New(name, detect.FactoryOpts{Sink: sink, Stats: rec, Sampler: smp})
	if err != nil {
		return stats.Snapshot{}, err
	}
	start := time.Now()
	replayErr := trace.ReplayWithLimits(rd, det, lim)
	wall := time.Since(start)
	snap := rec.Snapshot()
	snap.Footprint = det.Footprint()
	if gov != nil {
		gov.ObserveSnapshot(snap, wall)
	}
	s.mu.Lock()
	s.agg.Merge(snap)
	s.mu.Unlock()
	return snap, replayErr
}

// runJob is the executor: it fans the job's (segment, detector) pairs
// across the shard pool, bounded by the tenant's shard semaphore so one
// tenant's backlog cannot monopolize the pool, then finalizes the
// manifest with the merged result. It runs on its own goroutine; Drain
// waits for it like any in-flight analysis.
func (s *Server) runJob(j *Job) {
	if !s.beginJob(j.ephemeral) {
		// Draining: the job stays queued on disk and resumes when the
		// next daemon opens the store.
		j.mu.Lock()
		j.noExec = true
		j.mu.Unlock()
		return
	}
	defer s.endJob()

	m := j.manifest()
	names := []string{m.Detector}
	if m.Detector == "all" {
		names = eligibleDetectors(m.Sequential)
	}
	j.mu.Lock()
	j.names = names
	j.segsDone = make([]int, len(names))
	j.acc = make([]*mergedVerdict, len(names))
	for i, n := range names {
		j.acc[i] = &mergedVerdict{detector: n, seen: map[raceKey]struct{}{}, races: []Race{}}
	}
	j.m.State = StateRunning
	j.m.UpdatedAt = time.Now()
	man := *j.m
	j.mu.Unlock()
	sh := s.shard()
	sh.Add(stats.JobQueued, -1)
	sh.Inc(stats.JobRunning)
	if !s.killed.Load() {
		s.store.WriteManifest(&man) //nolint:errcheck // progress persistence is best-effort; terminal write is checked
	}
	j.broadcast(stateEvent(StateRunning))

	ctx, cancelCtx := context.WithCancel(context.Background())
	defer cancelCtx()
	go func() {
		select {
		case <-j.cancelCh:
			cancelCtx()
		case <-ctx.Done():
		}
	}()
	lim := s.cfg.Limits
	lim.Cancel = j.cancelCh

	start := time.Now()
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		j.cancel() // one failed segment aborts the rest of the fan-out
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr != nil
	}

	tsem := s.quotas.shardSem(m.Tenant)
	segJob := func(di int, ref SegmentRef) {
		rd, err := s.store.Open(ref)
		if err != nil {
			setErr(err)
			return
		}
		defer rd.Close()
		s.shard().Inc(stats.JobSegmentReplays)
		snap, err := s.replaySegment(names[di], m.Tenant, m.Sampling, bufio.NewReaderSize(rd, 64<<10), lim, func(r detect.Race) {
			j.addRace(di, r, s.cfg.MaxRacesPerReport)
		})
		if err != nil {
			setErr(err)
			return
		}
		j.mu.Lock()
		j.acc[di].stats.Merge(snap)
		j.segsDone[di]++
		j.mu.Unlock()
	}

fanout:
	for _, ref := range m.Segments {
		for di := range names {
			if failed() {
				break fanout
			}
			if tsem != nil {
				select {
				case tsem <- struct{}{}:
				case <-ctx.Done():
					setErr(trace.ErrCanceled)
					break fanout
				}
			}
			release := func() {
				if tsem != nil {
					<-tsem
				}
			}
			if s.pool != nil {
				di, ref := di, ref
				if !s.pool.run(ctx, s.shard(), &wg, func() {
					defer release()
					segJob(di, ref)
				}) {
					release()
					setErr(trace.ErrCanceled)
					break fanout
				}
			} else {
				segJob(di, ref)
				release()
			}
		}
	}
	wg.Wait()
	if ctx.Err() != nil && !failed() {
		setErr(trace.ErrCanceled)
	}
	s.finalizeJob(j, names, firstErr, time.Since(start))
}

// addRace folds one streamed race into the job accumulator (dedup is
// job-wide per detector) and broadcasts fresh races to SSE subscribers.
func (j *Job) addRace(di int, r detect.Race, maxRaces int) {
	wire := Race{Kind: r.Kind.String(), Region: r.Region, Index: r.Index, Prev: r.PrevStep, Cur: r.CurStep}
	j.mu.Lock()
	m := j.acc[di]
	k := raceKey{wire.Kind, wire.Region, wire.Index}
	if _, dup := m.seen[k]; dup {
		j.mu.Unlock()
		return
	}
	m.seen[k] = struct{}{}
	m.racy = true
	m.count++
	if len(m.races) < maxRaces {
		m.races = append(m.races, wire)
	} else {
		m.capped = true
	}
	name := j.names[di]
	j.mu.Unlock()
	j.broadcast(raceEvent(name, wire))
}

// finalizeJob moves the job to its terminal state, persists the result
// (skipped after Kill, simulating a daemon that died mid-replay), and
// settles counters and quota.
func (s *Server) finalizeJob(j *Job, names []string, runErr error, wall time.Duration) {
	// The terminal state is computed on a copy and persisted to disk
	// BEFORE it becomes visible through the in-memory job: a poller that
	// saw "done" could DELETE immediately, and if that removal's
	// DeleteManifest ran before this write, the write would resurrect a
	// manifest no table entry owns — invisible to /statsz, never TTL
	// expired, pinning its blobs against every future sweep.
	j.mu.Lock()
	man := *j.m
	man.UpdatedAt = time.Now()
	var verdicts []Verdict
	switch {
	case runErr != nil && errors.Is(runErr, trace.ErrCanceled):
		man.State = StateCanceled
		man.Error = "analysis canceled"
	case runErr != nil:
		man.State = StateFailed
		man.Error = runErr.Error()
		man.ErrorStatus = statusFor(runErr)
	default:
		man.State = StateDone
		ms := float64(wall) / float64(time.Millisecond)
		verdicts = make([]Verdict, len(j.acc))
		for i, acc := range j.acc {
			verdicts[i] = Verdict{
				Detector:   acc.detector,
				Racy:       acc.racy,
				RaceCount:  acc.count,
				Races:      acc.races,
				Capped:     acc.capped,
				DurationMS: ms,
			}
			sortWireRaces(verdicts[i].Races)
			if man.WithStats {
				snap := acc.stats
				verdicts[i].Stats = &snap
			}
		}
		rep := &Report{
			Tool:       Tool,
			Version:    Version,
			Detector:   man.Detector,
			Sequential: man.Sequential,
			TraceBytes: man.TraceBytes,
			Verdicts:   verdicts,
			Sharded:    man.Sharded,
		}
		if man.Sharded {
			rep.Segments = len(man.Segments)
		}
		if man.Detector == "all" {
			agree := true
			for _, v := range verdicts {
				agree = agree && v.Racy == verdicts[0].Racy
			}
			rep.Agree = &agree
		}
		man.Result = rep
	}
	j.mu.Unlock()

	if !s.killed.Load() {
		if err := s.store.WriteManifest(&man); err != nil {
			s.logf("job %s: persisting terminal manifest: %v", man.ID, err)
		}
	}
	j.mu.Lock()
	*j.m = man
	j.mu.Unlock()

	sh := s.shard()
	sh.Add(stats.JobRunning, -1)
	switch man.State {
	case StateDone:
		sh.Inc(stats.JobDone)
		sh.Add(stats.SrvAnalyses, int64(len(verdicts)))
	case StateFailed:
		sh.Inc(stats.JobFailed)
	case StateCanceled:
		sh.Inc(stats.JobCanceled)
	}
	if !s.killed.Load() {
		s.releaseSlotOnce(j)
	}
	s.logf("job %s %s tenant=%s detector=%s segments=%d err=%v",
		man.ID, man.State, man.Tenant, man.Detector, len(man.Segments), runErr)
	j.finish()
	s.sampleMem()
}

// releaseSlotOnce returns the job's tenant queue slot exactly once.
func (s *Server) releaseSlotOnce(j *Job) {
	j.mu.Lock()
	freed := j.slotFreed
	j.slotFreed = true
	tenant := j.m.Tenant
	j.mu.Unlock()
	if !freed {
		s.quotas.releaseSlot(tenant)
	}
}

// removeJob deletes a job outright: manifest gone, stored bytes
// released, dropped from the table. The blobs become garbage for the
// next sweep. Callers must only remove terminal jobs.
func (s *Server) removeJob(j *Job) {
	man := j.manifest()
	s.jobsMu.Lock()
	delete(s.jobs, man.ID)
	s.jobsMu.Unlock()
	if err := s.store.DeleteManifest(man.ID); err != nil {
		s.logf("job %s: deleting manifest: %v", man.ID, err)
	}
	s.releaseSlotOnce(j)
	s.quotas.releaseBytes(man.Tenant, man.StoredBytes())
}

// lookupJob finds one job by path id.
func (s *Server) lookupJob(id string) *Job {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	return s.jobs[id]
}

// sortWireRaces orders a verdict's races like detect.Sink does, so the
// merged report is deterministic regardless of segment completion
// order.
func sortWireRaces(races []Race) {
	sort.Slice(races, func(i, k int) bool {
		a, b := races[i], races[k]
		if a.Region != b.Region {
			return a.Region < b.Region
		}
		if a.Index != b.Index {
			return a.Index < b.Index
		}
		return a.Kind < b.Kind
	})
}

// ---- /v2 handlers ----

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("detector")
	if name == "" {
		name = "spd3"
	}
	if name != "all" && !detect.Registered(name) {
		s.writeError(w, http.StatusNotFound, "unknown detector %q", name)
		return
	}
	if s.Draining() {
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	sampling := r.URL.Query().Get("sample")
	if _, err := sample.Parse(sampling); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad sample spec %q: %v", sampling, err)
		return
	}
	opts := submitOpts{
		detector:  name,
		tenant:    tenantOf(r),
		withStats: r.URL.Query().Get("stats") != "",
		shard:     s.pool != nil && r.URL.Query().Get("shard") != "off",
		estimate:  max(r.ContentLength, 0),
		sampling:  sampling,
	}
	j, err := s.submitJob(r.Context(), r.Body, opts)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	st := j.status()
	w.Header().Set("Location", "/v2/jobs/"+st.ID)
	s.writeJSON(w, http.StatusAccepted, st)
}

// writeSubmitError classifies a submitJob failure: quota exhaustion is
// 429 with Retry-After, trace sentinels keep their /v1 statuses, and a
// canceled upload (client gone) is 504.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	var qe *quotaErr
	if errors.As(err, &qe) {
		w.Header().Set("Retry-After", strconv.Itoa(int(qe.retryAfter.Seconds()+0.5)))
		s.writeError(w, http.StatusTooManyRequests, "%v", qe)
		return
	}
	if errors.Is(err, trace.ErrCanceled) {
		s.writeError(w, http.StatusGatewayTimeout, "upload canceled: %v", err)
		return
	}
	s.writeError(w, statusFor(err), "%v", err)
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.jobsMu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.jobsMu.Unlock()
	list := JobList{Tool: Tool, Version: Version, Jobs: []JobStatus{}}
	// Same tenant mapping as submission: a missing header scopes the
	// listing to "default" rather than exposing every tenant's job ids
	// (which grant status/result/cancel access).
	tenant := tenantOf(r)
	for _, j := range jobs {
		st := j.status()
		if st.Tenant != tenant {
			continue
		}
		list.Jobs = append(list.Jobs, st)
	}
	sort.Slice(list.Jobs, func(i, k int) bool {
		a, b := list.Jobs[i], list.Jobs[k]
		if !a.CreatedAt.Equal(b.CreatedAt) {
			return a.CreatedAt.Before(b.CreatedAt)
		}
		return a.ID < b.ID
	})
	s.writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		s.writeError(w, http.StatusNotFound, "no such job")
		return
	}
	s.writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		s.writeError(w, http.StatusNotFound, "no such job")
		return
	}
	m := j.manifest()
	switch m.State {
	case StateDone:
		s.writeJSON(w, http.StatusOK, m.Result)
	case StateFailed:
		status := m.ErrorStatus
		if status == 0 {
			status = http.StatusInternalServerError
		}
		s.writeError(w, status, "%s", m.Error)
	case StateCanceled:
		s.writeError(w, http.StatusGatewayTimeout, "analysis canceled")
	default:
		// Not terminal yet: answer like the 202 submit did, so pollers
		// can hit /result in a loop until it turns into the envelope.
		s.writeJSON(w, http.StatusAccepted, j.status())
	}
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		s.writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if m := j.manifest(); !terminalState(m.State) {
		// A queued job whose executor was refused during drain has no
		// replay to observe a cancellation: finalize it to canceled here
		// (exactly one request wins the queued→canceled transition) and
		// fall through to removal, instead of leaving it non-terminal
		// until the next daemon restart.
		j.mu.Lock()
		orphaned := j.m.State == StateQueued && j.noExec
		if orphaned {
			j.m.State = StateCanceled
			j.m.Error = "analysis canceled"
			j.m.UpdatedAt = time.Now()
		}
		j.mu.Unlock()
		if !orphaned {
			// Running or queued: DELETE is a cancellation request, routed
			// through the same Limits.Cancel plumbing as /v1 deadlines.
			// The job survives (state canceled) until deleted again.
			j.cancel()
			s.writeJSON(w, http.StatusAccepted, j.status())
			return
		}
		sh := s.shard()
		sh.Add(stats.JobQueued, -1)
		sh.Inc(stats.JobCanceled)
		j.finish()
	}
	s.removeJob(j)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		s.writeError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch, replay := j.subscribe()
	defer j.unsubscribe(ch)
	write := func(ev jobEvent) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
	}
	for _, ev := range replay {
		write(ev)
	}
	fl.Flush()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			write(ev)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
