package server

import (
	"net/http"
	"testing"

	"spd3/internal/stats"
	"spd3/internal/trace"
)

// amplified returns the benign-race benchmark trace amplified to copies
// runs — each copy's wrap finish is a top-level boundary, so the
// splitter can cut it back into roughly copy-sized segments.
func amplified(t *testing.T, copies int) []byte {
	t.Helper()
	amp, err := trace.AmplifyBytes(recordRacyMonteCarlo(t), copies)
	if err != nil {
		t.Fatal(err)
	}
	return amp
}

// TestShardedAnalyze is the tentpole's end-to-end shape: a large
// amplified trace streams in, splits at finish boundaries, fans across
// the worker pool, and the merged report carries the same verdict a
// whole-trace replay reaches.
func TestShardedAnalyze(t *testing.T) {
	amp := amplified(t, 12)
	_, ts := newTestServer(t, Config{MinSegmentBytes: 1})

	resp, body := post(t, ts.URL+"/v1/analyze?detector=spd3", amp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	rep := decodeReport(t, body)
	if !rep.Sharded {
		t.Fatal("report not marked sharded")
	}
	if rep.Segments <= 1 {
		t.Fatalf("segments = %d, want > 1 for a 12x-amplified trace", rep.Segments)
	}
	if len(rep.Verdicts) != 1 || !rep.Verdicts[0].Racy {
		t.Fatalf("verdicts = %+v, want one racy spd3 verdict", rep.Verdicts)
	}
	if rep.TraceBytes != int64(len(amp)) {
		t.Fatalf("trace_bytes = %d, want %d", rep.TraceBytes, len(amp))
	}

	// shard=off forces the single-stream replay; the verdict must not
	// change, only the execution strategy.
	resp, body = post(t, ts.URL+"/v1/analyze?detector=spd3&shard=off", amp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard=off status = %d\n%s", resp.StatusCode, body)
	}
	off := decodeReport(t, body)
	if off.Sharded || off.Segments != 0 {
		t.Fatalf("shard=off report sharded=%v segments=%d", off.Sharded, off.Segments)
	}
	if off.Verdicts[0].Racy != rep.Verdicts[0].Racy || off.Verdicts[0].RaceCount != rep.Verdicts[0].RaceCount {
		t.Fatalf("sharded verdict (racy=%v races=%d) != streamed verdict (racy=%v races=%d)",
			rep.Verdicts[0].Racy, rep.Verdicts[0].RaceCount, off.Verdicts[0].Racy, off.Verdicts[0].RaceCount)
	}
}

// TestShardedDifferential: detector=all shards per detector; every
// detector sees every segment and they still agree.
func TestShardedDifferential(t *testing.T) {
	amp := amplified(t, 6)
	_, ts := newTestServer(t, Config{MinSegmentBytes: 1})

	resp, body := post(t, ts.URL+"/v1/analyze?detector=all", amp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	rep := decodeReport(t, body)
	if !rep.Sharded || rep.Segments <= 1 {
		t.Fatalf("sharded=%v segments=%d, want sharded multi-segment", rep.Sharded, rep.Segments)
	}
	if len(rep.Verdicts) < 2 {
		t.Fatalf("differential mode returned %d verdicts", len(rep.Verdicts))
	}
	if rep.Agree == nil || !*rep.Agree {
		t.Fatalf("agree = %v, want true: %+v", rep.Agree, rep.Verdicts)
	}
	for _, v := range rep.Verdicts {
		if !v.Racy {
			t.Fatalf("detector %s missed the race on the amplified trace", v.Detector)
		}
	}
}

// TestShardingDisabled: negative ShardWorkers turns the splitter off
// entirely; analyses stream through a single replay.
func TestShardingDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{ShardWorkers: -1})
	resp, body := post(t, ts.URL+"/v1/analyze?detector=spd3", amplified(t, 4))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	rep := decodeReport(t, body)
	if rep.Sharded || rep.Segments != 0 {
		t.Fatalf("sharded=%v segments=%d with sharding disabled", rep.Sharded, rep.Segments)
	}
	if !rep.Verdicts[0].Racy {
		t.Fatal("verdict lost without sharding")
	}
}

// TestShardedUnsplitFallback: a trace whose single finish scope exceeds
// the segment cap falls back to one streamed replay instead of failing
// or buffering without bound.
func TestShardedUnsplitFallback(t *testing.T) {
	data := synthTrace(t, 30_000) // no interior boundary
	_, ts := newTestServer(t, Config{MinSegmentBytes: 1, MaxSegmentBytes: 1024})

	resp, body := post(t, ts.URL+"/v1/analyze?detector=spd3", data)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	rep := decodeReport(t, body)
	if !rep.Sharded || rep.Segments != 1 {
		t.Fatalf("sharded=%v segments=%d, want sharded single-segment fallback", rep.Sharded, rep.Segments)
	}
	st := getStatsz(t, ts.URL)
	if got := st.Stats.Get(stats.SrvUnsplit); got != 1 {
		t.Fatalf("srv.unsplit = %d, want 1", got)
	}
}

// TestShardObservability pins the new /statsz surface: streamed-byte and
// segment counters move, the pool gauges read sensibly at idle, and the
// memory gauges are live.
func TestShardObservability(t *testing.T) {
	amp := amplified(t, 8)
	_, ts := newTestServer(t, Config{MinSegmentBytes: 1})

	resp, body := post(t, ts.URL+"/v1/analyze?detector=spd3", amp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	rep := decodeReport(t, body)

	st := getStatsz(t, ts.URL)
	if got := st.Stats.Get(stats.SrvStreamedBytes); got != int64(len(amp)) {
		t.Errorf("srv.streamed_bytes = %d, want %d", got, len(amp))
	}
	if got := st.Stats.Get(stats.SrvBytesRead); got != int64(len(amp)) {
		t.Errorf("srv.bytes_read = %d, want %d", got, len(amp))
	}
	if got := st.Stats.Get(stats.TraceSegments); got != int64(rep.Segments) {
		t.Errorf("trace.segments = %d, report says %d", got, rep.Segments)
	}
	if st.ShardWorkers <= 0 {
		t.Errorf("shard_workers = %d, want > 0", st.ShardWorkers)
	}
	if st.ShardBusy != 0 {
		t.Errorf("shard_busy = %d at idle, want 0", st.ShardBusy)
	}
	if st.HeapAllocBytes == 0 || st.PeakHeapBytes == 0 {
		t.Errorf("memory gauges dead: heap=%d peak=%d", st.HeapAllocBytes, st.PeakHeapBytes)
	}
	if st.PeakHeapBytes < st.HeapAllocBytes/2 {
		t.Errorf("peak heap %d implausibly below current heap %d", st.PeakHeapBytes, st.HeapAllocBytes)
	}
}
