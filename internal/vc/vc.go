// Package vc implements the vector clocks and epochs used by the
// FastTrack baseline (Flanagan & Freund, PLDI 2009).
//
// A vector clock maps a task index to a logical clock. In the paper's
// comparison (§6.3, §6.4) FastTrack's central weakness is that clocks —
// and therefore the per-location read metadata — grow with the number of
// concurrent threads, whereas SPD3 keeps O(1) space per location. This
// reproduction assigns one clock slot per *task*, so the fine-grained
// task-parallel variants make the blow-up visible exactly as the paper
// describes (converting JGF to fine-grained Java threads "quickly leads
// to OutOfMemoryErrors").
package vc

import (
	"fmt"
	"strings"
)

// TID is a dense task index into vector clocks.
type TID int32

// Epoch is FastTrack's scalar clock@tid pair, packed into one word:
// the high 32 bits hold the clock, the low 32 bits the TID.
type Epoch uint64

// NewEpoch packs clock c of task t.
func NewEpoch(t TID, c uint32) Epoch {
	return Epoch(uint64(c)<<32 | uint64(uint32(t)))
}

// TID returns the task index.
func (e Epoch) TID() TID { return TID(uint32(e)) }

// Clock returns the clock component.
func (e Epoch) Clock() uint32 { return uint32(e >> 32) }

// Zero is the null epoch (task 0, clock 0 is never used for accesses
// because task clocks start at 1).
const Zero Epoch = 0

func (e Epoch) String() string {
	if e == Zero {
		return "⊥"
	}
	return fmt.Sprintf("%d@%d", e.Clock(), e.TID())
}

// LEQ reports e ≤ c, i.e. the access at e happens before everything the
// clock c has seen: Clock(e) <= c[TID(e)].
func (e Epoch) LEQ(c *VC) bool {
	return e == Zero || e.Clock() <= c.Get(e.TID())
}

// VC is a growable vector clock.
type VC struct {
	c []uint32
}

// New returns an empty vector clock.
func New() *VC { return &VC{} }

// Get returns the clock of task t (0 when unset).
func (v *VC) Get(t TID) uint32 {
	if int(t) >= len(v.c) {
		return 0
	}
	return v.c[t]
}

// Set assigns the clock of task t, growing the vector as needed.
func (v *VC) Set(t TID, c uint32) {
	v.grow(int(t) + 1)
	v.c[t] = c
}

// Tick increments the clock of task t.
func (v *VC) Tick(t TID) {
	v.grow(int(t) + 1)
	v.c[t]++
}

// Join merges o into v pointwise (v := v ⊔ o).
func (v *VC) Join(o *VC) {
	v.grow(len(o.c))
	for i, oc := range o.c {
		if oc > v.c[i] {
			v.c[i] = oc
		}
	}
}

// Copy returns an independent copy of v.
func (v *VC) Copy() *VC {
	n := &VC{c: make([]uint32, len(v.c))}
	copy(n.c, v.c)
	return n
}

// Assign replaces v's contents with o's.
func (v *VC) Assign(o *VC) {
	v.c = v.c[:0]
	v.grow(len(o.c))
	copy(v.c, o.c)
}

// Epoch returns task t's current epoch according to v.
func (v *VC) Epoch(t TID) Epoch { return NewEpoch(t, v.Get(t)) }

// LEQ reports whether v ≤ o pointwise.
func (v *VC) LEQ(o *VC) bool {
	for i, c := range v.c {
		if c > o.Get(TID(i)) {
			return false
		}
	}
	return true
}

// AnyGT returns the index of some component where v > o, or -1.
func (v *VC) AnyGT(o *VC) TID {
	for i, c := range v.c {
		if c > o.Get(TID(i)) {
			return TID(i)
		}
	}
	return -1
}

// Len returns the allocated width of the clock.
func (v *VC) Len() int { return len(v.c) }

// Bytes returns the analytic size of the clock's storage.
func (v *VC) Bytes() int64 { return int64(cap(v.c)) * 4 }

func (v *VC) grow(n int) {
	if n <= len(v.c) {
		return
	}
	if n <= cap(v.c) {
		v.c = v.c[:n]
		return
	}
	c := make([]uint32, n, max(n, 2*cap(v.c)))
	copy(c, v.c)
	v.c = c
}

func (v *VC) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, c := range v.c {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	b.WriteByte(']')
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
