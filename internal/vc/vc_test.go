package vc

import "testing"

func TestEpochPacking(t *testing.T) {
	for _, c := range []struct {
		tid TID
		clk uint32
	}{{0, 0}, {0, 1}, {5, 7}, {1 << 20, 1 << 30}, {(1 << 31) - 1, ^uint32(0)}} {
		e := NewEpoch(c.tid, c.clk)
		if e.TID() != c.tid || e.Clock() != c.clk {
			t.Errorf("pack(%d,%d) -> (%d,%d)", c.tid, c.clk, e.TID(), e.Clock())
		}
	}
	if Zero != NewEpoch(0, 0) {
		t.Error("Zero must be 0@0")
	}
}

func TestEpochLEQ(t *testing.T) {
	c := New()
	c.Set(3, 10)
	if !NewEpoch(3, 10).LEQ(c) || !NewEpoch(3, 9).LEQ(c) {
		t.Error("epoch within clock must be LEQ")
	}
	if NewEpoch(3, 11).LEQ(c) {
		t.Error("epoch beyond clock must not be LEQ")
	}
	if NewEpoch(7, 1).LEQ(c) {
		t.Error("epoch of unseen tid must not be LEQ")
	}
	if !Zero.LEQ(c) {
		t.Error("Zero is LEQ everything")
	}
}

func TestGetSetTick(t *testing.T) {
	v := New()
	if v.Get(100) != 0 {
		t.Error("unset component must read 0")
	}
	v.Set(2, 5)
	v.Tick(2)
	v.Tick(4)
	if v.Get(2) != 6 || v.Get(4) != 1 || v.Get(3) != 0 {
		t.Errorf("clock = %v", v)
	}
}

func TestJoin(t *testing.T) {
	a, b := New(), New()
	a.Set(0, 3)
	a.Set(2, 1)
	b.Set(0, 1)
	b.Set(1, 9)
	a.Join(b)
	if a.Get(0) != 3 || a.Get(1) != 9 || a.Get(2) != 1 {
		t.Errorf("join = %v", a)
	}
}

func TestCopyIndependent(t *testing.T) {
	a := New()
	a.Set(1, 1)
	b := a.Copy()
	b.Tick(1)
	if a.Get(1) != 1 || b.Get(1) != 2 {
		t.Errorf("copy not independent: a=%v b=%v", a, b)
	}
}

func TestAssign(t *testing.T) {
	a, b := New(), New()
	a.Set(5, 5)
	b.Set(1, 1)
	a.Assign(b)
	if a.Get(5) != 0 || a.Get(1) != 1 {
		t.Errorf("assign = %v", a)
	}
}

func TestLEQAndAnyGT(t *testing.T) {
	a, b := New(), New()
	a.Set(0, 1)
	a.Set(1, 2)
	b.Set(0, 1)
	b.Set(1, 2)
	b.Set(2, 1)
	if !a.LEQ(b) || b.LEQ(a) {
		t.Error("LEQ wrong")
	}
	if got := b.AnyGT(a); got != 2 {
		t.Errorf("AnyGT = %d, want 2", got)
	}
	if got := a.AnyGT(b); got != -1 {
		t.Errorf("AnyGT = %d, want -1", got)
	}
}

func TestStringForms(t *testing.T) {
	v := New()
	v.Set(0, 1)
	v.Set(2, 3)
	if got := v.String(); got != "[1 0 3]" {
		t.Errorf("VC String = %q", got)
	}
	if got := NewEpoch(2, 7).String(); got != "7@2" {
		t.Errorf("Epoch String = %q", got)
	}
	if got := Zero.String(); got != "⊥" {
		t.Errorf("Zero String = %q", got)
	}
	if New().Len() != 0 || v.Len() != 3 {
		t.Error("Len wrong")
	}
	if v.Epoch(2) != NewEpoch(2, 3) {
		t.Error("Epoch accessor wrong")
	}
}

func TestBytesGrowth(t *testing.T) {
	v := New()
	if v.Bytes() != 0 {
		t.Error("fresh clock must account 0 bytes")
	}
	v.Set(999, 1)
	if v.Bytes() < 1000*4 {
		t.Errorf("bytes = %d, want >= 4000", v.Bytes())
	}
}
