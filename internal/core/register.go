package core

import "spd3/internal/detect"

// The SPD3 detectors self-register (database/sql style): the shipping
// configurations under their user-facing names, the ablation
// configurations as hidden variants reachable by the harness and cmd
// tools but absent from detect.Names.
func init() {
	detect.Register("spd3", factory(Options{Sync: SyncCAS}))
	detect.Register("spd3-mutex", factory(Options{Sync: SyncMutex}))
	detect.RegisterVariant("spd3-stepcache", factory(Options{Sync: SyncCAS, StepCache: true}))
	detect.RegisterVariant("spd3-walk", factory(Options{Sync: SyncCAS, NoFingerprint: true, NoDMHPMemo: true}))
	detect.RegisterVariant("spd3-fp", factory(Options{Sync: SyncCAS, NoDMHPMemo: true}))
	detect.RegisterVariant("spd3-flat", factory(Options{Sync: SyncCAS, FlatShadow: true}))
}

func factory(o Options) detect.Factory {
	return func(fo detect.FactoryOpts) detect.Detector {
		o := o
		o.Stats = fo.Stats
		o.Sampler = fo.Sampler
		return NewWith(fo.Sink, o)
	}
}
