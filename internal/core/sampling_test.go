package core_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"spd3/internal/core"
	"spd3/internal/detect"
	_ "spd3/internal/fasttrack" // registry entry for the wrap test
	"spd3/internal/progen"
	"spd3/internal/sample"
	"spd3/internal/stats"
	"spd3/internal/task"
)

// diffSeeds sizes the progen corpus for the sampling differential: the
// ISSUE's acceptance bar is that sampling off is byte-identical to no
// sampling and that sampled verdicts are a subset, over 150 seeds.
const diffSeeds = 150

// raceKeys renders the sink's deduplicated races as a sorted, canonical
// list of (kind, region, element) strings.
func raceKeys(sink *detect.Sink) []string {
	var keys []string
	for _, r := range sink.Races() {
		keys = append(keys, fmt.Sprintf("%v %s[%d]", r.Kind, r.Region, r.Index))
	}
	sort.Strings(keys)
	return keys
}

// progenRaces runs generated program seed under registry SPD3 gated by
// smp (nil: no sampling) and returns the canonical race list. The
// sequential executor plus deterministic coins make the result a pure
// function of (seed, smp).
func progenRaces(t *testing.T, seed int64, smp *sample.Sampler) []string {
	t.Helper()
	sink := detect.NewSink(false, 0)
	det, err := detect.New("spd3", detect.FactoryOpts{Sink: sink, Sampler: smp})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := task.New(task.Config{Executor: task.Sequential, Workers: 1, Detector: det})
	if err != nil {
		t.Fatal(err)
	}
	if err := progen.Run(rt, progen.Generate(seed, progen.Config{}), nil); err != nil {
		t.Fatal(err)
	}
	return raceKeys(sink)
}

// subset reports whether every element of a appears in b (both sorted).
func subset(a, b []string) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
	}
	return true
}

// TestSamplingOffIdenticalVerdicts: an Off sampler must leave the
// detector untouched — race-for-race identical to no sampler at all.
func TestSamplingOffIdenticalVerdicts(t *testing.T) {
	off := sample.New(sample.Config{Mode: sample.Off})
	for seed := int64(0); seed < diffSeeds; seed++ {
		full := progenRaces(t, seed, nil)
		got := progenRaces(t, seed, off)
		if !reflect.DeepEqual(full, got) {
			t.Fatalf("seed %d: off-sampler races %v != unsampled races %v", seed, got, full)
		}
	}
}

// TestSampledRacesAreSubset is the measured form of the soundness
// argument: a skipped check only omits a recording, so every race a
// sampled run reports must also be reported by the full run — sampling
// produces false negatives, never false positives.
func TestSampledRacesAreSubset(t *testing.T) {
	for _, mode := range []sample.Mode{sample.Bernoulli, sample.Page, sample.Burst} {
		for seed := int64(0); seed < diffSeeds; seed++ {
			full := progenRaces(t, seed, nil)
			smp := sample.NewSeeded(sample.Config{Mode: mode, Rate: 0.3}, uint64(seed))
			got := progenRaces(t, seed, smp)
			if !subset(got, full) {
				t.Fatalf("%v seed %d: sampled races %v not a subset of full races %v",
					mode, seed, got, full)
			}
		}
	}
}

// TestSPD3NotWrapped: core implements NativeSampler, so the registry
// must hand back the detector itself — the gate sits inside the shadow
// protocols, not in a generic wrapper that would double-count.
func TestSPD3NotWrapped(t *testing.T) {
	smp := sample.New(sample.Config{Mode: sample.Bernoulli, Rate: 0.5})
	det, err := detect.New("spd3", detect.FactoryOpts{Sink: detect.NewSink(false, 0), Sampler: smp})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := det.(*core.Detector); !ok {
		t.Fatalf("sampled spd3 detector is %T, want *core.Detector (native sampling)", det)
	}

	// A detector without native support must get the generic wrapper.
	plain, err := detect.New("fasttrack", detect.FactoryOpts{Sink: detect.NewSink(false, 0)})
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := detect.New("fasttrack", detect.FactoryOpts{Sink: detect.NewSink(false, 0), Sampler: smp})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.TypeOf(plain) == reflect.TypeOf(wrapped) {
		t.Fatalf("sampled fasttrack detector is still %T; want the sampling wrapper", wrapped)
	}
}

// TestBurstCatchesPrologueRace: every task's first step is always
// inside the burst window, so a race between the first steps of two
// sibling tasks is caught at any rate — the determinism CI's sampled
// memory smoke relies on.
func TestBurstCatchesPrologueRace(t *testing.T) {
	smp := sample.New(sample.Config{Mode: sample.Burst, Rate: 0.01})
	sink := detect.NewSink(false, 0)
	det, err := detect.New("spd3", detect.FactoryOpts{Sink: sink, Sampler: smp})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := task.New(task.Config{Executor: task.Sequential, Workers: 1, Detector: det})
	if err != nil {
		t.Fatal(err)
	}
	sh := rt.Detector().NewShadow(detect.Spec("v", 4, 8))
	err = rt.Run(func(c *task.Ctx) {
		c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
		c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
	})
	if err != nil {
		t.Fatal(err)
	}
	if sink.Empty() {
		t.Fatal("burst:0.01 missed the sibling first-step race; epoch-0 determinism broken")
	}
}

// TestSampleCountersFlow: the native gate batches per task and flushes
// into the engine's stats shards — sample.checked/sample.skipped must
// be visible in a snapshot exactly when sampling is on.
func TestSampleCountersFlow(t *testing.T) {
	run := func(smp *sample.Sampler) stats.Snapshot {
		rec := stats.New(0)
		sink := detect.NewSink(false, 0)
		sink.SetStats(rec.Shard(0))
		det, err := detect.New("spd3", detect.FactoryOpts{Sink: sink, Stats: rec, Sampler: smp})
		if err != nil {
			t.Fatal(err)
		}
		rt, err := task.New(task.Config{Executor: task.Sequential, Workers: 1, Detector: det, Stats: rec})
		if err != nil {
			t.Fatal(err)
		}
		if err := progen.Run(rt, progen.Generate(1, progen.Config{}), nil); err != nil {
			t.Fatal(err)
		}
		return rec.Snapshot()
	}

	snap := run(sample.New(sample.Config{Mode: sample.Bernoulli, Rate: 0.5}))
	if snap.Get(stats.SampleChecked)+snap.Get(stats.SampleSkipped) == 0 {
		t.Error("sampling on: no sample.checked/sample.skipped tallies flushed")
	}

	snap = run(nil)
	if n := snap.Get(stats.SampleChecked) + snap.Get(stats.SampleSkipped); n != 0 {
		t.Errorf("sampling off: %d sample.* tallies recorded, want 0", n)
	}
}
