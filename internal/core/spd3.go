// Package core implements SPD3 — the paper's primary contribution: a
// Scalable Precise Dynamic Datarace Detector for structured parallelism
// (Raman et al., PLDI 2012, §4–§5).
//
// The detector maintains a Dynamic Program Structure Tree (package dpst)
// mirroring the async/finish structure of the execution, and a three-field
// shadow word per monitored memory element:
//
//	w  — the step that last wrote the element
//	r1 — a step that read the element
//	r2 — another step that read the element
//
// Invariant (§4.1): w is the last writer; every step that read the element
// since the last synchronization lies in the subtree rooted at
// LCA(r1, r2). Keeping just two readers is sufficient because any future
// access parallel to a discarded reader is also parallel to r1 or r2, so
// no race is missed — this is what gives SPD3 its O(1) space per location.
//
// On each access, Algorithms 1 (write) and 2 (read) query DMHP against the
// recorded steps and update the shadow word. Two synchronization protocols
// for the shadow word are provided, matching §5.4's discussion:
//
//   - SyncCAS (default): Lamport-style versioned snapshots. Readers take a
//     consistent snapshot bracketed by two version counters; updates CAS
//     the end version, write the fields, then publish the start version.
//     Memory actions that do not change the word — the common case for
//     read-shared data — proceed fully in parallel.
//   - SyncMutex: a plain mutex per shadow word. Simpler, faster when
//     uncontended, but serializes parallel readers; the paper reports it
//     1.8× slower on average at 16 threads, which the ablation benchmark
//     reproduces.
package core

import (
	"fmt"
	"sync"

	"spd3/internal/detect"
	"spd3/internal/dpst"
	"spd3/internal/sample"
	"spd3/internal/shadow"
	"spd3/internal/stats"
)

// SyncMode selects the shadow-word synchronization protocol (§5.4).
type SyncMode uint8

const (
	// SyncCAS is the versioned-snapshot (seqlock + CAS) protocol.
	SyncCAS SyncMode = iota
	// SyncMutex serializes each shadow word with a mutex.
	SyncMutex
)

func (m SyncMode) String() string {
	if m == SyncMutex {
		return "mutex"
	}
	return "cas"
}

// Options tunes the detector beyond the paper's core algorithm.
type Options struct {
	// Sync selects the shadow-word synchronization protocol.
	Sync SyncMode
	// StepCache enables the per-step redundant-check cache (see
	// taskState.cache), a dynamic variant of the optimizations the
	// paper defers to future work (§5.5). It helps kernels that
	// re-read the same locations many times within a step (RayTracer's
	// scene) and adds overhead to kernels that stream distinct indices
	// — measure with the ablation-stepcache experiment; off by
	// default.
	StepCache bool
	// NoFingerprint forces every DMHP/LCA query through the §5.2
	// pointer walk, disabling the packed-fingerprint fast path. On by
	// default (i.e. fingerprints are used); disable only for the
	// ablation-dmhp experiment and differential tests.
	NoFingerprint bool
	// NoDMHPMemo disables the per-task DMHP relation cache (see
	// taskState.mhp). On by default; disable for ablation.
	NoDMHPMemo bool
	// FlatShadow restores the pre-paging layout: one eagerly allocated
	// flat cell array per region, no page table, no page cache. It
	// exists for the flat-vs-paged ablation (the spd3-flat variant and
	// BenchmarkShadowSparse) and for differential testing; flat shadows
	// cannot serve growable regions (NewShadow panics on one).
	FlatShadow bool
	// Stats is the engine's observability recorder; nil disables the
	// detector's counters. The detector batches its counts in plain
	// task-owned integers and flushes them into a shard once per task
	// (see taskState.flush), so the steady-state cost per event is one
	// non-atomic increment.
	Stats *stats.Recorder
	// Sampler, when enabled, gates each access's race check
	// (internal/sample). The gate sits after the sink/step-cache
	// short-circuits and before the shadow cell is even resolved, so a
	// sampled-out access costs one predictable branch plus (for burst
	// mode) a cached per-task decision read. Nil or Off means every
	// check runs — the default, byte-identical to the ungated detector.
	Sampler *sample.Sampler
}

// Detector is the SPD3 race detector. Create with New; wire into a
// task.Runtime via Config.Detector.
type Detector struct {
	sink      *detect.Sink
	tree      *dpst.Tree
	mode      SyncMode
	stepCache bool
	walkOnly  bool // Options.NoFingerprint
	memo      bool // !Options.NoDMHPMemo
	flat      bool // Options.FlatShadow
	st        *stats.Recorder
	smp       *sample.Sampler // nil when sampling is off

	shadowIDs   detect.Counter
	shadowBytes detect.Counter
}

// New returns an SPD3 detector reporting to sink using the given
// shadow-word synchronization mode and default options.
func New(sink *detect.Sink, mode SyncMode) *Detector {
	return NewWith(sink, Options{Sync: mode})
}

// NewWith returns an SPD3 detector with explicit options.
func NewWith(sink *detect.Sink, o Options) *Detector {
	d := &Detector{
		sink:      sink,
		tree:      dpst.New(),
		mode:      o.Sync,
		stepCache: o.StepCache,
		walkOnly:  o.NoFingerprint,
		memo:      !o.NoDMHPMemo,
		flat:      o.FlatShadow,
		st:        o.Stats,
	}
	if o.Sampler.Enabled() {
		d.smp = o.Sampler
	}
	return d
}

// NativeSampling implements detect.NativeSampler: SPD3 consumes
// FactoryOpts.Sampler itself (see Options.Sampler), so the registry
// must not wrap it with the generic gate.
func (d *Detector) NativeSampling() bool { return true }

// Tree exposes the DPST (for tests and tooling).
func (d *Detector) Tree() *dpst.Tree { return d.tree }

// StepOf returns t's current step node (for tests and tooling).
func (d *Detector) StepOf(t *detect.Task) *dpst.Node { return step(t) }

// Name implements detect.Detector.
func (d *Detector) Name() string {
	if d.mode == SyncMutex {
		return "spd3-mutex"
	}
	return "spd3"
}

// RequiresSequential implements detect.Detector: SPD3 runs in parallel.
func (d *Detector) RequiresSequential() bool { return false }

// taskState is SPD3's per-task state: the task's current step and the
// DPST node under which the task appends new children — the innermost
// finish the task itself started, or else the task's own async node
// (§3.1's insertion rules).
//
// cache is the dynamic analogue of the paper's §5.5 static check
// eliminations (read/write check elimination, loop-invariant checks): a
// small direct-mapped memo of (region, element) pairs this step has
// already checked. Re-checking an element within the same step is
// provably redundant — the first check either recorded the step in the
// shadow word or established that the word's reader subtree already
// covers it, so any future conflicting access is caught through the
// recorded steps either way. Entries are tagged with the step node, so
// advancing to a new step invalidates them for free. The cache is owned
// by the task, needing no synchronization.
// mhp additionally memoizes DMHP relations: see Detector.relation.
//
// The n* fields batch the detector's observability counters in plain
// task-owned integers — no atomics, no sharing — and flush is called once
// per task (TaskEnd, or the implicit FinishEnd for the main task) to move
// them into the stats shard sh. A nil sh (stats disabled) makes flush a
// no-op and the increments dead weight of one add each.
type taskState struct {
	step  *dpst.Node
	scope *dpst.Node
	cache [stepCacheSize]cacheEntry
	mhp   [mhpMemoSize]mhpEntry

	// smp is the task's check-sampling state: the cached burst-window
	// decision word (recomputed once per step advance, so the
	// sampled-out path is a predictable branch) plus the batched
	// admit/skip tallies, flushed with the rest.
	smp sample.TaskState

	sh           *stats.Shard
	nCASClean    int64
	nCASPublish  int64
	nCASRetry    int64
	nMutexOps    int64
	nDMHPFast    int64
	nDMHPWalk    int64
	nDMHPMemoHit int64
	nStepCache   int64
	retryBuckets [stats.HistBuckets]int64
}

// flush moves the batched counters into the task's stats shard and zeroes
// them; safe to call multiple times and with a nil shard.
func (ts *taskState) flush() {
	if ts.sh == nil {
		return
	}
	ts.sh.Add(stats.CASClean, ts.nCASClean)
	ts.sh.Add(stats.CASPublish, ts.nCASPublish)
	ts.sh.Add(stats.CASRetry, ts.nCASRetry)
	ts.sh.Add(stats.MutexOps, ts.nMutexOps)
	ts.sh.Add(stats.DMHPFast, ts.nDMHPFast)
	ts.sh.Add(stats.DMHPWalk, ts.nDMHPWalk)
	ts.sh.Add(stats.DMHPMemoHit, ts.nDMHPMemoHit)
	ts.sh.Add(stats.StepCacheHit, ts.nStepCache)
	ts.smp.Flush(ts.sh)
	for b, n := range ts.retryBuckets {
		ts.sh.AddBucket(stats.HistCASRetry, b, n)
	}
	ts.nCASClean, ts.nCASPublish, ts.nCASRetry = 0, 0, 0
	ts.nMutexOps, ts.nStepCache = 0, 0
	ts.nDMHPFast, ts.nDMHPWalk, ts.nDMHPMemoHit = 0, 0, 0
	ts.retryBuckets = [stats.HistBuckets]int64{}
}

const stepCacheSize = 32 // power of two

type cacheEntry struct {
	region uint64 // shadow id (1-based; 0 is "empty")
	idx    int
	step   *dpst.Node
	wrote  bool
}

// cached reports whether this step already performed a check of (region,
// element) that subsumes the requested access: any earlier check subsumes
// a read; only an earlier write check subsumes a write.
func (ts *taskState) cached(region uint64, idx int, write bool) bool {
	e := &ts.cache[cacheSlot(region, idx)]
	return e.region == region && e.idx == idx && e.step == ts.step && (e.wrote || !write)
}

// remember records a completed check.
func (ts *taskState) remember(region uint64, idx int, write bool) {
	e := &ts.cache[cacheSlot(region, idx)]
	if e.region == region && e.idx == idx && e.step == ts.step {
		e.wrote = e.wrote || write
		return
	}
	*e = cacheEntry{region: region, idx: idx, step: ts.step, wrote: write}
}

func cacheSlot(region uint64, idx int) uint64 {
	h := (region<<32 ^ uint64(uint32(idx))) * 0x9e3779b97f4a7c15
	return h >> 59 // top 5 bits: stepCacheSize == 32
}

// mhpEntry is one slot of the per-task DMHP memo: the answer to
// Relation(other, step), tagged with both operands.
type mhpEntry struct {
	other    *dpst.Node
	step     *dpst.Node
	parallel bool
	lcaDepth int32
}

// mhpMemoSize is kept small (16 × 24 bytes) because taskState is
// allocated per task and fine-grained programs spawn one task per loop
// iteration; a step checks against only a handful of distinct recorded
// steps (the writers/readers of the rows it touches), so a small
// direct-mapped memo already captures the reuse.
const mhpMemoSize = 16 // power of two

func mhpSlot(n *dpst.Node) uint64 {
	return uint64(n.ID) * 0x9e3779b97f4a7c15 >> 60 // top 4 bits: mhpMemoSize == 16
}

// relation answers Relation(other, ts.step) through the per-task
// direct-mapped memo (unless disabled). Memoization is sound because
// every DPST node field the query reads is immutable after creation, so
// the relation of a fixed node pair can never change; and it is
// effective because recorded writer/reader steps recur across thousands
// of adjacent shadow words (one writer step covers a whole matrix row
// in SOR or LUFact). The memo lives in task-owned state, so no
// synchronization is needed, and entries are tagged with ts.step: a
// step advance invalidates them for free.
func (d *Detector) relation(ts *taskState, other *dpst.Node) (parallel bool, lcaDepth int32) {
	if other == nil || other == ts.step {
		return false, -1
	}
	if !d.memo {
		return d.rel(ts, other, ts.step)
	}
	e := &ts.mhp[mhpSlot(other)]
	if e.other == other && e.step == ts.step {
		ts.nDMHPMemoHit++
		return e.parallel, e.lcaDepth
	}
	p, l := d.rel(ts, other, ts.step)
	*e = mhpEntry{other: other, step: ts.step, parallel: p, lcaDepth: l}
	return p, l
}

// rel dispatches one Relation query to the fingerprint fast path or,
// under the walk-only ablation, the §5.2 pointer walk, attributing the
// query to ts's fast/walk counters.
func (d *Detector) rel(ts *taskState, a, b *dpst.Node) (parallel bool, lcaDepth int32) {
	if d.walkOnly {
		ts.nDMHPWalk++
		return dpst.RelationWalk(a, b)
	}
	if a.FastPath() && b.FastPath() {
		ts.nDMHPFast++
	} else {
		ts.nDMHPWalk++
	}
	return dpst.Relation(a, b)
}

// finishState remembers the finish's DPST node and the scope to restore
// when the finish ends.
type finishState struct {
	node      *dpst.Node
	prevScope *dpst.Node
}

// MainTask roots one run: a finish node under the tree root represents
// the implicit finish around main, and a first step node represents the
// main task's starting computation (§3.1). Each Run gets its own finish
// node so that a detector reused across several consecutive runs orders
// them correctly: a later run's steps are to the right of an earlier
// run's *finish* node, hence serialized after everything it joined.
func (d *Detector) MainTask(t *detect.Task, implicit *detect.Finish) {
	run := d.tree.NewChild(d.tree.Root(), dpst.FinishNode)
	step := d.tree.NewChild(run, dpst.StepNode)
	ts := &taskState{step: step, scope: run, sh: d.st.Shard(int(t.ID))}
	d.smp.Step(&ts.smp)
	t.State = ts
	implicit.State = &finishState{node: run}
}

// BeforeSpawn implements §3.1 "Task creation": an async node becomes the
// rightmost child of the parent's current scope, a step node for the
// child's starting computation goes under it, and a step node for the
// parent's continuation becomes the async node's right sibling. All three
// insertions are O(1) and synchronization-free.
func (d *Detector) BeforeSpawn(parent, child *detect.Task) {
	ps := parent.State.(*taskState)
	a := d.tree.NewChild(ps.scope, dpst.AsyncNode)
	childStep := d.tree.NewChild(a, dpst.StepNode)
	cs := &taskState{step: childStep, scope: a, sh: d.st.Shard(int(child.ID))}
	d.smp.Step(&cs.smp)
	child.State = cs
	ps.step = d.tree.NewChild(ps.scope, dpst.StepNode)
	d.smp.Step(&ps.smp)
}

// TaskEnd has no DPST effect (the join is represented by the finish
// node); it flushes the task's batched stats counters.
func (d *Detector) TaskEnd(t *detect.Task) {
	t.State.(*taskState).flush()
}

// FinishStart implements §3.1 "Start Finish": a finish node under the
// current scope, plus a step node for the computation starting inside it.
// The finish becomes the task's insertion scope.
func (d *Detector) FinishStart(t *detect.Task, f *detect.Finish) {
	ts := t.State.(*taskState)
	fn := d.tree.NewChild(ts.scope, dpst.FinishNode)
	f.State = &finishState{node: fn, prevScope: ts.scope}
	ts.scope = fn
	ts.step = d.tree.NewChild(fn, dpst.StepNode)
	d.smp.Step(&ts.smp)
}

// FinishEnd implements §3.1 "End Finish": restore the scope and add a
// step node for the continuation after the finish. The implicit top-level
// finish has no continuation.
func (d *Detector) FinishEnd(t *detect.Task, f *detect.Finish) {
	fs := f.State.(*finishState)
	if fs.prevScope == nil {
		// End of the implicit run-level finish: the main task gets no
		// TaskEnd (the executors call its body directly), so its
		// batched counters flush here.
		t.State.(*taskState).flush()
		return
	}
	ts := t.State.(*taskState)
	ts.scope = fs.prevScope
	ts.step = d.tree.NewChild(fs.prevScope, dpst.StepNode)
	d.smp.Step(&ts.smp)
}

// Acquire is a no-op: SPD3 targets lock-free async/finish programs (§2).
func (d *Detector) Acquire(*detect.Task, *detect.Lock) {}

// Release is a no-op; see Acquire.
func (d *Detector) Release(*detect.Task, *detect.Lock) {}

// Footprint implements detect.Detector. ShadowBytes is O(1) per monitored
// location; TreeBytes grows with the number of tasks, not threads.
func (d *Detector) Footprint() detect.Footprint {
	return detect.Footprint{
		ShadowBytes: d.shadowBytes.Load(),
		TreeBytes:   d.tree.Bytes(),
	}
}

// NewShadow builds the region's shadow: one word per element, held in
// lazily allocated pages (shadow.Pages), so a sparsely touched region
// pays only for the pages it touches. Under Options.FlatShadow the
// pre-paging eager flat array is restored for ablation; flat shadows
// reject growable regions.
func (d *Detector) NewShadow(spec detect.ShadowSpec) detect.Shadow {
	id := uint64(d.shadowIDs.Add(1))
	if d.flat && spec.Growable {
		panic("core: FlatShadow cannot serve growable region " + spec.Name)
	}
	switch d.mode {
	case SyncMutex:
		s := &mutexShadow{d: d, id: id, name: spec.Name}
		if d.flat {
			s.flat = make([]mutexCell, spec.Len)
			d.shadowBytes.Add(int64(spec.Len) * mutexCellBytes)
		} else {
			s.pages = shadow.New[mutexCell](spec.Bound())
			s.pages.SetOnAlloc(d.pageAlloc(mutexCellBytes))
		}
		return s
	default:
		s := &casShadow{d: d, id: id, name: spec.Name}
		if d.flat {
			s.flat = make([]casCell, spec.Len)
			d.shadowBytes.Add(int64(spec.Len) * casCellBytes)
		} else {
			s.pages = shadow.New[casCell](spec.Bound())
			s.pages.SetOnAlloc(d.pageAlloc(casCellBytes))
		}
		return s
	}
}

// pageAlloc returns the paged substrate's allocation hook: analytic
// footprint plus the ShadowPagesAllocated counter. Allocation happens at
// most once per PageSize cells, so the shard atomics are off the hot
// path.
func (d *Detector) pageAlloc(cellBytes int64) func(cells int) {
	sh := d.st.Shard(0)
	return func(cells int) {
		d.shadowBytes.Add(int64(cells) * cellBytes)
		sh.Inc(stats.ShadowPagesAllocated)
	}
}

// word is a consistent snapshot of one shadow word.
type word struct {
	w, r1, r2 *dpst.Node
}

// step extracts the current step of the accessing task.
func step(t *detect.Task) *dpst.Node { return t.State.(*taskState).step }

// report emits one race. A nonzero site attributes the completing access
// to its source location (mem's CaptureSites mode).
func (d *Detector) report(kind detect.RaceKind, region string, i int, prev, cur *dpst.Node, site uintptr) {
	curStep := cur.String()
	if loc := detect.SiteString(site); loc != "" {
		curStep += " at " + loc
	}
	d.sink.Report(detect.Race{
		Kind:     kind,
		Region:   region,
		Index:    i,
		PrevStep: prev.String(),
		CurStep:  curStep,
	})
}

// writeCheck is Algorithm 1. Given a snapshot and the writing task's
// state ts, it reports any races and returns the updated word and
// whether the word changed. All DMHP queries go through the memoized
// fingerprint fast path (Detector.relation).
func (d *Detector) writeCheck(m word, ts *taskState, region string, i int, site uintptr) (word, bool) {
	s := ts.step
	if m.w == s {
		// Same step rewrote the element; nothing can have changed
		// (a second write by the very step that already owns w).
		return m, false
	}
	if p, _ := d.relation(ts, m.r1); p {
		d.report(detect.ReadWrite, region, i, m.r1, s, site)
	}
	if p, _ := d.relation(ts, m.r2); p {
		d.report(detect.ReadWrite, region, i, m.r2, s, site)
	}
	if p, _ := d.relation(ts, m.w); p {
		d.report(detect.WriteWrite, region, i, m.w, s, site)
		return m, false
	}
	m.w = s
	return m, true
}

// readCheck is Algorithm 2 with the null-reader cases made explicit.
// Given a snapshot and the reading task's state ts, it reports any
// races and returns the updated word and whether the word changed.
func (d *Detector) readCheck(m word, ts *taskState, region string, i int, site uintptr) (word, bool) {
	s := ts.step
	if m.r1 == s || m.r2 == s {
		// This step is already recorded; re-reading changes nothing.
		// (One of the paper's redundant-check eliminations, §5.5.)
		return m, false
	}
	if p, _ := d.relation(ts, m.w); p {
		d.report(detect.WriteRead, region, i, m.w, s, site)
	}
	p1, lca1s := d.relation(ts, m.r1)
	p2, _ := d.relation(ts, m.r2)
	switch {
	case !p1 && !p2:
		// s is ordered after every recorded reader (and, by the
		// discard-safety lemma, after every reader they cover):
		// s supersedes them both.
		m.r1 = s
		m.r2 = nil
		return m, true
	case p1 && m.r2 == nil:
		// Second parallel reader: record it.
		m.r2 = s
		return m, true
	case p1 && p2:
		// Keep the two of {r1, r2, s} whose LCA is highest. s lies
		// outside the subtree under LCA(r1,r2) exactly when
		// LCA(r1,s) is a proper ancestor of LCA(r1,r2); both are on
		// r1's root path, so comparing depths suffices. In that case
		// LCA(r1,s) = LCA(r2,s) and replacing r1 with s lifts the
		// subtree to cover all three. lca1s is the LCA depth the
		// DMHP(r1,s) relation above already computed.
		_, lca12 := d.rel(ts, m.r1, m.r2)
		if lca1s < lca12 {
			m.r1 = s
			return m, true
		}
		return m, false
	default:
		// s is parallel with exactly one recorded reader, which
		// places it inside the subtree under LCA(r1,r2): the
		// invariant already covers it, no update needed.
		return m, false
	}
}

var _ detect.Detector = (*Detector)(nil)

// ---- mutex-protected shadow words (SyncMutex) ----

// mutexCell is one shadow word guarded by a mutex.
type mutexCell struct {
	mu sync.Mutex
	m  word
}

const mutexCellBytes = 8 + 24 // sync.Mutex + three pointers

type mutexShadow struct {
	d     *Detector
	id    uint64
	name  string
	pages *shadow.Pages[mutexCell] // nil under the flat ablation
	flat  []mutexCell              // non-nil iff Options.FlatShadow
}

// cell resolves element i's shadow word: through the task's page cache
// on the paged backend, a plain index on the flat ablation.
func (s *mutexShadow) cell(t *detect.Task, i int) *mutexCell {
	if s.flat != nil {
		return &s.flat[i]
	}
	return s.pages.CellOf(&t.PC, i)
}

func (s *mutexShadow) Read(t *detect.Task, i int)  { s.ReadAt(t, i, 0) }
func (s *mutexShadow) Write(t *detect.Task, i int) { s.WriteAt(t, i, 0) }

// ReadAt implements detect.SiteShadow.
func (s *mutexShadow) ReadAt(t *detect.Task, i int, site uintptr) {
	if s.d.sink.Stopped() {
		return
	}
	ts := t.State.(*taskState)
	if s.d.stepCache {
		if ts.cached(s.id, i, false) {
			ts.nStepCache++
			return
		}
	}
	if sp := s.d.smp; sp != nil {
		if !sp.Admit(&ts.smp, s.id, i) {
			ts.smp.Skipped++
			return
		}
		ts.smp.Checked++
	}
	ts.nMutexOps++
	c := s.cell(t, i)
	c.mu.Lock()
	if m, changed := s.d.readCheck(c.m, ts, s.name, i, site); changed {
		c.m = m
	}
	c.mu.Unlock()
	if s.d.stepCache {
		ts.remember(s.id, i, false)
	}
}

// WriteAt implements detect.SiteShadow.
func (s *mutexShadow) WriteAt(t *detect.Task, i int, site uintptr) {
	if s.d.sink.Stopped() {
		return
	}
	ts := t.State.(*taskState)
	if s.d.stepCache {
		if ts.cached(s.id, i, true) {
			ts.nStepCache++
			return
		}
	}
	if sp := s.d.smp; sp != nil {
		if !sp.Admit(&ts.smp, s.id, i) {
			ts.smp.Skipped++
			return
		}
		ts.smp.Checked++
	}
	ts.nMutexOps++
	c := s.cell(t, i)
	c.mu.Lock()
	if m, changed := s.d.writeCheck(c.m, ts, s.name, i, site); changed {
		c.m = m
	}
	c.mu.Unlock()
	if s.d.stepCache {
		ts.remember(s.id, i, true)
	}
}

func (s *mutexShadow) String() string { return fmt.Sprintf("spd3-mutex shadow %q", s.name) }

var _ detect.SiteShadow = (*mutexShadow)(nil)
