package core

import (
	"sync/atomic"

	"spd3/internal/detect"
	"spd3/internal/dpst"
	"spd3/internal/shadow"
	"spd3/internal/stats"
)

// casShadow implements the §5.4 versioned-snapshot protocol, Lamport's
// solution to the concurrent reading-and-writing problem applied to the
// shadow word. Each cell carries two version counters:
//
//	read stage:    x := start; load w,r1,r2; if end != x, restart
//	compute stage: run Algorithm 1 or 2 on the local snapshot
//	update stage:  CAS(end, x, x+1); store fields; start = x+1
//
// A successful read stage saw start == end == x, i.e. no update was in
// flight and none completed in between (Go's atomics are sequentially
// consistent, providing the fence §5.4 inserts between the field loads and
// the end-version load). The CAS in the update stage fails iff some other
// memory action updated the cell since our snapshot; the whole action then
// restarts. Memory actions that do not update the word — the common case
// when data is read-shared, exactly the pattern that makes FastTrack slow
// — never perform a CAS and proceed fully in parallel.
//
// Note the counter roles: an updater bumps end first and start last, so a
// torn snapshot always fails the end != x comparison.
// Shadow words live in lazily allocated pages (shadow.Pages) resolved
// through the accessing task's page cache; the flat ablation
// (Options.FlatShadow) restores the eager flat array for comparison.
type casShadow struct {
	d     *Detector
	id    uint64
	name  string
	pages *shadow.Pages[casCell] // nil under the flat ablation
	flat  []casCell              // non-nil iff Options.FlatShadow
}

// cell resolves element i's shadow word: through the task's page cache
// on the paged backend, a plain index on the flat ablation.
func (s *casShadow) cell(t *detect.Task, i int) *casCell {
	if s.flat != nil {
		return &s.flat[i]
	}
	return s.pages.CellOf(&t.PC, i)
}

// casCell is one versioned shadow word.
type casCell struct {
	start atomic.Int64
	end   atomic.Int64
	w     atomic.Pointer[dpst.Node]
	r1    atomic.Pointer[dpst.Node]
	r2    atomic.Pointer[dpst.Node]
}

const casCellBytes = 8 + 8 + 24 // two versions + three pointers

// snapshot performs the read stage, spinning until it captures a
// consistent (version, word) pair.
func (c *casCell) snapshot() (int64, word) {
	for {
		x := c.start.Load()
		m := word{w: c.w.Load(), r1: c.r1.Load(), r2: c.r2.Load()}
		if c.end.Load() == x {
			return x, m
		}
	}
}

// publish performs the update stage. It returns false when the CAS lost
// and the memory action must restart from the read stage.
func (c *casCell) publish(x int64, m word) bool {
	if !c.end.CompareAndSwap(x, x+1) {
		return false
	}
	c.w.Store(m.w)
	c.r1.Store(m.r1)
	c.r2.Store(m.r2)
	c.start.Store(x + 1)
	return true
}

func (s *casShadow) Read(t *detect.Task, i int)  { s.ReadAt(t, i, 0) }
func (s *casShadow) Write(t *detect.Task, i int) { s.WriteAt(t, i, 0) }

// ReadAt implements detect.SiteShadow.
func (s *casShadow) ReadAt(t *detect.Task, i int, site uintptr) {
	if s.d.sink.Stopped() {
		return
	}
	ts := t.State.(*taskState)
	if s.d.stepCache {
		if ts.cached(s.id, i, false) {
			ts.nStepCache++
			return
		}
	}
	if sp := s.d.smp; sp != nil {
		if !sp.Admit(&ts.smp, s.id, i) {
			ts.smp.Skipped++
			return
		}
		ts.smp.Checked++
	}
	c := s.cell(t, i)
	var retries int64
	for {
		x, m := c.snapshot()
		m, changed := s.d.readCheck(m, ts, s.name, i, site)
		if !changed {
			ts.nCASClean++
			break
		}
		if c.publish(x, m) {
			ts.nCASPublish++
			break
		}
		retries++
	}
	if retries > 0 {
		ts.nCASRetry += retries
		ts.retryBuckets[stats.HistBucket(retries)]++
	}
	if s.d.stepCache {
		ts.remember(s.id, i, false)
	}
}

// WriteAt implements detect.SiteShadow.
func (s *casShadow) WriteAt(t *detect.Task, i int, site uintptr) {
	if s.d.sink.Stopped() {
		return
	}
	ts := t.State.(*taskState)
	if s.d.stepCache {
		if ts.cached(s.id, i, true) {
			ts.nStepCache++
			return
		}
	}
	if sp := s.d.smp; sp != nil {
		if !sp.Admit(&ts.smp, s.id, i) {
			ts.smp.Skipped++
			return
		}
		ts.smp.Checked++
	}
	c := s.cell(t, i)
	var retries int64
	for {
		x, m := c.snapshot()
		m, changed := s.d.writeCheck(m, ts, s.name, i, site)
		if !changed {
			ts.nCASClean++
			break
		}
		if c.publish(x, m) {
			ts.nCASPublish++
			break
		}
		retries++
	}
	if retries > 0 {
		ts.nCASRetry += retries
		ts.retryBuckets[stats.HistBucket(retries)]++
	}
	if s.d.stepCache {
		ts.remember(s.id, i, true)
	}
}

var _ detect.SiteShadow = (*casShadow)(nil)
