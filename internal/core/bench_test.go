package core

import (
	"testing"

	"spd3/internal/detect"
	"spd3/internal/task"
)

// shadowAtDepth builds a detector state where the accessing steps sit
// depth finish-levels below the root, so the per-access DMHP walks cost
// O(depth) — the §5.3 "characteristic of the application" overhead.
func shadowAtDepth(b *testing.B, mode SyncMode, depth int,
	body func(c *task.Ctx, sh detect.Shadow)) {
	b.Helper()
	sink := detect.NewSink(false, 0)
	d := New(sink, mode)
	rt, err := task.New(task.Config{Executor: task.Sequential, Detector: d})
	if err != nil {
		b.Fatal(err)
	}
	sh := d.NewShadow(detect.Spec("x", 64, 8))
	var nest func(c *task.Ctx, left int)
	nest = func(c *task.Ctx, left int) {
		if left == 0 {
			body(c, sh)
			return
		}
		c.Finish(func(c *task.Ctx) { nest(c, left-1) })
	}
	if err := rt.Run(func(c *task.Ctx) { nest(c, depth) }); err != nil {
		b.Fatal(err)
	}
	if !sink.Empty() {
		b.Fatal("benchmark program raced")
	}
}

// BenchmarkShadowWrite measures the Algorithm 1 fast path: repeated
// writes by the owning step (w == s short-circuit).
func BenchmarkShadowWriteSameStep(b *testing.B) {
	for _, mode := range []SyncMode{SyncCAS, SyncMutex} {
		b.Run(mode.String(), func(b *testing.B) {
			shadowAtDepth(b, mode, 4, func(c *task.Ctx, sh detect.Shadow) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sh.Write(c.Task(), 0)
				}
			})
		})
	}
}

// BenchmarkShadowReadSteadyState measures the read-shared steady state
// (two recorded readers, no update — the paper's motivating hot path for
// the §5.4 snapshot protocol) at several tree depths.
func BenchmarkShadowReadSteadyState(b *testing.B) {
	for _, depth := range []int{2, 8, 24} {
		depth := depth
		b.Run(itoa(depth), func(b *testing.B) {
			shadowAtDepth(b, SyncCAS, depth, func(c *task.Ctx, sh detect.Shadow) {
				// Install two parallel readers.
				c.Finish(func(c *task.Ctx) {
					c.Async(func(c *task.Ctx) { sh.Read(c.Task(), 0) })
					c.Async(func(c *task.Ctx) { sh.Read(c.Task(), 0) })
				})
				c.Finish(func(c *task.Ctx) {
					c.Async(func(c *task.Ctx) {
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							sh.Read(c.Task(), 0)
						}
					})
				})
			})
		})
	}
}

// BenchmarkTaskBoundary measures the O(1) DPST maintenance per async
// (three node insertions).
func BenchmarkTaskBoundary(b *testing.B) {
	sink := detect.NewSink(false, 0)
	d := New(sink, SyncCAS)
	rt, err := task.New(task.Config{Executor: task.Sequential, Detector: d})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	if err := rt.Run(func(c *task.Ctx) {
		c.Finish(func(c *task.Ctx) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Async(func(c *task.Ctx) {})
			}
		})
	}); err != nil {
		b.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkShadowSparse is the paged-shadow evaluation grid: dense vs
// clustered-sparse access patterns crossed with the paged backend vs the
// flat ablation, on one large region. Each sub-benchmark pre-touches its
// full pattern (materializing the footprint), reports the resulting
// shadow bytes as a metric, then times steady-state writes over the
// pattern. The claims under test: on the sparse pattern the paged shadow
// costs a small fraction of the flat one (only touched pages exist), and
// on the dense pattern the paged overhead is marginal.
func BenchmarkShadowSparse(b *testing.B) {
	const (
		elems     = 10_000_000
		pageCells = 4096 // shadow.PageSize
	)
	// Clustered sparse pattern: ~1% of the pages, one full page per
	// cluster. A uniform-random 1% of *elements* would touch every page
	// and show no paging benefit — sparseness that pays is page-granular.
	sparseIdx := func() []int {
		clusters := elems / pageCells / 100
		stride := elems / clusters
		idxs := make([]int, 0, clusters*pageCells)
		for k := 0; k < clusters; k++ {
			base := (k * stride) &^ (pageCells - 1)
			for i := 0; i < pageCells; i++ {
				idxs = append(idxs, base+i)
			}
		}
		return idxs
	}
	denseIdx := func() []int {
		idxs := make([]int, elems)
		for i := range idxs {
			idxs[i] = i
		}
		return idxs
	}
	for _, backend := range []struct {
		name string
		flat bool
	}{{"paged", false}, {"flat", true}} {
		for _, pattern := range []struct {
			name string
			idxs func() []int
		}{{"dense", denseIdx}, {"sparse", sparseIdx}} {
			b.Run(backend.name+"/"+pattern.name, func(b *testing.B) {
				sink := detect.NewSink(false, 0)
				d := NewWith(sink, Options{Sync: SyncCAS, FlatShadow: backend.flat})
				rt, err := task.New(task.Config{Executor: task.Sequential, Detector: d})
				if err != nil {
					b.Fatal(err)
				}
				sh := d.NewShadow(detect.Spec("x", elems, 8))
				idxs := pattern.idxs()
				if err := rt.Run(func(c *task.Ctx) {
					t := c.Task()
					for _, i := range idxs {
						sh.Write(t, i)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						sh.Write(t, idxs[i%len(idxs)])
					}
				}); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(d.Footprint().ShadowBytes), "shadow-B")
			})
		}
	}
}
