package core

import (
	"testing"

	"spd3/internal/detect"
	"spd3/internal/task"
)

// shadowAtDepth builds a detector state where the accessing steps sit
// depth finish-levels below the root, so the per-access DMHP walks cost
// O(depth) — the §5.3 "characteristic of the application" overhead.
func shadowAtDepth(b *testing.B, mode SyncMode, depth int,
	body func(c *task.Ctx, sh detect.Shadow)) {
	b.Helper()
	sink := detect.NewSink(false, 0)
	d := New(sink, mode)
	rt, err := task.New(task.Config{Executor: task.Sequential, Detector: d})
	if err != nil {
		b.Fatal(err)
	}
	sh := d.NewShadow("x", 64, 8)
	var nest func(c *task.Ctx, left int)
	nest = func(c *task.Ctx, left int) {
		if left == 0 {
			body(c, sh)
			return
		}
		c.Finish(func(c *task.Ctx) { nest(c, left-1) })
	}
	if err := rt.Run(func(c *task.Ctx) { nest(c, depth) }); err != nil {
		b.Fatal(err)
	}
	if !sink.Empty() {
		b.Fatal("benchmark program raced")
	}
}

// BenchmarkShadowWrite measures the Algorithm 1 fast path: repeated
// writes by the owning step (w == s short-circuit).
func BenchmarkShadowWriteSameStep(b *testing.B) {
	for _, mode := range []SyncMode{SyncCAS, SyncMutex} {
		b.Run(mode.String(), func(b *testing.B) {
			shadowAtDepth(b, mode, 4, func(c *task.Ctx, sh detect.Shadow) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sh.Write(c.Task(), 0)
				}
			})
		})
	}
}

// BenchmarkShadowReadSteadyState measures the read-shared steady state
// (two recorded readers, no update — the paper's motivating hot path for
// the §5.4 snapshot protocol) at several tree depths.
func BenchmarkShadowReadSteadyState(b *testing.B) {
	for _, depth := range []int{2, 8, 24} {
		depth := depth
		b.Run(itoa(depth), func(b *testing.B) {
			shadowAtDepth(b, SyncCAS, depth, func(c *task.Ctx, sh detect.Shadow) {
				// Install two parallel readers.
				c.Finish(func(c *task.Ctx) {
					c.Async(func(c *task.Ctx) { sh.Read(c.Task(), 0) })
					c.Async(func(c *task.Ctx) { sh.Read(c.Task(), 0) })
				})
				c.Finish(func(c *task.Ctx) {
					c.Async(func(c *task.Ctx) {
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							sh.Read(c.Task(), 0)
						}
					})
				})
			})
		})
	}
}

// BenchmarkTaskBoundary measures the O(1) DPST maintenance per async
// (three node insertions).
func BenchmarkTaskBoundary(b *testing.B) {
	sink := detect.NewSink(false, 0)
	d := New(sink, SyncCAS)
	rt, err := task.New(task.Config{Executor: task.Sequential, Detector: d})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	if err := rt.Run(func(c *task.Ctx) {
		c.Finish(func(c *task.Ctx) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Async(func(c *task.Ctx) {})
			}
		})
	}); err != nil {
		b.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
