package core

import (
	"testing"

	"spd3/internal/detect"
	"spd3/internal/dpst"
	"spd3/internal/task"
)

// newRT builds a runtime with a fresh SPD3 detector.
func newRT(t *testing.T, mode SyncMode, exec task.ExecKind, workers int, halt bool) (*task.Runtime, *Detector, *detect.Sink) {
	t.Helper()
	sink := detect.NewSink(halt, 0)
	d := New(sink, mode)
	rt, err := task.New(task.Config{Executor: exec, Workers: workers, Detector: d})
	if err != nil {
		t.Fatal(err)
	}
	return rt, d, sink
}

// TestDPSTConstructionFigure1 runs the Figure 1 program on the runtime and
// checks that the detector builds exactly the paper's tree (plus the
// continuation steps the figure elides because nothing follows them).
func TestDPSTConstructionFigure1(t *testing.T) {
	rt, d, _ := newRT(t, SyncCAS, task.Sequential, 1, false)
	var step1, step2, step3, step4, step5, step6 *dpst.Node
	err := rt.Run(func(c *task.Ctx) {
		step1 = d.StepOf(c.Task())  // S1; S2
		c.Async(func(c *task.Ctx) { // A1
			step2 = d.StepOf(c.Task())  // S3; S4; S5
			c.Async(func(c *task.Ctx) { // A2
				step3 = d.StepOf(c.Task()) // S6
			})
			step4 = d.StepOf(c.Task()) // S7; S8
		})
		step5 = d.StepOf(c.Task())  // S9; S10; S11
		c.Async(func(c *task.Ctx) { // A3
			step6 = d.StepOf(c.Task()) // S12; S13
		})
	})
	if err != nil {
		t.Fatal(err)
	}

	// The run's implicit finish (the paper's F1) is a finish node
	// directly under the tree root.
	root := step1.Parent
	if root.Kind != dpst.FinishNode || root.Parent != d.Tree().Root() {
		t.Fatalf("run finish = %v (parent %v), want finish under root", root, root.Parent)
	}
	// Parent structure: step1 under F1; step2 under A1 under F1;
	// step3 under A2 under A1; step4 under A1; step5 under F1;
	// step6 under A3 under F1.
	a1 := step2.Parent
	a2 := step3.Parent
	a3 := step6.Parent
	if step1.Parent != root || step5.Parent != root {
		t.Error("step1/step5 must hang off the root finish")
	}
	if a1.Kind != dpst.AsyncNode || a1.Parent != root {
		t.Errorf("A1 = %v (parent %v), want async under root", a1, a1.Parent)
	}
	if a2.Kind != dpst.AsyncNode || a2.Parent != a1 {
		t.Errorf("A2 = %v (parent %v), want async under A1", a2, a2.Parent)
	}
	if step4.Parent != a1 {
		t.Errorf("step4 parent = %v, want A1", step4.Parent)
	}
	if a3.Kind != dpst.AsyncNode || a3.Parent != root {
		t.Errorf("A3 = %v (parent %v), want async under root", a3, a3.Parent)
	}
	// Sibling order under the root: step1 < A1 < step5 < A3.
	if !(step1.Seq < a1.Seq && a1.Seq < step5.Seq && step5.Seq < a3.Seq) {
		t.Errorf("root sibling order: step1=%d A1=%d step5=%d A3=%d",
			step1.Seq, a1.Seq, step5.Seq, a3.Seq)
	}
	// §3.2 worked examples.
	if !dpst.DMHP(step2, step5) {
		t.Error("DMHP(step2, step5) = false, want true")
	}
	if dpst.DMHP(step6, step5) {
		t.Error("DMHP(step6, step5) = true, want false")
	}
	// More pairs implied by the program.
	if !dpst.DMHP(step3, step4) {
		t.Error("DMHP(step3, step4) = false, want true (A2 vs A1 continuation)")
	}
	if dpst.DMHP(step1, step2) {
		t.Error("DMHP(step1, step2) = true, want false (spawn order)")
	}
	if !dpst.DMHP(step3, step6) {
		t.Error("DMHP(step3, step6) = false, want true (A2 subtree vs A3)")
	}
}

// TestDPSTNodeCount checks the §5.3 size formula 3*(a+f)-1 on a program
// where every async and finish has a following continuation, which is how
// the runtime always builds the tree.
func TestDPSTNodeCount(t *testing.T) {
	rt, d, _ := newRT(t, SyncCAS, task.Sequential, 1, false)
	const asyncs = 7
	err := rt.Run(func(c *task.Ctx) {
		c.Finish(func(c *task.Ctx) {
			for i := 0; i < asyncs; i++ {
				c.Async(func(c *task.Ctx) {})
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// a = 7 asyncs, f = 2 finishes (implicit + explicit); the implicit
	// finish has no trailing continuation, hence the formula's -1.
	// Our tree adds one extra node: the super-root that orders
	// consecutive runs of a reused detector.
	want := int64(3*(asyncs+2)-1) + 1
	if got := d.Tree().Len(); got != want {
		t.Errorf("DPST has %d nodes, want %d", got, want)
	}
}

// shadowProgram runs body with a 8-element shadow region and returns the
// recorded races. Racy test programs drive the shadow directly (no real
// data is touched) so that `go test -race` stays quiet.
func shadowProgram(t *testing.T, mode SyncMode, exec task.ExecKind, workers int,
	body func(c *task.Ctx, sh detect.Shadow)) []detect.Race {
	t.Helper()
	rt, d, sink := newRT(t, mode, exec, workers, false)
	sh := d.NewShadow(detect.Spec("x", 8, 8))
	if err := rt.Run(func(c *task.Ctx) { body(c, sh) }); err != nil {
		t.Fatal(err)
	}
	return sink.Races()
}

var modes = []SyncMode{SyncCAS, SyncMutex}

func TestWriteWriteRace(t *testing.T) {
	for _, m := range modes {
		races := shadowProgram(t, m, task.Sequential, 1, func(c *task.Ctx, sh detect.Shadow) {
			c.Finish(func(c *task.Ctx) {
				c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
				c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
			})
		})
		if len(races) != 1 || races[0].Kind != detect.WriteWrite {
			t.Errorf("%v: races = %v, want one write-write", m, races)
		}
	}
}

func TestWriteReadRace(t *testing.T) {
	for _, m := range modes {
		races := shadowProgram(t, m, task.Sequential, 1, func(c *task.Ctx, sh detect.Shadow) {
			c.Finish(func(c *task.Ctx) {
				c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 3) })
				sh.Read(c.Task(), 3) // continuation reads in parallel with the async write
			})
		})
		if len(races) != 1 || races[0].Kind != detect.WriteRead || races[0].Index != 3 {
			t.Errorf("%v: races = %v, want one write-read at index 3", m, races)
		}
	}
}

func TestReadWriteRace(t *testing.T) {
	for _, m := range modes {
		races := shadowProgram(t, m, task.Sequential, 1, func(c *task.Ctx, sh detect.Shadow) {
			c.Finish(func(c *task.Ctx) {
				c.Async(func(c *task.Ctx) { sh.Read(c.Task(), 0) })
				c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
			})
		})
		if len(races) != 1 || races[0].Kind != detect.ReadWrite {
			t.Errorf("%v: races = %v, want one read-write", m, races)
		}
	}
}

func TestNoRaceOrderedBySpawn(t *testing.T) {
	for _, m := range modes {
		races := shadowProgram(t, m, task.Sequential, 1, func(c *task.Ctx, sh detect.Shadow) {
			sh.Write(c.Task(), 0) // before the spawn: ordered with the async
			c.Finish(func(c *task.Ctx) {
				c.Async(func(c *task.Ctx) {
					sh.Read(c.Task(), 0)
					sh.Write(c.Task(), 0)
				})
			})
			sh.Read(c.Task(), 0) // after the finish: ordered
			sh.Write(c.Task(), 0)
		})
		if len(races) != 0 {
			t.Errorf("%v: races = %v, want none", m, races)
		}
	}
}

func TestNoRaceSameStep(t *testing.T) {
	for _, m := range modes {
		races := shadowProgram(t, m, task.Sequential, 1, func(c *task.Ctx, sh detect.Shadow) {
			sh.Read(c.Task(), 0)
			sh.Write(c.Task(), 0)
			sh.Read(c.Task(), 0)
			sh.Write(c.Task(), 0)
		})
		if len(races) != 0 {
			t.Errorf("%v: races = %v, want none", m, races)
		}
	}
}

// TestParallelReadsNoRace is the read-shared pattern that motivates the
// two-reader design: many parallel readers, then an ordered write.
func TestParallelReadsNoRace(t *testing.T) {
	for _, m := range modes {
		races := shadowProgram(t, m, task.Sequential, 1, func(c *task.Ctx, sh detect.Shadow) {
			c.Finish(func(c *task.Ctx) {
				for i := 0; i < 10; i++ {
					c.Async(func(c *task.Ctx) { sh.Read(c.Task(), 0) })
				}
			})
			sh.Write(c.Task(), 0) // ordered after all reads by the finish
		})
		if len(races) != 0 {
			t.Errorf("%v: races = %v, want none", m, races)
		}
	}
}

// TestManyParallelReadersThenParallelWrite checks that discarding readers
// beyond two loses no races: ten parallel readers, then a write parallel
// with all of them must still be reported.
func TestManyParallelReadersThenParallelWrite(t *testing.T) {
	for _, m := range modes {
		races := shadowProgram(t, m, task.Sequential, 1, func(c *task.Ctx, sh detect.Shadow) {
			c.Finish(func(c *task.Ctx) {
				for i := 0; i < 10; i++ {
					c.Async(func(c *task.Ctx) { sh.Read(c.Task(), 0) })
				}
				c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
			})
		})
		if len(races) == 0 {
			t.Errorf("%v: no race reported, want read-write", m)
		}
		for _, r := range races {
			if r.Kind != detect.ReadWrite {
				t.Errorf("%v: unexpected race kind %v", m, r.Kind)
			}
		}
	}
}

// TestReaderReplacementLCA exercises Algorithm 2's LCA branch: two readers
// under an inner finish are later joined by a reader with a higher LCA,
// which must replace r1; a subsequent parallel write must be caught.
func TestReaderReplacementLCA(t *testing.T) {
	for _, m := range modes {
		races := shadowProgram(t, m, task.Sequential, 1, func(c *task.Ctx, sh detect.Shadow) {
			c.Finish(func(c *task.Ctx) {
				c.Async(func(c *task.Ctx) {
					c.Finish(func(c *task.Ctx) {
						c.Async(func(c *task.Ctx) { sh.Read(c.Task(), 0) }) // r1
						c.Async(func(c *task.Ctx) { sh.Read(c.Task(), 0) }) // r2
					})
				})
				c.Async(func(c *task.Ctx) { sh.Read(c.Task(), 0) })  // S: LCA(r1,S) is higher
				c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) }) // parallel with all
			})
		})
		if len(races) == 0 {
			t.Errorf("%v: no race reported after reader replacement", m)
		}
	}
}

// TestDiscardSafety checks the supersede branch: a read ordered after all
// recorded readers replaces them, and a write parallel with the new reader
// is still caught through it.
func TestDiscardSafety(t *testing.T) {
	for _, m := range modes {
		races := shadowProgram(t, m, task.Sequential, 1, func(c *task.Ctx, sh detect.Shadow) {
			c.Finish(func(c *task.Ctx) {
				c.Async(func(c *task.Ctx) { sh.Read(c.Task(), 0) })
				c.Async(func(c *task.Ctx) { sh.Read(c.Task(), 0) })
			})
			sh.Read(c.Task(), 0) // ordered after both: supersedes
			c.Finish(func(c *task.Ctx) {
				c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) }) // parallel with the last read? no — ordered
			})
		})
		// The async write is inside a finish that starts after the last
		// read, so it is ordered after it: no race.
		if len(races) != 0 {
			t.Errorf("%v: races = %v, want none", m, races)
		}

		races = shadowProgram(t, m, task.Sequential, 1, func(c *task.Ctx, sh detect.Shadow) {
			c.Finish(func(c *task.Ctx) {
				c.Async(func(c *task.Ctx) { sh.Read(c.Task(), 0) })
			})
			c.Finish(func(c *task.Ctx) {
				c.Async(func(c *task.Ctx) { sh.Read(c.Task(), 0) }) // supersedes inside finish? no: parallel with nothing prior
				c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
			})
		})
		if len(races) == 0 {
			t.Errorf("%v: missed read-write race after supersede", m)
		}
	}
}

// TestRacyProgramDetectedUnderEveryExecutor: Theorem 2's contrapositive —
// if an input has a racy schedule, every monitored execution reports a
// race, regardless of executor and scheduling.
func TestRacyProgramDetectedUnderEveryExecutor(t *testing.T) {
	execs := []struct {
		kind    task.ExecKind
		workers int
	}{
		{task.Sequential, 1},
		{task.Goroutines, 1},
		{task.Pool, 1},
		{task.Pool, 4},
		{task.Pool, 16},
	}
	for _, e := range execs {
		for _, m := range modes {
			races := shadowProgram(t, m, e.kind, e.workers, func(c *task.Ctx, sh detect.Shadow) {
				c.Finish(func(c *task.Ctx) {
					for i := 0; i < 16; i++ {
						c.Async(func(c *task.Ctx) {
							sh.Read(c.Task(), 1)
							sh.Write(c.Task(), 0)
						})
					}
				})
			})
			if len(races) == 0 {
				t.Errorf("%v/%v/%d workers: racy program produced no report", m, e.kind, e.workers)
			}
		}
	}
}

// TestRaceFreeUnderParallelExecutors: a data-race-free program must stay
// quiet under heavy parallel execution (no false positives from the
// versioned-snapshot protocol).
func TestRaceFreeUnderParallelExecutors(t *testing.T) {
	for _, m := range modes {
		for _, workers := range []int{1, 4, 16} {
			races := shadowProgram(t, m, task.Pool, workers, func(c *task.Ctx, sh detect.Shadow) {
				for round := 0; round < 20; round++ {
					// Disjoint writes, then shared reads: classic
					// race-free phase structure.
					c.Finish(func(c *task.Ctx) {
						for i := 0; i < 8; i++ {
							i := i
							c.Async(func(c *task.Ctx) { sh.Write(c.Task(), i) })
						}
					})
					c.Finish(func(c *task.Ctx) {
						for i := 0; i < 8; i++ {
							c.Async(func(c *task.Ctx) {
								for j := 0; j < 8; j++ {
									sh.Read(c.Task(), j)
								}
							})
						}
					})
				}
			})
			if len(races) != 0 {
				t.Errorf("%v/%d workers: false positives: %v", m, workers, races)
			}
		}
	}
}

// TestHaltMode checks that halt-on-first-race stops further reporting.
func TestHaltMode(t *testing.T) {
	sink := detect.NewSink(true, 0)
	d := New(sink, SyncCAS)
	rt, err := task.New(task.Config{Executor: task.Sequential, Detector: d})
	if err != nil {
		t.Fatal(err)
	}
	sh := d.NewShadow(detect.Spec("x", 4, 8))
	err = rt.Run(func(c *task.Ctx) {
		c.Finish(func(c *task.Ctx) {
			for i := 0; i < 4; i++ {
				i := i
				c.Async(func(c *task.Ctx) { sh.Write(c.Task(), i) })
				c.Async(func(c *task.Ctx) { sh.Write(c.Task(), i) })
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sink.Stopped() {
		t.Fatal("halt-mode sink not stopped after race")
	}
	if n := len(sink.Races()); n != 1 {
		t.Fatalf("halt mode recorded %d races, want exactly 1", n)
	}
}

// TestVerdictsAgreeAcrossModes runs a battery of small programs under both
// sync modes and both parallel executors and demands identical verdicts.
func TestVerdictsAgreeAcrossModes(t *testing.T) {
	programs := []struct {
		name string
		racy bool
		body func(c *task.Ctx, sh detect.Shadow)
	}{
		{"disjoint", false, func(c *task.Ctx, sh detect.Shadow) {
			c.FinishAsync(8, func(c *task.Ctx, i int) { sh.Write(c.Task(), i) })
		}},
		{"sharedRead", false, func(c *task.Ctx, sh detect.Shadow) {
			sh.Write(c.Task(), 0)
			c.FinishAsync(8, func(c *task.Ctx, i int) { sh.Read(c.Task(), 0) })
			sh.Write(c.Task(), 0)
		}},
		{"ww", true, func(c *task.Ctx, sh detect.Shadow) {
			c.FinishAsync(2, func(c *task.Ctx, i int) { sh.Write(c.Task(), 0) })
		}},
		{"rw", true, func(c *task.Ctx, sh detect.Shadow) {
			c.Finish(func(c *task.Ctx) {
				c.Async(func(c *task.Ctx) { sh.Read(c.Task(), 0) })
				c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
			})
		}},
	}
	for _, m := range modes {
		for _, p := range programs {
			races := shadowProgram(t, m, task.Pool, 4, p.body)
			if got := len(races) > 0; got != p.racy {
				t.Errorf("%v/%s: racy = %v, want %v (%v)", m, p.name, got, p.racy, races)
			}
		}
	}
}

// TestStepCacheSoundness: the opt-in per-step check cache must not
// change any verdict. Re-run the verdict battery with the cache on,
// including patterns that revisit locations within a step (the cache's
// hit path) and across steps (its invalidation path).
func TestStepCacheSoundness(t *testing.T) {
	programs := []struct {
		name string
		racy bool
		body func(c *task.Ctx, sh detect.Shadow)
	}{
		{"rereadWithinStep", false, func(c *task.Ctx, sh detect.Shadow) {
			c.FinishAsync(4, func(c *task.Ctx, i int) {
				for k := 0; k < 10; k++ {
					sh.Read(c.Task(), 7) // shared read, repeated in-step
					sh.Write(c.Task(), i)
					sh.Write(c.Task(), i) // repeated write in-step
				}
			})
		}},
		{"writeAfterCachedRead", true, func(c *task.Ctx, sh detect.Shadow) {
			c.Finish(func(c *task.Ctx) {
				c.Async(func(c *task.Ctx) {
					sh.Read(c.Task(), 0)
					sh.Read(c.Task(), 0) // cached
					sh.Write(c.Task(), 0)
				})
				c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
			})
		}},
		{"crossStepInvalidation", true, func(c *task.Ctx, sh detect.Shadow) {
			// The same task touches index 0 in two different steps
			// separated by a spawn; the interleaved async write
			// must still be caught.
			c.Finish(func(c *task.Ctx) {
				sh.Read(c.Task(), 0)
				c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
				sh.Read(c.Task(), 0) // new step; cache entry stale
			})
		}},
	}
	for _, p := range programs {
		for _, mode := range modes {
			sink := detect.NewSink(false, 0)
			d := NewWith(sink, Options{Sync: mode, StepCache: true})
			rt, err := task.New(task.Config{Executor: task.Sequential, Detector: d})
			if err != nil {
				t.Fatal(err)
			}
			sh := d.NewShadow(detect.Spec("x", 8, 8))
			if err := rt.Run(func(c *task.Ctx) { p.body(c, sh) }); err != nil {
				t.Fatal(err)
			}
			if got := !sink.Empty(); got != p.racy {
				t.Errorf("%s/%v with cache: racy=%v, want %v (%v)",
					p.name, mode, got, p.racy, sink.Races())
			}
		}
	}
}

// TestConsecutiveRunsAreOrdered: when one detector (and its shadows) is
// reused across several Runs, accesses of a later run must be treated as
// happening after everything an earlier run joined — even accesses made
// by asyncs hanging directly off the implicit finish.
func TestConsecutiveRunsAreOrdered(t *testing.T) {
	for _, m := range modes {
		sink := detect.NewSink(false, 0)
		d := New(sink, m)
		rt, err := task.New(task.Config{Executor: task.Sequential, Detector: d})
		if err != nil {
			t.Fatal(err)
		}
		sh := d.NewShadow(detect.Spec("x", 1, 8))
		if err := rt.Run(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
		}); err != nil {
			t.Fatal(err)
		}
		if err := rt.Run(func(c *task.Ctx) {
			sh.Read(c.Task(), 0)
			sh.Write(c.Task(), 0)
			c.Async(func(c *task.Ctx) { sh.Read(c.Task(), 0) })
		}); err != nil {
			t.Fatal(err)
		}
		if races := sink.Races(); len(races) != 0 {
			t.Fatalf("%v: cross-run false positives: %v", m, races)
		}
	}
}

func TestFootprintConstantPerLocation(t *testing.T) {
	rt, d, _ := newRT(t, SyncCAS, task.Sequential, 1, false)
	sh1 := d.NewShadow(detect.Spec("a", 1000, 8))
	sh2 := d.NewShadow(detect.Spec("b", 1000, 8))
	// Paged shadow: declaring regions allocates nothing.
	if f := d.Footprint().ShadowBytes; f != 0 {
		t.Errorf("untouched shadow bytes = %d, want 0", f)
	}
	var f1 int64
	err := rt.Run(func(c *task.Ctx) {
		sh1.Write(c.Task(), 0)
		f1 = d.Footprint().ShadowBytes
		sh2.Write(c.Task(), 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	f2 := d.Footprint().ShadowBytes
	if f2-f1 != f1 {
		t.Errorf("shadow bytes not linear in touched regions: %d then %d", f1, f2)
	}
	// A 1000-element region fits one clipped page, so a single touch
	// materializes exactly 1000 cells.
	if per := f1 / 1000; per != casCellBytes {
		t.Errorf("bytes per location = %d, want %d", per, casCellBytes)
	}
}
