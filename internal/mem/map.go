package mem

import (
	"sync"
	"unsafe"

	"spd3/internal/detect"
	"spd3/internal/stats"
	"spd3/internal/task"
)

// Map is an instrumented map from K to V. Like List it is backed by a
// growable shadow region with a dedicated length cell: cell 0 stands for
// the map's *structure* (its key set), and each key that is ever
// inserted gets its own shadow cell, assigned on first insert and never
// reused.
//
// The detection semantics mirror what the Go runtime's map checker
// enforces dynamically:
//
//   - inserting a new key or deleting a present one writes the length
//     cell (a structural mutation), so two unordered inserts — even of
//     different keys — are a race, exactly the "parallel conflicting
//     inserts" case;
//   - updating an existing key writes only that key's cell, so
//     unordered updates of *distinct* existing keys are not a race
//     (physically they are safe here: Map serializes its internal state
//     with a mutex, like List's atomic length);
//   - every lookup reads the length cell (a read of the structure) plus
//     the key's cell when present, so an unordered lookup against any
//     insert or delete is a race, matching Go's concurrent read/write
//     map fault.
//
// As with every container, physical safety is not the point: Map never
// corrupts itself, but unordered structural accesses are reported so
// the program can be fixed for plain map[K]V.
type Map[K comparable, V any] struct {
	sh    detect.Shadow
	sited detect.SiteShadow
	reg   *stats.Region

	mu   sync.Mutex
	data map[K]V
	cell map[K]int // key -> shadow cell, assigned densely from 1
	next int       // next cell to assign
}

// NewMap allocates an empty instrumented map named name in race
// reports.
func NewMap[K comparable, V any](rt *task.Runtime, name string) *Map[K, V] {
	var zero V
	sh := rt.Detector().NewShadow(detect.GrowableSpec(name, int(unsafe.Sizeof(zero))))
	return &Map[K, V]{
		sh:    sh,
		sited: siteShadow(rt, sh),
		reg:   rt.Stats().Region(name, 0),
		data:  make(map[K]V),
		cell:  make(map[K]int),
		next:  lengthCell + 1,
	}
}

// lookup returns the key's shadow cell (0 when absent) and value under
// the lock.
func (m *Map[K, V]) lookup(k K) (V, int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.data[k]
	if !ok {
		var zero V
		return zero, 0, false
	}
	return v, m.cell[k], true
}

// read records an instrumented read of the structure cell and, when
// present, the key's own cell.
func (m *Map[K, V]) read(c *task.Ctx, cell int, site uintptr) {
	c.CountAccess(m.reg, false)
	if m.sited != nil {
		m.sited.ReadAt(c.Task(), lengthCell, site)
		if cell != 0 {
			m.sited.ReadAt(c.Task(), cell, site)
		}
	} else {
		m.sh.Read(c.Task(), lengthCell)
		if cell != 0 {
			m.sh.Read(c.Task(), cell)
		}
	}
}

// Get performs an instrumented lookup of k, returning the zero value
// when absent.
func (m *Map[K, V]) Get(c *task.Ctx, k K) V {
	v, _ := m.Lookup(c, k)
	return v
}

// Lookup performs an instrumented lookup of k with a presence flag (the
// `v, ok := m[k]` form).
func (m *Map[K, V]) Lookup(c *task.Ctx, k K) (V, bool) {
	v, cell, ok := m.lookup(k)
	var site uintptr
	if m.sited != nil {
		site = callerSite()
	}
	m.read(c, cell, site)
	return v, ok
}

// Len performs an instrumented read of the map's size (a read of the
// structure cell: unordered against any insert or delete it is a race).
func (m *Map[K, V]) Len(c *task.Ctx) int {
	m.mu.Lock()
	n := len(m.data)
	m.mu.Unlock()
	var site uintptr
	if m.sited != nil {
		site = callerSite()
	}
	m.read(c, 0, site)
	return n
}

// Set performs an instrumented write of k. Inserting a new key writes
// the structure cell and the key's cell; overwriting an existing key
// writes only the key's cell.
func (m *Map[K, V]) Set(c *task.Ctx, k K, v V) {
	m.mu.Lock()
	cell, existed := m.cell[k], false
	if _, ok := m.data[k]; ok {
		existed = true
	}
	if cell == 0 {
		cell = m.next
		m.next++
		m.cell[k] = cell
	}
	m.data[k] = v
	m.mu.Unlock()

	c.CountAccess(m.reg, true)
	if m.sited != nil {
		site := callerSite()
		if !existed {
			m.sited.WriteAt(c.Task(), lengthCell, site)
		}
		m.sited.WriteAt(c.Task(), cell, site)
	} else {
		if !existed {
			m.sh.Write(c.Task(), lengthCell)
		}
		m.sh.Write(c.Task(), cell)
	}
}

// Update applies f to the value stored under k (the zero value when
// absent) as one instrumented read-modify-write of the key's cell; a
// key not yet present is inserted, which additionally writes the
// structure cell like Set.
func (m *Map[K, V]) Update(c *task.Ctx, k K, f func(V) V) {
	m.mu.Lock()
	cell := m.cell[k]
	v, existed := m.data[k]
	if cell == 0 {
		cell = m.next
		m.next++
		m.cell[k] = cell
	}
	m.data[k] = f(v)
	m.mu.Unlock()

	c.CountAccess(m.reg, false)
	c.CountAccess(m.reg, true)
	if m.sited != nil {
		site := callerSite()
		m.sited.ReadAt(c.Task(), cell, site)
		if !existed {
			m.sited.WriteAt(c.Task(), lengthCell, site)
		}
		m.sited.WriteAt(c.Task(), cell, site)
	} else {
		m.sh.Read(c.Task(), cell)
		if !existed {
			m.sh.Write(c.Task(), lengthCell)
		}
		m.sh.Write(c.Task(), cell)
	}
}

// Delete performs an instrumented delete of k. Deleting a present key
// writes the structure cell and the key's cell; deleting an absent key
// still reads the structure (it observed the key's absence).
func (m *Map[K, V]) Delete(c *task.Ctx, k K) {
	m.mu.Lock()
	cell, present := m.cell[k], false
	if _, ok := m.data[k]; ok {
		present = true
		delete(m.data, k)
	}
	m.mu.Unlock()

	var site uintptr
	if m.sited != nil {
		site = callerSite()
	}
	if !present {
		m.read(c, 0, site)
		return
	}
	c.CountAccess(m.reg, true)
	if m.sited != nil {
		m.sited.WriteAt(c.Task(), lengthCell, site)
		m.sited.WriteAt(c.Task(), cell, site)
	} else {
		m.sh.Write(c.Task(), lengthCell)
		m.sh.Write(c.Task(), cell)
	}
}

// Range calls f for every key/value pair in an unspecified order,
// stopping when f returns false. It is one instrumented read of the
// structure cell plus a read of each visited key's cell, so ranging in
// parallel with an unordered insert or update is reported as a race.
func (m *Map[K, V]) Range(c *task.Ctx, f func(K, V) bool) {
	m.mu.Lock()
	type kv struct {
		k    K
		v    V
		cell int
	}
	snap := make([]kv, 0, len(m.data))
	for k, v := range m.data {
		snap = append(snap, kv{k, v, m.cell[k]})
	}
	m.mu.Unlock()

	var site uintptr
	if m.sited != nil {
		site = callerSite()
	}
	m.read(c, 0, site)
	for _, e := range snap {
		c.CountAccess(m.reg, false)
		if m.sited != nil {
			m.sited.ReadAt(c.Task(), e.cell, site)
		} else {
			m.sh.Read(c.Task(), e.cell)
		}
		if !f(e.k, e.v) {
			return
		}
	}
}

// Unchecked returns a copy of the map's contents without
// instrumentation; see Array.Unchecked for when this is legitimate
// (sequential phases, e.g. reading results after the run). It copies so
// that later mutations through the instrumented API cannot be observed
// uninstrumented through the returned map.
func (m *Map[K, V]) Unchecked() map[K]V {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[K]V, len(m.data))
	for k, v := range m.data {
		out[k] = v
	}
	return out
}
