package mem

import (
	"testing"

	"spd3/internal/task"
)

func sumAcc(t *testing.T, cfg task.Config) {
	t.Helper()
	rt, err := task.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc := NewAccumulator(rt, func(a, b int) int { return a + b })
	err = rt.Run(func(c *task.Ctx) {
		c.FinishAsync(100, func(c *task.Ctx, i int) {
			acc.Put(c, i)
		})
		got, ok := acc.Value()
		if !ok || got != 4950 {
			t.Errorf("Value = (%d, %v), want (4950, true)", got, ok)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorSum(t *testing.T) {
	for _, cfg := range []task.Config{
		{Executor: task.Sequential},
		{Executor: task.Goroutines},
		{Executor: task.Pool, Workers: 1},
		{Executor: task.Pool, Workers: 8},
	} {
		sumAcc(t, cfg)
	}
}

func TestAccumulatorMax(t *testing.T) {
	rt, err := task.New(task.Config{Executor: task.Pool, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	max := func(a, b int) int {
		if a > b {
			return a
		}
		return b
	}
	acc := NewAccumulator(rt, max)
	err = rt.Run(func(c *task.Ctx) {
		c.FinishAsync(64, func(c *task.Ctx, i int) {
			acc.Put(c, (i*37)%64)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := acc.Value(); !ok || got != 63 {
		t.Fatalf("max = (%d, %v), want (63, true)", got, ok)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	rt, err := task.New(task.Config{Executor: task.Pool, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	acc := NewAccumulator(rt, func(a, b int) int { return a + b })
	if _, ok := acc.Value(); ok {
		t.Fatal("empty accumulator reported a value")
	}
}

func TestAccumulatorReset(t *testing.T) {
	rt, err := task.New(task.Config{Executor: task.Pool, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	acc := NewAccumulator(rt, func(a, b int) int { return a + b })
	for round := 1; round <= 3; round++ {
		err := rt.Run(func(c *task.Ctx) {
			c.FinishAsync(10, func(c *task.Ctx, i int) { acc.Put(c, 1) })
		})
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := acc.Value(); got != 10 {
			t.Fatalf("round %d: Value = %d, want 10", round, got)
		}
		acc.Reset()
	}
}

// TestAccumulatorNonCommutativeFloat: partials keep per-worker order, so
// floating-point sums are deterministic per worker count under the
// sequential executor.
func TestAccumulatorZeroIsNotIdentityTrap(t *testing.T) {
	// Products: the first Put must store rather than multiply with the
	// zero value (which would pin the result at 0).
	rt, err := task.New(task.Config{Executor: task.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	acc := NewAccumulator(rt, func(a, b int) int { return a * b })
	err = rt.Run(func(c *task.Ctx) {
		c.FinishAsync(4, func(c *task.Ctx, i int) { acc.Put(c, i+1) })
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := acc.Value(); got != 24 {
		t.Fatalf("product = %d, want 24", got)
	}
}
