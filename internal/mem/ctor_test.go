package mem

import (
	"testing"

	"spd3/internal/task"
)

// The Ctx-scoped constructors attribute the container's initializing
// (zeroing) writes to the allocating task. Under the sequential
// executor the first async runs to completion before its sibling, so a
// sibling that reads the container deterministically observes the
// creation writes — and the two steps are unordered in the DPST, so the
// detector must report the read against the allocation.

func TestNewArrayInCreationWriteVsSiblingRead(t *testing.T) {
	rt, sink := newRT(t)
	var a *Array[int]
	err := rt.Run(func(c *task.Ctx) {
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) { a = NewArrayIn[int](c, "a", 4) })
			c.Async(func(c *task.Ctx) { _ = a.Get(c, 2) })
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if sink.Empty() {
		t.Fatal("sibling read of a task-allocated array not reported against the creation write")
	}
}

func TestNewVarInCreationWriteVsSiblingWrite(t *testing.T) {
	rt, sink := newRT(t)
	var v *Var[int]
	err := rt.Run(func(c *task.Ctx) {
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) { v = NewVarIn(c, "v", 0) })
			c.Async(func(c *task.Ctx) { v.Set(c, 1) })
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if sink.Empty() {
		t.Fatal("sibling write of a task-allocated var not reported against the creation write")
	}
}

func TestNewMapInCreationWriteVsSiblingInsert(t *testing.T) {
	rt, sink := newRT(t)
	var m *Map[int, int]
	err := rt.Run(func(c *task.Ctx) {
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) { m = NewMapIn[int, int](c, "m") })
			c.Async(func(c *task.Ctx) { m.Set(c, 1, 1) })
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if sink.Empty() {
		t.Fatal("sibling insert into a task-allocated map not reported against the creation write")
	}
}

func TestCtxScopedCreationThenDescendantUseIsClean(t *testing.T) {
	// Allocation happens-before everything the allocating task spawns
	// afterwards, so create-then-fan-out is race-free — the pattern
	// spd3inst's rewrites produce for allocations in the root body.
	rt, sink := newRT(t)
	err := rt.Run(func(c *task.Ctx) {
		a := NewArrayIn[int](c, "a", 8)
		m := NewMatrixIn[int](c, "m", 2, 4)
		v := NewVarIn(c, "v", 0)
		l := NewListIn[int](c, "l")
		mp := NewMapIn[int, int](c, "mp")
		mu := NewMutexIn(c)
		c.FinishAsync(8, func(c *task.Ctx, i int) {
			a.Set(c, i, i)
			m.Set(c, i/4, i%4, i)
			mu.Lock(c)
			mu.Unlock(c)
		})
		v.Set(c, a.Get(c, 3))
		l.Append(c, v.Get(c))
		mp.Set(c, 1, l.Get(c, 0))
		if got := mp.Get(c, 1); got != 3 {
			t.Errorf("roundtrip = %d, want 3", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sink.Empty() {
		t.Fatalf("create-then-fan-out raced: %v", sink.Races())
	}
}

func TestVarUnchecked(t *testing.T) {
	rt, sink := newRT(t)
	v := NewVar(rt, "v", 41)
	*v.Unchecked()++ // sequential phase: uninstrumented is legitimate
	err := rt.Run(func(c *task.Ctx) {
		if got := v.Get(c); got != 42 {
			t.Errorf("v = %d, want 42", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sink.Empty() {
		t.Fatalf("races: %v", sink.Races())
	}
}
