package mem

import (
	"testing"

	"spd3/internal/task"
)

func TestMapSequentialOps(t *testing.T) {
	rt, sink := newRT(t)
	m := NewMap[string, int](rt, "m")
	err := rt.Run(func(c *task.Ctx) {
		m.Set(c, "a", 1)
		m.Set(c, "b", 2)
		m.Set(c, "a", 10) // overwrite
		if got := m.Get(c, "a"); got != 10 {
			t.Errorf(`m["a"] = %d, want 10`, got)
		}
		if _, ok := m.Lookup(c, "zzz"); ok {
			t.Error("phantom key")
		}
		if n := m.Len(c); n != 2 {
			t.Errorf("len = %d, want 2", n)
		}
		m.Update(c, "b", func(v int) int { return v + 100 })
		if got := m.Get(c, "b"); got != 102 {
			t.Errorf(`m["b"] = %d, want 102`, got)
		}
		m.Delete(c, "a")
		m.Delete(c, "never-there")
		if n := m.Len(c); n != 1 {
			t.Errorf("len after delete = %d, want 1", n)
		}
		sum := 0
		m.Range(c, func(k string, v int) bool { sum += v; return true })
		if sum != 102 {
			t.Errorf("range sum = %d, want 102", sum)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sink.Empty() {
		t.Fatalf("sequential map use raced: %v", sink.Races())
	}
	if got := m.Unchecked(); len(got) != 1 || got["b"] != 102 {
		t.Errorf("Unchecked = %v", got)
	}
}

func TestMapParallelInsertsRace(t *testing.T) {
	// The headline case: two unordered inserts of *different* keys are
	// a structural race (both write the structure cell).
	rt, sink := newRT(t)
	m := NewMap[int, int](rt, "m")
	err := rt.Run(func(c *task.Ctx) {
		c.FinishAsync(2, func(c *task.Ctx, i int) {
			m.Set(c, i, i)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if sink.Empty() {
		t.Fatal("parallel inserts of distinct keys not reported")
	}
}

func TestMapParallelUpdatesDistinctExistingKeysNoRace(t *testing.T) {
	// Overwriting existing keys touches only the keys' own cells, so
	// disjoint-key parallel updates are clean (like disjoint Array
	// cells).
	rt, sink := newRT(t)
	m := NewMap[int, int](rt, "m")
	err := rt.Run(func(c *task.Ctx) {
		for i := 0; i < 4; i++ {
			m.Set(c, i, 0)
		}
		c.FinishAsync(4, func(c *task.Ctx, i int) {
			m.Set(c, i, i*i)
		})
		for i := 0; i < 4; i++ {
			if got := m.Get(c, i); got != i*i {
				t.Errorf("m[%d] = %d", i, got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sink.Empty() {
		t.Fatalf("disjoint-key updates raced: %v", sink.Races())
	}
}

func TestMapParallelUpdateSameKeyRaces(t *testing.T) {
	rt, sink := newRT(t)
	m := NewMap[string, int](rt, "m")
	err := rt.Run(func(c *task.Ctx) {
		m.Set(c, "n", 0)
		c.FinishAsync(2, func(c *task.Ctx, i int) {
			m.Update(c, "n", func(v int) int { return v + 1 })
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if sink.Empty() {
		t.Fatal("parallel same-key updates not reported")
	}
}

func TestMapLookupVsInsertRaces(t *testing.T) {
	// A lookup reads the structure cell, so it is unordered against any
	// insert — Go's concurrent read/write map fault.
	rt, sink := newRT(t)
	m := NewMap[int, int](rt, "m")
	err := rt.Run(func(c *task.Ctx) {
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) { m.Set(c, 1, 1) })
			c.Async(func(c *task.Ctx) { _, _ = m.Lookup(c, 2) })
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if sink.Empty() {
		t.Fatal("lookup unordered with insert not reported")
	}
}

func TestMapLenVsDeleteRaces(t *testing.T) {
	rt, sink := newRT(t)
	m := NewMap[int, int](rt, "m")
	err := rt.Run(func(c *task.Ctx) {
		m.Set(c, 7, 7)
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) { m.Delete(c, 7) })
			c.Async(func(c *task.Ctx) { _ = m.Len(c) })
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if sink.Empty() {
		t.Fatal("len unordered with delete not reported")
	}
}

func TestMapRangeVsUpdateRaces(t *testing.T) {
	rt, sink := newRT(t)
	m := NewMap[int, int](rt, "m")
	err := rt.Run(func(c *task.Ctx) {
		m.Set(c, 1, 1)
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) { m.Set(c, 1, 2) })
			c.Async(func(c *task.Ctx) {
				m.Range(c, func(int, int) bool { return true })
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if sink.Empty() {
		t.Fatal("range unordered with existing-key update not reported")
	}
}
