// Package mem provides the instrumented shared-memory containers through
// which programs under analysis access data.
//
// The paper instruments HJ programs with a bytecode pass that inserts
// detector calls on every shared read and write (§5). Go has no bytecode
// layer, so instrumentation lives in the data-access API instead: an
// Array, Matrix, or Var routes every Get/Set through the detector's
// shadow memory before touching the datum. The detection semantics are
// identical — the same checks at the same program points — only the agent
// inserting the call differs.
//
// The Unchecked escape hatches correspond to the paper's §5.5 static
// optimizations (main-task check elimination, read-only check
// elimination, escape analysis for task-local data): where the programmer
// — playing the role of the static analysis — can prove accesses cannot
// race, checks are elided. Benchmarks use them exactly where the paper's
// optimizer would fire.
//
// Containers declare their shadow regions through detect.ShadowSpec;
// detectors back them with lazily allocated pages, so a sparsely touched
// container costs shadow memory proportional to the pages actually
// accessed, not its declared length. List additionally uses a growable
// region with no declared length at all.
package mem

import (
	"runtime"
	"sync"
	"unsafe"

	"spd3/internal/detect"
	"spd3/internal/stats"
	"spd3/internal/task"
)

// Array is a one-dimensional instrumented array of T.
type Array[T any] struct {
	data  []T
	sh    detect.Shadow
	sited detect.SiteShadow // non-nil when site capture is on and supported
	reg   *stats.Region     // per-region traffic tally; nil when stats are off
}

// siteShadow returns the shadow's site-capable form when rt asks for
// site capture and the detector supports it.
func siteShadow(rt *task.Runtime, sh detect.Shadow) detect.SiteShadow {
	if !rt.CaptureSites() {
		return nil
	}
	ss, _ := sh.(detect.SiteShadow)
	return ss
}

// callerSite captures the program counter of the instrumented access's
// caller.
func callerSite() uintptr {
	pc, _, _, _ := runtime.Caller(2)
	return pc
}

// NewArray allocates an instrumented array of n elements named name in
// race reports.
func NewArray[T any](rt *task.Runtime, name string, n int) *Array[T] {
	var zero T
	sh := rt.Detector().NewShadow(detect.Spec(name, n, int(unsafe.Sizeof(zero))))
	return &Array[T]{data: make([]T, n), sh: sh, sited: siteShadow(rt, sh), reg: rt.Stats().Region(name, n)}
}

// Len returns the number of elements.
func (a *Array[T]) Len() int { return len(a.data) }

// Get performs an instrumented read of element i.
func (a *Array[T]) Get(c *task.Ctx, i int) T {
	c.CountAccess(a.reg, false)
	if a.sited != nil {
		a.sited.ReadAt(c.Task(), i, callerSite())
	} else {
		a.sh.Read(c.Task(), i)
	}
	return a.data[i]
}

// Set performs an instrumented write of element i.
func (a *Array[T]) Set(c *task.Ctx, i int, v T) {
	c.CountAccess(a.reg, true)
	if a.sited != nil {
		a.sited.WriteAt(c.Task(), i, callerSite())
	} else {
		a.sh.Write(c.Task(), i)
	}
	a.data[i] = v
}

// Update applies f to element i as an instrumented read-modify-write.
func (a *Array[T]) Update(c *task.Ctx, i int, f func(T) T) {
	c.CountAccess(a.reg, false)
	c.CountAccess(a.reg, true)
	if a.sited != nil {
		site := callerSite()
		a.sited.ReadAt(c.Task(), i, site)
		a.sited.WriteAt(c.Task(), i, site)
	} else {
		a.sh.Read(c.Task(), i)
		a.sh.Write(c.Task(), i)
	}
	a.data[i] = f(a.data[i])
}

// Unchecked returns the backing slice without instrumentation. Use only
// for provably race-free phases (task-local or read-only data); this is
// the programmer-directed analogue of the paper's §5.5 static check
// eliminations (main-task, read-only, and escape-analysis elimination).
func (a *Array[T]) Unchecked() []T { return a.data }

// Matrix is a two-dimensional instrumented array stored in row-major
// order; element (i,j) has shadow index i*cols+j.
type Matrix[T any] struct {
	rows, cols int
	data       []T
	sh         detect.Shadow
	sited      detect.SiteShadow
	reg        *stats.Region
}

// NewMatrix allocates an instrumented rows×cols matrix.
func NewMatrix[T any](rt *task.Runtime, name string, rows, cols int) *Matrix[T] {
	var zero T
	sh := rt.Detector().NewShadow(detect.Spec(name, rows*cols, int(unsafe.Sizeof(zero))))
	return &Matrix[T]{
		rows:  rows,
		cols:  cols,
		data:  make([]T, rows*cols),
		sh:    sh,
		sited: siteShadow(rt, sh),
		reg:   rt.Stats().Region(name, rows*cols),
	}
}

// Rows returns the row count.
func (m *Matrix[T]) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix[T]) Cols() int { return m.cols }

// Get performs an instrumented read of element (i, j).
func (m *Matrix[T]) Get(c *task.Ctx, i, j int) T {
	c.CountAccess(m.reg, false)
	k := i*m.cols + j
	if m.sited != nil {
		m.sited.ReadAt(c.Task(), k, callerSite())
	} else {
		m.sh.Read(c.Task(), k)
	}
	return m.data[k]
}

// Set performs an instrumented write of element (i, j).
func (m *Matrix[T]) Set(c *task.Ctx, i, j int, v T) {
	c.CountAccess(m.reg, true)
	k := i*m.cols + j
	if m.sited != nil {
		m.sited.WriteAt(c.Task(), k, callerSite())
	} else {
		m.sh.Write(c.Task(), k)
	}
	m.data[k] = v
}

// Update applies f to element (i, j) as an instrumented
// read-modify-write. Kernels that would otherwise pair a Get with a Set
// of the same element pay one index computation, one site capture, and
// one dispatch branch instead of two of each.
func (m *Matrix[T]) Update(c *task.Ctx, i, j int, f func(T) T) {
	c.CountAccess(m.reg, false)
	c.CountAccess(m.reg, true)
	k := i*m.cols + j
	if m.sited != nil {
		site := callerSite()
		m.sited.ReadAt(c.Task(), k, site)
		m.sited.WriteAt(c.Task(), k, site)
	} else {
		m.sh.Read(c.Task(), k)
		m.sh.Write(c.Task(), k)
	}
	m.data[k] = f(m.data[k])
}

// UncheckedRow returns row i of the backing store without
// instrumentation; see Array.Unchecked for when this is legitimate
// (the §5.5 static check eliminations).
func (m *Matrix[T]) UncheckedRow(i int) []T { return m.data[i*m.cols : (i+1)*m.cols] }

// Unchecked returns the whole backing store without instrumentation;
// see Array.Unchecked.
func (m *Matrix[T]) Unchecked() []T { return m.data }

// Var is a single instrumented shared variable.
type Var[T any] struct {
	v     T
	sh    detect.Shadow
	sited detect.SiteShadow
	reg   *stats.Region
}

// NewVar allocates an instrumented variable with initial value init.
func NewVar[T any](rt *task.Runtime, name string, init T) *Var[T] {
	var zero T
	sh := rt.Detector().NewShadow(detect.Spec(name, 1, int(unsafe.Sizeof(zero))))
	return &Var[T]{v: init, sh: sh, sited: siteShadow(rt, sh), reg: rt.Stats().Region(name, 1)}
}

// Get performs an instrumented read.
func (v *Var[T]) Get(c *task.Ctx) T {
	c.CountAccess(v.reg, false)
	if v.sited != nil {
		v.sited.ReadAt(c.Task(), 0, callerSite())
	} else {
		v.sh.Read(c.Task(), 0)
	}
	return v.v
}

// Set performs an instrumented write.
func (v *Var[T]) Set(c *task.Ctx, x T) {
	c.CountAccess(v.reg, true)
	if v.sited != nil {
		v.sited.WriteAt(c.Task(), 0, callerSite())
	} else {
		v.sh.Write(c.Task(), 0)
	}
	v.v = x
}

// Unchecked returns a pointer to the variable's storage without
// instrumentation; see Array.Unchecked for when this is legitimate
// (sequential phases, e.g. seeding before the run or reading the result
// after it).
func (v *Var[T]) Unchecked() *T { return &v.v }

// Update applies f to the variable as an instrumented
// read-modify-write; see Matrix.Update for why this beats a Get+Set
// pair.
func (v *Var[T]) Update(c *task.Ctx, f func(T) T) {
	c.CountAccess(v.reg, false)
	c.CountAccess(v.reg, true)
	if v.sited != nil {
		site := callerSite()
		v.sited.ReadAt(c.Task(), 0, site)
		v.sited.WriteAt(c.Task(), 0, site)
	} else {
		v.sh.Read(c.Task(), 0)
		v.sh.Write(c.Task(), 0)
	}
	v.v = f(v.v)
}

// Mutex is an instrumented lock: it provides real mutual exclusion via a
// sync.Mutex and reports acquire/release to the detector, which FastTrack
// and Eraser use for their lock semantics. SPD3 and ESP-bags, which
// target pure async/finish programs, ignore the events.
type Mutex struct {
	mu sync.Mutex
	l  *detect.Lock
}
