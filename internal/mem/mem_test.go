package mem

import (
	"strings"
	"testing"
	"testing/quick"

	"spd3/internal/core"
	"spd3/internal/detect"
	"spd3/internal/task"
)

func newRT(t *testing.T) (*task.Runtime, *detect.Sink) {
	t.Helper()
	sink := detect.NewSink(false, 0)
	rt, err := task.New(task.Config{Executor: task.Sequential,
		Detector: core.New(sink, core.SyncCAS)})
	if err != nil {
		t.Fatal(err)
	}
	return rt, sink
}

func TestArrayGetSet(t *testing.T) {
	rt, sink := newRT(t)
	a := NewArray[int](rt, "a", 10)
	err := rt.Run(func(c *task.Ctx) {
		for i := 0; i < a.Len(); i++ {
			a.Set(c, i, i*i)
		}
		for i := 0; i < a.Len(); i++ {
			if got := a.Get(c, i); got != i*i {
				t.Errorf("a[%d] = %d", i, got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sink.Empty() {
		t.Fatalf("races: %v", sink.Races())
	}
}

func TestArrayUpdateIsReadModifyWrite(t *testing.T) {
	// Update must count as both a read and a write: two parallel
	// Updates race.
	rt, sink := newRT(t)
	a := NewArray[int](rt, "a", 1)
	err := rt.Run(func(c *task.Ctx) {
		c.FinishAsync(2, func(c *task.Ctx, i int) {
			a.Update(c, 0, func(v int) int { return v + 1 })
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if sink.Empty() {
		t.Fatal("parallel Updates not reported")
	}
}

func TestMatrixUpdateIsReadModifyWrite(t *testing.T) {
	// Like Array.Update: two parallel Matrix.Updates of one element
	// must race, and a sequential Update must apply f to the datum.
	rt, sink := newRT(t)
	m := NewMatrix[int](rt, "m", 2, 2)
	err := rt.Run(func(c *task.Ctx) {
		m.Set(c, 1, 1, 20)
		m.Update(c, 1, 1, func(v int) int { return v + 1 })
		if got := m.Get(c, 1, 1); got != 21 {
			t.Errorf("m[1][1] = %d, want 21", got)
		}
		c.FinishAsync(2, func(c *task.Ctx, i int) {
			m.Update(c, 0, 0, func(v int) int { return v + 1 })
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if sink.Empty() {
		t.Fatal("parallel Matrix.Updates not reported")
	}
	if got := m.UncheckedRow(0)[0]; got != 2 {
		t.Errorf("m[0][0] = %d, want 2 (sequential executor)", got)
	}
}

func TestVarUpdateIsReadModifyWrite(t *testing.T) {
	rt, sink := newRT(t)
	v := NewVar(rt, "v", 10)
	err := rt.Run(func(c *task.Ctx) {
		v.Update(c, func(x int) int { return x * 2 })
		if got := v.Get(c); got != 20 {
			t.Errorf("v = %d, want 20", got)
		}
		c.FinishAsync(2, func(c *task.Ctx, i int) {
			v.Update(c, func(x int) int { return x + 1 })
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if sink.Empty() {
		t.Fatal("parallel Var.Updates not reported")
	}
}

func TestMatrixIndexing(t *testing.T) {
	rt, sink := newRT(t)
	m := NewMatrix[int](rt, "m", 3, 5)
	if m.Rows() != 3 || m.Cols() != 5 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	err := rt.Run(func(c *task.Ctx) {
		for i := 0; i < 3; i++ {
			for j := 0; j < 5; j++ {
				m.Set(c, i, j, i*100+j)
			}
		}
		if got := m.Get(c, 2, 4); got != 204 {
			t.Errorf("m[2][4] = %d", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.UncheckedRow(1)[3]; got != 103 {
		t.Errorf("Row(1)[3] = %d", got)
	}
	if len(m.Unchecked()) != 15 {
		t.Errorf("Unchecked len = %d", len(m.Unchecked()))
	}
	if !sink.Empty() {
		t.Fatalf("races: %v", sink.Races())
	}
}

// TestMatrixShadowIsPerElement: writes to different elements of the same
// row must not be confused — i.e. the shadow index space is element-
// granular, not row-granular.
func TestMatrixShadowIsPerElement(t *testing.T) {
	rt, sink := newRT(t)
	m := NewMatrix[int](rt, "m", 2, 8)
	err := rt.Run(func(c *task.Ctx) {
		c.FinishAsync(8, func(c *task.Ctx, j int) {
			m.Set(c, 0, j, j)
			m.Set(c, 1, j, j)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sink.Empty() {
		t.Fatalf("column-disjoint writes raced: %v", sink.Races())
	}
}

func TestVar(t *testing.T) {
	rt, sink := newRT(t)
	v := NewVar(rt, "v", 41)
	err := rt.Run(func(c *task.Ctx) {
		v.Set(c, v.Get(c)+1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sink.Empty() {
		t.Fatalf("races: %v", sink.Races())
	}
	// Parallel access to a Var must race.
	rt2, sink2 := newRT(t)
	v2 := NewVar(rt2, "v2", 0)
	if err := rt2.Run(func(c *task.Ctx) {
		c.FinishAsync(2, func(c *task.Ctx, i int) { v2.Set(c, i) })
	}); err != nil {
		t.Fatal(err)
	}
	if sink2.Empty() {
		t.Fatal("parallel Var writes not reported")
	}
}

func TestRawBypassesDetection(t *testing.T) {
	// Raw is the §5.5 escape hatch: accesses through it are invisible
	// to the detector (the caller asserts they cannot race).
	rt, sink := newRT(t)
	a := NewArray[int](rt, "a", 4)
	err := rt.Run(func(c *task.Ctx) {
		c.FinishAsync(2, func(c *task.Ctx, i int) {
			a.Unchecked()[0] = i // would race if instrumented; sequential executor keeps it safe here
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sink.Empty() {
		t.Fatalf("Raw access was instrumented: %v", sink.Races())
	}
}

// TestArrayQuickSequentialSemantics: property test (testing/quick) — an
// instrumented array behaves exactly like a plain slice under any
// sequence of single-task sets.
func TestArrayQuickSequentialSemantics(t *testing.T) {
	check := func(writes []uint8, vals []int16) bool {
		rt, sink := newRT(t)
		const n = 16
		a := NewArray[int](rt, "a", n)
		ref := make([]int, n)
		err := rt.Run(func(c *task.Ctx) {
			for i, w := range writes {
				v := 0
				if i < len(vals) {
					v = int(vals[i])
				}
				idx := int(w) % n
				a.Set(c, idx, v)
				ref[idx] = v
			}
			for i := 0; i < n; i++ {
				if a.Get(c, i) != ref[i] {
					t.Errorf("a[%d] = %d, want %d", i, a.Get(c, i), ref[i])
				}
			}
		})
		return err == nil && sink.Empty()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSiteCaptureAllContainers: with CaptureSites on, races completed
// through Array, Matrix, Var, and Update all carry this file's name.
func TestSiteCaptureAllContainers(t *testing.T) {
	sink := detect.NewSink(false, 0)
	rt, err := task.New(task.Config{Executor: task.Sequential,
		Detector: core.New(sink, core.SyncCAS), CaptureSites: true})
	if err != nil {
		t.Fatal(err)
	}
	a := NewArray[int](rt, "a", 1)
	m := NewMatrix[int](rt, "m", 1, 1)
	v := NewVar(rt, "v", 0)
	err = rt.Run(func(c *task.Ctx) {
		c.FinishAsync(2, func(c *task.Ctx, i int) {
			a.Set(c, 0, i)
			m.Set(c, 0, 0, i)
			v.Set(c, i)
			a.Update(c, 0, func(x int) int { return x + 1 })
			m.Update(c, 0, 0, func(x int) int { return x + 1 })
			v.Update(c, func(x int) int { return x + 1 })
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	races := sink.Races()
	if len(races) == 0 {
		t.Fatal("no races on deliberately racy program")
	}
	for _, r := range races {
		if !strings.Contains(r.CurStep, "mem_test.go:") {
			t.Errorf("race lacks site: %v", r)
		}
	}
}

// TestSiteCaptureOffByDefault: without the option, reports carry no
// file:line and no runtime.Caller cost is paid.
func TestSiteCaptureOffByDefault(t *testing.T) {
	sink := detect.NewSink(false, 0)
	rt, err := task.New(task.Config{Executor: task.Sequential,
		Detector: core.New(sink, core.SyncCAS)})
	if err != nil {
		t.Fatal(err)
	}
	a := NewArray[int](rt, "a", 1)
	if err := rt.Run(func(c *task.Ctx) {
		c.FinishAsync(2, func(c *task.Ctx, i int) { a.Set(c, 0, i) })
	}); err != nil {
		t.Fatal(err)
	}
	for _, r := range sink.Races() {
		if strings.Contains(r.CurStep, ".go:") {
			t.Errorf("unexpected site in %v", r)
		}
	}
}

func TestMutexProvidesMutualExclusion(t *testing.T) {
	sink := detect.NewSink(false, 0)
	rt, err := task.New(task.Config{Executor: task.Goroutines,
		Detector: core.New(sink, core.SyncCAS)})
	if err != nil {
		t.Fatal(err)
	}
	mu := NewMutex(rt)
	counter := 0 // plain state: safe only because of mu
	err = rt.Run(func(c *task.Ctx) {
		c.FinishAsync(64, func(c *task.Ctx, i int) {
			mu.Lock(c)
			counter++
			mu.Unlock(c)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if counter != 64 {
		t.Fatalf("counter = %d, want 64 (lost updates)", counter)
	}
}
