package mem

import (
	"fmt"
	"sync/atomic"
	"unsafe"

	"spd3/internal/detect"
	"spd3/internal/shadow"
	"spd3/internal/stats"
	"spd3/internal/task"
)

// List is a growable instrumented sequence of T. Unlike Array, its
// length is not declared up front: the detector backs it with a growable
// shadow region (detect.GrowableSpec) whose pages appear as elements are
// appended, and the data itself lives in the same kind of CAS-published
// pages, so existing elements never move and concurrent readers never
// observe a reallocation.
//
// Appends are physically safe from any task — page publication is atomic
// — but logically they contend on the list's length, which the detector
// sees as a write to a dedicated length cell (shadow index 0; element i
// maps to shadow index i+1). Two unordered Appends therefore report a
// race, exactly as two unordered Sets of one Var would: growing a shared
// list from parallel siblings without synchronization is a data race on
// the list's structure.
type List[T any] struct {
	data  *shadow.Pages[T]
	n     atomic.Int64
	sh    detect.Shadow
	sited detect.SiteShadow
	reg   *stats.Region
}

// NewList allocates an empty instrumented list named name in race
// reports.
func NewList[T any](rt *task.Runtime, name string) *List[T] {
	var zero T
	sh := rt.Detector().NewShadow(detect.GrowableSpec(name, int(unsafe.Sizeof(zero))))
	return &List[T]{
		data:  shadow.New[T](-1),
		sh:    sh,
		sited: siteShadow(rt, sh),
		reg:   rt.Stats().Region(name, 0),
	}
}

// shadow index mapping: cell 0 is the length, element i is cell i+1.
const lengthCell = 0

// Len performs an instrumented read of the list's length. It is ordered
// against Appends by the detector: reading the length in parallel with
// an unordered Append is reported as a race.
func (l *List[T]) Len(c *task.Ctx) int {
	c.CountAccess(l.reg, false)
	if l.sited != nil {
		l.sited.ReadAt(c.Task(), lengthCell, callerSite())
	} else {
		l.sh.Read(c.Task(), lengthCell)
	}
	return int(l.n.Load())
}

// Append performs an instrumented append of v and returns its index. The
// detector observes a write to the length cell plus a write to the new
// element's cell.
func (l *List[T]) Append(c *task.Ctx, v T) int {
	c.CountAccess(l.reg, true)
	i := int(l.n.Add(1) - 1)
	if l.sited != nil {
		site := callerSite()
		l.sited.WriteAt(c.Task(), lengthCell, site)
		l.sited.WriteAt(c.Task(), i+1, site)
	} else {
		l.sh.Write(c.Task(), lengthCell)
		l.sh.Write(c.Task(), i+1)
	}
	*l.data.Cell(i) = v
	return i
}

// Get performs an instrumented read of element i.
func (l *List[T]) Get(c *task.Ctx, i int) T {
	l.check(i)
	c.CountAccess(l.reg, false)
	if l.sited != nil {
		l.sited.ReadAt(c.Task(), i+1, callerSite())
	} else {
		l.sh.Read(c.Task(), i+1)
	}
	return *l.data.Cell(i)
}

// Set performs an instrumented write of element i, which must already
// exist.
func (l *List[T]) Set(c *task.Ctx, i int, v T) {
	l.check(i)
	c.CountAccess(l.reg, true)
	if l.sited != nil {
		l.sited.WriteAt(c.Task(), i+1, callerSite())
	} else {
		l.sh.Write(c.Task(), i+1)
	}
	*l.data.Cell(i) = v
}

func (l *List[T]) check(i int) {
	if n := l.n.Load(); i < 0 || int64(i) >= n {
		panic(fmt.Sprintf("mem: list index %d out of range [0,%d)", i, n))
	}
}

// UncheckedAt returns a pointer to element i without instrumentation;
// see Array.Unchecked for when this is legitimate (the paper's §5.5
// static check eliminations). The pointer stays valid across later
// Appends — list elements never move.
func (l *List[T]) UncheckedAt(i int) *T {
	l.check(i)
	return l.data.Cell(i)
}
