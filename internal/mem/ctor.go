package mem

import "spd3/internal/task"

// Ctx-scoped constructors. The original constructors take a
// *task.Runtime and are meant for allocation before the run starts —
// mechanical instrumentation (spd3inst) instead rewrites allocations
// wherever they occur in the program, and inside a task body the only
// handle in scope is the task's *Ctx.
//
// Creation-point semantics: allocating a container zeroes its memory,
// which is a write by the allocating task. The Ctx-scoped constructors
// record that write in the shadow — one per cell for the fixed-size
// containers, one on the structure (length) cell for the growable ones —
// so a task that reads a container unordered with the sibling that
// created it is reported, exactly as if the sibling had Set every
// element. This is the DPST-correct account of allocation: in the
// paper's model the initializing writes belong to the allocating step.
//
// The *Runtime (and *Engine) forms are the same constructors with the
// creation writes elided: allocation before Run happens-before the main
// task and therefore before every step of the program, so recording the
// initializing writes would be pure overhead — every later access is
// ordered after them. Allocating through a root Ctx inside Run before
// the first spawn is equivalent for the same reason.

// NewArrayIn allocates an instrumented array of n elements from inside
// a task body, attributing the initializing writes to c's task.
func NewArrayIn[T any](c *task.Ctx, name string, n int) *Array[T] {
	a := NewArray[T](c.Runtime(), name, n)
	t := c.Task()
	for i := 0; i < n; i++ {
		a.sh.Write(t, i)
	}
	return a
}

// NewMatrixIn allocates an instrumented rows×cols matrix from inside a
// task body, attributing the initializing writes to c's task.
func NewMatrixIn[T any](c *task.Ctx, name string, rows, cols int) *Matrix[T] {
	m := NewMatrix[T](c.Runtime(), name, rows, cols)
	t := c.Task()
	for i := 0; i < rows*cols; i++ {
		m.sh.Write(t, i)
	}
	return m
}

// NewVarIn allocates an instrumented variable from inside a task body,
// attributing the initializing write to c's task.
func NewVarIn[T any](c *task.Ctx, name string, init T) *Var[T] {
	v := NewVar(c.Runtime(), name, init)
	v.sh.Write(c.Task(), 0)
	return v
}

// NewListIn allocates an empty instrumented list from inside a task
// body, attributing the initializing write (of the empty structure) to
// c's task.
func NewListIn[T any](c *task.Ctx, name string) *List[T] {
	l := NewList[T](c.Runtime(), name)
	l.sh.Write(c.Task(), lengthCell)
	return l
}

// NewMapIn allocates an empty instrumented map from inside a task body,
// attributing the initializing write (of the empty structure) to c's
// task.
func NewMapIn[K comparable, V any](c *task.Ctx, name string) *Map[K, V] {
	m := NewMap[K, V](c.Runtime(), name)
	m.sh.Write(c.Task(), lengthCell)
	return m
}

// NewMutexIn allocates an instrumented lock from inside a task body. A
// lock has no shadowed cells, so there is no creation write to record.
func NewMutexIn(c *task.Ctx) *Mutex {
	return NewMutex(c.Runtime())
}
