package mem

import (
	"sync"

	"spd3/internal/task"
)

// Accumulator is an HJ-style finish accumulator: a reduction cell that
// any number of parallel tasks may Put into, with the combined value
// readable once those tasks have been joined (typically right after the
// enclosing finish).
//
// Accumulators are race-free by construction — Put goes to a per-worker
// partial (or a mutex under non-pool executors) and Value combines the
// partials — so they carry no shadow memory and cost the detector
// nothing. They are the idiomatic replacement for the read-modify-write
// reduction races that SPD3 flags (see examples/quickstart): instead of
// fixing such a race with a manual partial-sums array, use an
// Accumulator.
//
// The combine function must be associative and commutative; Put order
// across tasks is not defined.
type Accumulator[T any] struct {
	combine func(a, b T) T
	slots   []accSlot[T]

	mu      sync.Mutex
	rest    T
	hasRest bool
}

// accSlot is one worker's partial, padded to avoid false sharing between
// adjacent workers' partials.
type accSlot[T any] struct {
	v   T
	set bool
	_   [32]byte
}

// NewAccumulator returns an accumulator over combine for rt's workers.
// The zero T acts as the identity only in the sense that the first Put
// into a slot stores rather than combines.
func NewAccumulator[T any](rt *task.Runtime, combine func(a, b T) T) *Accumulator[T] {
	return &Accumulator[T]{
		combine: combine,
		slots:   make([]accSlot[T], rt.Workers()),
	}
}

// Put folds v into the accumulator. Safe to call from any task.
func (a *Accumulator[T]) Put(c *task.Ctx, v T) {
	if id := c.WorkerID(); id >= 0 && id < len(a.slots) {
		s := &a.slots[id]
		if s.set {
			s.v = a.combine(s.v, v)
		} else {
			s.v, s.set = v, true
		}
		return
	}
	a.mu.Lock()
	if a.hasRest {
		a.rest = a.combine(a.rest, v)
	} else {
		a.rest, a.hasRest = v, true
	}
	a.mu.Unlock()
}

// Value combines and returns all partials. Call it only after the tasks
// that Put have been joined (after the enclosing finish, or after Run);
// calling it while producers still run is itself a race the accumulator
// cannot see.
func (a *Accumulator[T]) Value() (T, bool) {
	var acc T
	have := false
	fold := func(v T) {
		if have {
			acc = a.combine(acc, v)
		} else {
			acc, have = v, true
		}
	}
	for i := range a.slots {
		if a.slots[i].set {
			fold(a.slots[i].v)
		}
	}
	a.mu.Lock()
	if a.hasRest {
		fold(a.rest)
	}
	a.mu.Unlock()
	return acc, have
}

// Reset clears the accumulator for reuse.
func (a *Accumulator[T]) Reset() {
	for i := range a.slots {
		var zero T
		a.slots[i].v, a.slots[i].set = zero, false
	}
	a.mu.Lock()
	var zero T
	a.rest, a.hasRest = zero, false
	a.mu.Unlock()
}
