package mem

import "spd3/internal/task"

// NewMutex returns an instrumented lock registered with rt's detector.
func NewMutex(rt *task.Runtime) *Mutex {
	return &Mutex{l: rt.NewLock()}
}

// Lock acquires the mutex and then reports the acquire, so the detector's
// lock state transfer happens inside the critical section.
func (m *Mutex) Lock(c *task.Ctx) {
	m.mu.Lock()
	c.Acquire(m.l)
}

// Unlock reports the release and then frees the mutex, so the detector's
// lock state is published before another task can acquire.
func (m *Mutex) Unlock(c *task.Ctx) {
	c.Release(m.l)
	m.mu.Unlock()
}
