package espbags

import (
	"testing"

	"spd3/internal/detect"
	"spd3/internal/task"
)

func run(t *testing.T, body func(c *task.Ctx, sh detect.Shadow)) []detect.Race {
	t.Helper()
	sink := detect.NewSink(false, 0)
	d := New(sink)
	rt, err := task.New(task.Config{Executor: task.Sequential, Detector: d})
	if err != nil {
		t.Fatal(err)
	}
	sh := d.NewShadow(detect.Spec("x", 8, 8))
	if err := rt.Run(func(c *task.Ctx) { body(c, sh) }); err != nil {
		t.Fatal(err)
	}
	return sink.Races()
}

func TestRequiresSequential(t *testing.T) {
	d := New(detect.NewSink(false, 0))
	if !d.RequiresSequential() {
		t.Fatal("ESP-bags must demand sequential execution")
	}
	if _, err := task.New(task.Config{Executor: task.Pool, Detector: d}); err == nil {
		t.Fatal("pairing ESP-bags with the pool executor must fail")
	}
}

func TestWriteWriteRace(t *testing.T) {
	races := run(t, func(c *task.Ctx, sh detect.Shadow) {
		c.FinishAsync(2, func(c *task.Ctx, i int) { sh.Write(c.Task(), 0) })
	})
	if len(races) != 1 || races[0].Kind != detect.WriteWrite {
		t.Fatalf("races = %v, want one write-write", races)
	}
}

func TestWriteReadRace(t *testing.T) {
	races := run(t, func(c *task.Ctx, sh detect.Shadow) {
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
			sh.Read(c.Task(), 0)
		})
	})
	if len(races) != 1 || races[0].Kind != detect.WriteRead {
		t.Fatalf("races = %v, want one write-read", races)
	}
}

func TestReadWriteRace(t *testing.T) {
	races := run(t, func(c *task.Ctx, sh detect.Shadow) {
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) { sh.Read(c.Task(), 0) })
			c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
		})
	})
	if len(races) != 1 || races[0].Kind != detect.ReadWrite {
		t.Fatalf("races = %v, want one read-write", races)
	}
}

func TestOrderedAccessesQuiet(t *testing.T) {
	races := run(t, func(c *task.Ctx, sh detect.Shadow) {
		sh.Write(c.Task(), 0)
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) {
				sh.Read(c.Task(), 0)
				sh.Write(c.Task(), 0)
			})
		})
		sh.Read(c.Task(), 0)
		sh.Write(c.Task(), 0)
	})
	if len(races) != 0 {
		t.Fatalf("races = %v, want none", races)
	}
}

func TestFinishScopesJoinExactly(t *testing.T) {
	// A task outside the inner finish stays parallel: the inner finish
	// must not serialize it. This distinguishes async/finish ESP-bags
	// from Cilk SP-bags' sync-all semantics.
	races := run(t, func(c *task.Ctx, sh detect.Shadow) {
		c.Finish(func(c *task.Ctx) { // F1
			c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) }) // A: IEF = F1
			c.Finish(func(c *task.Ctx) {                         // F2
				c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 1) })
			})
			// F2 joined only its own async; A is still parallel.
			sh.Write(c.Task(), 0)
		})
	})
	if len(races) != 1 || races[0].Index != 0 || races[0].Kind != detect.WriteWrite {
		t.Fatalf("races = %v, want one write-write on index 0", races)
	}
}

func TestNestedFinishSerializes(t *testing.T) {
	races := run(t, func(c *task.Ctx, sh detect.Shadow) {
		c.Finish(func(c *task.Ctx) {
			c.Finish(func(c *task.Ctx) {
				c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
			})
			sh.Write(c.Task(), 0) // ordered by inner finish
		})
	})
	if len(races) != 0 {
		t.Fatalf("races = %v, want none", races)
	}
}

func TestTransitiveJoin(t *testing.T) {
	races := run(t, func(c *task.Ctx, sh detect.Shadow) {
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) {
				c.Async(func(c *task.Ctx) { // grandchild, same IEF
					sh.Write(c.Task(), 0)
				})
			})
		})
		sh.Write(c.Task(), 0) // ordered: finish waits transitively
	})
	if len(races) != 0 {
		t.Fatalf("races = %v, want none", races)
	}
}

func TestReadSharedThenOrderedWriteQuiet(t *testing.T) {
	races := run(t, func(c *task.Ctx, sh detect.Shadow) {
		c.FinishAsync(10, func(c *task.Ctx, i int) { sh.Read(c.Task(), 0) })
		sh.Write(c.Task(), 0)
	})
	if len(races) != 0 {
		t.Fatalf("races = %v, want none", races)
	}
}

func TestManyReadersParallelWriteCaught(t *testing.T) {
	races := run(t, func(c *task.Ctx, sh detect.Shadow) {
		c.Finish(func(c *task.Ctx) {
			for i := 0; i < 10; i++ {
				c.Async(func(c *task.Ctx) { sh.Read(c.Task(), 0) })
			}
			c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
		})
	})
	if len(races) == 0 {
		t.Fatal("missed read-write race with one stored reader")
	}
}

func TestConstantShadowFootprint(t *testing.T) {
	sink := detect.NewSink(false, 0)
	d := New(sink)
	sh := d.NewShadow(detect.Spec("a", 1000, 8))
	// Paged shadow: nothing allocated until a location is touched.
	if f := d.Footprint().ShadowBytes; f != 0 {
		t.Fatalf("untouched shadow bytes = %d, want 0", f)
	}
	rt, err := task.New(task.Config{Executor: task.Sequential, Detector: d})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(func(c *task.Ctx) { sh.Write(c.Task(), 0) }); err != nil {
		t.Fatal(err)
	}
	// A 1000-element region fits one clipped page, so one touch
	// materializes exactly 1000 cells.
	f := d.Footprint()
	if per := f.ShadowBytes / 1000; per != svarBytes {
		t.Fatalf("bytes per location = %d, want %d", per, svarBytes)
	}
}

func TestUnionFindStress(t *testing.T) {
	// Deep absorb chains with path compression must keep verdicts
	// correct: repeated finish nesting with parallel tails.
	races := run(t, func(c *task.Ctx, sh detect.Shadow) {
		for round := 0; round < 50; round++ {
			c.Finish(func(c *task.Ctx) {
				c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 2) })
			})
		}
		sh.Write(c.Task(), 2) // ordered after all rounds
	})
	if len(races) != 0 {
		t.Fatalf("races = %v, want none", races)
	}
}
