package espbags

import "spd3/internal/detect"

func init() {
	detect.Register("espbags", func(o detect.FactoryOpts) detect.Detector {
		d := New(o.Sink)
		d.SetStats(o.Stats)
		return d
	})
}
