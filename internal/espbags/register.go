package espbags

import "spd3/internal/detect"

func init() {
	detect.Register("espbags", func(o detect.FactoryOpts) detect.Detector {
		return New(o.Sink)
	})
}
