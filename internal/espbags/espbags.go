// Package espbags reimplements the ESP-bags race detector (Raman et al.,
// RV 2010), the paper's sequential baseline for async/finish programs
// (§6.2). ESP-bags extends Feng & Leiserson's SP-bags from spawn/sync to
// async/finish.
//
// The program must execute sequentially, depth-first (asyncs run inline,
// immediately): the detector declares RequiresSequential and the runtime
// enforces the pairing. During such an execution each dynamic task owns an
// S-bag and each dynamic finish a P-bag, maintained over a union-find:
//
//   - spawn of A:   S(A) = {A}
//   - end of A:     P(IEF(A)) absorbs S(A)
//   - end-finish F: S(owner) absorbs P(F)
//
// At any moment, a previously seen task that is (transitively) in an
// S-bag is serialized with the current step; a task in a P-bag may run in
// parallel with it. Each monitored location stores one writer task and
// one reader task (O(1) space, like SPD3 — but at the cost of the
// sequential execution that Figure 4 measures).
package espbags

import (
	"fmt"

	"spd3/internal/detect"
	"spd3/internal/shadow"
	"spd3/internal/stats"
)

// kind discriminates bag kinds.
type kind uint8

const (
	sBag kind = iota
	pBag
)

// bag is a set of task elements in the union-find. Only the root element
// of each set points at its bag descriptor.
type bag struct {
	k    kind
	root *elem
}

// absorb moves all elements of o into b, emptying o.
func (b *bag) absorb(o *bag) {
	if o.root == nil {
		return
	}
	if b.root == nil {
		b.root = o.root
	} else {
		b.root = union(b.root, o.root)
	}
	b.root.bag = b
	o.root = nil
}

// add inserts a fresh element into b.
func (b *bag) add(e *elem) {
	if b.root == nil {
		b.root = e
	} else {
		b.root = union(b.root, e)
	}
	b.root.bag = b
}

// elem is one union-find node representing a dynamic task instance.
type elem struct {
	parent *elem
	rank   int8
	bag    *bag // valid at roots only
	id     detect.TaskID
}

// elemBytes is the approximate size of one union-find node.
const elemBytes = 8 + 1 + 8 + 8 + 7

// find returns e's root with path compression.
func find(e *elem) *elem {
	for e.parent != nil {
		if e.parent.parent != nil {
			e.parent = e.parent.parent // halving
		}
		e = e.parent
	}
	return e
}

// union links two roots by rank and returns the new root.
func union(a, b *elem) *elem {
	a, b = find(a), find(b)
	if a == b {
		return a
	}
	if a.rank < b.rank {
		a, b = b, a
	}
	b.parent = a
	if a.rank == b.rank {
		a.rank++
	}
	return a
}

// inP reports whether e currently sits in a P-bag (may run in parallel
// with the current step).
func inP(e *elem) bool { return e != nil && find(e).bag.k == pBag }

// inS reports whether e currently sits in an S-bag (serialized with the
// current step).
func inS(e *elem) bool { return e != nil && find(e).bag.k == sBag }

// Detector is the ESP-bags detector.
type Detector struct {
	sink *detect.Sink
	st   *stats.Recorder

	elems   int64
	bags    int64
	shadows []*regionShadow
}

// New returns an ESP-bags detector reporting to sink.
func New(sink *detect.Sink) *Detector {
	return &Detector{sink: sink}
}

// SetStats wires the engine's observability recorder (nil is fine);
// call before the first NewShadow.
func (d *Detector) SetStats(st *stats.Recorder) { d.st = st }

// Name implements detect.Detector.
func (d *Detector) Name() string { return "espbags" }

// RequiresSequential is ESP-bags' defining restriction (§1 limitation
// (ii)): the analysis only works during a depth-first sequential
// execution.
func (d *Detector) RequiresSequential() bool { return true }

type taskState struct {
	e *elem
	s *bag
}

type finishState struct {
	p *bag
}

func (d *Detector) newTask(id detect.TaskID) *taskState {
	e := &elem{id: id}
	s := &bag{k: sBag}
	s.add(e)
	d.elems++
	d.bags++
	return &taskState{e: e, s: s}
}

// MainTask implements detect.Detector.
func (d *Detector) MainTask(t *detect.Task, implicit *detect.Finish) {
	t.State = d.newTask(t.ID)
	implicit.State = &finishState{p: &bag{k: pBag}}
	d.bags++
}

// BeforeSpawn: S(child) = {child}.
func (d *Detector) BeforeSpawn(parent, child *detect.Task) {
	child.State = d.newTask(child.ID)
}

// TaskEnd: P(IEF(child)) absorbs S(child).
func (d *Detector) TaskEnd(t *detect.Task) {
	ts := t.State.(*taskState)
	fs := t.IEF.State.(*finishState)
	fs.p.absorb(ts.s)
}

// FinishStart: a fresh, empty P-bag for the finish.
func (d *Detector) FinishStart(t *detect.Task, f *detect.Finish) {
	f.State = &finishState{p: &bag{k: pBag}}
	d.bags++
}

// FinishEnd: S(owner) absorbs P(F) — everything joined by the finish is
// now serialized before the owner's continuation.
func (d *Detector) FinishEnd(t *detect.Task, f *detect.Finish) {
	ts := t.State.(*taskState)
	fs := f.State.(*finishState)
	ts.s.absorb(fs.p)
}

// Acquire is unsupported: ESP-bags targets pure async/finish programs.
func (d *Detector) Acquire(*detect.Task, *detect.Lock) {}

// Release is unsupported; see Acquire.
func (d *Detector) Release(*detect.Task, *detect.Lock) {}

// NewShadow implements detect.Detector: per-location state lives in
// lazily allocated pages, so only touched pages cost memory.
func (d *Detector) NewShadow(spec detect.ShadowSpec) detect.Shadow {
	s := &regionShadow{d: d, name: spec.Name, vars: shadow.New[svar](spec.Bound())}
	sh := d.st.Shard(0)
	s.vars.SetOnAlloc(func(int) { sh.Inc(stats.ShadowPagesAllocated) })
	d.shadows = append(d.shadows, s)
	return s
}

// Footprint implements detect.Detector: O(1) shadow space per touched
// location plus one union-find element per task.
func (d *Detector) Footprint() detect.Footprint {
	var f detect.Footprint
	for _, s := range d.shadows {
		_, cells := s.vars.Allocated()
		f.ShadowBytes += cells * svarBytes
	}
	f.TreeBytes = d.elems*elemBytes + d.bags*17
	return f
}

// svar is the per-location shadow: the last writer and one reader.
type svar struct {
	w *elem
	r *elem
}

const svarBytes = 16

type regionShadow struct {
	d    *Detector
	name string
	vars *shadow.Pages[svar]
}

func (s *regionShadow) report(k detect.RaceKind, i int, prev *elem, cur *detect.Task) {
	s.d.sink.Report(detect.Race{
		Kind:     k,
		Region:   s.name,
		Index:    i,
		PrevStep: fmt.Sprintf("task#%d", prev.id),
		CurStep:  fmt.Sprintf("task#%d", cur.ID),
	})
}

// Read implements the SP-bags read rule: a write-read race if the
// recorded writer is in a P-bag; the reader field is replaced only when
// the previous reader is serialized (or absent).
func (s *regionShadow) Read(t *detect.Task, i int) {
	if s.d.sink.Stopped() {
		return
	}
	v := s.vars.CellOf(&t.PC, i)
	if inP(v.w) {
		s.report(detect.WriteRead, i, v.w, t)
	}
	if v.r == nil || inS(v.r) {
		v.r = t.State.(*taskState).e
	}
}

// Write implements the SP-bags write rule: races if the recorded reader
// or writer is in a P-bag; the writer field always becomes the current
// task.
func (s *regionShadow) Write(t *detect.Task, i int) {
	if s.d.sink.Stopped() {
		return
	}
	v := s.vars.CellOf(&t.PC, i)
	if inP(v.r) {
		s.report(detect.ReadWrite, i, v.r, t)
	}
	if inP(v.w) {
		s.report(detect.WriteWrite, i, v.w, t)
	}
	v.w = t.State.(*taskState).e
}

var _ detect.Detector = (*Detector)(nil)
