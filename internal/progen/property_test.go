package progen

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"spd3/internal/core"
	"spd3/internal/detect"
	"spd3/internal/dpst"
	"spd3/internal/espbags"
	"spd3/internal/fasttrack"
	"spd3/internal/graph"
	"spd3/internal/task"
)

const (
	seqSeeds      = 400 // programs checked under the sequential executor
	parallelSeeds = 80  // subset re-checked under parallel executors
)

// truth runs p under the oracle and returns whether any schedule races.
func truth(t *testing.T, p *Program) bool {
	t.Helper()
	o := graph.New()
	rt, err := task.New(task.Config{Executor: task.Sequential, Detector: o})
	if err != nil {
		t.Fatal(err)
	}
	if err := Run(rt, p, nil); err != nil {
		t.Fatal(err)
	}
	return o.HasRace()
}

// verdict runs p under det and returns whether it reported a race.
func verdict(t *testing.T, p *Program, det detect.Detector, sink *detect.Sink,
	exec task.ExecKind, workers int) bool {
	t.Helper()
	rt, err := task.New(task.Config{Executor: exec, Workers: workers, Detector: det})
	if err != nil {
		t.Fatal(err)
	}
	if err := Run(rt, p, nil); err != nil {
		t.Fatal(err)
	}
	return !sink.Empty()
}

// TestSPD3SoundAndPreciseVsOracle is the central property test for
// Theorems 2–4: over hundreds of random programs, SPD3's verdict under a
// depth-first execution equals the oracle's all-schedules ground truth —
// no false negatives, no false positives.
func TestSPD3SoundAndPreciseVsOracle(t *testing.T) {
	for seed := int64(0); seed < seqSeeds; seed++ {
		p := Generate(seed, Config{})
		want := truth(t, p)
		for _, opt := range []core.Options{
			{Sync: core.SyncCAS},
			{Sync: core.SyncMutex},
			{Sync: core.SyncCAS, StepCache: true},
			{Sync: core.SyncMutex, StepCache: true},
			// DMHP fast-path ablations: the pointer walk, the
			// fingerprint path, and the per-task memo must all
			// yield the oracle's verdict.
			{Sync: core.SyncCAS, NoFingerprint: true, NoDMHPMemo: true},
			{Sync: core.SyncCAS, NoDMHPMemo: true},
			{Sync: core.SyncCAS, NoFingerprint: true},
		} {
			sink := detect.NewSink(false, 0)
			got := verdict(t, p, core.NewWith(sink, opt), sink, task.Sequential, 1)
			if got != want {
				t.Fatalf("seed %d (%+v): spd3 verdict %v, oracle %v\n%s",
					seed, opt, got, want, p)
			}
		}
	}
}

// TestSPD3ScheduleIndependence re-checks a subset of seeds under the
// work-stealing pool and the goroutine executor: by Theorems 2–3 the
// verdict must not depend on the schedule.
func TestSPD3ScheduleIndependence(t *testing.T) {
	execs := []struct {
		kind    task.ExecKind
		workers int
	}{
		{task.Pool, 4},
		{task.Goroutines, 1},
	}
	for seed := int64(0); seed < parallelSeeds; seed++ {
		p := Generate(seed, Config{})
		want := truth(t, p)
		for _, e := range execs {
			for rep := 0; rep < 3; rep++ { // several schedules
				sink := detect.NewSink(false, 0)
				got := verdict(t, p, core.New(sink, core.SyncCAS), sink, e.kind, e.workers)
				if got != want {
					t.Fatalf("seed %d %v rep %d: spd3 verdict %v, oracle %v\n%s",
						seed, e.kind, rep, got, want, p)
				}
			}
		}
	}
}

// TestESPBagsMatchesOracle validates the sequential baseline the same way.
func TestESPBagsMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < seqSeeds; seed++ {
		p := Generate(seed, Config{})
		want := truth(t, p)
		sink := detect.NewSink(false, 0)
		got := verdict(t, p, espbags.New(sink), sink, task.Sequential, 1)
		if got != want {
			t.Fatalf("seed %d: esp-bags verdict %v, oracle %v\n%s", seed, got, want, p)
		}
	}
}

// TestFastTrackMatchesOracle: for pure async/finish programs the
// happens-before relation is schedule-independent, so FastTrack — precise
// for the observed trace — must also match the oracle.
func TestFastTrackMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < seqSeeds; seed++ {
		p := Generate(seed, Config{})
		want := truth(t, p)
		sink := detect.NewSink(false, 0)
		got := verdict(t, p, fasttrack.New(sink), sink, task.Sequential, 1)
		if got != want {
			t.Fatalf("seed %d: fasttrack verdict %v, oracle %v\n%s", seed, got, want, p)
		}
	}
}

// pathSig canonically names a DPST node by the child-sequence path from
// the root, e.g. "f/2a/1s": stable across executions by the §3.2
// path-invariance property.
func pathSig(n *dpst.Node) string {
	var parts []string
	for ; n != nil; n = n.Parent {
		var k byte
		switch n.Kind {
		case dpst.FinishNode:
			k = 'f'
		case dpst.AsyncNode:
			k = 'a'
		default:
			k = 's'
		}
		parts = append(parts, fmt.Sprintf("%d%c", n.Seq, k))
	}
	// reverse
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "/")
}

// signatures runs p under the given executor with SPD3 attached and
// returns site → DPST path of the step performing that access.
func signatures(t *testing.T, p *Program, exec task.ExecKind, workers int) map[int]string {
	t.Helper()
	sink := detect.NewSink(false, 0)
	d := core.New(sink, core.SyncCAS)
	rt, err := task.New(task.Config{Executor: exec, Workers: workers, Detector: d})
	if err != nil {
		t.Fatal(err)
	}
	sigs := make(map[int]string, p.Sites)
	var mu sync.Mutex
	hook := func(c *task.Ctx, site int, isWrite bool) {
		sig := pathSig(d.StepOf(c.Task()))
		mu.Lock()
		sigs[site] = sig
		mu.Unlock()
	}
	if err := Run(rt, p, hook); err != nil {
		t.Fatal(err)
	}
	return sigs
}

// TestDPSTDeterminism checks the §3.2 property: for a given input, every
// execution yields the same DPST — each access site lands on a step with
// an identical root path under sequential, pool, and goroutine execution.
func TestDPSTDeterminism(t *testing.T) {
	checked := 0
	for seed := int64(0); seed < parallelSeeds*2 && checked < parallelSeeds; seed++ {
		p := Generate(seed, Config{})
		ref := signatures(t, p, task.Sequential, 1)
		for _, e := range []struct {
			kind    task.ExecKind
			workers int
		}{{task.Pool, 4}, {task.Goroutines, 1}} {
			got := signatures(t, p, e.kind, e.workers)
			if len(got) != len(ref) {
				t.Fatalf("seed %d %v: %d sites, want %d", seed, e.kind, len(got), len(ref))
			}
			for site, sig := range ref {
				if got[site] != sig {
					t.Fatalf("seed %d %v: site %d path %q, want %q\n%s",
						seed, e.kind, site, got[site], sig, p)
				}
			}
		}
		checked++
	}
}

// TestFastTrackMatchesLockOracle: with locks in play, ground truth is the
// observed trace's happens-before (fork/join plus release→acquire edges
// in observed order); FastTrack is precise for exactly that relation, so
// under the deterministic sequential executor the verdicts must coincide.
func TestFastTrackMatchesLockOracle(t *testing.T) {
	cfg := Config{Locks: 2}
	for seed := int64(0); seed < seqSeeds; seed++ {
		p := Generate(seed, cfg)
		o := graph.New()
		rt, err := task.New(task.Config{Executor: task.Sequential, Detector: o})
		if err != nil {
			t.Fatal(err)
		}
		if err := Run(rt, p, nil); err != nil {
			t.Fatal(err)
		}
		want := o.HasRace()

		sink := detect.NewSink(false, 0)
		got := verdict(t, p, fasttrack.New(sink), sink, task.Sequential, 1)
		if got != want {
			t.Fatalf("seed %d: fasttrack verdict %v, lock oracle %v\n%s", seed, got, want, p)
		}
	}
}

// TestLockCorpusHasLockSensitiveCases makes sure the lock corpus isn't
// vacuous: some programs must be race-free *because of* their locks
// (racy when lock edges are ignored).
func TestLockCorpusHasLockSensitiveCases(t *testing.T) {
	sensitive := 0
	for seed := int64(0); seed < seqSeeds && sensitive < 5; seed++ {
		p := Generate(seed, Config{Locks: 2})
		withLocks := graph.New()
		rt, _ := task.New(task.Config{Executor: task.Sequential, Detector: withLocks})
		if err := Run(rt, p, nil); err != nil {
			t.Fatal(err)
		}
		if withLocks.HasRace() {
			continue
		}
		// Same program, locks invisible: SPD3 sees only fork/join.
		sink := detect.NewSink(false, 0)
		if verdict(t, p, core.New(sink, core.SyncCAS), sink, task.Sequential, 1) {
			sensitive++
		}
	}
	if sensitive < 5 {
		t.Fatalf("only %d lock-sensitive programs in the corpus; widen the generator", sensitive)
	}
}

// TestProgramRendering: the pseudocode printer covers every node kind.
func TestProgramRendering(t *testing.T) {
	found := map[string]bool{}
	for seed := int64(0); seed < 50; seed++ {
		s := Generate(seed, Config{Locks: 1}).String()
		for _, kw := range []string{"async {", "finish {", "locked l", "v["} {
			if strings.Contains(s, kw) {
				found[kw] = true
			}
		}
	}
	for _, kw := range []string{"async {", "finish {", "locked l", "v["} {
		if !found[kw] {
			t.Errorf("no generated program rendered %q", kw)
		}
	}
}

// TestGeneratorDeterminism: same seed, same program.
func TestGeneratorDeterminism(t *testing.T) {
	a := Generate(42, Config{})
	b := Generate(42, Config{})
	if a.String() != b.String() {
		t.Fatal("generator is not deterministic")
	}
	if a.Sites == 0 {
		t.Fatal("seed 42 generated no accesses; widen the generator")
	}
}

// TestGeneratorShapes: the corpus must actually contain parallelism and
// both verdict classes, or the property tests above prove nothing.
func TestGeneratorShapes(t *testing.T) {
	var racy, quiet, withAsync int
	for seed := int64(0); seed < seqSeeds; seed++ {
		p := Generate(seed, Config{})
		a, _, acc := p.Stats()
		if a > 0 {
			withAsync++
		}
		if acc == 0 {
			continue
		}
		if truth(t, p) {
			racy++
		} else {
			quiet++
		}
	}
	t.Logf("corpus: %d racy, %d race-free, %d with asyncs", racy, quiet, withAsync)
	if racy < seqSeeds/10 || quiet < seqSeeds/10 {
		t.Fatalf("unbalanced corpus: %d racy vs %d race-free", racy, quiet)
	}
	if withAsync < seqSeeds*3/4 {
		t.Fatalf("only %d/%d programs spawn tasks", withAsync, seqSeeds)
	}
}
