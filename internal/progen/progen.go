// Package progen generates random structured async/finish programs and
// executes them against any detector. It powers the property-based tests
// that validate the paper's soundness and precision theorems:
//
//   - Theorem 2 (soundness): if the ground-truth oracle finds a racy
//     schedule, every monitored execution must report a race.
//   - Theorem 3 (precision): if the oracle finds no race, no execution
//     may report one.
//   - DPST determinism (§3.2): for race-free inputs, every execution
//     builds the same tree.
//
// Programs are finite trees of Seq/Async/Finish/Read/Write nodes over a
// small set of shared variables; every memory access carries a unique
// site ID so executions can be compared structurally across schedules.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"spd3/internal/detect"
	"spd3/internal/task"
)

// Op discriminates program nodes.
type Op uint8

const (
	// Seq runs its children in order.
	Seq Op = iota
	// Async spawns its children as one child task.
	Async
	// Finish runs its children under a finish scope.
	Finish
	// Read reads shared variable Var.
	Read
	// Write writes shared variable Var.
	Write
	// Locked runs its children (accesses only) holding lock Var.
	// Bodies contain no task operations, so no schedule can deadlock.
	Locked
	// Loop runs its children Var times in sequence (Var holds the trip
	// count, not a variable index). Generated only under Config.Loops;
	// rendered as a counted for-loop with constant bounds, which is
	// exactly the shape the §5.5 eliminator's hoist rule targets.
	Loop
)

// Node is one program node.
type Node struct {
	Op       Op
	Var      int // for Read/Write
	Site     int // unique access site ID (Read/Write only)
	Children []*Node
}

// Program is a randomly generated async/finish program.
type Program struct {
	Root  *Node
	Vars  int
	Locks int
	Sites int
	Seed  int64
}

// Config bounds program generation.
type Config struct {
	Vars     int // number of shared variables (default 4)
	MaxDepth int // nesting bound (default 5)
	MaxStmts int // approximate statement budget (default 40)

	// Strict restricts generation to strict fork-join shape: asyncs
	// appear only as the immediate (and only) children of a finish,
	// so a forking scope performs no accesses or spawns of its own
	// while children are live. This is the program class Offset-Span
	// labeling supports (paper §7); general async/finish is not.
	Strict bool

	// Locks > 0 adds that many mutexes and generates well-nested
	// critical sections around access runs. Lock-order ground truth is
	// per observed trace; compare against FastTrack, not SPD3.
	Locks int

	// Loops adds counted sequential loops (2–4 trips) over generated
	// statement lists. Loops change no concurrency structure — their
	// bodies run in the spawning task — but give the static check
	// eliminator loop-invariant accesses to hoist.
	Loops bool
}

// Generate builds a random program from seed.
func Generate(seed int64, cfg Config) *Program {
	if cfg.Vars <= 0 {
		cfg.Vars = 4
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 5
	}
	if cfg.MaxStmts <= 0 {
		cfg.MaxStmts = 40
	}
	g := &generator{rng: rand.New(rand.NewSource(seed)), cfg: cfg, budget: cfg.MaxStmts}
	root := &Node{Op: Seq}
	g.fill(root, 0)
	return &Program{Root: root, Vars: cfg.Vars, Locks: cfg.Locks, Sites: g.sites, Seed: seed}
}

type generator struct {
	rng    *rand.Rand
	cfg    Config
	budget int
	sites  int
}

// fill appends a random statement list to parent. The root gets a longer
// list so that most generated programs actually spawn tasks.
func (g *generator) fill(parent *Node, depth int) {
	n := 1 + g.rng.Intn(4)
	if depth == 0 {
		n = 4 + g.rng.Intn(5)
	}
	for i := 0; i < n && g.budget > 0; i++ {
		g.budget--
		parent.Children = append(parent.Children, g.stmt(depth))
	}
}

func (g *generator) stmt(depth int) *Node {
	r := g.rng.Intn(100)
	switch {
	case !g.cfg.Strict && depth < g.cfg.MaxDepth && r < 25:
		n := &Node{Op: Async}
		g.fill(n, depth+1)
		return n
	case depth < g.cfg.MaxDepth && r < 40:
		n := &Node{Op: Finish}
		if g.cfg.Strict {
			// Strict: the finish is a pure fork — only asyncs
			// inside, each with a recursively strict body.
			k := 1 + g.rng.Intn(3)
			for i := 0; i < k && g.budget > 0; i++ {
				g.budget--
				a := &Node{Op: Async}
				g.fill(a, depth+1)
				n.Children = append(n.Children, a)
			}
		} else {
			g.fill(n, depth+1)
		}
		return n
	case g.cfg.Locks > 0 && r < 55:
		n := &Node{Op: Locked, Var: g.rng.Intn(g.cfg.Locks)}
		k := 1 + g.rng.Intn(3)
		for i := 0; i < k && g.budget > 0; i++ {
			g.budget--
			n.Children = append(n.Children, g.access())
		}
		return n
	case g.cfg.Loops && depth < g.cfg.MaxDepth && r < 62:
		n := &Node{Op: Loop, Var: 2 + g.rng.Intn(3)}
		g.fill(n, depth+1)
		return n
	case r < 70:
		return g.accessKind(Read)
	default:
		return g.accessKind(Write)
	}
}

func (g *generator) access() *Node {
	if g.rng.Intn(100) < 60 {
		return g.accessKind(Read)
	}
	return g.accessKind(Write)
}

func (g *generator) accessKind(op Op) *Node {
	n := &Node{Op: op, Var: g.rng.Intn(g.cfg.Vars), Site: g.sites}
	g.sites++
	return n
}

// AccessHook observes each executed access; site is the access's unique
// site ID. Used by the DPST-determinism test; may be nil.
type AccessHook func(c *task.Ctx, site int, isWrite bool)

// Run executes p on rt against the detector's shadow memory and returns
// the runtime error, if any.
func Run(rt *task.Runtime, p *Program, hook AccessHook) error {
	env := &execEnv{sh: rt.Detector().NewShadow(detect.Spec("v", p.Vars, 8)), hook: hook}
	env.locks = make([]*detect.Lock, p.Locks)
	env.mus = make([]sync.Mutex, p.Locks)
	for i := range env.locks {
		env.locks[i] = rt.NewLock()
	}
	return rt.Run(func(c *task.Ctx) {
		env.execList(c, p.Root.Children)
	})
}

type execEnv struct {
	sh    detect.Shadow
	locks []*detect.Lock
	mus   []sync.Mutex // real exclusion backing the detect.Locks
	hook  AccessHook
}

func (e *execEnv) execList(c *task.Ctx, ns []*Node) {
	for _, n := range ns {
		e.execNode(c, n)
	}
}

func (e *execEnv) execNode(c *task.Ctx, n *Node) {
	switch n.Op {
	case Seq:
		e.execList(c, n.Children)
	case Async:
		c.Async(func(c *task.Ctx) { e.execList(c, n.Children) })
	case Finish:
		c.Finish(func(c *task.Ctx) { e.execList(c, n.Children) })
	case Locked:
		e.mus[n.Var].Lock()
		c.Acquire(e.locks[n.Var])
		e.execList(c, n.Children)
		c.Release(e.locks[n.Var])
		e.mus[n.Var].Unlock()
	case Loop:
		for i := 0; i < n.Var; i++ {
			e.execList(c, n.Children)
		}
	case Read:
		if e.hook != nil {
			e.hook(c, n.Site, false)
		}
		e.sh.Read(c.Task(), n.Var)
	case Write:
		if e.hook != nil {
			e.hook(c, n.Site, true)
		}
		e.sh.Write(c.Task(), n.Var)
	}
}

// String renders the program as async/finish pseudocode, for debugging
// failed seeds.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// seed %d\n", p.Seed)
	var walk func(n *Node, indent string)
	walk = func(n *Node, indent string) {
		switch n.Op {
		case Seq:
			for _, ch := range n.Children {
				walk(ch, indent)
			}
		case Async:
			fmt.Fprintf(&b, "%sasync {\n", indent)
			for _, ch := range n.Children {
				walk(ch, indent+"  ")
			}
			fmt.Fprintf(&b, "%s}\n", indent)
		case Finish:
			fmt.Fprintf(&b, "%sfinish {\n", indent)
			for _, ch := range n.Children {
				walk(ch, indent+"  ")
			}
			fmt.Fprintf(&b, "%s}\n", indent)
		case Locked:
			fmt.Fprintf(&b, "%slocked l%d {\n", indent, n.Var)
			for _, ch := range n.Children {
				walk(ch, indent+"  ")
			}
			fmt.Fprintf(&b, "%s}\n", indent)
		case Loop:
			fmt.Fprintf(&b, "%sloop %d {\n", indent, n.Var)
			for _, ch := range n.Children {
				walk(ch, indent+"  ")
			}
			fmt.Fprintf(&b, "%s}\n", indent)
		case Read:
			fmt.Fprintf(&b, "%s_ = v[%d] // site %d\n", indent, n.Var, n.Site)
		case Write:
			fmt.Fprintf(&b, "%sv[%d] = _ // site %d\n", indent, n.Var, n.Site)
		}
	}
	walk(p.Root, "")
	return b.String()
}

// Stats summarizes a program's shape. Loops count as statements of the
// task that runs them; accesses counts static sites, not executions.
func (p *Program) Stats() (asyncs, finishes, accesses int) {
	var walk func(n *Node)
	walk = func(n *Node) {
		switch n.Op {
		case Async:
			asyncs++
		case Finish:
			finishes++
		case Read, Write:
			accesses++
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(p.Root)
	return
}
