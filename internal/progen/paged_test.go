package progen

import (
	"fmt"
	"math/rand"
	"testing"

	"spd3/internal/core"
	"spd3/internal/detect"
	"spd3/internal/shadow"
	"spd3/internal/task"
)

// raceSet runs p under an SPD3 configuration and returns the set of
// (region, index, kind) triples it reported.
func raceSet(t *testing.T, p *Program, opt core.Options) map[string]bool {
	t.Helper()
	sink := detect.NewSink(false, 0)
	d := core.NewWith(sink, opt)
	rt, err := task.New(task.Config{Executor: task.Sequential, Detector: d})
	if err != nil {
		t.Fatal(err)
	}
	if err := Run(rt, p, nil); err != nil {
		t.Fatal(err)
	}
	set := map[string]bool{}
	for _, r := range sink.Races() {
		set[fmt.Sprintf("%s[%d]:%v", r.Region, r.Index, r.Kind)] = true
	}
	return set
}

// TestPagedMatchesFlatOnPrograms is the paging differential quick-check:
// the paged shadow and the flat ablation must report identical race sets
// — the backing store is a pure representation change.
func TestPagedMatchesFlatOnPrograms(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		p := Generate(seed, Config{})
		paged := raceSet(t, p, core.Options{Sync: core.SyncCAS})
		flat := raceSet(t, p, core.Options{Sync: core.SyncCAS, FlatShadow: true})
		if len(paged) != len(flat) {
			t.Fatalf("seed %d: paged %v != flat %v\n%s", seed, paged, flat, p)
		}
		for k := range paged {
			if !flat[k] {
				t.Fatalf("seed %d: race %s reported by paged only\n%s", seed, k, p)
			}
		}
	}
}

// TestPagedFlatAgreeAcrossPageBoundaries hammers random sparse indices
// clustered around shadow page boundaries — the indices most likely to
// expose page-clipping or directory-indexing bugs — and checks that the
// paged shadow and the flat ablation report identical race sets.
func TestPagedFlatAgreeAcrossPageBoundaries(t *testing.T) {
	const (
		elems  = 3*shadow.PageSize + 7 // four pages, short last page
		tasks  = 8
		events = 40
	)
	type acc struct {
		idx   int
		write bool
	}
	for trial := int64(0); trial < 25; trial++ {
		rng := rand.New(rand.NewSource(1000 + trial))
		scripts := make([][]acc, tasks)
		for ti := range scripts {
			for e := 0; e < events; e++ {
				// Bias indices to within a few cells of a page boundary.
				idx := rng.Intn(4)*shadow.PageSize + rng.Intn(7) - 3
				if idx < 0 {
					idx = 0
				}
				if idx >= elems {
					idx = elems - 1
				}
				scripts[ti] = append(scripts[ti], acc{idx: idx, write: rng.Intn(3) == 0})
			}
		}
		run := func(opt core.Options) map[string]bool {
			sink := detect.NewSink(false, 0)
			d := core.NewWith(sink, opt)
			rt, err := task.New(task.Config{Executor: task.Sequential, Detector: d})
			if err != nil {
				t.Fatal(err)
			}
			sh := d.NewShadow(detect.Spec("v", elems, 8))
			if err := rt.Run(func(c *task.Ctx) {
				c.Finish(func(c *task.Ctx) {
					for _, s := range scripts {
						s := s
						c.Async(func(c *task.Ctx) {
							for _, a := range s {
								if a.write {
									sh.Write(c.Task(), a.idx)
								} else {
									sh.Read(c.Task(), a.idx)
								}
							}
						})
					}
				})
			}); err != nil {
				t.Fatal(err)
			}
			set := map[string]bool{}
			for _, r := range sink.Races() {
				set[fmt.Sprintf("%s[%d]:%v", r.Region, r.Index, r.Kind)] = true
			}
			return set
		}
		paged := run(core.Options{Sync: core.SyncCAS})
		flat := run(core.Options{Sync: core.SyncCAS, FlatShadow: true})
		if len(paged) != len(flat) {
			t.Fatalf("trial %d: paged %v != flat %v", trial, paged, flat)
		}
		for k := range paged {
			if !flat[k] {
				t.Fatalf("trial %d: race %s reported by paged only", trial, k)
			}
		}
	}
}
