package progen

import (
	"testing"

	"spd3/internal/core"
	"spd3/internal/detect"
	"spd3/internal/graph"
	"spd3/internal/task"
)

// FuzzSPD3VsOracle lets coverage-guided fuzzing explore generator seeds
// and shape parameters, checking Theorems 2–4 on every program it
// reaches: SPD3's verdict must equal the oracle's all-schedules truth.
func FuzzSPD3VsOracle(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(5), uint8(40))
	f.Add(int64(42), uint8(1), uint8(8), uint8(60))
	f.Add(int64(7), uint8(8), uint8(2), uint8(20))
	f.Fuzz(func(t *testing.T, seed int64, vars, depth, stmts uint8) {
		cfg := Config{
			Vars:     int(vars%8) + 1,
			MaxDepth: int(depth%8) + 1,
			MaxStmts: int(stmts%80) + 1,
		}
		p := Generate(seed, cfg)

		o := graph.New()
		rt, err := task.New(task.Config{Executor: task.Sequential, Detector: o})
		if err != nil {
			t.Fatal(err)
		}
		if err := Run(rt, p, nil); err != nil {
			t.Fatal(err)
		}
		want := o.HasRace()

		sink := detect.NewSink(false, 0)
		rt, err = task.New(task.Config{Executor: task.Sequential,
			Detector: core.New(sink, core.SyncCAS)})
		if err != nil {
			t.Fatal(err)
		}
		if err := Run(rt, p, nil); err != nil {
			t.Fatal(err)
		}
		if got := !sink.Empty(); got != want {
			t.Fatalf("seed %d cfg %+v: spd3 %v, oracle %v\n%s", seed, cfg, got, want, p)
		}
	})
}
