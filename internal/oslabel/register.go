package oslabel

import "spd3/internal/detect"

func init() {
	detect.Register("oslabel", func(o detect.FactoryOpts) detect.Detector {
		return New(o.Sink)
	})
}
