package oslabel

import (
	"testing"

	"spd3/internal/detect"
	"spd3/internal/graph"
	"spd3/internal/progen"
	"spd3/internal/task"
)

func run(t *testing.T, exec task.ExecKind, workers int,
	body func(c *task.Ctx, sh detect.Shadow)) []detect.Race {
	t.Helper()
	sink := detect.NewSink(false, 0)
	d := New(sink)
	rt, err := task.New(task.Config{Executor: exec, Workers: workers, Detector: d})
	if err != nil {
		t.Fatal(err)
	}
	sh := d.NewShadow(detect.Spec("x", 8, 8))
	if err := rt.Run(func(c *task.Ctx) { body(c, sh) }); err != nil {
		t.Fatal(err)
	}
	return sink.Races()
}

func TestOrderedPredicate(t *testing.T) {
	base := Label{1}
	c1 := Label{1, 1}
	c2 := Label{1, 2}
	post := Label{1 + span}
	if !ordered(base, c1) || !ordered(base, c2) {
		t.Error("prefix must be ordered")
	}
	if ordered(c1, c2) {
		t.Error("siblings must be parallel")
	}
	if !ordered(c1, post) || !ordered(c2, post) {
		t.Error("joined children must be ordered before the continuation")
	}
	if !ordered(post, Label{1 + 2*span}) {
		t.Error("successive joins must stay ordered")
	}
	if ordered(Label{1, 1, 1}, Label{1, 2}) {
		t.Error("descendants of siblings must be parallel")
	}
}

func TestStrictForkJoinVerdicts(t *testing.T) {
	// Parallel writes inside one fork: race.
	races := run(t, task.Sequential, 1, func(c *task.Ctx, sh detect.Shadow) {
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
			c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
		})
	})
	if len(races) != 1 || races[0].Kind != detect.WriteWrite {
		t.Fatalf("races = %v, want one write-write", races)
	}

	// Sequential forks: second fork ordered after the first.
	races = run(t, task.Sequential, 1, func(c *task.Ctx, sh detect.Shadow) {
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
		})
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
		})
		sh.Write(c.Task(), 0)
	})
	if len(races) != 0 {
		t.Fatalf("sequential forks raced: %v", races)
	}

	// Read-shared fork then ordered write.
	races = run(t, task.Sequential, 1, func(c *task.Ctx, sh detect.Shadow) {
		sh.Write(c.Task(), 0)
		c.Finish(func(c *task.Ctx) {
			for i := 0; i < 6; i++ {
				c.Async(func(c *task.Ctx) { sh.Read(c.Task(), 0) })
			}
		})
		sh.Write(c.Task(), 0)
	})
	if len(races) != 0 {
		t.Fatalf("read-shared fork raced: %v", races)
	}

	// Parallel readers then a parallel writer in the same fork.
	races = run(t, task.Sequential, 1, func(c *task.Ctx, sh detect.Shadow) {
		c.Finish(func(c *task.Ctx) {
			for i := 0; i < 6; i++ {
				c.Async(func(c *task.Ctx) { sh.Read(c.Task(), 0) })
			}
			c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
		})
	})
	if len(races) == 0 {
		t.Fatal("reader/writer fork produced no race")
	}
}

// TestStrictMatchesOracle cross-checks OS labeling against the precise
// oracle on strict random programs — the class it supports.
func TestStrictMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		p := progen.Generate(seed, progen.Config{Strict: true})
		o := graph.New()
		rt, err := task.New(task.Config{Executor: task.Sequential, Detector: o})
		if err != nil {
			t.Fatal(err)
		}
		if err := progen.Run(rt, p, nil); err != nil {
			t.Fatal(err)
		}
		want := o.HasRace()

		sink := detect.NewSink(false, 0)
		d := New(sink)
		rt, err = task.New(task.Config{Executor: task.Sequential, Detector: d})
		if err != nil {
			t.Fatal(err)
		}
		if err := progen.Run(rt, p, nil); err != nil {
			t.Fatal(err)
		}
		if got := !sink.Empty(); got != want {
			t.Fatalf("seed %d: oslabel verdict %v, oracle %v\n%s", seed, got, want, p)
		}
	}
}

// TestStrictParallelExecutorAgrees re-checks a subset under the pool.
func TestStrictParallelExecutorAgrees(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		p := progen.Generate(seed, progen.Config{Strict: true})
		o := graph.New()
		rt, err := task.New(task.Config{Executor: task.Sequential, Detector: o})
		if err != nil {
			t.Fatal(err)
		}
		if err := progen.Run(rt, p, nil); err != nil {
			t.Fatal(err)
		}
		want := o.HasRace()

		sink := detect.NewSink(false, 0)
		rt, err = task.New(task.Config{Executor: task.Pool, Workers: 4, Detector: New(sink)})
		if err != nil {
			t.Fatal(err)
		}
		if err := progen.Run(rt, p, nil); err != nil {
			t.Fatal(err)
		}
		if got := !sink.Empty(); got != want {
			t.Fatalf("seed %d: oslabel verdict %v, oracle %v\n%s", seed, got, want, p)
		}
	}
}

// TestFootprintGrowsWithLabels: labels cost words proportional to fork
// depth; the shadow stays constant per location.
func TestFootprintGrowsWithLabels(t *testing.T) {
	sink := detect.NewSink(false, 0)
	d := New(sink)
	sh := d.NewShadow(detect.Spec("a", 100, 8))
	// Paged shadow: nothing allocated until a location is touched.
	if f := d.Footprint().ShadowBytes; f != 0 {
		t.Fatalf("untouched shadow bytes = %d, want 0", f)
	}
	rt, err := task.New(task.Config{Executor: task.Sequential, Detector: d})
	if err != nil {
		t.Fatal(err)
	}
	var f detect.Footprint
	if err := rt.Run(func(c *task.Ctx) {
		sh.Write(c.Task(), 0)
		f = d.Footprint()
		c.FinishAsync(50, func(c *task.Ctx, i int) {})
	}); err != nil {
		t.Fatal(err)
	}
	// One touch materializes the region's single clipped page.
	if f.ShadowBytes != 100*osVarBytes {
		t.Fatalf("shadow bytes = %d, want %d", f.ShadowBytes, 100*osVarBytes)
	}
	if got := d.Footprint().TreeBytes; got <= f.TreeBytes {
		t.Fatalf("label bytes did not grow: %d", got)
	}
}

// TestOrderedQuick: ordered() is symmetric-in-verdict for the MHP use
// (mhp(a,b) == mhp(b,a)) and reflexive labels are ordered.
func TestOrderedQuick(t *testing.T) {
	mk := func(raw []uint16, joins uint8) Label {
		if len(raw) == 0 {
			return Label{1}
		}
		l := make(Label, 0, len(raw))
		for _, v := range raw {
			l = append(l, uint64(v%8)+1)
		}
		l[len(l)-1] += uint64(joins%4) * span
		return l
	}
	for seed := 0; seed < 200; seed++ {
		a := mk([]uint16{uint16(seed), uint16(seed * 7)}, uint8(seed))
		b := mk([]uint16{uint16(seed * 3)}, uint8(seed/2))
		if mhp(a, b) != mhp(b, a) {
			t.Fatalf("mhp not symmetric for %v vs %v", a, b)
		}
		if mhp(a, a) {
			t.Fatalf("label parallel with itself: %v", a)
		}
	}
}

// TestPrefixLen covers the LCA-depth analogue.
func TestPrefixLen(t *testing.T) {
	if got := prefixLen(Label{1, 2, 3}, Label{1, 2, 4}); got != 2 {
		t.Fatalf("prefixLen = %d", got)
	}
	if got := prefixLen(Label{1}, Label{1, 2}); got != 1 {
		t.Fatalf("prefixLen = %d", got)
	}
	if got := prefixLen(Label{5}, Label{1}); got != 0 {
		t.Fatalf("prefixLen = %d", got)
	}
}

// TestEscapingAsyncLimitation pins the §7 claim: on general async/finish
// programs — here a task that outlives an inner finish — OS labeling
// loses precision, reporting a race on a race-free program (it treats
// the inner finish's join as ordering the escaped task too, and the
// later conflicting access as ordered, so the miss shows up inverted:
// it fails to keep verdicts consistent with the oracle). SPD3 handles
// the same program exactly.
func TestEscapingAsyncLimitation(t *testing.T) {
	// finish F1 {
	//   async A { write x }        // IEF = F1: escapes F2
	//   finish F2 { async { } }
	//   write x                    // races with A
	// }
	prog := func(c *task.Ctx, sh detect.Shadow) {
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
			c.Finish(func(c *task.Ctx) {
				c.Async(func(c *task.Ctx) {})
			})
			sh.Write(c.Task(), 0)
		})
	}
	races := run(t, task.Sequential, 1, prog)
	if len(races) != 0 {
		// If a future change makes OS labeling catch this, the §7
		// claim needs re-examination — fail loudly either way.
		t.Fatalf("oslabel unexpectedly reported %v; update the §7 limitation note", races)
	}
	// The program does race (the oracle and SPD3 agree); OS labeling
	// missed it because F2's join bumped the owner's offset into a
	// residue class that also "orders" the escaped async A.
}
