// Package oslabel implements Offset-Span labeling (Mellor-Crummey,
// Supercomputing 1991), the related-work baseline the paper discusses in
// §7: constant-size access histories like SPD3's, but applicable only to
// *strict* nested fork-join programs.
//
// Every task segment carries a label — a sequence of offsets, one per
// enclosing fork level (spans are a fixed power of two here, so only
// offsets are stored). The rules, mapped onto the runtime's events for a
// strict program (a finish that contains only asyncs and whose owner
// performs no monitored access inside it):
//
//   - fork (spawn inside a finish): child label = parent label ++ [i],
//     with i the 1-based spawn index in this finish;
//   - join (finish end): the parent's last offset grows by the span S,
//     keeping its residue class mod S.
//
// Two segments are ordered iff one label prefixes the other, or the
// offsets at their first differing position share a residue class mod S
// (then the smaller offset came first); otherwise they may run in
// parallel. Joins preserve residues while forks allocate fresh ones,
// which is the whole trick.
//
// The paper's §7 point — reproduced by this package's tests — is that
// OS labeling cannot express async/finish's *selective* join: a task
// spawned before a finish stays alive across it, and no label increment
// can order the finish's children before a later sibling without also
// ordering the still-live earlier sibling. The detector therefore
// documents soundness only for strict programs; progen's strict mode
// cross-checks it against the oracle there, and a pinned test
// demonstrates the escaping-async shape it gets wrong (and SPD3 gets
// right).
package oslabel

import (
	"fmt"
	"sync"

	"spd3/internal/detect"
	"spd3/internal/shadow"
	"spd3/internal/stats"
)

// span is the fixed fork span: larger than any realistic spawn count, so
// sibling offsets never collide in residue, while join increments stay in
// residue class.
const span = uint64(1) << 32

// Label is an offset sequence. Labels are immutable after creation; each
// task segment gets a fresh one.
type Label []uint64

func (l Label) String() string { return fmt.Sprint([]uint64(l)) }

// ordered reports whether the segments labelled a and b are sequentially
// ordered (in either direction). Equal labels denote the same segment,
// which is ordered with itself.
func ordered(a, b Label) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			// First difference: ordered iff same residue class.
			return a[i]%span == b[i]%span
		}
	}
	return true // equal or prefix
}

// mhp is the may-happen-in-parallel predicate on labels; nil labels (no
// recorded access) are parallel with nothing.
func mhp(a, b Label) bool {
	if a == nil || b == nil {
		return false
	}
	return !ordered(a, b)
}

// prefixLen returns the index of the first differing position — the
// label analogue of LCA depth, used for the two-reader subsumption rule.
func prefixLen(a, b Label) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// Detector is the Offset-Span labeling race detector.
type Detector struct {
	sink *detect.Sink
	st   *stats.Recorder

	labelWords detect.Counter
	shadowCnt  detect.Counter // allocated shadow cells (paged, not declared)
}

// New returns an OS-labeling detector reporting to sink.
func New(sink *detect.Sink) *Detector {
	return &Detector{sink: sink}
}

// SetStats wires the engine's observability recorder (nil is fine);
// call before the first NewShadow.
func (d *Detector) SetStats(st *stats.Recorder) { d.st = st }

// Name implements detect.Detector.
func (d *Detector) Name() string { return "oslabel" }

// RequiresSequential implements detect.Detector: labels are thread-local
// and shadow words are locked, so parallel execution is fine (on strict
// programs).
func (d *Detector) RequiresSequential() bool { return false }

// taskState carries the task's current label and its spawn counter in
// the current fork scope.
type taskState struct {
	label  Label
	spawns uint64
}

// finishState remembers the owner's label length and spawn counter at
// FinishStart so FinishEnd can restore them.
type finishState struct {
	labelLen   int
	savedSpawn uint64
}

// MainTask implements detect.Detector.
func (d *Detector) MainTask(t *detect.Task, implicit *detect.Finish) {
	t.State = &taskState{label: Label{1}}
	implicit.State = &finishState{labelLen: 1}
	d.labelWords.Add(1)
}

// BeforeSpawn implements the fork rule: the child extends the parent's
// label with the next sibling offset.
func (d *Detector) BeforeSpawn(parent, child *detect.Task) {
	ps := parent.State.(*taskState)
	ps.spawns++
	l := make(Label, len(ps.label)+1)
	copy(l, ps.label)
	l[len(l)-1] = ps.spawns
	child.State = &taskState{label: l}
	d.labelWords.Add(int64(len(l)))
}

// TaskEnd implements detect.Detector.
func (d *Detector) TaskEnd(*detect.Task) {}

// FinishStart opens a fork scope: it snapshots the owner's label length
// and resets the sibling counter.
func (d *Detector) FinishStart(t *detect.Task, f *detect.Finish) {
	ts := t.State.(*taskState)
	f.State = &finishState{labelLen: len(ts.label), savedSpawn: ts.spawns}
	ts.spawns = 0
}

// FinishEnd implements the join rule: restore the label length and bump
// the last offset by the span, ordering the owner's continuation after
// every joined child while keeping its residue class.
func (d *Detector) FinishEnd(t *detect.Task, f *detect.Finish) {
	ts := t.State.(*taskState)
	fs := f.State.(*finishState)
	l := make(Label, fs.labelLen)
	copy(l, ts.label[:fs.labelLen])
	l[len(l)-1] += span
	ts.label = l
	ts.spawns = fs.savedSpawn
	d.labelWords.Add(int64(len(l)))
}

// Acquire is unsupported: OS labeling models pure fork-join.
func (d *Detector) Acquire(*detect.Task, *detect.Lock) {}

// Release is unsupported; see Acquire.
func (d *Detector) Release(*detect.Task, *detect.Lock) {}

// osVar is the constant-size access history: one writer and two readers,
// managed with the same subsumption discipline as SPD3's shadow words
// (replace both readers when the new read is ordered after them; record a
// second parallel reader; otherwise keep the pair with the shortest
// common prefix — the label analogue of the highest LCA).
type osVar struct {
	mu sync.Mutex
	w  Label
	r1 Label
	r2 Label
}

const osVarBytes = 8 + 3*24 // mutex + three label headers

type regionShadow struct {
	d    *Detector
	name string
	vars *shadow.Pages[osVar]
}

// NewShadow implements detect.Detector: osVar state is paged in lazily;
// shadowCnt now counts allocated cells rather than declared length.
func (d *Detector) NewShadow(spec detect.ShadowSpec) detect.Shadow {
	s := &regionShadow{d: d, name: spec.Name, vars: shadow.New[osVar](spec.Bound())}
	sh := d.st.Shard(0)
	s.vars.SetOnAlloc(func(cells int) {
		d.shadowCnt.Add(int64(cells))
		sh.Inc(stats.ShadowPagesAllocated)
	})
	return s
}

// Footprint implements detect.Detector.
func (d *Detector) Footprint() detect.Footprint {
	return detect.Footprint{
		ShadowBytes: d.shadowCnt.Load() * osVarBytes,
		TreeBytes:   d.labelWords.Load() * 8,
	}
}

func (s *regionShadow) report(kind detect.RaceKind, i int, prev Label, t *detect.Task) {
	s.d.sink.Report(detect.Race{
		Kind:     kind,
		Region:   s.name,
		Index:    i,
		PrevStep: prev.String(),
		CurStep:  t.State.(*taskState).label.String(),
	})
}

// Read mirrors SPD3's Algorithm 2 on labels.
func (s *regionShadow) Read(t *detect.Task, i int) {
	if s.d.sink.Stopped() {
		return
	}
	l := t.State.(*taskState).label
	v := s.vars.CellOf(&t.PC, i)
	v.mu.Lock()
	defer v.mu.Unlock()
	if mhp(v.w, l) {
		s.report(detect.WriteRead, i, v.w, t)
	}
	p1 := mhp(v.r1, l)
	p2 := mhp(v.r2, l)
	switch {
	case !p1 && !p2:
		v.r1 = l
		v.r2 = nil
	case p1 && v.r2 == nil:
		v.r2 = l
	case p1 && p2:
		if prefixLen(v.r1, l) < prefixLen(v.r1, v.r2) {
			v.r1 = l
		}
	}
}

// Write mirrors SPD3's Algorithm 1 on labels.
func (s *regionShadow) Write(t *detect.Task, i int) {
	if s.d.sink.Stopped() {
		return
	}
	l := t.State.(*taskState).label
	v := s.vars.CellOf(&t.PC, i)
	v.mu.Lock()
	defer v.mu.Unlock()
	if mhp(v.r1, l) {
		s.report(detect.ReadWrite, i, v.r1, t)
	}
	if mhp(v.r2, l) {
		s.report(detect.ReadWrite, i, v.r2, t)
	}
	if mhp(v.w, l) {
		s.report(detect.WriteWrite, i, v.w, t)
		return
	}
	v.w = l
}

var _ detect.Detector = (*Detector)(nil)
