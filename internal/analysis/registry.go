package analysis

import "fmt"

// The analyzer registry: the single table the spd3vet driver, the -list
// output, and the golden-test harness all derive from, mirroring the
// detector registry in internal/detect. The built-in suite registers
// here; analyzers living in subpackages (checkelim) call Register from
// their own init, so importing the package is what adds the analyzer —
// cmd/spd3vet imports every analyzer package it ships.

var registry []*Analyzer

// Register adds a to the suite returned by All. It panics on a nil
// analyzer, an empty name, or a duplicate name — all programmer errors
// at init time.
func Register(a *Analyzer) {
	if a == nil || a.Name == "" {
		panic("analysis: Register of nil or unnamed analyzer")
	}
	for _, r := range registry {
		if r.Name == a.Name {
			panic(fmt.Sprintf("analysis: duplicate analyzer %q", a.Name))
		}
	}
	registry = append(registry, a)
}

// The built-in suite, in reporting order. Subpackage analyzers append
// after these in import-initialization order.
func init() {
	for _, a := range []*Analyzer{
		UncheckedAnalyzer,
		CtxEscapeAnalyzer,
		RawConcAnalyzer,
		DeprecatedAnalyzer,
	} {
		Register(a)
	}
}

// All returns the default analyzer suite in registration order: every
// registered analyzer except the opt-in ones (use Lookup/ByName or
// Registered for those). The slice is freshly allocated; callers may
// filter it.
func All() []*Analyzer {
	out := make([]*Analyzer, 0, len(registry))
	for _, a := range registry {
		if !a.OptIn {
			out = append(out, a)
		}
	}
	return out
}

// Registered returns every registered analyzer, opt-in ones included,
// in registration order. The slice is freshly allocated.
func Registered() []*Analyzer {
	out := make([]*Analyzer, len(registry))
	copy(out, registry)
	return out
}

// Lookup returns the registered analyzer with the given name.
func Lookup(name string) (*Analyzer, bool) {
	for _, a := range registry {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// ByName resolves a list of analyzer names ("unchecked", "rawconc")
// against the registered suite.
func ByName(names []string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range names {
		a, ok := Lookup(n)
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}
