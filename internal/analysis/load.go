package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package: the unit an analyzer
// pass runs over.
type Package struct {
	// Path is the package's import path ("spd3/internal/mem"), or a
	// directory-derived pseudo-path for packages outside the module's
	// build graph (golden-test fixtures under testdata).
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds any type-check errors. Loading is tolerant:
	// analyzers run on best-effort type information, which is what lets
	// the deprecated analyzer flag uses of API that no longer exists
	// (the receiver still type-checks even when the selection fails).
	TypeErrors []error
}

// A Loader parses and type-checks packages from source. In-module
// import paths resolve by directory mapping under the module root;
// everything else (the standard library) goes through the stdlib source
// importer. Loaded packages are cached, so a dependency shared by many
// targets type-checks once.
type Loader struct {
	Fset    *token.FileSet
	modRoot string
	modPath string
	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path, including dependencies
	loading map[string]bool     // cycle detection
}

// NewLoader returns a loader rooted at the module containing dir (or
// any ancestor of it holding a go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return &Loader{
		Fset:    fset,
		modRoot: root,
		modPath: path,
		std:     std,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// findModule walks upward from dir to the nearest go.mod and returns
// the module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		d = parent
	}
}

// Load resolves patterns — directories, or dir/... walks — to package
// directories and loads each. Walked patterns skip testdata, hidden,
// and underscore-prefixed directories (matching the go tool); naming a
// directory explicitly always loads it, which is how the golden tests
// reach fixtures under testdata.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if abs, err := filepath.Abs(d); err == nil && !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		if base, ok := strings.CutSuffix(pat, "/..."); ok {
			if base == "." || base == "" {
				base = "."
			}
			walked, err := walkPackageDirs(base)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
			continue
		}
		add(pat)
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("analysis: no packages match %v", patterns)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// walkPackageDirs returns every directory under root containing .go
// files, skipping testdata and hidden/underscore directories.
func walkPackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// LoadDir loads the package in dir, or nil when the directory holds no
// non-test Go files.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(l.importPathFor(abs), abs)
}

// importPathFor derives an import path for a directory: the module-
// relative path when the directory is inside the module, otherwise the
// directory itself (a pseudo-path; such packages cannot be imported by
// others, only analyzed).
func (l *Loader) importPathFor(abs string) string {
	if rel, err := filepath.Rel(l.modRoot, abs); err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		if rel == "." {
			return l.modPath
		}
		return l.modPath + "/" + filepath.ToSlash(rel)
	}
	return abs
}

// Import implements types.Importer over the loader: in-module paths
// load from source by directory mapping; "unsafe" is built in; all
// other paths (the standard library) go to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	switch {
	case path == "unsafe":
		return types.Unsafe, nil
	case path == l.modPath || strings.HasPrefix(path, l.modPath+"/"):
		dir := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")))
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files in %s", dir)
		}
		return pkg.Types, nil
	default:
		return l.std.ImportFrom(path, l.modRoot, 0)
	}
}

// load parses and type-checks the package in dir under import path
// path, returning the cached result on repeat calls and nil when the
// directory has no non-test Go files.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, filepath.Join(dir, name))
	}
	sort.Strings(names)
	if len(names) == 0 {
		l.pkgs[path] = nil
		return nil, nil
	}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}

	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns an error on any type error; the collected
	// pkg.TypeErrors carry the detail and analysis proceeds best-effort.
	tpkg, _ := conf.Check(path, l.Fset, files, pkg.Info)
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}
