package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RawConcAnalyzer flags raw Go concurrency inside task bodies: `go`
// statements, channel operations, and bare sync primitives.
//
// The DPST models exactly the async/finish relation (PAPER §3): every
// happens-before edge the detector knows about comes from spawns and
// finish joins (plus lock events for the lock-aware baselines, fed by
// spd3.Mutex). A goroutine launched inside a task body, a channel
// rendezvous between tasks, or a bare sync.Mutex/WaitGroup creates real
// ordering and real parallelism the tree does not represent. The
// detector then either misses races in the unmodeled tasks (false
// negatives) or reports races that the unmodeled synchronization in
// fact prevents (false positives) — the dynamic checker cannot tell
// which, so the only sound answer is to keep such constructs out of
// task bodies entirely. spd3.Mutex is the one sanctioned primitive: it
// provides real exclusion and reports acquire/release to the detector.
var RawConcAnalyzer = &Analyzer{
	Name: "rawconc",
	Doc: "report go statements, channel operations, and bare sync primitives " +
		"inside task bodies: parallelism and ordering the DPST does not model",
	Run: runRawConc,
}

func runRawConc(pass *Pass) error {
	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	isChan := func(e ast.Expr) bool {
		tv, ok := pass.Info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		_, ok = tv.Type.Underlying().(*types.Chan)
		return ok
	}
	closures := taskClosures(pass)
	nested := make(map[*ast.FuncLit]bool, len(closures))
	for _, tc := range closures {
		nested[tc.lit] = true
	}
	for _, tc := range closures {
		api := tc.api
		ast.Inspect(tc.lit.Body, func(n ast.Node) bool {
			// A nested task-body closure is walked separately under its
			// own API label.
			if lit, ok := n.(*ast.FuncLit); ok && lit != tc.lit && nested[lit] {
				return false
			}
			switch n := n.(type) {
			case *ast.GoStmt:
				report(n.Pos(), "go statement inside a task body (%s): the spawned goroutine is invisible to the DPST and races in or with it go undetected; use Ctx.Async", api)
			case *ast.SendStmt:
				report(n.Pos(), "channel send inside a task body (%s): channel ordering is invisible to the DPST; use async/finish joins or spd3.Mutex", api)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					report(n.Pos(), "channel receive inside a task body (%s): channel ordering is invisible to the DPST; use async/finish joins or spd3.Mutex", api)
				}
			case *ast.SelectStmt:
				report(n.Pos(), "select statement inside a task body (%s): channel ordering is invisible to the DPST", api)
			case *ast.RangeStmt:
				if isChan(n.X) {
					report(n.Pos(), "range over a channel inside a task body (%s): channel ordering is invisible to the DPST", api)
				}
			case *ast.CallExpr:
				if pkg, name, ok := syncCall(pass.Info, n); ok {
					report(n.Pos(), "%s.%s inside a task body (%s): synchronization the DPST does not model; use spd3.Mutex (or an Accumulator) instead", pkg, name, api)
				}
			}
			return true
		})
	}
	return nil
}

// syncCall reports whether call is a method on a sync.* primitive or a
// function from sync or sync/atomic, returning a short package label
// and the called name.
func syncCall(info *types.Info, call *ast.CallExpr) (pkg, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	// Method on a sync type: mu.Lock(), wg.Wait(), once.Do(), ...
	if s, ok := info.Selections[sel]; ok {
		t := s.Recv()
		if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if n, isNamed := types.Unalias(t).(*types.Named); isNamed {
			if tp := n.Obj().Pkg(); tp != nil && (tp.Path() == "sync" || tp.Path() == "sync/atomic") {
				return tp.Path(), n.Obj().Name() + "." + sel.Sel.Name, true
			}
		}
		return "", "", false
	}
	// Package function: atomic.AddInt64(...), sync.OnceFunc(...).
	if obj, ok := info.Uses[sel.Sel]; ok {
		if fn, isFn := obj.(*types.Func); isFn && fn.Pkg() != nil {
			if p := fn.Pkg().Path(); p == "sync" || p == "sync/atomic" {
				return p, sel.Sel.Name, true
			}
		}
	}
	return "", "", false
}
