package checkelim

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"spd3/internal/analysis"
)

// Rule 2: a checked read in a sequential loop with loop-invariant
// receiver, ctx, and index hoists to a single checked read into a
// fresh local above the loop. Soundness needs four things, each
// checked here:
//
//   - The loop body (and init/cond/post) is barrier-free, so every
//     iteration's check runs in the same DPST step as the hoisted one
//     and is subsumed by it.
//   - The loop provably runs at least once (constant-foldable bounds,
//     or no condition), so the hoisted check never reports where the
//     original program checked nothing.
//   - The key is invariant: no dependency is assigned in the loop or
//     declared inside it.
//   - The container is never written or aliased (Set/Update/
//     Unchecked*) anywhere in the loop, so the cached value stays
//     equal to the cell in every race-free execution. (In racy
//     executions the cached value may differ from a concurrent
//     writer's — the verdict and race set are unaffected, but the
//     data read through the local is the hoist-time value; DESIGN §9
//     records this caveat.)
//
// Only occurrences outside nested function literals are replaced: a
// closure body may run on a different task later, where the hoisted
// check's step no longer dominates.
type hoistGroup struct {
	key     string
	recvKey string
	kind    string
	deps    []types.Object
	occs    []*access
	// hasUncond: at least one occurrence executes unconditionally every
	// iteration, so the original program performed at least one check.
	hasUncond bool
}

func (w *walker) hoistLoop(s *ast.ForStmt, eff *effects) {
	if eff.barrier {
		return
	}
	effInit := scanEffects(w.info, s.Init)
	if effInit.barrier {
		return
	}
	if !provableEntry(w.info, s) {
		return
	}
	groups, dirty, dirtyUnknown := w.collectHoistGroups(s.Body)
	for _, g := range groups {
		invariant := true
		for _, d := range g.deps {
			if eff.killed[d] || effInit.killed[d] ||
				(d.Pos() >= s.Pos() && d.Pos() < s.End()) {
				invariant = false
				break
			}
		}
		if !invariant {
			continue // an ordinary varying-index read, not a near-miss
		}
		first := g.occs[0].call.Pos()
		if dirtyUnknown || dirty[g.recvKey] {
			w.skipf(first, RuleHoist, "loop-invariant read not hoisted: container written or aliased inside the loop")
			continue
		}
		if !g.hasUncond {
			w.skipf(first, RuleHoist, "loop-invariant read not hoisted: no unconditional occurrence in the loop body")
			continue
		}
		w.fb.addHoist(s, g)
	}
}

// collectHoistGroups gathers the loop body's checked reads grouped by
// access key (skipping nested function literals), plus the receivers
// the body writes or aliases.
func (w *walker) collectHoistGroups(body *ast.BlockStmt) (groups []*hoistGroup, dirty map[string]bool, dirtyUnknown bool) {
	// Conditional spans: an occurrence inside one may execute zero
	// times per iteration.
	var condSpans, litSpans [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			litSpans = append(litSpans, [2]token.Pos{n.Pos(), n.End()})
		case *ast.IfStmt:
			condSpans = append(condSpans, [2]token.Pos{n.Body.Pos(), n.Body.End()})
			if n.Else != nil {
				condSpans = append(condSpans, [2]token.Pos{n.Else.Pos(), n.Else.End()})
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			condSpans = append(condSpans, [2]token.Pos{n.Pos(), n.End()})
		case *ast.BinaryExpr:
			if n.Op == token.LAND || n.Op == token.LOR {
				condSpans = append(condSpans, [2]token.Pos{n.Y.Pos(), n.Y.End()})
			}
		}
		return true
	})
	inSpans := func(spans [][2]token.Pos, pos token.Pos) bool {
		for _, sp := range spans {
			if pos >= sp[0] && pos < sp[1] {
				return true
			}
		}
		return false
	}

	dirty = make(map[string]bool)
	byKey := make(map[string]*hoistGroup)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Receivers the loop writes or aliases (full descent — a
		// closure defined here could be invoked here).
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			name := sel.Sel.Name
			if (name == "Set" || name == "Update" || uncheckedNames[name]) &&
				analysis.ContainerKind(analysis.RecvType(w.info, call)) != "" {
				if rk, _, ok := pureKey(w.info, sel.X); ok {
					dirty[rk] = true
				} else {
					dirtyUnknown = true
				}
			}
		}
		if inSpans(litSpans, call.Pos()) {
			return true // a separate region; never replaced
		}
		kind, acc := classifyCall(w.info, call)
		if kind != kindAccess || acc.write {
			return true
		}
		key, deps, ok := w.accessKey(acc)
		if !ok {
			return true
		}
		g := byKey[key]
		if g == nil {
			rk, _, _ := pureKey(w.info, acc.sel.X)
			g = &hoistGroup{key: key, recvKey: rk, kind: acc.kind, deps: deps}
			byKey[key] = g
			groups = append(groups, g)
		}
		g.occs = append(g.occs, acc)
		if !inSpans(condSpans, call.Pos()) {
			g.hasUncond = true
		}
		return true
	})
	return groups, dirty, dirtyUnknown
}

var uncheckedNames = map[string]bool{"Unchecked": true, "UncheckedRow": true, "UncheckedAt": true}

// provableEntry reports whether the loop provably executes its body at
// least once: no condition at all, or a `for i := lo; i OP hi` header
// whose bounds constant-fold to a true entry test.
func provableEntry(info *types.Info, s *ast.ForStmt) bool {
	if s.Cond == nil {
		return true
	}
	init, ok := s.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return false
	}
	id, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Defs[id]
	if obj == nil {
		return false
	}
	lo := constVal(info, init.Rhs[0])
	if lo == nil {
		return false
	}
	cond, ok := ast.Unparen(s.Cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	op, bound := cond.Op, ast.Expr(nil)
	switch {
	case usesObj(info, cond.X, obj):
		bound = cond.Y
	case usesObj(info, cond.Y, obj):
		bound = cond.X
		op = mirrorOp(op)
	default:
		return false
	}
	hi := constVal(info, bound)
	if hi == nil {
		return false
	}
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ, token.EQL:
		defer func() { recover() }() // mismatched constant kinds cannot compare
		return constant.Compare(lo, op, hi)
	}
	return false
}

// constVal returns e's constant-folded value, nil when not constant.
func constVal(info *types.Info, e ast.Expr) constant.Value {
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return tv.Value
	}
	return nil
}

// usesObj reports whether e is (possibly parenthesized) exactly an
// identifier resolving to obj.
func usesObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// mirrorOp flips a comparison whose operands were swapped.
func mirrorOp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}
