// Package dup exercises rule 1: second same-cell accesses with no
// intervening barrier and stable operands are dominated duplicates.
package dup

import "spd3"

func pairs(eng *spd3.Engine) {
	a := spd3.NewArray[int](eng, "a", 64)
	m := spd3.NewMatrix[float64](eng, "m", 8, 8)
	v := spd3.NewVar[int](eng, "v", 0)
	_, _ = eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(4, func(c *spd3.Ctx, i int) {
			x := a.Get(c, i)
			y := a.Get(c, i) // want `redundant read check: cell already read-checked at line \d+ in the same step`
			a.Set(c, i, x+y)
			a.Set(c, i, x*y) // want `redundant write check: cell already write-checked at line \d+ in the same step`
			m.Set(c, i, 0, float64(x))
			m.Set(c, i, 0, float64(y)) // want `redundant write check: cell already write-checked at line \d+ in the same step`
			_ = m.Get(c, i, 1)
			_ = m.Get(c, i, 1) // want `redundant read check: cell already read-checked at line \d+ in the same step`
			v.Set(c, x)
			v.Set(c, y) // want `redundant write check: cell already write-checked at line \d+ in the same step`
		})
	})
}

// nested: a dominated Get inside a dominated Set's argument — both
// rewrite, spliced into one edit.
func nested(eng *spd3.Engine) {
	a := spd3.NewArray[int](eng, "a2", 8)
	_, _ = eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(2, func(c *spd3.Ctx, i int) {
			a.Set(c, i, a.Get(c, i))
			a.Set(c, i, a.Get(c, i)+1) /* want `redundant write check` */ /* want `redundant read check` */
		})
	})
}
