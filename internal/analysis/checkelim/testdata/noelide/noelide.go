// Package noelide holds accesses that look redundant but are not
// provably so: anything the eliminator flags here is a soundness bug.
// There are no want annotations — the golden harness fails on any
// diagnostic.
package noelide

import "spd3"

func barriers(eng *spd3.Engine) {
	a := spd3.NewArray[int](eng, "a", 16)
	mu := spd3.NewMutex(eng)
	_, _ = eng.Run(func(c *spd3.Ctx) {
		c.Finish(func(c *spd3.Ctx) {
			// A spawn between the accesses forks the DPST: the second
			// check runs in a different step.
			_ = a.Get(c, 0)
			c.Async(func(c *spd3.Ctx) { a.Set(c, 1, 1) })
			_ = a.Get(c, 0)

			// A lock acquire ends the step (the paper's lock-aware
			// extension treats critical sections as separate steps).
			_ = a.Get(c, 2)
			mu.Lock(c)
			_ = a.Get(c, 2)
			mu.Unlock(c)

			// The index operand is reassigned: same text, different cell.
			i := 3
			_ = a.Get(c, i)
			i = 4
			_ = a.Get(c, i)

			// An Update runs a callback the walker cannot see through.
			_ = a.Get(c, 5)
			a.Update(c, 5, func(v int) int { return v + 1 })
			_ = a.Get(c, 5)
		})
		// A nested task closure is its own region: the pre-spawn check
		// does not dominate it.
		_ = a.Get(c, 6)
		c.Finish(func(c *spd3.Ctx) {
			c.Async(func(c *spd3.Ctx) { _ = a.Get(c, 6) })
		})
	})
}

// varying: a loop read whose index depends on the loop variable is
// not invariant, and a conditional-only invariant read must not hoist
// (the loop may never execute the check).
func varying(eng *spd3.Engine) {
	x := spd3.NewArray[int](eng, "x", 8)
	f := spd3.NewVar[int](eng, "f", 1)
	_, _ = eng.Run(func(c *spd3.Ctx) {
		c.Finish(func(c *spd3.Ctx) {
			t := 0
			for i := 0; i < 8; i++ {
				t += x.Get(c, i)
				if t > 100 {
					t -= f.Get(c)
				}
			}
			x.Set(c, 0, t)
			// Unprovable entry: bound is a runtime value.
			n := t
			for i := 0; i < n; i++ {
				t += f.Get(c)
			}
			x.Set(c, 1, t)
		})
	})
}
