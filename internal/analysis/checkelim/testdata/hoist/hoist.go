// Package hoist exercises rule 2: loop-invariant checked reads in
// provably-entered, barrier-free loops hoist to one check above the
// loop.
package hoist

import "spd3"

func dots(eng *spd3.Engine) {
	x := spd3.NewArray[float64](eng, "x", 100)
	s := spd3.NewVar[float64](eng, "s", 2.0)
	_, _ = eng.Run(func(c *spd3.Ctx) {
		c.ParallelFor(0, 4, 1, func(c *spd3.Ctx, p int) {
			acc := 0.0
			for i := 0; i < 25; i++ {
				acc += x.Get(c, p*25+i) * s.Get(c) // want `loop-invariant read check in a provably-entered, barrier-free loop`
			}
			x.Set(c, p, acc)
		})
	})
}

// relax: the grid itself is written in the loop, so g.Get stays; the
// invariant w.Get hoists.
func relax(eng *spd3.Engine) {
	g := spd3.NewMatrix[float64](eng, "g", 10, 10)
	w := spd3.NewVar[float64](eng, "w", 0.5)
	_, _ = eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(2, func(c *spd3.Ctx, t int) {
			for j := 1; j <= 8; j++ {
				g.Set(c, t+1, j, g.Get(c, t+1, j)*w.Get(c)) // want `loop-invariant read check in a provably-entered, barrier-free loop`
			}
		})
	})
}
