// Package writedom exercises rule 3 (opt-in): a read of a cell the
// same step already wrote. The golden test runs a WriteDom-enabled
// analyzer; the default analyzer must instead record a skip here.
package writedom

import "spd3"

func writeThenRead(eng *spd3.Engine) {
	u := spd3.NewArray[int](eng, "u", 4)
	_, _ = eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(2, func(c *spd3.Ctx, i int) {
			u.Set(c, i, i*2)
			_ = u.Get(c, i) // want `redundant read check: cell already write-checked at line \d+ in the same step \(verdict-preserving elision\)`
		})
	})
}
