// Package checkelim is the §5.5 static check eliminator: a whole-
// package pass over type-checked spd3 programs that finds checked
// container accesses whose DPST verdict is provably implied by an
// earlier access in the same task region, and emits machine-applicable
// fixes downgrading them to the Unchecked forms.
//
// The soundness frame (DESIGN §9 carries the full per-rule argument):
// between two consecutive task operations — spawn, finish, lock,
// unlock — a task executes exactly one DPST step. Every check performed
// by that step uses the same step identity against the same shadow
// cell, so the detector's answer to the second of two same-cell checks
// is fully determined by the first: a second read check early-outs on
// the recorded reader slots, and a second write check early-outs on
// the recorded writer, with any re-found race deduplicating to the
// same (kind, region, index) record. Deleting the second check is
// therefore invisible to the verdict and to the race-set digest. Three
// rules exploit this:
//
//   - dup: a Get (Set) to the same (container, index, ctx) as an
//     earlier Get (Set) with no intervening barrier and no
//     reassignment of the receiver or index operands rewrites to
//     Unchecked/UncheckedRow, marked //spd3opt:elided.
//   - hoist: a checked read in a sequential, barrier-free loop whose
//     receiver and index are loop-invariant hoists to a single checked
//     read into a local above the loop, provided the loop provably
//     runs at least once (constant-folded bounds) and the loop body
//     never writes the container.
//   - writedom: a read of a cell the same step already wrote. The
//     write check subsumes the read check's verdict, but eliding the
//     read also skips its reader-slot recording, which later writers'
//     checks compare against — so while the racy/race-free verdict is
//     preserved (any race the recording would surface implies a
//     write-write race that is still reported), the race-set digest
//     may lose read-write pairs. The rule is therefore opt-in
//     (Options.WriteDom) and excluded from digest-differential
//     pipelines, mirroring the opt-in dynamic step cache in
//     internal/core.
//
// The pass is deliberately conservative: any call it cannot classify
// (unknown functions, Update callbacks, Ctx methods, locks) is a
// barrier that forgets every outstanding fact, and any index it cannot
// prove pure and stable contributes no fact at all.
package checkelim

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"

	"spd3/internal/analysis"
)

// Rule names one elimination rule, as counted in reports.
type Rule string

const (
	// RuleDup is the dominated-duplicate rule.
	RuleDup Rule = "dup"
	// RuleHoist is the loop-invariant read hoist.
	RuleHoist Rule = "hoist"
	// RuleWriteDom is the opt-in write-dominates-read rule.
	RuleWriteDom Rule = "writedom"
)

// Options configures a run of the eliminator.
type Options struct {
	// WriteDom enables the write-dominates-read rule. It preserves the
	// racy/race-free verdict but not necessarily the race-set digest
	// (see the package comment), so it is off by default and must stay
	// off in digest-differential pipelines.
	WriteDom bool
}

// An Elision is one checked access the pass proved redundant.
type Elision struct {
	// Rule is the rule that fired.
	Rule Rule
	// Pos..End span the downgraded access call.
	Pos, End token.Pos
	// Container is the container kind ("Array", "Matrix", "Var").
	Container string
	// DomPos is the dominating access (dup/writedom) or the loop the
	// read was hoisted out of (hoist).
	DomPos token.Pos
}

// A Skip is a near-miss: a repeated access the pass recognized but
// could not soundly elide, with the reason. Corpus sweeps aggregate
// these to see what a stronger pass could still buy.
type Skip struct {
	Pos    token.Pos
	Rule   Rule
	Reason string
}

// Result is one package's elimination outcome.
type Result struct {
	// Elisions lists every downgraded access, in position order.
	Elisions []Elision
	// Skips lists recognized-but-kept accesses, in position order.
	Skips []Skip
	// Diags carries the same content as position-sorted diagnostics
	// with machine-applicable fixes, ready for analysis.ApplyFixes.
	Diags []analysis.Diagnostic
}

// Counts tallies elisions per rule.
func (r *Result) Counts() map[string]int {
	c := make(map[string]int)
	for _, e := range r.Elisions {
		c[string(e.Rule)]++
	}
	return c
}

// Analyzer is the registered spd3vet analyzer: the default-rule pass
// (dup + hoist; writedom stays opt-in via the package API because its
// fixes are not digest-preserving).
const analyzerName = "checkelim"

var Analyzer = &analysis.Analyzer{
	Name: analyzerName,
	Doc: "report checked container accesses whose verdict is implied by " +
		"an earlier same-step access, with fixes downgrading them (§5.5)",
	Run: runAnalyzer,
	// Findings are optimization opportunities, not soundness
	// violations: keep them out of the default gate suite.
	OptIn: true,
}

func init() { analysis.Register(Analyzer) }

func runAnalyzer(pass *analysis.Pass) error {
	pkg := &analysis.Package{
		Fset:  pass.Fset,
		Files: pass.Files,
		Types: pass.Pkg,
		Info:  pass.Info,
	}
	res, err := Analyze(pkg, Options{})
	if err != nil {
		return err
	}
	for _, d := range res.Diags {
		pass.Report(d)
	}
	return nil
}

// Analyze runs the eliminator over one loaded package.
func Analyze(pkg *analysis.Package, opts Options) (*Result, error) {
	res := &Result{}
	pkgFacts := scanPackage(pkg)
	for _, f := range pkg.Files {
		src, err := fileSource(pkg.Fset, f)
		if err != nil {
			return nil, fmt.Errorf("checkelim: %w", err)
		}
		fb := newFixBuilder(pkg.Fset, src, f)
		for _, reg := range regions(f) {
			if hasLabels(reg.body) {
				continue // goto could loop; straight-line domination is off
			}
			w := newWalker(pkg.Info, opts, res, pkgFacts, fb, reg)
			w.stmts(reg.body.List)
		}
		fb.flush(pkg.Fset, res)
	}
	sortResult(pkg.Fset, res)
	return res, nil
}

// A region is one function body plus the position span of its whole
// function (the span includes the parameter list, so "declared in this
// region" covers parameters).
type region struct {
	body     *ast.BlockStmt
	pos, end token.Pos
}

// regions returns every function body in f — declarations and
// literals — each of which is analyzed independently: within one
// invocation its statements run in order on one task, which is all
// straight-line domination needs. Literal bodies are excluded from
// their enclosing region's walk (defining a closure runs nothing) and
// analyzed on their own.
func regions(f *ast.File) []region {
	var out []region
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, region{body: n.Body, pos: n.Pos(), end: n.End()})
			}
		case *ast.FuncLit:
			out = append(out, region{body: n.Body, pos: n.Pos(), end: n.End()})
		}
		return true
	})
	return out
}

// hasLabels reports whether body contains a labeled statement (the
// target of goto/labeled break — backward jumps would invalidate the
// walker's straight-line order).
func hasLabels(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.LabeledStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

func sortResult(fset *token.FileSet, res *Result) {
	sort.Slice(res.Elisions, func(i, j int) bool { return res.Elisions[i].Pos < res.Elisions[j].Pos })
	sort.Slice(res.Skips, func(i, j int) bool { return res.Skips[i].Pos < res.Skips[j].Pos })
	analysis.SortDiagnostics(fset, res.Diags)
}
