package checkelim

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"spd3/internal/analysis"
)

// This file classifies calls and expressions for the walker: which
// calls are checked container accesses, which are effect-free, and
// which are barriers; which expressions are pure and stable enough to
// key a fact.

// callKind is the walker-relevant classification of a call.
type callKind int

const (
	// kindBarrier: the call may be a task operation (spawn, finish,
	// lock), run arbitrary code, or otherwise end the current step.
	// All facts die.
	kindBarrier callKind = iota
	// kindSafe: the call provably performs no task operation and no
	// container mutation relevant to outstanding facts (pure stdlib,
	// builtins, conversions, checked accesses on untracked container
	// kinds, Len/Rows/Cols, Unchecked accessors).
	kindSafe
	// kindAccess: a checked Get/Set on a tracked container (Array,
	// Matrix, Var) — a fact candidate.
	kindAccess
)

// An access is a classified checked Get/Set on a tracked container.
type access struct {
	call   *ast.CallExpr
	sel    *ast.SelectorExpr
	kind   string // "Array", "Matrix", "Var"
	method string // "Get" or "Set"
	write  bool
	// index holds the index argument expressions (after the ctx arg):
	// one for Array, two for Matrix, none for Var.
	index []ast.Expr
	// value is the Set value argument, nil for Get.
	value ast.Expr
	// ctx is the Ctx argument expression.
	ctx ast.Expr
}

// safeContainerMethods never end the step and never invalidate facts
// for *other* cells: checked accesses, size queries, and the escape
// hatches (whose returned aliases matter to rule-2 staleness scans,
// handled separately, but not to same-cell check redundancy).
var safeContainerMethods = map[string]bool{
	"Get": true, "Set": true, "Len": true, "Rows": true, "Cols": true,
	"Lookup": true, "Delete": true, "Append": true,
	"Unchecked": true, "UncheckedRow": true, "UncheckedAt": true,
}

// trackedIndexArgs maps tracked container kinds to their Get index
// arity (after the leading ctx argument).
var trackedIndexArgs = map[string]int{"Array": 1, "Matrix": 2, "Var": 0}

// safeBuiltins are builtin calls with no task-visible effect. panic is
// deliberately absent (divergence ends the straight-line region).
var safeBuiltins = map[string]bool{
	"len": true, "cap": true, "min": true, "max": true, "abs": true,
	"make": true, "new": true, "append": true, "copy": true,
	"real": true, "imag": true, "complex": true, "delete": true, "clear": true,
}

// safePkgs are imported packages whose exported functions are pure
// with respect to tasks and containers.
var safePkgs = map[string]bool{"math": true, "math/bits": true, "math/cmplx": true}

// classifyCall classifies one call expression. The ok access is only
// meaningful for kindAccess.
func classifyCall(info *types.Info, call *ast.CallExpr) (callKind, *access) {
	// Type conversions are values, not calls.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return kindSafe, nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun]; ok {
			if b, ok := obj.(*types.Builtin); ok && safeBuiltins[b.Name()] {
				return kindSafe, nil
			}
		}
		return kindBarrier, nil
	case *ast.SelectorExpr:
		// Qualified call into a whitelisted pure package?
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				if safePkgs[pn.Imported().Path()] {
					return kindSafe, nil
				}
				return kindBarrier, nil
			}
		}
		rt := analysis.RecvType(info, call)
		kind := analysis.ContainerKind(rt)
		if kind == "" {
			return kindBarrier, nil
		}
		name := fun.Sel.Name
		if !safeContainerMethods[name] {
			// Update (runs a callback), Lock/Unlock (task ops), and any
			// method this table predates.
			return kindBarrier, nil
		}
		arity, tracked := trackedIndexArgs[kind]
		if !tracked || (name != "Get" && name != "Set") {
			return kindSafe, nil
		}
		// Get: (ctx, index...); Set: (ctx, index..., value).
		want := 1 + arity
		if name == "Set" {
			want++
		}
		if len(call.Args) != want {
			return kindBarrier, nil
		}
		a := &access{
			call:   call,
			sel:    fun,
			kind:   kind,
			method: name,
			write:  name == "Set",
			ctx:    call.Args[0],
			index:  call.Args[1 : 1+arity],
		}
		if a.write {
			a.value = call.Args[len(call.Args)-1]
		}
		return kindAccess, a
	default:
		// Calling a function value, method value, or immediate literal.
		return kindBarrier, nil
	}
}

// pkgFacts is the once-per-package context the purity check leans on:
// which objects are ever reassigned or address-taken anywhere in the
// package.
type pkgFacts struct {
	info *types.Info
	// pkg is the package under analysis; variables from other packages
	// were not covered by the assignment scan and never anchor facts.
	pkg *types.Package
	// assigned holds every object appearing as an assignment target
	// (plain, op-assign, inc/dec, range variable) after its
	// declaration, keyed so outer-scope dependencies can require
	// effectively-final objects.
	assigned map[types.Object]bool
	// addrTaken holds every object whose address is taken: writes
	// through the pointer are invisible to the walker's kill tracking,
	// so such objects can never anchor a fact.
	addrTaken map[types.Object]bool
}

// scanPackage computes pkgFacts over all files.
func scanPackage(pkg *analysis.Package) *pkgFacts {
	pf := &pkgFacts{
		info:      pkg.Info,
		pkg:       pkg.Types,
		assigned:  make(map[types.Object]bool),
		addrTaken: make(map[types.Object]bool),
	}
	mark := func(e ast.Expr, m map[types.Object]bool) {
		if obj := rootObject(pkg.Info, e); obj != nil {
			m[obj] = true
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					return true // declarations aren't reassignments
				}
				for _, lhs := range n.Lhs {
					mark(lhs, pf.assigned)
				}
			case *ast.IncDecStmt:
				mark(n.X, pf.assigned)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					mark(n.X, pf.addrTaken)
				}
			case *ast.RangeStmt:
				if n.Tok == token.ASSIGN {
					mark(n.Key, pf.assigned)
					mark(n.Value, pf.assigned)
				}
			}
			return true
		})
	}
	return pf
}

// rootObject resolves the base object an lvalue-ish expression writes
// through: the x in x, x.f, x[i], *x, chains thereof.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// pureKey renders e as a canonical fact-key fragment and collects the
// variable objects it depends on. ok is false when e is not pure
// (calls, channel ops, unstable constructs) — such expressions can
// never key a fact.
//
// Identifiers render with their declaration position baked in, so two
// same-spelled names in different scopes never collide on one key.
func pureKey(info *types.Info, e ast.Expr) (key string, deps []types.Object, ok bool) {
	var sb strings.Builder
	var walk func(e ast.Expr) bool
	walk = func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			if obj == nil {
				return false
			}
			switch obj.(type) {
			case *types.Const, *types.Nil:
				fmt.Fprintf(&sb, "%s", x.Name)
			case *types.Var:
				fmt.Fprintf(&sb, "%s@%d", x.Name, obj.Pos())
				deps = append(deps, obj)
			case *types.PkgName:
				fmt.Fprintf(&sb, "%s", x.Name)
			default:
				return false
			}
			return true
		case *ast.BasicLit:
			sb.WriteString(x.Value)
			return true
		case *ast.ParenExpr:
			return walk(x.X)
		case *ast.UnaryExpr:
			switch x.Op {
			case token.ADD, token.SUB, token.XOR, token.NOT:
				sb.WriteString(x.Op.String())
				return walk(x.X)
			}
			return false
		case *ast.BinaryExpr:
			switch x.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
				token.AND, token.OR, token.XOR, token.SHL, token.SHR, token.AND_NOT:
				sb.WriteString("(")
				if !walk(x.X) {
					return false
				}
				sb.WriteString(x.Op.String())
				if !walk(x.Y) {
					return false
				}
				sb.WriteString(")")
				return true
			}
			return false
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok {
				// Only plain field reads are pure; method values are not.
				if sel.Kind() != types.FieldVal {
					return false
				}
			} else {
				// Qualified identifier pkg.Name: a const is stable; a
				// package-level var is a dependency like any other.
				obj := info.Uses[x.Sel]
				switch obj.(type) {
				case *types.Const:
				case *types.Var:
					deps = append(deps, obj)
				default:
					return false
				}
			}
			if !walk(x.X) {
				return false
			}
			sb.WriteString("." + x.Sel.Name)
			return true
		case *ast.IndexExpr:
			if !walk(x.X) {
				return false
			}
			sb.WriteString("[")
			if !walk(x.Index) {
				return false
			}
			sb.WriteString("]")
			return true
		default:
			return false
		}
	}
	if !walk(e) {
		return "", nil, false
	}
	return sb.String(), deps, true
}
