package checkelim

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// A fact records that the current step has already checked one
// container cell: readPos/wrotePos anchor the dominating read and
// write checks (NoPos when that flavor has not run). deps are the
// variables the key's receiver, ctx, and index render through — any
// reassignment of one retires the fact.
type fact struct {
	readPos, wrotePos token.Pos
	deps              []types.Object
	kind              string
}

// killInfo is a tombstone for a retired fact: what ended it, for skip
// reporting ("earlier check invalidated by Async at ...").
type killInfo struct {
	what string
	pos  token.Pos
}

// walker runs the straight-line, evaluation-order analysis over one
// region. facts map canonical access keys to live facts; kills holds
// tombstones for keys whose facts were retired since their last
// access.
type walker struct {
	info *types.Info
	opts Options
	res  *Result
	pkgf *pkgFacts
	fb   *fixBuilder
	// regionPos..regionEnd span the enclosing function including its
	// parameter list; objects declared inside are flow-tracked, objects
	// captured from outside must be effectively final package-wide.
	regionPos, regionEnd token.Pos
	facts                map[string]*fact
	kills                map[string]killInfo
	// stmtCall is the call at statement level of the ExprStmt being
	// walked, if any: only there can a Set be rewritten to an
	// assignment.
	stmtCall *ast.CallExpr
}

func newWalker(info *types.Info, opts Options, res *Result, pkgf *pkgFacts, fb *fixBuilder, reg region) *walker {
	return &walker{
		info:      info,
		opts:      opts,
		res:       res,
		pkgf:      pkgf,
		fb:        fb,
		regionPos: reg.pos,
		regionEnd: reg.end,
		facts:     make(map[string]*fact),
		kills:     make(map[string]killInfo),
	}
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			w.stmtCall = call
		}
		w.expr(s.X)
		w.stmtCall = nil
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r)
		}
		for _, l := range s.Lhs {
			w.expr(l) // index/receiver operands of the target evaluate too
		}
		for _, l := range s.Lhs {
			w.killTarget(l, s.Tok == token.DEFINE)
		}
	case *ast.IncDecStmt:
		w.expr(s.X)
		w.killTarget(s.X, false)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		thenOut := w.branch(func(bw *walker) { bw.stmt(s.Body) })
		elseOut := cloneFacts(w.facts)
		if s.Else != nil {
			elseOut = w.branch(func(bw *walker) { bw.stmt(s.Else) })
		}
		w.facts = intersectFacts(thenOut, elseOut)
	case *ast.ForStmt:
		w.forStmt(s)
	case *ast.RangeStmt:
		w.rangeStmt(s)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		w.caseBranches(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmt(s.Assign)
		w.caseBranches(s.Body)
	case *ast.SelectStmt:
		// Channel communication is a schedule point the detector cannot
		// model (rawconc territory); forget everything and do not
		// analyze the clause bodies.
		w.clearAll("select statement", s.Pos())
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			w.expr(a)
		}
		w.clearAll("go statement", s.Pos())
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
		w.clearAll("channel send", s.Pos())
	case *ast.DeferStmt:
		// Arguments evaluate now; the call itself runs after the
		// region's last access, so it is not a barrier here.
		for _, a := range s.Call.Args {
			w.expr(a)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r)
		}
		w.clearAll("return", s.Pos())
	case *ast.BranchStmt, *ast.EmptyStmt:
		// break/continue/fallthrough only jump forward out of constructs
		// whose conservative merges already discard branch-born facts;
		// statements after an unconditional jump are unreachable, where
		// any verdict is vacuously sound.
	default:
		// Anything unmodeled (labeled statements are pre-filtered, but
		// keep the default honest): forget everything.
		w.clearAll("unmodeled statement", s.Pos())
	}
}

// branch runs fn on a copy of the current facts and returns the copy's
// final state. Tombstones are shared: a kill on either path explains a
// later miss either way.
func (w *walker) branch(fn func(bw *walker)) map[string]*fact {
	bw := *w
	bw.facts = cloneFacts(w.facts)
	bw.stmtCall = nil
	fn(&bw)
	return bw.facts
}

// caseBranches merges the clause bodies of a switch: each runs on its
// own copy, and — because no clause may run at all without a default —
// the fall-through state joins the intersection.
func (w *walker) caseBranches(body *ast.BlockStmt) {
	outs := []map[string]*fact{}
	hasDefault := false
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		outs = append(outs, w.branch(func(bw *walker) {
			for _, e := range cc.List {
				bw.expr(e)
			}
			bw.stmts(cc.Body)
		}))
	}
	if !hasDefault {
		outs = append(outs, cloneFacts(w.facts))
	}
	if len(outs) == 0 {
		return
	}
	w.facts = intersectFacts(outs...)
}

func (w *walker) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		w.stmt(s.Init)
	}
	eff := scanEffects(w.info, s.Body, s.Cond, s.Post)
	pre := cloneFacts(w.facts)
	// Loop-entry facts: what provably survives every iteration.
	if eff.barrier {
		w.clearAll("loop body with task operations", s.Pos())
	} else {
		w.killObjs(eff.killed, "assignment inside loop", s.Pos())
	}
	if s.Cond != nil {
		w.expr(s.Cond)
	}
	w.stmts(s.Body.List)
	if s.Post != nil {
		w.stmt(s.Post)
	}
	w.hoistLoop(s, eff)
	// After the loop (which may have run zero times): the pre-loop
	// facts minus everything the loop could retire.
	w.facts = pre
	if eff.barrier {
		w.clearAll("loop body with task operations", s.Pos())
	} else {
		w.killObjs(eff.killed, "assignment inside loop", s.Pos())
	}
}

func (w *walker) rangeStmt(s *ast.RangeStmt) {
	if s.X != nil {
		w.expr(s.X)
	}
	eff := scanEffects(w.info, s)
	pre := cloneFacts(w.facts)
	if eff.barrier {
		w.clearAll("loop body with task operations", s.Pos())
	} else {
		w.killObjs(eff.killed, "assignment inside loop", s.Pos())
	}
	w.stmts(s.Body.List)
	w.facts = pre
	if eff.barrier {
		w.clearAll("loop body with task operations", s.Pos())
	} else {
		w.killObjs(eff.killed, "assignment inside loop", s.Pos())
	}
}

// expr walks e in evaluation order: operands before operators,
// arguments before calls, with conditional subtrees (&&/|| right
// sides) merged like branches.
func (w *walker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil, *ast.Ident, *ast.BasicLit, *ast.FuncLit, *ast.ArrayType,
		*ast.MapType, *ast.ChanType, *ast.StructType, *ast.InterfaceType, *ast.FuncType:
		// Literals and types have no effects; function literals are
		// separate regions and defining one runs nothing.
	case *ast.ParenExpr:
		w.expr(e.X)
	case *ast.SelectorExpr:
		w.expr(e.X)
	case *ast.IndexExpr:
		w.expr(e.X)
		w.expr(e.Index)
	case *ast.IndexListExpr:
		w.expr(e.X)
		for _, i := range e.Indices {
			w.expr(i)
		}
	case *ast.SliceExpr:
		w.expr(e.X)
		w.expr(e.Low)
		w.expr(e.High)
		w.expr(e.Max)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	case *ast.KeyValueExpr:
		w.expr(e.Key)
		w.expr(e.Value)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el)
		}
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			w.expr(e.X)
			w.clearAll("channel receive", e.Pos())
			return
		}
		w.expr(e.X)
	case *ast.BinaryExpr:
		if e.Op == token.LAND || e.Op == token.LOR {
			w.expr(e.X)
			rhs := w.branch(func(bw *walker) { bw.expr(e.Y) })
			w.facts = intersectFacts(rhs, w.facts)
			return
		}
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.CallExpr:
		w.call(e)
	default:
		w.clearAll("unmodeled expression", e.Pos())
	}
}

func (w *walker) call(call *ast.CallExpr) {
	stmtLevel := call == w.stmtCall
	// Receiver and arguments evaluate before the call itself.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.expr(sel.X)
	}
	for _, a := range call.Args {
		w.expr(a)
	}
	kind, acc := classifyCall(w.info, call)
	switch kind {
	case kindSafe:
	case kindAccess:
		w.access(acc, stmtLevel)
	default:
		w.clearAll(callDesc(call), call.Pos())
	}
}

// access applies the elimination rules to one checked Get/Set.
func (w *walker) access(a *access, stmtLevel bool) {
	key, deps, ok := w.accessKey(a)
	if !ok {
		return // unkeyable: the check happens, nothing to track
	}
	f := w.facts[key]
	pos := a.call.Pos()
	if a.write {
		if f != nil && f.wrotePos.IsValid() && stmtLevel {
			w.elide(a, RuleDup, f.wrotePos)
			return
		}
		if f != nil && f.wrotePos.IsValid() {
			// Dominated but syntactically unrewritable (a Set not in
			// statement position cannot become an assignment) — should
			// not occur since Set has no results, but stay honest.
			w.skipf(pos, RuleDup, "dominated write not in statement position")
			return
		}
		if f != nil && f.readPos.IsValid() {
			w.skipf(pos, RuleDup, "earlier read check at %s does not subsume a write check", w.fb.at(f.readPos))
			f.wrotePos = pos
			return
		}
		w.newFact(key, deps, a.kind, pos, true)
		return
	}
	// Read.
	if f != nil && f.readPos.IsValid() {
		w.elide(a, RuleDup, f.readPos)
		return
	}
	if f != nil && f.wrotePos.IsValid() {
		if w.opts.WriteDom {
			// The elided read performs no check and records no reader,
			// so the fact's read flavor deliberately stays unset.
			w.elide(a, RuleWriteDom, f.wrotePos)
			return
		}
		w.skipf(pos, RuleWriteDom,
			"read after same-step write at %s: verdict-preserving elision needs the opt-in writedom rule (not digest-preserving)",
			w.fb.at(f.wrotePos))
		f.readPos = pos
		return
	}
	if ki, ok := w.kills[key]; ok {
		w.skipf(pos, RuleDup, "earlier check invalidated by %s at %s", ki.what, w.fb.at(ki.pos))
	}
	w.newFact(key, deps, a.kind, pos, false)
}

func (w *walker) newFact(key string, deps []types.Object, kind string, pos token.Pos, write bool) {
	f := &fact{deps: deps, kind: kind}
	if write {
		f.wrotePos = pos
	} else {
		f.readPos = pos
	}
	w.facts[key] = f
	delete(w.kills, key)
}

// elide records a proven-redundant access. The fix builder owns it
// from here: a later hoist of the same key may subsume it, and the
// Result entries materialize at flush.
func (w *walker) elide(a *access, rule Rule, domPos token.Pos) {
	w.fb.addElision(a, rule, domPos)
}

func (w *walker) skipf(pos token.Pos, rule Rule, format string, args ...any) {
	w.res.Skips = append(w.res.Skips, Skip{Pos: pos, Rule: rule, Reason: fmt.Sprintf(format, args...)})
}

// accessKey canonicalizes a's receiver, ctx, and index into one fact
// key, vetting every dependency: region-locals are covered by the
// flow-sensitive kills, anything captured from an outer scope must be
// effectively final package-wide.
func (w *walker) accessKey(a *access) (string, []types.Object, bool) {
	key, deps, ok := pureKey(w.info, a.sel.X)
	if !ok {
		return "", nil, false
	}
	ck, cdeps, ok := pureKey(w.info, a.ctx)
	if !ok {
		return "", nil, false
	}
	key += "|" + ck
	deps = append(deps, cdeps...)
	for _, idx := range a.index {
		ik, ideps, ok := pureKey(w.info, idx)
		if !ok {
			return "", nil, false
		}
		key += "|" + ik
		deps = append(deps, ideps...)
	}
	for _, d := range deps {
		if !w.depOK(d) {
			return "", nil, false
		}
	}
	return a.kind + "|" + key, deps, true
}

// depOK vets one variable a fact key depends on.
func (w *walker) depOK(obj types.Object) bool {
	if w.pkgf.addrTaken[obj] {
		return false // writes through the pointer are invisible to kills
	}
	if obj.Pos() >= w.regionPos && obj.Pos() < w.regionEnd {
		return true // region-local: the walker sees every assignment
	}
	// Captured or global: another task could share it, so it must never
	// be reassigned after initialization — and provably so, which the
	// package-wide scan can only promise for this package's unexported
	// or function-local variables.
	if obj.Pkg() == nil || obj.Pkg() != w.pkgf.pkg {
		return false
	}
	if w.pkgf.assigned[obj] {
		return false
	}
	if obj.Exported() && obj.Parent() == obj.Pkg().Scope() {
		return false
	}
	return true
}

// killTarget retires facts invalidated by an assignment to l.
func (w *walker) killTarget(l ast.Expr, define bool) {
	switch t := ast.Unparen(l).(type) {
	case *ast.Ident:
		if define {
			return // a fresh object cannot invalidate keys of older ones
		}
		if obj := w.info.Uses[t]; obj != nil {
			w.killObj(obj, "reassignment of "+t.Name, t.Pos())
		}
	case *ast.StarExpr:
		// A write through a pointer can change anything addressable.
		// Fact deps are never address-taken, so their values are safe —
		// but the conservative default costs little.
		w.clearAll("assignment through pointer", t.Pos())
	default:
		if obj := rootObject(w.info, l); obj != nil {
			w.killObj(obj, "assignment through "+obj.Name(), l.Pos())
		} else {
			w.clearAll("assignment to unmodeled target", l.Pos())
		}
	}
}

func (w *walker) killObj(obj types.Object, what string, pos token.Pos) {
	for key, f := range w.facts {
		for _, d := range f.deps {
			if d == obj {
				delete(w.facts, key)
				w.kills[key] = killInfo{what: what, pos: pos}
				break
			}
		}
	}
}

func (w *walker) killObjs(objs map[types.Object]bool, what string, pos token.Pos) {
	for key, f := range w.facts {
		for _, d := range f.deps {
			if objs[d] {
				delete(w.facts, key)
				w.kills[key] = killInfo{what: what, pos: pos}
				break
			}
		}
	}
}

func (w *walker) clearAll(what string, pos token.Pos) {
	for key := range w.facts {
		delete(w.facts, key)
		w.kills[key] = killInfo{what: what, pos: pos}
	}
}

func cloneFacts(m map[string]*fact) map[string]*fact {
	out := make(map[string]*fact, len(m))
	for k, f := range m {
		cp := *f
		out[k] = &cp
	}
	return out
}

// intersectFacts merges control-flow joins per fact flavor: a
// dominating read (write) survives only if every incoming path agrees
// on the same dominating position.
func intersectFacts(outs ...map[string]*fact) map[string]*fact {
	merged := make(map[string]*fact)
	for key, f := range outs[0] {
		rp, wp := f.readPos, f.wrotePos
		ok := true
		for _, m := range outs[1:] {
			g := m[key]
			if g == nil {
				ok = false
				break
			}
			if g.readPos != rp {
				rp = token.NoPos
			}
			if g.wrotePos != wp {
				wp = token.NoPos
			}
		}
		if ok && (rp.IsValid() || wp.IsValid()) {
			merged[key] = &fact{readPos: rp, wrotePos: wp, deps: f.deps, kind: f.kind}
		}
	}
	return merged
}

// effects is the conservative summary of a loop body used to decide
// which facts survive into and beyond the loop.
type effects struct {
	killed  map[types.Object]bool
	barrier bool
}

// scanEffects summarizes nodes: every object any iteration might
// reassign, and whether any iteration might perform a task operation
// (or anything else unclassifiable).
func scanEffects(info *types.Info, nodes ...ast.Node) *effects {
	eff := &effects{killed: make(map[types.Object]bool)}
	mark := func(e ast.Expr) {
		if obj := rootObject(info, e); obj != nil {
			eff.killed[obj] = true
		}
	}
	for _, node := range nodes {
		if node == nil || node == ast.Node(nil) {
			continue
		}
		switch n := node.(type) {
		case ast.Expr:
			if n == nil {
				continue
			}
		case ast.Stmt:
			if n == nil {
				continue
			}
		}
		ast.Inspect(node, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok != token.DEFINE {
					for _, lhs := range n.Lhs {
						mark(lhs)
						if _, ok := ast.Unparen(lhs).(*ast.StarExpr); ok {
							eff.barrier = true
						}
					}
				}
			case *ast.IncDecStmt:
				mark(n.X)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					mark(n.X)
				}
				if n.Op == token.ARROW {
					eff.barrier = true
				}
			case *ast.RangeStmt:
				if n.Tok == token.ASSIGN {
					mark(n.Key)
					mark(n.Value)
				}
			case *ast.CallExpr:
				if k, _ := classifyCall(info, n); k == kindBarrier {
					eff.barrier = true
				}
			case *ast.GoStmt, *ast.SendStmt, *ast.SelectStmt, *ast.ReturnStmt, *ast.DeferStmt:
				eff.barrier = true
			}
			return true
		})
	}
	return eff
}

// callDesc names a barrier call for tombstones: the selector or
// function expression's last identifier.
func callDesc(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return "call to " + fun.Name
	case *ast.SelectorExpr:
		return "call to " + fun.Sel.Name
	default:
		return "function call"
	}
}
