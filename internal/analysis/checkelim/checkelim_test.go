package checkelim_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spd3/internal/analysis"
	"spd3/internal/analysis/atest"
	"spd3/internal/analysis/checkelim"
)

func TestDupGolden(t *testing.T) {
	atest.RunGolden(t, "testdata/dup", checkelim.Analyzer)
}

func TestHoistGolden(t *testing.T) {
	atest.RunGolden(t, "testdata/hoist", checkelim.Analyzer)
}

// TestNoElideGolden: the fixture has no want annotations, so any
// diagnostic — any elision of a non-redundant check — fails.
func TestNoElideGolden(t *testing.T) {
	atest.RunGolden(t, "testdata/noelide", checkelim.Analyzer)
}

// writeDomAnalyzer is the rule-3-enabled variant, unregistered (the
// registry carries only the digest-preserving default).
var writeDomAnalyzer = &analysis.Analyzer{
	Name: "checkelim",
	Doc:  "checkelim with the opt-in writedom rule",
	Run: func(pass *analysis.Pass) error {
		pkg := &analysis.Package{Fset: pass.Fset, Files: pass.Files, Types: pass.Pkg, Info: pass.Info}
		res, err := checkelim.Analyze(pkg, checkelim.Options{WriteDom: true})
		if err != nil {
			return err
		}
		for _, d := range res.Diags {
			pass.Report(d)
		}
		return nil
	},
}

func TestWriteDomGolden(t *testing.T) {
	atest.RunGolden(t, "testdata/writedom", writeDomAnalyzer)
}

func load(t *testing.T, dir string) *analysis.Package {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) != 0 {
		t.Fatalf("fixture %s has type errors: %v", dir, pkg.TypeErrors)
	}
	return pkg
}

// TestWriteDomDefault pins the tiering: by default the write-dominated
// read is kept and surfaces as a skip naming the opt-in.
func TestWriteDomDefault(t *testing.T) {
	pkg := load(t, "testdata/writedom")
	res, err := checkelim.Analyze(pkg, checkelim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Elisions); n != 0 {
		t.Errorf("default rules elided %d accesses in the writedom fixture, want 0", n)
	}
	found := false
	for _, s := range res.Skips {
		if s.Rule == checkelim.RuleWriteDom && strings.Contains(s.Reason, "writedom") {
			found = true
		}
	}
	if !found {
		t.Errorf("no writedom skip recorded; skips: %+v", res.Skips)
	}
}

// TestCounts pins per-rule counting and the skip reasons the corpus
// reports aggregate.
func TestCounts(t *testing.T) {
	pkg := load(t, "testdata/dup")
	res, err := checkelim.Analyze(pkg, checkelim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	counts := res.Counts()
	if counts["dup"] != 7 {
		t.Errorf("dup count = %d, want 7 (5 in pairs, 2 in nested)", counts["dup"])
	}
	if counts["hoist"] != 0 || counts["writedom"] != 0 {
		t.Errorf("unexpected non-dup elisions: %v", counts)
	}
	// The read-then-write pairs must be skips, not elisions.
	readWrite := 0
	for _, s := range res.Skips {
		if strings.Contains(s.Reason, "does not subsume a write check") {
			readWrite++
		}
	}
	if readWrite == 0 {
		t.Error("no read-does-not-subsume-write skip recorded")
	}

	pkg = load(t, "testdata/noelide")
	res, err = checkelim.Analyze(pkg, checkelim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Elisions) != 0 {
		t.Fatalf("noelide fixture produced elisions: %+v", res.Elisions)
	}
	wantReasons := []string{
		"invalidated by call to Async",
		"invalidated by call to Lock",
		"invalidated by reassignment of i",
		"invalidated by call to Update",
	}
	for _, want := range wantReasons {
		found := false
		for _, s := range res.Skips {
			found = found || strings.Contains(s.Reason, want)
		}
		if !found {
			t.Errorf("missing skip reason %q; got %+v", want, res.Skips)
		}
	}
}

// TestHoistCountsAndSkips pins rule-2 accounting on the hoist fixture.
func TestHoistCountsAndSkips(t *testing.T) {
	pkg := load(t, "testdata/hoist")
	res, err := checkelim.Analyze(pkg, checkelim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Counts()["hoist"]; got != 2 {
		t.Errorf("hoist count = %d, want 2 (s.Get in dots, w.Get in relax)", got)
	}

	pkg = load(t, "testdata/noelide")
	res, err = checkelim.Analyze(pkg, checkelim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// f.Get in the first varying loop is invariant but conditional-only.
	found := false
	for _, s := range res.Skips {
		if s.Rule == checkelim.RuleHoist && strings.Contains(s.Reason, "no unconditional occurrence") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing conditional-only hoist skip; got %+v", res.Skips)
	}
}

// roundTrip applies the fixes to a temp copy of dir and verifies the
// result type-checks, is clean under every registered analyzer
// (including unchecked, which must trust the elision markers), and is
// a fixed point of the eliminator.
func roundTrip(t *testing.T, dir string) {
	t.Helper()
	tmp, err := os.MkdirTemp("testdata", "fixtmp-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(tmp) })
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(tmp, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	pkg := load(t, tmp)
	res, err := checkelim.Analyze(pkg, checkelim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Elisions) == 0 {
		t.Fatal("fixture produced no elisions; round trip is vacuous")
	}
	if _, applied, err := analysis.ApplyFixes(pkg.Fset, res.Diags); err != nil || applied == 0 {
		t.Fatalf("ApplyFixes: applied=%d err=%v", applied, err)
	}

	pkg2 := load(t, tmp) // load() fails the test on type errors
	diags, err := analysis.Run(pkg2, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	diags, _ = analysis.Suppress(pkg2, diags)
	for _, d := range diags {
		t.Errorf("rewritten fixture not vet-clean: %s: %s [%s]",
			pkg2.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	res2, err := checkelim.Analyze(pkg2, checkelim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Elisions) != 0 {
		t.Errorf("not a fixed point: second pass elided %d more", len(res2.Elisions))
	}
}

func TestFixRoundTripDup(t *testing.T)   { roundTrip(t, "testdata/dup") }
func TestFixRoundTripHoist(t *testing.T) { roundTrip(t, "testdata/hoist") }
