package checkelim

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"sort"
	"strings"

	"spd3/internal/analysis"
)

// fixBuilder accumulates one file's pending rewrites and materializes
// them as diagnostics with non-overlapping SuggestedFix edits. The two
// wrinkles it owns:
//
//   - Nesting. An elided Get can sit inside an elided Set's value (or
//     inside a hoist-replaced occurrence). Only the outermost rewrite
//     gets a text edit; inner rewrites are spliced into the outer
//     replacement text, so ApplyFixes never sees overlapping spans.
//   - Same-offset inserts. ApplyFixes sorts edits with an unstable
//     sort, so two inserts at one offset land in arbitrary order. All
//     elision markers for one line merge into one insert, and all
//     hoisted declarations for one loop merge into one insert.
type fixBuilder struct {
	fset *token.FileSet
	src  []byte
	// file is the parsed file, for line arithmetic and for locating
	// existing trailing comments.
	file *ast.File
	// names holds every identifier spelled in the file, for fresh
	// hoist-local names.
	names    map[string]bool
	elisions []*pendElision
	byCall   map[*ast.CallExpr]*pendElision
	hoists   []*pendHoist
	// repls is the flush-time span-replacement list (sorted by Pos).
	repls []*repl
}

type pendElision struct {
	a      *access
	rule   Rule
	domPos token.Pos
	// cancelled marks dup elisions subsumed by a hoist of the same key
	// (the hoist replaces the whole occurrence).
	cancelled bool
}

type pendHoist struct {
	loop *ast.ForStmt
	g    *hoistGroup
	name string
}

func newFixBuilder(fset *token.FileSet, src []byte, f *ast.File) *fixBuilder {
	fb := &fixBuilder{
		fset:   fset,
		src:    src,
		file:   f,
		names:  make(map[string]bool),
		byCall: make(map[*ast.CallExpr]*pendElision),
	}
	ast.Inspect(f, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			fb.names[id.Name] = true
		}
		return true
	})
	return fb
}

// fileSource reads the bytes the file was parsed from.
func fileSource(fset *token.FileSet, f *ast.File) ([]byte, error) {
	return os.ReadFile(fset.Position(f.Pos()).Filename)
}

// at renders a position as "line N" for messages.
func (fb *fixBuilder) at(pos token.Pos) string {
	return fmt.Sprintf("line %d", fb.fset.Position(pos).Line)
}

func (fb *fixBuilder) addElision(a *access, rule Rule, domPos token.Pos) {
	p := &pendElision{a: a, rule: rule, domPos: domPos}
	fb.elisions = append(fb.elisions, p)
	fb.byCall[a.call] = p
}

// addHoist registers a hoist of g out of loop, cancelling dup elisions
// on the replaced occurrences. It reports false when every occurrence
// was already elided (the hoist would only add a checked access).
func (fb *fixBuilder) addHoist(loop *ast.ForStmt, g *hoistGroup) bool {
	allElided := true
	for _, o := range g.occs {
		if p := fb.byCall[o.call]; p == nil || p.cancelled {
			allElided = false
		}
	}
	if allElided {
		return false
	}
	for _, o := range g.occs {
		if p := fb.byCall[o.call]; p != nil {
			p.cancelled = true
		}
	}
	fb.hoists = append(fb.hoists, &pendHoist{loop: loop, g: g, name: fb.freshName(g)})
	return true
}

// freshName derives a collision-free local for a hoisted value.
func (fb *fixBuilder) freshName(g *hoistGroup) string {
	base := "hoisted"
	if id := lastIdent(g.occs[0].sel.X); id != "" {
		base = id + "Inv"
	}
	name := base
	for i := 2; fb.names[name]; i++ {
		name = fmt.Sprintf("%s%d", base, i)
	}
	fb.names[name] = true
	return name
}

func lastIdent(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return lastIdent(e.X)
	case *ast.StarExpr:
		return lastIdent(e.X)
	}
	return ""
}

// A repl is one pending span replacement (elision rewrite or hoist
// occurrence), used both for splicing nested rewrites and for deciding
// outermost spans.
type repl struct {
	pos, end token.Pos
	text     func() string
}

// flush materializes the file's pending work into res and resets
// nothing (the builder is per-file).
func (fb *fixBuilder) flush(fset *token.FileSet, res *Result) {
	var repls []*repl
	active := fb.activeElisions()
	for _, p := range active {
		p := p
		repls = append(repls, &repl{pos: p.a.call.Pos(), end: p.a.call.End(),
			text: func() string { return fb.textFor(p) }})
	}
	for _, h := range fb.hoists {
		for _, o := range h.g.occs {
			name := h.name
			repls = append(repls, &repl{pos: o.call.Pos(), end: o.call.End(),
				text: func() string { return name }})
		}
	}
	sort.Slice(repls, func(i, j int) bool { return repls[i].pos < repls[j].pos })
	fb.repls = repls

	// Outermost spans get edits; nested ones are spliced into them.
	outermost := make(map[*repl]bool)
	var maxEnd token.Pos
	for _, r := range repls {
		if r.pos >= maxEnd {
			outermost[r] = true
			maxEnd = r.end
		}
	}

	// One marker insert per line naming every dominator on it. A
	// nested elision's marker anchors to its outermost container's
	// line: after the rewrite, that is where the unchecked access
	// lives, and inserting inside a replaced span would overlap.
	container := func(pos, end token.Pos) *repl {
		for _, r := range repls {
			if outermost[r] && r.pos <= pos && end <= r.end {
				return r
			}
		}
		return nil
	}
	// Each hoisted group inserts one declaration line above its loop,
	// shifting every later line down; dominator references describe
	// the rewritten file, so renumber them past the insertion points.
	adjust := func(line int) int {
		shifted := line
		for _, h := range fb.hoists {
			if fb.fset.Position(h.loop.Pos()).Line <= line {
				shifted++
			}
		}
		return shifted
	}
	markers := make(map[int][]int) // line -> dominator lines
	for _, p := range active {
		line := fb.fset.Position(p.a.call.Pos()).Line
		if c := container(p.a.call.Pos(), p.a.call.End()); c != nil {
			line = fb.fset.Position(c.pos).Line
		}
		markers[line] = append(markers[line], adjust(fb.fset.Position(p.domPos).Line))
	}
	markerDone := make(map[int]bool)

	for _, p := range active {
		res.Elisions = append(res.Elisions, Elision{
			Rule:      p.rule,
			Pos:       p.a.call.Pos(),
			End:       p.a.call.End(),
			Container: p.a.kind,
			DomPos:    p.domPos,
		})
		d := analysis.Diagnostic{
			Pos:      p.a.call.Pos(),
			Analyzer: analyzerName,
			Message:  fb.msgFor(p),
		}
		r := fb.replAt(p.a.call.Pos(), p.a.call.End())
		if outermost[r] {
			edits := []analysis.TextEdit{{Pos: r.pos, End: r.end, NewText: r.text()}}
			line := fb.fset.Position(p.a.call.Pos()).Line
			if !markerDone[line] {
				markerDone[line] = true
				edits = append(edits, fb.markerEdit(line, markers[line]))
			}
			d.Fix = &analysis.SuggestedFix{Message: "rewrite to unchecked access", Edits: edits}
		}
		res.Diags = append(res.Diags, d)
	}

	// Hoists, merged per loop so the declaration insert offset is
	// unique.
	byLoop := make(map[*ast.ForStmt][]*pendHoist)
	var loops []*ast.ForStmt
	for _, h := range fb.hoists {
		if byLoop[h.loop] == nil {
			loops = append(loops, h.loop)
		}
		byLoop[h.loop] = append(byLoop[h.loop], h)
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].Pos() < loops[j].Pos() })
	for _, loop := range loops {
		hs := byLoop[loop]
		var decl strings.Builder
		var edits []analysis.TextEdit
		first := token.Pos(0)
		for _, h := range hs {
			occ0 := h.g.occs[0]
			if !first.IsValid() || occ0.call.Pos() < first {
				first = occ0.call.Pos()
			}
			fmt.Fprintf(&decl, "%s := %s //spd3opt:hoisted loop-invariant\n",
				h.name, fb.renderRange(occ0.call.Pos(), occ0.call.End()))
			for _, o := range h.g.occs {
				r := fb.replAt(o.call.Pos(), o.call.End())
				if outermost[r] {
					edits = append(edits, analysis.TextEdit{Pos: r.pos, End: r.end, NewText: h.name})
				}
				res.Elisions = append(res.Elisions, Elision{
					Rule:      RuleHoist,
					Pos:       o.call.Pos(),
					End:       o.call.End(),
					Container: o.kind,
					DomPos:    loop.Pos(),
				})
			}
		}
		edits = append(edits, analysis.TextEdit{Pos: loop.Pos(), End: loop.Pos(), NewText: decl.String()})
		res.Diags = append(res.Diags, analysis.Diagnostic{
			Pos:      first,
			Analyzer: analyzerName,
			Message: fmt.Sprintf("loop-invariant read check in a provably-entered, barrier-free loop: "+
				"hoist to a single check before the loop at %s", fb.at(loop.Pos())),
			Fix: &analysis.SuggestedFix{Message: "hoist the checked read out of the loop", Edits: edits},
		})
	}
}

// replAt finds the registered repl for a span.
func (fb *fixBuilder) replAt(pos, end token.Pos) *repl {
	for _, r := range fb.repls {
		if r.pos == pos && r.end == end {
			return r
		}
	}
	return nil
}

// renderRange returns the source for [pos, end) with every nested
// pending replacement spliced in.
func (fb *fixBuilder) renderRange(pos, end token.Pos) string {
	var sb strings.Builder
	cur := pos
	for _, r := range fb.repls {
		// Skip the span itself (a hoist declaration renders the
		// original checked call, not its own replacement).
		if r.pos == pos && r.end == end {
			continue
		}
		if r.pos >= cur && r.end <= end {
			sb.Write(fb.slice(cur, r.pos))
			sb.WriteString(r.text())
			cur = r.end
		}
	}
	sb.Write(fb.slice(cur, end))
	return sb.String()
}

func (fb *fixBuilder) slice(pos, end token.Pos) []byte {
	p, q := fb.fset.Position(pos).Offset, fb.fset.Position(end).Offset
	return fb.src[p:q]
}

// textFor renders the unchecked rewrite of one elided access, splicing
// in any nested rewrites within its operands.
func (fb *fixBuilder) textFor(p *pendElision) string {
	a := p.a
	recv := fb.renderRange(a.sel.X.Pos(), a.sel.X.End())
	var idx []string
	for _, ie := range a.index {
		idx = append(idx, fb.renderRange(ie.Pos(), ie.End()))
	}
	val := ""
	if a.value != nil {
		val = fb.renderRange(a.value.Pos(), a.value.End())
	}
	switch a.kind {
	case "Array":
		if a.write {
			return fmt.Sprintf("%s.Unchecked()[%s] = %s", recv, idx[0], val)
		}
		return fmt.Sprintf("%s.Unchecked()[%s]", recv, idx[0])
	case "Matrix":
		if a.write {
			return fmt.Sprintf("%s.UncheckedRow(%s)[%s] = %s", recv, idx[0], idx[1], val)
		}
		return fmt.Sprintf("%s.UncheckedRow(%s)[%s]", recv, idx[0], idx[1])
	default: // Var
		if a.write {
			return fmt.Sprintf("*%s.Unchecked() = %s", recv, val)
		}
		return fmt.Sprintf("(*%s.Unchecked())", recv)
	}
}

func (fb *fixBuilder) msgFor(p *pendElision) string {
	switch {
	case p.rule == RuleWriteDom:
		return fmt.Sprintf("redundant read check: cell already write-checked at %s in the same step "+
			"(verdict-preserving elision)", fb.at(p.domPos))
	case p.a.write:
		return fmt.Sprintf("redundant write check: cell already write-checked at %s in the same step",
			fb.at(p.domPos))
	default:
		return fmt.Sprintf("redundant read check: cell already read-checked at %s in the same step",
			fb.at(p.domPos))
	}
}

// markerEdit builds the end-of-line //spd3opt:elided insert for line.
func (fb *fixBuilder) markerEdit(line int, domLines []int) analysis.TextEdit {
	sort.Ints(domLines)
	var refs []string
	seen := make(map[int]bool)
	for _, l := range domLines {
		if !seen[l] {
			seen[l] = true
			refs = append(refs, fmt.Sprintf("L%d", l))
		}
	}
	marker := " //" + analysis.ElidedMarker + " dominated-by " + strings.Join(refs, ", ")
	// If the line already carries a comment, insert before it — text
	// appended after a // comment would become part of that comment and
	// the marker scan would never see it.
	for _, cg := range fb.file.Comments {
		for _, c := range cg.List {
			if fb.fset.Position(c.Pos()).Line == line {
				return analysis.TextEdit{Pos: c.Pos(), End: c.Pos(), NewText: strings.TrimPrefix(marker, " ") + " "}
			}
		}
	}
	pos := fb.lineEnd(line)
	return analysis.TextEdit{Pos: pos, End: pos, NewText: marker}
}

// lineEnd returns the position just before line's terminating newline.
func (fb *fixBuilder) lineEnd(line int) token.Pos {
	tf := fb.fset.File(fb.file.Pos())
	if line < tf.LineCount() {
		return tf.LineStart(line+1) - 1
	}
	return token.Pos(tf.Base() + tf.Size())
}

// activeElisions returns the non-cancelled pending elisions.
func (fb *fixBuilder) activeElisions() []*pendElision {
	var out []*pendElision
	for _, p := range fb.elisions {
		if !p.cancelled {
			out = append(out, p)
		}
	}
	return out
}
