package rewrite

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spd3/internal/analysis"
)

var update = flag.Bool("update", false, "rewrite the .golden files")

// load loads the package in dir through a fresh loader.
func load(t *testing.T, dir string) *analysis.Package {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatalf("no Go files in %s", dir)
	}
	return pkg
}

// TestGolden pins the full rewritten output for one fixture per
// construct family. Each fixture is a single main.go; the expected
// output lives next to it as main.go.golden (refresh with -update).
func TestGolden(t *testing.T) {
	for _, name := range []string{"array", "matrix", "mapmutex", "skips"} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", name)
			pkg := load(t, dir)
			res, err := Rewrite(pkg)
			if err != nil {
				t.Fatal(err)
			}
			abs, err := filepath.Abs(filepath.Join(dir, "main.go"))
			if err != nil {
				t.Fatal(err)
			}
			got, ok := res.Files[abs]
			if !ok {
				t.Fatalf("no rewrite produced for %s (rewritten=%v skips=%v)", abs, res.Rewritten, res.Skips)
			}
			golden := filepath.Join(dir, "main.go.golden")
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Errorf("rewritten output differs from %s:\n--- got ---\n%s", golden, got)
			}
		})
	}
}

// TestSequentialUntouched: a run with no spawned tasks has no shared
// variables, so the rewriter proposes nothing at all.
func TestSequentialUntouched(t *testing.T) {
	pkg := load(t, filepath.Join("testdata", "sequential"))
	res, err := Rewrite(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 0 || len(res.Rewritten) != 0 || len(res.Skips) != 0 {
		t.Errorf("sequential fixture changed: files=%d rewritten=%v skips=%v",
			len(res.Files), res.Rewritten, res.Skips)
	}
}

// TestSkipsReported pins the skip bookkeeping on the skips fixture: the
// escaping slice and the plain-closure scalar produce diagnostics and
// directive comments, the hand-opted variable stays silent, and no
// variable is rewritten.
func TestSkipsReported(t *testing.T) {
	pkg := load(t, filepath.Join("testdata", "skips"))
	res, err := Rewrite(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewritten) != 0 {
		t.Errorf("rewritten = %v, want none", res.Rewritten)
	}
	byVar := make(map[string]string)
	for _, s := range res.Skips {
		byVar[s.Var] = s.Reason
	}
	if len(byVar) != 2 {
		t.Fatalf("skips = %v, want exactly shared and lost", res.Skips)
	}
	if r := byVar["shared"]; !strings.Contains(r, "argument") {
		t.Errorf("shared skip reason = %q, want an argument-escape reason", r)
	}
	if r := byVar["lost"]; !strings.Contains(r, "without a task context") {
		t.Errorf("lost skip reason = %q, want a no-task-context reason", r)
	}
	if _, opted := byVar["opted"]; opted {
		t.Error("hand-opted variable produced a diagnostic")
	}
	for _, content := range res.Files {
		if n := strings.Count(string(content), Directive); n != 3 {
			t.Errorf("output carries %d directives, want 3 (1 hand-written + 2 emitted):\n%s", n, content)
		}
	}
}

// writeResult materializes a rewrite result (plus unchanged files) into
// a fresh directory and returns it.
func writeResult(t *testing.T, srcDir string, res *Result) string {
	t.Helper()
	out := t.TempDir()
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		abs, err := filepath.Abs(filepath.Join(srcDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		content, ok := res.Files[abs]
		if !ok {
			if content, err = os.ReadFile(abs); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(out, e.Name()), content, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestRewriteRoundTrip: every rewritten fixture type-checks, passes the
// spd3vet suite, and re-rewrites to a fixed point (idempotence — the
// second pass sees containers and directives, not plain shared data).
func TestRewriteRoundTrip(t *testing.T) {
	for _, name := range []string{"array", "matrix", "mapmutex", "skips"} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", name)
			res, err := Rewrite(load(t, dir))
			if err != nil {
				t.Fatal(err)
			}
			out := writeResult(t, dir, res)
			pkg2 := load(t, out)
			if len(pkg2.TypeErrors) != 0 {
				t.Fatalf("rewritten fixture has type errors: %v", pkg2.TypeErrors)
			}
			diags, err := analysis.Run(pkg2, analysis.All())
			if err != nil {
				t.Fatal(err)
			}
			diags, _ = analysis.Suppress(pkg2, diags)
			if len(diags) != 0 {
				t.Errorf("spd3vet findings on rewritten fixture: %v", diags)
			}
			res2, err := Rewrite(pkg2)
			if err != nil {
				t.Fatal(err)
			}
			if len(res2.Files) != 0 || len(res2.Skips) != 0 {
				t.Errorf("second rewrite not a fixed point: files=%d skips=%v", len(res2.Files), res2.Skips)
			}
		})
	}
}
