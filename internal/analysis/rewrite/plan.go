package rewrite

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// A plan accumulates the edits for one candidate; it is merged into the
// rewriter only if every declaration and use of the variable converts.
type plan struct {
	r          *rewriter
	edits      map[string][]edit
	erasedSync map[string]int
	needsSpd3  map[string]bool
}

func newPlan(r *rewriter) *plan {
	return &plan{
		r:          r,
		edits:      make(map[string][]edit),
		erasedSync: make(map[string]int),
		needsSpd3:  make(map[string]bool),
	}
}

// repl replaces [pos, end) with text.
func (p *plan) repl(pos, end token.Pos, text string) {
	name, off := p.r.offset(pos)
	_, to := p.r.offset(end)
	p.edits[name] = append(p.edits[name], edit{off: off, end: to, text: text})
}

// ins inserts text at pos.
func (p *plan) ins(pos token.Pos, text string) { p.repl(pos, pos, text) }

// at renders pos for skip reasons: base filename, line, column. The
// base keeps golden output stable across checkouts.
func (r *rewriter) at(pos token.Pos) string {
	pp := r.pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d:%d", filepath.Base(pp.Filename), pp.Line, pp.Column)
}

// plan tries to convert one candidate end to end and either commits the
// edits or records a skip.
func (r *rewriter) plan(c *candidate) {
	reason := r.findDecl(c)
	if reason == "" && r.hasDirective(c.declStmt) {
		return // explicit opt-out
	}
	p := newPlan(r)
	if reason == "" {
		reason = p.declEdits(c)
	}
	if reason == "" {
		reason = p.useEdits(c)
	}
	if reason != "" {
		r.skip(c, reason)
		return
	}
	for name, edits := range p.edits {
		r.edits[name] = append(r.edits[name], edits...)
	}
	for name, n := range p.erasedSync {
		r.erasedSync[name] += n
	}
	for name := range p.needsSpd3 {
		r.needsSpd3[name] = true
	}
	r.res.Rewritten = append(r.res.Rewritten, Rewritten{
		Var:       c.obj.Name(),
		Container: c.name,
		Kind:      c.kind.String(),
		Pos:       c.declIdent.Pos(),
	})
}

// ctorForm resolves the constructor spelling for c's declaration scope:
// the Ctx-scoped In-form inside a task body, the Engine form in a
// driver function.
func (p *plan) ctorForm(c *candidate) (ctor, firstArg, reason string) {
	mode, ctx := p.r.modeAt(c.declStmt.Pos())
	switch mode {
	case modeCtx:
		return "spd3.New" + c.kind.String() + "In", ctx, ""
	case modeSeq:
		sc := p.r.innermost(c.declStmt.Pos())
		eng := p.r.drivers[sc.fd]
		if eng == "" {
			return "", "", "no unique *spd3.Engine variable in the driver function"
		}
		return "spd3.New" + c.kind.String(), eng, ""
	}
	return "", "", "declared at " + p.r.at(c.declStmt.Pos()) + " outside any task or driver scope"
}

// declEdits rewrites c's declaration to a container constructor and
// records the type component texts later use rewrites need.
func (p *plan) declEdits(c *candidate) string {
	ctor, first, reason := p.ctorForm(c)
	if reason != "" {
		return reason
	}
	name, _ := p.r.offset(c.declStmt.Pos())
	p.needsSpd3[name] = true
	argPrefix := first + ", \"" + c.name + "\", "

	// Resolve the initializer expression and, for var-form decls, the
	// spec carrying the optional explicit type.
	var init ast.Expr
	var spec *ast.ValueSpec
	switch d := c.declStmt.(type) {
	case *ast.AssignStmt:
		init = d.Rhs[0]
	default:
		spec = valueSpecOf(c.declStmt)
		if spec == nil {
			return "unsupported declaration form"
		}
		if len(spec.Values) == 1 {
			init = spec.Values[0]
		} else if len(spec.Values) > 1 {
			return "multi-variable declaration"
		}
	}

	switch c.kind {
	case kindVar:
		return p.varDecl(c, ctor, argPrefix, init, spec)
	case kindArray:
		return p.arrayDecl(c, ctor, argPrefix, init, spec)
	case kindMatrix:
		return p.matrixDecl(c, ctor, argPrefix, init, spec)
	case kindMap:
		return p.mapDecl(c, ctor, argPrefix, init, spec)
	case kindMutex:
		return p.mutexDecl(c, ctor, first, spec)
	}
	return "unsupported kind"
}

// valueSpecOf unwraps a DeclStmt or GenDecl down to its single
// ValueSpec.
func valueSpecOf(n ast.Node) *ast.ValueSpec {
	gd, ok := n.(*ast.GenDecl)
	if !ok {
		ds, ok := n.(*ast.DeclStmt)
		if !ok {
			return nil
		}
		gd, ok = ds.Decl.(*ast.GenDecl)
		if !ok {
			return nil
		}
	}
	if len(gd.Specs) != 1 {
		return nil
	}
	vs, _ := gd.Specs[0].(*ast.ValueSpec)
	return vs
}

func (p *plan) varDecl(c *candidate, ctor, argPrefix string, init ast.Expr, spec *ast.ValueSpec) string {
	varName := c.obj.Name()
	if init == nil {
		// var x T: spell the zero value and instantiate explicitly.
		basic, ok := c.obj.Type().(*types.Basic)
		if !ok || spec == nil || spec.Type == nil {
			return "cannot spell zero value for " + c.obj.Type().String()
		}
		zero := "0"
		switch {
		case basic.Info()&types.IsBoolean != 0:
			zero = "false"
		case basic.Info()&types.IsString != 0:
			zero = `""`
		}
		p.repl(c.declStmt.Pos(), c.declStmt.End(),
			varName+" := "+ctor+"["+p.r.text(spec.Type)+"]("+argPrefix+zero+")")
		return ""
	}
	prefix := ctor + "(" + argPrefix
	if spec != nil && spec.Type != nil {
		// var x T = expr: keep T explicit so untyped constants still
		// land on the declared type.
		prefix = ctor + "[" + p.r.text(spec.Type) + "](" + argPrefix
	}
	if spec != nil {
		p.repl(c.declStmt.Pos(), init.Pos(), varName+" := "+prefix)
	} else {
		p.ins(init.Pos(), prefix)
	}
	p.ins(init.End(), ")")
	return ""
}

// makeCall validates init as make(<type>, args...) and returns it.
func makeCall(init ast.Expr) *ast.CallExpr {
	call, ok := init.(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) == 0 {
		return nil
	}
	return call
}

// varFormPrefix rewrites the `var x [type] =` head of a var-form
// declaration to `x := `, leaving the initializer to kind-specific
// edits.
func (p *plan) varFormPrefix(c *candidate, init ast.Expr, spec *ast.ValueSpec) {
	if spec != nil {
		p.repl(c.declStmt.Pos(), init.Pos(), c.obj.Name()+" := ")
	}
}

func (p *plan) arrayDecl(c *candidate, ctor, argPrefix string, init ast.Expr, spec *ast.ValueSpec) string {
	call := makeCall(init)
	if call == nil {
		return "slice not declared as make([]T, n)"
	}
	at, ok := call.Args[0].(*ast.ArrayType)
	if !ok || at.Len != nil {
		return "slice not declared as make([]T, n)"
	}
	if len(call.Args) != 2 {
		return "make with a capacity argument"
	}
	c.elem = p.r.text(at.Elt)
	p.varFormPrefix(c, init, spec)
	p.repl(call.Pos(), call.Args[1].Pos(), ctor+"["+c.elem+"]("+argPrefix)
	p.repl(call.Args[1].End(), call.End(), ")")
	return ""
}

func (p *plan) matrixDecl(c *candidate, ctor, argPrefix string, init ast.Expr, spec *ast.ValueSpec) string {
	call := makeCall(init)
	if call == nil || len(call.Args) != 2 {
		return "[][]T not declared as make([][]T, rows)"
	}
	outer, ok := call.Args[0].(*ast.ArrayType)
	if !ok || outer.Len != nil {
		return "[][]T not declared as make([][]T, rows)"
	}
	inner, ok := outer.Elt.(*ast.ArrayType)
	if !ok || inner.Len != nil {
		return "[][]T not declared as make([][]T, rows)"
	}
	c.elem = p.r.text(inner.Elt)
	loop, cols, reason := p.matchInitLoop(c, call)
	if reason != "" {
		return reason
	}
	c.initLoop = loop
	p.varFormPrefix(c, init, spec)
	p.repl(call.Pos(), call.Args[1].Pos(), ctor+"["+c.elem+"]("+argPrefix)
	p.repl(call.Args[1].End(), call.End(), ", "+cols+")")
	_, from := p.r.lineStart(loop.Pos())
	name, _ := p.r.offset(loop.Pos())
	_, to := p.r.offset(loop.End())
	p.edits[name] = append(p.edits[name], edit{off: from, end: to, text: ""})
	return ""
}

// matchInitLoop finds the row-initialization loop that must immediately
// follow a [][]T make: either
//
//	for i := 0; i < rows; i++ { x[i] = make([]T, cols) }
//	for i := range x { x[i] = make([]T, cols) }
//
// and returns it with the column bound's source text.
func (p *plan) matchInitLoop(c *candidate, outerMake *ast.CallExpr) (loop ast.Stmt, cols string, reason string) {
	const noLoop = "no matching row-initialization loop immediately after the make"
	f := p.r.fileOf(c.declStmt.Pos())
	parents := p.r.parents[f]
	block, ok := parents[c.declStmt].(*ast.BlockStmt)
	if !ok {
		return nil, "", noLoop
	}
	idx := -1
	for i, s := range block.List {
		if s == c.declStmt {
			idx = i
		}
	}
	if idx < 0 || idx+1 >= len(block.List) {
		return nil, "", noLoop
	}
	next := block.List[idx+1]

	rowVar := func(body *ast.BlockStmt, loopVar *ast.Ident) (string, bool) {
		if len(body.List) != 1 {
			return "", false
		}
		as, ok := body.List[0].(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return "", false
		}
		ix, ok := as.Lhs[0].(*ast.IndexExpr)
		if !ok {
			return "", false
		}
		base, ok := ix.X.(*ast.Ident)
		if !ok || p.r.pkg.Info.Uses[base] != types.Object(c.obj) {
			return "", false
		}
		iid, ok := ix.Index.(*ast.Ident)
		if !ok || loopVar == nil || iid.Name != loopVar.Name {
			return "", false
		}
		mk := makeCall(as.Rhs[0])
		if mk == nil || len(mk.Args) != 2 {
			return "", false
		}
		it, ok := mk.Args[0].(*ast.ArrayType)
		if !ok || it.Len != nil || p.r.text(it.Elt) != c.elem {
			return "", false
		}
		if p.r.containsCandidateUse(mk.Args[1]) {
			return "", false
		}
		return p.r.text(mk.Args[1]), true
	}

	switch fl := next.(type) {
	case *ast.ForStmt:
		initAs, ok := fl.Init.(*ast.AssignStmt)
		if !ok || initAs.Tok != token.DEFINE || len(initAs.Lhs) != 1 {
			return nil, "", noLoop
		}
		loopVar, _ := initAs.Lhs[0].(*ast.Ident)
		cond, ok := fl.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.LSS || p.r.text(cond.Y) != p.r.text(outerMake.Args[1]) {
			return nil, "", noLoop
		}
		if cx, ok := cond.X.(*ast.Ident); !ok || loopVar == nil || cx.Name != loopVar.Name {
			return nil, "", noLoop
		}
		colsText, ok := rowVar(fl.Body, loopVar)
		if !ok {
			return nil, "", noLoop
		}
		return fl, colsText, ""
	case *ast.RangeStmt:
		loopVar, _ := fl.Key.(*ast.Ident)
		x, ok := fl.X.(*ast.Ident)
		if !ok || p.r.pkg.Info.Uses[x] != types.Object(c.obj) || fl.Value != nil || fl.Tok != token.DEFINE {
			return nil, "", noLoop
		}
		colsText, ok := rowVar(fl.Body, loopVar)
		if !ok {
			return nil, "", noLoop
		}
		return fl, colsText, ""
	}
	return nil, "", noLoop
}

func (p *plan) mapDecl(c *candidate, ctor, argPrefix string, init ast.Expr, spec *ast.ValueSpec) string {
	var mt *ast.MapType
	var span ast.Expr
	if call := makeCall(init); call != nil {
		m, ok := call.Args[0].(*ast.MapType)
		if !ok {
			return "map not declared as make(map[K]V) or map[K]V{}"
		}
		mt, span = m, call // a make size hint carries no semantics; drop it
	} else if lit, ok := init.(*ast.CompositeLit); ok {
		m, isMap := lit.Type.(*ast.MapType)
		if !isMap {
			return "map not declared as make(map[K]V) or map[K]V{}"
		}
		if len(lit.Elts) != 0 {
			return "map literal with entries"
		}
		mt, span = m, lit
	} else {
		return "map not declared as make(map[K]V) or map[K]V{}"
	}
	c.key, c.val = p.r.text(mt.Key), p.r.text(mt.Value)
	p.varFormPrefix(c, init, spec)
	p.repl(span.Pos(), span.End(),
		ctor+"["+c.key+", "+c.val+"]("+strings.TrimSuffix(argPrefix, ", ")+")")
	return ""
}

func (p *plan) mutexDecl(c *candidate, ctor, first string, spec *ast.ValueSpec) string {
	if spec == nil || spec.Type == nil || len(spec.Values) != 0 {
		return "mutex not declared as var mu sync.Mutex"
	}
	sel, ok := spec.Type.(*ast.SelectorExpr)
	if !ok {
		return "mutex not declared as var mu sync.Mutex"
	}
	_ = sel
	p.repl(c.declStmt.Pos(), c.declStmt.End(), c.obj.Name()+" := "+ctor+"("+first+")")
	name, _ := p.r.offset(c.declStmt.Pos())
	p.erasedSync[name]++ // the sync.Mutex qualifier inside the replaced span
	return ""
}
