package rewrite

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"spd3/internal/analysis"
)

// A kind is the container a shared variable rewrites to.
type kind int

const (
	kindVar kind = iota
	kindArray
	kindMatrix
	kindMap
	kindMutex
)

func (k kind) String() string {
	switch k {
	case kindVar:
		return "Var"
	case kindArray:
		return "Array"
	case kindMatrix:
		return "Matrix"
	case kindMap:
		return "Map"
	case kindMutex:
		return "Mutex"
	}
	return "?"
}

// kindOf maps a variable's type to the container that replaces it.
// Matrix is recognized at the declaration (a [][]T make plus its init
// loop); here [][]T classifies as matrix and the planner decides
// whether the declaration pattern actually matches.
func kindOf(t types.Type) (kind, bool) {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if _, isBasic := t.(*types.Basic); !isBasic {
			return 0, false // named basic types keep their method sets; leave them
		}
		if u.Info()&(types.IsBoolean|types.IsNumeric|types.IsString) == 0 {
			return 0, false
		}
		return kindVar, true
	case *types.Slice:
		if inner, ok := u.Elem().Underlying().(*types.Slice); ok {
			_ = inner
			return kindMatrix, true
		}
		return kindArray, true
	case *types.Map:
		return kindMap, true
	case *types.Struct:
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Mutex" {
				return kindMutex, true
			}
		}
	}
	return 0, false
}

// typeMentionsSpd3 reports whether t involves a type from this module
// (Engine, Ctx, the containers): such variables are already part of the
// instrumented world and are never rewrite candidates.
func typeMentionsSpd3(t types.Type) bool {
	return strings.Contains(types.TypeString(t, nil), "spd3")
}

// declaredOutside reports whether obj was declared outside lit, i.e.
// the closure captures it as a free variable.
func declaredOutside(lit *ast.FuncLit, obj types.Object) bool {
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}

// buildParents records the parent of every node in f.
func buildParents(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// A funcScope is one function body (declaration or literal) used to
// resolve the innermost function enclosing a position.
type funcScope struct {
	fd   *ast.FuncDecl // non-nil for declarations
	body *ast.BlockStmt
	ft   *ast.FuncType
}

// collectScopes gathers every function scope in the package.
func (r *rewriter) collectScopes() {
	for _, f := range r.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					r.scopes = append(r.scopes, funcScope{fd: n, body: n.Body, ft: n.Type})
				}
			case *ast.FuncLit:
				r.scopes = append(r.scopes, funcScope{body: n.Body, ft: n.Type})
			}
			return true
		})
	}
}

// innermost returns the tightest function scope containing pos.
func (r *rewriter) innermost(pos token.Pos) *funcScope {
	var best *funcScope
	for i := range r.scopes {
		s := &r.scopes[i]
		if s.body.Pos() <= pos && pos <= s.body.End() {
			if best == nil || s.body.Pos() > best.body.Pos() {
				best = s
			}
		}
	}
	return best
}

// An accessMode says how an access site reaches the detector.
type accessMode int

const (
	modeNone accessMode = iota
	// modeCtx: the site is in a function with a named *Ctx parameter;
	// accesses route through the instrumented methods.
	modeCtx
	// modeSeq: the site is directly in a driver function (one that
	// calls Engine.Run), outside every closure. Run blocks until the
	// computation drains, so such code is sequential with respect to
	// every task and may use the Unchecked escape hatches.
	modeSeq
)

// modeAt classifies the function scope around pos and returns the Ctx
// parameter name for modeCtx.
func (r *rewriter) modeAt(pos token.Pos) (accessMode, string) {
	sc := r.innermost(pos)
	if sc == nil {
		return modeNone, ""
	}
	if name := analysis.CtxParamName(r.pkg.Info, sc.ft); name != "" {
		return modeCtx, name
	}
	if sc.fd != nil {
		if _, ok := r.drivers[sc.fd]; ok {
			return modeSeq, ""
		}
	}
	return modeNone, ""
}

// collectDrivers finds every function declaration that calls
// Engine.Run and the (single) *spd3.Engine variable visible in it. A
// driver with zero or several engine variables maps to "".
func (r *rewriter) collectDrivers() {
	r.drivers = make(map[*ast.FuncDecl]string)
	for _, f := range r.pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			runs := false
			engines := make(map[types.Object]bool)
			var engineName string
			ast.Inspect(fd, func(n ast.Node) bool {
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false // engine vars inside closures are not in driver scope
				}
				switch n := n.(type) {
				case *ast.CallExpr:
					if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Run" {
						if tv, ok := r.pkg.Info.Types[sel.X]; ok && analysis.IsEngine(tv.Type) {
							runs = true
						}
					}
				case *ast.Ident:
					if obj, ok := r.pkg.Info.Defs[n]; ok && obj != nil {
						if v, ok := obj.(*types.Var); ok && analysis.IsEngine(v.Type()) {
							if !engines[obj] {
								engines[obj] = true
								engineName = n.Name
							}
						}
					}
				}
				return true
			})
			if runs {
				if len(engines) == 1 {
					r.drivers[fd] = engineName
				} else {
					r.drivers[fd] = ""
				}
			}
		}
	}
}

// isWriteLike reports whether the use id of a variable of kind k could
// store to (or alias) the variable. Anything not provably a pure read
// counts: the planner later turns unsupported-but-write-like uses into
// skip diagnostics rather than silently leaving them uninstrumented.
func isWriteLike(k kind, id *ast.Ident, parents map[ast.Node]ast.Node) bool {
	if k == kindMutex {
		return true // Lock/Unlock are always relevant
	}
	switch p := parents[id].(type) {
	case *ast.UnaryExpr:
		return p.Op == token.AND
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == id {
				return true
			}
		}
		// On the right-hand side: a scalar is copied (read); a slice or
		// map is aliased, and the alias may be written later.
		return k != kindVar
	case *ast.IncDecStmt:
		return true
	case *ast.SendStmt:
		return true
	case *ast.IndexExpr:
		if p.X != id {
			return false // id is someone else's index: a read
		}
		top := ast.Expr(p)
		if pp, ok := parents[top].(*ast.IndexExpr); ok && pp.X == top {
			top = pp
		}
		switch q := parents[top].(type) {
		case *ast.AssignStmt:
			for _, lhs := range q.Lhs {
				if lhs == top {
					return true
				}
			}
		case *ast.IncDecStmt:
			return true
		case *ast.UnaryExpr:
			return q.Op == token.AND
		}
		return false
	case *ast.CallExpr:
		if name, ok := builtinName(p.Fun, parents); ok {
			switch name {
			case "len", "cap":
				return false
			case "delete":
				return len(p.Args) > 0 && p.Args[0] == id
			}
		}
		if p.Fun == id {
			return false // calling a captured func value: a read of it
		}
		// Passed as an argument: the callee may write or retain it. A
		// scalar is copied; everything else is conservatively a write.
		return k != kindVar
	case *ast.RangeStmt:
		return false
	case *ast.SelectorExpr:
		return true // method call or field access on the value: unknown
	}
	return k != kindVar
}

// builtinName returns the name of fun when it resolves to a Go
// builtin.
func builtinName(fun ast.Expr, parents map[ast.Node]ast.Node) (string, bool) {
	_ = parents
	id, ok := fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	switch id.Name {
	case "len", "cap", "delete", "append", "copy", "make", "new":
		return id.Name, true
	}
	return "", false
}

// A candidate is one shared variable the rewriter will try to convert.
type candidate struct {
	obj  *types.Var
	kind kind
	// name is the container name, "<func>.<var>".
	name string
	// capturedAt is where a spawned closure first captures the
	// variable, for diagnostics when the declaration cannot be found.
	capturedAt token.Pos

	// Declaration site, filled by findDecl.
	declIdent *ast.Ident
	declStmt  ast.Node // *ast.AssignStmt, *ast.DeclStmt, or *ast.GenDecl

	// Type component texts for constructor spelling, filled by the
	// declaration planner.
	elem, key, val string
	// initLoop is the matched [][]T initialization loop (deleted).
	initLoop ast.Stmt
}

// collectCandidates finds every variable that (a) is captured by a
// spawned task closure and (b) is written — or not provably read-only —
// inside some task closure. Variables the tasks only read need no
// instrumentation: a racing pair needs a write, and driver-side writes
// are ordered before and after the whole computation (the static
// read-only check elimination of PAPER §5.5).
func (r *rewriter) collectCandidates() {
	captured := make(map[*types.Var]token.Pos)
	closures := analysis.TaskClosures(r.pkg)
	for _, tc := range closures {
		if !tc.Spawned {
			continue
		}
		ast.Inspect(tc.Lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := r.pkg.Info.Uses[id].(*types.Var)
			if !ok || v.IsField() || !declaredOutside(tc.Lit, v) {
				return true
			}
			if typeMentionsSpd3(v.Type()) {
				return true
			}
			if _, ok := captured[v]; !ok {
				captured[v] = id.Pos()
			}
			return true
		})
	}

	written := make(map[*types.Var]bool)
	for _, tc := range closures {
		file := r.fileOf(tc.Lit.Pos())
		if file == nil {
			continue
		}
		parents := r.parents[file]
		ast.Inspect(tc.Lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := r.pkg.Info.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			if _, isCand := captured[v]; !isCand {
				return true
			}
			k, ok := kindOf(v.Type())
			if ok && isWriteLike(k, id, parents) {
				written[v] = true
			}
			if !ok {
				// Unclassifiable type: stay conservative so the planner
				// reports it rather than silently leaving it shared.
				if isWriteLike(kindArray, id, parents) {
					written[v] = true
				}
			}
			return true
		})
	}

	for v, pos := range captured {
		k, ok := kindOf(v.Type())
		if !ok {
			if written[v] {
				r.skipAt(pos, v.Name(), "unsupported shared type "+v.Type().String())
			}
			continue
		}
		if k != kindMutex && !written[v] {
			continue // task-read-only: provably race-free, leave it
		}
		r.cands = append(r.cands, &candidate{obj: v, kind: k, capturedAt: pos})
	}
}

// isCandidateObj reports whether obj is one of the rewrite candidates
// (used to guard source text the planner copies out of place).
func (r *rewriter) isCandidateObj(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	for _, c := range r.cands {
		if c.obj == v {
			return true
		}
	}
	return false
}

// containsCandidateUse reports whether expr mentions any rewrite
// candidate; such expressions must not be copied textually.
func (r *rewriter) containsCandidateUse(expr ast.Node) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj, ok := r.pkg.Info.Uses[id]; ok && r.isCandidateObj(obj) {
				found = true
			}
		}
		return !found
	})
	return found
}

// findDecl locates the declaration of c's variable and validates its
// shape. It returns a skip reason when the declaration form is not
// rewritable.
func (r *rewriter) findDecl(c *candidate) string {
	if c.obj.Parent() == r.pkg.Types.Scope() {
		return "package-level variable; declare it in the driver function"
	}
	var declID *ast.Ident
	var declFile *ast.File
	for _, f := range r.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && declID == nil {
				if r.pkg.Info.Defs[id] == c.obj {
					declID = id
					declFile = f
				}
			}
			return declID == nil
		})
		if declID != nil {
			break
		}
	}
	if declID == nil {
		return "declaration not found"
	}
	c.declIdent = declID
	parents := r.parents[declFile]
	switch p := parents[declID].(type) {
	case *ast.AssignStmt:
		if p.Tok != token.DEFINE {
			return "declaration not found"
		}
		if len(p.Lhs) != 1 || len(p.Rhs) != 1 {
			return "multi-variable declaration"
		}
		c.declStmt = p
	case *ast.ValueSpec:
		gd, ok := parents[p].(*ast.GenDecl)
		if !ok || len(gd.Specs) != 1 || len(p.Names) != 1 {
			return "grouped declaration"
		}
		if ds, ok := parents[gd].(*ast.DeclStmt); ok {
			c.declStmt = ds
		} else {
			c.declStmt = gd
		}
	case *ast.Field:
		return "function parameter"
	case *ast.RangeStmt:
		return "range variable"
	default:
		return "unsupported declaration form"
	}
	// Container name: "<enclosing function>.<var>".
	fn := "pkg"
	for i := range r.scopes {
		s := &r.scopes[i]
		if s.fd != nil && s.body.Pos() <= declID.Pos() && declID.Pos() <= s.body.End() {
			fn = s.fd.Name.Name
		}
	}
	c.name = fn + "." + c.obj.Name()
	return ""
}
