package rewrite

import (
	"go/ast"
	"go/token"
	"strings"
)

// useEdits plans the rewrite of every use of c's variable. The first
// use that cannot be converted soundly aborts the whole candidate with
// a reason.
func (p *plan) useEdits(c *candidate) string {
	for _, f := range p.r.pkg.Files {
		parents := p.r.parents[f]
		reason := ""
		ast.Inspect(f, func(n ast.Node) bool {
			if reason != "" {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if p.r.pkg.Info.Uses[id] != c.obj {
				return true
			}
			if c.initLoop != nil && id.Pos() >= c.initLoop.Pos() && id.Pos() <= c.initLoop.End() {
				return true // the deleted row-initialization loop
			}
			reason = p.useEdit(c, id, parents)
			return true
		})
		if reason != "" {
			return reason
		}
	}
	return ""
}

// useEdit plans one use site.
func (p *plan) useEdit(c *candidate, id *ast.Ident, parents map[ast.Node]ast.Node) string {
	mode, ctx := p.r.modeAt(id.Pos())
	if mode == modeNone {
		return "use at " + p.r.at(id.Pos()) + " is in a function without a task context " +
			"(plain closure or helper); the access cannot be attributed to a task"
	}
	switch c.kind {
	case kindVar:
		return p.varUse(c, id, parents, mode, ctx)
	case kindArray:
		return p.arrayUse(c, id, parents, mode, ctx)
	case kindMatrix:
		return p.matrixUse(c, id, parents, mode, ctx)
	case kindMap:
		return p.mapUse(c, id, parents, mode, ctx)
	case kindMutex:
		return p.mutexUse(c, id, parents, mode, ctx)
	}
	return "unsupported kind"
}

// opText returns the operator of an op-assign token ("+=" -> "+").
func opText(tok token.Token) string { return strings.TrimSuffix(tok.String(), "=") }

// lhsContains reports whether e appears on the left side of as.
func lhsContains(as *ast.AssignStmt, e ast.Expr) bool {
	for _, lhs := range as.Lhs {
		if lhs == e {
			return true
		}
	}
	return false
}

// containsIdentNamed reports whether n mentions an identifier name
// (used to guard closure parameter names injected by Update rewrites).
func containsIdentNamed(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isLenCall reports whether call is len(id).
func isLenCall(call *ast.CallExpr, arg ast.Expr) bool {
	fn, ok := call.Fun.(*ast.Ident)
	return ok && fn.Name == "len" && len(call.Args) == 1 && call.Args[0] == arg
}

func (p *plan) varUse(c *candidate, id *ast.Ident, parents map[ast.Node]ast.Node, mode accessMode, ctx string) string {
	if mode == modeSeq {
		if u, ok := parents[id].(*ast.UnaryExpr); ok && u.Op == token.AND {
			return "address taken at " + p.r.at(id.Pos())
		}
		p.repl(id.Pos(), id.End(), "(*"+id.Name+".Unchecked())")
		return ""
	}
	switch par := parents[id].(type) {
	case *ast.AssignStmt:
		if !lhsContains(par, id) {
			break // a read on the right-hand side
		}
		if par.Tok == token.DEFINE {
			break // shadowing define of the same name resolves elsewhere
		}
		if len(par.Lhs) != 1 || len(par.Rhs) != 1 {
			return "multi-assignment at " + p.r.at(par.Pos())
		}
		rhs := par.Rhs[0]
		if par.Tok == token.ASSIGN {
			p.repl(id.Pos(), rhs.Pos(), id.Name+".Set("+ctx+", ")
			p.ins(rhs.End(), ")")
			return ""
		}
		p.repl(id.Pos(), rhs.Pos(), id.Name+".Set("+ctx+", "+id.Name+".Get("+ctx+") "+opText(par.Tok)+" (")
		p.ins(rhs.End(), "))")
		return ""
	case *ast.IncDecStmt:
		op := "+"
		if par.Tok == token.DEC {
			op = "-"
		}
		p.repl(par.Pos(), par.End(), id.Name+".Set("+ctx+", "+id.Name+".Get("+ctx+")"+op+"1)")
		return ""
	case *ast.UnaryExpr:
		if par.Op == token.AND {
			return "address taken at " + p.r.at(id.Pos())
		}
	}
	p.repl(id.Pos(), id.End(), id.Name+".Get("+ctx+")")
	return ""
}

func (p *plan) arrayUse(c *candidate, id *ast.Ident, parents map[ast.Node]ast.Node, mode accessMode, ctx string) string {
	par := parents[id]
	if u, ok := par.(*ast.UnaryExpr); ok && u.Op == token.AND {
		return "address taken at " + p.r.at(id.Pos())
	}
	if as, ok := par.(*ast.AssignStmt); ok && lhsContains(as, id) && as.Tok != token.DEFINE {
		return "slice header reassigned at " + p.r.at(id.Pos())
	}
	if mode == modeSeq {
		// Driver code is sequential; the raw slice is safe everywhere.
		p.repl(id.Pos(), id.End(), id.Name+".Unchecked()")
		return ""
	}
	switch par := par.(type) {
	case *ast.IndexExpr:
		if par.X != id {
			break // id is the index of another expression: a plain read below
		}
		return p.indexedUse(c, id, par, nil, parents, ctx, c.elem)
	case *ast.CallExpr:
		if isLenCall(par, id) {
			p.repl(par.Pos(), par.End(), id.Name+".Len()")
			return ""
		}
		return "passed as an argument at " + p.r.at(id.Pos())
	case *ast.RangeStmt:
		if par.X == id {
			return p.sliceRange(c, id, par, ctx)
		}
	case *ast.AssignStmt:
		if !lhsContains(par, id) {
			return "slice aliased at " + p.r.at(id.Pos())
		}
	case *ast.SliceExpr:
		return "sliced at " + p.r.at(id.Pos())
	}
	return "unsupported use at " + p.r.at(id.Pos())
}

// indexedUse rewrites x[i] (j == nil) or x[i][j] accesses: reads to
// Get, plain stores to Set, compound stores to Update.
func (p *plan) indexedUse(c *candidate, id *ast.Ident, p1 *ast.IndexExpr, p2 *ast.IndexExpr, parents map[ast.Node]ast.Node, ctx, elem string) string {
	top := ast.Expr(p1)
	idxArgs := func(method string) {
		p.repl(id.Pos(), p1.Index.Pos(), id.Name+"."+method+"("+ctx+", ")
		if p2 != nil {
			p.repl(p1.Index.End(), p2.Index.Pos(), ", ")
		}
	}
	lastIdx := p1.Index
	if p2 != nil {
		top = p2
		lastIdx = p2.Index
	}
	switch g := parents[top].(type) {
	case *ast.AssignStmt:
		if !lhsContains(g, top) {
			break
		}
		if len(g.Lhs) != 1 || len(g.Rhs) != 1 {
			return "multi-assignment at " + p.r.at(g.Pos())
		}
		rhs := g.Rhs[0]
		if g.Tok == token.ASSIGN {
			idxArgs("Set")
			p.repl(lastIdx.End(), rhs.Pos(), ", ")
			p.ins(rhs.End(), ")")
			return ""
		}
		if containsIdentNamed(rhs, "old") {
			return "compound assignment at " + p.r.at(g.Pos()) + " uses the identifier \"old\""
		}
		idxArgs("Update")
		p.repl(lastIdx.End(), rhs.Pos(), ", func(old "+elem+") "+elem+" { return old "+opText(g.Tok)+" (")
		p.ins(rhs.End(), ") })")
		return ""
	case *ast.IncDecStmt:
		op := "+"
		if g.Tok == token.DEC {
			op = "-"
		}
		idxArgs("Update")
		p.repl(lastIdx.End(), g.End(), ", func(old "+elem+") "+elem+" { return old "+op+" 1 })")
		return ""
	case *ast.UnaryExpr:
		if g.Op == token.AND {
			return "address of element taken at " + p.r.at(g.Pos())
		}
	}
	idxArgs("Get")
	p.repl(lastIdx.End(), top.End(), ")")
	return ""
}

// sliceRange rewrites `for i[, v] := range x` over an instrumented
// array into a range over x.Len() with an explicit Get for the value.
func (p *plan) sliceRange(c *candidate, id *ast.Ident, rng *ast.RangeStmt, ctx string) string {
	if rng.Tok == token.ASSIGN {
		return "range with assignment at " + p.r.at(rng.Pos())
	}
	if rng.Key == nil {
		// for range x
		p.repl(id.Pos(), id.End(), id.Name+".Len()")
		return ""
	}
	if rng.Value == nil || isBlank(rng.Value) {
		p.repl(id.Pos(), id.End(), id.Name+".Len()")
		if rng.Value != nil {
			p.repl(rng.Key.End(), rng.Value.End(), "")
		}
		return ""
	}
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok {
		return "unsupported range at " + p.r.at(rng.Pos())
	}
	valID, ok := rng.Value.(*ast.Ident)
	if !ok {
		return "unsupported range at " + p.r.at(rng.Pos())
	}
	keyName := keyID.Name
	if keyName == "_" {
		keyName = "ri"
		if containsIdentNamed(rng, "ri") {
			return "range at " + p.r.at(rng.Pos()) + " needs a fresh index name but \"ri\" is taken"
		}
		p.repl(keyID.Pos(), keyID.End(), keyName)
	}
	p.repl(rng.Key.End(), rng.Value.End(), "")
	p.repl(id.Pos(), id.End(), id.Name+".Len()")
	p.ins(rng.Body.Lbrace+1, "\n"+valID.Name+" := "+id.Name+".Get("+ctx+", "+keyName+")\n")
	return ""
}

func (p *plan) matrixUse(c *candidate, id *ast.Ident, parents map[ast.Node]ast.Node, mode accessMode, ctx string) string {
	par := parents[id]
	if u, ok := par.(*ast.UnaryExpr); ok && u.Op == token.AND {
		return "address taken at " + p.r.at(id.Pos())
	}
	if as, ok := par.(*ast.AssignStmt); ok && lhsContains(as, id) && as.Tok != token.DEFINE {
		return "matrix reassigned at " + p.r.at(id.Pos())
	}
	switch par := par.(type) {
	case *ast.IndexExpr:
		if par.X != id {
			break
		}
		p2, ok := parents[par].(*ast.IndexExpr)
		if !ok || p2.X != par {
			// x[i] alone: only len(x[i]) is meaningful.
			if call, isCall := parents[par].(*ast.CallExpr); isCall && isLenCall(call, par) {
				switch par.Index.(type) {
				case *ast.Ident, *ast.BasicLit:
					p.repl(call.Pos(), call.End(), id.Name+".Cols()")
					return ""
				}
				return "len of a row with a complex index at " + p.r.at(par.Pos())
			}
			return "row used as a slice at " + p.r.at(par.Pos())
		}
		if mode == modeSeq {
			// x[i][j] -> x.UncheckedRow(i)[j]; works for reads and writes.
			p.repl(id.Pos(), par.Index.Pos(), id.Name+".UncheckedRow(")
			p.repl(par.Index.End(), p2.Index.Pos(), ")[")
			return ""
		}
		return p.indexedUse(c, id, par, p2, parents, ctx, c.elem)
	case *ast.CallExpr:
		if isLenCall(par, id) {
			p.repl(par.Pos(), par.End(), id.Name+".Rows()")
			return ""
		}
		return "passed as an argument at " + p.r.at(id.Pos())
	case *ast.RangeStmt:
		if par.X == id {
			if par.Tok == token.ASSIGN || (par.Value != nil && !isBlank(par.Value)) {
				return "range over matrix rows at " + p.r.at(par.Pos())
			}
			p.repl(id.Pos(), id.End(), id.Name+".Rows()")
			if par.Value != nil {
				p.repl(par.Key.End(), par.Value.End(), "")
			}
			return ""
		}
	case *ast.AssignStmt:
		if !lhsContains(par, id) {
			return "matrix aliased at " + p.r.at(id.Pos())
		}
	}
	return "unsupported use at " + p.r.at(id.Pos())
}

func (p *plan) mapUse(c *candidate, id *ast.Ident, parents map[ast.Node]ast.Node, mode accessMode, ctx string) string {
	par := parents[id]
	if u, ok := par.(*ast.UnaryExpr); ok && u.Op == token.AND {
		return "address taken at " + p.r.at(id.Pos())
	}
	if as, ok := par.(*ast.AssignStmt); ok && lhsContains(as, id) && as.Tok != token.DEFINE {
		return "map reassigned at " + p.r.at(id.Pos())
	}
	if mode == modeSeq {
		return p.seqMapUse(c, id, parents)
	}
	switch par := par.(type) {
	case *ast.IndexExpr:
		if par.X != id {
			break
		}
		g := parents[par]
		// v, ok := x[k]
		if as, ok := g.(*ast.AssignStmt); ok && !lhsContains(as, par) &&
			len(as.Rhs) == 1 && as.Rhs[0] == ast.Expr(par) && len(as.Lhs) == 2 {
			p.repl(id.Pos(), par.Index.Pos(), id.Name+".Lookup("+ctx+", ")
			p.repl(par.Index.End(), par.End(), ")")
			return ""
		}
		switch g := g.(type) {
		case *ast.AssignStmt:
			if !lhsContains(g, par) {
				break
			}
			if len(g.Lhs) != 1 || len(g.Rhs) != 1 {
				return "multi-assignment at " + p.r.at(g.Pos())
			}
			rhs := g.Rhs[0]
			if g.Tok == token.ASSIGN {
				p.repl(id.Pos(), par.Index.Pos(), id.Name+".Set("+ctx+", ")
				p.repl(par.Index.End(), rhs.Pos(), ", ")
				p.ins(rhs.End(), ")")
				return ""
			}
			if containsIdentNamed(rhs, "old") {
				return "compound assignment at " + p.r.at(g.Pos()) + " uses the identifier \"old\""
			}
			p.repl(id.Pos(), par.Index.Pos(), id.Name+".Update("+ctx+", ")
			p.repl(par.Index.End(), rhs.Pos(), ", func(old "+c.val+") "+c.val+" { return old "+opText(g.Tok)+" (")
			p.ins(rhs.End(), ") })")
			return ""
		case *ast.IncDecStmt:
			op := "+"
			if g.Tok == token.DEC {
				op = "-"
			}
			p.repl(id.Pos(), par.Index.Pos(), id.Name+".Update("+ctx+", ")
			p.repl(par.Index.End(), g.End(), ", func(old "+c.val+") "+c.val+" { return old "+op+" 1 })")
			return ""
		}
		// Plain read.
		p.repl(id.Pos(), par.Index.Pos(), id.Name+".Get("+ctx+", ")
		p.repl(par.Index.End(), par.End(), ")")
		return ""
	case *ast.CallExpr:
		if isLenCall(par, id) {
			p.repl(par.Pos(), par.End(), id.Name+".Len("+ctx+")")
			return ""
		}
		if fn, ok := par.Fun.(*ast.Ident); ok && fn.Name == "delete" && len(par.Args) == 2 && par.Args[0] == ast.Expr(id) {
			p.repl(par.Pos(), par.Args[1].Pos(), id.Name+".Delete("+ctx+", ")
			return ""
		}
		return "passed as an argument at " + p.r.at(id.Pos())
	case *ast.RangeStmt:
		if par.X == id {
			return "range over a shared map at " + p.r.at(par.Pos()) + "; use explicit keys or Range by hand"
		}
	}
	return "unsupported use at " + p.r.at(id.Pos())
}

// seqMapUse handles driver-scope map uses: reads go through the
// Unchecked copy; writes would be lost on a copy, so they skip.
func (p *plan) seqMapUse(c *candidate, id *ast.Ident, parents map[ast.Node]ast.Node) string {
	switch par := parents[id].(type) {
	case *ast.IndexExpr:
		if par.X == id {
			switch g := parents[par].(type) {
			case *ast.AssignStmt:
				if lhsContains(g, par) {
					return "map written in driver scope at " + p.r.at(id.Pos()) +
						" (Unchecked returns a copy); move the write into the run"
				}
			case *ast.IncDecStmt:
				return "map written in driver scope at " + p.r.at(id.Pos())
			}
		}
	case *ast.CallExpr:
		if fn, ok := par.Fun.(*ast.Ident); ok && fn.Name == "delete" && len(par.Args) > 0 && par.Args[0] == ast.Expr(id) {
			return "map written in driver scope at " + p.r.at(id.Pos())
		}
	}
	p.repl(id.Pos(), id.End(), id.Name+".Unchecked()")
	return ""
}

func (p *plan) mutexUse(c *candidate, id *ast.Ident, parents map[ast.Node]ast.Node, mode accessMode, ctx string) string {
	sel, ok := parents[id].(*ast.SelectorExpr)
	if !ok || sel.X != ast.Expr(id) {
		return "unsupported mutex use at " + p.r.at(id.Pos())
	}
	call, ok := parents[sel].(*ast.CallExpr)
	if !ok || call.Fun != ast.Expr(sel) || len(call.Args) != 0 {
		return "unsupported mutex use at " + p.r.at(id.Pos())
	}
	if sel.Sel.Name != "Lock" && sel.Sel.Name != "Unlock" {
		return "unsupported mutex method " + sel.Sel.Name + " at " + p.r.at(id.Pos())
	}
	if mode != modeCtx {
		return "mutex locked outside a task body at " + p.r.at(id.Pos())
	}
	p.ins(call.Rparen, ctx)
	return ""
}
