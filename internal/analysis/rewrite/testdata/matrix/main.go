// Fixture: shared [][]int declared with the make-plus-row-loop idiom,
// written by a parallel loop.
package main

import (
	"fmt"

	"spd3"
)

func main() {
	eng, err := spd3.New(spd3.Options{Workers: 2})
	if err != nil {
		panic(err)
	}
	const rows, cols = 4, 3
	grid := make([][]int, rows)
	for i := 0; i < rows; i++ {
		grid[i] = make([]int, cols)
	}
	if _, err := eng.Run(func(c *spd3.Ctx) {
		c.ParallelFor(0, rows, 1, func(c *spd3.Ctx, i int) {
			for j := 0; j < len(grid[i]); j++ {
				grid[i][j] = i * j
				grid[i][j]++
			}
		})
	}); err != nil {
		panic(err)
	}
	fmt.Println(len(grid), grid[1][2])
}
