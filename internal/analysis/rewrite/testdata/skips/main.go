// Fixture: shared variables the rewriter must refuse — one escapes to
// an unknown callee, one is used inside a plain closure, and one is
// opted out by hand.
package main

import (
	"fmt"

	"spd3"
)

func consume(xs []int) int { return xs[0] }

func main() {
	eng, err := spd3.New(spd3.Options{Workers: 2})
	if err != nil {
		panic(err)
	}
	shared := make([]int, 4)
	//spd3inst:skip keep raw for the cgo call
	opted := make([]int, 4)
	lost := 0
	if _, err := eng.Run(func(c *spd3.Ctx) {
		c.Async(func(c *spd3.Ctx) {
			shared[0] = consume(shared)
			opted[1] = 2
			lost++
		})
		report := func() {
			fmt.Println(lost)
		}
		report()
		c.Finish(func(c *spd3.Ctx) {})
	}); err != nil {
		panic(err)
	}
	fmt.Println(shared[0], opted[1], lost)
}
