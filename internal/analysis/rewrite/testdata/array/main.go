// Fixture: shared 1-D slice and scalar, accessed from spawned tasks
// and from driver code around the run.
package main

import (
	"fmt"

	"spd3"
)

func main() {
	eng, err := spd3.New(spd3.Options{Workers: 4})
	if err != nil {
		panic(err)
	}
	n := 8
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i)
	}
	var sum float64
	total := 0.0
	if _, err := eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(4, func(c *spd3.Ctx, p int) {
			for i := p; i < len(data); i += 4 {
				data[i] *= 2
				sum += data[i]
			}
		})
		total = sum
	}); err != nil {
		panic(err)
	}
	fmt.Println(sum, total, data[0])
}
