// Fixture: a run with no spawned tasks. Nothing is shared across a
// spawn boundary, so the rewriter must leave every byte alone.
package main

import (
	"fmt"

	"spd3"
)

func main() {
	eng, err := spd3.New(spd3.Options{Workers: 1})
	if err != nil {
		panic(err)
	}
	xs := make([]int, 3)
	if _, err := eng.Run(func(c *spd3.Ctx) {
		for i := range xs {
			xs[i] = i * i
		}
	}); err != nil {
		panic(err)
	}
	fmt.Println(xs)
}
