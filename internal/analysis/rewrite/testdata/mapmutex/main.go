// Fixture: shared map guarded by a sync.Mutex; both rewrite, and the
// sync import goes away with the mutex.
package main

import (
	"fmt"
	"sync"

	"spd3"
)

func main() {
	eng, err := spd3.New(spd3.Options{Workers: 4})
	if err != nil {
		panic(err)
	}
	counts := make(map[string]int)
	var mu sync.Mutex
	words := []string{"a", "b", "a", "c"}
	if _, err := eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(len(words), func(c *spd3.Ctx, i int) {
			w := words[i]
			mu.Lock()
			counts[w]++
			mu.Unlock()
		})
	}); err != nil {
		panic(err)
	}
	fmt.Println(len(counts), counts["a"])
}
