// Package rewrite implements spd3inst's source-to-source instrumenter.
//
// The input is a plain Go program that already uses spd3 for task
// *structure* — Engine.Run, Ctx.Async/FinishAsync/ParallelFor — but
// plain Go for *data*: slices, scalars, maps, sync.Mutex. The output is
// the same program with every shared mutable datum re-declared as an
// instrumented container (spd3.Array/Matrix/Var/Map/Mutex) and every
// access routed through the detector, so the dynamic race detector's
// soundness guarantee (PAPER §3) covers the whole program.
//
// Classification is static, via go/types:
//
//   - A variable is *shared* when a spawned task closure (Async,
//     FinishAsync, ParallelFor body) captures it as a free variable.
//   - A shared variable needs instrumentation when some use inside a
//     task closure is a write, or is not provably a read. Shared
//     variables the tasks only read are left untouched: a race needs a
//     write, and driver-side writes are ordered before and after the
//     run — this is the static read-only check elimination of PAPER
//     §5.5, applied at variable granularity.
//
// Rewriting is all-or-nothing per variable. If any single use has a
// shape the rewriter cannot convert soundly (address taken, slice
// aliased, passed to an unknown callee, ...), the variable is left
// exactly as written and a skip diagnostic is recorded; the rewriter
// also inserts the reason into the output as a directive comment:
//
//	//spd3inst:skip <reason>
//
// The same directive, written by hand on (or one line above) a
// declaration, opts that variable out silently — which also makes the
// tool idempotent, since re-running it over its own output re-reads the
// directives it emitted.
//
// Access sites are rewritten according to where they run:
//
//   - inside a function with a named *spd3.Ctx parameter, through the
//     instrumented methods (Get/Set/Update/...), using that context;
//   - directly in a *driver* function — one that calls Engine.Run —
//     outside every closure, through the Unchecked escape hatches.
//     Engine.Run blocks until the computation drains, so driver code is
//     sequential with respect to every task and needs no checks;
//   - anywhere else (a plain closure under a task body, a helper
//     function with no context), the rewrite would misattribute the
//     access to the wrong task, so the variable is skipped instead.
package rewrite

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"

	"spd3/internal/analysis"
)

// Directive is the comment prefix that opts a declaration out of
// rewriting; the rewriter also emits it with a reason when it skips a
// variable itself.
const Directive = "//spd3inst:skip"

// A Rewritten records one converted variable.
type Rewritten struct {
	Var       string // source variable name
	Container string // container name passed to the constructor
	Kind      string // Array, Matrix, Var, Map, Mutex
	Pos       token.Pos
}

// A Skip records one shared variable left untouched, with the reason.
type Skip struct {
	Var    string
	Reason string
	Pos    token.Pos
}

// A Result is the outcome of rewriting one package.
type Result struct {
	// Package is the package's import path.
	Package string
	// Files maps filename to full rewritten content, for files that
	// changed. Unchanged files are absent.
	Files map[string][]byte
	// Rewritten lists the converted variables in declaration order.
	Rewritten []Rewritten
	// Skips lists shared variables that could not be converted.
	Skips []Skip
}

// Rewrite instruments pkg and returns the rewritten file contents.
// Nothing is written to disk.
func Rewrite(pkg *analysis.Package) (*Result, error) {
	if len(pkg.TypeErrors) > 0 {
		return nil, fmt.Errorf("rewrite: %s does not type-check: %v", pkg.Path, pkg.TypeErrors[0])
	}
	r := &rewriter{
		pkg:        pkg,
		parents:    make(map[*ast.File]map[ast.Node]ast.Node),
		edits:      make(map[string][]edit),
		src:        make(map[string][]byte),
		erasedSync: make(map[string]int),
		needsSpd3:  make(map[string]bool),
		res:        &Result{Package: pkg.Path, Files: make(map[string][]byte)},
	}
	for _, f := range pkg.Files {
		r.parents[f] = buildParents(f)
		name := pkg.Fset.Position(f.Pos()).Filename
		src, err := readFile(name)
		if err != nil {
			return nil, fmt.Errorf("rewrite: %w", err)
		}
		r.src[name] = src
	}
	r.collectScopes()
	r.collectDrivers()
	r.collectCandidates()
	sort.Slice(r.cands, func(i, j int) bool { return r.cands[i].obj.Pos() < r.cands[j].obj.Pos() })
	for _, c := range r.cands {
		r.plan(c)
	}
	if err := r.apply(); err != nil {
		return nil, err
	}
	sort.Slice(r.res.Rewritten, func(i, j int) bool { return r.res.Rewritten[i].Pos < r.res.Rewritten[j].Pos })
	sort.Slice(r.res.Skips, func(i, j int) bool { return r.res.Skips[i].Pos < r.res.Skips[j].Pos })
	return r.res, nil
}

// A rewriter carries the per-package rewrite state.
type rewriter struct {
	pkg     *analysis.Package
	parents map[*ast.File]map[ast.Node]ast.Node
	scopes  []funcScope
	drivers map[*ast.FuncDecl]string // driver FuncDecl -> engine var name ("" if ambiguous)
	cands   []*candidate
	src     map[string][]byte
	edits   map[string][]edit
	// erasedSync counts sync-package qualifier uses removed per file,
	// to decide whether the sync import can be dropped.
	erasedSync map[string]int
	// needsSpd3 marks files whose rewrites reference the spd3 package.
	needsSpd3 map[string]bool
	res       *Result
}

// An edit replaces src[off:end) with text; off==end inserts.
type edit struct {
	off, end int
	text     string
}

// fileOf returns the syntax file containing pos.
func (r *rewriter) fileOf(pos token.Pos) *ast.File {
	for _, f := range r.pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// offset converts pos to a byte offset, with its filename.
func (r *rewriter) offset(pos token.Pos) (string, int) {
	p := r.pkg.Fset.Position(pos)
	return p.Filename, p.Offset
}

// textAt returns the source text of [pos, end).
func (r *rewriter) textAt(pos, end token.Pos) string {
	name, off := r.offset(pos)
	_, to := r.offset(end)
	return string(r.src[name][off:to])
}

// text returns the source text of n.
func (r *rewriter) text(n ast.Node) string { return r.textAt(n.Pos(), n.End()) }

// edit records a replacement of [pos, end) with text.
func (r *rewriter) edit(pos, end token.Pos, text string) edit {
	name, off := r.offset(pos)
	_, to := r.offset(end)
	_ = name
	return edit{off: off, end: to, text: text}
}

// commit adds edits to the file containing pos.
func (r *rewriter) commit(pos token.Pos, edits []edit) {
	name, _ := r.offset(pos)
	r.edits[name] = append(r.edits[name], edits...)
}

// lineStart returns the offset of the first byte of pos's line.
func (r *rewriter) lineStart(pos token.Pos) (string, int) {
	p := r.pkg.Fset.Position(pos)
	return p.Filename, p.Offset - (p.Column - 1)
}

// skipAt records a skip diagnostic with no associated declaration.
func (r *rewriter) skipAt(pos token.Pos, name, reason string) {
	r.res.Skips = append(r.res.Skips, Skip{Var: name, Reason: reason, Pos: pos})
}

// skip records a skip for candidate c and, when its declaration is
// known, inserts the directive comment above it so the reason survives
// in the output and re-runs stay silent.
func (r *rewriter) skip(c *candidate, reason string) {
	pos := c.capturedAt
	if c.declIdent != nil {
		pos = c.declIdent.Pos()
	}
	r.skipAt(pos, c.obj.Name(), reason)
	if c.declStmt != nil {
		name, off := r.lineStart(c.declStmt.Pos())
		r.edits[name] = append(r.edits[name], edit{off: off, end: off, text: Directive + " " + reason + "\n"})
	}
}

// hasDirective reports whether a spd3inst:skip comment sits on node's
// line or the line above.
func (r *rewriter) hasDirective(n ast.Node) bool {
	f := r.fileOf(n.Pos())
	if f == nil {
		return false
	}
	line := r.pkg.Fset.Position(n.Pos()).Line
	for _, cg := range f.Comments {
		for _, cmt := range cg.List {
			if !strings.HasPrefix(cmt.Text, strings.TrimPrefix(Directive, "//")) &&
				!strings.HasPrefix(cmt.Text, Directive) {
				continue
			}
			cl := r.pkg.Fset.Position(cmt.Pos()).Line
			if cl == line || cl == line-1 {
				return true
			}
		}
	}
	return false
}

// apply materializes the accumulated edits: per changed file, apply in
// offset order, fix imports, and gofmt.
func (r *rewriter) apply() error {
	for _, f := range r.pkg.Files {
		name := r.pkg.Fset.Position(f.Pos()).Filename
		edits := r.edits[name]
		if len(edits) == 0 {
			continue
		}
		edits = append(edits, r.importEdits(f, name)...)
		// Ascending order; ties put insertions before replacements so a
		// prefix inserted at an expression start lands before rewrites
		// of that expression's first token.
		sort.SliceStable(edits, func(i, j int) bool {
			if edits[i].off != edits[j].off {
				return edits[i].off < edits[j].off
			}
			return edits[i].end < edits[j].end
		})
		src := r.src[name]
		var out []byte
		last := 0
		for _, e := range edits {
			if e.off < last {
				continue // contained in an earlier replacement (e.g. a deleted init loop)
			}
			out = append(out, src[last:e.off]...)
			out = append(out, e.text...)
			last = e.end
		}
		out = append(out, src[last:]...)
		fmted, err := format.Source(out)
		if err != nil {
			return fmt.Errorf("rewrite: %s: generated invalid Go: %w", name, err)
		}
		r.res.Files[name] = fmted
	}
	return nil
}

// importEdits adds the spd3 import when the rewritten file needs it and
// drops the sync import when every use of it was erased.
func (r *rewriter) importEdits(f *ast.File, name string) []edit {
	var edits []edit
	hasSpd3 := false
	var syncSpec *ast.ImportSpec
	var syncDecl *ast.GenDecl
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		for _, spec := range gd.Specs {
			is := spec.(*ast.ImportSpec)
			switch is.Path.Value {
			case `"spd3"`:
				hasSpd3 = true
			case `"sync"`:
				syncSpec = is
				syncDecl = gd
			}
		}
	}
	if !hasSpd3 && r.needsSpd3[name] {
		_, off := r.offset(f.Name.End())
		edits = append(edits, edit{off: off, end: off, text: "\n\nimport \"spd3\""})
	}
	if syncSpec != nil && r.erasedSync[name] > 0 && r.erasedSync[name] >= r.syncUses(f) {
		target := ast.Node(syncSpec)
		if len(syncDecl.Specs) == 1 {
			target = syncDecl
		}
		_, from := r.lineStart(target.Pos())
		_, to := r.offset(target.End())
		src := r.src[name]
		for to < len(src) && src[to] != '\n' {
			to++
		}
		if to < len(src) {
			to++ // take the newline too
		}
		edits = append(edits, edit{off: from, end: to, text: ""})
	}
	return edits
}

// syncUses counts the uses of the sync package qualifier in f.
func (r *rewriter) syncUses(f *ast.File) int {
	n := 0
	ast.Inspect(f, func(node ast.Node) bool {
		if id, ok := node.(*ast.Ident); ok {
			if pn, ok := r.pkg.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "sync" {
				n++
			}
		}
		return true
	})
	return n
}

// readFile reads a source file; a variable so tests can interpose.
var readFile = os.ReadFile
