package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The spd3opt elision marker: checkelim's fixes rewrite a provably
// redundant checked access to its Unchecked form and stamp the line
// with
//
//	//spd3opt:elided dominated-by L<line>
//
// naming the dominating checked access. The unchecked analyzer trusts
// the marker: an Unchecked call on a marked line is a machine-written
// §5.5 elision backed by a same-step dominating check, not a
// programmer-opened soundness hole, so it is not flagged. Hand-writing
// the marker asserts the same proof obligation by hand — equivalent to
// a //spd3vet:ignore with the proof as the reason.
const ElidedMarker = "spd3opt:elided"

// elidedLines returns the set of lines in f carrying an elision marker
// (in fset coordinates). Unlike spd3vet:ignore directives the marker
// covers only its own line: fixes append it to the rewritten access's
// line, and trusting a neighbor would widen the hole.
func elidedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//"+ElidedMarker) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}
