package analysis

import (
	"strings"
	"testing"
)

func TestLoaderResolvesModulePackages(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("../mem")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Path != "spd3/internal/mem" {
		t.Errorf("import path = %q, want spd3/internal/mem", pkg.Path)
	}
	if len(pkg.TypeErrors) != 0 {
		t.Fatalf("type errors in internal/mem: %v", pkg.TypeErrors)
	}
	if pkg.Types == nil || pkg.Types.Scope().Lookup("Array") == nil {
		t.Error("mem.Array not in package scope")
	}
}

func TestLoaderPatternWalkSkipsTestdata(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 4 {
		t.Fatalf("loaded %d packages under internal/analysis, want 4 (analysis + atest + checkelim + rewrite, testdata skipped)", len(pkgs))
	}
	if pkgs[0].Path != "spd3/internal/analysis" {
		t.Errorf("path = %q", pkgs[0].Path)
	}
	for _, p := range pkgs {
		if strings.Contains(p.Dir, "testdata") {
			t.Errorf("pattern walk descended into %s", p.Dir)
		}
	}
}

func TestLoaderSharesDependencyAcrossTargets(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	a, err := loader.LoadDir("testdata/unchecked/bad")
	if err != nil {
		t.Fatal(err)
	}
	b, err := loader.LoadDir("testdata/ctxescape/bad")
	if err != nil {
		t.Fatal(err)
	}
	// Both fixtures import the root package; the loader must hand both
	// the same types.Package so cross-package identity checks hold.
	find := func(p *Package) any {
		for _, imp := range p.Types.Imports() {
			if imp.Path() == "spd3" {
				return imp
			}
		}
		return nil
	}
	if ia, ib := find(a), find(b); ia == nil || ia != ib {
		t.Errorf("spd3 imported as distinct packages: %v vs %v", ia, ib)
	}
}

func TestLoaderUnknownDir(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.LoadDir("testdata/nonexistent"); err == nil {
		t.Error("expected error for missing directory")
	}
}
