package analysis

import (
	"go/ast"
	"go/types"
)

// This file recognizes the spd3 API surface in type-checked syntax: the
// task context, the instrumented containers, and — most importantly —
// the call sites whose function-literal argument runs as a task body,
// possibly on a *different* task than the enclosing code. Those spawn
// boundaries are where the DPST forks (PAPER §3.1): data or contexts
// crossing them uninstrumented is exactly what voids the detector's
// guarantee.

// Import paths of the packages whose API the analyzers model. The root
// package re-exports the internal types as aliases, so recognizing the
// internal named types covers both spellings.
const (
	taskPkgPath   = "spd3/internal/task"
	memPkgPath    = "spd3/internal/mem"
	rootPkgPath   = "spd3"
	serverPkgPath = "spd3/internal/server"
)

// namedIn reports whether t (after stripping pointers and aliases) is
// the named type pkgPath.name, and returns the stripped named type.
func namedIn(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isCtx reports whether t is task.Ctx / *task.Ctx (a.k.a. spd3.Ctx).
func isCtx(t types.Type) bool { return namedIn(t, taskPkgPath, "Ctx") }

// isMemContainer reports whether t is (a pointer to) one of the
// instrumented containers in internal/mem.
func isMemContainer(t types.Type) bool {
	for _, name := range [...]string{"Array", "Matrix", "Var", "List", "Map"} {
		if namedIn(t, memPkgPath, name) {
			return true
		}
	}
	return false
}

// uncheckedMethods are the container escape hatches that bypass
// instrumentation (the programmer-directed §5.5 check eliminations).
var uncheckedMethods = map[string]bool{
	"Unchecked":    true,
	"UncheckedRow": true,
	"UncheckedAt":  true,
}

// recvType returns the type of a method call's receiver expression, or
// nil when the call is not a selector call or the receiver did not
// type-check.
func recvType(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return nil
	}
	return tv.Type
}

// isUncheckedCall reports whether call invokes one of the Unchecked*
// escape hatches on an instrumented container, returning the method
// name.
func isUncheckedCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !uncheckedMethods[sel.Sel.Name] {
		return "", false
	}
	if !isMemContainer(recvType(info, call)) {
		return "", false
	}
	return sel.Sel.Name, true
}

// A taskClosure is a function literal that executes as a task body.
type taskClosure struct {
	lit *ast.FuncLit
	// api is the spawning call ("Async", "ParallelFor", "Run", ...).
	api string
	// spawned is true when the literal runs as a *different* task than
	// the enclosing code (Async, FinishAsync, ParallelFor, Cilk.Spawn):
	// free variables of such a closure are shared across tasks. It is
	// false for bodies that run on the current task (Engine.Run,
	// Runtime.Run, Ctx.Finish, RunCilk), which still execute under the
	// detector and so matter to the rawconc analyzer.
	spawned bool
}

// closureArg describes where a task-body literal sits in an API call's
// argument list.
type closureArg struct {
	arg     int
	spawned bool
}

// Ctx methods taking a task-body literal, by method name.
var ctxBodyArgs = map[string]closureArg{
	"Async":       {arg: 0, spawned: true},
	"FinishAsync": {arg: 1, spawned: true},
	"ParallelFor": {arg: 3, spawned: true},
	"Finish":      {arg: 0, spawned: false},
}

// taskClosures finds every function literal in the pass that is passed
// directly to a task-body API call site.
func taskClosures(pass *Pass) []taskClosure {
	return findTaskClosures(pass.Files, pass.Info)
}

// findTaskClosures is the file/info form of taskClosures, shared with
// the exported TaskClosures surface the rewrite package builds on.
func findTaskClosures(files []*ast.File, info *types.Info) []taskClosure {
	var out []taskClosure
	add := func(call *ast.CallExpr, ca closureArg, api string) {
		if ca.arg >= len(call.Args) {
			return
		}
		if lit, ok := call.Args[ca.arg].(*ast.FuncLit); ok {
			out = append(out, taskClosure{lit: lit, api: api, spawned: ca.spawned})
		}
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			// Package-level RunCilk(c, body): body runs on the current
			// task.
			if name == "RunCilk" {
				if obj, ok := info.Uses[sel.Sel]; ok {
					if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil &&
						(fn.Pkg().Path() == taskPkgPath || fn.Pkg().Path() == rootPkgPath) && fn.Type().(*types.Signature).Recv() == nil {
						add(call, closureArg{arg: 1, spawned: false}, "RunCilk")
						return true
					}
				}
			}
			rt := recvType(info, call)
			if rt == nil {
				return true
			}
			switch {
			case isCtx(rt):
				if ca, ok := ctxBodyArgs[name]; ok {
					add(call, ca, name)
				}
			case namedIn(rt, taskPkgPath, "Cilk") && name == "Spawn":
				add(call, closureArg{arg: 0, spawned: true}, "Spawn")
			case (namedIn(rt, rootPkgPath, "Engine") || namedIn(rt, taskPkgPath, "Runtime")) && name == "Run":
				add(call, closureArg{arg: 0, spawned: false}, "Run")
			}
			return true
		})
	}
	return out
}

// TaskClosure is the exported form of a task-body function literal, for
// tools built on this package (the spd3inst rewriter).
type TaskClosure struct {
	// Lit is the function literal that runs as a task body.
	Lit *ast.FuncLit
	// API is the spawning call ("Async", "ParallelFor", "Run", ...).
	API string
	// Spawned is true when the literal runs as a different task than
	// the enclosing code, so its free variables are shared across
	// tasks.
	Spawned bool
}

// TaskClosures finds every function literal in pkg that is passed
// directly to a task-body API call site.
func TaskClosures(pkg *Package) []TaskClosure {
	var out []TaskClosure
	for _, tc := range findTaskClosures(pkg.Files, pkg.Info) {
		out = append(out, TaskClosure{Lit: tc.lit, API: tc.api, Spawned: tc.spawned})
	}
	return out
}

// IsCtx reports whether t is (a pointer to) the task context type
// (spd3.Ctx / task.Ctx).
func IsCtx(t types.Type) bool { return isCtx(t) }

// ContainerKind returns the bare name of the instrumented container
// type t ("Array", "Matrix", "Var", "List", "Map", "Mutex"), or ""
// when t is not (a pointer to) one of them.
func ContainerKind(t types.Type) string {
	for _, name := range [...]string{"Array", "Matrix", "Var", "List", "Map", "Mutex"} {
		if namedIn(t, memPkgPath, name) {
			return name
		}
	}
	return ""
}

// RecvType returns the type of a method call's receiver expression, or
// nil when the call is not a selector call or the receiver did not
// type-check.
func RecvType(info *types.Info, call *ast.CallExpr) types.Type {
	return recvType(info, call)
}

// IsRuntime reports whether t is (a pointer to) task.Runtime.
func IsRuntime(t types.Type) bool { return namedIn(t, taskPkgPath, "Runtime") }

// IsEngine reports whether t is (a pointer to) spd3.Engine.
func IsEngine(t types.Type) bool { return namedIn(t, rootPkgPath, "Engine") }

// CtxParamName returns the name of ft's *Ctx parameter, or "" when the
// function type has none (or it is blank). Tools use it to know which
// task context is in scope inside a task body.
func CtxParamName(info *types.Info, ft *ast.FuncType) string {
	if ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !isCtx(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
	}
	return ""
}

// within reports whether pos lies inside lit's body.
func within(lit *ast.FuncLit, n ast.Node) bool {
	return n.Pos() >= lit.Body.Pos() && n.End() <= lit.Body.End()
}

// declaredOutside reports whether obj was declared outside lit, i.e.
// the closure refers to it as a captured free variable.
func declaredOutside(lit *ast.FuncLit, obj types.Object) bool {
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}
