package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression: a comment of the form
//
//	//spd3vet:ignore <reason>
//
// on the flagged line (or the line immediately above it) drops every
// diagnostic for that line. The reason is mandatory — an unsuppressed
// guarantee hole should cost at least one written justification — and
// directives without one are themselves reported as findings, so a bare
// ignore cannot silently widen the gap.

const ignoreDirective = "spd3vet:ignore"

// suppressedLines scans a file's comments and returns the set of lines
// (in fset coordinates) covered by a valid ignore directive, plus a
// diagnostic for each malformed (reason-less) directive.
func suppressedLines(fset *token.FileSet, f *ast.File) (map[int]bool, []Diagnostic) {
	lines := make(map[int]bool)
	var bad []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//"+ignoreDirective)
			if !ok {
				continue
			}
			if strings.TrimSpace(text) == "" {
				bad = append(bad, Diagnostic{
					Pos:      c.Pos(),
					Analyzer: "suppress",
					Message:  "spd3vet:ignore directive without a reason; write //spd3vet:ignore <why this is safe>",
				})
				continue
			}
			line := fset.Position(c.Pos()).Line
			// The directive covers its own line (trailing comment) and
			// the next line (comment above the flagged statement).
			lines[line] = true
			lines[line+1] = true
		}
	}
	return lines, bad
}

// Suppress drops diagnostics covered by ignore directives in pkg's
// files and appends a finding for every malformed directive. It returns
// the surviving diagnostics and the number suppressed.
func Suppress(pkg *Package, diags []Diagnostic) (kept []Diagnostic, suppressed int) {
	byFile := make(map[string]map[int]bool)
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		lines, bad := suppressedLines(pkg.Fset, f)
		byFile[name] = lines
		kept = append(kept, bad...)
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if byFile[pos.Filename][pos.Line] {
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	SortDiagnostics(pkg.Fset, kept)
	return kept, suppressed
}
