package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxEscapeAnalyzer flags *spd3.Ctx values that leave the dynamic
// extent of the task they belong to.
//
// A Ctx is the runtime's handle to one task's position in the DPST: the
// detector attributes every instrumented access made through it to that
// task's current step (PAPER §3.1, §4). A spawned closure receives its
// *own* Ctx parameter; if it instead captures the parent's — or a Ctx
// is parked in a struct, global, or collection and used later from
// another task — accesses are attributed to the wrong step, and the
// Theorem-1 DMHP answers the shadow memory relies on are computed
// between the wrong nodes. The detector then has no false-negative
// guarantee and can also report phantom races: both halves of the
// soundness/precision claim fail.
//
// The task runtime itself (spd3/internal/task) legitimately constructs
// and stores Ctx values; it suppresses its one finding with an
// explicit //spd3vet:ignore.
var CtxEscapeAnalyzer = &Analyzer{
	Name: "ctxescape",
	Doc: "report *spd3.Ctx values captured by spawned tasks or stored in " +
		"structs, globals, or collections, which misattribute accesses in the DPST",
	Run: runCtxEscape,
}

func runCtxEscape(pass *Pass) error {
	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}

	// Capture by a spawned closure: an identifier of Ctx type inside
	// the closure body that resolves to a declaration outside it.
	for _, tc := range taskClosures(pass) {
		if !tc.spawned {
			continue
		}
		seen := make(map[types.Object]bool)
		ast.Inspect(tc.lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil || seen[obj] {
				return true
			}
			if v, ok := obj.(*types.Var); ok && !v.IsField() && isCtx(v.Type()) && declaredOutside(tc.lit, obj) {
				seen[obj] = true
				report(id.Pos(),
					"*spd3.Ctx %q captured by a task spawned by %s: accesses through it are attributed to the wrong DPST step; use the spawned closure's own Ctx parameter",
					id.Name, tc.api)
			}
			return true
		})
	}

	// Stores: a Ctx assigned into a struct field, map/slice element,
	// or package-level variable, or placed in a composite literal,
	// outlives the task body it was valid in.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					if tv, ok := pass.Info.Types[n.Rhs[i]]; !ok || !isCtx(tv.Type) {
						continue
					}
					switch l := lhs.(type) {
					case *ast.SelectorExpr:
						report(n.Rhs[i].Pos(), "*spd3.Ctx stored in a struct field: a Ctx is only valid within its task body and must not outlive it")
					case *ast.IndexExpr:
						report(n.Rhs[i].Pos(), "*spd3.Ctx stored in a collection element: a Ctx is only valid within its task body and must not outlive it")
					case *ast.Ident:
						if obj := pass.Info.Uses[l]; obj != nil && obj.Parent() == pass.Pkg.Scope() {
							report(n.Rhs[i].Pos(), "*spd3.Ctx stored in package-level variable %q: a Ctx is only valid within its task body and must not outlive it", l.Name)
						}
					}
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					v := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if tv, ok := pass.Info.Types[v]; ok && isCtx(tv.Type) {
						report(v.Pos(), "*spd3.Ctx stored in a composite literal: a Ctx is only valid within its task body and must not outlive it")
					}
				}
			}
			return true
		})
	}
	return nil
}
