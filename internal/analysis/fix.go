package analysis

import (
	"fmt"
	"go/format"
	"go/token"
	"os"
	"sort"
)

// ApplyFixes rewrites the source files behind every diagnostic that
// carries a SuggestedFix, gofmts the results, and writes them back. It
// returns the diagnostics that had no fix (still outstanding) and the
// number of fixes applied. Overlapping edits in one file are rejected
// rather than half-applied.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic) (remaining []Diagnostic, applied int, err error) {
	type edit struct {
		off, end int
		text     string
	}
	byFile := make(map[string][]edit)
	for _, d := range diags {
		if d.Fix == nil {
			remaining = append(remaining, d)
			continue
		}
		for _, e := range d.Fix.Edits {
			p, q := fset.Position(e.Pos), fset.Position(e.End)
			if p.Filename == "" || p.Filename != q.Filename {
				return nil, 0, fmt.Errorf("analysis: fix edit spans files (%s, %s)", p.Filename, q.Filename)
			}
			byFile[p.Filename] = append(byFile[p.Filename], edit{off: p.Offset, end: q.Offset, text: e.NewText})
		}
		applied++
	}
	for name, edits := range byFile {
		sort.Slice(edits, func(i, j int) bool { return edits[i].off > edits[j].off })
		for i := 1; i < len(edits); i++ {
			if edits[i].end > edits[i-1].off {
				return nil, 0, fmt.Errorf("analysis: overlapping fix edits in %s", name)
			}
		}
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, 0, fmt.Errorf("analysis: %w", err)
		}
		for _, e := range edits {
			if e.off < 0 || e.end > len(src) || e.off > e.end {
				return nil, 0, fmt.Errorf("analysis: fix edit out of range in %s", name)
			}
			src = append(src[:e.off], append([]byte(e.text), src[e.end:]...)...)
		}
		if fmted, err := format.Source(src); err == nil {
			src = fmted
		}
		info, err := os.Stat(name)
		if err != nil {
			return nil, 0, fmt.Errorf("analysis: %w", err)
		}
		if err := os.WriteFile(name, src, info.Mode().Perm()); err != nil {
			return nil, 0, fmt.Errorf("analysis: %w", err)
		}
	}
	return remaining, applied, nil
}
