package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestApplyFixesRoundTrip copies the deprecated fixture (written
// against removed API, so it has type errors), applies the suggested
// rewrites, and verifies the result type-checks cleanly and re-analyzes
// to zero findings.
func TestApplyFixesRoundTrip(t *testing.T) {
	src, err := os.ReadFile("testdata/deprecated/bad/bad.go")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	target := filepath.Join(dir, "bad.go")
	if err := os.WriteFile(target, src, 0o644); err != nil {
		t.Fatal(err)
	}

	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) == 0 {
		t.Fatal("fixture unexpectedly type-checks: the removed-API scenario is gone")
	}
	diags, err := Run(pkg, []*Analyzer{DeprecatedAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 3 {
		t.Fatalf("diagnostics = %d, want 3: %v", len(diags), diags)
	}
	remaining, applied, err := ApplyFixes(pkg.Fset, diags)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 || len(remaining) != 0 {
		t.Fatalf("applied = %d remaining = %d, want 3/0", applied, len(remaining))
	}

	fixed, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a.Unchecked()[0]", "m.UncheckedRow(0)[0]", "rep.Stats.Footprint"} {
		if !strings.Contains(string(fixed), want) {
			t.Errorf("fixed file missing %q:\n%s", want, fixed)
		}
	}

	// A fresh load of the rewritten file must type-check and be clean.
	loader2, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg2, err := loader2.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg2.TypeErrors) != 0 {
		t.Fatalf("rewritten fixture has type errors: %v", pkg2.TypeErrors)
	}
	diags2, err := Run(pkg2, All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags2) != 0 {
		t.Fatalf("rewritten fixture still has findings: %v", diags2)
	}
}

// TestApplyFixesEngineScoped round-trips the Engine-idiom rule: the
// fixture compiles against the current API, the fixes swap each
// constructor for its Ctx-scoped form and the Engine argument for the
// enclosing function's Ctx parameter, and the result type-checks and
// re-analyzes clean.
func TestApplyFixesEngineScoped(t *testing.T) {
	src, err := os.ReadFile("testdata/deprecated/enginescoped/old.go")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	target := filepath.Join(dir, "old.go")
	if err := os.WriteFile(target, src, 0o644); err != nil {
		t.Fatal(err)
	}

	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) != 0 {
		t.Fatalf("fixture has type errors: %v", pkg.TypeErrors)
	}
	diags, err := Run(pkg, []*Analyzer{DeprecatedAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 7 {
		t.Fatalf("diagnostics = %d, want 7: %v", len(diags), diags)
	}
	remaining, applied, err := ApplyFixes(pkg.Fset, diags)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 7 || len(remaining) != 0 {
		t.Fatalf("applied = %d remaining = %d, want 7/0", applied, len(remaining))
	}

	fixed, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`spd3.NewArrayIn[int](c, "a", 8)`,
		`spd3.NewMatrixIn[float64](c, "m", 2, 2)`,
		`spd3.NewVarIn(c, "v", 0)`,
		`spd3.NewListIn[int](c, "l")`,
		`spd3.NewMapIn[string, int](c, "mp")`,
		`spd3.NewMutexIn(c)`,
		`spd3.NewVarIn(c, "inner", i)`,
		`spd3.NewArray[int](eng, "pre", 4)`,  // pre-run allocation untouched
		`spd3.NewArray[int](eng, "fill", 2)`, // nested plain closure untouched
	} {
		if !strings.Contains(string(fixed), want) {
			t.Errorf("fixed file missing %q:\n%s", want, fixed)
		}
	}
	checkCleanReload(t, dir)
}

// TestApplyFixesMovedClient does the same round trip for the
// package-move rules: the fixture compiles (the old names survive as
// aliases), the fixes rewrite whole qualified identifiers to the public
// client package, and the result type-checks and re-analyzes clean.
func TestApplyFixesMovedClient(t *testing.T) {
	src, err := os.ReadFile("testdata/deprecated/movedclient/old.go")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	target := filepath.Join(dir, "old.go")
	if err := os.WriteFile(target, src, 0o644); err != nil {
		t.Fatal(err)
	}

	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) != 0 {
		t.Fatalf("fixture has type errors (the aliases are gone?): %v", pkg.TypeErrors)
	}
	diags, err := Run(pkg, []*Analyzer{DeprecatedAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 3 {
		t.Fatalf("diagnostics = %d, want 3: %v", len(diags), diags)
	}
	remaining, applied, err := ApplyFixes(pkg.Fset, diags)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 || len(remaining) != 0 {
		t.Fatalf("applied = %d remaining = %d, want 3/0", applied, len(remaining))
	}

	fixed, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"*client.Client", "client.New(addr)", "*client.APIError"} {
		if !strings.Contains(string(fixed), want) {
			t.Errorf("fixed file missing %q:\n%s", want, fixed)
		}
	}
	checkCleanReload(t, dir)
}

// checkCleanReload asserts that the rewritten fixture in dir
// type-checks and re-analyzes to zero findings.
func checkCleanReload(t *testing.T, dir string) {
	t.Helper()

	loader2, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg2, err := loader2.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg2.TypeErrors) != 0 {
		t.Fatalf("rewritten fixture has type errors: %v", pkg2.TypeErrors)
	}
	diags2, err := Run(pkg2, All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags2) != 0 {
		t.Fatalf("rewritten fixture still has findings: %v", diags2)
	}
}
