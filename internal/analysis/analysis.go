// Package analysis is a small, stdlib-only static-analysis framework for
// programs written against the spd3 API, plus the four analyzers behind
// cmd/spd3vet.
//
// SPD3's headline guarantee — one quiet execution certifies *all*
// schedules of an input (PAPER §3, Theorems 1–2) — rests on two
// preconditions the dynamic detector cannot check by itself:
//
//  1. every shared access goes through instrumented shadow memory
//     (package mem routes Get/Set through the detector; Unchecked and
//     friends deliberately do not), and
//  2. all parallelism stays inside the structured async/finish
//     discipline the DPST models (raw `go` statements, sync primitives,
//     and channels are invisible to it).
//
// A program that violates either precondition silently voids the
// guarantee: the detector still answers, but the answer no longer covers
// the uninstrumented accesses or the unmodeled concurrency. The paper
// closes the same gap with a compiler pass that instruments *every*
// access (§5) and with static optimizations that elide checks only where
// a proof exists (§5.5). This package is the Go-side analogue of that
// proof obligation: a set of type-based checks that flag exactly the
// places where the programmer stepped outside the detector's model.
//
// The framework follows the shape of golang.org/x/tools/go/analysis —
// an Analyzer with a Run function over a Pass, reporting Diagnostics
// with optional machine-applicable SuggestedFixes — but is built from
// scratch on go/parser, go/ast, and go/types only, because this module
// has no dependencies and must stay that way.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Version identifies the analysis subsystem in JSON reports.
const Version = "1.0.0"

// An Analyzer is one named check. Run inspects a type-checked package
// through the Pass and reports findings via Pass.Report.
type Analyzer struct {
	// Name is the analyzer's identifier (also the diagnostic category):
	// a short lowercase word, e.g. "unchecked".
	Name string
	// Doc is a one-paragraph description of what the check enforces and
	// why violating it breaks the detector's guarantee.
	Doc string
	// Run performs the check over one package.
	Run func(*Pass) error
	// OptIn marks an analyzer that must be requested by name (spd3vet
	// -analyzers) rather than running in the default suite. Optimizers
	// like checkelim are opt-in: their findings are opportunities, not
	// soundness violations, so they must not fail a gate that runs All.
	OptIn bool
}

// A Pass provides one analyzer run over one package: the syntax, the
// type information, and the report sink. The same package is shared by
// every analyzer; passes must not mutate it.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Report records one finding against the pass's analyzer.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	*p.diags = append(*p.diags, d)
}

// Reportf reports a finding at pos with a formatted message and no fix.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: a position, a message, and optionally a
// machine-applicable rewrite.
type Diagnostic struct {
	// Pos is the finding's anchor in the pass's FileSet.
	Pos token.Pos
	// Analyzer is the reporting analyzer's name (filled by Report).
	Analyzer string
	// Message states the violation and, where short, the remedy.
	Message string
	// Fix, when non-nil, rewrites the flagged code to the supported
	// form; cmd/spd3vet applies it under -fix.
	Fix *SuggestedFix
}

// A SuggestedFix is a set of text edits that together resolve one
// diagnostic. Edits within one fix must not overlap.
type SuggestedFix struct {
	// Message describes the rewrite ("use Unchecked").
	Message string
	// Edits are the concrete replacements.
	Edits []TextEdit
}

// A TextEdit replaces the source range [Pos, End) with NewText.
type TextEdit struct {
	Pos, End token.Pos
	NewText  string
}

// Run executes every analyzer in analyzers over pkg and returns the
// findings sorted by position. Analyzer errors (not findings) abort the
// run.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	SortDiagnostics(pkg.Fset, diags)
	return diags, nil
}

// SortDiagnostics orders diags by file, line, column, then analyzer
// name, for stable output.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
