package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UncheckedAnalyzer flags Unchecked/UncheckedRow/UncheckedAt results
// that flow into spawned task bodies.
//
// The escape hatches exist to mirror the paper's §5.5 static check
// eliminations: accesses the programmer can prove race-free (main-task
// phases, read-only data, task-local temporaries) may skip the shadow
// memory. That proof obligation is only dischargeable in sequential
// code. Once an uninstrumented slice or pointer crosses a spawn
// boundary — captured by an Async/Cilk closure, or obtained inside one
// — its accesses race invisibly: the detector's "no schedule of this
// input races" verdict (Theorem 2) silently stops covering them. This
// is a false-negative hole, the one failure mode SPD3 promises not to
// have.
var UncheckedAnalyzer = &Analyzer{
	Name: "unchecked",
	Doc: "report Unchecked container data crossing a spawn boundary, " +
		"where its uninstrumented accesses become invisible to the detector",
	Run: runUnchecked,
}

func runUnchecked(pass *Pass) error {
	// Pass 1: taint variables bound to Unchecked* results by simple
	// assignment (x := a.Unchecked(); x = a.Unchecked(); var x = ...),
	// including through a slice expression.
	tainted := make(map[types.Object]token.Pos)
	taint := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		if call, ok := uncheckedSource(pass.Info, rhs); ok {
			// Only slices and pointers alias the container's backing
			// store; a copied element value is safe to capture.
			if tv, ok := pass.Info.Types[rhs]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Pointer:
				default:
					return
				}
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj != nil {
				tainted[obj] = call.Pos()
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						taint(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						taint(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
	}

	// Lines carrying a //spd3opt:elided marker hold machine-written
	// §5.5 elisions: the Unchecked call there is backed by a dominating
	// checked access in the same step (see ElidedMarker), so it is not
	// an instrumentation hole.
	elided := make(map[string]map[int]bool)
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		elided[name] = elidedLines(pass.Fset, f)
	}
	isElided := func(pos token.Pos) bool {
		p := pass.Fset.Position(pos)
		return elided[p.Filename][p.Line]
	}

	// Pass 2: inside every spawned closure, flag direct Unchecked*
	// calls and captured tainted variables.
	reported := make(map[token.Pos]bool)
	for _, tc := range taskClosures(pass) {
		if !tc.spawned {
			continue
		}
		seen := make(map[types.Object]bool)
		ast.Inspect(tc.lit.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if name, ok := isUncheckedCall(pass.Info, n); ok && !reported[n.Pos()] && !isElided(n.Pos()) {
					reported[n.Pos()] = true
					pass.Reportf(n.Pos(),
						"%s() inside a task spawned by %s bypasses instrumentation: the detector cannot see these accesses and its race-freedom certificate no longer covers them",
						name, tc.api)
				}
			case *ast.Ident:
				obj := pass.Info.Uses[n]
				if obj == nil {
					return true
				}
				if pos, ok := tainted[obj]; ok && declaredOutside(tc.lit, obj) && !seen[obj] && !reported[n.Pos()] {
					seen[obj] = true
					reported[n.Pos()] = true
					pass.Reportf(n.Pos(),
						"uninstrumented data %q (from the Unchecked call at %s) is captured by a task spawned by %s: accesses through it are invisible to the detector",
						n.Name, pass.Fset.Position(pos), tc.api)
				}
			}
			return true
		})
	}
	return nil
}

// uncheckedSource reports whether e is (possibly through parentheses or
// a slice expression) a call to an Unchecked* escape hatch, returning
// the call.
func uncheckedSource(info *types.Info, e ast.Expr) (*ast.CallExpr, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.CallExpr:
			if _, ok := isUncheckedCall(info, x); ok {
				return x, true
			}
			return nil, false
		default:
			return nil, false
		}
	}
}
