package analysis

import (
	"go/ast"
)

// DeprecatedAnalyzer flags uses of retired spd3 API and carries the
// machine-applicable rewrite for each (`spd3vet -fix`):
//
//   - Array.Raw / Matrix.Raw   → Unchecked
//   - Matrix.Row               → UncheckedRow
//   - Report.Footprint         → Report.Stats.Footprint
//
// The old names have been removed from the module, so in-tree code can
// no longer compile against them; the analyzer exists for out-of-tree
// users migrating across releases. It intentionally works from the
// *receiver's* type rather than the (now nonexistent) member: when a
// program written against the old API is loaded, the selection itself
// fails to type-check, but the receiver still resolves, which is enough
// to identify the container or report and rewrite the selector.
var DeprecatedAnalyzer = &Analyzer{
	Name: "deprecated",
	Doc: "report retired spd3 API (Raw, Row, Report.Footprint) and suggest " +
		"the machine-applicable rewrite",
	Run: runDeprecated,
}

// deprecatedSelector maps an old member name to its replacement, keyed
// by a receiver-type predicate.
type deprecatedSelector struct {
	recv        func(*Pass, ast.Expr) bool
	replacement string
}

func runDeprecated(pass *Pass) error {
	isContainer := func(p *Pass, x ast.Expr) bool {
		tv, ok := p.Info.Types[x]
		return ok && isMemContainer(tv.Type)
	}
	isMatrix := func(p *Pass, x ast.Expr) bool {
		tv, ok := p.Info.Types[x]
		return ok && namedIn(tv.Type, memPkgPath, "Matrix")
	}
	isReport := func(p *Pass, x ast.Expr) bool {
		tv, ok := p.Info.Types[x]
		return ok && namedIn(tv.Type, rootPkgPath, "Report")
	}
	rules := map[string]deprecatedSelector{
		"Raw":       {recv: isContainer, replacement: "Unchecked"},
		"Row":       {recv: isMatrix, replacement: "UncheckedRow"},
		"Footprint": {recv: isReport, replacement: "Stats.Footprint"},
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			rule, ok := rules[sel.Sel.Name]
			if !ok || !rule.recv(pass, sel.X) {
				return true
			}
			pass.Report(Diagnostic{
				Pos: sel.Sel.Pos(),
				Message: "deprecated " + sel.Sel.Name + " was removed; use " +
					rule.replacement,
				Fix: &SuggestedFix{
					Message: "rewrite " + sel.Sel.Name + " to " + rule.replacement,
					Edits: []TextEdit{{
						Pos:     sel.Sel.Pos(),
						End:     sel.Sel.End(),
						NewText: rule.replacement,
					}},
				},
			})
			return true
		})
	}
	return nil
}
