package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeprecatedAnalyzer flags uses of retired spd3 API and carries the
// machine-applicable rewrite for each (`spd3vet -fix`):
//
//   - Array.Raw / Matrix.Raw   → Unchecked
//   - Matrix.Row               → UncheckedRow
//   - Report.Footprint         → Report.Stats.Footprint
//   - server.NewClient         → client.New      (import spd3/client)
//   - server.Client            → client.Client
//   - server.APIError          → client.APIError
//
// The member names have been removed from the module, so in-tree code
// can no longer compile against them; the analyzer exists for
// out-of-tree users migrating across releases. It intentionally works
// from the *receiver's* type rather than the (now nonexistent) member:
// when a program written against the old API is loaded, the selection
// itself fails to type-check, but the receiver still resolves, which is
// enough to identify the container or report and rewrite the selector.
//
// The server.* rules are different: those names survive as deprecated
// aliases of the public spd3/client package, so old code still
// compiles. The analyzer rewrites the whole qualified identifier to the
// new package (the fix does not edit the import block; run goimports or
// add `import "spd3/client"` after applying it).
//
// A third rule family targets the old *Engine-only allocation idiom:
// calling spd3.NewArray(eng, ...) (or NewMatrix/NewVar/NewList/NewMap/
// NewMutex) from inside a function that has a *spd3.Ctx parameter. Those
// call sites predate the Ctx-scoped constructors; the Ctx form both
// removes the captured Engine and records DPST-correct creation-point
// writes, so the fix rewrites the call to spd3.NewArrayIn(c, ...) using
// the enclosing function's Ctx parameter.
var DeprecatedAnalyzer = &Analyzer{
	Name: "deprecated",
	Doc: "report retired spd3 API (Raw, Row, Report.Footprint, server.Client " +
		"and friends) and suggest the machine-applicable rewrite",
	Run: runDeprecated,
}

// deprecatedSelector maps an old member name to its replacement, keyed
// by a receiver-type predicate.
type deprecatedSelector struct {
	recv        func(*Pass, ast.Expr) bool
	replacement string
}

// deprecatedPkgName maps a deprecated qualified identifier
// (oldPkg.member) to its replacement spelling in another package. The
// rewrite spans the whole selector, because the qualifier itself moves.
type deprecatedPkgName struct {
	pkgPath     string // import path the qualifier must resolve to
	replacement string // full new spelling, e.g. "client.New"
}

// isPkgQualifier reports whether x is an identifier naming an imported
// package with the given import path.
func isPkgQualifier(pass *Pass, x ast.Expr, pkgPath string) bool {
	id, ok := x.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

func runDeprecated(pass *Pass) error {
	isContainer := func(p *Pass, x ast.Expr) bool {
		tv, ok := p.Info.Types[x]
		return ok && isMemContainer(tv.Type)
	}
	isMatrix := func(p *Pass, x ast.Expr) bool {
		tv, ok := p.Info.Types[x]
		return ok && namedIn(tv.Type, memPkgPath, "Matrix")
	}
	isReport := func(p *Pass, x ast.Expr) bool {
		tv, ok := p.Info.Types[x]
		return ok && namedIn(tv.Type, rootPkgPath, "Report")
	}
	rules := map[string]deprecatedSelector{
		"Raw":       {recv: isContainer, replacement: "Unchecked"},
		"Row":       {recv: isMatrix, replacement: "UncheckedRow"},
		"Footprint": {recv: isReport, replacement: "Stats.Footprint"},
	}
	pkgRules := map[string]deprecatedPkgName{
		"NewClient": {pkgPath: serverPkgPath, replacement: "client.New"},
		"Client":    {pkgPath: serverPkgPath, replacement: "client.Client"},
		"APIError":  {pkgPath: serverPkgPath, replacement: "client.APIError"},
	}
	for _, f := range pass.Files {
		runEngineScopedCtors(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if rule, ok := pkgRules[sel.Sel.Name]; ok && isPkgQualifier(pass, sel.X, rule.pkgPath) {
				old := "server." + sel.Sel.Name
				pass.Report(Diagnostic{
					Pos: sel.Pos(),
					Message: "deprecated " + old + " moved; use " + rule.replacement +
						" (import spd3/client)",
					Fix: &SuggestedFix{
						Message: "rewrite " + old + " to " + rule.replacement,
						Edits: []TextEdit{{
							Pos:     sel.Pos(),
							End:     sel.End(),
							NewText: rule.replacement,
						}},
					},
				})
				return true
			}
			rule, ok := rules[sel.Sel.Name]
			if !ok || !rule.recv(pass, sel.X) {
				return true
			}
			pass.Report(Diagnostic{
				Pos: sel.Sel.Pos(),
				Message: "deprecated " + sel.Sel.Name + " was removed; use " +
					rule.replacement,
				Fix: &SuggestedFix{
					Message: "rewrite " + sel.Sel.Name + " to " + rule.replacement,
					Edits: []TextEdit{{
						Pos:     sel.Sel.Pos(),
						End:     sel.Sel.End(),
						NewText: rule.replacement,
					}},
				},
			})
			return true
		})
	}
	return nil
}

// ctorInForms maps each *Engine-scoped root-package constructor to its
// Ctx-scoped replacement.
var ctorInForms = map[string]string{
	"NewArray":  "NewArrayIn",
	"NewMatrix": "NewMatrixIn",
	"NewVar":    "NewVarIn",
	"NewList":   "NewListIn",
	"NewMap":    "NewMapIn",
	"NewMutex":  "NewMutexIn",
}

// runEngineScopedCtors flags *Engine-scoped constructor calls made from
// inside a function that has a named *Ctx parameter, and offers the
// machine-applicable rewrite to the Ctx-scoped form.
func runEngineScopedCtors(pass *Pass, f *ast.File) {
	// Collect every function scope so the innermost one enclosing a
	// call — the only one whose Ctx parameter is safe to substitute —
	// can be found by position.
	type funcScope struct {
		body *ast.BlockStmt
		ft   *ast.FuncType
	}
	var scopes []funcScope
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				scopes = append(scopes, funcScope{n.Body, n.Type})
			}
		case *ast.FuncLit:
			scopes = append(scopes, funcScope{n.Body, n.Type})
		}
		return true
	})
	innermost := func(pos token.Pos) *funcScope {
		var best *funcScope
		for i := range scopes {
			s := &scopes[i]
			if s.body.Pos() <= pos && pos <= s.body.End() {
				if best == nil || s.body.Pos() > best.body.Pos() {
					best = s
				}
			}
		}
		return best
	}

	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fun := call.Fun
		// Explicit instantiations (spd3.NewArray[int]) wrap the
		// selector in an index expression.
		switch ix := fun.(type) {
		case *ast.IndexExpr:
			fun = ix.X
		case *ast.IndexListExpr:
			fun = ix.X
		}
		sel, ok := fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		inForm, ok := ctorInForms[sel.Sel.Name]
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != rootPkgPath {
			return true
		}
		sc := innermost(call.Pos())
		if sc == nil {
			return true
		}
		ctxName := CtxParamName(pass.Info, sc.ft)
		if ctxName == "" {
			return true
		}
		pass.Report(Diagnostic{
			Pos: sel.Sel.Pos(),
			Message: "deprecated idiom: spd3." + sel.Sel.Name + " with an *Engine inside a task body; " +
				"use the Ctx-scoped spd3." + inForm + "(" + ctxName + ", ...) for DPST-correct creation-point semantics",
			Fix: &SuggestedFix{
				Message: "rewrite " + sel.Sel.Name + " to " + inForm + "(" + ctxName + ", ...)",
				Edits: []TextEdit{
					{Pos: sel.Sel.Pos(), End: sel.Sel.End(), NewText: inForm},
					{Pos: call.Args[0].Pos(), End: call.Args[0].End(), NewText: ctxName},
				},
			},
		})
		return true
	})
}
