package analysis

import (
	"go/ast"
	"go/types"
)

// DeprecatedAnalyzer flags uses of retired spd3 API and carries the
// machine-applicable rewrite for each (`spd3vet -fix`):
//
//   - Array.Raw / Matrix.Raw   → Unchecked
//   - Matrix.Row               → UncheckedRow
//   - Report.Footprint         → Report.Stats.Footprint
//   - server.NewClient         → client.New      (import spd3/client)
//   - server.Client            → client.Client
//   - server.APIError          → client.APIError
//
// The member names have been removed from the module, so in-tree code
// can no longer compile against them; the analyzer exists for
// out-of-tree users migrating across releases. It intentionally works
// from the *receiver's* type rather than the (now nonexistent) member:
// when a program written against the old API is loaded, the selection
// itself fails to type-check, but the receiver still resolves, which is
// enough to identify the container or report and rewrite the selector.
//
// The server.* rules are different: those names survive as deprecated
// aliases of the public spd3/client package, so old code still
// compiles. The analyzer rewrites the whole qualified identifier to the
// new package (the fix does not edit the import block; run goimports or
// add `import "spd3/client"` after applying it).
var DeprecatedAnalyzer = &Analyzer{
	Name: "deprecated",
	Doc: "report retired spd3 API (Raw, Row, Report.Footprint, server.Client " +
		"and friends) and suggest the machine-applicable rewrite",
	Run: runDeprecated,
}

// deprecatedSelector maps an old member name to its replacement, keyed
// by a receiver-type predicate.
type deprecatedSelector struct {
	recv        func(*Pass, ast.Expr) bool
	replacement string
}

// deprecatedPkgName maps a deprecated qualified identifier
// (oldPkg.member) to its replacement spelling in another package. The
// rewrite spans the whole selector, because the qualifier itself moves.
type deprecatedPkgName struct {
	pkgPath     string // import path the qualifier must resolve to
	replacement string // full new spelling, e.g. "client.New"
}

// isPkgQualifier reports whether x is an identifier naming an imported
// package with the given import path.
func isPkgQualifier(pass *Pass, x ast.Expr, pkgPath string) bool {
	id, ok := x.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

func runDeprecated(pass *Pass) error {
	isContainer := func(p *Pass, x ast.Expr) bool {
		tv, ok := p.Info.Types[x]
		return ok && isMemContainer(tv.Type)
	}
	isMatrix := func(p *Pass, x ast.Expr) bool {
		tv, ok := p.Info.Types[x]
		return ok && namedIn(tv.Type, memPkgPath, "Matrix")
	}
	isReport := func(p *Pass, x ast.Expr) bool {
		tv, ok := p.Info.Types[x]
		return ok && namedIn(tv.Type, rootPkgPath, "Report")
	}
	rules := map[string]deprecatedSelector{
		"Raw":       {recv: isContainer, replacement: "Unchecked"},
		"Row":       {recv: isMatrix, replacement: "UncheckedRow"},
		"Footprint": {recv: isReport, replacement: "Stats.Footprint"},
	}
	pkgRules := map[string]deprecatedPkgName{
		"NewClient": {pkgPath: serverPkgPath, replacement: "client.New"},
		"Client":    {pkgPath: serverPkgPath, replacement: "client.Client"},
		"APIError":  {pkgPath: serverPkgPath, replacement: "client.APIError"},
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if rule, ok := pkgRules[sel.Sel.Name]; ok && isPkgQualifier(pass, sel.X, rule.pkgPath) {
				old := "server." + sel.Sel.Name
				pass.Report(Diagnostic{
					Pos: sel.Pos(),
					Message: "deprecated " + old + " moved; use " + rule.replacement +
						" (import spd3/client)",
					Fix: &SuggestedFix{
						Message: "rewrite " + old + " to " + rule.replacement,
						Edits: []TextEdit{{
							Pos:     sel.Pos(),
							End:     sel.End(),
							NewText: rule.replacement,
						}},
					},
				})
				return true
			}
			rule, ok := rules[sel.Sel.Name]
			if !ok || !rule.recv(pass, sel.X) {
				return true
			}
			pass.Report(Diagnostic{
				Pos: sel.Sel.Pos(),
				Message: "deprecated " + sel.Sel.Name + " was removed; use " +
					rule.replacement,
				Fix: &SuggestedFix{
					Message: "rewrite " + sel.Sel.Name + " to " + rule.replacement,
					Edits: []TextEdit{{
						Pos:     sel.Sel.Pos(),
						End:     sel.Sel.End(),
						NewText: rule.replacement,
					}},
				},
			})
			return true
		})
	}
	return nil
}
