package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
)

// Reporting. The text form is the conventional one-line-per-finding
// compiler style. The JSON form uses the same envelope style as the
// other tools' -stats dumps (a tool/version header over a findings
// array), so the experiment harness can ingest vet results next to
// benchmark snapshots.

// JSONFinding is one diagnostic in wire form.
type JSONFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	// Fix carries the suggested rewrite's description when one exists
	// (apply with spd3vet -fix).
	Fix string `json:"fix,omitempty"`
}

// JSONReport is the envelope emitted by spd3vet -json.
type JSONReport struct {
	Tool     string        `json:"tool"`
	Version  string        `json:"version"`
	Findings []JSONFinding `json:"findings"`
}

// NewJSONReport converts diagnostics to the wire envelope.
func NewJSONReport(fset *token.FileSet, diags []Diagnostic) *JSONReport {
	rep := &JSONReport{Tool: "spd3vet", Version: Version, Findings: []JSONFinding{}}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		f := JSONFinding{
			Analyzer: d.Analyzer,
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Message:  d.Message,
		}
		if d.Fix != nil {
			f.Fix = d.Fix.Message
		}
		rep.Findings = append(rep.Findings, f)
	}
	return rep
}

// WriteJSON emits the envelope as indented JSON.
func WriteJSON(w io.Writer, fset *token.FileSet, diags []Diagnostic) error {
	out, err := json.MarshalIndent(NewJSONReport(fset, diags), "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", out)
	return err
}

// WriteText emits one file:line:col: message [analyzer] line per
// diagnostic.
func WriteText(w io.Writer, fset *token.FileSet, diags []Diagnostic) error {
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if _, err := fmt.Fprintf(w, "%s:%d:%d: %s [%s]\n", pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer); err != nil {
			return err
		}
	}
	return nil
}
