package analysis_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"spd3/internal/analysis"
	"spd3/internal/analysis/atest"
)

// TestRegistryGoldens drives the known-bad fixtures from the analyzer
// registry: every registered analyzer with a testdata/<name>/bad
// directory runs as a subtest, and the built-in suite must all be
// covered — an analyzer whose fixtures go missing fails here rather
// than silently losing coverage.
func TestRegistryGoldens(t *testing.T) {
	covered := atest.RegistryGoldens(t, "testdata")
	sort.Strings(covered)
	want := []string{"ctxescape", "deprecated", "rawconc", "unchecked"}
	for _, name := range want {
		found := false
		for _, c := range covered {
			found = found || c == name
		}
		if !found {
			t.Errorf("registry golden walk missed %s (covered: %v)", name, covered)
		}
	}
}

func TestUncheckedNoFalsePositives(t *testing.T) {
	// The safe fixture has no want annotations: any diagnostic fails.
	atest.RunGolden(t, "testdata/unchecked/safe", analysis.All()...)
}

func mustLookup(t *testing.T, name string) *analysis.Analyzer {
	t.Helper()
	a, ok := analysis.Lookup(name)
	if !ok {
		t.Fatalf("analyzer %q not registered", name)
	}
	return a
}

func TestDeprecatedClientGolden(t *testing.T) {
	atest.RunGolden(t, "testdata/deprecated/movedclient", mustLookup(t, "deprecated"))
}

func TestDeprecatedEngineScopedGolden(t *testing.T) {
	atest.RunGolden(t, "testdata/deprecated/enginescoped", mustLookup(t, "deprecated"))
}

func TestSuppressGolden(t *testing.T) {
	atest.RunGolden(t, "testdata/suppress/bad", mustLookup(t, "rawconc"))
}

// TestSuppressCounts pins the mechanics the golden matcher can't see:
// the justified directive suppresses exactly one finding.
func TestSuppressCounts(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/suppress/bad")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{mustLookup(t, "rawconc")})
	if err != nil {
		t.Fatal(err)
	}
	kept, suppressed := analysis.Suppress(pkg, diags)
	if suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", suppressed)
	}
	// Two findings survive: the unsuppressed go statement and the
	// reason-less directive.
	if len(kept) != 2 {
		t.Errorf("kept = %d findings (%v), want 2", len(kept), kept)
	}
}

// TestDiagnosticPositions pins that findings carry accurate positions:
// the known-bad unchecked fixture reports the capture on the exact
// line and column of the captured identifier.
func TestDiagnosticPositions(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/unchecked/bad")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{mustLookup(t, "unchecked")})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics on known-bad fixture")
	}
	pos := pkg.Fset.Position(diags[0].Pos)
	if !strings.HasSuffix(pos.Filename, "bad.go") || pos.Line != 15 || pos.Column != 4 {
		t.Errorf("first finding at %s, want .../bad.go:15:4 (the captured raw[i] write)", pos)
	}
	if diags[0].Analyzer != "unchecked" {
		t.Errorf("analyzer = %q, want unchecked", diags[0].Analyzer)
	}
}

// TestRegistryLookup pins the registry surface the drivers build on:
// All returns a fresh slice, Lookup and ByName resolve registered
// names and reject unknown ones.
func TestRegistryLookup(t *testing.T) {
	all := analysis.All()
	if len(all) < 4 {
		t.Fatalf("All() = %d analyzers, want at least the built-in 4", len(all))
	}
	all[0] = nil
	if analysis.All()[0] == nil {
		t.Error("All() returned an aliased slice: caller mutation leaked into the registry")
	}
	for _, name := range []string{"unchecked", "ctxescape", "rawconc", "deprecated"} {
		if _, ok := analysis.Lookup(name); !ok {
			t.Errorf("Lookup(%q) missed a built-in analyzer", name)
		}
	}
	if _, err := analysis.ByName([]string{"unchecked", "nosuch"}); err == nil {
		t.Error("ByName accepted an unknown analyzer name")
	}
	got, err := analysis.ByName([]string{"rawconc", "unchecked"})
	if err != nil || len(got) != 2 || got[0].Name != "rawconc" || got[1].Name != "unchecked" {
		t.Errorf("ByName order/content wrong: %v, %v", got, err)
	}
}

// TestJSONEnvelope pins the wire format: the same tool/version header
// over a findings array that the other commands' -stats dumps use.
func TestJSONEnvelope(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/deprecated/bad")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{mustLookup(t, "deprecated")})
	if err != nil {
		t.Fatal(err)
	}
	rep := analysis.NewJSONReport(pkg.Fset, diags)
	if rep.Tool != "spd3vet" || rep.Version != analysis.Version {
		t.Errorf("envelope header = %q/%q", rep.Tool, rep.Version)
	}
	if len(rep.Findings) != 3 {
		t.Fatalf("findings = %d, want 3", len(rep.Findings))
	}
	for _, f := range rep.Findings {
		if f.Analyzer != "deprecated" || f.Line == 0 || f.Col == 0 || f.Fix == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
	var sb strings.Builder
	if err := analysis.WriteJSON(&sb, pkg.Fset, diags); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"tool": "spd3vet"`, `"findings"`, fmt.Sprintf("%q", analysis.Version)} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("JSON output missing %s:\n%s", want, sb.String())
		}
	}
}
