package analysis

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The golden harness: fixture packages under testdata annotate expected
// findings with `// want `+"`regex`"+`` comments (or /* want ... */
// block comments) on the flagged line. Running an analyzer over the
// fixture must produce exactly the annotated findings — a diagnostic
// with no want, or a want with no diagnostic, fails the test. Because
// the wants live with the fixtures, disabling a check turns its wants
// into missing diagnostics and the test fails.

// wantRx extracts the expectation regex from a comment: backquoted or
// double-quoted after the word "want".
var wantRx = regexp.MustCompile("want\\s+(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// parseWants returns the expected-diagnostic regexes per line of f.
func parseWants(t *testing.T, pkg *Package, f *ast.File) map[int][]*regexp.Regexp {
	t.Helper()
	wants := make(map[int][]*regexp.Regexp)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
			text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			m := wantRx.FindStringSubmatch(text)
			if m == nil {
				t.Fatalf("%s: malformed want comment: %s", pkg.Fset.Position(c.Pos()), c.Text)
			}
			pat := m[1]
			if pat[0] == '`' {
				pat = pat[1 : len(pat)-1]
			} else if unq, err := strconv.Unquote(pat); err == nil {
				pat = unq
			}
			rx, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Pos()), pat, err)
			}
			line := pkg.Fset.Position(c.Pos()).Line
			wants[line] = append(wants[line], rx)
		}
	}
	return wants
}

// runGolden loads the fixture directory, runs the given analyzers plus
// the suppression filter, and matches the result against the want
// annotations.
func runGolden(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatalf("no Go files in %s", dir)
	}
	diags, err := Run(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	diags, _ = Suppress(pkg, diags)

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		for line, rxs := range parseWants(t, pkg, f) {
			wants[key{name, line}] = append(wants[key{name, line}], rxs...)
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := -1
		for i, rx := range wants[k] {
			if rx.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic at %s: %s [%s]", pos, d.Message, d.Analyzer)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, rxs := range wants {
		for _, rx := range rxs {
			t.Errorf("missing diagnostic at %s:%d matching %q", k.file, k.line, rx)
		}
	}
}

func TestUncheckedGolden(t *testing.T) {
	runGolden(t, "testdata/unchecked/bad", UncheckedAnalyzer)
}

func TestUncheckedNoFalsePositives(t *testing.T) {
	// The safe fixture has no want annotations: any diagnostic fails.
	runGolden(t, "testdata/unchecked/safe", All()...)
}

func TestCtxEscapeGolden(t *testing.T) {
	runGolden(t, "testdata/ctxescape/bad", CtxEscapeAnalyzer)
}

func TestRawConcGolden(t *testing.T) {
	runGolden(t, "testdata/rawconc/bad", RawConcAnalyzer)
}

func TestDeprecatedGolden(t *testing.T) {
	runGolden(t, "testdata/deprecated/bad", DeprecatedAnalyzer)
}

func TestDeprecatedClientGolden(t *testing.T) {
	runGolden(t, "testdata/deprecated/movedclient", DeprecatedAnalyzer)
}

func TestDeprecatedEngineScopedGolden(t *testing.T) {
	runGolden(t, "testdata/deprecated/enginescoped", DeprecatedAnalyzer)
}

func TestSuppressGolden(t *testing.T) {
	runGolden(t, "testdata/suppress/bad", RawConcAnalyzer)
}

// TestSuppressCounts pins the mechanics the golden matcher can't see:
// the justified directive suppresses exactly one finding.
func TestSuppressCounts(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/suppress/bad")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, []*Analyzer{RawConcAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	kept, suppressed := Suppress(pkg, diags)
	if suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", suppressed)
	}
	// Two findings survive: the unsuppressed go statement and the
	// reason-less directive.
	if len(kept) != 2 {
		t.Errorf("kept = %d findings (%v), want 2", len(kept), kept)
	}
}

// TestDiagnosticPositions pins that findings carry accurate positions:
// the known-bad unchecked fixture reports the capture on the exact
// line and column of the captured identifier.
func TestDiagnosticPositions(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/unchecked/bad")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, []*Analyzer{UncheckedAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics on known-bad fixture")
	}
	pos := pkg.Fset.Position(diags[0].Pos)
	if !strings.HasSuffix(pos.Filename, "bad.go") || pos.Line != 15 || pos.Column != 4 {
		t.Errorf("first finding at %s, want .../bad.go:15:4 (the captured raw[i] write)", pos)
	}
	if diags[0].Analyzer != "unchecked" {
		t.Errorf("analyzer = %q, want unchecked", diags[0].Analyzer)
	}
}

// TestJSONEnvelope pins the wire format: the same tool/version header
// over a findings array that the other commands' -stats dumps use.
func TestJSONEnvelope(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/deprecated/bad")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, []*Analyzer{DeprecatedAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	rep := NewJSONReport(pkg.Fset, diags)
	if rep.Tool != "spd3vet" || rep.Version != Version {
		t.Errorf("envelope header = %q/%q", rep.Tool, rep.Version)
	}
	if len(rep.Findings) != 3 {
		t.Fatalf("findings = %d, want 3", len(rep.Findings))
	}
	for _, f := range rep.Findings {
		if f.Analyzer != "deprecated" || f.Line == 0 || f.Col == 0 || f.Fix == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
	var sb strings.Builder
	if err := WriteJSON(&sb, pkg.Fset, diags); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"tool": "spd3vet"`, `"findings"`, fmt.Sprintf("%q", Version)} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("JSON output missing %s:\n%s", want, sb.String())
		}
	}
}
