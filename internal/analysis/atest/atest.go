// Package atest is the golden-test harness for spd3vet analyzers.
//
// Fixture packages under a testdata directory annotate expected
// findings with line comments of the form `// want "regex"` (or /* want ... */
// block comments) on the flagged line. Running an analyzer over the
// fixture must produce exactly the annotated findings — a diagnostic
// with no want, or a want with no diagnostic, fails the test (matching
// is bidirectional). Because the wants live with the fixtures,
// disabling a check turns its wants into missing diagnostics and the
// test fails.
//
// The harness is registry-driven: RegistryGoldens walks the analyzer
// registry and runs every analyzer that has a fixture directory, so a
// newly registered analyzer gets golden coverage by dropping fixtures
// in the conventional place (<root>/<name>/bad), with no test-function
// wiring.
package atest

import (
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"spd3/internal/analysis"
)

// wantRx extracts the expectation regex from a comment: backquoted or
// double-quoted after the word "want".
var wantRx = regexp.MustCompile("want\\s+(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// parseWants returns the expected-diagnostic regexes per line of f.
func parseWants(t *testing.T, pkg *analysis.Package, f *ast.File) map[int][]*regexp.Regexp {
	t.Helper()
	wants := make(map[int][]*regexp.Regexp)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
			text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			m := wantRx.FindStringSubmatch(text)
			if m == nil {
				t.Fatalf("%s: malformed want comment: %s", pkg.Fset.Position(c.Pos()), c.Text)
			}
			pat := m[1]
			if pat[0] == '`' {
				pat = pat[1 : len(pat)-1]
			} else if unq, err := strconv.Unquote(pat); err == nil {
				pat = unq
			}
			rx, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Pos()), pat, err)
			}
			line := pkg.Fset.Position(c.Pos()).Line
			wants[line] = append(wants[line], rx)
		}
	}
	return wants
}

// RunGolden loads the fixture directory, runs the given analyzers plus
// the suppression filter, and matches the result against the want
// annotations.
func RunGolden(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatalf("no Go files in %s", dir)
	}
	diags, err := analysis.Run(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	diags, _ = analysis.Suppress(pkg, diags)

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		for line, rxs := range parseWants(t, pkg, f) {
			wants[key{name, line}] = append(wants[key{name, line}], rxs...)
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := -1
		for i, rx := range wants[k] {
			if rx.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic at %s: %s [%s]", pos, d.Message, d.Analyzer)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, rxs := range wants {
		for _, rx := range rxs {
			t.Errorf("missing diagnostic at %s:%d matching %q", k.file, k.line, rx)
		}
	}
}

// RegistryGoldens runs, as subtests, every registered analyzer whose
// conventional fixture directory <root>/<name>/bad exists. It returns
// the analyzer names covered, so callers can assert the walk found
// what they expect.
func RegistryGoldens(t *testing.T, root string) []string {
	t.Helper()
	var covered []string
	for _, a := range analysis.All() {
		dir := filepath.Join(root, a.Name, "bad")
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			continue
		}
		covered = append(covered, a.Name)
		t.Run(a.Name, func(t *testing.T) { RunGolden(t, dir, a) })
	}
	return covered
}
