// Package bad exercises the deprecated analyzer. It is written against
// API that no longer exists (Raw, Row, Report.Footprint), so it does
// not compile — the loader tolerates the type errors, and the receiver
// types are still enough to identify and rewrite each use.
package bad

import "spd3"

func old(eng *spd3.Engine, rep *spd3.Report) (int, int, float64) {
	a := spd3.NewArray[int](eng, "a", 8)
	m := spd3.NewMatrix[int](eng, "m", 2, 2)
	x := a.Raw()[0]     // want `deprecated Raw was removed; use Unchecked`
	y := m.Row(0)[0]    // want `deprecated Row was removed; use UncheckedRow`
	fp := rep.Footprint // want `deprecated Footprint was removed; use Stats\.Footprint`
	return x, y, float64(fp.Total())
}
