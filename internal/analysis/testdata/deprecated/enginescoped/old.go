// Package old exercises the retired *Engine-only allocation idiom: the
// containers are allocated inside task bodies where a *Ctx is in scope,
// so the Ctx-scoped constructors apply.
package old

import "spd3"

func run(eng *spd3.Engine) error {
	// Allocation before the run, with no Ctx in scope: the Engine form
	// is the right one, no finding.
	pre := spd3.NewArray[int](eng, "pre", 4)
	_, err := eng.Run(func(c *spd3.Ctx) {
		a := spd3.NewArray[int](eng, "a", 8)         // want `deprecated idiom: spd3\.NewArray .* use the Ctx-scoped spd3\.NewArrayIn\(c, \.\.\.\)`
		m := spd3.NewMatrix[float64](eng, "m", 2, 2) // want `Ctx-scoped spd3\.NewMatrixIn\(c, \.\.\.\)`
		v := spd3.NewVar(eng, "v", 0)                // want `Ctx-scoped spd3\.NewVarIn\(c, \.\.\.\)`
		l := spd3.NewList[int](eng, "l")             // want `Ctx-scoped spd3\.NewListIn\(c, \.\.\.\)`
		mp := spd3.NewMap[string, int](eng, "mp")    // want `Ctx-scoped spd3\.NewMapIn\(c, \.\.\.\)`
		mu := spd3.NewMutex(eng)                     // want `Ctx-scoped spd3\.NewMutexIn\(c, \.\.\.\)`
		c.FinishAsync(4, func(c *spd3.Ctx, i int) {
			inner := spd3.NewVar(eng, "inner", i) // want `Ctx-scoped spd3\.NewVarIn\(c, \.\.\.\)`
			inner.Set(c, i)
			a.Set(c, i, pre.Get(c, i%4))
		})
		// A plain nested closure has no Ctx parameter of its own; the
		// enclosing c must not be substituted into code that may run
		// anywhere, so no finding here.
		fill := func() *spd3.Array[int] {
			return spd3.NewArray[int](eng, "fill", 2)
		}
		fill()
		mu.Lock(c)
		v.Set(c, a.Get(c, 0)+int(m.Get(c, 0, 0)))
		mu.Unlock(c)
		l.Append(c, v.Get(c))
		mp.Set(c, "sum", l.Get(c, 0))
	})
	return err
}
