// Package movedclient exercises the deprecated analyzer's package-move
// rules: the internal server client survives as deprecated aliases, so
// this fixture compiles, and each qualified use rewrites to the public
// spd3/client package. Both packages are imported (and the server
// import kept alive through its non-deprecated surface) so the applied
// fixes leave the file type-checking cleanly.
package movedclient

import (
	"spd3/client"
	"spd3/internal/server"
)

func dial(addr string) *server.Client { // want `deprecated server\.Client moved; use client\.Client \(import spd3/client\)`
	_ = server.Tool        // non-deprecated surface: stays on the internal package
	_ = client.New         // keeps the new import live before the fixes land
	var e *server.APIError // want `deprecated server\.APIError moved; use client\.APIError`
	_ = e
	return server.NewClient(addr) // want `deprecated server\.NewClient moved; use client\.New`
}
