// Package safe uses the escape hatches only in provably sequential
// phases — before the engine runs and after the top-level join — which
// is exactly the pattern the paper's §5.5 static check eliminations
// bless. The unchecked analyzer must report nothing here.
package safe

import "spd3"

func sequentialPhases(eng *spd3.Engine) float64 {
	a := spd3.NewArray[float64](eng, "a", 64)
	raw := a.Unchecked() // main task, before any parallelism
	for i := range raw {
		raw[i] = float64(i)
	}
	_, _ = eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(8, func(c *spd3.Ctx, i int) {
			a.Set(c, i, a.Get(c, i)+1) // instrumented: the detector sees these
		})
	})
	sum := 0.0
	for _, v := range a.Unchecked() { // after the join: sequential again
		sum += v
	}
	return sum
}
