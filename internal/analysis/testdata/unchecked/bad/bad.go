// Package bad exercises the unchecked analyzer: escape-hatch data
// crossing spawn boundaries, where its accesses become invisible to
// the detector.
package bad

import "spd3"

func shareAcrossSpawn(eng *spd3.Engine) {
	a := spd3.NewArray[int](eng, "a", 64)
	m := spd3.NewMatrix[float64](eng, "m", 8, 8)
	raw := a.Unchecked()
	row := m.UncheckedRow(3)
	_, _ = eng.Run(func(c *spd3.Ctx) {
		c.FinishAsync(8, func(c *spd3.Ctx, i int) {
			raw[i] = i // want `uninstrumented data "raw" \(from the Unchecked call at .*bad\.go:11:\d+\) is captured by a task spawned by FinishAsync`
		})
		c.ParallelFor(0, 8, 1, func(c *spd3.Ctx, i int) {
			row[0] += float64(i) // want `uninstrumented data "row" .* captured by a task spawned by ParallelFor`
		})
		c.Async(func(c *spd3.Ctx) {
			inner := a.Unchecked() // want `Unchecked\(\) inside a task spawned by Async bypasses instrumentation`
			_ = inner
		})
		spd3.RunCilk(c, func(k *spd3.Cilk) {
			k.Spawn(func(k *spd3.Cilk) {
				_ = raw[0] // want `uninstrumented data "raw" .* captured by a task spawned by Spawn`
			})
		})
	})
}
