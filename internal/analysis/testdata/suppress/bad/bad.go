// Package bad exercises the //spd3vet:ignore suppression directive: a
// justified directive silences the finding on its own and the next
// line, and a directive without a reason is itself a finding.
package bad

import "spd3"

func suppressed(eng *spd3.Engine) {
	_, _ = eng.Run(func(c *spd3.Ctx) {
		//spd3vet:ignore fixture: the goroutine touches no instrumented data and is joined before any spawn
		go first()
		go second() // want `go statement inside a task body \(Run\)`
		_ = 0       /* want `directive without a reason` */ //spd3vet:ignore
	})
}

func first()  {}
func second() {}
