// Package bad exercises the ctxescape analyzer: task contexts leaving
// the dynamic extent of the task they belong to.
package bad

import "spd3"

var leaked *spd3.Ctx

type holder struct{ c *spd3.Ctx }

func escapes(eng *spd3.Engine) {
	var h holder
	var box [1]*spd3.Ctx
	_, _ = eng.Run(func(c *spd3.Ctx) {
		c.Async(func(inner *spd3.Ctx) {
			_ = inner // the spawned task's own Ctx: fine
		})
		c.Async(func(_ *spd3.Ctx) {
			c.Finish(func(c *spd3.Ctx) {}) // want `\*spd3\.Ctx "c" captured by a task spawned by Async`
		})
		leaked = c       // want `stored in package-level variable "leaked"`
		h.c = c          // want `stored in a struct field`
		box[0] = c       // want `stored in a collection element`
		_ = holder{c: c} // want `stored in a composite literal`
	})
	_, _ = h, box
}
