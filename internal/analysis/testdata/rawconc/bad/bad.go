// Package bad exercises the rawconc analyzer: parallelism and ordering
// constructs the DPST does not model, inside task bodies.
package bad

import (
	"sync"
	"sync/atomic"

	"spd3"
)

var counter int64

func rawConcurrency(eng *spd3.Engine) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	ch := make(chan int, 1)
	_, _ = eng.Run(func(c *spd3.Ctx) {
		go background() // want `go statement inside a task body \(Run\)`
		c.Async(func(c *spd3.Ctx) {
			mu.Lock()                    // want `sync\.Mutex\.Lock inside a task body \(Async\)`
			defer mu.Unlock()            // want `sync\.Mutex\.Unlock inside a task body \(Async\)`
			atomic.AddInt64(&counter, 1) // want `sync/atomic\.AddInt64 inside a task body \(Async\)`
			ch <- 1                      // want `channel send inside a task body \(Async\)`
			<-ch                         // want `channel receive inside a task body \(Async\)`
		})
		c.Finish(func(c *spd3.Ctx) {
			wg.Wait()      // want `sync\.WaitGroup\.Wait inside a task body \(Finish\)`
			select {}      // want `select statement inside a task body \(Finish\)`
			for range ch { // want `range over a channel inside a task body \(Finish\)`
				_ = 0
			}
		})
	})
}

func background() {}
