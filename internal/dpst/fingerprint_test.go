package dpst

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFingerprintInlineAndSpillDigits pins the encoding: digits land at
// the expected levels across the inline words and the spill slice, and
// carry the node's Seq and Kind.
func TestFingerprintInlineAndSpillDigits(t *testing.T) {
	tr := New()
	n := tr.Root()
	kinds := []Kind{FinishNode, AsyncNode, StepNode}
	var chain []*Node
	for d := 1; d <= 3*inlineDigits; d++ {
		n = tr.NewChild(n, kinds[d%3])
		chain = append(chain, n)
	}
	for _, n := range chain {
		if !n.fp.valid() {
			t.Fatalf("%v at depth %d: fingerprint not ok", n, n.Depth)
		}
		for i := int32(0); i < n.Depth; i++ {
			anc := chain[i] // the depth-(i+1) ancestor-or-self of n
			d := n.fp.digitAt(int(i))
			if digitSeq(d) != anc.Seq || digitKind(d) != anc.Kind {
				t.Fatalf("node depth %d, digit %d = (seq %d, %v), want (%d, %v)",
					n.Depth, i, digitSeq(d), digitKind(d), anc.Seq, anc.Kind)
			}
		}
	}
	// Spill accounting: nodes deeper than inlineDigits own spill words.
	deep := chain[len(chain)-1]
	if got, want := deep.fp.spillWords(), int64((3*inlineDigits-inlineDigits+digitsPerWord-1)/digitsPerWord); got != want {
		t.Fatalf("deepest node owns %d spill words, want %d", got, want)
	}
	if tr.Bytes() <= tr.Len()*NodeBytes {
		t.Fatal("Bytes does not account for spill words")
	}
}

// TestFingerprintOverflowFallsBack: children past the digit capacity
// (Seq > maxDigitSeq) and all their descendants are unencodable, and
// every query still agrees with the pointer walk.
func TestFingerprintOverflowFallsBack(t *testing.T) {
	tr := New()
	wide := tr.NewChild(tr.Root(), FinishNode)
	var last, prev *Node
	for i := 0; i < maxDigitSeq+2; i++ {
		prev = last
		last = tr.NewChild(wide, AsyncNode)
	}
	if prev.Seq != maxDigitSeq+1 || prev.fp.valid() {
		t.Fatalf("node with Seq %d should be unencodable (valid=%v)", prev.Seq, prev.fp.valid())
	}
	if last.fp.valid() {
		t.Fatal("overflowed sibling encodable")
	}
	okNode := tr.NewChild(tr.Root(), AsyncNode)
	if !okNode.fp.valid() {
		t.Fatal("small-seq sibling lost its fingerprint")
	}
	childOfOverflow := tr.NewChild(last, StepNode)
	if childOfOverflow.fp.valid() {
		t.Fatal("descendant of overflowed node must inherit the fallback")
	}
	// Queries across the valid/invalid boundary match the walk.
	pairs := [][2]*Node{
		{prev, last}, {last, okNode}, {childOfOverflow, okNode},
		{childOfOverflow, wide}, {prev, okNode},
	}
	for _, p := range pairs {
		a, b := p[0], p[1]
		if got, want := DMHP(a, b), dmhpWalk(a, b); got != want {
			t.Errorf("DMHP(%v, %v) = %v, walk says %v", a, b, got, want)
		}
		gp, gd := Relation(a, b)
		wp, wd := RelationWalk(a, b)
		if gp != wp || gd != wd {
			t.Errorf("Relation(%v, %v) = (%v, %d), walk says (%v, %d)", a, b, gp, gd, wp, wd)
		}
	}
}

// diffTree grows a randomized tree that deliberately visits the three
// fingerprint regimes: long chains (spill slices past the inline
// threshold), wide fan-out (large sibling indices), and — when overflow
// is requested — nodes whose Seq exceeds a digit, forcing the
// pointer-walk fallback for whole subtrees. maxWide nodes use an
// artificially lowered fan-out cap so the suite stays fast while still
// crossing maxDigitSeq via the dedicated overflow test above.
func diffTree(seed int64, size, chain, fan int) []*Node {
	rng := rand.New(rand.NewSource(seed))
	t := New()
	nodes := []*Node{t.Root()}
	interior := []*Node{t.Root()}
	for len(nodes) < size {
		parent := interior[rng.Intn(len(interior))]
		switch rng.Intn(3) {
		case 0: // grow a chain: push well past the inline digits
			n := parent
			for i := 0; i < chain; i++ {
				kind := AsyncNode
				if i%2 == 1 {
					kind = FinishNode
				}
				n = t.NewChild(n, kind)
				nodes = append(nodes, n)
				interior = append(interior, n)
			}
		case 1: // fan out: drive sibling indices up
			for i := 0; i < fan; i++ {
				kind := AsyncNode
				if i%2 == 0 {
					kind = StepNode
				}
				n := t.NewChild(parent, kind)
				nodes = append(nodes, n)
				if kind != StepNode {
					interior = append(interior, n)
				}
			}
		default:
			n := t.NewChild(parent, StepNode)
			nodes = append(nodes, n)
		}
	}
	return nodes
}

// TestQuickFingerprintAgainstWalk is the differential check the fast
// path rests on: over random trees spanning the inline, spill, and
// deep regimes, the fingerprint implementations of DMHP, Relation
// (parallelism + LCA depth), LCA, and LeftOf must agree with the §5.2
// pointer walk on every sampled node pair.
func TestQuickFingerprintAgainstWalk(t *testing.T) {
	check := func(seed int64, ai, bi uint16) bool {
		nodes := diffTree(seed, 160, 3*inlineDigits, 9)
		a := nodes[int(ai)%len(nodes)]
		b := nodes[int(bi)%len(nodes)]
		if got, want := DMHP(a, b), dmhpWalk(a, b); got != want {
			t.Logf("seed %d: DMHP(%v,%v) = %v, walk %v", seed, a, b, got, want)
			return false
		}
		gp, gd := Relation(a, b)
		wp, wd := RelationWalk(a, b)
		if gp != wp || gd != wd {
			t.Logf("seed %d: Relation(%v,%v) = (%v,%d), walk (%v,%d)", seed, a, b, gp, gd, wp, wd)
			return false
		}
		lca, ca, cb := Relate(a, b)
		wl, wa, wb := relateWalk(a, b)
		if lca != wl || ca != wa || cb != wb {
			t.Logf("seed %d: Relate(%v,%v) = (%v,%v,%v), walk (%v,%v,%v)",
				seed, a, b, lca, ca, cb, wl, wa, wb)
			return false
		}
		if got, want := LeftOf(a, b), wa != nil && wb != nil && wa.Seq < wb.Seq; got != want {
			t.Logf("seed %d: LeftOf(%v,%v) = %v, walk %v", seed, a, b, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 600}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFingerprintSpillExhaustive: on pure deep trees (every node
// past the spill threshold) compare all pairs exhaustively, so the
// word-loop prefix comparison is hit with shared prefixes of every
// length.
func TestQuickFingerprintSpillExhaustive(t *testing.T) {
	tr := New()
	// A trunk of depth 2*inlineDigits with two deep branches hanging
	// off every trunk node.
	trunk := tr.Root()
	var all []*Node
	for d := 0; d < 2*inlineDigits; d++ {
		kind := AsyncNode
		if d%3 == 1 {
			kind = FinishNode
		}
		trunk = tr.NewChild(trunk, kind)
		all = append(all, trunk)
		for b := 0; b < 2; b++ {
			n := tr.NewChild(trunk, AsyncNode)
			all = append(all, n)
			for e := 0; e < 3; e++ {
				n = tr.NewChild(n, StepNode)
				all = append(all, n)
				break // steps are leaves; just one per branch
			}
		}
	}
	for _, a := range all {
		for _, b := range all {
			if got, want := DMHP(a, b), dmhpWalk(a, b); got != want {
				t.Fatalf("DMHP(%v,%v) = %v, walk %v", a, b, got, want)
			}
			gp, gd := Relation(a, b)
			wp, wd := RelationWalk(a, b)
			if gp != wp || gd != wd {
				t.Fatalf("Relation(%v,%v) = (%v,%d), walk (%v,%d)", a, b, gp, gd, wp, wd)
			}
		}
	}
}
