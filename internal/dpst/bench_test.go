package dpst

import "testing"

// deepPair builds two steps whose LCA sits depth levels above them, the
// worst case for the §5.2 walk.
func deepPair(depth int) (*Node, *Node) {
	t := New()
	left, right := t.Root(), t.Root()
	for i := 0; i < depth; i++ {
		left = t.NewChild(left, AsyncNode)
	}
	for i := 0; i < depth; i++ {
		right = t.NewChild(right, FinishNode)
	}
	return t.NewChild(left, StepNode), t.NewChild(right, StepNode)
}

func BenchmarkNewChild(b *testing.B) {
	t := New()
	parent := t.Root()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.NewChild(parent, StepNode)
	}
}

func BenchmarkLCA(b *testing.B) {
	for _, depth := range []int{4, 16, 64} {
		s1, s2 := deepPair(depth)
		b.Run(itoa(depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				LCA(s1, s2)
			}
		})
	}
}

func BenchmarkDMHP(b *testing.B) {
	for _, depth := range []int{4, 16, 64} {
		s1, s2 := deepPair(depth)
		b.Run(itoa(depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				DMHP(s1, s2)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
