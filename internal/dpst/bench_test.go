package dpst

import "testing"

// deepPair builds two steps whose LCA is the root, depth levels above
// them — the worst case for the §5.2 walk (it pointer-chases both full
// root paths) and the best case for the fingerprint compare (the first
// packed word already differs).
func deepPair(depth int) (*Node, *Node) {
	t := New()
	left, right := t.Root(), t.Root()
	for i := 0; i < depth; i++ {
		left = t.NewChild(left, AsyncNode)
	}
	for i := 0; i < depth; i++ {
		right = t.NewChild(right, FinishNode)
	}
	return t.NewChild(left, StepNode), t.NewChild(right, StepNode)
}

// sharedPair builds two steps under a common trunk of the given depth:
// the LCA sits just above the leaves. This is the walk's best case (two
// hops) and the fingerprint's worst (the whole shared prefix is
// compared word by word), so together with deepPair it brackets both
// implementations.
func sharedPair(depth int) (*Node, *Node) {
	t := New()
	trunk := t.Root()
	for i := 0; i < depth; i++ {
		trunk = t.NewChild(trunk, FinishNode)
	}
	a := t.NewChild(t.NewChild(trunk, AsyncNode), StepNode)
	b := t.NewChild(t.NewChild(trunk, AsyncNode), StepNode)
	return a, b
}

// overflowPair builds a deepPair whose paths start with a sibling index
// past maxDigitSeq, so fingerprints are invalid and DMHP dispatches to
// the pointer-walk fallback — the fallback's full cost, including the
// validity check.
func overflowPair(depth int) (*Node, *Node) {
	t := New()
	for i := 0; i <= maxDigitSeq; i++ {
		t.NewChild(t.Root(), StepNode)
	}
	left, right := t.NewChild(t.Root(), AsyncNode), t.NewChild(t.Root(), FinishNode)
	for i := 1; i < depth; i++ {
		left = t.NewChild(left, AsyncNode)
		right = t.NewChild(right, FinishNode)
	}
	return t.NewChild(left, StepNode), t.NewChild(right, StepNode)
}

// benchDepths spans the inline regime (8), a moderately deep spill
// (64), and a very deep spill (512).
var benchDepths = []int{8, 64, 512}

func BenchmarkNewChild(b *testing.B) {
	t := New()
	parent := t.Root()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.NewChild(parent, StepNode)
	}
}

// BenchmarkNewChildDeep measures insertion at depth 64, where every new
// node copies its spill words.
func BenchmarkNewChildDeep(b *testing.B) {
	t := New()
	parent := t.Root()
	for i := 0; i < 64; i++ {
		parent = t.NewChild(parent, FinishNode)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.NewChild(parent, StepNode)
	}
}

func BenchmarkLCA(b *testing.B) {
	for _, depth := range benchDepths {
		s1, s2 := deepPair(depth)
		b.Run(itoa(depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				LCA(s1, s2)
			}
		})
	}
}

// BenchmarkDMHP is the fingerprint fast path (root-diverging pair).
func BenchmarkDMHP(b *testing.B) {
	for _, depth := range benchDepths {
		s1, s2 := deepPair(depth)
		b.Run(itoa(depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				DMHP(s1, s2)
			}
		})
	}
}

// BenchmarkDMHPWalk is the §5.2 pointer walk on the same pairs: the
// cost the fast path removes, and what overflow fallback degrades to.
func BenchmarkDMHPWalk(b *testing.B) {
	for _, depth := range benchDepths {
		s1, s2 := deepPair(depth)
		b.Run(itoa(depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dmhpWalk(s1, s2)
			}
		})
	}
}

// BenchmarkDMHPFallback routes through DMHP's public dispatch with
// invalid fingerprints: the real price of the fallback (validity check
// plus walk).
func BenchmarkDMHPFallback(b *testing.B) {
	for _, depth := range benchDepths {
		s1, s2 := overflowPair(depth)
		b.Run(itoa(depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				DMHP(s1, s2)
			}
		})
	}
}

// BenchmarkDMHPSharedPrefix is the fingerprint path's worst shape: a
// deep common trunk scanned word by word, where the walk would need
// only two hops.
func BenchmarkDMHPSharedPrefix(b *testing.B) {
	for _, depth := range benchDepths {
		s1, s2 := sharedPair(depth)
		b.Run(itoa(depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				DMHP(s1, s2)
			}
		})
	}
}

// BenchmarkRelation measures the detector's actual hot-path query
// (parallelism + LCA depth in one shot).
func BenchmarkRelation(b *testing.B) {
	for _, depth := range benchDepths {
		s1, s2 := deepPair(depth)
		b.Run(itoa(depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Relation(s1, s2)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
