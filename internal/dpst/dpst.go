// Package dpst implements the Dynamic Program Structure Tree of Raman et
// al. (PLDI 2012, §3 and §5.1).
//
// The DPST is an ordered rooted tree built during execution of an
// async/finish program. Interior nodes are dynamic async and finish
// instances; leaves are steps (maximal computation sequences containing no
// task operation). Siblings are ordered left to right by creation order,
// which mirrors the sequential order of the computations in their common
// parent scope.
//
// The tree supports exactly the two queries race detection needs:
//
//   - LCA: the least common ancestor of two nodes, found by walking parent
//     pointers after equalizing depths (§5.2).
//   - DMHP: "dynamic may happen in parallel" — Theorem 1: two steps S1
//     (left) and S2 may run in parallel iff the ancestor of S1 that is a
//     child of LCA(S1,S2) is an async node.
//
// Concurrency. As in the paper's implementation (§5.1), no node field
// requires synchronization: Parent, Depth, Seq, and Kind are written once
// at creation and are immutable afterwards; the child counter of a node is
// only ever advanced by the single task that owns that scope, because a
// task appends new children either under a finish it itself started or
// under its own async node. Nodes become visible to other tasks only via
// the scheduler's task hand-off or the detector's atomic shadow-word
// stores, both of which establish the necessary happens-before edges.
package dpst

import (
	"fmt"
	"sync/atomic"
)

// Kind discriminates DPST node types.
type Kind uint8

const (
	// FinishNode represents a dynamic finish instance, including the
	// implicit finish that encloses main.
	FinishNode Kind = iota
	// AsyncNode represents a dynamic async (task) instance.
	AsyncNode
	// StepNode represents a step; steps are exactly the leaves.
	StepNode
)

func (k Kind) String() string {
	switch k {
	case FinishNode:
		return "finish"
	case AsyncNode:
		return "async"
	case StepNode:
		return "step"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Node is one DPST node. All exported fields are immutable after creation
// (§5.1: parent, depth and seq_no are written only on initialization).
type Node struct {
	Parent *Node
	Depth  int32
	Seq    int32 // position among siblings, from 1, left to right
	Kind   Kind
	ID     int64 // unique per tree, in creation order; for reports

	// nchildren counts this node's children so far. Only the task that
	// owns this scope appends children, so plain (non-atomic) access is
	// safe; see the package comment.
	nchildren int32
}

// NodeBytes is the approximate heap size of one Node, used for the
// analytic footprint accounting that reproduces the paper's Table 3.
const NodeBytes = 8 + 4 + 4 + 1 + 8 + 4 + 3 // fields + padding ≈ 32

// String renders a node as e.g. "step#17" for race reports.
func (n *Node) String() string {
	if n == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%s#%d", n.Kind, n.ID)
}

// Tree is a DPST under construction. The zero value is not usable; call
// New.
type Tree struct {
	root  *Node
	ids   atomic.Int64
	count atomic.Int64
}

// New creates a tree containing only the root finish node, which
// corresponds to the implicit finish enclosing the program's main body.
func New() *Tree {
	t := &Tree{}
	t.root = &Node{Kind: FinishNode, ID: 0}
	t.ids.Store(1)
	t.count.Store(1)
	return t
}

// Root returns the root finish node.
func (t *Tree) Root() *Node { return t.root }

// Len returns the number of nodes created so far.
func (t *Tree) Len() int64 { return t.count.Load() }

// Bytes returns the analytic size of the tree in bytes.
func (t *Tree) Bytes() int64 { return t.count.Load() * NodeBytes }

// NewChild appends a new rightmost child of parent and returns it.
// It takes O(1) time and, per the ownership discipline described in the
// package comment, must only be called by the task that owns the parent
// scope.
func (t *Tree) NewChild(parent *Node, kind Kind) *Node {
	parent.nchildren++
	n := &Node{
		Parent: parent,
		Depth:  parent.Depth + 1,
		Seq:    parent.nchildren,
		Kind:   kind,
		ID:     t.ids.Add(1) - 1,
	}
	t.count.Add(1)
	return n
}

// LCA returns the least common ancestor of a and b (§5.2): walk the deeper
// node up to the shallower node's depth, then walk both up in lock step
// until they meet. Cost is linear in the longer of the two root paths.
func LCA(a, b *Node) *Node {
	lca, _, _ := Relate(a, b)
	return lca
}

// Relate returns the least common ancestor of a and b together with the
// child of the LCA on each side's path (childA is the ancestor-or-self of
// a that is a direct child of the LCA, and likewise childB). If one node
// is an ancestor of the other (possible only when a non-leaf is passed),
// the corresponding child is nil. Relate(a, a) returns (a, nil, nil).
func Relate(a, b *Node) (lca, childA, childB *Node) {
	if a == nil || b == nil {
		return nil, nil, nil
	}
	for a.Depth > b.Depth {
		childA, a = a, a.Parent
	}
	for b.Depth > a.Depth {
		childB, b = b, b.Parent
	}
	for a != b {
		childA, a = a, a.Parent
		childB, b = b, b.Parent
	}
	return a, childA, childB
}

// LeftOf reports whether a appears before b in the depth-first traversal
// of the tree (Definition 3). Both must be distinct nodes of the same
// tree, neither an ancestor of the other.
func LeftOf(a, b *Node) bool {
	_, ca, cb := Relate(a, b)
	return ca != nil && cb != nil && ca.Seq < cb.Seq
}

// DMHP implements Algorithm 3: it reports whether steps s1 and s2 may
// happen in parallel in some schedule. By Theorem 1 this holds iff the
// child of LCA(s1,s2) on the left step's path is an async node. A step
// never runs in parallel with itself, and nil (no recorded access) is in
// parallel with nothing.
func DMHP(s1, s2 *Node) bool {
	if s1 == nil || s2 == nil || s1 == s2 {
		return false
	}
	_, c1, c2 := Relate(s1, s2)
	if c1 == nil || c2 == nil {
		// One is an ancestor of the other; cannot happen for two
		// distinct leaves, but be defensive for interior nodes.
		return false
	}
	if c1.Seq < c2.Seq {
		return c1.Kind == AsyncNode
	}
	return c2.Kind == AsyncNode
}
