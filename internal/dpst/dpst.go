// Package dpst implements the Dynamic Program Structure Tree of Raman et
// al. (PLDI 2012, §3 and §5.1).
//
// The DPST is an ordered rooted tree built during execution of an
// async/finish program. Interior nodes are dynamic async and finish
// instances; leaves are steps (maximal computation sequences containing no
// task operation). Siblings are ordered left to right by creation order,
// which mirrors the sequential order of the computations in their common
// parent scope.
//
// The tree supports exactly the two queries race detection needs:
//
//   - LCA: the least common ancestor of two nodes, found by walking parent
//     pointers after equalizing depths (§5.2).
//   - DMHP: "dynamic may happen in parallel" — Theorem 1: two steps S1
//     (left) and S2 may run in parallel iff the ancestor of S1 that is a
//     child of LCA(S1,S2) is an async node.
//
// Concurrency. As in the paper's implementation (§5.1), no node field
// requires synchronization: Parent, Depth, Seq, and Kind are written once
// at creation and are immutable afterwards; the child counter of a node is
// only ever advanced by the single task that owns that scope, because a
// task appends new children either under a finish it itself started or
// under its own async node. Nodes become visible to other tasks only via
// the scheduler's task hand-off or the detector's atomic shadow-word
// stores, both of which establish the necessary happens-before edges.
package dpst

import (
	"fmt"
	"sync/atomic"
)

// Kind discriminates DPST node types.
type Kind uint8

const (
	// FinishNode represents a dynamic finish instance, including the
	// implicit finish that encloses main.
	FinishNode Kind = iota
	// AsyncNode represents a dynamic async (task) instance.
	AsyncNode
	// StepNode represents a step; steps are exactly the leaves.
	StepNode
)

func (k Kind) String() string {
	switch k {
	case FinishNode:
		return "finish"
	case AsyncNode:
		return "async"
	case StepNode:
		return "step"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Node is one DPST node. All exported fields are immutable after creation
// (§5.1: parent, depth and seq_no are written only on initialization).
type Node struct {
	Parent *Node
	Depth  int32
	Seq    int32 // position among siblings, from 1, left to right
	Kind   Kind

	// nchildren counts this node's children so far. Only the task that
	// owns this scope appends children, so plain (non-atomic) access is
	// safe; see the package comment. (Placed here to share Kind's
	// padding hole; see NodeBytes.)
	nchildren int32

	ID int64 // unique per tree, in creation order; for reports

	// fp is the packed root-path fingerprint enabling near-O(1)
	// DMHP/LCA-depth queries (see fingerprint.go). Immutable after
	// creation, like every other field.
	fp fingerprint
}

// NodeBytes is the heap size of one Node, used for the analytic
// footprint accounting that reproduces the paper's Table 3: the
// original fields (32 bytes with padding — nchildren sits in Kind's
// padding hole) plus the 40-byte inline fingerprint (two packed words
// and the spill slice header; invalidity is a w0 sentinel, not a
// flag). Spill backing arrays, allocated only past depth 8, are
// accounted separately by Tree.Bytes.
const NodeBytes = 32 + 16 + 24 // fields ≈ 32 + w0/w1 + spill slice header

// String renders a node as e.g. "step#17" for race reports.
func (n *Node) String() string {
	if n == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%s#%d", n.Kind, n.ID)
}

// Tree is a DPST under construction. The zero value is not usable; call
// New.
type Tree struct {
	root       *Node
	ids        atomic.Int64
	count      atomic.Int64
	spillWords atomic.Int64 // fingerprint spill words, for Bytes
}

// New creates a tree containing only the root finish node, which
// corresponds to the implicit finish enclosing the program's main body.
func New() *Tree {
	t := &Tree{}
	t.root = &Node{Kind: FinishNode, ID: 0}
	t.ids.Store(1)
	t.count.Store(1)
	return t
}

// Root returns the root finish node.
func (t *Tree) Root() *Node { return t.root }

// Len returns the number of nodes created so far.
func (t *Tree) Len() int64 { return t.count.Load() }

// Bytes returns the analytic size of the tree in bytes, including the
// fingerprint spill words of nodes deeper than the inline threshold.
func (t *Tree) Bytes() int64 { return t.count.Load()*NodeBytes + t.spillWords.Load()*8 }

// NewChild appends a new rightmost child of parent and returns it.
// It takes O(1) time and, per the ownership discipline described in the
// package comment, must only be called by the task that owns the parent
// scope.
func (t *Tree) NewChild(parent *Node, kind Kind) *Node {
	parent.nchildren++
	n := &Node{
		Parent: parent,
		Depth:  parent.Depth + 1,
		Seq:    parent.nchildren,
		Kind:   kind,
		ID:     t.ids.Add(1) - 1,
		fp:     parent.fp.extend(parent.Depth+1, parent.nchildren, kind),
	}
	t.count.Add(1)
	if w := n.fp.spillWords(); w > 0 {
		t.spillWords.Add(w)
	}
	return n
}

// LCA returns the least common ancestor of a and b (§5.2). With valid
// fingerprints the LCA depth comes from the packed-word comparison and
// only the parent hops up to that depth remain; otherwise the full
// lock-step walk runs.
func LCA(a, b *Node) *Node {
	lca, _, _ := Relate(a, b)
	return lca
}

// Relate returns the least common ancestor of a and b together with the
// child of the LCA on each side's path (childA is the ancestor-or-self of
// a that is a direct child of the LCA, and likewise childB). If one node
// is an ancestor of the other (possible only when a non-leaf is passed),
// the corresponding child is nil. Relate(a, a) returns (a, nil, nil).
func Relate(a, b *Node) (lca, childA, childB *Node) {
	if a == nil || b == nil {
		return nil, nil, nil
	}
	if a.fp.valid() && b.fp.valid() {
		d, _, _ := fpRelate(a, b)
		for a.Depth > d {
			childA, a = a, a.Parent
		}
		for b.Depth > d {
			childB, b = b, b.Parent
		}
		return a, childA, childB
	}
	return relateWalk(a, b)
}

// relateWalk is the §5.2 reference implementation of Relate: walk the
// deeper node up to the shallower node's depth, then walk both up in
// lock step until they meet. Cost is linear in the longer root path. It
// is the always-correct fallback for nodes whose fingerprints
// overflowed, and the oracle the fingerprint path is differentially
// tested against.
func relateWalk(a, b *Node) (lca, childA, childB *Node) {
	if a == nil || b == nil {
		return nil, nil, nil
	}
	for a.Depth > b.Depth {
		childA, a = a, a.Parent
	}
	for b.Depth > a.Depth {
		childB, b = b, b.Parent
	}
	for a != b {
		childA, a = a, a.Parent
		childB, b = b, b.Parent
	}
	return a, childA, childB
}

// LeftOf reports whether a appears before b in the depth-first traversal
// of the tree (Definition 3). Both must be distinct nodes of the same
// tree, neither an ancestor of the other.
func LeftOf(a, b *Node) bool {
	if a == nil || b == nil || a == b {
		return false
	}
	if a.fp.valid() && b.fp.valid() {
		_, da, db := fpRelate(a, b)
		return da != 0 && db != 0 && digitSeq(da) < digitSeq(db)
	}
	_, ca, cb := relateWalk(a, b)
	return ca != nil && cb != nil && ca.Seq < cb.Seq
}

// DMHP implements Algorithm 3: it reports whether steps s1 and s2 may
// happen in parallel in some schedule. By Theorem 1 this holds iff the
// child of LCA(s1,s2) on the left step's path is an async node. A step
// never runs in parallel with itself, and nil (no recorded access) is in
// parallel with nothing.
func DMHP(s1, s2 *Node) bool {
	if s1 == nil || s2 == nil || s1 == s2 {
		return false
	}
	if s1.fp.valid() && s2.fp.valid() {
		_, d1, d2 := fpRelate(s1, s2)
		return digitsParallel(d1, d2)
	}
	return dmhpWalk(s1, s2)
}

// dmhpWalk is Algorithm 3 over the pointer walk; the fallback and
// differential reference for DMHP.
func dmhpWalk(s1, s2 *Node) bool {
	if s1 == nil || s2 == nil || s1 == s2 {
		return false
	}
	_, c1, c2 := relateWalk(s1, s2)
	if c1 == nil || c2 == nil {
		// One is an ancestor of the other; cannot happen for two
		// distinct leaves, but be defensive for interior nodes.
		return false
	}
	if c1.Seq < c2.Seq {
		return c1.Kind == AsyncNode
	}
	return c2.Kind == AsyncNode
}

// Relation answers, in one query, everything the detector's read and
// write checks need about a pair of nodes: whether they may happen in
// parallel (Theorem 1) and the depth of their LCA. With valid
// fingerprints neither answer touches the tree — this is the detector's
// near-O(1) hot path. Relation(a, a) is (false, a.Depth); a nil operand
// yields (false, -1).
func Relation(a, b *Node) (parallel bool, lcaDepth int32) {
	if a == nil || b == nil {
		return false, -1
	}
	if a == b {
		return false, a.Depth
	}
	if a.fp.valid() && b.fp.valid() {
		d, da, db := fpRelate(a, b)
		return digitsParallel(da, db), d
	}
	return RelationWalk(a, b)
}

// FastPath reports whether the node's packed fingerprint is valid — a
// Relation query between two fast-path nodes is answered without touching
// the tree. Exported so the detector's observability layer can attribute
// each DMHP query to the fast path or the walk.
func (n *Node) FastPath() bool { return n.fp.valid() }

// RelationWalk answers Relation via the §5.2 pointer walk regardless of
// fingerprint validity; exported so the detector's walk-only ablation
// and the differential tests can pin the two implementations against
// each other.
func RelationWalk(a, b *Node) (parallel bool, lcaDepth int32) {
	if a == nil || b == nil {
		return false, -1
	}
	if a == b {
		return false, a.Depth
	}
	lca, ca, cb := relateWalk(a, b)
	if ca == nil || cb == nil {
		return false, lca.Depth
	}
	left := ca
	if cb.Seq < ca.Seq {
		left = cb
	}
	return left.Kind == AsyncNode, lca.Depth
}
