// Packed path fingerprints: a constant-time fast path for the DPST
// queries.
//
// The §5.2 LCA walk pointer-chases parent links — O(tree depth) per
// DMHP and cache-hostile, which EXPERIMENTS.md identifies as the
// dominant cost of the detector's hot path. Following the idea of
// compact per-node path encodings (DePa: Westrick, Wang & Acar answer
// order-maintenance queries for fork-join programs from per-vertex
// packed paths in near-constant time), every node is given an immutable
// *fingerprint* of its root path at creation:
//
//	digit(level) = Seq<<2 | Kind     (one 16-bit digit per ancestor)
//
// packed most-significant-first into two inline uint64 words (levels
// 1..8) and, past that depth, a small immutable spill slice of further
// words (4 digits each). Because Seq >= 1 every real digit is nonzero,
// so unused trailing slots (zero) never collide with a path digit.
//
// Two properties make the queries fall out of word arithmetic:
//
//  1. The packing is prefix-preserving: node a is an ancestor of node b
//     iff a's digits are exactly the leading digits of b's fingerprint.
//     Hence the index of the first differing digit — XOR plus a
//     leading-zero count — is the depth of LCA(a, b).
//  2. A digit carries everything Theorem 1 needs about the child of the
//     LCA on each path: its sibling position (Seq, for deciding which
//     side is the left one) and its Kind (is it an async?).
//
// So DMHP, LeftOf, and the LCA *depth* need no tree walk at all: one or
// two XORs in the common shallow case, a short word loop for deep
// nodes. The encoding gives up when a digit overflows — a node with
// sibling index above maxDigitSeq marks itself and (transitively) every
// descendant as unencodable — and the queries then fall back to the
// always-correct §5.2 pointer walk. Precision is unaffected either way:
// both paths compute the same relation (see the differential quick
// checks in fingerprint_test.go), only the traversal differs — the same
// argument by which the async-finish vector-clock line of work (Kumar,
// Agrawal & Biswas) answers MHP from per-node metadata without a live
// tree walk.
package dpst

import "math/bits"

const (
	digitBits     = 16                // one path element per digit
	digitsPerWord = 64 / digitBits    // 4
	inlineDigits  = 2 * digitsPerWord // levels encoded in w0/w1
	kindBits      = 2                 // Kind fits in two bits
	kindMask      = 1<<kindBits - 1
	digitMask     = 1<<digitBits - 1
	// maxDigitSeq is the largest sibling index a digit can hold; a
	// node with Seq beyond it (and all its descendants) falls back to
	// the pointer walk.
	maxDigitSeq = 1<<(digitBits-kindBits) - 1 // 16383
)

// fingerprint is the packed root path of a node. All fields are
// immutable after creation; the spill slice is never shared in a
// mutable position (each node owning spill words allocates its own
// copy), so concurrent readers need no synchronization.
//
// Invalidity (a digit overflowed somewhere on the path) is encoded as
// w0 == fpInvalid rather than a separate flag, keeping the struct at
// 40 bytes: all-ones is unreachable for a real path because its digits
// would all carry kind bits 3, and Kind has only three values.
type fingerprint struct {
	w0, w1 uint64   // digits for levels 1..8, most significant first
	spill  []uint64 // digits for levels 9.., 4 per word
}

// fpInvalid marks an unencodable path; see the fingerprint comment.
const fpInvalid = ^uint64(0)

// valid reports whether this fingerprint encodes the full root path.
func (fp *fingerprint) valid() bool { return fp.w0 != fpInvalid }

// digitShift returns the bit shift of digit k within its word
// (MSB-first so that LeadingZeros finds the shallowest difference).
func digitShift(k int) uint { return uint(64 - digitBits*(k+1)) }

// extend returns the fingerprint of a child of a node with fingerprint
// parent, created at the given depth with the given sibling index and
// kind. Spill words are copied, never mutated in place, because the
// parent's fingerprint may already be visible to other tasks.
func (parent *fingerprint) extend(depth, seq int32, kind Kind) fingerprint {
	if !parent.valid() || seq > maxDigitSeq {
		return fingerprint{w0: fpInvalid} // this subtree uses the walk
	}
	d := uint64(seq)<<kindBits | uint64(kind)
	fp := fingerprint{w0: parent.w0, w1: parent.w1, spill: parent.spill}
	i := int(depth) - 1 // digit index of the new level
	switch {
	case i < digitsPerWord:
		fp.w0 |= d << digitShift(i)
	case i < inlineDigits:
		fp.w1 |= d << digitShift(i-digitsPerWord)
	default:
		k := i - inlineDigits
		sp := make([]uint64, k/digitsPerWord+1)
		copy(sp, parent.spill)
		sp[k/digitsPerWord] |= d << digitShift(k%digitsPerWord)
		fp.spill = sp
	}
	return fp
}

// spillWords returns how many spill words this fingerprint owns (0 for
// inline-only paths); used by the tree's analytic byte accounting.
func (fp *fingerprint) spillWords() int64 { return int64(len(fp.spill)) }

// digitAt returns the packed digit of path level i+1 (the child of the
// depth-i ancestor). The caller guarantees i < the node's depth.
func (fp *fingerprint) digitAt(i int) uint64 {
	switch {
	case i < digitsPerWord:
		return fp.w0 >> digitShift(i) & digitMask
	case i < inlineDigits:
		return fp.w1 >> digitShift(i-digitsPerWord) & digitMask
	default:
		k := i - inlineDigits
		return fp.spill[k/digitsPerWord] >> digitShift(k%digitsPerWord) & digitMask
	}
}

func digitSeq(d uint64) int32 { return int32(d >> kindBits) }
func digitKind(d uint64) Kind { return Kind(d & kindMask) }

// firstDiff returns the index of the first digit at which the two
// fingerprints differ, or a value past any real depth when one path is
// a prefix of the other (the caller caps at min depth).
func firstDiff(a, b *fingerprint) int32 {
	if x := a.w0 ^ b.w0; x != 0 {
		return int32(bits.LeadingZeros64(x) / digitBits)
	}
	if x := a.w1 ^ b.w1; x != 0 {
		return int32(digitsPerWord + bits.LeadingZeros64(x)/digitBits)
	}
	la, lb := len(a.spill), len(b.spill)
	n := la
	if lb > n {
		n = lb
	}
	for i := 0; i < n; i++ {
		var wa, wb uint64
		if i < la {
			wa = a.spill[i]
		}
		if i < lb {
			wb = b.spill[i]
		}
		if x := wa ^ wb; x != 0 {
			return int32(inlineDigits + i*digitsPerWord + bits.LeadingZeros64(x)/digitBits)
		}
	}
	return int32(inlineDigits + n*digitsPerWord)
}

// fpRelate answers the structural query for two nodes with valid
// fingerprints: the depth of their LCA, and the packed digits of the
// LCA's child on each node's path (0 when that node *is* the LCA, i.e.
// an ancestor of the other).
func fpRelate(a, b *Node) (lcaDepth int32, da, db uint64) {
	lcaDepth = firstDiff(&a.fp, &b.fp)
	min := a.Depth
	if b.Depth < min {
		min = b.Depth
	}
	if lcaDepth > min {
		lcaDepth = min
	}
	if a.Depth > lcaDepth {
		da = a.fp.digitAt(int(lcaDepth))
	}
	if b.Depth > lcaDepth {
		db = b.fp.digitAt(int(lcaDepth))
	}
	return lcaDepth, da, db
}

// digitsParallel applies Theorem 1 to the two LCA-child digits: the
// steps may run in parallel iff the left child (smaller Seq) is an
// async node. A zero digit means one node was an ancestor of the other:
// never parallel.
func digitsParallel(da, db uint64) bool {
	if da == 0 || db == 0 {
		return false
	}
	left := da
	if digitSeq(db) < digitSeq(da) {
		left = db
	}
	return digitKind(left) == AsyncNode
}
