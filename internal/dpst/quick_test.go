package dpst

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomTree grows a tree by repeatedly attaching children (alternating
// kinds) to random existing interior nodes, returning all nodes.
func randomTree(seed int64, size int) []*Node {
	rng := rand.New(rand.NewSource(seed))
	t := New()
	nodes := []*Node{t.Root()}
	interior := []*Node{t.Root()}
	for len(nodes) < size {
		parent := interior[rng.Intn(len(interior))]
		var kind Kind
		switch rng.Intn(3) {
		case 0:
			kind = AsyncNode
		case 1:
			kind = FinishNode
		default:
			kind = StepNode
		}
		n := t.NewChild(parent, kind)
		nodes = append(nodes, n)
		if kind != StepNode {
			interior = append(interior, n)
		}
	}
	return nodes
}

// naiveLCA finds the least common ancestor by materializing a's ancestor
// set.
func naiveLCA(a, b *Node) *Node {
	anc := map[*Node]bool{}
	for n := a; n != nil; n = n.Parent {
		anc[n] = true
	}
	for n := b; n != nil; n = n.Parent {
		if anc[n] {
			return n
		}
	}
	return nil
}

// naiveLeftOf decides depth-first order from the root paths.
func naiveLeftOf(a, b *Node) bool {
	l := naiveLCA(a, b)
	ca, cb := childToward(l, a), childToward(l, b)
	return ca != nil && cb != nil && ca.Seq < cb.Seq
}

// childToward returns the child of lca on the path to n (nil when n is
// the lca).
func childToward(lca, n *Node) *Node {
	var prev *Node
	for ; n != nil && n != lca; n = n.Parent {
		prev = n
	}
	_ = n
	return prev
}

// naiveDMHP re-states Theorem 1 from the naive primitives.
func naiveDMHP(a, b *Node) bool {
	if a == nil || b == nil || a == b {
		return false
	}
	l := naiveLCA(a, b)
	ca, cb := childToward(l, a), childToward(l, b)
	if ca == nil || cb == nil {
		return false
	}
	left := ca
	if cb.Seq < ca.Seq {
		left = cb
	}
	return left.Kind == AsyncNode
}

// TestQuickLCAAgainstNaive: the depth-walk LCA must equal the ancestor-
// set LCA for every node pair of random trees.
func TestQuickLCAAgainstNaive(t *testing.T) {
	check := func(seed int64, ai, bi uint16) bool {
		nodes := randomTree(seed, 120)
		a := nodes[int(ai)%len(nodes)]
		b := nodes[int(bi)%len(nodes)]
		return LCA(a, b) == naiveLCA(a, b)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDMHPAgainstNaive: Algorithm 3 must agree with the Theorem 1
// restatement over naive primitives.
func TestQuickDMHPAgainstNaive(t *testing.T) {
	check := func(seed int64, ai, bi uint16) bool {
		nodes := randomTree(seed, 120)
		a := nodes[int(ai)%len(nodes)]
		b := nodes[int(bi)%len(nodes)]
		return DMHP(a, b) == naiveDMHP(a, b)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDMHPSymmetric: DMHP is symmetric and irreflexive on any tree.
func TestQuickDMHPSymmetric(t *testing.T) {
	check := func(seed int64, ai, bi uint16) bool {
		nodes := randomTree(seed, 80)
		a := nodes[int(ai)%len(nodes)]
		b := nodes[int(bi)%len(nodes)]
		if a == b {
			return !DMHP(a, b)
		}
		return DMHP(a, b) == DMHP(b, a)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLeftOfTotalOrder: among leaves with a common proper LCA,
// LeftOf is a strict total order consistent with naive DFS order.
func TestQuickLeftOfTotalOrder(t *testing.T) {
	check := func(seed int64) bool {
		nodes := randomTree(seed, 100)
		var leaves []*Node
		for _, n := range nodes {
			if n.Kind == StepNode {
				leaves = append(leaves, n)
			}
		}
		for i := 0; i < len(leaves); i++ {
			for j := 0; j < len(leaves); j++ {
				a, b := leaves[i], leaves[j]
				if LeftOf(a, b) != naiveLeftOf(a, b) {
					return false
				}
				if a != b && LeftOf(a, b) == LeftOf(b, a) {
					return false // exactly one direction for distinct leaves
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPathInvariants: depth equals root-path length and sibling
// sequence numbers are dense from 1.
func TestQuickPathInvariants(t *testing.T) {
	check := func(seed int64) bool {
		nodes := randomTree(seed, 150)
		maxSeq := map[*Node]int32{}
		for _, n := range nodes {
			d := int32(0)
			for p := n.Parent; p != nil; p = p.Parent {
				d++
			}
			if d != n.Depth {
				return false
			}
			if n.Parent != nil {
				if n.Seq < 1 {
					return false
				}
				if n.Seq > maxSeq[n.Parent] {
					maxSeq[n.Parent] = n.Seq
				}
			}
		}
		counts := map[*Node]int32{}
		for _, n := range nodes {
			if n.Parent != nil {
				counts[n.Parent]++
			}
		}
		for p, c := range counts {
			if maxSeq[p] != c {
				return false // sequence numbers not dense
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
