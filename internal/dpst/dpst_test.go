package dpst

import "testing"

// fig1 builds the DPST of the paper's Figure 1 example by hand:
//
//	finish {            // F1 (root)
//	    S1; S2;         // step1
//	    async {         // A1
//	        S3; S4; S5; // step2
//	        async {     // A2
//	            S6;     // step3
//	        }
//	        S7; S8;     // step4
//	    }
//	    S9; S10; S11;   // step5
//	    async {         // A3
//	        S12; S13;   // step6
//	    }
//	}
type fig1 struct {
	t                      *Tree
	f1, a1, a2, a3         *Node
	s1, s2, s3, s4, s5, s6 *Node
}

func buildFig1() fig1 {
	t := New()
	f := fig1{t: t, f1: t.Root()}
	f.s1 = t.NewChild(f.f1, StepNode)
	f.a1 = t.NewChild(f.f1, AsyncNode)
	f.s2 = t.NewChild(f.a1, StepNode)
	f.s5 = t.NewChild(f.f1, StepNode) // continuation of main after A1
	f.a2 = t.NewChild(f.a1, AsyncNode)
	f.s3 = t.NewChild(f.a2, StepNode)
	f.s4 = t.NewChild(f.a1, StepNode) // continuation of A1 after A2
	f.a3 = t.NewChild(f.f1, AsyncNode)
	f.s6 = t.NewChild(f.a3, StepNode)
	return f
}

func TestNewChildAssignsStructure(t *testing.T) {
	f := buildFig1()
	if f.f1.Depth != 0 || f.f1.Seq != 0 || f.f1.Kind != FinishNode {
		t.Fatalf("root = depth %d seq %d kind %v", f.f1.Depth, f.f1.Seq, f.f1.Kind)
	}
	checks := []struct {
		n      *Node
		parent *Node
		depth  int32
		seq    int32
	}{
		{f.s1, f.f1, 1, 1},
		{f.a1, f.f1, 1, 2},
		{f.s5, f.f1, 1, 3},
		{f.a3, f.f1, 1, 4},
		{f.s2, f.a1, 2, 1},
		{f.a2, f.a1, 2, 2},
		{f.s4, f.a1, 2, 3},
		{f.s3, f.a2, 3, 1},
		{f.s6, f.a3, 2, 1},
	}
	for _, c := range checks {
		if c.n.Parent != c.parent {
			t.Errorf("%v: parent = %v, want %v", c.n, c.n.Parent, c.parent)
		}
		if c.n.Depth != c.depth {
			t.Errorf("%v: depth = %d, want %d", c.n, c.n.Depth, c.depth)
		}
		if c.n.Seq != c.seq {
			t.Errorf("%v: seq = %d, want %d", c.n, c.n.Seq, c.seq)
		}
	}
	if f.t.Len() != 10 {
		t.Errorf("tree has %d nodes, want 10", f.t.Len())
	}
}

func TestLCA(t *testing.T) {
	f := buildFig1()
	cases := []struct {
		a, b, want *Node
	}{
		{f.s2, f.s5, f.f1},
		{f.s6, f.s5, f.f1},
		{f.s3, f.s4, f.a1},
		{f.s2, f.s3, f.a1},
		{f.s3, f.s6, f.f1},
		{f.s1, f.s1, f.s1},
		{f.s3, f.f1, f.f1},
	}
	for _, c := range cases {
		if got := LCA(c.a, c.b); got != c.want {
			t.Errorf("LCA(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := LCA(c.b, c.a); got != c.want {
			t.Errorf("LCA(%v, %v) = %v, want %v", c.b, c.a, got, c.want)
		}
	}
}

func TestRelateChildren(t *testing.T) {
	f := buildFig1()
	lca, ca, cb := Relate(f.s3, f.s5)
	if lca != f.f1 || ca != f.a1 || cb != f.s5 {
		t.Errorf("Relate(s3, s5) = (%v, %v, %v), want (f1, a1, s5)", lca, ca, cb)
	}
	lca, ca, cb = Relate(f.s3, f.f1)
	if lca != f.f1 || ca == nil || cb != nil {
		t.Errorf("Relate(s3, f1) = (%v, %v, %v), want (f1, a1-side, nil)", lca, ca, cb)
	}
}

func TestDMHPPaperExamples(t *testing.T) {
	f := buildFig1()
	// The two worked examples from §3.2.
	if !DMHP(f.s2, f.s5) {
		t.Error("DMHP(step2, step5) = false, want true (A1 is async)")
	}
	if DMHP(f.s6, f.s5) {
		t.Error("DMHP(step6, step5) = true, want false (step5 precedes A3)")
	}
}

func TestDMHPMatrix(t *testing.T) {
	f := buildFig1()
	// Full pairwise truth table over the six steps of Figure 1,
	// derived from the program: steps of A1/A2 run in parallel with
	// everything after the A1 spawn except what A1 itself ordered;
	// step5 precedes A3; A3 is parallel with A1's subtree.
	steps := []*Node{f.s1, f.s2, f.s3, f.s4, f.s5, f.s6}
	names := []string{"s1", "s2", "s3", "s4", "s5", "s6"}
	want := map[string]bool{
		"s2|s5": true, "s3|s5": true, "s4|s5": true, // A1 subtree vs continuation
		"s2|s6": true, "s3|s6": true, "s4|s6": true, // A1 subtree vs A3
		"s3|s4": true, // A2 vs A1's continuation
	}
	for i, a := range steps {
		for j, b := range steps {
			k1 := names[i] + "|" + names[j]
			k2 := names[j] + "|" + names[i]
			expect := want[k1] || want[k2]
			if got := DMHP(a, b); got != expect {
				t.Errorf("DMHP(%s, %s) = %v, want %v", names[i], names[j], got, expect)
			}
		}
	}
}

func TestDMHPDegenerate(t *testing.T) {
	f := buildFig1()
	if DMHP(nil, f.s1) || DMHP(f.s1, nil) || DMHP(nil, nil) {
		t.Error("DMHP with nil operand must be false")
	}
	if DMHP(f.s1, f.s1) {
		t.Error("DMHP(s, s) must be false")
	}
}

func TestLeftOf(t *testing.T) {
	f := buildFig1()
	ordered := []*Node{f.s1, f.s2, f.s3, f.s4, f.s5, f.s6}
	// Depth-first traversal order of the leaves is s1 s2 s3 s4 s5 s6.
	for i := range ordered {
		for j := range ordered {
			got := LeftOf(ordered[i], ordered[j])
			if want := i < j; got != want {
				t.Errorf("LeftOf(s%d, s%d) = %v, want %v", i+1, j+1, got, want)
			}
		}
	}
}

func TestNodeCountFormula(t *testing.T) {
	// §5.3: total nodes = 3*(a+f) - 1 for a async and f finish
	// instances, when every async/finish is followed by a continuation.
	// Figure 1 omits trailing continuations, so check the runtime-built
	// shape instead in package core; here verify the base case: one
	// finish alone has one step child.
	tr := New()
	tr.NewChild(tr.Root(), StepNode)
	if got, want := tr.Len(), int64(2); got != want {
		t.Fatalf("nodes = %d, want %d", got, want)
	}
}

func TestBytesAccounting(t *testing.T) {
	tr := New()
	for i := 0; i < 9; i++ {
		tr.NewChild(tr.Root(), StepNode)
	}
	if got, want := tr.Bytes(), int64(10*NodeBytes); got != want {
		t.Fatalf("Bytes = %d, want %d", got, want)
	}
}
