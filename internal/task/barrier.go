package task

import (
	"fmt"
	"sync"
	"sync/atomic"

	"spd3/internal/detect"
)

// Barrier is a cyclic barrier for n tasks, the synchronization style of
// the original (thread-based) JGF benchmarks the paper discusses in §6.3.
// A task calling Await blocks until n tasks of the current generation
// have arrived.
//
// Barriers are outside the async/finish model: SPD3 and ESP-bags derive
// no ordering from them (and will report the cross-phase sharing they
// mediate — exactly why the paper rewrote the JGF barrier loops into
// finish form). Detectors implementing detect.BarrierObserver (FastTrack
// here, mirroring RoadRunner's special barrier events) receive
// arrive/depart notifications and can credit the barrier's ordering.
//
// Executor requirements. A barrier wait cannot "help" run other tasks —
// a helper could nest another participant beneath the blocked one and
// deadlock the generation — so blocked participants occupy their worker.
// On the pool executor a barrier for n tasks therefore needs Workers >=
// n (enforced at Await; the original JGF programs likewise ran one
// barrier thread per core). The goroutine executor has no such limit,
// and the sequential executor cannot run barrier programs at all (Await
// panics, surfacing as a Run error).
type Barrier struct {
	rt *Runtime
	b  *detect.BarrierInfo
	n  int

	mu    sync.Mutex
	count int
	gen   atomic.Int64
}

// NewBarrier returns a barrier for n participants.
func (rt *Runtime) NewBarrier(n int) *Barrier {
	if n < 1 {
		n = 1
	}
	return &Barrier{
		rt: rt,
		b:  &detect.BarrierInfo{ID: rt.lockIDs.Add(1)},
		n:  n,
	}
}

// Await blocks until n tasks of the current generation have arrived.
func (b *Barrier) Await(c *Ctx) {
	if b.rt.cfg.Executor == Pool && b.n > b.rt.cfg.Workers {
		panic(fmt.Sprintf(
			"task: barrier for %d participants needs >= %d pool workers (have %d); use more workers or the goroutine executor",
			b.n, b.n, b.rt.cfg.Workers))
	}
	obs, _ := b.rt.det.(detect.BarrierObserver)

	b.mu.Lock()
	gen := b.gen.Load()
	if obs != nil {
		obs.BarrierArrive(c.t, b.b, int(gen))
	}
	b.count++
	if b.count == b.n {
		// Last arrival: open the next generation and wake waiters.
		b.count = 0
		b.gen.Store(gen + 1)
		b.mu.Unlock()
		b.rt.ec.Signal()
	} else {
		b.mu.Unlock()
		b.rt.exec.parkFor(c, func() bool { return b.gen.Load() != gen })
	}
	if obs != nil {
		obs.BarrierDepart(c.t, b.b, int(gen))
	}
}
