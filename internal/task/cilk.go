package task

// Cilk provides Cilk-style spawn/sync parallelism as sugar over
// async/finish, realizing the paper's §2 claim that async/finish
// generalizes spawn/sync ("the algorithm presented in this paper is
// applicable to async/finish constructs, which means it also handles
// spawn/sync constructs").
//
// Semantics (Cilk-5): Spawn forks a child that runs in parallel with the
// remainder of the current procedure; Sync blocks until every child this
// procedure has spawned so far has completed (including their transitive
// spawn trees, because children sync implicitly on return); every
// procedure syncs implicitly before returning.
//
// The embedding: the spawns between two syncs of one procedure live in
// one finish scope, opened lazily at the first Spawn and closed at the
// next Sync; each spawned child is an async whose body is itself run
// under RunCilk, giving it the implicit final sync. Detectors therefore
// see plain async/finish events and need no spawn/sync support — SPD3's
// DPST for a Cilk program is exactly the tree its §2 discussion
// describes.
type Cilk struct {
	c    *Ctx
	prev *scope
	open bool
}

// RunCilk executes body as a Cilk procedure on the current task: body
// may Spawn and Sync, and a final implicit Sync runs before RunCilk
// returns.
func RunCilk(c *Ctx, body func(k *Cilk)) {
	//spd3vet:ignore runtime-internal: Cilk is a same-task view over c, never passed across a spawn (Spawn wraps children in RunCilk with their own Ctx)
	k := &Cilk{c: c}
	body(k)
	k.Sync()
}

// Ctx returns the underlying task context (for instrumented memory
// accesses within the procedure).
func (k *Cilk) Ctx() *Ctx { return k.c }

// Spawn forks child as a Cilk procedure running in parallel with the
// remainder of this procedure, joined at the next Sync.
func (k *Cilk) Spawn(child func(k *Cilk)) {
	if !k.open {
		k.prev = k.c.beginFinish()
		k.open = true
	}
	k.c.Async(func(c *Ctx) { RunCilk(c, child) })
}

// Sync blocks until every procedure spawned so far (and its transitive
// spawn tree) has completed. A Sync with no outstanding spawns is a
// no-op, as in Cilk.
func (k *Cilk) Sync() {
	if !k.open {
		return
	}
	k.c.endFinish(k.prev)
	k.open = false
	k.prev = nil
}
