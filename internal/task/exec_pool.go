package task

import (
	"sync"
	"sync/atomic"

	"spd3/internal/sched"
	"spd3/internal/stats"
)

// poolExec is the work-stealing executor: a fixed set of workers, each
// owning a Chase–Lev deque. Spawns push to the spawning worker's deque
// (help-first: the parent keeps running, children wait to be popped or
// stolen). A worker that reaches an end-finish with pending tasks does not
// block the OS thread: it helps by popping its own deque and stealing from
// victims until the scope drains, the standard technique for running
// fork-join programs on a fixed thread pool.
type poolExec struct {
	n       int
	workers []*worker
	done    atomic.Bool
	wg      sync.WaitGroup
}

// worker is one pool worker. Its deque is owned by whatever goroutine is
// currently executing tasks on its behalf; that is always exactly one
// goroutine.
type worker struct {
	id  int
	rt  *Runtime
	p   *poolExec
	dq  *sched.Deque[ptask]
	rng uint64

	// nInline and nSteal batch the worker's task-acquisition counters in
	// plain fields (the deque owner is always exactly one goroutine);
	// poolExec.run flushes them into the stats recorder after the pool
	// has quiesced.
	nInline int64
	nSteal  int64
}

func newPoolExec(n int) *poolExec {
	return &poolExec{n: n}
}

func (p *poolExec) run(rt *Runtime, main *ptask) {
	p.done.Store(false)
	p.workers = make([]*worker, p.n)
	for i := range p.workers {
		p.workers[i] = &worker{
			id:  i,
			rt:  rt,
			p:   p,
			dq:  sched.NewDeque[ptask](),
			rng: uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
		}
	}
	for i := 1; i < p.n; i++ {
		p.wg.Add(1)
		go p.workers[i].loop()
	}
	w0 := p.workers[0]
	c := &Ctx{rt: rt, w: w0, t: main.t, fin: main.fin}
	main.body(c)
	c.flushRegion()
	// main.body ends only after the implicit finish drained, so no task
	// can exist anywhere: shut the pool down.
	p.done.Store(true)
	rt.ec.Signal()
	p.wg.Wait()
	for _, w := range p.workers {
		sh := rt.st.Shard(w.id)
		sh.Add(stats.TaskInline, w.nInline)
		sh.Add(stats.TaskSteal, w.nSteal)
	}
	p.workers = nil
}

func (p *poolExec) spawn(c *Ctx, pt *ptask) {
	c.w.dq.Push(pt)
	c.rt.ec.Signal()
}

func (p *poolExec) wait(c *Ctx, s *scope) {
	p.waitFor(c, func() bool { return s.pending.Load() == 0 })
}

// waitFor blocks until done() holds, helping by running other tasks so
// that a fixed worker pool cannot deadlock on structured joins or
// barriers whose other participants sit in some deque.
func (p *poolExec) waitFor(c *Ctx, done func() bool) {
	w := c.w
	rt := c.rt
	for {
		if done() {
			return
		}
		if pt := w.find(); pt != nil {
			w.exec(pt)
			continue
		}
		ep := rt.ec.PrepareWait()
		if done() {
			rt.ec.CancelWait()
			return
		}
		if pt := w.find(); pt != nil {
			rt.ec.CancelWait()
			w.exec(pt)
			continue
		}
		rt.ec.CommitWait(ep)
	}
}

// parkFor blocks without helping; see the executor interface for why
// barrier waits must not run other tasks on this stack. The other
// participants are picked up by idle workers stealing from this worker's
// deque, which is why barriers on the pool executor need at least as
// many workers as concurrently blocked tasks.
func (p *poolExec) parkFor(c *Ctx, done func() bool) {
	rt := c.rt
	for {
		if done() {
			return
		}
		ep := rt.ec.PrepareWait()
		if done() {
			rt.ec.CancelWait()
			return
		}
		rt.ec.CommitWait(ep)
	}
}

// loop is the top-level routine of workers 1..n-1 (worker 0 is driven by
// the Run caller). It runs until the pool is shut down.
func (w *worker) loop() {
	defer w.p.wg.Done()
	for {
		if pt := w.find(); pt != nil {
			w.exec(pt)
			continue
		}
		ep := w.rt.ec.PrepareWait()
		if w.p.done.Load() {
			w.rt.ec.CancelWait()
			return
		}
		if pt := w.find(); pt != nil {
			w.rt.ec.CancelWait()
			w.exec(pt)
			continue
		}
		w.rt.ec.CommitWait(ep)
		if w.p.done.Load() {
			return
		}
	}
}

func (w *worker) exec(pt *ptask) {
	c := &Ctx{rt: w.rt, w: w, t: pt.t, fin: pt.fin}
	w.rt.runTask(pt, c)
}

// find returns a runnable task: first from the worker's own deque, then
// by stealing.
func (w *worker) find() *ptask {
	if pt := w.dq.Pop(); pt != nil {
		w.nInline++
		return pt
	}
	if pt := w.steal(); pt != nil {
		w.nSteal++
		return pt
	}
	return nil
}

// steal scans the other workers' deques from a random starting victim.
// A sweep that only lost CAS races (rather than finding everything empty)
// is retried a bounded number of times.
func (w *worker) steal() *ptask {
	n := len(w.p.workers)
	if n <= 1 {
		return nil
	}
	for attempt := 0; attempt < 4; attempt++ {
		start := int(w.nextRand() % uint64(n))
		contended := false
		for i := 0; i < n; i++ {
			v := w.p.workers[(start+i)%n]
			if v == w {
				continue
			}
			pt, retry := v.dq.Steal()
			if pt != nil {
				return pt
			}
			if retry {
				contended = true
			}
		}
		if !contended {
			return nil
		}
	}
	return nil
}

// nextRand is a per-worker xorshift64* generator for victim selection;
// deterministic seeding keeps scheduling reproducible enough for tests.
func (w *worker) nextRand() uint64 {
	x := w.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	w.rng = x
	return x * 0x2545f4914f6cdd1d
}
