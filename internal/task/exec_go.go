package task

// goExec runs one goroutine per task and lets the Go scheduler multiplex
// them. It exists to demonstrate scheduler independence: SPD3's guarantees
// do not depend on work-stealing (§7 contrasts this with SP-hybrid, which
// is tied to Cilk's scheduler), so the detector must produce identical
// verdicts under this executor and the pool executor.
type goExec struct{}

func (goExec) run(rt *Runtime, main *ptask) {
	c := &Ctx{rt: rt, t: main.t, fin: main.fin}
	main.body(c)
	c.flushRegion()
}

func (goExec) spawn(c *Ctx, pt *ptask) {
	rt := c.rt
	go rt.runTask(pt, &Ctx{rt: rt, t: pt.t, fin: pt.fin})
}

func (goExec) wait(c *Ctx, s *scope) {
	goExec{}.waitFor(c, func() bool { return s.pending.Load() == 0 })
}

func (goExec) waitFor(c *Ctx, done func() bool) {
	rt := c.rt
	for {
		if done() {
			return
		}
		ep := rt.ec.PrepareWait()
		if done() {
			rt.ec.CancelWait()
			return
		}
		rt.ec.CommitWait(ep)
	}
}

// parkFor is identical to waitFor: with a goroutine per task there is no
// helping and no stack nesting to avoid.
func (e goExec) parkFor(c *Ctx, done func() bool) { e.waitFor(c, done) }
