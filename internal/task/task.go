// Package task implements the structured (async/finish) parallel task
// runtime that the SPD3 reproduction runs on.
//
// The paper targets Habanero-Java's async/finish constructs (§2): `async
// { s }` forks a child task that runs s in parallel with the rest of the
// parent, and `finish { s }` runs s and then blocks until every task
// (transitively) spawned inside s whose immediately enclosing finish (IEF)
// is this finish has completed. Go has no structured fork-join runtime, so
// this package rebuilds one with three interchangeable executors:
//
//   - Pool: a fixed set of workers with Chase–Lev work-stealing deques;
//     a worker blocked at an end-finish helps by running other tasks
//     (this mirrors the HJ scheduler the paper evaluates on).
//   - Goroutines: one goroutine per task, scheduled by the Go runtime;
//     used to demonstrate that SPD3 — unlike SP-hybrid — is independent
//     of the scheduler (§7).
//   - Sequential: depth-first inline execution of every async; this is
//     the execution model ESP-bags and SP-bags require (§1).
//
// The runtime drives a detect.Detector: it emits task/finish lifecycle
// events at exactly the program points the paper instruments, and the
// instrumented containers in package mem route every read and write
// through the detector's shadow memory.
package task

import (
	"errors"
	"fmt"
	"sync/atomic"

	"spd3/internal/detect"
	"spd3/internal/sched"
	"spd3/internal/stats"
)

// ExecKind selects an executor implementation.
type ExecKind uint8

const (
	// Auto (the zero value) lets New pick: Sequential when the detector
	// requires it, Pool otherwise. Because Auto is distinguishable from
	// an explicit choice, New can reject an explicit executor the
	// detector cannot run under instead of silently overriding it.
	Auto ExecKind = iota
	// Pool is the work-stealing worker pool (the parallel default).
	Pool
	// Goroutines runs one goroutine per task.
	Goroutines
	// Sequential executes asyncs inline, depth-first left-to-right.
	Sequential
)

func (k ExecKind) String() string {
	switch k {
	case Auto:
		return "auto"
	case Pool:
		return "pool"
	case Goroutines:
		return "goroutines"
	case Sequential:
		return "sequential"
	default:
		return fmt.Sprintf("ExecKind(%d)", uint8(k))
	}
}

// Config configures a Runtime.
type Config struct {
	// Workers is the number of worker goroutines for the Pool executor
	// (ignored by the others). Zero means 1.
	Workers int
	// Executor selects the execution strategy.
	Executor ExecKind
	// Detector is the race detector to drive; nil means the
	// uninstrumented baseline (detect.Nop).
	Detector detect.Detector
	// CaptureSites makes the instrumented containers attach the source
	// location of every access (via runtime.Caller), so race reports
	// carry file:line for the access that completed the race. Costs
	// roughly a stack-walk frame per access; off by default.
	CaptureSites bool
	// Stats is the observability recorder the runtime (and the
	// instrumented containers) report into; nil disables the counters.
	Stats *stats.Recorder
}

// Runtime executes async/finish programs and drives a detector.
type Runtime struct {
	cfg  Config
	det  detect.Detector
	exec executor
	ec   *sched.EventCount
	st   *stats.Recorder

	taskIDs   atomic.Int64
	finishIDs atomic.Int64
	lockIDs   atomic.Int64

	failure atomic.Pointer[taskFailure]
	running atomic.Bool
}

type taskFailure struct{ err error }

// New validates cfg and returns a runtime.
func New(cfg Config) (*Runtime, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Detector == nil {
		cfg.Detector = detect.Nop{}
	}
	if cfg.Executor == Auto {
		if cfg.Detector.RequiresSequential() {
			cfg.Executor = Sequential
		} else {
			cfg.Executor = Pool
		}
	}
	if cfg.Detector.RequiresSequential() && cfg.Executor != Sequential {
		return nil, fmt.Errorf("task: detector %q requires the sequential executor (got %s)",
			cfg.Detector.Name(), cfg.Executor)
	}
	rt := &Runtime{cfg: cfg, det: cfg.Detector, ec: sched.NewEventCount(), st: cfg.Stats}
	switch cfg.Executor {
	case Pool:
		rt.exec = newPoolExec(cfg.Workers)
	case Goroutines:
		rt.exec = goExec{}
	case Sequential:
		rt.exec = seqExec{}
	default:
		return nil, fmt.Errorf("task: unknown executor %v", cfg.Executor)
	}
	return rt, nil
}

// Detector returns the detector driven by this runtime.
func (rt *Runtime) Detector() detect.Detector { return rt.det }

// Stats returns the runtime's observability recorder (nil when disabled).
func (rt *Runtime) Stats() *stats.Recorder { return rt.st }

// Executor returns the resolved executor kind (never Auto).
func (rt *Runtime) Executor() ExecKind { return rt.cfg.Executor }

// Workers returns the configured worker count.
func (rt *Runtime) Workers() int { return rt.cfg.Workers }

// CaptureSites reports whether instrumented containers should capture
// access source locations.
func (rt *Runtime) CaptureSites() bool { return rt.cfg.CaptureSites }

// NewLock registers a new instrumented lock with the detector.
func (rt *Runtime) NewLock() *detect.Lock {
	return &detect.Lock{ID: rt.lockIDs.Add(1)}
}

// ErrNested is returned by Run when the runtime is already running.
var ErrNested = errors.New("task: Run called on a running runtime")

// Run executes root as the main task under the implicit top-level finish
// and blocks until every transitively spawned task has completed. It
// returns the first task panic (if any) as an error. A Runtime may be
// reused for several consecutive Runs but not concurrently.
func (rt *Runtime) Run(root func(*Ctx)) error {
	if !rt.running.CompareAndSwap(false, true) {
		return ErrNested
	}
	defer rt.running.Store(false)
	rt.failure.Store(nil)

	main := &detect.Task{ID: detect.TaskID(rt.taskIDs.Add(1) - 1)}
	implicit := &detect.Finish{ID: rt.finishIDs.Add(1) - 1, Owner: main}
	main.IEF = implicit
	rt.det.MainTask(main, implicit)
	rootScope := &scope{f: implicit}

	body := func(c *Ctx) {
		func() {
			defer rt.capture()
			root(c)
		}()
		rt.exec.wait(c, rootScope)
		rt.det.FinishEnd(main, implicit)
		rt.flushPageCache(main)
	}
	rt.exec.run(rt, &ptask{body: body, t: main, fin: rootScope})

	if f := rt.failure.Load(); f != nil {
		return f.err
	}
	return nil
}

// capture records a panicking task body as the run's failure. It must be
// deferred around every task body so that finish counters still drain and
// Run can unblock and report the error.
func (rt *Runtime) capture() {
	if p := recover(); p != nil {
		rt.failure.CompareAndSwap(nil, &taskFailure{err: fmt.Errorf("task: panic in task body: %v", p)})
	}
}

// scope is the runtime state of one dynamic finish instance: the count of
// live tasks registered to it. The counter can touch zero and rise again
// while the owner is still inside the finish body, so waiters always
// re-check it under the eventcount protocol rather than relying on a
// one-shot completion signal.
type scope struct {
	f       *detect.Finish
	pending atomic.Int64
}

// Ctx is a task's handle to the runtime. A Ctx is only valid within the
// dynamic extent of the task body it was passed to; do not retain it.
type Ctx struct {
	rt  *Runtime
	w   *worker // executing worker; nil outside the pool executor
	t   *detect.Task
	fin *scope // innermost active finish scope (the task's current IEF)

	// Region-traffic batch (see CountAccess): counts against reg
	// accumulate in plain task-owned integers and reach the sharded
	// recorder only when the task switches regions or ends, so tight
	// loops over one container pay no atomics.
	reg                 *stats.Region
	regReads, regWrites int64
}

// Task returns the runtime record of the current task.
func (c *Ctx) Task() *detect.Task { return c.t }

// WorkerID returns the executing pool worker's index in [0, Workers), or
// -1 under the goroutine and sequential executors. Each worker is driven
// by exactly one goroutine, so worker-indexed state needs no locking.
func (c *Ctx) WorkerID() int {
	if c.w == nil {
		return -1
	}
	return c.w.id
}

// Runtime returns the owning runtime.
func (c *Ctx) Runtime() *Runtime { return c.rt }

// ShardIndex returns a cheap stable stats shard key for work done by the
// current task: the executing pool worker's index, or the task ID under
// the other executors. Distinct concurrent writers thus land on distinct
// shards (pool workers) or spread by task (goroutines).
func (c *Ctx) ShardIndex() int {
	if c.w != nil {
		return c.w.id
	}
	return int(c.t.ID)
}

// CountAccess records one instrumented read or write against region g
// (nil g — stats disabled — is a no-op). Counts are batched per task and
// flushed on region switch and at task end.
func (c *Ctx) CountAccess(g *stats.Region, write bool) {
	if g == nil {
		return
	}
	if g != c.reg {
		c.flushRegion()
		c.reg = g
	}
	if write {
		c.regWrites++
	} else {
		c.regReads++
	}
}

// flushRegion publishes the batched region counts, if any.
func (c *Ctx) flushRegion() {
	if c.reg != nil && c.regReads|c.regWrites != 0 {
		c.reg.Add(c.ShardIndex(), c.regReads, c.regWrites)
	}
	c.regReads, c.regWrites = 0, 0
}

// Async spawns body as a new child task. The child may run before, after,
// or in parallel with the remainder of the parent (§2); it is joined at
// the end of the innermost enclosing finish.
func (c *Ctx) Async(body func(*Ctx)) {
	rt := c.rt
	child := &detect.Task{
		ID:     detect.TaskID(rt.taskIDs.Add(1) - 1),
		Parent: c.t,
		IEF:    c.fin.f,
		Depth:  c.t.Depth + 1,
	}
	rt.det.BeforeSpawn(c.t, child)
	rt.st.Shard(c.ShardIndex()).Inc(stats.TaskSpawn)
	c.fin.pending.Add(1)
	rt.exec.spawn(c, &ptask{body: body, t: child, fin: c.fin})
}

// Finish executes body and then blocks until all tasks spawned within it
// (transitively, whose IEF is this finish) have completed.
func (c *Ctx) Finish(body func(*Ctx)) {
	prev := c.beginFinish()
	body(c)
	c.endFinish(prev)
}

// beginFinish opens a finish scope and returns the scope to restore at
// the matching endFinish. The non-block-structured form exists for the
// Cilk spawn/sync layer, which must hold a finish open across calls.
func (c *Ctx) beginFinish() *scope {
	rt := c.rt
	f := &detect.Finish{ID: rt.finishIDs.Add(1) - 1, Owner: c.t}
	rt.det.FinishStart(c.t, f)
	s := &scope{f: f}
	prev := c.fin
	c.fin = s
	return prev
}

// endFinish joins the innermost finish opened by beginFinish and
// restores the enclosing scope.
func (c *Ctx) endFinish(prev *scope) {
	rt := c.rt
	s := c.fin
	rt.exec.wait(c, s)
	c.fin = prev
	rt.det.FinishEnd(c.t, s.f)
}

// FinishAsync is the common `finish { for ... async }` idiom: it runs
// body inside a fresh finish scope.
func (c *Ctx) FinishAsync(n int, body func(c *Ctx, i int)) {
	c.Finish(func(c *Ctx) {
		for i := 0; i < n; i++ {
			i := i
			c.Async(func(c *Ctx) { body(c, i) })
		}
	})
}

// ParallelFor runs body(i) for lo <= i < hi inside a finish, spawning one
// async per grain-sized block. grain <= 1 gives the paper's fine-grained
// one-async-per-iteration loops; grain = ceil((hi-lo)/workers) gives the
// coarse "chunked" loops used for the FastTrack/Eraser comparison (§6.3).
func (c *Ctx) ParallelFor(lo, hi, grain int, body func(c *Ctx, i int)) {
	if grain < 1 {
		grain = 1
	}
	c.Finish(func(c *Ctx) {
		for start := lo; start < hi; start += grain {
			s, e := start, start+grain
			if e > hi {
				e = hi
			}
			c.Async(func(c *Ctx) {
				for i := s; i < e; i++ {
					body(c, i)
				}
			})
		}
	})
}

// ChunkGrain returns the grain that splits n iterations into one chunk
// per worker, the decomposition the chunked benchmark variants use.
func (c *Ctx) ChunkGrain(n int) int {
	w := c.rt.cfg.Workers
	if w < 1 {
		w = 1
	}
	g := (n + w - 1) / w
	if g < 1 {
		g = 1
	}
	return g
}

// Acquire locks l's detector state; use via mem.Mutex, which pairs it
// with a real sync.Mutex.
func (c *Ctx) Acquire(l *detect.Lock) { c.rt.det.Acquire(c.t, l) }

// Release is the counterpart of Acquire.
func (c *Ctx) Release(l *detect.Lock) { c.rt.det.Release(c.t, l) }

// ptask is a spawned-but-not-finished task: its body, runtime record, and
// the finish scope it is registered in.
type ptask struct {
	body func(*Ctx)
	t    *detect.Task
	fin  *scope
}

// finishTask performs a task's end-of-life bookkeeping: the TaskEnd event,
// then the scope decrement, then a wakeup for any worker blocked on the
// scope. The detector event must precede the decrement so that FinishEnd
// observes all TaskEnds (see the detect package contract).
func (rt *Runtime) finishTask(pt *ptask) {
	rt.det.TaskEnd(pt.t)
	rt.flushPageCache(pt.t)
	if pt.fin.pending.Add(-1) == 0 {
		rt.ec.Signal()
	}
}

// flushPageCache moves the task's batched shadow page-cache tallies into
// a stats shard. It runs on the task's own goroutine (finishTask for
// spawned tasks, the end of Run for the main task), so reading the
// task-owned cache is safe.
func (rt *Runtime) flushPageCache(t *detect.Task) {
	h, m := t.PC.TakeCounts()
	if h|m == 0 || rt.st == nil {
		return
	}
	sh := rt.st.Shard(int(t.ID))
	sh.Add(stats.PageCacheHit, h)
	sh.Add(stats.PageCacheMiss, m)
}

// executor abstracts over the three execution strategies.
type executor interface {
	// run executes the main ptask to completion (including its final
	// wait on the implicit finish scope).
	run(rt *Runtime, main *ptask)
	// spawn makes pt runnable. Called from the parent's goroutine.
	spawn(c *Ctx, pt *ptask)
	// wait blocks the calling task until s has no pending tasks.
	wait(c *Ctx, s *scope)
	// waitFor blocks the calling task until done() reports true,
	// running other tasks meanwhile where the strategy allows (the
	// pool executor "helps"; the sequential executor cannot and
	// panics if done() is not already true). done must be monotonic:
	// once true, it stays true. Safe for tree-shaped dependencies
	// (joins), where helping cannot create cycles.
	waitFor(c *Ctx, done func() bool)
	// parkFor blocks like waitFor but never helps: required for
	// barrier-style waits, where running another participant on the
	// blocked task's stack would nest it beneath the waiter and
	// deadlock the generation.
	parkFor(c *Ctx, done func() bool)
}
