package task

import (
	"sync/atomic"
	"testing"

	"spd3/internal/core"
	"spd3/internal/detect"
)

func TestCilkFib(t *testing.T) {
	// The canonical Cilk program: results flow through per-call slots,
	// synchronized by the implicit sync before each return.
	for _, cfg := range []Config{
		{Executor: Sequential},
		{Executor: Goroutines},
		{Executor: Pool, Workers: 4},
	} {
		rt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var result int64
		err = rt.Run(func(c *Ctx) {
			RunCilk(c, func(k *Cilk) {
				var fib func(k *Cilk, n int, out *int64)
				fib = func(k *Cilk, n int, out *int64) {
					if n < 2 {
						*out = int64(n)
						return
					}
					var a, b int64
					k.Spawn(func(k *Cilk) { fib(k, n-1, &a) })
					fib(k, n-2, &b)
					k.Sync() // join the spawned half before combining
					*out = a + b
				}
				fib(k, 15, &result)
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		if result != 610 {
			t.Fatalf("%v: fib(15) = %d, want 610", cfg.Executor, result)
		}
	}
}

func TestCilkSyncJoinsOnlySpawnedSoFar(t *testing.T) {
	rt, err := New(Config{Executor: Pool, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var before, after atomic.Int64
	err = rt.Run(func(c *Ctx) {
		RunCilk(c, func(k *Cilk) {
			k.Spawn(func(k *Cilk) { before.Add(1) })
			k.Spawn(func(k *Cilk) { before.Add(1) })
			k.Sync()
			if got := before.Load(); got != 2 {
				t.Errorf("after sync: %d spawns done, want 2", got)
			}
			k.Spawn(func(k *Cilk) { after.Add(1) })
			// No explicit sync: the implicit final sync joins it.
		})
		if got := after.Load(); got != 1 {
			t.Errorf("after implicit sync: %d, want 1", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCilkSyncWithoutSpawnsIsNoop(t *testing.T) {
	rt, err := New(Config{Executor: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Run(func(c *Ctx) {
		RunCilk(c, func(k *Cilk) {
			k.Sync()
			k.Sync()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCilkTransitiveJoin(t *testing.T) {
	rt, err := New(Config{Executor: Pool, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	err = rt.Run(func(c *Ctx) {
		RunCilk(c, func(k *Cilk) {
			k.Spawn(func(k *Cilk) {
				k.Spawn(func(k *Cilk) {
					k.Spawn(func(k *Cilk) { n.Add(1) })
					n.Add(1)
				})
				n.Add(1)
			})
			k.Sync()
			if got := n.Load(); got != 3 {
				t.Errorf("sync saw %d of 3 transitive spawns", got)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// cilkDetectorEvents checks the embedding: one Cilk procedure with two
// sync regions produces exactly two finish scopes.
func TestCilkEmbeddingEvents(t *testing.T) {
	det := &countingDetector{}
	rt, err := New(Config{Executor: Sequential, Detector: det})
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Run(func(c *Ctx) {
		RunCilk(c, func(k *Cilk) {
			k.Spawn(func(k *Cilk) {})
			k.Spawn(func(k *Cilk) {})
			k.Sync()
			k.Spawn(func(k *Cilk) {})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := det.spawns.Load(); got != 3 {
		t.Errorf("spawns = %d, want 3", got)
	}
	// Two explicit finish regions plus the implicit program finish.
	if got := det.finishEnds.Load(); got != 3 {
		t.Errorf("finish ends = %d, want 3", got)
	}
}

// TestCilkRaceDetection: spawn/sync programs run under SPD3 through the
// embedding — a spawned child racing with the continuation is caught,
// and the post-sync access is ordered.
func TestCilkRaceDetection(t *testing.T) {
	sink := detect.NewSink(false, 0)
	d := core.New(sink, core.SyncCAS)
	rt, err := New(Config{Executor: Sequential, Detector: d})
	if err != nil {
		t.Fatal(err)
	}
	sh := d.NewShadow(detect.Spec("x", 2, 8))
	err = rt.Run(func(c *Ctx) {
		RunCilk(c, func(k *Cilk) {
			k.Spawn(func(k *Cilk) { sh.Write(k.Ctx().Task(), 0) })
			sh.Write(k.Ctx().Task(), 0) // races with the spawn
			k.Sync()
			sh.Write(k.Ctx().Task(), 1) // ordered: no race
			k.Spawn(func(k *Cilk) { sh.Write(k.Ctx().Task(), 1) })
			// implicit sync
		})
		sh.Write(c.Task(), 1) // ordered after the implicit sync
	})
	if err != nil {
		t.Fatal(err)
	}
	races := sink.Races()
	if len(races) != 1 || races[0].Index != 0 {
		t.Fatalf("races = %v, want exactly one on index 0", races)
	}
}
