package task

import "testing"

// BenchmarkSpawnJoin measures raw task overhead: one finish joining many
// empty asyncs, the operation whose O(1)-per-event cost §5.3 analyzes.
func BenchmarkSpawnJoin(b *testing.B) {
	for _, e := range []struct {
		name string
		cfg  Config
	}{
		{"sequential", Config{Executor: Sequential}},
		{"pool-1", Config{Executor: Pool, Workers: 1}},
		{"pool-4", Config{Executor: Pool, Workers: 4}},
		{"goroutines", Config{Executor: Goroutines}},
	} {
		rt, err := New(e.cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(e.name, func(b *testing.B) {
			b.ReportAllocs()
			err := rt.Run(func(c *Ctx) {
				c.Finish(func(c *Ctx) {
					for i := 0; i < b.N; i++ {
						c.Async(func(c *Ctx) {})
					}
				})
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkFinishNesting measures deep finish scopes.
func BenchmarkFinishNesting(b *testing.B) {
	rt, err := New(Config{Executor: Pool, Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	err = rt.Run(func(c *Ctx) {
		for i := 0; i < b.N; i++ {
			c.Finish(func(c *Ctx) {
				c.Async(func(c *Ctx) {})
			})
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
