package task

import (
	"strings"
	"sync/atomic"
	"testing"
)

// TestBarrierPhases checks the core guarantee: all writes of phase p are
// visible to every participant in phase p+1.
func TestBarrierPhases(t *testing.T) {
	for _, cfg := range []Config{
		{Executor: Pool, Workers: 4}, // one worker per participant
		{Executor: Pool, Workers: 8},
		{Executor: Goroutines},
	} {
		cfg := cfg
		t.Run(cfg.Executor.String(), func(t *testing.T) {
			rt, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			const (
				parts  = 4
				phases = 5
			)
			bar := rt.NewBarrier(parts)
			var cells [parts]atomic.Int64
			err = rt.Run(func(c *Ctx) {
				c.FinishAsync(parts, func(c *Ctx, id int) {
					for p := 0; p < phases; p++ {
						cells[id].Add(1)
						bar.Await(c)
						// Everyone must have finished phase p.
						for other := 0; other < parts; other++ {
							if got := cells[other].Load(); got < int64(p+1) {
								t.Errorf("participant %d saw cells[%d] = %d in phase %d",
									id, other, got, p)
							}
						}
						bar.Await(c) // phase barrier before next writes
					}
				})
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBarrierSingleParticipant(t *testing.T) {
	rt, err := New(Config{Executor: Pool, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	bar := rt.NewBarrier(1)
	err = rt.Run(func(c *Ctx) {
		for i := 0; i < 10; i++ {
			bar.Await(c) // never blocks
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierNeedsEnoughPoolWorkers(t *testing.T) {
	rt, err := New(Config{Executor: Pool, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	bar := rt.NewBarrier(4)
	err = rt.Run(func(c *Ctx) {
		c.FinishAsync(4, func(c *Ctx, id int) { bar.Await(c) })
	})
	if err == nil || !strings.Contains(err.Error(), "pool workers") {
		t.Fatalf("err = %v, want clear worker-count error", err)
	}
}

func TestBarrierSequentialExecutorPanics(t *testing.T) {
	rt, err := New(Config{Executor: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	bar := rt.NewBarrier(2)
	err = rt.Run(func(c *Ctx) {
		c.Finish(func(c *Ctx) {
			c.Async(func(c *Ctx) { bar.Await(c) })
			c.Async(func(c *Ctx) { bar.Await(c) })
		})
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock panic captured as error", err)
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	rt, err := New(Config{Executor: Pool, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	bar := rt.NewBarrier(2)
	var rounds atomic.Int64
	err = rt.Run(func(c *Ctx) {
		c.FinishAsync(2, func(c *Ctx, id int) {
			for p := 0; p < 100; p++ {
				bar.Await(c)
			}
			rounds.Add(1)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if rounds.Load() != 2 {
		t.Fatalf("rounds = %d", rounds.Load())
	}
}
