package task

import (
	"strings"
	"sync/atomic"
	"testing"

	"spd3/internal/detect"
)

// executors lists every executor with a worker count, so each behavioral
// test runs under all of them.
var executors = []struct {
	name string
	cfg  Config
}{
	{"sequential", Config{Executor: Sequential}},
	{"goroutines", Config{Executor: Goroutines}},
	{"pool-1", Config{Executor: Pool, Workers: 1}},
	{"pool-4", Config{Executor: Pool, Workers: 4}},
	{"pool-16", Config{Executor: Pool, Workers: 16}},
}

func forAllExecutors(t *testing.T, f func(t *testing.T, rt *Runtime)) {
	t.Helper()
	for _, e := range executors {
		e := e
		t.Run(e.name, func(t *testing.T) {
			rt, err := New(e.cfg)
			if err != nil {
				t.Fatal(err)
			}
			f(t, rt)
		})
	}
}

func TestRunEmpty(t *testing.T) {
	forAllExecutors(t, func(t *testing.T, rt *Runtime) {
		if err := rt.Run(func(c *Ctx) {}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAsyncAllRun(t *testing.T) {
	forAllExecutors(t, func(t *testing.T, rt *Runtime) {
		var n atomic.Int64
		err := rt.Run(func(c *Ctx) {
			for i := 0; i < 100; i++ {
				c.Async(func(c *Ctx) { n.Add(1) })
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := n.Load(); got != 100 {
			t.Fatalf("ran %d asyncs, want 100", got)
		}
	})
}

func TestFinishJoins(t *testing.T) {
	forAllExecutors(t, func(t *testing.T, rt *Runtime) {
		var inFinish, afterFinish atomic.Int64
		err := rt.Run(func(c *Ctx) {
			c.Finish(func(c *Ctx) {
				for i := 0; i < 50; i++ {
					c.Async(func(c *Ctx) {
						c.Async(func(c *Ctx) { inFinish.Add(1) })
						inFinish.Add(1)
					})
				}
			})
			// All 100 increments must be visible here: finish joins
			// transitively spawned tasks too.
			if got := inFinish.Load(); got != 100 {
				t.Errorf("after finish: %d increments, want 100", got)
			}
			afterFinish.Add(1)
		})
		if err != nil {
			t.Fatal(err)
		}
		if afterFinish.Load() != 1 {
			t.Fatal("continuation after finish did not run")
		}
	})
}

func TestNestedFinish(t *testing.T) {
	forAllExecutors(t, func(t *testing.T, rt *Runtime) {
		var order []string
		var mu chan struct{} = make(chan struct{}, 1)
		mu <- struct{}{}
		log := func(s string) {
			<-mu
			order = append(order, s)
			mu <- struct{}{}
		}
		err := rt.Run(func(c *Ctx) {
			c.Finish(func(c *Ctx) {
				c.Finish(func(c *Ctx) {
					c.Async(func(c *Ctx) { log("inner") })
				})
				log("between")
				c.Async(func(c *Ctx) { log("outer") })
			})
			log("done")
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(order) != 4 || order[0] != "inner" || order[1] != "between" || order[3] != "done" {
			t.Fatalf("order = %v", order)
		}
	})
}

func TestAsyncAfterFinishRegistersInOuterScope(t *testing.T) {
	forAllExecutors(t, func(t *testing.T, rt *Runtime) {
		var done atomic.Bool
		err := rt.Run(func(c *Ctx) {
			c.Finish(func(c *Ctx) {
				c.Finish(func(c *Ctx) {})
				// After the inner finish, asyncs must register in
				// the outer finish again.
				c.Async(func(c *Ctx) { done.Store(true) })
			})
			if !done.Load() {
				t.Error("outer finish did not wait for post-inner-finish async")
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestDeepRecursiveSpawn(t *testing.T) {
	forAllExecutors(t, func(t *testing.T, rt *Runtime) {
		var n atomic.Int64
		var spawn func(c *Ctx, depth int)
		spawn = func(c *Ctx, depth int) {
			n.Add(1)
			if depth == 0 {
				return
			}
			c.Async(func(c *Ctx) { spawn(c, depth-1) })
			c.Async(func(c *Ctx) { spawn(c, depth-1) })
		}
		err := rt.Run(func(c *Ctx) {
			c.Finish(func(c *Ctx) { spawn(c, 10) })
			if got, want := n.Load(), int64(1<<11-1); got != want {
				t.Errorf("spawned %d nodes, want %d", got, want)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestParallelFor(t *testing.T) {
	forAllExecutors(t, func(t *testing.T, rt *Runtime) {
		for _, grain := range []int{1, 7, 1000} {
			var sum atomic.Int64
			err := rt.Run(func(c *Ctx) {
				c.ParallelFor(0, 100, grain, func(c *Ctx, i int) {
					sum.Add(int64(i))
				})
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := sum.Load(); got != 4950 {
				t.Fatalf("grain %d: sum = %d, want 4950", grain, got)
			}
		}
	})
}

func TestFinishAsync(t *testing.T) {
	forAllExecutors(t, func(t *testing.T, rt *Runtime) {
		hit := make([]atomic.Bool, 32)
		err := rt.Run(func(c *Ctx) {
			c.FinishAsync(32, func(c *Ctx, i int) { hit[i].Store(true) })
			for i := range hit {
				if !hit[i].Load() {
					t.Errorf("iteration %d did not run", i)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestPanicPropagates(t *testing.T) {
	forAllExecutors(t, func(t *testing.T, rt *Runtime) {
		err := rt.Run(func(c *Ctx) {
			c.Finish(func(c *Ctx) {
				c.Async(func(c *Ctx) { panic("boom") })
			})
		})
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("err = %v, want panic error containing boom", err)
		}
	})
}

func TestPanicInRootPropagates(t *testing.T) {
	forAllExecutors(t, func(t *testing.T, rt *Runtime) {
		err := rt.Run(func(c *Ctx) { panic("root boom") })
		if err == nil || !strings.Contains(err.Error(), "root boom") {
			t.Fatalf("err = %v, want root boom", err)
		}
	})
}

func TestRunReusable(t *testing.T) {
	forAllExecutors(t, func(t *testing.T, rt *Runtime) {
		for round := 0; round < 3; round++ {
			var n atomic.Int64
			if err := rt.Run(func(c *Ctx) {
				c.FinishAsync(10, func(c *Ctx, i int) { n.Add(1) })
			}); err != nil {
				t.Fatal(err)
			}
			if n.Load() != 10 {
				t.Fatalf("round %d: %d asyncs ran", round, n.Load())
			}
		}
	})
}

func TestNestedRunRejected(t *testing.T) {
	rt, err := New(Config{Executor: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	var inner error
	if err := rt.Run(func(c *Ctx) {
		inner = rt.Run(func(c *Ctx) {})
	}); err != nil {
		t.Fatal(err)
	}
	if inner != ErrNested {
		t.Fatalf("nested Run = %v, want ErrNested", inner)
	}
}

func TestTaskIdentity(t *testing.T) {
	forAllExecutors(t, func(t *testing.T, rt *Runtime) {
		err := rt.Run(func(c *Ctx) {
			main := c.Task()
			if main.Parent != nil || main.Depth != 0 {
				t.Errorf("main task: parent=%v depth=%d", main.Parent, main.Depth)
			}
			c.Finish(func(c *Ctx) {
				c.Async(func(c *Ctx) {
					child := c.Task()
					if child.Parent != main {
						t.Errorf("child parent = %v, want main", child.Parent)
					}
					if child.Depth != 1 {
						t.Errorf("child depth = %d, want 1", child.Depth)
					}
					if child.IEF == nil || child.IEF.Owner != main {
						t.Errorf("child IEF = %+v, want finish owned by main", child.IEF)
					}
				})
			})
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// countingDetector verifies the event contract: BeforeSpawn precedes the
// child's TaskEnd, and FinishEnd sees all TaskEnds of its scope.
type countingDetector struct {
	detect.Nop
	spawns, ends atomic.Int64
	finishEnds   atomic.Int64
	endsAtFinish []int64
}

func (d *countingDetector) BeforeSpawn(p, c *detect.Task) { d.spawns.Add(1) }
func (d *countingDetector) TaskEnd(t *detect.Task)        { d.ends.Add(1) }
func (d *countingDetector) FinishEnd(t *detect.Task, f *detect.Finish) {
	d.finishEnds.Add(1)
	d.endsAtFinish = append(d.endsAtFinish, d.ends.Load())
}

func TestDetectorEventContract(t *testing.T) {
	for _, e := range executors {
		e := e
		t.Run(e.name, func(t *testing.T) {
			det := &countingDetector{}
			cfg := e.cfg
			cfg.Detector = det
			rt, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			err = rt.Run(func(c *Ctx) {
				c.Finish(func(c *Ctx) {
					for i := 0; i < 20; i++ {
						c.Async(func(c *Ctx) {
							c.Async(func(c *Ctx) {})
						})
					}
				})
			})
			if err != nil {
				t.Fatal(err)
			}
			if d := det.spawns.Load(); d != 40 {
				t.Errorf("spawns = %d, want 40", d)
			}
			if d := det.ends.Load(); d != 40 {
				t.Errorf("ends = %d, want 40", d)
			}
			// Two FinishEnds: the explicit finish and the implicit one;
			// the explicit one must have observed all 40 task ends.
			if d := det.finishEnds.Load(); d != 2 {
				t.Fatalf("finish ends = %d, want 2", d)
			}
			if det.endsAtFinish[0] != 40 {
				t.Errorf("explicit FinishEnd saw %d TaskEnds, want 40", det.endsAtFinish[0])
			}
		})
	}
}

func TestSequentialIsDepthFirst(t *testing.T) {
	rt, err := New(Config{Executor: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	err = rt.Run(func(c *Ctx) {
		c.Finish(func(c *Ctx) {
			c.Async(func(c *Ctx) {
				order = append(order, 1)
				c.Async(func(c *Ctx) { order = append(order, 2) })
				order = append(order, 3)
			})
			order = append(order, 4)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("depth-first order = %v, want %v", order, want)
		}
	}
}

func TestChunkGrain(t *testing.T) {
	rt, err := New(Config{Executor: Pool, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Run(func(c *Ctx) {
		if g := c.ChunkGrain(100); g != 25 {
			t.Errorf("ChunkGrain(100) with 4 workers = %d, want 25", g)
		}
		if g := c.ChunkGrain(3); g != 1 {
			t.Errorf("ChunkGrain(3) with 4 workers = %d, want 1", g)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSequentialDetectorPairing(t *testing.T) {
	seqOnly := seqOnlyDetector{}
	if _, err := New(Config{Executor: Pool, Detector: seqOnly}); err == nil {
		t.Fatal("pairing a sequential-only detector with the pool executor must fail")
	}
	if _, err := New(Config{Executor: Sequential, Detector: seqOnly}); err != nil {
		t.Fatalf("sequential pairing failed: %v", err)
	}
}

type seqOnlyDetector struct{ detect.Nop }

func (seqOnlyDetector) RequiresSequential() bool { return true }
func (seqOnlyDetector) Name() string             { return "seq-only" }

func TestRuntimeAccessors(t *testing.T) {
	det := detect.Nop{}
	rt, err := New(Config{Executor: Pool, Workers: 7, Detector: det, CaptureSites: true})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Workers() != 7 {
		t.Errorf("Workers = %d", rt.Workers())
	}
	if !rt.CaptureSites() {
		t.Error("CaptureSites lost")
	}
	if rt.Detector() == nil {
		t.Error("Detector lost")
	}
	l1, l2 := rt.NewLock(), rt.NewLock()
	if l1.ID == l2.ID {
		t.Error("lock IDs must be distinct")
	}
}

func TestUnknownExecutorRejected(t *testing.T) {
	if _, err := New(Config{Executor: ExecKind(99)}); err == nil {
		t.Fatal("bogus executor accepted")
	}
	if ExecKind(99).String() == "" {
		t.Fatal("ExecKind String must describe unknown values")
	}
}

func TestWorkerIDRanges(t *testing.T) {
	rt, err := New(Config{Executor: Pool, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	if err := rt.Run(func(c *Ctx) {
		c.FinishAsync(32, func(c *Ctx, i int) {
			id := c.WorkerID()
			if id < 0 || id >= 3 {
				t.Errorf("worker id %d out of range", id)
			}
			<-mu
			seen[id] = true
			mu <- struct{}{}
		})
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("no worker ids observed")
	}
	rt2, err := New(Config{Executor: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt2.Run(func(c *Ctx) {
		if c.WorkerID() != -1 {
			t.Errorf("sequential WorkerID = %d, want -1", c.WorkerID())
		}
	}); err != nil {
		t.Fatal(err)
	}
}
