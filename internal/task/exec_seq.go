package task

import (
	"fmt"

	"spd3/internal/stats"
)

// seqExec executes every async inline, immediately and depth-first, the
// execution model that SP-bags and ESP-bags require (§1: "the parallel
// program must be processed in a sequential order, usually depth-first").
// The left-to-right execution order equals the left-to-right order of DPST
// siblings.
type seqExec struct{}

func (seqExec) run(rt *Runtime, main *ptask) {
	c := &Ctx{rt: rt, t: main.t, fin: main.fin}
	main.body(c)
	c.flushRegion()
}

func (seqExec) spawn(c *Ctx, pt *ptask) {
	c.rt.st.Shard(c.ShardIndex()).Inc(stats.TaskInline)
	child := &Ctx{rt: c.rt, t: pt.t, fin: pt.fin}
	c.rt.runTask(pt, child)
}

func (seqExec) wait(c *Ctx, s *scope) {
	// Every spawned task ran to completion inline, so the scope must
	// already be drained; anything else is a runtime bug.
	if n := s.pending.Load(); n != 0 {
		panic(fmt.Sprintf("task: sequential executor reached end-finish with %d pending tasks", n))
	}
}

func (seqExec) waitFor(c *Ctx, done func() bool) {
	// Depth-first execution cannot make progress while blocked:
	// constructs that synchronize *between* live tasks (barriers) are
	// incompatible with sequential execution by nature.
	if !done() {
		panic("task: blocking synchronization (barrier) deadlocks under the sequential executor")
	}
}

func (e seqExec) parkFor(c *Ctx, done func() bool) { e.waitFor(c, done) }

// runTask executes one spawned task body with panic capture and
// end-of-life bookkeeping. The deferred calls run in LIFO order: capture
// first (recovering any panic), then finishTask (TaskEnd event, scope
// decrement, wakeup), so the scope always drains even on panic.
func (rt *Runtime) runTask(pt *ptask, c *Ctx) {
	defer rt.finishTask(pt)
	defer rt.capture()
	defer c.flushRegion()
	pt.body(c)
}
