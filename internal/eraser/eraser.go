// Package eraser reimplements the Eraser lockset race detector (Savage et
// al., TOCS 1997) as the paper's imprecise baseline (§6.3).
//
// Eraser checks the locking-discipline heuristic instead of
// happens-before: each shared location keeps a shrinking candidate set
// C(v) of locks that protected every access so far, refined on each
// access by the locks the accessing task holds, through the state machine
// Virgin → Exclusive → Shared / Shared-Modified. A location in
// Shared-Modified with an empty candidate set is reported.
//
// Because fork-join ordering is not a lock, Eraser reports false
// positives on async/finish programs — §6.3 notes exactly this ("Eraser
// reported false data races for many benchmarks"), and the reproduction's
// tests assert the same behaviour. Race reports here therefore mean
// "locking discipline violated", not "real race".
package eraser

import (
	"fmt"
	"sort"
	"sync"

	"spd3/internal/detect"
	"spd3/internal/shadow"
	"spd3/internal/stats"
)

// Detector is the Eraser baseline detector.
type Detector struct {
	sink *detect.Sink
	st   *stats.Recorder

	mu      sync.Mutex
	shadows []*regionShadow
	setPool map[string][]int64 // interned locksets, keyed by canonical form
	setByte int64
}

// New returns an Eraser detector reporting to sink.
func New(sink *detect.Sink) *Detector {
	return &Detector{sink: sink, setPool: make(map[string][]int64)}
}

// SetStats wires the engine's observability recorder (nil is fine);
// call before the first NewShadow.
func (d *Detector) SetStats(st *stats.Recorder) { d.st = st }

// Name implements detect.Detector.
func (d *Detector) Name() string { return "eraser" }

// RequiresSequential implements detect.Detector.
func (d *Detector) RequiresSequential() bool { return false }

// taskState is the task's current lockset, maintained as an acquisition
// stack. Only the owning task touches it.
type taskState struct {
	held []int64
}

// MainTask implements detect.Detector.
func (d *Detector) MainTask(t *detect.Task, implicit *detect.Finish) {
	t.State = &taskState{}
}

// BeforeSpawn gives the child an empty lockset: locks do not transfer
// across spawns.
func (d *Detector) BeforeSpawn(parent, child *detect.Task) {
	child.State = &taskState{}
}

// TaskEnd implements detect.Detector; Eraser has no join semantics.
func (d *Detector) TaskEnd(*detect.Task) {}

// FinishStart implements detect.Detector; finish is invisible to Eraser.
func (d *Detector) FinishStart(*detect.Task, *detect.Finish) {}

// FinishEnd implements detect.Detector.
func (d *Detector) FinishEnd(*detect.Task, *detect.Finish) {}

// Acquire pushes l onto the task's lockset.
func (d *Detector) Acquire(t *detect.Task, l *detect.Lock) {
	ts := t.State.(*taskState)
	ts.held = append(ts.held, l.ID)
}

// Release removes the most recent acquisition of l.
func (d *Detector) Release(t *detect.Task, l *detect.Lock) {
	ts := t.State.(*taskState)
	for i := len(ts.held) - 1; i >= 0; i-- {
		if ts.held[i] == l.ID {
			ts.held = append(ts.held[:i], ts.held[i+1:]...)
			return
		}
	}
}

// intern canonicalizes a lockset so that all locations protected by the
// same locks share one slice — Eraser's lockset-index table.
func (d *Detector) intern(set []int64) []int64 {
	s := append([]int64(nil), set...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	key := fmt.Sprint(s)
	d.mu.Lock()
	defer d.mu.Unlock()
	if got, ok := d.setPool[key]; ok {
		return got
	}
	d.setPool[key] = s
	d.setByte += int64(len(s)) * 8
	return s
}

// intersect returns the interned intersection of an interned set a with
// the (unsorted) currently held set.
func (d *Detector) intersect(a []int64, held []int64) []int64 {
	var out []int64
	for _, l := range a {
		for _, h := range held {
			if l == h {
				out = append(out, l)
				break
			}
		}
	}
	if len(out) == len(a) {
		return a
	}
	return d.intern(out)
}

// state machine states
type vstate uint8

const (
	virgin vstate = iota
	exclusive
	shared
	sharedModified
)

// evar is the per-location Eraser state.
type evar struct {
	mu       sync.Mutex
	st       vstate
	owner    detect.TaskID // Exclusive owner
	set      []int64       // candidate lockset (nil = universe, not yet refined)
	reported bool
}

// evarBytes is the fixed per-location footprint (the candidate-set slices
// are interned and accounted separately).
const evarBytes = 8 + 1 + 8 + 8 + 1 + 6 // mutex + state + owner + set ptr + flag + padding

type regionShadow struct {
	d    *Detector
	name string
	vars *shadow.Pages[evar]
}

// NewShadow implements detect.Detector: evar state is paged in lazily,
// so untouched locations cost nothing.
func (d *Detector) NewShadow(spec detect.ShadowSpec) detect.Shadow {
	s := &regionShadow{d: d, name: spec.Name, vars: shadow.New[evar](spec.Bound())}
	sh := d.st.Shard(0)
	s.vars.SetOnAlloc(func(int) { sh.Inc(stats.ShadowPagesAllocated) })
	d.mu.Lock()
	d.shadows = append(d.shadows, s)
	d.mu.Unlock()
	return s
}

// Footprint implements detect.Detector.
func (d *Detector) Footprint() detect.Footprint {
	d.mu.Lock()
	defer d.mu.Unlock()
	var f detect.Footprint
	for _, s := range d.shadows {
		_, cells := s.vars.Allocated()
		f.ShadowBytes += cells * evarBytes
	}
	f.SetBytes = d.setByte
	return f
}

func (s *regionShadow) access(t *detect.Task, i int, isWrite bool) {
	if s.d.sink.Stopped() {
		return
	}
	ts := t.State.(*taskState)
	v := s.vars.CellOf(&t.PC, i)
	v.mu.Lock()
	defer v.mu.Unlock()

	switch v.st {
	case virgin:
		v.st = exclusive
		v.owner = t.ID
		return
	case exclusive:
		if t.ID == v.owner {
			return
		}
		// Second task: enter the shared states and start refining.
		v.set = s.d.intern(ts.held)
		if isWrite {
			v.st = sharedModified
		} else {
			v.st = shared
		}
	case shared:
		v.set = s.d.intersect(v.set, ts.held)
		if isWrite {
			v.st = sharedModified
		}
	case sharedModified:
		v.set = s.d.intersect(v.set, ts.held)
	}
	if v.st == sharedModified && len(v.set) == 0 && !v.reported {
		v.reported = true
		kind := detect.WriteWrite
		if !isWrite {
			kind = detect.WriteRead
		}
		s.d.sink.Report(detect.Race{
			Kind:     kind,
			Region:   s.name,
			Index:    i,
			PrevStep: "lockset-empty",
			CurStep:  fmt.Sprintf("task#%d", t.ID),
		})
	}
}

// Read implements detect.Shadow.
func (s *regionShadow) Read(t *detect.Task, i int) { s.access(t, i, false) }

// Write implements detect.Shadow.
func (s *regionShadow) Write(t *detect.Task, i int) { s.access(t, i, true) }

var _ detect.Detector = (*Detector)(nil)
