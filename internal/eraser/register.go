package eraser

import "spd3/internal/detect"

func init() {
	detect.Register("eraser", func(o detect.FactoryOpts) detect.Detector {
		return New(o.Sink)
	})
}
