package eraser

import (
	"testing"

	"spd3/internal/detect"
	"spd3/internal/task"
)

func newRT(t *testing.T) (*task.Runtime, *Detector, *detect.Sink) {
	t.Helper()
	sink := detect.NewSink(false, 0)
	d := New(sink)
	rt, err := task.New(task.Config{Executor: task.Sequential, Detector: d})
	if err != nil {
		t.Fatal(err)
	}
	return rt, d, sink
}

func TestSingleTaskQuiet(t *testing.T) {
	rt, d, sink := newRT(t)
	sh := d.NewShadow(detect.Spec("x", 4, 8))
	err := rt.Run(func(c *task.Ctx) {
		for i := 0; i < 4; i++ {
			sh.Write(c.Task(), i)
			sh.Read(c.Task(), i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if races := sink.Races(); len(races) != 0 {
		t.Fatalf("single-task accesses reported: %v", races)
	}
}

func TestLockedDisciplineQuiet(t *testing.T) {
	rt, d, sink := newRT(t)
	sh := d.NewShadow(detect.Spec("x", 1, 8))
	l := rt.NewLock()
	err := rt.Run(func(c *task.Ctx) {
		c.FinishAsync(4, func(c *task.Ctx, i int) {
			c.Acquire(l)
			sh.Read(c.Task(), 0)
			sh.Write(c.Task(), 0)
			c.Release(l)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if races := sink.Races(); len(races) != 0 {
		t.Fatalf("lock-disciplined accesses reported: %v", races)
	}
}

func TestUnlockedSharedWriteReported(t *testing.T) {
	rt, d, sink := newRT(t)
	sh := d.NewShadow(detect.Spec("x", 1, 8))
	err := rt.Run(func(c *task.Ctx) {
		c.FinishAsync(2, func(c *task.Ctx, i int) { sh.Write(c.Task(), 0) })
	})
	if err != nil {
		t.Fatal(err)
	}
	if races := sink.Races(); len(races) != 1 {
		t.Fatalf("races = %v, want one lockset violation", races)
	}
}

func TestReadSharedQuiet(t *testing.T) {
	// Read-only sharing never enters Shared-Modified: no report even
	// without locks.
	rt, d, sink := newRT(t)
	sh := d.NewShadow(detect.Spec("x", 1, 8))
	err := rt.Run(func(c *task.Ctx) {
		sh.Write(c.Task(), 0)
		c.FinishAsync(6, func(c *task.Ctx, i int) { sh.Read(c.Task(), 0) })
	})
	if err != nil {
		t.Fatal(err)
	}
	if races := sink.Races(); len(races) != 0 {
		t.Fatalf("read-shared reported: %v", races)
	}
}

// TestFalsePositiveOnForkJoin pins down Eraser's defining imprecision
// (§6.3 "Eraser reported false data races for many benchmarks"): a
// perfectly ordered fork-join handoff with no locks is reported anyway,
// because fork-join ordering is invisible to a lockset analysis.
func TestFalsePositiveOnForkJoin(t *testing.T) {
	rt, d, sink := newRT(t)
	sh := d.NewShadow(detect.Spec("x", 1, 8))
	err := rt.Run(func(c *task.Ctx) {
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) { sh.Write(c.Task(), 0) })
		})
		sh.Write(c.Task(), 0) // race-free: ordered by the finish join
	})
	if err != nil {
		t.Fatal(err)
	}
	if races := sink.Races(); len(races) != 1 {
		t.Fatalf("races = %v, want the documented false positive", races)
	}
}

func TestExclusiveInitializationWindow(t *testing.T) {
	// Known Eraser behaviour: refinement of C(v) starts only when the
	// variable leaves Exclusive, seeded from the *second* accessor's
	// lockset. Two accesses under disjoint locks therefore go
	// unreported — the first thread's lockset was never recorded.
	rt, d, sink := newRT(t)
	sh := d.NewShadow(detect.Spec("x", 1, 8))
	l1 := rt.NewLock()
	l2 := rt.NewLock()
	err := rt.Run(func(c *task.Ctx) {
		c.Finish(func(c *task.Ctx) {
			c.Async(func(c *task.Ctx) {
				c.Acquire(l1)
				sh.Write(c.Task(), 0)
				c.Release(l1)
			})
			c.Async(func(c *task.Ctx) {
				c.Acquire(l2)
				sh.Write(c.Task(), 0)
				c.Release(l2)
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if races := sink.Races(); len(races) != 0 {
		t.Fatalf("races = %v, want none (initialization window)", races)
	}
}

func TestPartialLockingReportedOnThirdAccess(t *testing.T) {
	// With a third accessor the candidate set {l2} ∩ {l1} empties and
	// the violation is reported.
	rt, d, sink := newRT(t)
	sh := d.NewShadow(detect.Spec("x", 1, 8))
	l1 := rt.NewLock()
	l2 := rt.NewLock()
	lockOf := []*detect.Lock{l1, l2, l1}
	err := rt.Run(func(c *task.Ctx) {
		c.FinishAsync(3, func(c *task.Ctx, i int) {
			c.Acquire(lockOf[i])
			sh.Write(c.Task(), 0)
			c.Release(lockOf[i])
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if races := sink.Races(); len(races) != 1 {
		t.Fatalf("races = %v, want one (disjoint locksets intersect empty)", races)
	}
}

func TestCommonLockAmongSeveral(t *testing.T) {
	rt, d, sink := newRT(t)
	sh := d.NewShadow(detect.Spec("x", 1, 8))
	l1 := rt.NewLock()
	l2 := rt.NewLock()
	err := rt.Run(func(c *task.Ctx) {
		c.FinishAsync(4, func(c *task.Ctx, i int) {
			c.Acquire(l1)
			if i%2 == 0 {
				c.Acquire(l2)
			}
			sh.Write(c.Task(), 0)
			if i%2 == 0 {
				c.Release(l2)
			}
			c.Release(l1)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if races := sink.Races(); len(races) != 0 {
		t.Fatalf("common lock l1 held everywhere, but reported: %v", races)
	}
}

func TestLocksetInterning(t *testing.T) {
	rt, d, sink := newRT(t)
	sh := d.NewShadow(detect.Spec("x", 100, 8))
	l := rt.NewLock()
	err := rt.Run(func(c *task.Ctx) {
		c.FinishAsync(2, func(c *task.Ctx, i int) {
			c.Acquire(l)
			for j := 0; j < 100; j++ {
				sh.Write(c.Task(), j)
			}
			c.Release(l)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sink.Empty() {
		t.Fatalf("unexpected reports: %v", sink.Races())
	}
	// 100 locations protected by the same lock must share one interned
	// lockset: SetBytes stays at one slice of one lock id.
	if got := d.Footprint().SetBytes; got != 8 {
		t.Fatalf("SetBytes = %d, want 8 (one interned singleton set)", got)
	}
}

func TestReleaseUnheldLockIsNoop(t *testing.T) {
	rt, d, sink := newRT(t)
	_ = d.NewShadow(detect.Spec("x", 1, 8))
	l := rt.NewLock()
	err := rt.Run(func(c *task.Ctx) {
		c.Release(l) // sloppy program; must not panic
		c.Acquire(l)
		c.Release(l)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sink.Empty() {
		t.Fatal("unexpected reports")
	}
}
