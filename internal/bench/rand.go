package bench

// rng is a small deterministic splitmix64 generator used by the
// benchmark kernels, so that every run of a benchmark touches identical
// data regardless of platform or Go version.
type rng struct{ s uint64 }

// newRNG seeds a generator; equal seeds give equal streams.
func newRNG(seed uint64) *rng { return &rng{s: seed*0x9e3779b97f4a7c15 + 1} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// gaussian returns an approximately standard-normal value (sum of 12
// uniforms, the classic Irwin–Hall approximation — deterministic and
// branch-free, which is all the Monte Carlo kernel needs).
func (r *rng) gaussian() float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.float64()
	}
	return s - 6
}
