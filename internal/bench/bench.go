// Package bench implements the paper's 15-benchmark evaluation suite
// (Table 1): eight Java Grande Forum kernels, four Barcelona OpenMP Task
// Suite programs, two Shootout benchmarks, and the EC2 MatMul challenge —
// all rewritten as async/finish programs over the structured task runtime
// with instrumented shared memory.
//
// Following §6, every data-parallel loop exists in two decompositions:
//
//   - unchunked: one async per iteration — the fine-grained form used for
//     the SPD3 scalability study (Figure 3) and the ESP-bags comparison
//     (Figure 4);
//   - chunked: one async per worker — the coarse-grained form used for
//     the apples-to-apples Eraser/FastTrack comparison (Table 2/3,
//     Figures 5/6), mirroring the one-thread-per-core JGF originals.
//
// Each benchmark validates itself: Run returns a checksum that tests pin
// against an independently computed reference, so the suite cannot
// silently degenerate while still "running".
package bench

import (
	"fmt"
	"sort"

	"spd3/internal/task"
)

// Input selects a benchmark configuration.
type Input struct {
	// Scale multiplies the default problem size; 1.0 is the default
	// laptop-scale size, smaller values shrink test/bench runs.
	Scale float64
	// Chunked selects the coarse one-chunk-per-worker loop
	// decomposition instead of one-async-per-iteration.
	Chunked bool
}

// Benchmark is one suite entry.
type Benchmark struct {
	// Name is the Table 1 benchmark name.
	Name string
	// Source is the originating suite ("JGF §2", "JGF §3", "BOTS",
	// "Shootout", "EC2").
	Source string
	// Desc is the Table 1 description.
	Desc string
	// Args is the paper's input-size annotation.
	Args string
	// JGF marks the eight Java Grande benchmarks used in the
	// Table 2/3 tool comparison.
	JGF bool
	// Run executes the benchmark on rt and returns its checksum.
	Run func(rt *task.Runtime, in Input) (float64, error)
}

var registry = map[string]*Benchmark{}

func register(b *Benchmark) {
	if _, dup := registry[b.Name]; dup {
		panic("bench: duplicate benchmark " + b.Name)
	}
	registry[b.Name] = b
}

// All returns the full suite in Table 1 order.
func All() []*Benchmark {
	out := make([]*Benchmark, 0, len(registry))
	for _, b := range registry {
		out = append(out, b)
	}
	order := map[string]int{
		"Series": 0, "LUFact": 1, "SOR": 2, "Crypt": 3, "Sparse": 4,
		"MolDyn": 5, "MonteCarlo": 6, "RayTracer": 7,
		"FFT": 8, "Health": 9, "NQueens": 10, "Strassen": 11,
		"Fannkuch": 12, "Mandelbrot": 13, "Matmul": 14,
	}
	sort.Slice(out, func(i, j int) bool { return order[out[i].Name] < order[out[j].Name] })
	return out
}

// JGF returns the eight Java Grande benchmarks (the Table 2/3 subset).
func JGF() []*Benchmark {
	var out []*Benchmark
	for _, b := range All() {
		if b.JGF {
			out = append(out, b)
		}
	}
	return out
}

// ByName looks a benchmark up by its Table 1 name.
func ByName(name string) (*Benchmark, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q", name)
	}
	return b, nil
}

// scaled resizes a default dimension by in.Scale (rounded to nearest),
// with a floor of lo.
func (in Input) scaled(n, lo int) int {
	s := in.Scale
	if s <= 0 {
		s = 1
	}
	v := int(float64(n)*s + 0.5)
	if v < lo {
		v = lo
	}
	return v
}

// grain returns the loop grain for n iterations under this input: 1 for
// the unchunked (fine-grained) decomposition, one chunk per worker for
// the chunked one.
func (in Input) grain(c *task.Ctx, n int) int {
	if in.Chunked {
		return c.ChunkGrain(n)
	}
	return 1
}
