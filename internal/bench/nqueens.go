package bench

import (
	"spd3/internal/mem"
	"spd3/internal/task"
)

func init() {
	register(&Benchmark{
		Name:   "NQueens",
		Source: "BOTS",
		Desc:   "N Queens problem",
		Args:   "(14)",
		Run:    runNQueens,
	})
}

// runNQueens counts the solutions of the n-queens problem. The first two
// ranks are explored as parallel tasks (the BOTS cutoff style); each task
// searches its subtree sequentially with bitmask board state and writes
// its count into a distinct result slot, summed after the finish.
func runNQueens(rt *task.Runtime, in Input) (float64, error) {
	n := in.scaled(9, 5)
	if n > 12 {
		n = 12
	}
	counts := mem.NewArray[int](rt, "nqueens.counts", n*n)

	err := rt.Run(func(c *task.Ctx) {
		c.Finish(func(c *task.Ctx) {
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					a, b := a, b
					colA := uint32(1) << a
					colB := uint32(1) << b
					if colA == colB || a == b+1 || b == a+1 {
						continue // attacked
					}
					c.Async(func(c *task.Ctx) {
						// Attack masks as seen from row 2: a queen
						// placed r rows above shifts its diagonal
						// bit by r.
						count := queens(n, 2,
							colA|colB,
							colA<<2|colB<<1,
							colA>>2|colB>>1)
						counts.Set(c, a*n+b, count)
					})
				}
			}
		})
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, v := range counts.Unchecked() {
		total += v
	}
	return float64(total), nil
}

// queens counts completions from row with the given column and diagonal
// attack masks (standard bitmask backtracking).
func queens(n, row int, cols, diagL, diagR uint32) int {
	if row == n {
		return 1
	}
	count := 0
	full := uint32(1)<<n - 1
	free := full &^ (cols | diagL | diagR)
	for free != 0 {
		bit := free & -free
		free ^= bit
		count += queens(n, row+1, cols|bit, (diagL|bit)<<1, (diagR|bit)>>1)
	}
	return count
}
