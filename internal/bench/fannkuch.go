package bench

import (
	"spd3/internal/mem"
	"spd3/internal/task"
)

func init() {
	register(&Benchmark{
		Name:   "Fannkuch",
		Source: "Shootout",
		Desc:   "Indexed access to tiny integer sequence",
		Args:   "(10M)",
		Run:    runFannkuch,
	})
}

// runFannkuch computes the maximum pancake-flip count over all
// permutations of 1..k, parallelized over the k groups fixing the last
// element. Permutation state is task-local (raw, per the §5.5 escape
// analysis); only the per-group maxima are monitored. The near-absence
// of monitored accesses makes this the Figure 3 benchmark with slowdown
// closest to 1×.
func runFannkuch(rt *task.Runtime, in Input) (float64, error) {
	k := in.scaled(8, 5)
	if k > 9 {
		k = 9
	}
	maxima := mem.NewArray[int](rt, "fannkuch.max", k)

	err := rt.Run(func(c *task.Ctx) {
		c.ParallelFor(0, k, in.grain(c, k), func(c *task.Ctx, group int) {
			maxima.Set(c, group, fannkuchGroup(k, group))
		})
	})
	if err != nil {
		return 0, err
	}
	best := 0
	for _, v := range maxima.Unchecked() {
		if v > best {
			best = v
		}
	}
	return float64(best), nil
}

// fannkuchGroup enumerates the (k-1)! permutations of 1..k whose last
// element is group+1 and returns the maximum flip count among them.
func fannkuchGroup(k, group int) int {
	// Base permutation with group+1 rotated to the last slot.
	perm0 := make([]int, k)
	for i := range perm0 {
		perm0[i] = i + 1
	}
	perm0[k-1], perm0[group] = perm0[group], perm0[k-1]

	head := perm0[:k-1]
	count := make([]int, k-1)
	perm := make([]int, k)
	best := 0
	for {
		copy(perm, perm0)
		if f := flips(perm); f > best {
			best = f
		}
		// Next permutation of the head, counting-QR style (Heap-like
		// rotation scheme from the shootout reference).
		i := 1
		for ; i < k-1; i++ {
			first := head[0]
			copy(head, head[1:i+1])
			head[i] = first
			if count[i] < i {
				count[i]++
				break
			}
			count[i] = 0
		}
		if i == k-1 {
			return best
		}
	}
}

// flips counts pancake flips until element 1 reaches the front.
func flips(p []int) int {
	n := 0
	for p[0] != 1 {
		f := p[0]
		for i, j := 0, f-1; i < j; i, j = i+1, j-1 {
			p[i], p[j] = p[j], p[i]
		}
		n++
	}
	return n
}
