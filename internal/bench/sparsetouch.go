package bench

import (
	"fmt"

	"spd3/internal/mem"
	"spd3/internal/task"
)

// SparseTouchBench is the sparse-shadow workload behind the harness
// "sparse" experiment: a large instrumented array of which only ~1% of
// the shadow pages are ever touched, in page-sized clusters. Under the
// paged shadow the footprint is proportional to the touched clusters;
// a flat shadow pays for every declared element up front.
//
// It is deliberately NOT in the Table 1 registry — the suite there is
// pinned to the paper's 15 benchmarks — but follows the same contract
// (self-validating checksum).
func SparseTouchBench() *Benchmark {
	return &Benchmark{
		Name:   "SparseTouch",
		Source: "paging",
		Desc:   "clustered 1% touches of a large region",
		Args:   "(10M)",
		Run:    runSparseTouch,
	}
}

// sparseClusterCells matches the shadow page size (shadow.PageSize) so
// one cluster materializes exactly one page; kept as a literal to avoid
// coupling the workload to the shadow package.
const sparseClusterCells = 4096

// runSparseTouch writes page-sized clusters spread across a 10M-element
// array so that roughly 1% of its shadow pages materialize. Clusters are
// disjoint and owned by one task each, so the run is race-free.
func runSparseTouch(rt *task.Runtime, in Input) (float64, error) {
	n := in.scaled(10_000_000, 1<<16)
	clusters := n / sparseClusterCells / 100 // ~1% of the pages
	if clusters < 2 {
		clusters = 2
	}
	stride := n / clusters

	a := mem.NewArray[int64](rt, "sparsetouch.a", n)

	err := rt.Run(func(c *task.Ctx) {
		c.ParallelFor(0, clusters, in.grain(c, clusters), func(c *task.Ctx, k int) {
			// Page-align the cluster so it costs exactly one page.
			base := (k * stride) &^ (sparseClusterCells - 1)
			for i := 0; i < sparseClusterCells && base+i < n; i++ {
				a.Set(c, base+i, int64(k+1))
			}
		})
	})
	if err != nil {
		return 0, err
	}

	var sum, want float64
	for _, v := range a.Unchecked() {
		sum += float64(v)
	}
	for k := 0; k < clusters; k++ {
		base := (k * stride) &^ (sparseClusterCells - 1)
		cells := sparseClusterCells
		if base+cells > n {
			cells = n - base
		}
		want += float64(k+1) * float64(cells)
	}
	if sum != want {
		return 0, fmt.Errorf("sparsetouch: checksum %v, want %v", sum, want)
	}
	return sum, nil
}
