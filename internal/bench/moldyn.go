package bench

import (
	"math"

	"spd3/internal/mem"
	"spd3/internal/task"
)

func init() {
	register(&Benchmark{
		Name:   "MolDyn",
		Source: "JGF §3",
		Desc:   "Molecular dynamics simulation",
		Args:   "(B)",
		JGF:    true,
		Run:    runMolDyn,
	})
}

// runMolDyn is a Lennard-Jones N-body simulation with velocity-Verlet
// integration. Force computation parallelizes over particles: each task
// reads every position (read-shared) and writes only its own particle's
// force; integration parallelizes with fully disjoint accesses. The JGF
// original accumulated forces into shared arrays guarded by the buggy
// barriers §6.3 discusses; this owner-computes formulation is the
// race-free rewrite.
func runMolDyn(rt *task.Runtime, in Input) (float64, error) {
	n := in.scaled(128, 8)
	steps := in.scaled(8, 2)
	const (
		dt  = 1e-3
		eps = 1e-12 // softening
	)

	pos := mem.NewMatrix[float64](rt, "moldyn.pos", n, 3)
	vel := mem.NewMatrix[float64](rt, "moldyn.vel", n, 3)
	frc := mem.NewMatrix[float64](rt, "moldyn.frc", n, 3)

	// Initial FCC-ish lattice with small random velocities.
	r := newRNG(67)
	side := int(math.Ceil(math.Cbrt(float64(n))))
	pr, vr := pos.Unchecked(), vel.Unchecked()
	for i := 0; i < n; i++ {
		pr[3*i+0] = float64(i%side) + 0.3*r.float64()
		pr[3*i+1] = float64((i/side)%side) + 0.3*r.float64()
		pr[3*i+2] = float64(i/(side*side)) + 0.3*r.float64()
		for d := 0; d < 3; d++ {
			vr[3*i+d] = 0.1 * (r.float64() - 0.5)
		}
	}

	err := rt.Run(func(c *task.Ctx) {
		for s := 0; s < steps; s++ {
			// Forces: owner-computes over particles.
			c.ParallelFor(0, n, in.grain(c, n), func(c *task.Ctx, i int) {
				var f [3]float64
				xi := [3]float64{pos.Get(c, i, 0), pos.Get(c, i, 1), pos.Get(c, i, 2)}
				for j := 0; j < n; j++ {
					if j == i {
						continue
					}
					var d [3]float64
					r2 := eps
					for k := 0; k < 3; k++ {
						d[k] = xi[k] - pos.Get(c, j, k)
						r2 += d[k] * d[k]
					}
					inv2 := 1 / r2
					inv6 := inv2 * inv2 * inv2
					mag := 24 * inv2 * inv6 * (2*inv6 - 1)
					if mag > 1e6 {
						mag = 1e6 // clamp blow-ups from the random lattice
					}
					for k := 0; k < 3; k++ {
						f[k] += mag * d[k]
					}
				}
				for k := 0; k < 3; k++ {
					frc.Set(c, i, k, f[k])
				}
			})
			// Integration: disjoint per particle.
			c.ParallelFor(0, n, in.grain(c, n), func(c *task.Ctx, i int) {
				for k := 0; k < 3; k++ {
					v := vel.Get(c, i, k) + dt*frc.Get(c, i, k)
					vel.Set(c, i, k, v)
					pos.Set(c, i, k, pos.Get(c, i, k)+dt*v)
				}
			})
		}
	})
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, v := range pos.Unchecked() {
		sum += v
	}
	return sum, nil
}
