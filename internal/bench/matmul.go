package bench

import (
	"spd3/internal/mem"
	"spd3/internal/task"
)

func init() {
	register(&Benchmark{
		Name:   "Matmul",
		Source: "EC2",
		Desc:   "Matrix multiplication (iterative)",
		Args:   "(1000^2)",
		Run:    runMatmul,
	})
}

// runMatmul is the EC2 challenge benchmark: iterative dense C = A·B with
// one task per output row (unchunked) or per row block (chunked). A and B
// are read-shared — the access pattern that blows up FastTrack's read
// metadata and that SPD3's two-reader shadow words handle in O(1).
func runMatmul(rt *task.Runtime, in Input) (float64, error) {
	n := in.scaled(48, 4)
	a := mem.NewMatrix[float64](rt, "matmul.A", n, n)
	b := mem.NewMatrix[float64](rt, "matmul.B", n, n)
	cm := mem.NewMatrix[float64](rt, "matmul.C", n, n)

	r := newRNG(11)
	for i, raw := 0, a.Unchecked(); i < len(raw); i++ {
		raw[i] = r.float64()
	}
	for i, raw := 0, b.Unchecked(); i < len(raw); i++ {
		raw[i] = r.float64()
	}

	err := rt.Run(func(c *task.Ctx) {
		c.ParallelFor(0, n, in.grain(c, n), func(c *task.Ctx, i int) {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += a.Get(c, i, k) * b.Get(c, k, j)
				}
				cm.Set(c, i, j, s)
			}
		})
	})
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, v := range cm.Unchecked() {
		sum += v
	}
	return sum, nil
}
