package bench

import (
	"math"

	"spd3/internal/mem"
	"spd3/internal/task"
)

func init() {
	register(&Benchmark{
		Name:   "Series",
		Source: "JGF §2",
		Desc:   "Fourier coefficient analysis",
		Args:   "(C)",
		JGF:    true,
		Run:    runSeries,
	})
}

// runSeries computes the first n Fourier coefficient pairs of
// f(x) = (x+1)^x on [0,2] by trapezoid integration, one coefficient pair
// per parallel iteration (the JGF Series kernel). Each task's work is
// compute-heavy and its writes are disjoint — the benchmark with the
// least monitoring overhead in Figure 3.
func runSeries(rt *task.Runtime, in Input) (float64, error) {
	n := in.scaled(256, 8)
	const intervals = 200
	test := mem.NewMatrix[float64](rt, "series.test", 2, n)

	err := rt.Run(func(c *task.Ctx) {
		c.ParallelFor(0, n, in.grain(c, n), func(c *task.Ctx, i int) {
			a, b := seriesCoefficient(i)
			test.Set(c, 0, i, a)
			test.Set(c, 1, i, b)
		})
	})
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, v := range test.Unchecked() {
		sum += v
	}
	return sum, nil
}

// seriesCoefficient integrates f(x)·cos(iπx) and f(x)·sin(iπx) over
// [0,2] with the trapezoid rule. i = 0 yields the constant term pair.
func seriesCoefficient(i int) (a, b float64) {
	const (
		x0, x1 = 0.0, 2.0
		steps  = 200
	)
	dx := (x1 - x0) / steps
	f := func(x float64) float64 { return math.Pow(x+1, x) }
	omega := math.Pi * float64(i)
	fa := func(x float64) float64 { return f(x) * math.Cos(omega*x) }
	fb := func(x float64) float64 { return f(x) * math.Sin(omega*x) }
	a = (fa(x0) + fa(x1)) / 2
	b = (fb(x0) + fb(x1)) / 2
	for k := 1; k < steps; k++ {
		x := x0 + float64(k)*dx
		a += fa(x)
		b += fb(x)
	}
	return a * dx, b * dx
}
