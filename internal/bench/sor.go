package bench

import (
	"spd3/internal/mem"
	"spd3/internal/task"
)

func init() {
	register(&Benchmark{
		Name:   "SOR",
		Source: "JGF §2",
		Desc:   "Successive over-relaxation",
		Args:   "(C)",
		JGF:    true,
		Run:    runSOR,
	})
}

// runSOR performs red-black successive over-relaxation on an n×n grid.
// The original JGF kernel synchronized sweeps with a (buggy, §6.3)
// custom barrier; the async/finish version uses one finish per color
// sweep, which is the paper's race-free rewrite. Within a sweep every
// point of one color reads only opposite-color neighbours, so the reads
// are shared and the writes disjoint.
func runSOR(rt *task.Runtime, in Input) (float64, error) {
	n := in.scaled(64, 8)
	iters := in.scaled(20, 2)
	const omega = 1.25
	g := mem.NewMatrix[float64](rt, "sor.G", n, n)

	// Deterministic initial grid (raw: built by the main task before
	// any parallelism — the paper's main-task check elimination).
	r := newRNG(7)
	raw := g.Unchecked()
	for i := range raw {
		raw[i] = r.float64() * 1e-5
	}

	err := rt.Run(func(c *task.Ctx) {
		for it := 0; it < iters; it++ {
			for color := 0; color < 2; color++ {
				color := color
				c.ParallelFor(1, n-1, in.grain(c, n-2), func(c *task.Ctx, i int) {
					j0 := 1 + (i+color)%2
					for j := j0; j < n-1; j += 2 {
						stencil := omega / 4 * (g.Get(c, i-1, j) + g.Get(c, i+1, j) +
							g.Get(c, i, j-1) + g.Get(c, i, j+1))
						g.Update(c, i, j, func(v float64) float64 {
							return stencil + (1-omega)*v
						})
					}
				})
			}
		}
	})
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, v := range g.Unchecked() {
		sum += v
	}
	return sum, nil
}
