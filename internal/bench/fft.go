package bench

import (
	"fmt"
	"math"

	"spd3/internal/mem"
	"spd3/internal/task"
)

func init() {
	register(&Benchmark{
		Name:   "FFT",
		Source: "BOTS",
		Desc:   "Fast Fourier transformation",
		Args:   "(large)",
		Run:    runFFT,
	})
}

// runFFT performs an n-point radix-2 complex FFT followed by the inverse
// transform and checks the round trip. Each stage is a finish whose tasks
// own disjoint butterfly groups; the twiddle factors are read-shared.
func runFFT(rt *task.Runtime, in Input) (float64, error) {
	n := 1
	for n < in.scaled(2048, 64) {
		n <<= 1
	}
	re := mem.NewArray[float64](rt, "fft.re", n)
	im := mem.NewArray[float64](rt, "fft.im", n)

	r := newRNG(59)
	orig := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		orig[2*i] = r.float64() - 0.5
		orig[2*i+1] = r.float64() - 0.5
	}
	reRaw, imRaw := re.Unchecked(), im.Unchecked()
	for i := 0; i < n; i++ {
		reRaw[i] = orig[2*i]
		imRaw[i] = orig[2*i+1]
	}

	err := rt.Run(func(c *task.Ctx) {
		fftPass(c, in, re, im, n, false)
		fftPass(c, in, re, im, n, true)
		// Normalize the inverse in parallel.
		c.ParallelFor(0, n, in.grain(c, n), func(c *task.Ctx, i int) {
			re.Set(c, i, re.Get(c, i)/float64(n))
			im.Set(c, i, im.Get(c, i)/float64(n))
		})
	})
	if err != nil {
		return 0, err
	}
	worst, sum := 0.0, 0.0
	for i := 0; i < n; i++ {
		dr := math.Abs(reRaw[i] - orig[2*i])
		di := math.Abs(imRaw[i] - orig[2*i+1])
		if dr > worst {
			worst = dr
		}
		if di > worst {
			worst = di
		}
		sum += reRaw[i] + imRaw[i]
	}
	if worst > 1e-9 {
		return 0, fmt.Errorf("fft: round-trip error %g exceeds tolerance", worst)
	}
	return sum, nil
}

// fftPass runs one full (forward or inverse) in-place transform.
func fftPass(c *task.Ctx, in Input, re, im *mem.Array[float64], n int, inverse bool) {
	// Bit-reversal permutation, parallel over indices; each swap is
	// performed by the lower index's task, so writes are disjoint.
	c.ParallelFor(0, n, in.grain(c, n), func(c *task.Ctx, i int) {
		j := bitrev(i, n)
		if i < j {
			ri, rj := re.Get(c, i), re.Get(c, j)
			ii, ij := im.Get(c, i), im.Get(c, j)
			re.Set(c, i, rj)
			re.Set(c, j, ri)
			im.Set(c, i, ij)
			im.Set(c, j, ii)
		}
	})
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		groups := n / size
		size := size
		c.ParallelFor(0, groups, in.grain(c, groups), func(c *task.Ctx, g int) {
			base := g * size
			for k := 0; k < half; k++ {
				ang := sign * 2 * math.Pi * float64(k) / float64(size)
				wr, wi := math.Cos(ang), math.Sin(ang)
				i0, i1 := base+k, base+k+half
				ar, ai := re.Get(c, i0), im.Get(c, i0)
				br, bi := re.Get(c, i1), im.Get(c, i1)
				tr := br*wr - bi*wi
				ti := br*wi + bi*wr
				re.Set(c, i0, ar+tr)
				im.Set(c, i0, ai+ti)
				re.Set(c, i1, ar-tr)
				im.Set(c, i1, ai-ti)
			}
		})
	}
}

// bitrev reverses the log2(n) low bits of i.
func bitrev(i, n int) int {
	r := 0
	for m := 1; m < n; m <<= 1 {
		r <<= 1
		if i&m != 0 {
			r |= 1
		}
	}
	return r
}
